package mtracecheck

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"time"

	"mtracecheck/internal/check"
	"mtracecheck/internal/fault"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/obs"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
)

// Campaign is the validation pipeline's spine: one analyzed (program,
// options) pair whose stages — sharded execution, signature merge, decode,
// collective checking, checkpointing — can be driven whole (Run) or split
// across the paper's device/host boundary (Collect, Check). Every public
// entry point (RunContext, RunProgramContext, CollectSignaturesContext,
// CheckSignaturesContext, RunLitmusContext) is a thin wrapper over a
// Campaign, so Options.Observer taps every stage regardless of which door
// the caller came in through.
//
// A Campaign is immutable after construction and safe to Run repeatedly;
// identical (program, Options) pairs produce identical results.
type Campaign struct {
	prog    *Program
	opts    Options
	meta    *instrument.Meta
	inj     *fault.Injector
	em      emitter
	workers int
}

// NewCampaign analyzes the program and validates the options, surfacing
// configuration errors before any execution work.
func NewCampaign(p *Program, opts Options) (*Campaign, error) {
	opts = withDefaults(opts)
	inj, err := injector(opts)
	if err != nil {
		return nil, err
	}
	meta, err := instrument.Analyze(p, opts.Platform.RegWidthBits, opts.Pruner)
	if err != nil {
		return nil, err
	}
	return &Campaign{
		prog: p, opts: opts, meta: meta, inj: inj,
		em: emitter{o: opts.Observer}, workers: opts.workerCount(),
	}, nil
}

// newReport seeds a report with the campaign's identity — the provenance
// SaveSignatures persists and resume/check-only paths validate.
func (c *Campaign) newReport() *Report {
	return &Report{
		Program: c.prog, SignatureBytes: c.meta.SignatureBytes(),
		Seed: c.opts.Seed, Platform: c.opts.Platform.Name,
	}
}

// Run drives the full pipeline: execute, merge, decode, check.
func (c *Campaign) Run(ctx context.Context) (*Report, error) {
	began := time.Now()
	c.em.campaignStart(c.prog, c.opts, c.opts.Iterations, c.workers, began)
	report := c.newReport()
	lists, wsBySig, runErr := c.execute(ctx, report)
	uniques := sig.MergeUniques(lists...)
	if runErr != nil {
		// A crash is a finding (paper bug 3); the report covers every
		// iteration that executed, and the error names the earliest crash.
		report.UniqueSignatures = len(uniques)
		c.em.campaignEnd(report, runErr, began)
		return report, runErr
	}
	var injected obs.FaultCounts
	if c.inj != nil {
		uniques, report.InjectedFaults = c.inj.Corrupt(uniques)
		injected = faultCounts(report.InjectedFaults)
	}
	report.UniqueSignatures = len(uniques)
	c.em.mergeDone(report.Iterations, len(uniques), injected, true)
	err := c.decodeAndCheck(ctx, uniques, wsBySig, report)
	c.em.campaignEnd(report, err, began)
	return report, err
}

// Collect drives only the execution stage — the "device side" of the
// paper's flow — returning the merged unique signatures without decoding
// or checking them. Pair with Check on the host; both sides observe the
// same signatures for the same (Seed, Iterations), and fault injection,
// checkpointing, and shard retry apply identically.
func (c *Campaign) Collect(ctx context.Context) ([]Unique, error) {
	began := time.Now()
	c.em.campaignStart(c.prog, c.opts, c.opts.Iterations, c.workers, began)
	report := c.newReport() // accounting sink; callers get signatures only
	lists, _, runErr := c.execute(ctx, report)
	if runErr != nil {
		c.em.campaignEnd(report, runErr, began)
		return nil, runErr
	}
	uniques := sig.MergeUniques(lists...)
	var injected obs.FaultCounts
	if c.inj != nil {
		var counts map[FaultKind]int
		uniques, counts = c.inj.Corrupt(uniques)
		injected = faultCounts(counts)
	}
	report.UniqueSignatures = len(uniques)
	c.em.mergeDone(report.Iterations, len(uniques), injected, true)
	c.em.campaignEnd(report, nil, began)
	return uniques, nil
}

// Check drives only the host side: previously collected unique signatures
// are decoded and checked under the campaign's options — checker
// selection, Workers, Strict/QuarantineThreshold, and the observer all
// apply. It requires the static ws mode, which needs nothing beyond the
// signatures themselves.
func (c *Campaign) Check(ctx context.Context, uniques []Unique) (*Report, error) {
	if c.opts.ObservedWS {
		return nil, errors.New("mtracecheck: checking stored signatures requires the static ws mode (stored signatures carry no recorded write serialization)")
	}
	began := time.Now()
	c.em.campaignStart(c.prog, c.opts, 0, c.workers, began)
	report := c.newReport()
	report.UniqueSignatures = len(uniques)
	err := c.decodeAndCheck(ctx, uniques, nil, report)
	c.em.campaignEnd(report, err, began)
	return report, err
}

// SignatureMetadata returns the provenance header this campaign writes via
// SaveSignatures and validates on load.
func (c *Campaign) SignatureMetadata() SignatureMeta {
	return SignatureMeta{
		ProgHash: progHash(c.prog), Seed: c.opts.Seed, Platform: c.opts.Platform.Name,
	}
}

// decodeAndCheck is the shared host side of Run and Check: signature
// decode (with quarantine in graceful mode), the quarantine-threshold
// gate, and the selected checker.
func (c *Campaign) decodeAndCheck(ctx context.Context, uniques []Unique,
	wsBySig map[string]graph.WS, report *Report) error {
	wsMode := graph.WSStatic
	if c.opts.ObservedWS {
		wsMode = graph.WSObserved
	}
	builder := graph.NewBuilder(c.prog, c.opts.Platform.Model, graph.Options{
		Forwarding: c.opts.Platform.Atomicity.AllowsForwarding(),
		WS:         wsMode,
	})
	items, quarantined, err := decodeItems(ctx, c.meta, builder, uniques, wsBySig,
		c.workers, c.opts.Strict, c.em)
	if err != nil {
		return err
	}
	report.Quarantined = quarantined
	if c.opts.QuarantineThreshold > 0 && len(uniques) > 0 {
		if frac := float64(len(quarantined)) / float64(len(uniques)); frac > c.opts.QuarantineThreshold {
			return fmt.Errorf("%w: %d of %d unique signatures (%.2f%% > %.2f%%)",
				ErrQuarantineThreshold, len(quarantined), len(uniques),
				100*frac, 100*c.opts.QuarantineThreshold)
		}
	}
	switch c.opts.Checker {
	case CheckerConventional:
		began := time.Now()
		report.CheckStats = check.Conventional(builder, items)
		c.em.checkShardEnd(0, 0, len(items), report.CheckStats, began, time.Since(began))
	case CheckerIncremental:
		began := time.Now()
		report.CheckStats, err = check.Incremental(builder, items)
		if err != nil {
			return err
		}
		c.em.checkShardEnd(0, 0, len(items), report.CheckStats, began, time.Since(began))
	default:
		report.CheckStats, err = check.ShardedObserved(ctx, builder, items, c.workers, c.em.checkShardFunc())
		if err != nil {
			return err
		}
	}
	report.Violations = report.CheckStats.Violations
	return nil
}

// execute runs the execution stage: optional checkpoint resume, the
// iteration sequence in checkpoint-sized segments, per-shard retry and
// degradation bookkeeping. It returns the sorted unique lists to merge
// (checkpointed set first, then shard sets in global iteration order), the
// observed-ws first-observation map (nil in static mode), and the first
// fatal error. The report's execution accounting (Iterations, TotalCycles,
// Squashes, Executions, AssertionFailures, ShardFailures,
// ResumedIterations) is filled in as segments complete, so the report is
// honest even when an error cuts the campaign short.
func (c *Campaign) execute(ctx context.Context, report *Report) ([][]sig.Unique, map[string]graph.WS, error) {
	opts := c.opts
	var lists [][]sig.Unique
	var wsBySig map[string]graph.WS
	if opts.ObservedWS {
		wsBySig = make(map[string]graph.WS)
	}
	completed := 0
	if opts.Resume {
		if opts.CheckpointPath == "" {
			return nil, nil, errors.New("mtracecheck: Resume requires CheckpointPath")
		}
		if opts.ObservedWS {
			return nil, nil, errors.New("mtracecheck: resume requires the static ws mode (checkpointed signatures carry no recorded write serialization)")
		}
		ck, err := readCheckpointFile(opts.CheckpointPath)
		if err != nil {
			return nil, nil, fmt.Errorf("mtracecheck: resume: %w", err)
		}
		if ck.Seed != opts.Seed {
			return nil, nil, fmt.Errorf("mtracecheck: resume: checkpoint seed %d does not match run seed %d", ck.Seed, opts.Seed)
		}
		if h := progHash(c.prog); ck.ProgHash != h {
			return nil, nil, fmt.Errorf("mtracecheck: resume: checkpoint was written for a different test program")
		}
		if ck.Completed > opts.Iterations {
			return nil, nil, fmt.Errorf("mtracecheck: resume: checkpoint covers %d iterations, campaign requests only %d", ck.Completed, opts.Iterations)
		}
		completed = ck.Completed
		report.ResumedIterations = completed
		report.Iterations += completed
		if len(ck.Uniques) > 0 {
			lists = append(lists, ck.Uniques)
		}
		c.em.checkpointOp(obs.CheckpointResumed, opts.CheckpointPath, completed, len(ck.Uniques), 0)
	}
	checkpointing := opts.CheckpointPath != ""
	segment := opts.Iterations - completed
	if checkpointing {
		segment = opts.CheckpointEvery
		if segment <= 0 {
			segment = opts.Iterations / 10
		}
		if segment < 1 {
			segment = 1
		}
	}
	for completed < opts.Iterations {
		if err := ctx.Err(); err != nil {
			return lists, wsBySig, err
		}
		n := opts.Iterations - completed
		if checkpointing && segment < n {
			n = segment
		}
		shards, err := c.runShards(ctx, completed, n)
		if err != nil {
			return lists, wsBySig, err
		}
		// Merge shard outputs in shard order; shards own contiguous
		// ascending iteration blocks, so this order is global iteration
		// order.
		var firstErr error
		segClean := true
		for _, sh := range shards {
			report.Iterations += sh.iterations
			report.TotalCycles += sh.cycles
			report.Squashes += sh.squashes
			report.Executions = append(report.Executions, sh.execs...)
			report.AssertionFailures = append(report.AssertionFailures, sh.asserts...)
			if sh.set.Len() > 0 {
				lists = append(lists, sh.set.Sorted())
			}
			if opts.ObservedWS {
				// Keep the write-serialization order of the globally first
				// observation of each interleaving: earlier shards hold
				// earlier iterations, so first-in-shard-order is
				// first-globally.
				for k, ws := range sh.ws {
					if _, ok := wsBySig[k]; !ok {
						wsBySig[k] = ws
					}
				}
			}
			if sh.err == nil {
				continue
			}
			segClean = false
			if errors.Is(sh.err, ErrShardFailed) && !opts.Strict {
				// Infra failure that survived its retries: degrade to
				// partial results, recorded honestly.
				report.ShardFailures = append(report.ShardFailures, ShardFailure{
					Start: sh.start, Count: sh.count,
					Executed: sh.iterations, Attempts: sh.attempts, Err: sh.err,
				})
				continue
			}
			if firstErr == nil {
				firstErr = sh.err
			}
		}
		if err := ctx.Err(); err != nil {
			return lists, wsBySig, err
		}
		if firstErr != nil {
			return lists, wsBySig, firstErr
		}
		completed += n
		if checkpointing {
			if !segClean {
				// A lost shard left a hole in the iteration sequence; a
				// checkpoint would claim coverage the campaign never had.
				checkpointing = false
				continue
			}
			merged := sig.MergeUniques(lists...)
			lists = [][]sig.Unique{merged}
			c.em.mergeDone(completed, len(merged), obs.FaultCounts{}, false)
			ck := sig.Checkpoint{
				Seed: opts.Seed, ProgHash: progHash(c.prog),
				Completed: completed, Uniques: merged,
			}
			bytes, err := writeCheckpointFile(opts.CheckpointPath, ck)
			if err != nil {
				return lists, wsBySig, fmt.Errorf("mtracecheck: checkpoint: %w", err)
			}
			c.em.checkpointOp(obs.CheckpointSaved, opts.CheckpointPath, completed, len(merged), bytes)
		}
	}
	return lists, wsBySig, nil
}

// runShards executes count iterations starting at global iteration start,
// split into contiguous blocks, each on its own Runner over the same seed
// skipped ahead to the block's start — so every iteration draws the same
// per-iteration seed as the serial pipeline, whatever the worker count.
// Runners are constructed up front so platform/program validation errors
// surface before any work; a shard that fails mid-run is retried per
// Options.ShardRetries.
func (c *Campaign) runShards(ctx context.Context, start, count int) ([]*shardOut, error) {
	workers := c.workers
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	base, rem := count/workers, count%workers
	starts := make([]int, workers+1)
	runners := make([]*sim.Runner, workers)
	for si := 0; si < workers; si++ {
		size := base
		if si < rem {
			size++
		}
		starts[si+1] = starts[si] + size
		runner, err := sim.NewRunner(c.opts.Platform, c.prog, c.opts.Seed)
		if err != nil {
			return nil, err
		}
		runner.SkipIterations(start + starts[si])
		runners[si] = runner
	}
	shards := make([]*shardOut, workers)
	var wg sync.WaitGroup
	for si := 0; si < workers; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			shards[si] = c.runShardRetrying(ctx, si, runners[si],
				start+starts[si], starts[si+1]-starts[si])
		}(si)
	}
	wg.Wait()
	return shards, nil
}

// runShardRetrying drives one shard block to completion, re-running it from
// the block start — on a fresh Runner, since a panicking one may hold
// corrupt state — after transient failures (recovered panics, expired shard
// deadlines), with capped exponential backoff between attempts. Platform
// crashes are findings and parent-context cancellation is final; neither is
// retried. A shard still failing after every retry returns its final
// partial attempt with the failure wrapped in ErrShardFailed.
func (c *Campaign) runShardRetrying(ctx context.Context, shard int, first *sim.Runner,
	start, count int) *shardOut {
	opts := c.opts
	backoff := time.Millisecond
	const maxBackoff = 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		runner := first
		if attempt > 0 {
			r, err := sim.NewRunner(opts.Platform, c.prog, opts.Seed)
			if err != nil {
				return &shardOut{set: sig.NewSet(), start: start, count: count,
					attempts: attempt + 1, err: err}
			}
			r.SkipIterations(start)
			runner = r
		}
		shardCtx, cancel := ctx, context.CancelFunc(func() {})
		if opts.ShardTimeout > 0 {
			shardCtx, cancel = context.WithTimeout(ctx, opts.ShardTimeout)
		}
		var src sim.Source = runner
		if c.inj != nil {
			src = c.inj.WrapShard(shardCtx, runner, start, count, attempt)
		}
		began := time.Now()
		c.em.shardStart(obs.StageExecute, shard, attempt, start, count, began)
		out := runShardAttempt(shardCtx, src, c.meta, opts, start, count)
		cancel()
		out.start, out.count, out.attempts = start, count, attempt+1
		willRetry := out.err != nil && retryable(out.err, ctx) && attempt < opts.ShardRetries
		if out.err != nil && retryable(out.err, ctx) && !willRetry {
			out.err = fmt.Errorf("%w: iterations [%d,%d) after %d attempts: %v",
				ErrShardFailed, start, start+count, attempt+1, out.err)
		}
		retrySleep := time.Duration(0)
		if willRetry {
			retrySleep = backoff
		}
		c.em.execShardEnd(shard, out, began, willRetry, retrySleep)
		if !willRetry {
			return out
		}
		select {
		case <-ctx.Done():
			out.err = ctx.Err()
			return out
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// emitter is the pipeline's nil-safe observer tap. The zero value (nil
// observer) makes every method a single branch, preserving the pipeline's
// allocation budgets; events are flat structs built on the caller's stack.
type emitter struct {
	o obs.Observer
}

func (em emitter) campaignStart(p *Program, opts Options, iterations, workers int, began time.Time) {
	if em.o == nil {
		return
	}
	threads, ops := 0, 0
	for _, t := range p.Threads {
		threads++
		ops += len(t.Ops)
	}
	em.o.CampaignStart(obs.CampaignStart{
		Program: p.Name, Threads: threads, Ops: ops,
		Platform: opts.Platform.Name, Model: opts.Platform.Model.String(),
		Iterations: iterations, Workers: workers, Time: began,
	})
}

func (em emitter) campaignEnd(r *Report, err error, began time.Time) {
	if em.o == nil {
		return
	}
	now := time.Now()
	em.o.CampaignEnd(obs.CampaignEnd{
		Iterations: r.Iterations, Uniques: r.UniqueSignatures,
		Quarantined: len(r.Quarantined), Violations: len(r.Violations),
		Asserts: len(r.AssertionFailures), Partial: r.Partial(), Err: err,
		Time: now, Duration: now.Sub(began),
	})
}

func (em emitter) shardStart(stage obs.Stage, shard, attempt, start, count int, began time.Time) {
	if em.o == nil {
		return
	}
	em.o.ShardStart(obs.ShardStart{
		Stage: stage, Shard: shard, Attempt: attempt,
		Start: start, Count: count, Time: began,
	})
}

func (em emitter) execShardEnd(shard int, out *shardOut, began time.Time, willRetry bool, backoff time.Duration) {
	if em.o == nil {
		return
	}
	now := time.Now()
	em.o.ShardEnd(obs.ShardEnd{
		Stage: obs.StageExecute, Shard: shard, Attempt: out.attempts - 1,
		Start: out.start, Count: out.count,
		Iterations: out.iterations, Cycles: out.cycles, Squashes: out.squashes,
		Uniques: out.set.Len(), Asserts: len(out.asserts),
		Err: out.err, WillRetry: willRetry, Backoff: backoff,
		Time: now, Duration: now.Sub(began),
	})
}

func (em emitter) decodeShardEnd(shard, start, count, decoded int, quar []*Quarantined, err error, began time.Time) {
	if em.o == nil {
		return
	}
	var qd, qe int
	for i := start; i < start+count; i++ {
		if quar[i] == nil {
			continue
		}
		if quar[i].Kind == QuarantineDecode {
			qd++
		} else {
			qe++
		}
	}
	now := time.Now()
	em.o.ShardEnd(obs.ShardEnd{
		Stage: obs.StageDecode, Shard: shard, Start: start, Count: count,
		Decoded: decoded, QuarantinedDecode: qd, QuarantinedEdges: qe,
		Err: err, Time: now, Duration: now.Sub(began),
	})
}

func (em emitter) checkShardEnd(shard, start, count int, part *check.Result, began time.Time, took time.Duration) {
	if em.o == nil {
		return
	}
	e := obs.ShardEnd{
		Stage: obs.StageCheck, Shard: shard, Start: start, Count: count,
		Time: began.Add(took), Duration: took,
	}
	if part != nil {
		complete, noResort, incremental := part.Counts()
		e.Graphs = part.Total
		e.Complete, e.NoResort, e.Incremental = complete, noResort, incremental
		e.SortedVertices = part.SortedVertices
		e.BackwardEdges = part.BackwardEdges
		e.MaxWindow = part.MaxWindow
		e.Violations = len(part.Violations)
	}
	em.o.ShardEnd(e)
}

// checkShardFunc adapts the emitter to check.ShardedObserved's callback;
// nil when unobserved so the checker skips callback work entirely.
func (em emitter) checkShardFunc() check.ShardFunc {
	if em.o == nil {
		return nil
	}
	return func(shard, start, count int, part *check.Result, began time.Time, took time.Duration) {
		em.checkShardEnd(shard, start, count, part, began, took)
	}
}

func (em emitter) mergeDone(completed, uniques int, injected obs.FaultCounts, final bool) {
	if em.o == nil {
		return
	}
	em.o.MergeDone(obs.MergeDone{
		Completed: completed, Uniques: uniques, Injected: injected,
		Final: final, Time: time.Now(),
	})
}

func (em emitter) checkpointOp(op obs.CheckpointOp, path string, completed, uniques int, bytes int64) {
	if em.o == nil {
		return
	}
	em.o.Checkpoint(obs.Checkpoint{
		Op: op, Path: path, Completed: completed, Uniques: uniques,
		Bytes: bytes, Time: time.Now(),
	})
}

// faultCounts flattens the report's injected-fault map into the event
// struct (signature-corruption kinds only, which is all Corrupt reports).
func faultCounts(m map[FaultKind]int) obs.FaultCounts {
	return obs.FaultCounts{
		BitFlip:    m[FaultBitFlip],
		Truncate:   m[FaultTruncate],
		Duplicate:  m[FaultDuplicate],
		OutOfRange: m[FaultOutOfRange],
	}
}

// injector builds the fault injector for the options, rejecting
// configurations injection cannot honor.
func injector(opts Options) (*fault.Injector, error) {
	if !opts.Fault.Enabled() {
		return nil, nil
	}
	if opts.ObservedWS {
		return nil, errors.New("mtracecheck: fault injection requires the static ws mode (corrupted signatures carry no recorded write serialization)")
	}
	return fault.NewInjector(opts.Fault)
}

// progHash fingerprints a program for checkpoint and signature-set
// identity (FNV-64a of the canonical text format).
func progHash(p *Program) uint64 {
	h := fnv.New64a()
	io.WriteString(h, prog.Format(p))
	return h.Sum64()
}

// ProgramHash returns the fingerprint used to tie checkpoints and saved
// signature sets to the test program they were collected from.
func ProgramHash(p *Program) uint64 { return progHash(p) }

// readCheckpointFile loads a campaign checkpoint.
func readCheckpointFile(path string) (sig.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return sig.Checkpoint{}, err
	}
	defer f.Close()
	return sig.ReadCheckpoint(f)
}

// writeCheckpointFile persists a checkpoint atomically (temp file + rename),
// so an interruption mid-write never corrupts the previous checkpoint. It
// returns the encoded payload size.
func writeCheckpointFile(path string, ck sig.Checkpoint) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	if err := sig.WriteCheckpoint(cw, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return cw.n, os.Rename(tmp, path)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// shardOut is what one execution shard produces: private signature set and
// stats, merged by the caller in shard order.
type shardOut struct {
	set        *sig.Set
	ws         map[string]graph.WS // sig key -> first-observation ws
	start      int                 // global iteration block start
	count      int                 // block size
	attempts   int
	iterations int
	cycles     int64
	squashes   int
	execs      []*sim.Execution
	asserts    []error
	err        error
}

// retryable classifies a shard error: recovered panics and expired
// per-shard deadlines are transient infra faults worth retrying; anything
// else — platform crashes (findings), encode errors, parent cancellation —
// is final.
func retryable(err error, parent context.Context) bool {
	if parent.Err() != nil {
		return false
	}
	return errors.Is(err, errShardPanic) || errors.Is(err, context.DeadlineExceeded)
}

// runShardAttempt drives one source through count iterations starting at
// global iteration index start, polling the context between iterations and
// converting a panic anywhere below — simulator, encoder, or an injected
// shard fault — into a shard error instead of crashing the process. It is
// deliberately free of observer hooks: events fire at the shard boundary,
// never inside the per-iteration hot loop.
func runShardAttempt(ctx context.Context, src sim.Source, meta *instrument.Meta,
	opts Options, start, count int) (out *shardOut) {
	out = &shardOut{set: sig.NewSet()}
	if opts.ObservedWS {
		out.ws = make(map[string]graph.WS)
	}
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("%w at iteration %d: %v", errShardPanic, start+out.iterations, r)
		}
	}()
	var sigBuf []uint64 // per-attempt encode scratch, reused every iteration
	for i := 0; i < count; i++ {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		ex, err := src.Run()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// An interrupted stall, not a platform failure.
				out.err = err
				return out
			}
			out.err = fmt.Errorf("%w: iteration %d: %v", ErrCrash, start+i, err)
			return out
		}
		out.iterations++
		out.cycles += int64(ex.Cycles)
		out.squashes += ex.Squashes
		if opts.KeepExecutions {
			// The source's execution is scratch, overwritten next iteration:
			// retention requires a deep copy.
			out.execs = append(out.execs, ex.Clone())
		}
		sigBuf, err = meta.EncodeExecutionInto(sigBuf[:0], ex.LoadValues)
		if err != nil {
			var ae *instrument.AssertionError
			if errors.As(err, &ae) {
				out.asserts = append(out.asserts, ae)
				continue
			}
			out.err = err
			return out
		}
		if out.set.AddWords(sigBuf) && opts.ObservedWS {
			// First observation of this interleaving in this shard: keep its
			// write-serialization order for graph construction. (The
			// static-ws default needs nothing beyond the signature.)
			out.ws[sig.New(sigBuf).Key()] = ex.WSByWord()
		}
	}
	return out
}

// decodeItems is the decode stage over an explicit worker count. Workers
// fill disjoint contiguous ranges of the result and poll the context as
// they go. In strict mode the error for the lowest-indexed failing
// signature is returned — the one the serial loop would have hit first.
// In graceful mode failing signatures are quarantined (in sorted order,
// deterministically: failure is a pure function of signature and metadata)
// and the surviving items are compacted, preserving ascending order for
// the collective checker.
func decodeItems(ctx context.Context, meta *instrument.Meta, b *graph.Builder,
	uniques []sig.Unique, wsBySig map[string]graph.WS, workers int,
	strict bool, em emitter) ([]check.Item, []Quarantined, error) {
	items := make([]check.Item, len(uniques))
	quar := make([]*Quarantined, len(uniques))
	decode := func(lo, hi int) (int, error) {
		// Per-worker scratch: a dense reads-from slice reused across
		// signatures and a key buffer for the allocation-free ws lookup.
		rf := make([]int32, b.NumOps())
		var keyBuf []byte
		decoded := 0
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return decoded, err
			}
			u := uniques[i]
			if err := meta.DecodeInto(u.Sig, rf); err != nil {
				if strict {
					return decoded, err
				}
				quar[i] = &Quarantined{Sig: u.Sig, Count: u.Count, Kind: QuarantineDecode, Err: err}
				continue
			}
			var ws graph.WS
			if wsBySig != nil {
				keyBuf = u.Sig.AppendBinary(keyBuf[:0])
				ws = wsBySig[string(keyBuf)]
			}
			edges, err := b.AppendDynamicEdges(nil, rf, ws)
			if err != nil {
				if strict {
					return decoded, err
				}
				quar[i] = &Quarantined{Sig: u.Sig, Count: u.Count, Kind: QuarantineEdges, Err: err}
				continue
			}
			items[i] = check.Item{Sig: u.Sig, Edges: edges}
			decoded++
		}
		return decoded, nil
	}
	if workers > len(uniques) {
		workers = len(uniques)
	}
	if workers <= 1 {
		began := time.Now()
		decoded, err := decode(0, len(uniques))
		em.decodeShardEnd(0, 0, len(uniques), decoded, quar, err, began)
		if err != nil {
			return nil, nil, err
		}
	} else {
		base, rem := len(uniques)/workers, len(uniques)%workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		lo := 0
		for w := 0; w < workers; w++ {
			size := base
			if w < rem {
				size++
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				began := time.Now()
				var decoded int
				decoded, errs[w] = decode(lo, hi)
				em.decodeShardEnd(w, lo, hi-lo, decoded, quar, errs[w], began)
			}(w, lo, lo+size)
			lo += size
		}
		wg.Wait()
		// Ranges ascend with the worker index, so the first recorded error
		// is the one with the lowest signature index.
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
	}
	var quarantined []Quarantined
	kept := items[:0]
	for i := range items {
		if quar[i] != nil {
			quarantined = append(quarantined, *quar[i])
			continue
		}
		kept = append(kept, items[i])
	}
	return kept, quarantined, nil
}
