package mtracecheck

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"time"

	"mtracecheck/internal/check"
	"mtracecheck/internal/corpus"
	"mtracecheck/internal/fault"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/obs"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
)

// Campaign is the validation pipeline's spine: one analyzed (program,
// options) pair whose stages — streaming execution, incremental signature
// merge, eager decode, collective checking, checkpointing — can be driven
// whole (Run) or split across the paper's device/host boundary (Collect,
// Check). Every public entry point (RunContext, RunProgramContext,
// CollectSignaturesContext, CheckSignaturesContext, RunLitmusContext) is a
// thin wrapper over a Campaign, so Options.Observer taps every stage
// regardless of which door the caller came in through.
//
// A Campaign is immutable after construction and safe to Run repeatedly;
// identical (program, Options) pairs produce identical results.
type Campaign struct {
	prog    *Program
	opts    Options
	meta    *instrument.Meta
	inj     *fault.Injector
	backend check.Backend
	em      emitter
	workers int

	// Signature-corpus state (Options.Corpus). corpusOK means the attached
	// store is usable for this campaign's key; a width mismatch degrades to
	// a cold run (corpusErr says why) rather than risking a wrong verdict.
	corpKey   corpus.Key
	corpusOK  bool
	corpusErr error

	// keyBuf is the binary-key scratch for corpus lookups on the warm-hit
	// path: one buffer per campaign instead of one growth series per
	// partition pass.
	keyBuf []byte
}

// execChunkSize is the streaming scheduler's work granule: workers pull
// chunks of this many iterations from a shared cursor. The chunk grid is
// fixed — aligned to each checkpoint segment's start and independent of the
// worker count — so chunk boundaries, and with them fault plans, retry
// outcomes, and degradation bookkeeping, are worker-invariant by
// construction. 64 iterations amortize scheduling and channel overhead
// while keeping enough chunks in flight that a slow chunk (OS-mode
// scheduling, an injected stall) no longer straggles the whole stage the
// way a fixed contiguous block did.
const execChunkSize = 64

// NewCampaign analyzes the program and validates the options, surfacing
// configuration errors before any execution work.
func NewCampaign(p *Program, opts Options) (*Campaign, error) {
	opts = withDefaults(opts)
	inj, err := injector(opts)
	if err != nil {
		return nil, err
	}
	meta, err := instrument.Analyze(p, opts.Platform.RegWidthBits, opts.Pruner)
	if err != nil {
		return nil, err
	}
	backend, err := check.ForName(opts.Checker.String())
	if err != nil {
		return nil, fmt.Errorf("mtracecheck: %w", err)
	}
	c := &Campaign{
		prog: p, opts: opts, meta: meta, inj: inj, backend: backend,
		em: emitter{o: opts.Observer}, workers: opts.workerCount(),
	}
	if opts.Corpus != nil {
		if opts.ObservedWS {
			return nil, errors.New("mtracecheck: the signature corpus requires the static ws mode (cached verdicts are a pure function of the signature)")
		}
		if opts.Pruner != nil {
			return nil, errors.New("mtracecheck: the signature corpus cannot be combined with a pruner (pruning changes the signature encoding the corpus key does not capture)")
		}
		c.corpKey = corpus.Key{
			ProgHash: progHash(p),
			Platform: opts.Platform.Name,
			MCM:      opts.Platform.Model.String(),
		}
		if w, ok := opts.Corpus.Words(c.corpKey); ok && w != meta.TotalWords() {
			c.corpusErr = fmt.Errorf("corpus section holds %d-word signatures, campaign produces %d; corpus ignored", w, meta.TotalWords())
		} else {
			c.corpusOK = true
		}
	}
	return c, nil
}

// corpusActive reports whether the warm-cache fast path applies.
func (c *Campaign) corpusActive() bool { return c.opts.Corpus != nil && c.corpusOK }

// newReport seeds a report with the campaign's identity — the provenance
// SaveSignatures persists and resume/check-only paths validate.
func (c *Campaign) newReport() *Report {
	return &Report{
		Program: c.prog, SignatureBytes: c.meta.SignatureBytes(),
		Seed: c.opts.Seed, Platform: c.opts.Platform.Name,
	}
}

// newBuilder constructs the constraint-graph builder for the campaign's
// model and ws mode.
func (c *Campaign) newBuilder() *graph.Builder {
	wsMode := graph.WSStatic
	if c.opts.ObservedWS {
		wsMode = graph.WSObserved
	}
	return graph.NewBuilder(c.prog, c.opts.Platform.Model, graph.Options{
		Forwarding: c.opts.Platform.Atomicity.AllowsForwarding(),
		WS:         wsMode,
	})
}

// Run drives the full pipeline. Execution, merge, and decode stream past
// each other chunk by chunk; only the global signature sort and the
// collective check wait for the execution barrier.
func (c *Campaign) Run(ctx context.Context) (*Report, error) {
	began := time.Now()
	c.em.campaignStart(c.prog, c.opts, c.opts.Iterations, c.workers, began)
	report := c.newReport()
	m := c.newMerger(report, true)
	runErr := c.execute(ctx, report, m)
	uniques := m.acc.Sorted()
	if runErr != nil {
		// A crash is a finding (paper bug 3); the report covers every
		// iteration that executed, and the error names the earliest crash.
		report.UniqueSignatures = len(uniques)
		c.em.campaignEnd(report, runErr, began)
		return report, runErr
	}
	var injected obs.FaultCounts
	if c.inj != nil {
		uniques, report.InjectedFaults = c.inj.Corrupt(uniques)
		injected = faultCounts(report.InjectedFaults)
	}
	report.UniqueSignatures = len(uniques)
	c.em.mergeDone(report.Iterations, len(uniques), injected, true)
	err := c.decodeAndCheck(ctx, uniques, m, report)
	c.em.campaignEnd(report, err, began)
	return report, err
}

// Collect drives only the execution stage — the "device side" of the
// paper's flow — returning the merged unique signatures without decoding
// or checking them. Pair with Check on the host; both sides observe the
// same signatures for the same (Seed, Iterations), and fault injection,
// checkpointing, and shard retry apply identically.
func (c *Campaign) Collect(ctx context.Context) ([]Unique, error) {
	began := time.Now()
	c.em.campaignStart(c.prog, c.opts, c.opts.Iterations, c.workers, began)
	report := c.newReport() // accounting sink; callers get signatures only
	m := c.newMerger(report, false)
	if runErr := c.execute(ctx, report, m); runErr != nil {
		c.em.campaignEnd(report, runErr, began)
		return nil, runErr
	}
	uniques := m.acc.Sorted()
	var injected obs.FaultCounts
	if c.inj != nil {
		var counts map[FaultKind]int
		uniques, counts = c.inj.Corrupt(uniques)
		injected = faultCounts(counts)
	}
	report.UniqueSignatures = len(uniques)
	c.em.mergeDone(report.Iterations, len(uniques), injected, true)
	c.em.campaignEnd(report, nil, began)
	return uniques, nil
}

// Check drives only the host side: previously collected unique signatures
// are decoded and checked under the campaign's options — checker
// selection, Workers, Strict/QuarantineThreshold, and the observer all
// apply. It requires the static ws mode, which needs nothing beyond the
// signatures themselves.
func (c *Campaign) Check(ctx context.Context, uniques []Unique) (*Report, error) {
	if c.opts.ObservedWS {
		return nil, errors.New("mtracecheck: checking stored signatures requires the static ws mode (stored signatures carry no recorded write serialization)")
	}
	began := time.Now()
	c.em.campaignStart(c.prog, c.opts, 0, c.workers, began)
	report := c.newReport()
	report.UniqueSignatures = len(uniques)
	err := c.decodeAndCheck(ctx, uniques, nil, report)
	c.em.campaignEnd(report, err, began)
	return report, err
}

// SignatureMetadata returns the provenance header this campaign writes via
// SaveSignatures and validates on load.
func (c *Campaign) SignatureMetadata() SignatureMeta {
	return SignatureMeta{
		ProgHash: progHash(c.prog), Seed: c.opts.Seed, Platform: c.opts.Platform.Name,
	}
}

// decodeAndCheck is the shared host side of Run and Check: signature decode
// — assembled from the merger's streaming decode cache when chunks were
// decoded eagerly, or a barrier decodeItems pass when streaming wasn't
// possible (offline Check, corruption-injected sets) — then the
// quarantine-threshold gate and the selected checker. Only the collective
// check (and the global sort feeding it) needs the barrier: the windowed
// re-sorts of Alg. 2 assume adjacent signatures are globally sorted, a
// property no partial stream has.
func (c *Campaign) decodeAndCheck(ctx context.Context, uniques []Unique,
	m *merger, report *Report) error {
	// Warm-cache fast path: partition the merged set against the corpus at
	// the sort barrier. Hits were proven acyclic by an earlier campaign —
	// the verdict is a pure function of (program, signature) — so they skip
	// decode and checking entirely; they still count in UniqueSignatures,
	// so the Fig. 8 growth curve and the printed verdict are bit-identical
	// to a cold or corpus-less run. A corpus the campaign refused (load
	// failure upstream, width mismatch) degrades to that cold run.
	novel := uniques
	if c.opts.Corpus != nil {
		if !c.corpusOK {
			report.CorpusIgnored = c.corpusErr
			c.em.corpusEvent(obs.CorpusEvent{
				Op: obs.CorpusIgnored, Program: c.corpKey.ProgHash,
				Platform: c.corpKey.Platform, MCM: c.corpKey.MCM, Err: c.corpusErr,
			})
		} else {
			report.CorpusConsulted = true
			var hits int
			novel, hits = c.partitionCorpus(uniques)
			report.CorpusHits = hits
			c.em.corpusEvent(obs.CorpusEvent{
				Op: obs.CorpusLookup, Program: c.corpKey.ProgHash,
				Platform: c.corpKey.Platform, MCM: c.corpKey.MCM,
				Hits: hits, Misses: len(novel), Known: c.opts.Corpus.Len(c.corpKey),
			})
		}
	}
	var builder *graph.Builder
	var items []check.Item
	var quarantined []Quarantined
	var err error
	if m != nil && m.builder != nil {
		builder = m.builder
		items, quarantined, err = m.assemble(novel)
	} else {
		builder = c.newBuilder()
		var wsBySig map[string]graph.WS
		if m != nil {
			wsBySig = m.wsBySig
		}
		items, quarantined, err = decodeItems(ctx, c.meta, builder, novel, wsBySig,
			c.workers, c.opts.Strict, c.em)
	}
	if err != nil {
		return err
	}
	report.Quarantined = quarantined
	// The threshold denominator stays the full unique set: corpus hits are
	// decodable by construction (they decoded when first proven), so the
	// quarantined fraction matches the cold run's.
	if c.opts.QuarantineThreshold > 0 && len(uniques) > 0 {
		if frac := float64(len(quarantined)) / float64(len(uniques)); frac > c.opts.QuarantineThreshold {
			return fmt.Errorf("%w: %d of %d unique signatures (%.2f%% > %.2f%%)",
				ErrQuarantineThreshold, len(quarantined), len(uniques),
				100*frac, 100*c.opts.QuarantineThreshold)
		}
	}
	// Every backend goes through the same sharded dispatch: parallelizable
	// backends fan out across Workers (a serial backend runs as the single
	// shard ShardedBackend reports honestly), and the context reaches every
	// per-range check, so cancellation and Workers apply uniformly instead
	// of only on the default path.
	report.CheckStats, err = check.ShardedBackend(ctx, c.backend, builder, items,
		c.workers, c.em.checkShardFunc(c.backend.Name()))
	if err != nil {
		return err
	}
	report.Violations = report.CheckStats.Violations
	if c.corpusActive() {
		if err := c.corpusAppend(report, items); err != nil {
			return err
		}
	}
	return nil
}

// partitionCorpus splits the sorted unique set into corpus misses (the
// returned slice, ascending order preserved) and hits.
func (c *Campaign) partitionCorpus(uniques []Unique) ([]Unique, int) {
	novel := make([]Unique, 0, len(uniques))
	hits := 0
	for _, u := range uniques {
		c.keyBuf = u.Sig.AppendBinary(c.keyBuf[:0])
		if c.opts.Corpus.Contains(c.corpKey, c.keyBuf) {
			hits++
			continue
		}
		novel = append(novel, u)
	}
	return novel, hits
}

// corpusAppend stages every newly checked signature that proved acyclic
// — violating signatures are never cached — and flushes the corpus
// atomically. Flush failures are surfaced like checkpoint-write
// failures: the verdict stands, but the campaign errors rather than
// silently dropping persistence the caller asked for.
func (c *Campaign) corpusAppend(report *Report, items []check.Item) error {
	var bad map[string]bool
	if len(report.Violations) > 0 {
		bad = make(map[string]bool, len(report.Violations))
		for _, v := range report.Violations {
			bad[v.Sig.Key()] = true
		}
	}
	appended := 0
	for _, it := range items {
		// Key() allocates; skip it entirely on the usual no-violations path.
		if bad != nil && bad[it.Sig.Key()] {
			continue
		}
		if c.opts.Corpus.Add(c.corpKey, it.Sig, c.opts.Seed) {
			appended++
		}
	}
	report.CorpusAppended = appended
	bytes, err := c.opts.Corpus.Flush()
	c.em.corpusEvent(obs.CorpusEvent{
		Op: obs.CorpusFlush, Program: c.corpKey.ProgHash,
		Platform: c.corpKey.Platform, MCM: c.corpKey.MCM,
		Appended: appended, Known: c.opts.Corpus.Len(c.corpKey),
		Bytes: bytes, Err: err,
	})
	if err != nil {
		return fmt.Errorf("mtracecheck: corpus: %w", err)
	}
	return nil
}

// merger is the streaming consumer of completed execution chunks. It runs
// on the campaign goroutine while workers execute later chunks, folding
// each chunk's signatures into the campaign-wide accumulator in chunk order
// and — when the mode allows — eagerly decoding every newly observed
// signature, so the merge and decode stages overlap execution instead of
// waiting behind it. Eager decoding is sound because decode is a pure
// function of (signature, metadata): the final sorted assembly only has to
// look results up. It is skipped when signature corruption is enabled,
// since corruption applies to the final merged set.
type merger struct {
	c       *Campaign
	report  *Report
	acc     *sig.Set            // campaign-wide dedup accumulator
	wsBySig map[string]graph.WS // first-global-observation ws (ObservedWS)

	// Eager-decode state; builder == nil means barrier decoding.
	builder *graph.Builder
	rf      []int32 // dense reads-from scratch, reused per signature
	keyBuf  []byte  // binary-key scratch for map lookups
	cache   map[string]decodeEntry
}

// decodeEntry is one signature's cached decode outcome. Counts are not
// cached: the quarantine report takes them from the final merged set.
type decodeEntry struct {
	edges []graph.Edge
	kind  QuarantineKind
	err   error
}

func (c *Campaign) newMerger(report *Report, decode bool) *merger {
	m := &merger{c: c, report: report, acc: sig.NewSet()}
	if c.opts.ObservedWS {
		m.wsBySig = make(map[string]graph.WS)
	}
	if decode && !c.opts.Fault.CorruptsSignatures() {
		m.builder = c.newBuilder()
		m.cache = make(map[string]decodeEntry)
	}
	return m
}

// absorb folds one completed chunk into the campaign state: report
// accounting, incremental dedup, first-observation ws capture, and the
// eager decode of signatures never seen before. Chunks are absorbed
// strictly in chunk order, so every order-sensitive output here is
// independent of worker count and completion schedule.
func (m *merger) absorb(out *shardOut) {
	r := m.report
	r.Iterations += out.iterations
	r.TotalCycles += out.cycles
	r.Squashes += out.squashes
	r.Executions = append(r.Executions, out.execs...)
	r.AssertionFailures = append(r.AssertionFailures, out.asserts...)
	var began time.Time
	if m.builder != nil {
		began = time.Now()
	}
	seen := len(m.cache)
	fresh, decoded, qd, qe := 0, 0, 0, 0
	for _, u := range out.set.Entries() {
		if !m.acc.AddUnique(u) {
			continue
		}
		if m.wsBySig == nil && m.builder == nil {
			continue
		}
		m.keyBuf = u.Sig.AppendBinary(m.keyBuf[:0])
		if m.wsBySig != nil {
			// New to the campaign means first observed in this chunk, and
			// chunks land in order: first-in-chunk is first-globally.
			if ws, ok := out.ws[string(m.keyBuf)]; ok {
				m.wsBySig[string(m.keyBuf)] = ws
			}
		}
		if m.builder == nil {
			continue
		}
		if m.c.corpusActive() && m.c.opts.Corpus.Contains(m.c.corpKey, m.keyBuf) {
			// Known good: the barrier partition will drop it before decode
			// and check, so the streaming decode skips it too.
			continue
		}
		e := m.decodeOne(u.Sig)
		m.cache[string(m.keyBuf)] = e
		fresh++
		switch {
		case e.err == nil:
			decoded++
		case e.kind == QuarantineDecode:
			qd++
		default:
			qe++
		}
	}
	if m.builder != nil && fresh > 0 {
		m.c.em.decodeBatchEnd(out.idx, seen, fresh, decoded, qd, qe, began)
	}
}

// absorbResumed seeds the accumulator with a checkpoint's unique set,
// eagerly decoding it like any other batch (resume requires static ws, so
// no ws capture applies).
func (m *merger) absorbResumed(uniques []sig.Unique) {
	if len(uniques) == 0 {
		return
	}
	var began time.Time
	if m.builder != nil {
		began = time.Now()
	}
	decoded, qd, qe := 0, 0, 0
	for _, u := range uniques {
		if !m.acc.AddUnique(u) || m.builder == nil {
			continue
		}
		m.keyBuf = u.Sig.AppendBinary(m.keyBuf[:0])
		if m.c.corpusActive() && m.c.opts.Corpus.Contains(m.c.corpKey, m.keyBuf) {
			continue
		}
		e := m.decodeOne(u.Sig)
		m.cache[string(m.keyBuf)] = e
		switch {
		case e.err == nil:
			decoded++
		case e.kind == QuarantineDecode:
			qd++
		default:
			qe++
		}
	}
	if m.builder != nil {
		m.c.em.decodeBatchEnd(0, 0, len(m.cache), decoded, qd, qe, began)
	}
}

// decodeOne decodes a single signature against the campaign metadata and
// builds its dynamic edge set. Callers set m.keyBuf to the signature's
// binary key first; the observed-ws lookup reads it.
func (m *merger) decodeOne(s sig.Signature) decodeEntry {
	if m.rf == nil {
		m.rf = make([]int32, m.builder.NumOps())
	}
	if err := m.c.meta.DecodeInto(s, m.rf); err != nil {
		return decodeEntry{kind: QuarantineDecode, err: err}
	}
	var ws graph.WS
	if m.wsBySig != nil {
		ws = m.wsBySig[string(m.keyBuf)]
	}
	edges, err := m.builder.AppendDynamicEdges(nil, m.rf, ws)
	if err != nil {
		return decodeEntry{kind: QuarantineEdges, err: err}
	}
	return decodeEntry{edges: edges}
}

// assemble is the eager-decode barrier: the merged, sorted uniques are
// matched against the streaming decode cache, yielding the checker's items
// and the quarantine list in ascending signature order — bit-identical to
// a barrier decodeItems pass, because decode is a pure function of the
// signature and the cache covers every unique the merger absorbed. In
// strict mode the lowest-sorted failing signature's error is returned, as
// the serial decode loop would have surfaced it.
func (m *merger) assemble(uniques []sig.Unique) ([]check.Item, []Quarantined, error) {
	items := make([]check.Item, 0, len(uniques))
	var quarantined []Quarantined
	for _, u := range uniques {
		m.keyBuf = u.Sig.AppendBinary(m.keyBuf[:0])
		e, ok := m.cache[string(m.keyBuf)]
		if !ok {
			// Every unique passed through absorb, so this is defensive; a
			// fresh decode keeps the barrier correct regardless.
			e = m.decodeOne(u.Sig)
			m.cache[string(m.keyBuf)] = e
		}
		if e.err != nil {
			if m.c.opts.Strict {
				return nil, nil, e.err
			}
			quarantined = append(quarantined, Quarantined{Sig: u.Sig, Count: u.Count, Kind: e.kind, Err: e.err})
			continue
		}
		items = append(items, check.Item{Sig: u.Sig, Edges: e.edges})
	}
	return items, quarantined, nil
}

// execute runs the execution stage: optional checkpoint resume, the
// iteration sequence in checkpoint-sized segments, work-stealing chunk
// scheduling with per-chunk retry and degradation bookkeeping, streaming
// results into the merger as chunks complete. The report's execution
// accounting (Iterations, TotalCycles, Squashes, Executions,
// AssertionFailures, ShardFailures, ResumedIterations) is filled in as
// chunks land, so the report is honest even when an error cuts the
// campaign short.
func (c *Campaign) execute(ctx context.Context, report *Report, m *merger) error {
	opts := c.opts
	completed := 0
	if opts.Resume {
		if opts.CheckpointPath == "" {
			return errors.New("mtracecheck: Resume requires CheckpointPath")
		}
		if opts.ObservedWS {
			return errors.New("mtracecheck: resume requires the static ws mode (checkpointed signatures carry no recorded write serialization)")
		}
		ck, err := readCheckpointFile(opts.CheckpointPath)
		if err != nil {
			return fmt.Errorf("mtracecheck: resume: %w", err)
		}
		if ck.Dist != nil {
			// A distributed checkpoint's coverage is a per-chunk bitmap, not
			// the contiguous prefix this resume path replays from.
			return errors.New("mtracecheck: resume: checkpoint belongs to a distributed campaign; resume it through the dist server")
		}
		if ck.Seed != opts.Seed {
			return fmt.Errorf("mtracecheck: resume: checkpoint seed %d does not match run seed %d", ck.Seed, opts.Seed)
		}
		if h := progHash(c.prog); ck.ProgHash != h {
			return fmt.Errorf("mtracecheck: resume: checkpoint was written for a different test program")
		}
		if ck.Completed > opts.Iterations {
			return fmt.Errorf("mtracecheck: resume: checkpoint covers %d iterations, campaign requests only %d", ck.Completed, opts.Iterations)
		}
		completed = ck.Completed
		report.ResumedIterations = completed
		report.Iterations += completed
		m.absorbResumed(ck.Uniques)
		c.em.checkpointOp(obs.CheckpointResumed, opts.CheckpointPath, completed, len(ck.Uniques), 0)
	}
	// One Runner per worker for the whole campaign: platform/program
	// validation surfaces before any work, and the static-analysis cost of
	// NewRunner is paid workers times per campaign instead of workers times
	// per checkpoint segment.
	workers := c.workers
	if workers < 1 {
		workers = 1
	}
	if n := (opts.Iterations - completed + execChunkSize - 1) / execChunkSize; workers > n && n > 0 {
		workers = n
	}
	runners := make([]*sim.Runner, workers)
	for i := range runners {
		r, err := sim.NewRunner(opts.Platform, c.prog, opts.Seed)
		if err != nil {
			return err
		}
		runners[i] = r
	}
	// The campaign's per-iteration seed sequence, drawn once and sliced per
	// chunk at dispatch: no worker pays the old O(start) skip-ahead, and
	// any runner can execute any chunk because seeds travel with the work.
	seeds := sim.NewSeedStream(opts.Seed)
	seeds.Skip(completed)
	checkpointing := opts.CheckpointPath != ""
	segment := opts.Iterations - completed
	if checkpointing {
		segment = opts.CheckpointEvery
		if segment <= 0 {
			segment = opts.Iterations / 10
		}
		if segment < 1 {
			segment = 1
		}
	}
	for completed < opts.Iterations {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := opts.Iterations - completed
		if checkpointing && segment < n {
			n = segment
		}
		segClean, err := c.runChunks(ctx, report, m, runners, seeds, completed, n)
		if err != nil {
			return err
		}
		completed += n
		if checkpointing {
			if !segClean {
				// A lost chunk left a hole in the iteration sequence; a
				// checkpoint would claim coverage the campaign never had.
				checkpointing = false
				continue
			}
			merged := m.acc.Sorted()
			c.em.mergeDone(completed, len(merged), obs.FaultCounts{}, false)
			ck := sig.Checkpoint{
				Seed: opts.Seed, ProgHash: progHash(c.prog),
				Completed: completed, Uniques: merged,
			}
			bytes, err := writeCheckpointFile(opts.CheckpointPath, ck)
			if err != nil {
				return fmt.Errorf("mtracecheck: checkpoint: %w", err)
			}
			c.em.checkpointOp(obs.CheckpointSaved, opts.CheckpointPath, completed, len(merged), bytes)
			if c.corpusActive() {
				// Checkpoint boundaries also persist any staged corpus
				// entries — a no-op for a lone campaign (verification is
				// terminal), but a shared store (the dist server's) may hold
				// appends from jobs that finalized since the last flush.
				if _, err := c.opts.Corpus.Flush(); err != nil {
					return fmt.Errorf("mtracecheck: corpus: %w", err)
				}
			}
		}
	}
	return nil
}

// runChunks executes one segment [segStart, segStart+segCount) through the
// work-stealing scheduler: workers pull fixed-size chunks from a shared
// cursor, execute them on their private Runner with per-chunk retry, and
// stream completed chunks to the merger. The merger runs here, on the
// campaign goroutine, absorbing chunks strictly in chunk order through a
// reorder buffer while workers execute later chunks — the stage overlap —
// so every order-sensitive output (executions, assertion failures,
// first-observation ws, streaming decode batches, failure bookkeeping) is
// identical for every worker count and completion schedule. It reports
// whether the segment completed without shard failures, plus the first
// fatal error in chunk order.
func (c *Campaign) runChunks(ctx context.Context, report *Report, m *merger,
	runners []*sim.Runner, seeds *sim.SeedStream, segStart, segCount int) (bool, error) {
	nChunks := (segCount + execChunkSize - 1) / execChunkSize
	type chunk struct {
		idx, start, count int
		seeds             []int64
	}
	var mu sync.Mutex
	next, stop := 0, false
	// dispatch pops the next chunk and draws its seed slice under the lock.
	// The cursor is monotonic, so dispatched chunks always form the prefix
	// [0, next) and the reorder buffer below can never stall waiting for an
	// undispatched index.
	dispatch := func() (chunk, bool) {
		mu.Lock()
		defer mu.Unlock()
		if stop || next >= nChunks || ctx.Err() != nil {
			return chunk{}, false
		}
		ck := chunk{idx: next, start: segStart + next*execChunkSize}
		ck.count = min(execChunkSize, segStart+segCount-ck.start)
		ck.seeds = make([]int64, ck.count)
		seeds.Fill(ck.seeds)
		next++
		return ck, true
	}
	poison := func() { mu.Lock(); stop = true; mu.Unlock() }

	workers := len(runners)
	if workers > nChunks {
		workers = nChunks
	}
	results := make(chan *shardOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				ck, ok := dispatch()
				if !ok {
					return
				}
				out := c.runChunkRetrying(ctx, w, &runners[w], ck.start, ck.count, ck.seeds)
				out.idx = ck.idx
				results <- out
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]*shardOut)
	nextMerge := 0
	segClean := true
	var firstErr error
	for out := range results {
		pending[out.idx] = out
		for {
			o, ok := pending[nextMerge]
			if !ok {
				break
			}
			delete(pending, nextMerge)
			nextMerge++
			m.absorb(o)
			if o.err == nil {
				continue
			}
			segClean = false
			if errors.Is(o.err, ErrShardFailed) && !c.opts.Strict {
				// Infra failure that survived its retries: degrade to
				// partial results, recorded honestly; scheduling continues.
				report.ShardFailures = append(report.ShardFailures, ShardFailure{
					Start: o.start, Count: o.count,
					Executed: o.iterations, Attempts: o.attempts, Err: o.err,
				})
				continue
			}
			if firstErr == nil {
				// Fatal: stop handing out new chunks, drain what's in
				// flight. Merge order is ascending, so this is the
				// earliest fatal error in iteration order.
				firstErr = o.err
				poison()
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return segClean, err
	}
	return segClean, firstErr
}

// runChunkRetrying drives one chunk to completion on the worker's Runner,
// re-running it from the chunk start after transient failures (recovered
// panics, expired shard deadlines) with capped exponential backoff. Each
// attempt restarts the chunk's seed slice from the top, so a retried chunk
// replays bit-identically. A panicking attempt may leave the Runner's
// reusable platform state corrupt, so the runner is dropped and rebuilt
// before any reuse — the next attempt, or the worker's next chunk when the
// failure exhausted its retries. Platform crashes are findings and parent
// cancellation is final; neither is retried. A chunk still failing after
// every retry returns its final partial attempt with the failure wrapped
// in ErrShardFailed.
func (c *Campaign) runChunkRetrying(ctx context.Context, worker int, runner **sim.Runner,
	chunkStart, count int, seeds []int64) *shardOut {
	opts := c.opts
	backoff := time.Millisecond
	const maxBackoff = 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		if *runner == nil {
			r, err := sim.NewRunner(opts.Platform, c.prog, opts.Seed)
			if err != nil {
				return &shardOut{set: sig.NewSet(), start: chunkStart, count: count,
					attempts: attempt + 1, err: err}
			}
			*runner = r
		}
		shardCtx, cancel := ctx, context.CancelFunc(func() {})
		if opts.ShardTimeout > 0 {
			shardCtx, cancel = context.WithTimeout(ctx, opts.ShardTimeout)
		}
		var src sim.Source = &seededSource{r: *runner, seeds: seeds}
		if c.inj != nil {
			src = c.inj.WrapShard(shardCtx, src, chunkStart, count, attempt)
		}
		began := time.Now()
		c.em.shardStart(obs.StageExecute, worker, attempt, chunkStart, count, began)
		out := runShardAttempt(shardCtx, src, c.meta, opts, chunkStart, count)
		cancel()
		out.start, out.count, out.attempts = chunkStart, count, attempt+1
		if errors.Is(out.err, errShardPanic) {
			// The panic may have unwound mid-iteration; the runner's
			// reusable state is suspect.
			*runner = nil
		}
		willRetry := out.err != nil && retryable(out.err, ctx) && attempt < opts.ShardRetries
		if out.err != nil && retryable(out.err, ctx) && !willRetry {
			out.err = fmt.Errorf("%w: iterations [%d,%d) after %d attempts: %v",
				ErrShardFailed, chunkStart, chunkStart+count, attempt+1, out.err)
		}
		retrySleep := time.Duration(0)
		if willRetry {
			retrySleep = backoff
		}
		c.em.execShardEnd(worker, out, began, willRetry, retrySleep)
		if !willRetry {
			return out
		}
		select {
		case <-ctx.Done():
			out.err = ctx.Err()
			return out
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// seededSource adapts a Runner to one chunk's slice of the campaign seed
// stream: call i executes under seeds[i] via RunSeeded, so the runner's own
// master stream is never consulted and any worker's runner can execute any
// chunk. A fresh source per attempt restarts the slice from the top; the
// fault injector's stall/panic shim wraps it transparently.
type seededSource struct {
	r     *sim.Runner
	seeds []int64
	i     int
}

func (s *seededSource) Run() (*sim.Execution, error) {
	seed := s.seeds[s.i]
	s.i++
	return s.r.RunSeeded(seed)
}

// emitter is the pipeline's nil-safe observer tap. The zero value (nil
// observer) makes every method a single branch, preserving the pipeline's
// allocation budgets; events are flat structs built on the caller's stack.
type emitter struct {
	o obs.Observer
}

func (em emitter) campaignStart(p *Program, opts Options, iterations, workers int, began time.Time) {
	if em.o == nil {
		return
	}
	threads, ops := 0, 0
	for _, t := range p.Threads {
		threads++
		ops += len(t.Ops)
	}
	em.o.CampaignStart(obs.CampaignStart{
		Program: p.Name, Threads: threads, Ops: ops,
		Platform: opts.Platform.Name, Model: opts.Platform.Model.String(),
		Iterations: iterations, Workers: workers, Time: began,
	})
}

func (em emitter) campaignEnd(r *Report, err error, began time.Time) {
	if em.o == nil {
		return
	}
	now := time.Now()
	em.o.CampaignEnd(obs.CampaignEnd{
		Iterations: r.Iterations, Uniques: r.UniqueSignatures,
		Quarantined: len(r.Quarantined), Violations: len(r.Violations),
		Asserts: len(r.AssertionFailures), Partial: r.Partial(), Err: err,
		Time: now, Duration: now.Sub(began),
	})
}

func (em emitter) shardStart(stage obs.Stage, shard, attempt, start, count int, began time.Time) {
	if em.o == nil {
		return
	}
	em.o.ShardStart(obs.ShardStart{
		Stage: stage, Shard: shard, Attempt: attempt,
		Start: start, Count: count, Time: began,
	})
}

func (em emitter) execShardEnd(shard int, out *shardOut, began time.Time, willRetry bool, backoff time.Duration) {
	if em.o == nil {
		return
	}
	now := time.Now()
	em.o.ShardEnd(obs.ShardEnd{
		Stage: obs.StageExecute, Shard: shard, Attempt: out.attempts - 1,
		Start: out.start, Count: out.count,
		Iterations: out.iterations, Cycles: out.cycles, Squashes: out.squashes,
		Uniques: out.set.Len(), Asserts: len(out.asserts),
		Err: out.err, WillRetry: willRetry, Backoff: backoff,
		Time: now, Duration: now.Sub(began),
	})
}

func (em emitter) decodeShardEnd(shard, start, count, decoded int, quar []*Quarantined, err error, began time.Time) {
	if em.o == nil {
		return
	}
	var qd, qe int
	for i := start; i < start+count; i++ {
		if quar[i] == nil {
			continue
		}
		if quar[i].Kind == QuarantineDecode {
			qd++
		} else {
			qe++
		}
	}
	now := time.Now()
	em.o.ShardEnd(obs.ShardEnd{
		Stage: obs.StageDecode, Shard: shard, Start: start, Count: count,
		Decoded: decoded, QuarantinedDecode: qd, QuarantinedEdges: qe,
		Err: err, Time: now, Duration: now.Sub(began),
	})
}

// decodeBatchEnd reports one streaming decode batch: the newly observed
// unique signatures a completed chunk (or a resumed checkpoint) contributed,
// decoded eagerly while later chunks still execute. Shard is the chunk
// index; Start is the number of uniques previously seen by the decoder, so
// batches tile the campaign's first-observation order.
func (em emitter) decodeBatchEnd(shard, start, count, decoded, quarDecode, quarEdges int, began time.Time) {
	if em.o == nil {
		return
	}
	now := time.Now()
	em.o.ShardEnd(obs.ShardEnd{
		Stage: obs.StageDecode, Shard: shard, Start: start, Count: count,
		Decoded: decoded, QuarantinedDecode: quarDecode, QuarantinedEdges: quarEdges,
		Time: now, Duration: now.Sub(began),
	})
}

func (em emitter) checkShardEnd(backend string, shard, shards, start, count int, part *check.Result, began time.Time, took time.Duration) {
	if em.o == nil {
		return
	}
	e := obs.ShardEnd{
		Stage: obs.StageCheck, Shard: shard, Start: start, Count: count,
		Backend: backend, Shards: shards,
		Time: began.Add(took), Duration: took,
	}
	if part != nil {
		complete, noResort, incremental := part.Counts()
		e.Graphs = part.Total
		e.Complete, e.NoResort, e.Incremental = complete, noResort, incremental
		e.SortedVertices = part.SortedVertices
		e.BackwardEdges = part.BackwardEdges
		e.MaxWindow = part.MaxWindow
		e.ClockUpdates = part.ClockUpdates
		e.Propagations = part.Propagations
		e.Violations = len(part.Violations)
	}
	em.o.ShardEnd(e)
}

// checkShardFunc adapts the emitter to check.ShardedBackend's callback;
// nil when unobserved so the checker skips callback work entirely.
func (em emitter) checkShardFunc(backend string) check.ShardFunc {
	if em.o == nil {
		return nil
	}
	return func(shard, shards, start, count int, part *check.Result, began time.Time, took time.Duration) {
		em.checkShardEnd(backend, shard, shards, start, count, part, began, took)
	}
}

func (em emitter) mergeDone(completed, uniques int, injected obs.FaultCounts, final bool) {
	if em.o == nil {
		return
	}
	em.o.MergeDone(obs.MergeDone{
		Completed: completed, Uniques: uniques, Injected: injected,
		Final: final, Time: time.Now(),
	})
}

func (em emitter) checkpointOp(op obs.CheckpointOp, path string, completed, uniques int, bytes int64) {
	if em.o == nil {
		return
	}
	em.o.Checkpoint(obs.Checkpoint{
		Op: op, Path: path, Completed: completed, Uniques: uniques,
		Bytes: bytes, Time: time.Now(),
	})
}

func (em emitter) corpusEvent(e obs.CorpusEvent) {
	if em.o == nil {
		return
	}
	e.Time = time.Now()
	obs.EmitCorpus(em.o, e)
}

// faultCounts flattens the report's injected-fault map into the event
// struct (signature-corruption kinds only, which is all Corrupt reports).
func faultCounts(m map[FaultKind]int) obs.FaultCounts {
	return obs.FaultCounts{
		BitFlip:    m[FaultBitFlip],
		Truncate:   m[FaultTruncate],
		Duplicate:  m[FaultDuplicate],
		OutOfRange: m[FaultOutOfRange],
	}
}

// injector builds the fault injector for the options, rejecting
// configurations injection cannot honor.
func injector(opts Options) (*fault.Injector, error) {
	if !opts.Fault.Enabled() {
		return nil, nil
	}
	if opts.ObservedWS {
		return nil, errors.New("mtracecheck: fault injection requires the static ws mode (corrupted signatures carry no recorded write serialization)")
	}
	return fault.NewInjector(opts.Fault)
}

// progHash fingerprints a program for checkpoint and signature-set
// identity (FNV-64a of the canonical text format).
func progHash(p *Program) uint64 {
	h := fnv.New64a()
	io.WriteString(h, prog.Format(p))
	return h.Sum64()
}

// ProgramHash returns the fingerprint used to tie checkpoints and saved
// signature sets to the test program they were collected from.
func ProgramHash(p *Program) uint64 { return progHash(p) }

// readCheckpointFile loads a campaign checkpoint.
func readCheckpointFile(path string) (sig.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return sig.Checkpoint{}, err
	}
	defer f.Close()
	return sig.ReadCheckpoint(f)
}

// writeCheckpointFile persists a checkpoint atomically (temp file + rename),
// so an interruption mid-write never corrupts the previous checkpoint. It
// returns the encoded payload size.
func writeCheckpointFile(path string, ck sig.Checkpoint) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	if err := sig.WriteCheckpoint(cw, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return cw.n, os.Rename(tmp, path)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// shardOut is what one execution chunk attempt produces: private signature
// set and stats, streamed to the merger and absorbed in chunk order.
type shardOut struct {
	set        *sig.Set
	ws         map[string]graph.WS // sig key -> first-observation ws
	idx        int                 // chunk index within its segment
	start      int                 // global iteration chunk start
	count      int                 // chunk size
	attempts   int
	iterations int
	cycles     int64
	squashes   int
	execs      []*sim.Execution
	asserts    []error
	err        error
}

// retryable classifies a shard error: recovered panics and expired
// per-shard deadlines are transient infra faults worth retrying; anything
// else — platform crashes (findings), encode errors, parent cancellation —
// is final.
func retryable(err error, parent context.Context) bool {
	if parent.Err() != nil {
		return false
	}
	return errors.Is(err, errShardPanic) || errors.Is(err, context.DeadlineExceeded)
}

// runShardAttempt drives one source through count iterations starting at
// global iteration index start, polling the context between iterations and
// converting a panic anywhere below — simulator, encoder, or an injected
// shard fault — into a shard error instead of crashing the process. It is
// deliberately free of observer hooks: events fire at the chunk boundary,
// never inside the per-iteration hot loop.
func runShardAttempt(ctx context.Context, src sim.Source, meta *instrument.Meta,
	opts Options, start, count int) (out *shardOut) {
	out = &shardOut{set: sig.NewSet()}
	if opts.ObservedWS {
		out.ws = make(map[string]graph.WS)
	}
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("%w at iteration %d: %v", errShardPanic, start+out.iterations, r)
		}
	}()
	var sigBuf []uint64 // per-attempt encode scratch, reused every iteration
	for i := 0; i < count; i++ {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		ex, err := src.Run()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// An interrupted stall, not a platform failure.
				out.err = err
				return out
			}
			out.err = fmt.Errorf("%w: iteration %d: %v", ErrCrash, start+i, err)
			return out
		}
		out.iterations++
		out.cycles += int64(ex.Cycles)
		out.squashes += ex.Squashes
		if opts.KeepExecutions {
			// The source's execution is scratch, overwritten next iteration:
			// retention requires a deep copy.
			out.execs = append(out.execs, ex.Clone())
		}
		sigBuf, err = meta.EncodeExecutionInto(sigBuf[:0], ex.LoadValues)
		if err != nil {
			var ae *instrument.AssertionError
			if errors.As(err, &ae) {
				out.asserts = append(out.asserts, ae)
				continue
			}
			out.err = err
			return out
		}
		if out.set.AddWords(sigBuf) && opts.ObservedWS {
			// First observation of this interleaving in this chunk: keep its
			// write-serialization order for graph construction. (The
			// static-ws default needs nothing beyond the signature.)
			out.ws[sig.New(sigBuf).Key()] = ex.WSByWord()
		}
	}
	return out
}

// decodeItems is the barrier decode stage over an explicit worker count,
// used when signatures could not be decoded as they streamed in (offline
// Check, corruption-injected sets). Workers fill disjoint contiguous
// ranges of the result and poll the context as they go. In strict mode the
// error for the lowest-indexed failing signature is returned — the one the
// serial loop would have hit first. In graceful mode failing signatures
// are quarantined (in sorted order, deterministically: failure is a pure
// function of signature and metadata) and the surviving items are
// compacted, preserving ascending order for the collective checker.
func decodeItems(ctx context.Context, meta *instrument.Meta, b *graph.Builder,
	uniques []sig.Unique, wsBySig map[string]graph.WS, workers int,
	strict bool, em emitter) ([]check.Item, []Quarantined, error) {
	items := make([]check.Item, len(uniques))
	quar := make([]*Quarantined, len(uniques))
	decode := func(lo, hi int) (int, error) {
		// Per-worker scratch: a dense reads-from slice reused across
		// signatures and a key buffer for the allocation-free ws lookup.
		rf := make([]int32, b.NumOps())
		var keyBuf []byte
		decoded := 0
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return decoded, err
			}
			u := uniques[i]
			if err := meta.DecodeInto(u.Sig, rf); err != nil {
				if strict {
					return decoded, err
				}
				quar[i] = &Quarantined{Sig: u.Sig, Count: u.Count, Kind: QuarantineDecode, Err: err}
				continue
			}
			var ws graph.WS
			if wsBySig != nil {
				keyBuf = u.Sig.AppendBinary(keyBuf[:0])
				ws = wsBySig[string(keyBuf)]
			}
			edges, err := b.AppendDynamicEdges(nil, rf, ws)
			if err != nil {
				if strict {
					return decoded, err
				}
				quar[i] = &Quarantined{Sig: u.Sig, Count: u.Count, Kind: QuarantineEdges, Err: err}
				continue
			}
			items[i] = check.Item{Sig: u.Sig, Edges: edges}
			decoded++
		}
		return decoded, nil
	}
	if workers > len(uniques) {
		workers = len(uniques)
	}
	if workers <= 1 {
		began := time.Now()
		decoded, err := decode(0, len(uniques))
		em.decodeShardEnd(0, 0, len(uniques), decoded, quar, err, began)
		if err != nil {
			return nil, nil, err
		}
	} else {
		base, rem := len(uniques)/workers, len(uniques)%workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		lo := 0
		for w := 0; w < workers; w++ {
			size := base
			if w < rem {
				size++
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				began := time.Now()
				var decoded int
				decoded, errs[w] = decode(lo, hi)
				em.decodeShardEnd(w, lo, hi-lo, decoded, quar, errs[w], began)
			}(w, lo, lo+size)
			lo += size
		}
		wg.Wait()
		// Ranges ascend with the worker index, so the first recorded error
		// is the one with the lowest signature index.
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
	}
	var quarantined []Quarantined
	kept := items[:0]
	for i := range items {
		if quar[i] != nil {
			quarantined = append(quarantined, *quar[i])
			continue
		}
		kept = append(kept, items[i])
	}
	return kept, quarantined, nil
}
