// Package mtracecheck is a post-silicon memory-consistency validation
// framework, reproducing "MTraceCheck: Validating Non-Deterministic
// Behavior of Memory Consistency Models in Post-Silicon Validation"
// (Lee & Bertacco, ISCA 2017).
//
// The pipeline follows the paper's Fig. 1:
//
//  1. Generate constrained-random multi-threaded tests (or use directed
//     litmus tests) over a small pool of shared words, every store writing
//     a unique value.
//  2. Instrument each test with observability-enhancing code that
//     accumulates a compact memory-access interleaving signature — a 1:1
//     encoding of the execution's reads-from pattern.
//  3. Execute the test for many iterations on a platform — here a simulated
//     multi-core with MESI-coherent caches, store buffers, and a
//     configurable memory consistency model — collecting one signature per
//     iteration.
//  4. Check the unique signatures collectively: sorted signatures yield
//     structurally similar constraint graphs, so each graph is validated by
//     re-sorting only the window spanned by its new backward edges.
//
// The simulated platform substitutes for the paper's x86/ARM silicon; see
// DESIGN.md for the substitution rationale and fidelity notes.
//
// Because the device side of the post-silicon flow is the unreliable half,
// the pipeline is fault-tolerant by default: corrupted signatures are
// quarantined rather than aborting the run (Options.Strict restores the
// abort-on-first-error behavior), failed execution shards are retried and
// then degraded to partial results, campaigns are cancellable via
// RunProgramContext, and long campaigns can checkpoint and resume
// (Options.CheckpointPath / Options.Resume). The internal/fault package
// injects deterministic device-side faults to prove all of it.
//
// # Quick start
//
//	cfg := mtracecheck.TestConfig{Threads: 4, OpsPerThread: 50, Words: 64, Seed: 1}
//	report, err := mtracecheck.Run(cfg, mtracecheck.Options{
//		Platform:   mtracecheck.PlatformX86(),
//		Iterations: 2048,
//	})
//	// report.UniqueSignatures, report.Violations, ...
package mtracecheck

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"mtracecheck/internal/check"
	"mtracecheck/internal/fault"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// Re-exported configuration types: the public API is the facade plus these
// aliases, so downstream users never import internal packages.
type (
	// TestConfig parameterizes constrained-random test generation
	// (paper Table 2).
	TestConfig = testgen.Config
	// Platform describes a system-under-validation (paper Table 1).
	Platform = sim.Platform
	// Program is a generated or hand-built test program.
	Program = prog.Program
	// Signature is a memory-access interleaving signature.
	Signature = sig.Signature
	// Violation is one detected MCM violation with its cycle witness.
	Violation = check.Violation
	// Litmus is a directed test with per-model expected outcomes.
	Litmus = testgen.Litmus
	// FaultConfig configures deterministic device-side fault injection
	// (rates per fault kind; the zero value injects nothing).
	FaultConfig = fault.Config
	// FaultKind identifies one injected fault class.
	FaultKind = fault.Kind
	// Quarantined is one corrupted signature held out of checking.
	Quarantined = fault.Quarantined
	// QuarantineKind classifies why a signature was quarantined.
	QuarantineKind = fault.QuarantineKind
)

// Quarantine kinds (see fault.QuarantineKind).
const (
	// QuarantineDecode marks a signature the decoder rejected.
	QuarantineDecode = fault.QuarantineDecode
	// QuarantineEdges marks a decoded signature whose reads-from relation
	// failed constraint-edge construction.
	QuarantineEdges = fault.QuarantineEdges
)

// Injected fault kinds, the keys of Report.InjectedFaults (see fault.Kind).
const (
	FaultBitFlip    = fault.KindBitFlip
	FaultTruncate   = fault.KindTruncate
	FaultDuplicate  = fault.KindDuplicate
	FaultOutOfRange = fault.KindOutOfRange
	FaultStall      = fault.KindStall
	FaultPanic      = fault.KindPanic
)

// Platform presets (paper Table 1 and §7).
var (
	// PlatformX86 models the 4-core x86-TSO desktop.
	PlatformX86 = sim.PlatformX86
	// PlatformARM models the 8-core big.LITTLE weakly-ordered SoC.
	PlatformARM = sim.PlatformARM
	// PlatformGem5 models the §7 bug-injection target.
	PlatformGem5 = sim.PlatformGem5
)

// Bug identifies one of the paper's §7 injected defects.
type Bug uint8

const (
	// BugNone selects the defect-free gem5-like platform.
	BugNone Bug = iota
	// BugSMInv is bug 1: an invalidation arriving during the S→M cache
	// transient fails to squash speculative loads (protocol issue).
	BugSMInv
	// BugLSQSkip is bug 2: the load queue ignores invalidations entirely
	// (LSQ issue).
	BugLSQSkip
	// BugWBRace is bug 3: the owner ignores forwarded requests racing its
	// writeback, deadlocking the coherence protocol.
	BugWBRace
)

// BuggyPlatform returns the gem5-like bug-injection platform (§7) with the
// selected defect.
func BuggyPlatform(bug Bug) Platform {
	var mb mem.Bugs
	var sb sim.Bugs
	switch bug {
	case BugSMInv:
		mb.StaleSMInv = true
	case BugLSQSkip:
		sb.LQSquashSkip = true
	case BugWBRace:
		mb.WBRaceDeadlock = true
	}
	return sim.PlatformGem5(mb, sb)
}

// WithOS returns the platform with simulated OS scheduling enabled
// (time-sliced threads with migration — the paper's §6.1 Linux runs).
func WithOS(p Platform) Platform {
	p.OS = sim.OSConfig{Enabled: true, Quantum: 400, QuantumJitter: 120, Migrate: true}
	return p
}

// NewProgramBuilder starts a hand-built test program over numWords shared
// words with the default (no false sharing) layout; see prog.Builder for
// the fluent Thread/Load/Store/Fence API.
func NewProgramBuilder(name string, numWords int) *prog.Builder {
	return prog.NewBuilder(name, numWords, prog.DefaultLayout())
}

// LitmusTests returns the directed litmus library (SB, MP, LB, CoRR, WRC,
// IRIW, and fenced variants).
func LitmusTests() []Litmus { return testgen.LitmusTests() }

// PaperConfigs returns the paper's 21 test configurations (§5).
func PaperConfigs() []testgen.PaperConfig { return testgen.PaperConfigs() }

// Checker selects the violation-checking algorithm.
type Checker uint8

const (
	// CheckerCollective is MTraceCheck's collective re-sorting checker.
	CheckerCollective Checker = iota
	// CheckerConventional topologically sorts every graph from scratch.
	CheckerConventional
	// CheckerIncremental repairs the maintained order per backward edge
	// (Pearce–Kelly), an extension beyond the paper's single-window scheme.
	CheckerIncremental
)

// Options configures a validation run.
type Options struct {
	// Platform is the system to validate; zero value selects PlatformX86.
	Platform Platform
	// Iterations is the number of test runs (the paper uses 65536 on
	// silicon, 1024 under gem5); zero selects 1024.
	Iterations int
	// Seed drives all randomness (platform timing and scheduling).
	Seed int64
	// Checker selects the checking algorithm (default collective).
	Checker Checker
	// Pruner optionally applies static candidate pruning (§8).
	Pruner instrument.Pruner
	// ObservedWS switches the constraint graphs from the paper's static
	// write-serialization mode (ws facts derivable at instrumentation time;
	// graphs are a pure function of the signature) to the precise mode that
	// also uses the per-execution coherence order recorded by the platform
	// harness. Observed mode detects cross-thread write-serialization
	// violations the static mode provably cannot, at the cost of larger
	// graph diffs during collective checking.
	ObservedWS bool
	// KeepExecutions retains each iteration's raw execution in the report
	// (memory-heavy; for analysis tooling).
	KeepExecutions bool
	// Workers shards the three hot pipeline stages — execution, signature
	// decoding, and collective checking — across this many goroutines.
	// 0 selects GOMAXPROCS; 1 is the serial pipeline. Results are identical
	// for every value: each execution shard owns its own sim.Runner on the
	// same seed, skipped ahead to its contiguous block of the iteration
	// sequence, so iteration i sees the same per-iteration seed regardless
	// of how the blocks are divided. Only the checker's effort accounting
	// (CheckStats.PerGraph / SortedVertices) carries a per-shard boundary
	// overhead: each checking shard's first graph needs one full sort.
	Workers int
	// Strict restores the abort-on-first-error behavior: a signature that
	// fails to decode or build edges, or an execution shard that exhausts
	// its retries, fails the run instead of degrading (quarantine / partial
	// results). The default is graceful: on a fault-free run both modes are
	// bit-identical, since nothing is ever quarantined or lost.
	Strict bool
	// QuarantineThreshold bounds graceful degradation: when the fraction of
	// unique signatures quarantined by decode or edge-build failures
	// exceeds it, the run fails with ErrQuarantineThreshold (the signature
	// channel is considered too corrupted to trust the surviving verdicts).
	// 0 means no limit.
	QuarantineThreshold float64
	// ShardTimeout is the deadline for a single execution-shard attempt
	// (0 = none). A shard exceeding it is retried per ShardRetries.
	ShardTimeout time.Duration
	// ShardRetries is how many times a failed execution shard — a recovered
	// panic or an expired ShardTimeout — is re-run from its block start
	// with capped exponential backoff. A shard still failing after all
	// retries degrades the run to partial results recorded in
	// Report.ShardFailures (Strict: fails with ErrShardFailed). Platform
	// crashes (ErrCrash) are findings, never retried.
	ShardRetries int
	// Fault injects deterministic device-side faults (internal/fault): the
	// zero value injects nothing, and a zero-fault run is bit-identical to
	// a run without the option. Requires the static ws mode — corrupted
	// signatures have no recorded write serialization.
	Fault FaultConfig
	// CheckpointPath, when set, periodically persists the merged signature
	// set (plus campaign identity) so an interrupted campaign can resume.
	// Checkpoint writes are atomic (temp file + rename).
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in iterations; 0 with a
	// CheckpointPath set selects Iterations/10 (at least 1).
	CheckpointEvery int
	// Resume loads CheckpointPath before executing and skips the
	// iterations it covers, producing a report whose unique signatures,
	// violations, and quarantine are identical to the uninterrupted run
	// with the same seed. Execution-cost counters (TotalCycles, Squashes)
	// and assertion failures cover only the iterations executed after the
	// resume point. Requires the static ws mode.
	Resume bool
}

// workerCount resolves Workers (0 = GOMAXPROCS).
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ShardFailure records an execution shard that exhausted its retries; the
// surrounding report then covers only the iterations that actually executed.
type ShardFailure struct {
	Start, Count int // global iteration block the shard owned
	Executed     int // block iterations completed by the final attempt
	Attempts     int
	Err          error
}

// Report is the outcome of validating one test program.
type Report struct {
	Program *Program
	// Iterations covered by the report: executed this run plus any restored
	// from a checkpoint (ResumedIterations).
	Iterations int
	// UniqueSignatures is the number of distinct memory-access
	// interleavings observed (the paper's Fig. 8 metric), after any
	// injected device-side corruption and before quarantine.
	UniqueSignatures int
	// SignatureBytes is the execution signature size (Fig. 11).
	SignatureBytes int
	// Violations lists MCM violations found by graph checking.
	Violations []Violation
	// AssertionFailures lists iterations whose loaded values fell outside
	// the statically computed candidate sets — caught inline by the
	// instrumentation's assert chains without any graph checking.
	AssertionFailures []error
	// Quarantined lists signatures held out of checking because they failed
	// to decode or to build constraint edges — device-side corruption the
	// run tolerated instead of aborting (see Options.Strict). Use
	// QuarantineCounts for the per-kind breakdown.
	Quarantined []Quarantined
	// InjectedFaults counts deterministic injected faults per kind when
	// Options.Fault is enabled; nil otherwise.
	InjectedFaults map[FaultKind]int
	// ShardFailures records execution shards that exhausted their retries;
	// a non-empty list means the report is partial (see Partial).
	ShardFailures []ShardFailure
	// ResumedIterations counts iterations restored from a checkpoint rather
	// than executed in this run.
	ResumedIterations int
	// CheckStats carries the checker's effort accounting (Figs. 9 and 14).
	CheckStats *check.Result
	// TotalCycles sums simulated execution time over all iterations
	// executed this run.
	TotalCycles int64
	// Squashes counts load-queue squash/replay events across iterations.
	Squashes int
	// Executions holds raw executions when Options.KeepExecutions is set.
	Executions []*sim.Execution
}

// Failed reports whether any violation or assertion failure was found.
func (r *Report) Failed() bool {
	return len(r.Violations) > 0 || len(r.AssertionFailures) > 0
}

// Partial reports whether any execution shard was lost after retries, i.e.
// the report covers only part of the requested iteration sequence.
func (r *Report) Partial() bool { return len(r.ShardFailures) > 0 }

// QuarantineCounts tallies quarantined signatures per kind; nil when the
// quarantine is empty.
func (r *Report) QuarantineCounts() map[QuarantineKind]int {
	return fault.CountByKind(r.Quarantined)
}

// ErrCrash wraps a platform crash (protocol deadlock or livelock), the
// manifestation of the paper's bug 3.
var ErrCrash = errors.New("mtracecheck: platform crashed during test execution")

// ErrQuarantineThreshold reports that the quarantined fraction of unique
// signatures exceeded Options.QuarantineThreshold.
var ErrQuarantineThreshold = errors.New("mtracecheck: quarantined signatures exceed threshold")

// ErrShardFailed wraps an execution shard failure (recovered panic or
// expired shard deadline) that survived every retry.
var ErrShardFailed = errors.New("mtracecheck: execution shard failed")

// errShardPanic marks a recovered per-shard panic; it is retryable and, if
// retries are exhausted, surfaces wrapped in ErrShardFailed.
var errShardPanic = errors.New("mtracecheck: shard panicked")

// Run executes the full pipeline on a constrained-random configuration.
func Run(cfg TestConfig, opts Options) (*Report, error) {
	return RunContext(context.Background(), cfg, opts)
}

// RunContext is Run with cooperative cancellation; see RunProgramContext.
func RunContext(ctx context.Context, cfg TestConfig, opts Options) (*Report, error) {
	p, err := testgen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return RunProgramContext(ctx, p, opts)
}

// RunProgram executes the full pipeline on an existing program (e.g. a
// litmus test or a hand-built scenario). The three hot stages — execution,
// signature decoding, and collective checking — are sharded across
// Options.Workers goroutines; see Options.Workers for the determinism
// contract (results are identical for every worker count).
func RunProgram(p *Program, opts Options) (*Report, error) {
	return RunProgramContext(context.Background(), p, opts)
}

// RunProgramContext is RunProgram with cooperative cancellation: the
// context is polled between iterations in every execution shard, between
// signatures in every decode worker, and between graphs in every checking
// shard, so cancellation returns promptly — with all pipeline goroutines
// joined — carrying ctx.Err().
func RunProgramContext(ctx context.Context, p *Program, opts Options) (*Report, error) {
	opts = withDefaults(opts)
	workers := opts.workerCount()
	inj, err := injector(opts)
	if err != nil {
		return nil, err
	}
	meta, err := instrument.Analyze(p, opts.Platform.RegWidthBits, opts.Pruner)
	if err != nil {
		return nil, err
	}
	report := &Report{Program: p, SignatureBytes: meta.SignatureBytes()}

	lists, wsBySig, runErr := campaign(ctx, p, meta, opts, inj, workers, report)
	uniques := sig.MergeUniques(lists...)
	if runErr != nil {
		// A crash is a finding (paper bug 3); the report covers every
		// iteration that executed, and the error names the earliest crash.
		report.UniqueSignatures = len(uniques)
		return report, runErr
	}
	if inj != nil {
		uniques, report.InjectedFaults = inj.Corrupt(uniques)
	}
	report.UniqueSignatures = len(uniques)

	wsMode := graph.WSStatic
	if opts.ObservedWS {
		wsMode = graph.WSObserved
	}
	builder := graph.NewBuilder(p, opts.Platform.Model, graph.Options{
		Forwarding: opts.Platform.Atomicity.AllowsForwarding(),
		WS:         wsMode,
	})
	items, quarantined, err := decodeItems(ctx, meta, builder, uniques, wsBySig, workers, opts.Strict)
	if err != nil {
		return report, err
	}
	report.Quarantined = quarantined
	if opts.QuarantineThreshold > 0 && len(uniques) > 0 {
		if frac := float64(len(quarantined)) / float64(len(uniques)); frac > opts.QuarantineThreshold {
			return report, fmt.Errorf("%w: %d of %d unique signatures (%.2f%% > %.2f%%)",
				ErrQuarantineThreshold, len(quarantined), len(uniques),
				100*frac, 100*opts.QuarantineThreshold)
		}
	}
	switch opts.Checker {
	case CheckerConventional:
		report.CheckStats = check.Conventional(builder, items)
	case CheckerIncremental:
		report.CheckStats, err = check.Incremental(builder, items)
		if err != nil {
			return report, err
		}
	default:
		report.CheckStats, err = check.Sharded(ctx, builder, items, workers)
		if err != nil {
			return report, err
		}
	}
	report.Violations = report.CheckStats.Violations
	return report, nil
}

// injector builds the fault injector for the options, rejecting
// configurations injection cannot honor.
func injector(opts Options) (*fault.Injector, error) {
	if !opts.Fault.Enabled() {
		return nil, nil
	}
	if opts.ObservedWS {
		return nil, errors.New("mtracecheck: fault injection requires the static ws mode (corrupted signatures carry no recorded write serialization)")
	}
	return fault.NewInjector(opts.Fault)
}

// campaign runs the execution stage: optional checkpoint resume, the
// iteration sequence in checkpoint-sized segments, per-shard retry and
// degradation bookkeeping. It returns the sorted unique lists to merge
// (checkpointed set first, then shard sets in global iteration order), the
// observed-ws first-observation map (nil in static mode), and the first
// fatal error. The report's execution accounting (Iterations, TotalCycles,
// Squashes, Executions, AssertionFailures, ShardFailures,
// ResumedIterations) is filled in as segments complete, so the report is
// honest even when an error cuts the campaign short.
func campaign(ctx context.Context, p *Program, meta *instrument.Meta, opts Options,
	inj *fault.Injector, workers int, report *Report) ([][]sig.Unique, map[string]graph.WS, error) {
	var lists [][]sig.Unique
	var wsBySig map[string]graph.WS
	if opts.ObservedWS {
		wsBySig = make(map[string]graph.WS)
	}
	completed := 0
	if opts.Resume {
		if opts.CheckpointPath == "" {
			return nil, nil, errors.New("mtracecheck: Resume requires CheckpointPath")
		}
		if opts.ObservedWS {
			return nil, nil, errors.New("mtracecheck: resume requires the static ws mode (checkpointed signatures carry no recorded write serialization)")
		}
		ck, err := readCheckpointFile(opts.CheckpointPath)
		if err != nil {
			return nil, nil, fmt.Errorf("mtracecheck: resume: %w", err)
		}
		if ck.Seed != opts.Seed {
			return nil, nil, fmt.Errorf("mtracecheck: resume: checkpoint seed %d does not match run seed %d", ck.Seed, opts.Seed)
		}
		if h := progHash(p); ck.ProgHash != h {
			return nil, nil, fmt.Errorf("mtracecheck: resume: checkpoint was written for a different test program")
		}
		if ck.Completed > opts.Iterations {
			return nil, nil, fmt.Errorf("mtracecheck: resume: checkpoint covers %d iterations, campaign requests only %d", ck.Completed, opts.Iterations)
		}
		completed = ck.Completed
		report.ResumedIterations = completed
		report.Iterations += completed
		if len(ck.Uniques) > 0 {
			lists = append(lists, ck.Uniques)
		}
	}
	checkpointing := opts.CheckpointPath != ""
	segment := opts.Iterations - completed
	if checkpointing {
		segment = opts.CheckpointEvery
		if segment <= 0 {
			segment = opts.Iterations / 10
		}
		if segment < 1 {
			segment = 1
		}
	}
	for completed < opts.Iterations {
		if err := ctx.Err(); err != nil {
			return lists, wsBySig, err
		}
		n := opts.Iterations - completed
		if checkpointing && segment < n {
			n = segment
		}
		shards, err := runShards(ctx, p, meta, opts, inj, workers, completed, n)
		if err != nil {
			return lists, wsBySig, err
		}
		// Merge shard outputs in shard order; shards own contiguous
		// ascending iteration blocks, so this order is global iteration
		// order.
		var firstErr error
		segClean := true
		for _, sh := range shards {
			report.Iterations += sh.iterations
			report.TotalCycles += sh.cycles
			report.Squashes += sh.squashes
			report.Executions = append(report.Executions, sh.execs...)
			report.AssertionFailures = append(report.AssertionFailures, sh.asserts...)
			if sh.set.Len() > 0 {
				lists = append(lists, sh.set.Sorted())
			}
			if opts.ObservedWS {
				// Keep the write-serialization order of the globally first
				// observation of each interleaving: earlier shards hold
				// earlier iterations, so first-in-shard-order is
				// first-globally.
				for k, ws := range sh.ws {
					if _, ok := wsBySig[k]; !ok {
						wsBySig[k] = ws
					}
				}
			}
			if sh.err == nil {
				continue
			}
			segClean = false
			if errors.Is(sh.err, ErrShardFailed) && !opts.Strict {
				// Infra failure that survived its retries: degrade to
				// partial results, recorded honestly.
				report.ShardFailures = append(report.ShardFailures, ShardFailure{
					Start: sh.start, Count: sh.count,
					Executed: sh.iterations, Attempts: sh.attempts, Err: sh.err,
				})
				continue
			}
			if firstErr == nil {
				firstErr = sh.err
			}
		}
		if err := ctx.Err(); err != nil {
			return lists, wsBySig, err
		}
		if firstErr != nil {
			return lists, wsBySig, firstErr
		}
		completed += n
		if checkpointing {
			if !segClean {
				// A lost shard left a hole in the iteration sequence; a
				// checkpoint would claim coverage the campaign never had.
				checkpointing = false
				continue
			}
			merged := sig.MergeUniques(lists...)
			lists = [][]sig.Unique{merged}
			ck := sig.Checkpoint{
				Seed: opts.Seed, ProgHash: progHash(p),
				Completed: completed, Uniques: merged,
			}
			if err := writeCheckpointFile(opts.CheckpointPath, ck); err != nil {
				return lists, wsBySig, fmt.Errorf("mtracecheck: checkpoint: %w", err)
			}
		}
	}
	return lists, wsBySig, nil
}

// progHash fingerprints a program for checkpoint identity (FNV-64a of the
// canonical text format).
func progHash(p *Program) uint64 {
	h := fnv.New64a()
	io.WriteString(h, prog.Format(p))
	return h.Sum64()
}

// readCheckpointFile loads a campaign checkpoint.
func readCheckpointFile(path string) (sig.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return sig.Checkpoint{}, err
	}
	defer f.Close()
	return sig.ReadCheckpoint(f)
}

// writeCheckpointFile persists a checkpoint atomically (temp file + rename),
// so an interruption mid-write never corrupts the previous checkpoint.
func writeCheckpointFile(path string, ck sig.Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sig.WriteCheckpoint(f, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// shardOut is what one execution shard produces: private signature set and
// stats, merged by the caller in shard order.
type shardOut struct {
	set        *sig.Set
	ws         map[string]graph.WS // sig key -> first-observation ws
	start      int                 // global iteration block start
	count      int                 // block size
	attempts   int
	iterations int
	cycles     int64
	squashes   int
	execs      []*sim.Execution
	asserts    []error
	err        error
}

// runShards executes count iterations starting at global iteration start,
// split into workers contiguous blocks, each on its own Runner over the
// same seed skipped ahead to the block's start — so every iteration draws
// the same per-iteration seed as the serial pipeline, whatever the worker
// count. Runners are constructed up front so platform/program validation
// errors surface before any work; a shard that fails mid-run is retried per
// Options.ShardRetries.
func runShards(ctx context.Context, p *Program, meta *instrument.Meta, opts Options,
	inj *fault.Injector, workers, start, count int) ([]*shardOut, error) {
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	base, rem := count/workers, count%workers
	starts := make([]int, workers+1)
	runners := make([]*sim.Runner, workers)
	for si := 0; si < workers; si++ {
		size := base
		if si < rem {
			size++
		}
		starts[si+1] = starts[si] + size
		runner, err := sim.NewRunner(opts.Platform, p, opts.Seed)
		if err != nil {
			return nil, err
		}
		runner.SkipIterations(start + starts[si])
		runners[si] = runner
	}
	shards := make([]*shardOut, workers)
	var wg sync.WaitGroup
	for si := 0; si < workers; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			shards[si] = runShardRetrying(ctx, p, meta, opts, inj,
				runners[si], start+starts[si], starts[si+1]-starts[si])
		}(si)
	}
	wg.Wait()
	return shards, nil
}

// runShardRetrying drives one shard block to completion, re-running it from
// the block start — on a fresh Runner, since a panicking one may hold
// corrupt state — after transient failures (recovered panics, expired shard
// deadlines), with capped exponential backoff between attempts. Platform
// crashes are findings and parent-context cancellation is final; neither is
// retried. A shard still failing after every retry returns its final
// partial attempt with the failure wrapped in ErrShardFailed.
func runShardRetrying(ctx context.Context, p *Program, meta *instrument.Meta, opts Options,
	inj *fault.Injector, first *sim.Runner, start, count int) *shardOut {
	backoff := time.Millisecond
	const maxBackoff = 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		runner := first
		if attempt > 0 {
			r, err := sim.NewRunner(opts.Platform, p, opts.Seed)
			if err != nil {
				return &shardOut{set: sig.NewSet(), start: start, count: count,
					attempts: attempt + 1, err: err}
			}
			r.SkipIterations(start)
			runner = r
		}
		shardCtx, cancel := ctx, context.CancelFunc(func() {})
		if opts.ShardTimeout > 0 {
			shardCtx, cancel = context.WithTimeout(ctx, opts.ShardTimeout)
		}
		var src sim.Source = runner
		if inj != nil {
			src = inj.WrapShard(shardCtx, runner, start, count, attempt)
		}
		out := runShardAttempt(shardCtx, src, meta, opts, start, count)
		cancel()
		out.start, out.count, out.attempts = start, count, attempt+1
		if out.err == nil || !retryable(out.err, ctx) {
			return out
		}
		if attempt >= opts.ShardRetries {
			out.err = fmt.Errorf("%w: iterations [%d,%d) after %d attempts: %v",
				ErrShardFailed, start, start+count, attempt+1, out.err)
			return out
		}
		select {
		case <-ctx.Done():
			out.err = ctx.Err()
			return out
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// retryable classifies a shard error: recovered panics and expired
// per-shard deadlines are transient infra faults worth retrying; anything
// else — platform crashes (findings), encode errors, parent cancellation —
// is final.
func retryable(err error, parent context.Context) bool {
	if parent.Err() != nil {
		return false
	}
	return errors.Is(err, errShardPanic) || errors.Is(err, context.DeadlineExceeded)
}

// runShardAttempt drives one source through count iterations starting at
// global iteration index start, polling the context between iterations and
// converting a panic anywhere below — simulator, encoder, or an injected
// shard fault — into a shard error instead of crashing the process.
func runShardAttempt(ctx context.Context, src sim.Source, meta *instrument.Meta,
	opts Options, start, count int) (out *shardOut) {
	out = &shardOut{set: sig.NewSet()}
	if opts.ObservedWS {
		out.ws = make(map[string]graph.WS)
	}
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("%w at iteration %d: %v", errShardPanic, start+out.iterations, r)
		}
	}()
	var sigBuf []uint64 // per-attempt encode scratch, reused every iteration
	for i := 0; i < count; i++ {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		ex, err := src.Run()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// An interrupted stall, not a platform failure.
				out.err = err
				return out
			}
			out.err = fmt.Errorf("%w: iteration %d: %v", ErrCrash, start+i, err)
			return out
		}
		out.iterations++
		out.cycles += int64(ex.Cycles)
		out.squashes += ex.Squashes
		if opts.KeepExecutions {
			// The source's execution is scratch, overwritten next iteration:
			// retention requires a deep copy.
			out.execs = append(out.execs, ex.Clone())
		}
		sigBuf, err = meta.EncodeExecutionInto(sigBuf[:0], ex.LoadValues)
		if err != nil {
			var ae *instrument.AssertionError
			if errors.As(err, &ae) {
				out.asserts = append(out.asserts, ae)
				continue
			}
			out.err = err
			return out
		}
		if out.set.AddWords(sigBuf) && opts.ObservedWS {
			// First observation of this interleaving in this shard: keep its
			// write-serialization order for graph construction. (The
			// static-ws default needs nothing beyond the signature.)
			out.ws[sig.New(sigBuf).Key()] = ex.WSByWord()
		}
	}
	return out
}

// DecodeItems converts sorted unique signatures back into checkable items:
// each signature is decoded to its reads-from relation (paper Alg. 1) and
// combined with the write-serialization order observed by the harness.
// Signatures decode independently, so the work fans out over GOMAXPROCS
// goroutines into a pre-sized slice that preserves the sorted order. It is
// strict: the first failure aborts (the lowest-indexed one, as the serial
// loop would hit); RunProgram's graceful quarantine path is configured via
// Options.Strict instead.
func DecodeItems(ctx context.Context, meta *instrument.Meta, b *graph.Builder,
	uniques []sig.Unique, wsBySig map[string]graph.WS) ([]check.Item, error) {
	items, _, err := decodeItems(ctx, meta, b, uniques, wsBySig, runtime.GOMAXPROCS(0), true)
	return items, err
}

// decodeItems is the decode stage over an explicit worker count. Workers
// fill disjoint contiguous ranges of the result and poll the context as
// they go. In strict mode the error for the lowest-indexed failing
// signature is returned — the one the serial loop would have hit first.
// In graceful mode failing signatures are quarantined (in sorted order,
// deterministically: failure is a pure function of signature and metadata)
// and the surviving items are compacted, preserving ascending order for
// the collective checker.
func decodeItems(ctx context.Context, meta *instrument.Meta, b *graph.Builder,
	uniques []sig.Unique, wsBySig map[string]graph.WS, workers int,
	strict bool) ([]check.Item, []Quarantined, error) {
	items := make([]check.Item, len(uniques))
	quar := make([]*Quarantined, len(uniques))
	decode := func(lo, hi int) error {
		// Per-worker scratch: a dense reads-from slice reused across
		// signatures and a key buffer for the allocation-free ws lookup.
		rf := make([]int32, b.NumOps())
		var keyBuf []byte
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			u := uniques[i]
			if err := meta.DecodeInto(u.Sig, rf); err != nil {
				if strict {
					return err
				}
				quar[i] = &Quarantined{Sig: u.Sig, Count: u.Count, Kind: QuarantineDecode, Err: err}
				continue
			}
			var ws graph.WS
			if wsBySig != nil {
				keyBuf = u.Sig.AppendBinary(keyBuf[:0])
				ws = wsBySig[string(keyBuf)]
			}
			edges, err := b.AppendDynamicEdges(nil, rf, ws)
			if err != nil {
				if strict {
					return err
				}
				quar[i] = &Quarantined{Sig: u.Sig, Count: u.Count, Kind: QuarantineEdges, Err: err}
				continue
			}
			items[i] = check.Item{Sig: u.Sig, Edges: edges}
		}
		return nil
	}
	if workers > len(uniques) {
		workers = len(uniques)
	}
	if workers <= 1 {
		if err := decode(0, len(uniques)); err != nil {
			return nil, nil, err
		}
	} else {
		base, rem := len(uniques)/workers, len(uniques)%workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		lo := 0
		for w := 0; w < workers; w++ {
			size := base
			if w < rem {
				size++
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				errs[w] = decode(lo, hi)
			}(w, lo, lo+size)
			lo += size
		}
		wg.Wait()
		// Ranges ascend with the worker index, so the first recorded error
		// is the one with the lowest signature index.
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
	}
	var quarantined []Quarantined
	kept := items[:0]
	for i := range items {
		if quar[i] != nil {
			quarantined = append(quarantined, *quar[i])
			continue
		}
		kept = append(kept, items[i])
	}
	return kept, quarantined, nil
}

// RunLitmus executes a litmus test, reporting how often the interesting
// outcome was observed alongside the full validation report. A forbidden
// outcome that is observed also surfaces as a graph-check violation.
func RunLitmus(l Litmus, opts Options) (observed int, report *Report, err error) {
	opts = withDefaults(opts)
	// Outcome counting needs the raw executions even when the caller does
	// not: force retention for the run, then honor the caller's flag.
	keep := opts.KeepExecutions
	opts.KeepExecutions = true
	report, err = RunProgram(l.Prog, opts)
	if err != nil {
		return 0, report, err
	}
	for _, ex := range report.Executions {
		if l.Interesting.MatchesValues(ex.LoadValues) {
			observed++
		}
	}
	if !keep {
		report.Executions = nil
	}
	return observed, report, nil
}

func withDefaults(opts Options) Options {
	if opts.Platform.Cores == 0 {
		opts.Platform = PlatformX86()
	}
	if opts.Iterations == 0 {
		opts.Iterations = 1024
	}
	return opts
}

// ModelName returns the platform's memory consistency model name; a small
// convenience for report rendering without importing internal packages.
func ModelName(p Platform) string { return p.Model.String() }

// Models lists the supported memory consistency models' names, strongest
// first.
func Models() []string {
	out := make([]string, len(mcm.Models))
	for i, m := range mcm.Models {
		out[i] = m.String()
	}
	return out
}

// SaveSignatures writes a report's unique signatures (with observation
// counts) in the compact binary device-to-host format. Callers typically
// stream this to disk for later offline checking or regression comparison.
func SaveSignatures(w io.Writer, report *Report, uniques []sig.Unique) error {
	_ = report // reserved for future metadata (program hash, platform)
	return sig.WriteSet(w, uniques)
}

// CollectSignatures runs only the execution stage: the program is executed
// for the configured iterations and the sorted unique signatures are
// returned without any checking. This is the "device side" of the paper's
// flow; pair it with CheckSignatures on the host. Execution shards across
// Options.Workers exactly as RunProgram does, so both sides of the split
// observe the same signatures for the same (Seed, Iterations); fault
// injection, checkpointing, and shard retry apply identically.
func CollectSignatures(p *Program, opts Options) ([]sig.Unique, error) {
	return CollectSignaturesContext(context.Background(), p, opts)
}

// CollectSignaturesContext is CollectSignatures with cooperative
// cancellation.
func CollectSignaturesContext(ctx context.Context, p *Program, opts Options) ([]sig.Unique, error) {
	opts = withDefaults(opts)
	inj, err := injector(opts)
	if err != nil {
		return nil, err
	}
	meta, err := instrument.Analyze(p, opts.Platform.RegWidthBits, opts.Pruner)
	if err != nil {
		return nil, err
	}
	report := &Report{Program: p} // accounting sink; callers get signatures only
	lists, _, runErr := campaign(ctx, p, meta, opts, inj, opts.workerCount(), report)
	if runErr != nil {
		return nil, runErr
	}
	uniques := sig.MergeUniques(lists...)
	if inj != nil {
		uniques, _ = inj.Corrupt(uniques)
	}
	return uniques, nil
}

// CheckSignatures is the "host side": it decodes previously collected
// unique signatures (e.g. loaded via sig.ReadSet) and checks them
// collectively under the platform's model using the static
// write-serialization mode, which needs nothing beyond the signatures.
// It is strict — a corrupted signature aborts with the decode error; use
// RunProgram with Options.Strict unset for the quarantining pipeline.
func CheckSignatures(p *Program, plat Platform, uniques []sig.Unique,
	pruner instrument.Pruner) (*check.Result, error) {
	meta, err := instrument.Analyze(p, plat.RegWidthBits, pruner)
	if err != nil {
		return nil, err
	}
	builder := graph.NewBuilder(p, plat.Model, graph.Options{
		Forwarding: plat.Atomicity.AllowsForwarding(),
		WS:         graph.WSStatic,
	})
	items, err := DecodeItems(context.Background(), meta, builder, uniques, nil)
	if err != nil {
		return nil, err
	}
	return check.Collective(builder, items)
}

// LoadSignatures reads a signature set written by SaveSignatures.
func LoadSignatures(r io.Reader) ([]sig.Unique, error) { return sig.ReadSet(r) }

// WriteViolationDOT renders the constraint graph of one reported violation
// in Graphviz DOT format, with the offending cycle highlighted (a Fig. 2 /
// Fig. 13-style illustration). The graph is rebuilt from the violation's
// signature using the same options the report was produced with.
func WriteViolationDOT(w io.Writer, report *Report, v Violation, opts Options) error {
	opts = withDefaults(opts)
	// Reject unsupported modes before doing any analysis work.
	if opts.ObservedWS {
		return fmt.Errorf("mtracecheck: DOT rendering of observed-ws violations requires the recorded ws; re-run with the static mode")
	}
	meta, err := instrument.Analyze(report.Program, opts.Platform.RegWidthBits, opts.Pruner)
	if err != nil {
		return err
	}
	builder := graph.NewBuilder(report.Program, opts.Platform.Model, graph.Options{
		Forwarding: opts.Platform.Atomicity.AllowsForwarding(),
		WS:         graph.WSStatic,
	})
	cands, err := meta.Decode(v.Sig)
	if err != nil {
		return err
	}
	rf := make(graph.RF, len(cands))
	for id, c := range cands {
		rf[id] = c.Store
	}
	g, err := builder.BuildGraph(rf, nil)
	if err != nil {
		return err
	}
	return g.WriteDOT(w, report.Program, v.Cycle)
}

// NewProgramBuilderFromConfig generates a constrained-random program from a
// test configuration — a convenience for the device/host split, where both
// sides must reconstruct the identical program from the shared config.
func NewProgramBuilderFromConfig(cfg TestConfig) (*Program, error) {
	return testgen.Generate(cfg)
}
