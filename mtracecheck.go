// Package mtracecheck is a post-silicon memory-consistency validation
// framework, reproducing "MTraceCheck: Validating Non-Deterministic
// Behavior of Memory Consistency Models in Post-Silicon Validation"
// (Lee & Bertacco, ISCA 2017).
//
// The pipeline follows the paper's Fig. 1:
//
//  1. Generate constrained-random multi-threaded tests (or use directed
//     litmus tests) over a small pool of shared words, every store writing
//     a unique value.
//  2. Instrument each test with observability-enhancing code that
//     accumulates a compact memory-access interleaving signature — a 1:1
//     encoding of the execution's reads-from pattern.
//  3. Execute the test for many iterations on a platform — here a simulated
//     multi-core with MESI-coherent caches, store buffers, and a
//     configurable memory consistency model — collecting one signature per
//     iteration.
//  4. Check the unique signatures collectively: sorted signatures yield
//     structurally similar constraint graphs, so each graph is validated by
//     re-sorting only the window spanned by its new backward edges.
//
// The simulated platform substitutes for the paper's x86/ARM silicon; see
// DESIGN.md for the substitution rationale and fidelity notes.
//
// # Quick start
//
//	cfg := mtracecheck.TestConfig{Threads: 4, OpsPerThread: 50, Words: 64, Seed: 1}
//	report, err := mtracecheck.Run(cfg, mtracecheck.Options{
//		Platform:   mtracecheck.PlatformX86(),
//		Iterations: 2048,
//	})
//	// report.UniqueSignatures, report.Violations, ...
package mtracecheck

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"mtracecheck/internal/check"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// Re-exported configuration types: the public API is the facade plus these
// aliases, so downstream users never import internal packages.
type (
	// TestConfig parameterizes constrained-random test generation
	// (paper Table 2).
	TestConfig = testgen.Config
	// Platform describes a system-under-validation (paper Table 1).
	Platform = sim.Platform
	// Program is a generated or hand-built test program.
	Program = prog.Program
	// Signature is a memory-access interleaving signature.
	Signature = sig.Signature
	// Violation is one detected MCM violation with its cycle witness.
	Violation = check.Violation
	// Litmus is a directed test with per-model expected outcomes.
	Litmus = testgen.Litmus
)

// Platform presets (paper Table 1 and §7).
var (
	// PlatformX86 models the 4-core x86-TSO desktop.
	PlatformX86 = sim.PlatformX86
	// PlatformARM models the 8-core big.LITTLE weakly-ordered SoC.
	PlatformARM = sim.PlatformARM
	// PlatformGem5 models the §7 bug-injection target.
	PlatformGem5 = sim.PlatformGem5
)

// Bug identifies one of the paper's §7 injected defects.
type Bug uint8

const (
	// BugNone selects the defect-free gem5-like platform.
	BugNone Bug = iota
	// BugSMInv is bug 1: an invalidation arriving during the S→M cache
	// transient fails to squash speculative loads (protocol issue).
	BugSMInv
	// BugLSQSkip is bug 2: the load queue ignores invalidations entirely
	// (LSQ issue).
	BugLSQSkip
	// BugWBRace is bug 3: the owner ignores forwarded requests racing its
	// writeback, deadlocking the coherence protocol.
	BugWBRace
)

// BuggyPlatform returns the gem5-like bug-injection platform (§7) with the
// selected defect.
func BuggyPlatform(bug Bug) Platform {
	var mb mem.Bugs
	var sb sim.Bugs
	switch bug {
	case BugSMInv:
		mb.StaleSMInv = true
	case BugLSQSkip:
		sb.LQSquashSkip = true
	case BugWBRace:
		mb.WBRaceDeadlock = true
	}
	return sim.PlatformGem5(mb, sb)
}

// WithOS returns the platform with simulated OS scheduling enabled
// (time-sliced threads with migration — the paper's §6.1 Linux runs).
func WithOS(p Platform) Platform {
	p.OS = sim.OSConfig{Enabled: true, Quantum: 400, QuantumJitter: 120, Migrate: true}
	return p
}

// NewProgramBuilder starts a hand-built test program over numWords shared
// words with the default (no false sharing) layout; see prog.Builder for
// the fluent Thread/Load/Store/Fence API.
func NewProgramBuilder(name string, numWords int) *prog.Builder {
	return prog.NewBuilder(name, numWords, prog.DefaultLayout())
}

// LitmusTests returns the directed litmus library (SB, MP, LB, CoRR, WRC,
// IRIW, and fenced variants).
func LitmusTests() []Litmus { return testgen.LitmusTests() }

// PaperConfigs returns the paper's 21 test configurations (§5).
func PaperConfigs() []testgen.PaperConfig { return testgen.PaperConfigs() }

// Checker selects the violation-checking algorithm.
type Checker uint8

const (
	// CheckerCollective is MTraceCheck's collective re-sorting checker.
	CheckerCollective Checker = iota
	// CheckerConventional topologically sorts every graph from scratch.
	CheckerConventional
	// CheckerIncremental repairs the maintained order per backward edge
	// (Pearce–Kelly), an extension beyond the paper's single-window scheme.
	CheckerIncremental
)

// Options configures a validation run.
type Options struct {
	// Platform is the system to validate; zero value selects PlatformX86.
	Platform Platform
	// Iterations is the number of test runs (the paper uses 65536 on
	// silicon, 1024 under gem5); zero selects 1024.
	Iterations int
	// Seed drives all randomness (platform timing and scheduling).
	Seed int64
	// Checker selects the checking algorithm (default collective).
	Checker Checker
	// Pruner optionally applies static candidate pruning (§8).
	Pruner instrument.Pruner
	// ObservedWS switches the constraint graphs from the paper's static
	// write-serialization mode (ws facts derivable at instrumentation time;
	// graphs are a pure function of the signature) to the precise mode that
	// also uses the per-execution coherence order recorded by the platform
	// harness. Observed mode detects cross-thread write-serialization
	// violations the static mode provably cannot, at the cost of larger
	// graph diffs during collective checking.
	ObservedWS bool
	// KeepExecutions retains each iteration's raw execution in the report
	// (memory-heavy; for analysis tooling).
	KeepExecutions bool
	// Workers shards the three hot pipeline stages — execution, signature
	// decoding, and collective checking — across this many goroutines.
	// 0 selects GOMAXPROCS; 1 is the serial pipeline. Results are identical
	// for every value: each execution shard owns its own sim.Runner on the
	// same seed, skipped ahead to its contiguous block of the iteration
	// sequence, so iteration i sees the same per-iteration seed regardless
	// of how the blocks are divided. Only the checker's effort accounting
	// (CheckStats.PerGraph / SortedVertices) carries a per-shard boundary
	// overhead: each checking shard's first graph needs one full sort.
	Workers int
}

// workerCount resolves Workers (0 = GOMAXPROCS).
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Report is the outcome of validating one test program.
type Report struct {
	Program *Program
	// Iterations actually executed.
	Iterations int
	// UniqueSignatures is the number of distinct memory-access
	// interleavings observed (the paper's Fig. 8 metric).
	UniqueSignatures int
	// SignatureBytes is the execution signature size (Fig. 11).
	SignatureBytes int
	// Violations lists MCM violations found by graph checking.
	Violations []Violation
	// AssertionFailures lists iterations whose loaded values fell outside
	// the statically computed candidate sets — caught inline by the
	// instrumentation's assert chains without any graph checking.
	AssertionFailures []error
	// CheckStats carries the checker's effort accounting (Figs. 9 and 14).
	CheckStats *check.Result
	// TotalCycles sums simulated execution time over all iterations.
	TotalCycles int64
	// Squashes counts load-queue squash/replay events across iterations.
	Squashes int
	// Executions holds raw executions when Options.KeepExecutions is set.
	Executions []*sim.Execution
}

// Failed reports whether any violation or assertion failure was found.
func (r *Report) Failed() bool {
	return len(r.Violations) > 0 || len(r.AssertionFailures) > 0
}

// ErrCrash wraps a platform crash (protocol deadlock or livelock), the
// manifestation of the paper's bug 3.
var ErrCrash = errors.New("mtracecheck: platform crashed during test execution")

// Run executes the full pipeline on a constrained-random configuration.
func Run(cfg TestConfig, opts Options) (*Report, error) {
	p, err := testgen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return RunProgram(p, opts)
}

// RunProgram executes the full pipeline on an existing program (e.g. a
// litmus test or a hand-built scenario). The three hot stages — execution,
// signature decoding, and collective checking — are sharded across
// Options.Workers goroutines; see Options.Workers for the determinism
// contract (results are identical for every worker count).
func RunProgram(p *Program, opts Options) (*Report, error) {
	opts = withDefaults(opts)
	workers := opts.workerCount()
	meta, err := instrument.Analyze(p, opts.Platform.RegWidthBits, opts.Pruner)
	if err != nil {
		return nil, err
	}
	report := &Report{Program: p, SignatureBytes: meta.SignatureBytes()}

	shards, err := runShards(p, meta, opts, workers)
	if err != nil {
		return nil, err
	}
	// Merge shard outputs in shard order; shards own contiguous ascending
	// iteration blocks, so this order is global iteration order.
	sets := make([]*sig.Set, len(shards))
	wsBySig := make(map[string]graph.WS)
	var firstErr error
	for si, sh := range shards {
		sets[si] = sh.set
		report.Iterations += sh.iterations
		report.TotalCycles += sh.cycles
		report.Squashes += sh.squashes
		report.Executions = append(report.Executions, sh.execs...)
		report.AssertionFailures = append(report.AssertionFailures, sh.asserts...)
		if opts.ObservedWS {
			// Keep the write-serialization order of the globally first
			// observation of each interleaving: earlier shards hold earlier
			// iterations, so first-in-shard-order is first-globally.
			for k, ws := range sh.ws {
				if _, ok := wsBySig[k]; !ok {
					wsBySig[k] = ws
				}
			}
		}
		if sh.err != nil && firstErr == nil {
			firstErr = sh.err
		}
	}
	uniques := sig.MergeSets(sets...)
	report.UniqueSignatures = len(uniques)
	if firstErr != nil {
		// A crash is a finding (paper bug 3); the report covers every
		// iteration that executed, and the error names the earliest crash.
		return report, firstErr
	}

	wsMode := graph.WSStatic
	if opts.ObservedWS {
		wsMode = graph.WSObserved
	}
	builder := graph.NewBuilder(p, opts.Platform.Model, graph.Options{
		Forwarding: opts.Platform.Atomicity.AllowsForwarding(),
		WS:         wsMode,
	})
	items, err := decodeItems(meta, builder, uniques, wsBySig, workers)
	if err != nil {
		return report, err
	}
	switch opts.Checker {
	case CheckerConventional:
		report.CheckStats = check.Conventional(builder, items)
	case CheckerIncremental:
		report.CheckStats, err = check.Incremental(builder, items)
		if err != nil {
			return report, err
		}
	default:
		report.CheckStats, err = check.Sharded(builder, items, workers)
		if err != nil {
			return report, err
		}
	}
	report.Violations = report.CheckStats.Violations
	return report, nil
}

// shardOut is what one execution shard produces: private signature set and
// stats, merged by the caller in shard order.
type shardOut struct {
	set        *sig.Set
	ws         map[string]graph.WS // sig key -> first-observation ws
	iterations int
	cycles     int64
	squashes   int
	execs      []*sim.Execution
	asserts    []error
	err        error
}

// runShards executes the iteration sequence split into workers contiguous
// blocks, each on its own Runner over the same seed skipped ahead to the
// block's start — so every iteration draws the same per-iteration seed as
// the serial pipeline, whatever the worker count. Runners are constructed
// up front so platform/program validation errors surface before any work.
func runShards(p *Program, meta *instrument.Meta, opts Options, workers int) ([]*shardOut, error) {
	if workers > opts.Iterations {
		workers = opts.Iterations
	}
	if workers < 1 {
		workers = 1
	}
	base, rem := opts.Iterations/workers, opts.Iterations%workers
	starts := make([]int, workers+1)
	runners := make([]*sim.Runner, workers)
	for si := 0; si < workers; si++ {
		size := base
		if si < rem {
			size++
		}
		starts[si+1] = starts[si] + size
		runner, err := sim.NewRunner(opts.Platform, p, opts.Seed)
		if err != nil {
			return nil, err
		}
		runner.SkipIterations(starts[si])
		runners[si] = runner
	}
	shards := make([]*shardOut, workers)
	var wg sync.WaitGroup
	for si := 0; si < workers; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			shards[si] = runShard(runners[si], meta, opts, starts[si], starts[si+1]-starts[si])
		}(si)
	}
	wg.Wait()
	return shards, nil
}

// runShard drives one runner through count iterations starting at global
// iteration index start.
func runShard(runner *sim.Runner, meta *instrument.Meta, opts Options, start, count int) *shardOut {
	out := &shardOut{set: sig.NewSet()}
	if opts.ObservedWS {
		out.ws = make(map[string]graph.WS)
	}
	for i := 0; i < count; i++ {
		ex, err := runner.Run()
		if err != nil {
			out.err = fmt.Errorf("%w: iteration %d: %v", ErrCrash, start+i, err)
			return out
		}
		out.iterations++
		out.cycles += int64(ex.Cycles)
		out.squashes += ex.Squashes
		if opts.KeepExecutions {
			out.execs = append(out.execs, ex)
		}
		s, err := meta.EncodeExecution(ex.LoadValues)
		if err != nil {
			var ae *instrument.AssertionError
			if errors.As(err, &ae) {
				out.asserts = append(out.asserts, ae)
				continue
			}
			out.err = err
			return out
		}
		if out.set.Add(s) && opts.ObservedWS {
			// First observation of this interleaving in this shard: keep its
			// write-serialization order for graph construction. (The
			// static-ws default needs nothing beyond the signature.)
			out.ws[s.Key()] = ex.WS
		}
	}
	return out
}

// DecodeItems converts sorted unique signatures back into checkable items:
// each signature is decoded to its reads-from relation (paper Alg. 1) and
// combined with the write-serialization order observed by the harness.
// Signatures decode independently, so the work fans out over GOMAXPROCS
// goroutines into a pre-sized slice that preserves the sorted order.
func DecodeItems(meta *instrument.Meta, b *graph.Builder, uniques []sig.Unique,
	wsBySig map[string]graph.WS) ([]check.Item, error) {
	return decodeItems(meta, b, uniques, wsBySig, runtime.GOMAXPROCS(0))
}

// decodeItems is DecodeItems over an explicit worker count. Workers fill
// disjoint contiguous ranges of the result, and on failure the error for
// the lowest-indexed failing signature is returned — the one the serial
// loop would have hit first.
func decodeItems(meta *instrument.Meta, b *graph.Builder, uniques []sig.Unique,
	wsBySig map[string]graph.WS, workers int) ([]check.Item, error) {
	items := make([]check.Item, len(uniques))
	decode := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			u := uniques[i]
			cands, err := meta.Decode(u.Sig)
			if err != nil {
				return err
			}
			rf := make(graph.RF, len(cands))
			for loadID, c := range cands {
				rf[loadID] = c.Store
			}
			edges, err := b.DynamicEdges(rf, wsBySig[u.Sig.Key()])
			if err != nil {
				return err
			}
			items[i] = check.Item{Sig: u.Sig, Edges: edges}
		}
		return nil
	}
	if workers > len(uniques) {
		workers = len(uniques)
	}
	if workers <= 1 {
		if err := decode(0, len(uniques)); err != nil {
			return nil, err
		}
		return items, nil
	}
	base, rem := len(uniques)/workers, len(uniques)%workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = decode(lo, hi)
		}(w, lo, lo+size)
		lo += size
	}
	wg.Wait()
	// Ranges ascend with the worker index, so the first recorded error is
	// the one with the lowest signature index.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return items, nil
}

// RunLitmus executes a litmus test, reporting how often the interesting
// outcome was observed alongside the full validation report. A forbidden
// outcome that is observed also surfaces as a graph-check violation.
func RunLitmus(l Litmus, opts Options) (observed int, report *Report, err error) {
	opts = withDefaults(opts)
	// Outcome counting needs the raw executions even when the caller does
	// not: force retention for the run, then honor the caller's flag.
	keep := opts.KeepExecutions
	opts.KeepExecutions = true
	report, err = RunProgram(l.Prog, opts)
	if err != nil {
		return 0, report, err
	}
	for _, ex := range report.Executions {
		if l.Interesting.Matches(ex.LoadValues) {
			observed++
		}
	}
	if !keep {
		report.Executions = nil
	}
	return observed, report, nil
}

func withDefaults(opts Options) Options {
	if opts.Platform.Cores == 0 {
		opts.Platform = PlatformX86()
	}
	if opts.Iterations == 0 {
		opts.Iterations = 1024
	}
	return opts
}

// ModelName returns the platform's memory consistency model name; a small
// convenience for report rendering without importing internal packages.
func ModelName(p Platform) string { return p.Model.String() }

// Models lists the supported memory consistency models' names, strongest
// first.
func Models() []string {
	out := make([]string, len(mcm.Models))
	for i, m := range mcm.Models {
		out[i] = m.String()
	}
	return out
}

// SaveSignatures writes a report's unique signatures (with observation
// counts) in the compact binary device-to-host format. Callers typically
// stream this to disk for later offline checking or regression comparison.
func SaveSignatures(w io.Writer, report *Report, uniques []sig.Unique) error {
	_ = report // reserved for future metadata (program hash, platform)
	return sig.WriteSet(w, uniques)
}

// CollectSignatures runs only the execution stage: the program is executed
// for the configured iterations and the sorted unique signatures are
// returned without any checking. This is the "device side" of the paper's
// flow; pair it with CheckSignatures on the host. Execution shards across
// Options.Workers exactly as RunProgram does, so both sides of the split
// observe the same signatures for the same (Seed, Iterations).
func CollectSignatures(p *Program, opts Options) ([]sig.Unique, error) {
	opts = withDefaults(opts)
	meta, err := instrument.Analyze(p, opts.Platform.RegWidthBits, opts.Pruner)
	if err != nil {
		return nil, err
	}
	shards, err := runShards(p, meta, opts, opts.workerCount())
	if err != nil {
		return nil, err
	}
	sets := make([]*sig.Set, len(shards))
	for si, sh := range shards {
		sets[si] = sh.set
		if sh.err != nil {
			return nil, sh.err
		}
	}
	return sig.MergeSets(sets...), nil
}

// CheckSignatures is the "host side": it decodes previously collected
// unique signatures (e.g. loaded via sig.ReadSet) and checks them
// collectively under the platform's model using the static
// write-serialization mode, which needs nothing beyond the signatures.
func CheckSignatures(p *Program, plat Platform, uniques []sig.Unique,
	pruner instrument.Pruner) (*check.Result, error) {
	meta, err := instrument.Analyze(p, plat.RegWidthBits, pruner)
	if err != nil {
		return nil, err
	}
	builder := graph.NewBuilder(p, plat.Model, graph.Options{
		Forwarding: plat.Atomicity.AllowsForwarding(),
		WS:         graph.WSStatic,
	})
	items, err := DecodeItems(meta, builder, uniques, nil)
	if err != nil {
		return nil, err
	}
	return check.Collective(builder, items)
}

// LoadSignatures reads a signature set written by SaveSignatures.
func LoadSignatures(r io.Reader) ([]sig.Unique, error) { return sig.ReadSet(r) }

// WriteViolationDOT renders the constraint graph of one reported violation
// in Graphviz DOT format, with the offending cycle highlighted (a Fig. 2 /
// Fig. 13-style illustration). The graph is rebuilt from the violation's
// signature using the same options the report was produced with.
func WriteViolationDOT(w io.Writer, report *Report, v Violation, opts Options) error {
	opts = withDefaults(opts)
	// Reject unsupported modes before doing any analysis work.
	if opts.ObservedWS {
		return fmt.Errorf("mtracecheck: DOT rendering of observed-ws violations requires the recorded ws; re-run with the static mode")
	}
	meta, err := instrument.Analyze(report.Program, opts.Platform.RegWidthBits, opts.Pruner)
	if err != nil {
		return err
	}
	builder := graph.NewBuilder(report.Program, opts.Platform.Model, graph.Options{
		Forwarding: opts.Platform.Atomicity.AllowsForwarding(),
		WS:         graph.WSStatic,
	})
	cands, err := meta.Decode(v.Sig)
	if err != nil {
		return err
	}
	rf := make(graph.RF, len(cands))
	for id, c := range cands {
		rf[id] = c.Store
	}
	g, err := builder.BuildGraph(rf, nil)
	if err != nil {
		return err
	}
	return g.WriteDOT(w, report.Program, v.Cycle)
}

// NewProgramBuilderFromConfig generates a constrained-random program from a
// test configuration — a convenience for the device/host split, where both
// sides must reconstruct the identical program from the shared config.
func NewProgramBuilderFromConfig(cfg TestConfig) (*Program, error) {
	return testgen.Generate(cfg)
}
