// Package mtracecheck is a post-silicon memory-consistency validation
// framework, reproducing "MTraceCheck: Validating Non-Deterministic
// Behavior of Memory Consistency Models in Post-Silicon Validation"
// (Lee & Bertacco, ISCA 2017).
//
// The pipeline follows the paper's Fig. 1:
//
//  1. Generate constrained-random multi-threaded tests (or use directed
//     litmus tests) over a small pool of shared words, every store writing
//     a unique value.
//  2. Instrument each test with observability-enhancing code that
//     accumulates a compact memory-access interleaving signature — a 1:1
//     encoding of the execution's reads-from pattern.
//  3. Execute the test for many iterations on a platform — here a simulated
//     multi-core with MESI-coherent caches, store buffers, and a
//     configurable memory consistency model — collecting one signature per
//     iteration.
//  4. Check the unique signatures collectively: sorted signatures yield
//     structurally similar constraint graphs, so each graph is validated by
//     re-sorting only the window spanned by its new backward edges.
//
// The simulated platform substitutes for the paper's x86/ARM silicon; see
// DESIGN.md for the substitution rationale and fidelity notes.
//
// Because the device side of the post-silicon flow is the unreliable half,
// the pipeline is fault-tolerant by default: corrupted signatures are
// quarantined rather than aborting the run (Options.Strict restores the
// abort-on-first-error behavior), failed execution shards are retried and
// then degraded to partial results, campaigns are cancellable via
// RunProgramContext, and long campaigns can checkpoint and resume
// (Options.CheckpointPath / Options.Resume). The internal/fault package
// injects deterministic device-side faults to prove all of it.
//
// # Quick start
//
//	cfg := mtracecheck.TestConfig{Threads: 4, OpsPerThread: 50, Words: 64, Seed: 1}
//	report, err := mtracecheck.Run(cfg, mtracecheck.Options{
//		Platform:   mtracecheck.PlatformX86(),
//		Iterations: 2048,
//	})
//	// report.UniqueSignatures, report.Violations, ...
package mtracecheck

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"mtracecheck/internal/check"
	"mtracecheck/internal/corpus"
	"mtracecheck/internal/fault"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// Re-exported configuration types: the public API is the facade plus these
// aliases, so downstream users never import internal packages.
type (
	// TestConfig parameterizes constrained-random test generation
	// (paper Table 2).
	TestConfig = testgen.Config
	// Platform describes a system-under-validation (paper Table 1).
	Platform = sim.Platform
	// Program is a generated or hand-built test program.
	Program = prog.Program
	// Signature is a memory-access interleaving signature.
	Signature = sig.Signature
	// Violation is one detected MCM violation with its cycle witness.
	Violation = check.Violation
	// Litmus is a directed test with per-model expected outcomes.
	Litmus = testgen.Litmus
	// FaultConfig configures deterministic device-side fault injection
	// (rates per fault kind; the zero value injects nothing).
	FaultConfig = fault.Config
	// FaultKind identifies one injected fault class.
	FaultKind = fault.Kind
	// Quarantined is one corrupted signature held out of checking.
	Quarantined = fault.Quarantined
	// QuarantineKind classifies why a signature was quarantined.
	QuarantineKind = fault.QuarantineKind
	// Unique is one unique signature with its observation count — the unit
	// of the device-to-host channel (CollectSignatures, SaveSignatures,
	// LoadSignatures, CheckSignatures).
	Unique = sig.Unique
	// Corpus is the persistent cross-campaign signature corpus: an
	// append-only store of every signature ever proven acyclic, keyed by
	// (program hash, platform, MCM). Attach one via Options.Corpus so
	// repeat interleavings skip decode+check (see internal/corpus for the
	// MTCCORP1 format).
	Corpus = corpus.Store
	// CorpusKey identifies one corpus section.
	CorpusKey = corpus.Key
)

// OpenCorpus opens (or creates, at first flush) the signature corpus at
// path. A missing file yields an empty corpus. A file that exists but
// fails to load (truncation, checksum mismatch, wrong version) also
// yields a usable empty corpus together with the load error: callers
// should warn and may still attach the store — campaigns run cold,
// never with a wrong verdict, and the unreadable original is preserved
// under a ".quarantined" suffix at the next flush.
func OpenCorpus(path string) (*Corpus, error) { return corpus.Open(path) }

// Quarantine kinds (see fault.QuarantineKind).
const (
	// QuarantineDecode marks a signature the decoder rejected.
	QuarantineDecode = fault.QuarantineDecode
	// QuarantineEdges marks a decoded signature whose reads-from relation
	// failed constraint-edge construction.
	QuarantineEdges = fault.QuarantineEdges
)

// Injected fault kinds, the keys of Report.InjectedFaults (see fault.Kind).
const (
	FaultBitFlip    = fault.KindBitFlip
	FaultTruncate   = fault.KindTruncate
	FaultDuplicate  = fault.KindDuplicate
	FaultOutOfRange = fault.KindOutOfRange
	FaultStall      = fault.KindStall
	FaultPanic      = fault.KindPanic
)

// Platform presets (paper Table 1 and §7).
var (
	// PlatformX86 models the 4-core x86-TSO desktop.
	PlatformX86 = sim.PlatformX86
	// PlatformARM models the 8-core big.LITTLE weakly-ordered SoC.
	PlatformARM = sim.PlatformARM
	// PlatformGem5 models the §7 bug-injection target.
	PlatformGem5 = sim.PlatformGem5
)

// Bug identifies one of the paper's §7 injected defects.
type Bug uint8

const (
	// BugNone selects the defect-free gem5-like platform.
	BugNone Bug = iota
	// BugSMInv is bug 1: an invalidation arriving during the S→M cache
	// transient fails to squash speculative loads (protocol issue).
	BugSMInv
	// BugLSQSkip is bug 2: the load queue ignores invalidations entirely
	// (LSQ issue).
	BugLSQSkip
	// BugWBRace is bug 3: the owner ignores forwarded requests racing its
	// writeback, deadlocking the coherence protocol.
	BugWBRace
)

// BuggyPlatform returns the gem5-like bug-injection platform (§7) with the
// selected defect.
func BuggyPlatform(bug Bug) Platform {
	var mb mem.Bugs
	var sb sim.Bugs
	switch bug {
	case BugSMInv:
		mb.StaleSMInv = true
	case BugLSQSkip:
		sb.LQSquashSkip = true
	case BugWBRace:
		mb.WBRaceDeadlock = true
	}
	return sim.PlatformGem5(mb, sb)
}

// WithOS returns the platform with simulated OS scheduling enabled
// (time-sliced threads with migration — the paper's §6.1 Linux runs).
func WithOS(p Platform) Platform {
	p.OS = sim.OSConfig{Enabled: true, Quantum: 400, QuantumJitter: 120, Migrate: true}
	return p
}

// NewProgramBuilder starts a hand-built test program over numWords shared
// words with the default (no false sharing) layout; see prog.Builder for
// the fluent Thread/Load/Store/Fence API.
func NewProgramBuilder(name string, numWords int) *prog.Builder {
	return prog.NewBuilder(name, numWords, prog.DefaultLayout())
}

// LitmusTests returns the directed litmus library (SB, MP, LB, CoRR, WRC,
// IRIW, and fenced variants).
func LitmusTests() []Litmus { return testgen.LitmusTests() }

// PaperConfigs returns the paper's 21 test configurations (§5).
func PaperConfigs() []testgen.PaperConfig { return testgen.PaperConfigs() }

// Checker selects the violation-checking algorithm. Every checker is a
// registered check.Backend; all agree on verdicts and differ only in effort
// and parallelizability (see DESIGN.md §13).
type Checker uint8

const (
	// CheckerCollective is MTraceCheck's collective re-sorting checker.
	CheckerCollective Checker = iota
	// CheckerConventional topologically sorts every graph from scratch.
	CheckerConventional
	// CheckerIncremental repairs the maintained order per backward edge
	// (Pearce–Kelly), an extension beyond the paper's single-window scheme.
	// It is the one inherently serial checker: a single order maintained
	// across the whole sorted sequence is the algorithm, so Workers does
	// not shard it.
	CheckerIncremental
	// CheckerVectorClock checks each graph independently in polynomial time
	// by iterative vector-clock closure (Roy et al.'s TSOtool algorithm,
	// adapted to predecessor-bitset clocks), an extension beyond the paper.
	CheckerVectorClock
	// CheckerConstraints solves each graph's acyclicity as a constraint
	// system (one position variable per operation, pos[u] < pos[v] per
	// edge) by exhaustive propagation and backtracking, after Akgün et al.
	// It is a deliberately slow, obviously-correct oracle for differential
	// testing of the fast checkers and for external-trace verdicts; like
	// the incremental checker it is serial, so Workers does not shard it.
	CheckerConstraints
)

// checkers maps every Checker constant to its backend name; ParseChecker
// and String both walk it, so the two can never disagree.
var checkers = map[Checker]string{
	CheckerCollective:   "collective",
	CheckerConventional: "conventional",
	CheckerIncremental:  "incremental",
	CheckerVectorClock:  "vectorclock",
	CheckerConstraints:  "constraints",
}

// String returns the checker's backend registry name — the value the CLIs
// accept for their -checker flag.
func (c Checker) String() string {
	if name, ok := checkers[c]; ok {
		return name
	}
	return fmt.Sprintf("checker(%d)", uint8(c))
}

// CheckerNames lists the registered checking backends — the valid -checker
// values — sorted. The list comes from the backend registry, so it can
// never drift from the implemented set.
func CheckerNames() []string { return check.Backends() }

// ParseChecker maps a backend name to its Checker selection; the error for
// an unknown name lists every registered backend.
func ParseChecker(name string) (Checker, error) {
	for c, n := range checkers {
		if n == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("mtracecheck: unknown checker %q (valid: %s)",
		name, strings.Join(CheckerNames(), ", "))
}

// Options configures a validation run.
type Options struct {
	// Platform is the system to validate; zero value selects PlatformX86.
	Platform Platform
	// Iterations is the number of test runs (the paper uses 65536 on
	// silicon, 1024 under gem5); zero selects 1024.
	Iterations int
	// Seed drives all randomness (platform timing and scheduling).
	Seed int64
	// Checker selects the checking algorithm (default collective).
	Checker Checker
	// Pruner optionally applies static candidate pruning (§8).
	Pruner instrument.Pruner
	// ObservedWS switches the constraint graphs from the paper's static
	// write-serialization mode (ws facts derivable at instrumentation time;
	// graphs are a pure function of the signature) to the precise mode that
	// also uses the per-execution coherence order recorded by the platform
	// harness. Observed mode detects cross-thread write-serialization
	// violations the static mode provably cannot, at the cost of larger
	// graph diffs during collective checking.
	ObservedWS bool
	// KeepExecutions retains each iteration's raw execution in the report
	// (memory-heavy; for analysis tooling).
	KeepExecutions bool
	// Workers sizes the streaming pipeline: this many goroutines pull
	// fixed-size execution chunks from a shared cursor (work stealing), and
	// completed chunks stream through incremental merge and eager decode
	// while later chunks still execute; collective checking shards across
	// the same count. 0 selects GOMAXPROCS; 1 is the serial pipeline.
	// Results are identical for every value: iteration i's seed is the i-th
	// draw of the campaign's master seed stream — handed to whichever
	// worker claims the chunk containing i — and a reorder buffer merges
	// chunks in chunk order regardless of completion order, so the chunk
	// grid (and therefore every artifact) never depends on Workers. Only
	// the checker's effort accounting (CheckStats.PerGraph /
	// SortedVertices) carries a per-shard boundary overhead: each checking
	// shard's first graph needs one full sort.
	Workers int
	// Strict restores the abort-on-first-error behavior: a signature that
	// fails to decode or build edges, or an execution shard that exhausts
	// its retries, fails the run instead of degrading (quarantine / partial
	// results). The default is graceful: on a fault-free run both modes are
	// bit-identical, since nothing is ever quarantined or lost.
	Strict bool
	// QuarantineThreshold bounds graceful degradation: when the fraction of
	// unique signatures quarantined by decode or edge-build failures
	// exceeds it, the run fails with ErrQuarantineThreshold (the signature
	// channel is considered too corrupted to trust the surviving verdicts).
	// 0 means no limit.
	QuarantineThreshold float64
	// ShardTimeout is the deadline for a single execution-shard attempt
	// (0 = none). A shard exceeding it is retried per ShardRetries.
	ShardTimeout time.Duration
	// ShardRetries is how many times a failed execution shard — a recovered
	// panic or an expired ShardTimeout — is re-run from its block start
	// with capped exponential backoff. A shard still failing after all
	// retries degrades the run to partial results recorded in
	// Report.ShardFailures (Strict: fails with ErrShardFailed). Platform
	// crashes (ErrCrash) are findings, never retried.
	ShardRetries int
	// Fault injects deterministic device-side faults (internal/fault): the
	// zero value injects nothing, and a zero-fault run is bit-identical to
	// a run without the option. Requires the static ws mode — corrupted
	// signatures have no recorded write serialization.
	Fault FaultConfig
	// CheckpointPath, when set, periodically persists the merged signature
	// set (plus campaign identity) so an interrupted campaign can resume.
	// Checkpoint writes are atomic (temp file + rename).
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in iterations; 0 with a
	// CheckpointPath set selects Iterations/10 (at least 1).
	CheckpointEvery int
	// Resume loads CheckpointPath before executing and skips the
	// iterations it covers, producing a report whose unique signatures,
	// violations, and quarantine are identical to the uninterrupted run
	// with the same seed. Execution-cost counters (TotalCycles, Squashes)
	// and assertion failures cover only the iterations executed after the
	// resume point. Requires the static ws mode.
	Resume bool
	// Observer, when set, receives typed events from every pipeline stage —
	// execution shards, the signature merge, decode workers, checking
	// shards, and checkpoints. Observers are strictly read-only taps: any
	// observer (or combination via MultiObserver) leaves every report
	// bit-identical to an unobserved run, and nil (the default) adds zero
	// work and zero allocations to the pipeline. See the Observer docs and
	// the built-ins NewMetrics, NewProgress, and NewTraceJSON.
	Observer Observer
	// Corpus, when set, attaches a persistent cross-campaign signature
	// corpus (see OpenCorpus): unique signatures the corpus has already
	// proven acyclic for this (program, platform, MCM) skip decode and
	// checking entirely — while still counting toward UniqueSignatures and
	// the Fig. 8 growth curve — and newly verified signatures are appended
	// atomically at checkpoint boundaries and campaign end. Verdicts are
	// bit-identical to a corpus-less run: only proven-acyclic signatures
	// are ever cached, violating signatures never are, and a corpus that
	// fails to load or mismatches the campaign degrades to a cold run.
	// Requires the static ws mode and no Pruner. One store may be shared
	// by many campaigns concurrently (the dist server does).
	Corpus *Corpus
}

// workerCount resolves Workers (0 = GOMAXPROCS).
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ShardFailure records an execution shard that exhausted its retries; the
// surrounding report then covers only the iterations that actually executed.
type ShardFailure struct {
	Start, Count int // global iteration block the shard owned
	Executed     int // block iterations completed by the final attempt
	Attempts     int
	Err          error
}

// Report is the outcome of validating one test program.
type Report struct {
	Program *Program
	// Seed and Platform record the campaign identity the report was
	// produced under — the provenance SaveSignatures persists alongside
	// the signatures.
	Seed     int64
	Platform string
	// Iterations covered by the report: executed this run plus any restored
	// from a checkpoint (ResumedIterations).
	Iterations int
	// UniqueSignatures is the number of distinct memory-access
	// interleavings observed (the paper's Fig. 8 metric), after any
	// injected device-side corruption and before quarantine.
	UniqueSignatures int
	// SignatureBytes is the execution signature size (Fig. 11).
	SignatureBytes int
	// Violations lists MCM violations found by graph checking.
	Violations []Violation
	// AssertionFailures lists iterations whose loaded values fell outside
	// the statically computed candidate sets — caught inline by the
	// instrumentation's assert chains without any graph checking.
	AssertionFailures []error
	// Quarantined lists signatures held out of checking because they failed
	// to decode or to build constraint edges — device-side corruption the
	// run tolerated instead of aborting (see Options.Strict). Use
	// QuarantineCounts for the per-kind breakdown.
	Quarantined []Quarantined
	// InjectedFaults counts deterministic injected faults per kind when
	// Options.Fault is enabled; nil otherwise.
	InjectedFaults map[FaultKind]int
	// ShardFailures records execution shards that exhausted their retries;
	// a non-empty list means the report is partial (see Partial).
	ShardFailures []ShardFailure
	// ResumedIterations counts iterations restored from a checkpoint rather
	// than executed in this run.
	ResumedIterations int
	// CheckStats carries the checker's effort accounting (Figs. 9 and 14).
	CheckStats *check.Result
	// CorpusConsulted reports whether a signature corpus was consulted
	// (Options.Corpus set and usable for this campaign's key).
	CorpusConsulted bool
	// CorpusHits counts unique signatures that skipped decode and checking
	// because the corpus had already proven them acyclic; they still count
	// in UniqueSignatures.
	CorpusHits int
	// CorpusAppended counts newly proven-acyclic signatures this campaign
	// added to the corpus.
	CorpusAppended int
	// CorpusIgnored is non-nil when an attached corpus was refused (load
	// failure, signature-width mismatch) and the campaign ran cold.
	CorpusIgnored error
	// TotalCycles sums simulated execution time over all iterations
	// executed this run.
	TotalCycles int64
	// Squashes counts load-queue squash/replay events across iterations.
	Squashes int
	// Executions holds raw executions when Options.KeepExecutions is set.
	Executions []*sim.Execution
}

// Failed reports whether any violation or assertion failure was found.
func (r *Report) Failed() bool {
	return len(r.Violations) > 0 || len(r.AssertionFailures) > 0
}

// Partial reports whether any execution shard was lost after retries, i.e.
// the report covers only part of the requested iteration sequence.
func (r *Report) Partial() bool { return len(r.ShardFailures) > 0 }

// QuarantineCounts tallies quarantined signatures per kind; nil when the
// quarantine is empty.
func (r *Report) QuarantineCounts() map[QuarantineKind]int {
	return fault.CountByKind(r.Quarantined)
}

// ErrCrash wraps a platform crash (protocol deadlock or livelock), the
// manifestation of the paper's bug 3.
var ErrCrash = errors.New("mtracecheck: platform crashed during test execution")

// ErrQuarantineThreshold reports that the quarantined fraction of unique
// signatures exceeded Options.QuarantineThreshold.
var ErrQuarantineThreshold = errors.New("mtracecheck: quarantined signatures exceed threshold")

// ErrShardFailed wraps an execution shard failure (recovered panic or
// expired shard deadline) that survived every retry.
var ErrShardFailed = errors.New("mtracecheck: execution shard failed")

// errShardPanic marks a recovered per-shard panic; it is retryable and, if
// retries are exhausted, surfaces wrapped in ErrShardFailed.
var errShardPanic = errors.New("mtracecheck: shard panicked")

// RunContext generates a constrained-random test program from cfg and
// drives the full validation pipeline over it; see RunProgramContext for
// the pipeline and cancellation contract. This is the documented core of
// the Run/RunContext pair.
func RunContext(ctx context.Context, cfg TestConfig, opts Options) (*Report, error) {
	p, err := testgen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return RunProgramContext(ctx, p, opts)
}

// Run is RunContext with context.Background().
func Run(cfg TestConfig, opts Options) (*Report, error) {
	return RunContext(context.Background(), cfg, opts)
}

// RunProgramContext drives the full pipeline — sharded execution,
// signature merge, decode, collective checking — over an existing program
// (e.g. a litmus test or a hand-built scenario). It is a thin wrapper over
// NewCampaign + Campaign.Run, the spine every entry point shares.
//
// The three hot stages are sharded across Options.Workers goroutines; see
// Options.Workers for the determinism contract (results are identical for
// every worker count). The context is polled between iterations in every
// execution shard, between signatures in every decode worker, and between
// graphs in every checking shard, so cancellation returns promptly — with
// all pipeline goroutines joined — carrying ctx.Err().
func RunProgramContext(ctx context.Context, p *Program, opts Options) (*Report, error) {
	c, err := NewCampaign(p, opts)
	if err != nil {
		return nil, err
	}
	return c.Run(ctx)
}

// RunProgram is RunProgramContext with context.Background().
func RunProgram(p *Program, opts Options) (*Report, error) {
	return RunProgramContext(context.Background(), p, opts)
}

// DecodeItems converts sorted unique signatures back into checkable items:
// each signature is decoded to its reads-from relation (paper Alg. 1) and
// combined with the write-serialization order observed by the harness.
// Signatures decode independently, so the work fans out over GOMAXPROCS
// goroutines into a pre-sized slice that preserves the sorted order. It is
// strict: the first failure aborts (the lowest-indexed one, as the serial
// loop would hit); RunProgram's graceful quarantine path is configured via
// Options.Strict instead.
func DecodeItems(ctx context.Context, meta *instrument.Meta, b *graph.Builder,
	uniques []Unique, wsBySig map[string]graph.WS) ([]check.Item, error) {
	items, _, err := decodeItems(ctx, meta, b, uniques, wsBySig, runtime.GOMAXPROCS(0), true, emitter{})
	return items, err
}

// RunLitmusContext executes a litmus test, reporting how often the
// interesting outcome was observed alongside the full validation report. A
// forbidden outcome that is observed also surfaces as a graph-check
// violation. This is the documented core of the RunLitmus pair; the
// context cancels the underlying campaign as in RunProgramContext.
func RunLitmusContext(ctx context.Context, l Litmus, opts Options) (observed int, report *Report, err error) {
	opts = withDefaults(opts)
	// Outcome counting needs the raw executions even when the caller does
	// not: force retention for the run, then honor the caller's flag.
	keep := opts.KeepExecutions
	opts.KeepExecutions = true
	report, err = RunProgramContext(ctx, l.Prog, opts)
	if err != nil {
		return 0, report, err
	}
	for _, ex := range report.Executions {
		if l.Interesting.MatchesValues(ex.LoadValues) {
			observed++
		}
	}
	if !keep {
		report.Executions = nil
	}
	return observed, report, nil
}

// RunLitmus is RunLitmusContext with context.Background().
func RunLitmus(l Litmus, opts Options) (observed int, report *Report, err error) {
	return RunLitmusContext(context.Background(), l, opts)
}

func withDefaults(opts Options) Options {
	if opts.Platform.Cores == 0 {
		opts.Platform = PlatformX86()
	}
	if opts.Iterations == 0 {
		opts.Iterations = 1024
	}
	return opts
}

// ModelName returns the platform's memory consistency model name; a small
// convenience for report rendering without importing internal packages.
func ModelName(p Platform) string { return p.Model.String() }

// Models lists the supported memory consistency models' names, strongest
// first.
func Models() []string {
	out := make([]string, len(mcm.Models))
	for i, m := range mcm.Models {
		out[i] = m.String()
	}
	return out
}

// SaveSignatures writes unique signatures (with observation counts) in the
// compact binary device-to-host format. A report carrying a program
// records real provenance — program hash, seed, platform name — in a
// versioned header that LoadSignaturesMeta returns and
// ValidateSignatureMeta checks, catching the wrong-program/wrong-seed
// mistake before any host-side checking. A nil report writes the
// headerless legacy format, which loads everywhere but validates nothing.
func SaveSignatures(w io.Writer, report *Report, uniques []Unique) error {
	if report == nil || report.Program == nil {
		return sig.WriteSet(w, uniques)
	}
	return sig.WriteSetMeta(w, sig.FileMeta{
		ProgHash: progHash(report.Program),
		Seed:     report.Seed,
		Platform: report.Platform,
	}, uniques)
}

// CollectSignaturesContext runs only the execution stage: the program is
// executed for the configured iterations and the sorted unique signatures
// are returned without any checking. This is the "device side" of the
// paper's flow (a thin wrapper over NewCampaign + Campaign.Collect); pair
// it with CheckSignaturesContext on the host. Execution shards across
// Options.Workers exactly as RunProgramContext does, so both sides of the
// split observe the same signatures for the same (Seed, Iterations); fault
// injection, checkpointing, shard retry, and the observer apply
// identically. This is the documented core of the CollectSignatures pair.
func CollectSignaturesContext(ctx context.Context, p *Program, opts Options) ([]Unique, error) {
	c, err := NewCampaign(p, opts)
	if err != nil {
		return nil, err
	}
	return c.Collect(ctx)
}

// CollectSignatures is CollectSignaturesContext with context.Background().
func CollectSignatures(p *Program, opts Options) ([]Unique, error) {
	return CollectSignaturesContext(context.Background(), p, opts)
}

// CheckSignaturesContext is the "host side": it decodes previously
// collected unique signatures (e.g. loaded via LoadSignatures) and checks
// them under the campaign options — checker selection, Workers,
// Strict/QuarantineThreshold, and Options.Observer all apply, exactly as
// in the full pipeline (it is a thin wrapper over NewCampaign +
// Campaign.Check). The static write-serialization mode is required (and is
// the default): stored signatures carry nothing beyond themselves. The
// returned report covers the host-side stages only — UniqueSignatures,
// Quarantined, CheckStats, Violations; its execution counters are zero.
// This is the documented core of the CheckSignatures pair.
func CheckSignaturesContext(ctx context.Context, p *Program, uniques []Unique, opts Options) (*Report, error) {
	c, err := NewCampaign(p, opts)
	if err != nil {
		return nil, err
	}
	return c.Check(ctx, uniques)
}

// CheckSignatures is CheckSignaturesContext with context.Background().
func CheckSignatures(p *Program, uniques []Unique, opts Options) (*Report, error) {
	return CheckSignaturesContext(context.Background(), p, uniques, opts)
}

// LoadSignatures reads a signature set written by SaveSignatures,
// discarding any provenance header; use LoadSignaturesMeta to validate it.
func LoadSignatures(r io.Reader) ([]Unique, error) { return sig.ReadSet(r) }

// LoadSignaturesMeta reads a signature set along with its provenance
// header. Sets saved through a nil report (or by older versions) load with
// a nil meta. Pass the meta to ValidateSignatureMeta before checking.
func LoadSignaturesMeta(r io.Reader) ([]Unique, *SignatureMeta, error) {
	return sig.ReadSetMeta(r)
}

// ValidateSignatureMeta checks a loaded signature set's provenance against
// the campaign about to check it: the program fingerprint must match, and
// seed and platform name must agree when the caller supplies them. A nil
// meta (headerless set) validates trivially — there is nothing to check.
func ValidateSignatureMeta(meta *SignatureMeta, p *Program, opts Options) error {
	if meta == nil {
		return nil
	}
	opts = withDefaults(opts)
	if h := progHash(p); meta.ProgHash != h {
		return fmt.Errorf("mtracecheck: signature set was collected from a different test program (hash %#x, expected %#x)", meta.ProgHash, h)
	}
	if meta.Seed != opts.Seed {
		return fmt.Errorf("mtracecheck: signature set was collected with seed %d, not %d", meta.Seed, opts.Seed)
	}
	if meta.Platform != "" && meta.Platform != opts.Platform.Name {
		return fmt.Errorf("mtracecheck: signature set was collected on %q, not %q", meta.Platform, opts.Platform.Name)
	}
	return nil
}

// WriteViolationDOT renders the constraint graph of one reported violation
// in Graphviz DOT format, with the offending cycle highlighted (a Fig. 2 /
// Fig. 13-style illustration). The graph is rebuilt from the violation's
// signature using the same options the report was produced with.
func WriteViolationDOT(w io.Writer, report *Report, v Violation, opts Options) error {
	opts = withDefaults(opts)
	// Reject unsupported modes before doing any analysis work.
	if opts.ObservedWS {
		return fmt.Errorf("mtracecheck: DOT rendering of observed-ws violations requires the recorded ws; re-run with the static mode")
	}
	meta, err := instrument.Analyze(report.Program, opts.Platform.RegWidthBits, opts.Pruner)
	if err != nil {
		return err
	}
	builder := graph.NewBuilder(report.Program, opts.Platform.Model, graph.Options{
		Forwarding: opts.Platform.Atomicity.AllowsForwarding(),
		WS:         graph.WSStatic,
	})
	cands, err := meta.Decode(v.Sig)
	if err != nil {
		return err
	}
	rf := make(graph.RF, len(cands))
	for id, c := range cands {
		rf[id] = c.Store
	}
	g, err := builder.BuildGraph(rf, nil)
	if err != nil {
		return err
	}
	return g.WriteDOT(w, report.Program, v.Cycle)
}

// NewProgramBuilderFromConfig generates a constrained-random program from a
// test configuration — a convenience for the device/host split, where both
// sides must reconstruct the identical program from the shared config.
func NewProgramBuilderFromConfig(cfg TestConfig) (*Program, error) {
	return testgen.Generate(cfg)
}
