package mtracecheck

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"testing"
	"time"

	"mtracecheck/internal/instrument"
	"mtracecheck/internal/obs"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// chaosObserver perturbs the streaming scheduler: every execution chunk
// start sleeps a deterministic pseudo-random few milliseconds keyed by
// (salt, chunk start, attempt), scrambling chunk completion order without
// introducing shared mutable state (observers run on worker goroutines, so
// this also exercises the pipeline under -race).
type chaosObserver struct{ salt uint64 }

func (o chaosObserver) delay(start, attempt int) time.Duration {
	h := fnv.New64a()
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], o.salt)
	binary.LittleEndian.PutUint64(b[8:], uint64(start))
	binary.LittleEndian.PutUint64(b[16:], uint64(attempt))
	h.Write(b[:])
	return time.Duration(h.Sum64()%4) * time.Millisecond
}

func (o chaosObserver) CampaignStart(obs.CampaignStart) {}
func (o chaosObserver) ShardStart(e obs.ShardStart) {
	if e.Stage == obs.StageExecute {
		time.Sleep(o.delay(e.Start, e.Attempt))
	}
}
func (o chaosObserver) ShardEnd(obs.ShardEnd)       {}
func (o chaosObserver) MergeDone(obs.MergeDone)     {}
func (o chaosObserver) Checkpoint(obs.Checkpoint)   {}
func (o chaosObserver) CampaignEnd(obs.CampaignEnd) {}

// TestSchedulerDeterminism stresses the work-stealing scheduler: per-chunk
// delays randomize which worker finishes which chunk first, across worker
// counts spanning one-chunk-at-a-time to more workers than chunks. Reports
// and saved signature files must stay bit-identical, because the reorder
// buffer absorbs chunks in chunk order no matter the completion schedule.
func TestSchedulerDeterminism(t *testing.T) {
	p := testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5})
	scenarios := []struct {
		name string
		opts Options
	}{
		{"clean", Options{Platform: PlatformX86(), Iterations: 300, Seed: 11, KeepExecutions: true}},
		{"faulted", Options{Platform: PlatformX86(), Iterations: 300, Seed: 11,
			ShardRetries: 3,
			Fault:        FaultConfig{Seed: 3, BitFlip: 0.2, Truncate: 0.1, ShardPanic: 0.5}}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			type result struct {
				report *Report
				sigs   []byte
			}
			results := map[int]result{}
			for salt, workers := range map[int]int{0: 1, 1: 2, 2: 3, 3: 8} {
				opts := sc.opts
				opts.Workers = workers
				opts.Observer = chaosObserver{salt: uint64(salt)}
				report, err := RunProgram(p, opts)
				if err != nil {
					t.Fatalf("workers %d: %v", workers, err)
				}
				uniques, err := CollectSignatures(p, opts)
				if err != nil {
					t.Fatalf("workers %d: collect: %v", workers, err)
				}
				var buf bytes.Buffer
				if err := SaveSignatures(&buf, report, uniques); err != nil {
					t.Fatalf("workers %d: save: %v", workers, err)
				}
				results[workers] = result{report: report, sigs: buf.Bytes()}
			}
			base := results[1]
			for _, workers := range []int{2, 3, 8} {
				got := results[workers]
				if got.report.Iterations != base.report.Iterations ||
					got.report.TotalCycles != base.report.TotalCycles ||
					got.report.Squashes != base.report.Squashes ||
					got.report.UniqueSignatures != base.report.UniqueSignatures ||
					len(got.report.Violations) != len(base.report.Violations) ||
					len(got.report.Quarantined) != len(base.report.Quarantined) ||
					len(got.report.AssertionFailures) != len(base.report.AssertionFailures) ||
					len(got.report.ShardFailures) != len(base.report.ShardFailures) {
					t.Errorf("workers %d: report diverges from workers 1", workers)
				}
				if len(got.report.Executions) != len(base.report.Executions) {
					t.Fatalf("workers %d: %d executions, want %d", workers,
						len(got.report.Executions), len(base.report.Executions))
				}
				for i, ex := range base.report.Executions {
					if results[workers].report.Executions[i].Cycles != ex.Cycles {
						t.Fatalf("workers %d: execution %d cycles diverge", workers, i)
					}
				}
				if !bytes.Equal(got.sigs, base.sigs) {
					t.Errorf("workers %d: signature file is not bit-identical to workers 1", workers)
				}
			}
		})
	}
}

// TestLegacyCheckpointResume: checkpoints written by the pre-streaming
// pipeline — serial and skip-ahead sharded collection over the same master
// seed stream — must resume bit-identically under the chunked scheduler,
// because both sides derive iteration i's seed from the i-th master draw
// (the MTCCKPT1 identity is unchanged: seed, program hash, completed
// count, merged uniques).
func TestLegacyCheckpointResume(t *testing.T) {
	p := testgen.MustGenerate(TestConfig{Threads: 2, OpsPerThread: 20, Words: 4, Seed: 1})
	plat := PlatformX86()
	const resumeAt, total = 60, 120

	// Legacy device side: two contiguous shard blocks, each positioned by
	// skipping the campaign seed stream to its start — the old pipeline's
	// contiguous-block scheme expressed through the seed-stream identity
	// (stream value i is iteration i's seed).
	meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := sig.NewSet()
	collect := func(skip, count int) {
		r, err := sim.NewRunner(plat, p, 7)
		if err != nil {
			t.Fatal(err)
		}
		s := sim.NewSeedStream(7)
		s.Skip(skip)
		var sigBuf []uint64
		for i := 0; i < count; i++ {
			ex, err := r.RunSeeded(s.Next())
			if err != nil {
				t.Fatal(err)
			}
			sigBuf, err = meta.EncodeExecutionInto(sigBuf[:0], ex.LoadValues)
			if err != nil {
				t.Fatal(err)
			}
			set.AddWords(sigBuf)
		}
	}
	collect(0, resumeAt/2)
	collect(resumeAt/2, resumeAt/2)
	path := t.TempDir() + "/legacy.ckpt"
	ck := sig.Checkpoint{Seed: 7, ProgHash: progHash(p), Completed: resumeAt, Uniques: set.Sorted()}
	if _, err := writeCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}

	opts := Options{Platform: plat, Iterations: total, Seed: 7, Workers: 3,
		CheckpointPath: path, CheckpointEvery: 30, Resume: true}
	resumed, err := RunProgram(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ResumedIterations != resumeAt {
		t.Fatalf("resumed %d iterations, want %d", resumed.ResumedIterations, resumeAt)
	}

	full, err := RunProgram(p, Options{Platform: plat, Iterations: total, Seed: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Iterations != full.Iterations ||
		resumed.UniqueSignatures != full.UniqueSignatures ||
		len(resumed.Violations) != len(full.Violations) {
		t.Errorf("resumed report diverges from uninterrupted run:\nresumed %+v\nfull    %+v",
			resumed, full)
	}
	ru, err := CollectSignatures(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	fu, err := CollectSignatures(p, Options{Platform: plat, Iterations: total, Seed: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ru) != len(fu) {
		t.Fatalf("resumed uniques %d, full %d", len(ru), len(fu))
	}
	for i := range fu {
		if !ru[i].Sig.Equal(fu[i].Sig) || ru[i].Count != fu[i].Count {
			t.Fatalf("unique %d diverges after legacy resume", i)
		}
	}
}

// TestSeedStreamMatchesRunnerDraws pins the seed-table contract at the API
// level: executing iteration i via RunSeeded(stream value i) must be
// bit-identical to the i-th Run() on a same-seeded runner.
func TestSeedStreamMatchesRunnerDraws(t *testing.T) {
	p := testgen.MustGenerate(TestConfig{Threads: 2, OpsPerThread: 15, Words: 4, Seed: 3})
	plat := PlatformX86()
	serial, err := sim.NewRunner(plat, p, 42)
	if err != nil {
		t.Fatal(err)
	}
	seeds := sim.SeedTable(42, 10)
	seeded, err := sim.NewRunner(plat, p, 99) // different master seed: must not matter
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		a, err := serial.Run()
		if err != nil {
			t.Fatal(err)
		}
		cycles := a.Cycles
		b, err := seeded.RunSeeded(seed)
		if err != nil {
			t.Fatal(err)
		}
		if b.Cycles != cycles {
			t.Fatalf("iteration %d: RunSeeded cycles %d, Run cycles %d", i, b.Cycles, cycles)
		}
	}
}
