package mtracecheck

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mtracecheck/internal/obs"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
)

// The chunk API exports the campaign's worker-invariant execution grid for
// out-of-process use: the distributed service leases chunks to remote
// workers and merges their results here. Three properties make remote
// execution safe and its failures recoverable:
//
//   - Any runner can execute any chunk: each chunk carries its slice of the
//     campaign's per-iteration seed stream, so a chunk's signatures and
//     counters are a pure function of (program, options, chunk index).
//   - Because of that purity, a chunk re-executed by a different worker —
//     after a crash, hang, or partition — produces bit-identical results,
//     so redispatch and duplicate completions are harmless.
//   - ChunkMerger.Absorb deduplicates by chunk index and Report assembles
//     counters in ascending chunk order, so the merged report is identical
//     to a single-process run regardless of which workers computed which
//     chunks, in what order, or how many times.

// ChunkSize is the campaign execution grid's granule: chunk i covers
// iterations [i*ChunkSize, min((i+1)*ChunkSize, Iterations)). It equals the
// in-process scheduler's granule, so fault plans and retry outcomes keyed by
// chunk bounds agree between local and distributed execution.
const ChunkSize = execChunkSize

// NumChunks returns the number of chunks in the campaign's execution grid.
func (c *Campaign) NumChunks() int {
	return (c.opts.Iterations + ChunkSize - 1) / ChunkSize
}

// ChunkBounds returns the global iteration range [start, start+count) of
// one grid chunk.
func (c *Campaign) ChunkBounds(idx int) (start, count int) {
	start = idx * ChunkSize
	count = min(ChunkSize, c.opts.Iterations-start)
	return start, count
}

// SignatureWords returns the per-signature word count every chunk result
// must carry — the upload-validation width for remote results.
func (c *Campaign) SignatureWords() int { return c.meta.TotalWords() }

// chunkable rejects option combinations the chunk grid cannot honor: chunk
// results must be self-contained and worker-invariant, which rules out
// recorded write serializations, retained executions, and prefix-resume.
func (c *Campaign) chunkable() error {
	switch {
	case c.opts.ObservedWS:
		return errors.New("mtracecheck: chunked execution requires the static ws mode")
	case c.opts.KeepExecutions:
		return errors.New("mtracecheck: chunked execution cannot retain executions")
	case c.opts.Resume:
		return errors.New("mtracecheck: chunked execution resumes through ChunkMerger.Restore, not Options.Resume")
	case c.opts.Iterations <= 0:
		return errors.New("mtracecheck: chunked execution requires Iterations > 0")
	}
	return nil
}

// ChunkStats is one executed chunk's accounting, serializable for the wire.
// Asserts carries assertion-failure messages (paper bug class 2) rather
// than structured errors so results survive transport.
type ChunkStats struct {
	Iterations int
	Cycles     int64
	Squashes   int
	Asserts    []string
}

// ChunkResult is one executed chunk: its grid coordinates, accounting, and
// the sorted unique signatures it observed. Results are bit-identical
// regardless of which ChunkRunner computed them.
type ChunkResult struct {
	Chunk   int
	Start   int
	Count   int
	Stats   ChunkStats
	Uniques []Unique
}

// ChunkRunner executes grid chunks on a private simulator runner, reusing
// it across chunks the way an in-process worker does (and rebuilding it
// after a panicking attempt). It is owned by a single goroutine.
type ChunkRunner struct {
	c      *Campaign
	runner *sim.Runner
}

// NewChunkRunner validates that the campaign's options permit chunked
// execution and returns a runner for its grid.
func (c *Campaign) NewChunkRunner() (*ChunkRunner, error) {
	if err := c.chunkable(); err != nil {
		return nil, err
	}
	r, err := sim.NewRunner(c.opts.Platform, c.prog, c.opts.Seed)
	if err != nil {
		return nil, err
	}
	return &ChunkRunner{c: c, runner: r}, nil
}

// Run executes one grid chunk with the campaign's full retry/backoff and
// fault-injection semantics and returns its result. On failure the result
// still carries the final attempt's partial accounting; the error is
// ErrCrash for platform findings, ErrShardFailed for infra failures that
// survived every retry, or the context's error.
func (cr *ChunkRunner) Run(ctx context.Context, idx int) (*ChunkResult, error) {
	c := cr.c
	if idx < 0 || idx >= c.NumChunks() {
		return nil, fmt.Errorf("mtracecheck: chunk %d outside grid of %d", idx, c.NumChunks())
	}
	start, count := c.ChunkBounds(idx)
	seeds := make([]int64, count)
	stream := sim.NewSeedStream(c.opts.Seed)
	stream.Skip(start)
	stream.Fill(seeds)
	out := c.runChunkRetrying(ctx, 0, &cr.runner, start, count, seeds)
	out.idx = idx
	res := &ChunkResult{
		Chunk: idx, Start: start, Count: count,
		Stats: ChunkStats{
			Iterations: out.iterations, Cycles: out.cycles, Squashes: out.squashes,
		},
		Uniques: out.set.Sorted(),
	}
	for _, a := range out.asserts {
		res.Stats.Asserts = append(res.Stats.Asserts, a.Error())
	}
	return res, out.err
}

// assertFailure carries a transported assertion-failure message in the
// report's AssertionFailures list.
type assertFailure string

func (a assertFailure) Error() string { return string(a) }

// ChunkMerger accumulates chunk results into a campaign report. Absorb is
// idempotent per chunk index — duplicate completions (stragglers, retried
// uploads, redispatch races) merge to the same state — and Report assembles
// counters in ascending chunk order, so the outcome is independent of
// completion order. Not safe for concurrent use; callers serialize.
type ChunkMerger struct {
	c     *Campaign
	began time.Time
	acc   *sig.Set
	stats []ChunkStats // per chunk; valid where done[i]
	done  []bool
	nDone int
	final []Unique // post-injection set, recorded by Report
}

// NewChunkMerger returns an empty merger over the campaign's grid and
// emits the campaign-start event (the merger is the distributed campaign's
// host side, so its lifetime brackets the observable campaign).
func (c *Campaign) NewChunkMerger() (*ChunkMerger, error) {
	if err := c.chunkable(); err != nil {
		return nil, err
	}
	n := c.NumChunks()
	m := &ChunkMerger{
		c: c, began: time.Now(), acc: sig.NewSet(),
		stats: make([]ChunkStats, n), done: make([]bool, n),
	}
	c.em.campaignStart(c.prog, c.opts, c.opts.Iterations, c.workers, m.began)
	return m, nil
}

// Done returns how many grid chunks have been absorbed.
func (m *ChunkMerger) Done() int { return m.nDone }

// IsDone reports whether one chunk has been absorbed.
func (m *ChunkMerger) IsDone(idx int) bool {
	return idx >= 0 && idx < len(m.done) && m.done[idx]
}

// Complete reports whether every grid chunk has been absorbed.
func (m *ChunkMerger) Complete() bool { return m.nDone == len(m.done) }

// Merged returns the sorted unique signatures absorbed so far — the
// checkpoint payload.
func (m *ChunkMerger) Merged() []Unique { return m.acc.Sorted() }

// Final returns the post-injection unique set the report was checked
// against — what SaveSignatures persists. Nil until Report has run.
func (m *ChunkMerger) Final() []Unique { return m.final }

// Stats returns one absorbed chunk's accounting (the zero value when the
// chunk is not done).
func (m *ChunkMerger) Stats(idx int) ChunkStats {
	if !m.IsDone(idx) {
		return ChunkStats{}
	}
	return m.stats[idx]
}

// Absorb folds one chunk result into the merger. It returns false with no
// state change when the chunk was already absorbed (a deduplicated
// duplicate completion), and an error when the result does not fit the
// campaign's grid — wrong bounds, wrong signature width, impossible
// counters — which the distributed server treats as a validation strike
// against the uploading worker.
func (m *ChunkMerger) Absorb(r *ChunkResult) (fresh bool, err error) {
	if r == nil {
		return false, errors.New("mtracecheck: nil chunk result")
	}
	if r.Chunk < 0 || r.Chunk >= len(m.done) {
		return false, fmt.Errorf("mtracecheck: chunk %d outside grid of %d", r.Chunk, len(m.done))
	}
	start, count := m.c.ChunkBounds(r.Chunk)
	if r.Start != start || r.Count != count {
		return false, fmt.Errorf("mtracecheck: chunk %d claims iterations [%d,%d), grid says [%d,%d)",
			r.Chunk, r.Start, r.Start+r.Count, start, start+count)
	}
	if r.Stats.Iterations != count {
		return false, fmt.Errorf("mtracecheck: chunk %d completed %d of %d iterations",
			r.Chunk, r.Stats.Iterations, count)
	}
	words := m.c.SignatureWords()
	for i := range r.Uniques {
		if r.Uniques[i].Sig.Len() != words {
			return false, fmt.Errorf("mtracecheck: chunk %d signature %d has %d words, campaign signatures have %d",
				r.Chunk, i, r.Uniques[i].Sig.Len(), words)
		}
		if r.Uniques[i].Count <= 0 {
			return false, fmt.Errorf("mtracecheck: chunk %d signature %d claims %d observations",
				r.Chunk, i, r.Uniques[i].Count)
		}
	}
	if m.done[r.Chunk] {
		return false, nil
	}
	for _, u := range r.Uniques {
		m.acc.AddUnique(u)
	}
	m.stats[r.Chunk] = r.Stats
	m.done[r.Chunk] = true
	m.nDone++
	return true, nil
}

// Restore seeds the merger from a checkpoint: the merged unique set
// collected before the restart plus the per-chunk stats of the chunks it
// covered. The restored merger continues exactly where the checkpointed one
// stopped — completed chunks are never re-executed.
func (m *ChunkMerger) Restore(uniques []Unique, done map[int]ChunkStats) error {
	if m.nDone > 0 {
		return errors.New("mtracecheck: Restore requires an empty merger")
	}
	start, count := 0, 0
	for idx, st := range done {
		if idx < 0 || idx >= len(m.done) {
			return fmt.Errorf("mtracecheck: restored chunk %d outside grid of %d", idx, len(m.done))
		}
		if start, count = m.c.ChunkBounds(idx); st.Iterations != count {
			return fmt.Errorf("mtracecheck: restored chunk %d covers %d of %d iterations (grid start %d)",
				idx, st.Iterations, count, start)
		}
	}
	words := m.c.SignatureWords()
	for i := range uniques {
		if uniques[i].Sig.Len() != words {
			return fmt.Errorf("mtracecheck: restored signature %d has %d words, campaign signatures have %d",
				i, uniques[i].Sig.Len(), words)
		}
		m.acc.AddUnique(uniques[i])
	}
	for idx, st := range done {
		m.stats[idx] = st
		m.done[idx] = true
		m.nDone++
	}
	return nil
}

// Report runs the host side over the merged results — corruption injection,
// decode, quarantine gate, collective check — and returns the campaign
// report, bit-identical to an uninterrupted in-process run of the same
// (program, options). It requires every grid chunk to have been absorbed.
func (m *ChunkMerger) Report(ctx context.Context) (*Report, error) {
	c := m.c
	if !m.Complete() {
		err := fmt.Errorf("mtracecheck: report requires all %d chunks, have %d", len(m.done), m.nDone)
		return nil, err
	}
	report := c.newReport()
	for idx := range m.stats {
		st := &m.stats[idx]
		report.Iterations += st.Iterations
		report.TotalCycles += st.Cycles
		report.Squashes += st.Squashes
		for _, a := range st.Asserts {
			report.AssertionFailures = append(report.AssertionFailures, assertFailure(a))
		}
	}
	uniques := m.acc.Sorted()
	var injected obs.FaultCounts
	if c.inj != nil {
		uniques, report.InjectedFaults = c.inj.Corrupt(uniques)
		injected = faultCounts(report.InjectedFaults)
	}
	report.UniqueSignatures = len(uniques)
	m.final = uniques
	c.em.mergeDone(report.Iterations, len(uniques), injected, true)
	err := c.decodeAndCheck(ctx, uniques, nil, report)
	c.em.campaignEnd(report, err, m.began)
	return report, err
}
