package mtracecheck

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"testing"
	"time"

	"mtracecheck/internal/obs"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/testgen"
)

// TestMetricsWorkerInvariant pins the observability layer's aggregation
// contract: Metrics.Snapshot().Totals must be bit-identical for every
// Workers value on the same campaign configuration, because totals only
// aggregate quantities the pipeline's determinism contract fixes. Effort
// (shard attempts, boundary re-sorts) is deliberately excluded.
func TestMetricsWorkerInvariant(t *testing.T) {
	p := testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5})
	scenarios := []struct {
		name string
		opts Options
	}{
		{"clean", Options{Platform: PlatformX86(), Iterations: 150, Seed: 11}},
		{"faulted", Options{Platform: PlatformX86(), Iterations: 150, Seed: 11,
			ShardRetries: 3,
			Fault: FaultConfig{Seed: 3, BitFlip: 0.2, Truncate: 0.1,
				Duplicate: 0.1, OutOfRange: 0.05, ShardPanic: 0.5}}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			snaps := map[int]MetricsSnapshot{}
			for _, workers := range []int{1, 3, 4} {
				opts := sc.opts
				opts.Workers = workers
				m := NewMetrics()
				opts.Observer = m
				report, err := RunProgram(p, opts)
				if err != nil {
					t.Fatalf("workers %d: %v", workers, err)
				}
				if report.Partial() {
					// A shard lost after retries would legitimately break
					// invariance; this configuration must not produce one.
					t.Fatalf("workers %d: partial report", workers)
				}
				snaps[workers] = m.Snapshot()
			}
			base := snaps[1]
			for _, workers := range []int{3, 4} {
				if got := snaps[workers]; !reflect.DeepEqual(got.Totals, base.Totals) {
					t.Errorf("workers %d totals diverge from workers 1:\n got %+v\nwant %+v",
						workers, got.Totals, base.Totals)
				}
			}
			if base.Totals.Iterations != 150 {
				t.Errorf("iterations total = %d, want 150", base.Totals.Iterations)
			}
			if base.Totals.Uniques == 0 {
				t.Error("uniques gauge never set")
			}
		})
	}
}

// TestNilObserverZeroAllocs pins the guaranteed-zero-cost no-op path: with
// a nil observer every emitter method must be a single branch, adding no
// allocations to the hot pipeline (the existing AllocsPerRun budgets cover
// the loop itself; this covers the taps).
func TestNilObserverZeroAllocs(t *testing.T) {
	em := emitter{}
	out := &shardOut{set: sig.NewSet()}
	allocs := testing.AllocsPerRun(200, func() {
		em.shardStart(obs.StageExecute, 0, 0, 0, 10, time.Time{})
		em.execShardEnd(0, out, time.Time{}, false, 0)
		em.mergeDone(10, 1, obs.FaultCounts{}, true)
		em.checkShardEnd("collective", 0, 1, 0, 1, nil, time.Time{}, 0)
		em.checkpointOp(obs.CheckpointSaved, "x", 10, 1, 64)
	})
	if allocs != 0 {
		t.Errorf("nil-observer emitter: %.0f allocs/run, want 0", allocs)
	}
	if em.checkShardFunc("collective") != nil {
		t.Error("nil observer must yield a nil check.ShardFunc")
	}
}

// TestObserversDoNotPerturbReport pins the non-perturbation contract: a
// campaign observed by all three built-in observers must produce a report
// and signature set bit-identical to an unobserved run — on both ISAs and
// under fault injection.
func TestObserversDoNotPerturbReport(t *testing.T) {
	scenarios := []struct {
		name string
		opts Options
	}{
		{"x86", Options{Platform: PlatformX86(), Iterations: 120, Seed: 9, Workers: 3}},
		{"arm", Options{Platform: PlatformARM(), Iterations: 120, Seed: 9, Workers: 3}},
		{"faulted", Options{Platform: PlatformX86(), Iterations: 120, Seed: 9, Workers: 3,
			ShardRetries: 3,
			Fault:        FaultConfig{Seed: 3, BitFlip: 0.2, Truncate: 0.1, ShardPanic: 0.4}}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			p := testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5})
			bare, err := RunProgram(p, sc.opts)
			if err != nil {
				t.Fatal(err)
			}
			bareUniques, err := CollectSignatures(p, sc.opts)
			if err != nil {
				t.Fatal(err)
			}

			var traceBuf bytes.Buffer
			trace := NewTraceJSON(&traceBuf)
			opts := sc.opts
			opts.Observer = MultiObserver(NewMetrics(), NewProgress(io.Discard, time.Nanosecond), trace)
			observed, err := RunProgram(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			obsUniques, err := CollectSignatures(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := trace.Close(); err != nil {
				t.Fatal(err)
			}

			if bare.Iterations != observed.Iterations ||
				bare.UniqueSignatures != observed.UniqueSignatures ||
				bare.TotalCycles != observed.TotalCycles ||
				bare.Squashes != observed.Squashes ||
				len(bare.Violations) != len(observed.Violations) ||
				len(bare.Quarantined) != len(observed.Quarantined) ||
				len(bare.AssertionFailures) != len(observed.AssertionFailures) {
				t.Errorf("observed report diverges: bare %+v observed %+v", bare, observed)
			}
			if len(bareUniques) != len(obsUniques) {
				t.Fatalf("observed uniques %d, bare %d", len(obsUniques), len(bareUniques))
			}
			for i, u := range bareUniques {
				if !obsUniques[i].Sig.Equal(u.Sig) || obsUniques[i].Count != u.Count {
					t.Fatalf("unique %d diverges under observation", i)
				}
			}
			// The trace must be valid, Perfetto-loadable JSON.
			var events []map[string]any
			if err := json.Unmarshal(traceBuf.Bytes(), &events); err != nil {
				t.Fatalf("trace output is not valid JSON: %v", err)
			}
			if len(events) == 0 {
				t.Error("trace captured no events")
			}
		})
	}
}

// TestCheckSignaturesObserved: the offline checking path must honor the
// campaign options — the observer sees decode and check events, and the
// verdict matches the integrated pipeline regardless of checker.
func TestCheckSignaturesObserved(t *testing.T) {
	p := testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 16, Seed: 5})
	opts := Options{Platform: PlatformX86(), Iterations: 120, Seed: 9}
	uniques, err := CollectSignatures(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, checker := range []Checker{CheckerCollective, CheckerConventional, CheckerIncremental, CheckerVectorClock} {
		m := NewMetrics()
		o := opts
		o.Checker = checker
		o.Observer = m
		report, err := CheckSignatures(p, uniques, o)
		if err != nil {
			t.Fatalf("checker %v: %v", checker, err)
		}
		if len(report.Violations) != 0 {
			t.Errorf("checker %v: clean set flagged", checker)
		}
		snap := m.Snapshot()
		if snap.Totals.Campaigns != 1 || snap.Totals.Decoded != int64(len(uniques)) ||
			snap.Totals.Graphs != int64(len(uniques)) {
			t.Errorf("checker %v: totals %+v do not cover the offline check", checker, snap.Totals)
		}
	}
}

// TestCheckpointEventsObserved: checkpoint saves and a resume must surface
// through the observer with real payload sizes.
func TestCheckpointEventsObserved(t *testing.T) {
	p := testgen.MustGenerate(TestConfig{Threads: 2, OpsPerThread: 20, Words: 4, Seed: 1})
	path := t.TempDir() + "/run.ckpt"
	m := NewMetrics()
	opts := Options{Platform: PlatformX86(), Iterations: 100, Seed: 7,
		CheckpointPath: path, CheckpointEvery: 25, Observer: m}
	if _, err := RunProgram(p, opts); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Totals.CheckpointSaves != 4 {
		t.Errorf("checkpoint saves = %d, want 4", snap.Totals.CheckpointSaves)
	}
	if snap.Totals.CheckpointBytes == 0 {
		t.Error("checkpoint bytes not recorded")
	}
	if len(snap.Totals.Curve) == 0 {
		t.Error("growth curve not sampled at merge boundaries")
	}

	m2 := NewMetrics()
	opts.Iterations = 150
	opts.Resume = true
	opts.Observer = m2
	if _, err := RunProgram(p, opts); err != nil {
		t.Fatal(err)
	}
	snap2 := m2.Snapshot()
	if snap2.Totals.CheckpointResumes != 1 || snap2.Totals.ResumedIterations != 100 {
		t.Errorf("resume events: resumes %d iterations %d, want 1 and 100",
			snap2.Totals.CheckpointResumes, snap2.Totals.ResumedIterations)
	}
}
