package mtracecheck

import (
	"testing"

	"mtracecheck/internal/instrument"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// Allocation budgets for the hot loop (DESIGN.md "Performance"): the
// execute → encode → dedup path must not allocate proportionally to
// iterations. Since the typed-event engine replaced per-event closures
// (every deferred action is an inline eventq.Event dispatched by kind, and
// the memory system's messages, buffers, MSHRs, and replays are pooled),
// every stage of the path is allocation-free at steady state.
const (
	runAllocBudget = 0 // the typed-event engine schedules no closures
	encAllocBudget = 0
	addAllocBudget = 0
)

func allocProbeSetup(t *testing.T) (*sim.Runner, *instrument.Meta) {
	t.Helper()
	p := testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5})
	plat := sim.PlatformX86()
	r, err := sim.NewRunner(plat, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r, meta
}

func TestRunnerRunAllocBudget(t *testing.T) {
	r, _ := allocProbeSetup(t)
	for i := 0; i < 3; i++ { // warm the reusable workspaces
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > runAllocBudget {
		t.Errorf("Runner.Run steady state: %.0f allocs/run, budget %d", allocs, runAllocBudget)
	}
}

// TestRunSeededAllocBudget pins the streaming pipeline's entry point to the
// same zero-allocation steady state: a warm Runner executing an explicit
// per-iteration seed must not allocate at all.
func TestRunSeededAllocBudget(t *testing.T) {
	r, _ := allocProbeSetup(t)
	seeds := sim.SeedTable(7, 24)
	for _, s := range seeds[:4] { // warm the reusable workspaces
		if _, err := r.RunSeeded(s); err != nil {
			t.Fatal(err)
		}
	}
	i := 4
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.RunSeeded(seeds[i%len(seeds)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > runAllocBudget {
		t.Errorf("Runner.RunSeeded steady state: %.0f allocs/run, budget %d", allocs, runAllocBudget)
	}
}

func TestEncodeExecutionIntoAllocBudget(t *testing.T) {
	r, meta := allocProbeSetup(t)
	ex, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := meta.EncodeExecutionInto(nil, ex.LoadValues)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var e error
		buf, e = meta.EncodeExecutionInto(buf[:0], ex.LoadValues)
		if e != nil {
			t.Fatal(e)
		}
	})
	if allocs > encAllocBudget {
		t.Errorf("EncodeExecutionInto steady state: %.0f allocs/run, budget %d", allocs, encAllocBudget)
	}
}

func TestSetAddAllocBudget(t *testing.T) {
	r, meta := allocProbeSetup(t)
	ex, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := meta.EncodeExecutionInto(nil, ex.LoadValues)
	if err != nil {
		t.Fatal(err)
	}
	set := sig.NewSet()
	set.AddWords(buf) // first observation pays for the retained entry
	allocs := testing.AllocsPerRun(100, func() { set.AddWords(buf) })
	if allocs > addAllocBudget {
		t.Errorf("Set.AddWords hit path: %.0f allocs/run, budget %d", allocs, addAllocBudget)
	}
	if set.Len() != 1 || set.Total() != 102 {
		t.Errorf("Set after probe: Len %d Total %d, want 1 and 102", set.Len(), set.Total())
	}
}

// TestReportBitIdenticalAcrossWorkers: the dense-buffer pipeline must keep
// the PR-1 invariant — every worker count produces the same report, down to
// the individual signature bits.
func TestReportBitIdenticalAcrossWorkers(t *testing.T) {
	p := testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5})
	type result struct {
		report  *Report
		uniques []sig.Unique
	}
	results := map[int]result{}
	for _, workers := range []int{1, 3, 4} {
		opts := Options{Platform: PlatformX86(), Iterations: 150, Seed: 11, Workers: workers}
		report, err := RunProgram(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		uniques, err := CollectSignatures(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		results[workers] = result{report, uniques}
	}
	base := results[1]
	for _, workers := range []int{3, 4} {
		got := results[workers]
		if got.report.Iterations != base.report.Iterations ||
			got.report.UniqueSignatures != base.report.UniqueSignatures ||
			got.report.TotalCycles != base.report.TotalCycles ||
			got.report.Squashes != base.report.Squashes {
			t.Errorf("workers %d: report stats diverge from workers 1", workers)
		}
		if len(got.report.Violations) != len(base.report.Violations) {
			t.Errorf("workers %d: %d violations, workers 1 has %d",
				workers, len(got.report.Violations), len(base.report.Violations))
		}
		if len(got.uniques) != len(base.uniques) {
			t.Fatalf("workers %d: %d uniques, workers 1 has %d",
				workers, len(got.uniques), len(base.uniques))
		}
		for i, u := range base.uniques {
			g := got.uniques[i]
			if !g.Sig.Equal(u.Sig) || g.Count != u.Count {
				t.Fatalf("workers %d: unique %d = (%v, %d), workers 1 (%v, %d)",
					workers, i, g.Sig, g.Count, u.Sig, u.Count)
			}
		}
	}
}
