// Benchmarks regenerating the computational kernels behind every table and
// figure of the paper's evaluation. Each benchmark names the experiment it
// backs; cmd/mtc-experiments produces the full tables, these measure the
// hot paths (checking, signature encode/decode, simulation, clustering).
package mtracecheck

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mtracecheck/internal/check"
	"mtracecheck/internal/cluster"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/isa"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
	"mtracecheck/internal/vm"
)

// fixture bundles a program with collected unique signatures and checkable
// items, shared by the checking benchmarks.
type fixture struct {
	prog    *Program
	meta    *instrument.Meta
	builder *graph.Builder
	items   []check.Item
	sigs    []sig.Signature
	vals    []map[int]uint32
}

// buildFixture collects n SC-reference executions of the given config.
func buildFixture(b *testing.B, tc TestConfig, n int) *fixture {
	b.Helper()
	p, err := testgen.Generate(tc)
	if err != nil {
		b.Fatal(err)
	}
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		b.Fatal(err)
	}
	builder := graph.NewBuilder(p, sim.PlatformX86().Model, graph.Options{Forwarding: true})
	rng := rand.New(rand.NewSource(1))
	type raw struct {
		s     sig.Signature
		edges []graph.Edge
	}
	byKey := map[string]raw{}
	f := &fixture{prog: p, meta: meta, builder: builder}
	for i := 0; i < n; i++ {
		rf, ws := testgen.SCReference(p, rng)
		vals := testgen.LoadValuesOf(p, rf)
		f.vals = append(f.vals, vals)
		s, err := meta.EncodeExecution(vals)
		if err != nil {
			b.Fatal(err)
		}
		f.sigs = append(f.sigs, s)
		edges, err := builder.DynamicEdges(rf, ws)
		if err != nil {
			b.Fatal(err)
		}
		byKey[s.Key()] = raw{s: s, edges: edges}
	}
	uniq := make([]sig.Signature, 0, len(byKey))
	for _, r := range byKey {
		uniq = append(uniq, r.s)
	}
	sig.Sort(uniq)
	for _, s := range uniq {
		f.items = append(f.items, check.Item{Sig: s, Edges: byKey[s.Key()].edges})
	}
	return f
}

var benchCfg = TestConfig{Threads: 4, OpsPerThread: 50, Words: 32, Seed: 1}

// BenchmarkFig9ConventionalCheck: the per-graph full topological sorting
// baseline of Fig. 9.
func BenchmarkFig9ConventionalCheck(b *testing.B) {
	f := buildFixture(b, benchCfg, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := check.Conventional(f.builder, f.items)
		if len(res.Violations) != 0 {
			b.Fatal("unexpected violations")
		}
	}
	b.ReportMetric(float64(len(f.items)), "graphs/op")
}

// BenchmarkFig9CollectiveCheck: MTraceCheck's collective re-sorting checker
// on the same graphs — the headline 81% computation reduction.
func BenchmarkFig9CollectiveCheck(b *testing.B) {
	f := buildFixture(b, benchCfg, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := check.Collective(f.builder, f.items)
		if err != nil || len(res.Violations) != 0 {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(f.items)), "graphs/op")
}

// BenchmarkFig14WindowStats exercises the checker while collecting the
// Fig. 14 breakdown counters.
func BenchmarkFig14WindowStats(b *testing.B) {
	f := buildFixture(b, benchCfg, 1000)
	b.ResetTimer()
	var affected int64
	for i := 0; i < b.N; i++ {
		res, err := check.Collective(f.builder, f.items)
		if err != nil {
			b.Fatal(err)
		}
		for _, gs := range res.PerGraph {
			affected += int64(gs.Affected)
		}
	}
	_ = affected
}

// BenchmarkFig8UniqueInterleavings: one simulated platform iteration plus
// signature collection — the production rate of Fig. 8's data.
func BenchmarkFig8UniqueInterleavings(b *testing.B) {
	p, err := testgen.Generate(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	plat := sim.PlatformX86()
	meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := sim.NewRunner(plat, p, 1)
	if err != nil {
		b.Fatal(err)
	}
	set := sig.NewSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := runner.Run()
		if err != nil {
			b.Fatal(err)
		}
		s, err := meta.EncodeValues(ex.LoadValues)
		if err != nil {
			b.Fatal(err)
		}
		set.Add(s)
	}
	b.ReportMetric(float64(set.Len())/float64(b.N), "unique/iter")
}

// BenchmarkFig10SignatureComputation: interpreting the instrumented code
// (signature branch/add chains) for one execution — the overhead component
// of Fig. 10.
func BenchmarkFig10SignatureComputation(b *testing.B) {
	f := buildFixture(b, benchCfg, 50)
	gp, err := instrument.Generate(f.meta, isa.EncodingRISC)
	if err != nil {
		b.Fatal(err)
	}
	threads := make([]*vm.Thread, len(gp.Instrumented))
	for ti := range threads {
		threads[ti] = vm.NewThread(gp.Instrumented[ti], vm.DefaultCostModel())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := f.vals[i%len(f.vals)]
		lookup := func(id int) (uint32, error) { return vals[id], nil }
		for _, th := range threads {
			if _, err := th.Run(lookup, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig10SignatureSorting: host-side sorting of the collected
// signatures (the third component of Fig. 10).
func BenchmarkFig10SignatureSorting(b *testing.B) {
	f := buildFixture(b, benchCfg, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sigs := make([]sig.Signature, len(f.sigs))
		copy(sigs, f.sigs)
		b.StartTimer()
		sig.Sort(sigs)
	}
}

// BenchmarkFig11InstrumentationAnalysis: the static analysis producing the
// candidate sets, weights, and signature layout behind Fig. 11's
// intrusiveness numbers.
func BenchmarkFig11InstrumentationAnalysis(b *testing.B) {
	p, err := testgen.Generate(TestConfig{Threads: 7, OpsPerThread: 200, Words: 64, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := instrument.Analyze(p, 32, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12CodeGeneration: emitting the instrumented and baseline code
// variants measured in Fig. 12.
func BenchmarkFig12CodeGeneration(b *testing.B) {
	p, err := testgen.Generate(TestConfig{Threads: 7, OpsPerThread: 200, Words: 64, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	meta, err := instrument.Analyze(p, 32, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp, err := instrument.Generate(meta, isa.EncodingRISC)
		if err != nil {
			b.Fatal(err)
		}
		if o, n, _ := gp.CodeSizes(); n <= o {
			b.Fatal("instrumented not larger")
		}
	}
}

// BenchmarkAlg1SignatureDecode: the paper's Algorithm 1 — reconstructing
// reads-from relations from a signature.
func BenchmarkAlg1SignatureDecode(b *testing.B) {
	f := buildFixture(b, benchCfg, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.meta.Decode(f.sigs[i%len(f.sigs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6KMedoids: the k-medoids limit study kernel.
func BenchmarkFig6KMedoids(b *testing.B) {
	p, err := testgen.Generate(TestConfig{Threads: 2, OpsPerThread: 50, Words: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	seen := map[string]cluster.Point{}
	for i := 0; i < 400; i++ {
		rf, _ := testgen.SCReference(p, rng)
		pt := cluster.Point{}
		for k, v := range rf {
			pt[k] = v
		}
		seen[sigKeyOf(rf)] = pt
	}
	pts := make([]cluster.Point, 0, len(seen))
	for _, pt := range seen {
		pts = append(pts, pt)
	}
	dist := cluster.DistanceMatrix(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMedoids(dist, 10, rng, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func sigKeyOf(rf map[int]int) string {
	// Stable fingerprint for deduplicating reference executions.
	buf := make([]byte, 0, len(rf)*8)
	max := 0
	for k := range rf {
		if k > max {
			max = k
		}
	}
	for k := 0; k <= max; k++ {
		if v, ok := rf[k]; ok {
			buf = append(buf, byte(k), byte(k>>8), byte(v), byte(v>>8))
		}
	}
	return string(buf)
}

// BenchmarkTable3BugDetection: one buggy-platform iteration with signature
// collection — the detection loop of the §7 case studies.
func BenchmarkTable3BugDetection(b *testing.B) {
	tc := TestConfig{Threads: 4, OpsPerThread: 50, Words: 8, WordsPerLine: 4, Seed: 1}
	p, err := testgen.Generate(tc)
	if err != nil {
		b.Fatal(err)
	}
	plat := sim.PlatformGem5(mem.Bugs{StaleSMInv: true}, sim.Bugs{})
	meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := sim.NewRunner(plat, p, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := runner.Run()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := meta.EncodeValues(ex.LoadValues); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunProgramWorkers1 / Workers4: serial vs sharded end-to-end
// pipeline (execute / decode / check) on the paper-scale
// 4-thread/50-ops/2048-iteration config. Results are identical for every
// worker count (shards skip ahead within one seed stream), so the only
// difference is wall clock; on a multi-core host Workers=4 approaches a 4×
// speedup of the embarrassingly parallel execution stage, while on a
// single-core host the two measure the same work plus negligible shard
// bookkeeping.
func BenchmarkRunProgramWorkers1(b *testing.B) { benchRunProgramWorkers(b, 1) }

func BenchmarkRunProgramWorkers4(b *testing.B) { benchRunProgramWorkers(b, 4) }

func benchRunProgramWorkers(b *testing.B, workers int) {
	b.Helper()
	p, err := testgen.Generate(TestConfig{Threads: 4, OpsPerThread: 50, Words: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := RunProgram(p, Options{
			Platform:   sim.PlatformX86(),
			Iterations: 2048,
			Seed:       1,
			Workers:    workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if report.Failed() {
			b.Fatal("clean platform reported violations")
		}
		b.ReportMetric(float64(report.UniqueSignatures), "uniques/op")
	}
}

// BenchmarkCampaignColdCorpus / WarmCorpus: the signature-corpus pair.
// Cold runs the full end-to-end campaign against an empty corpus (all
// uniques decoded, checked, and appended); warm reruns the identical
// campaign against the corpus the setup grew, so every unique skips
// decode+check as a hit. The gap between the two is the cross-campaign
// memoization payoff on repeat interleavings.
func BenchmarkCampaignColdCorpus(b *testing.B) { benchCampaignCorpus(b, false) }

func BenchmarkCampaignWarmCorpus(b *testing.B) { benchCampaignCorpus(b, true) }

func benchCampaignCorpus(b *testing.B, warm bool) {
	b.Helper()
	p, err := testgen.Generate(TestConfig{Threads: 4, OpsPerThread: 50, Words: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "corpus.mtc")
	opts := Options{Platform: sim.PlatformX86(), Iterations: 2048, Seed: 1}
	if warm {
		// Grow the corpus once, outside the measured region.
		store, err := OpenCorpus(path)
		if err != nil {
			b.Fatal(err)
		}
		o := opts
		o.Corpus = store
		if _, err := RunProgram(p, o); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if !warm {
			os.Remove(path) // every cold iteration starts from an empty corpus
		}
		store, err := OpenCorpus(path)
		if err != nil {
			b.Fatal(err)
		}
		o := opts
		o.Corpus = store
		b.StartTimer()
		report, err := RunProgram(p, o)
		if err != nil {
			b.Fatal(err)
		}
		if report.Failed() {
			b.Fatal("clean platform reported violations")
		}
		if warm && report.CorpusHits != report.UniqueSignatures {
			b.Fatalf("warm run only hit %d of %d uniques", report.CorpusHits, report.UniqueSignatures)
		}
		b.ReportMetric(float64(report.CorpusHits), "hits/op")
	}
}

// BenchmarkSimIterationARM / X86: raw platform iteration throughput — the
// "tests execution" stage of Fig. 1.
func BenchmarkSimIterationARM(b *testing.B) { benchSim(b, sim.PlatformARM()) }

// BenchmarkSimIterationX86 measures the TSO platform.
func BenchmarkSimIterationX86(b *testing.B) { benchSim(b, sim.PlatformX86()) }

func benchSim(b *testing.B, plat sim.Platform) {
	b.Helper()
	p, err := testgen.Generate(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := sim.NewRunner(plat, p, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// simFixture collects real simulated executions (unlike buildFixture's
// uniform-random SC reference, which is the adversarial maximally-diverse
// case): real platform timing clusters executions, which is the regime the
// collective checker exploits.
func simFixture(b *testing.B, tc TestConfig, plat sim.Platform, iters int) *fixture {
	b.Helper()
	p, err := testgen.Generate(tc)
	if err != nil {
		b.Fatal(err)
	}
	meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
	if err != nil {
		b.Fatal(err)
	}
	builder := graph.NewBuilder(p, plat.Model, graph.Options{
		Forwarding: true, WS: graph.WSStatic,
	})
	runner, err := sim.NewRunner(plat, p, 3)
	if err != nil {
		b.Fatal(err)
	}
	type raw struct {
		s     sig.Signature
		edges []graph.Edge
	}
	byKey := map[string]raw{}
	f := &fixture{prog: p, meta: meta, builder: builder}
	for i := 0; i < iters; i++ {
		ex, err := runner.Run()
		if err != nil {
			b.Fatal(err)
		}
		s, err := meta.EncodeValues(ex.LoadValues)
		if err != nil {
			b.Fatal(err)
		}
		if _, seen := byKey[s.Key()]; seen {
			continue
		}
		cands, err := meta.Decode(s)
		if err != nil {
			b.Fatal(err)
		}
		rf := make(graph.RF, len(cands))
		for id, c := range cands {
			rf[id] = c.Store
		}
		edges, err := builder.DynamicEdges(rf, nil)
		if err != nil {
			b.Fatal(err)
		}
		byKey[s.Key()] = raw{s: s, edges: edges}
	}
	uniq := make([]sig.Signature, 0, len(byKey))
	for _, r := range byKey {
		uniq = append(uniq, r.s)
	}
	sig.Sort(uniq)
	for _, s := range uniq {
		f.items = append(f.items, check.Item{Sig: s, Edges: byKey[s.Key()].edges})
	}
	return f
}

// BenchmarkFig9ConventionalCheckSimData / CollectiveCheckSimData: the Fig. 9
// comparison on realistic (platform-clustered) execution sets, where the
// similarity assumption holds — the representative regime.
func BenchmarkFig9ConventionalCheckSimData(b *testing.B) {
	f := simFixture(b, TestConfig{Threads: 4, OpsPerThread: 50, Words: 64, Seed: 1},
		sim.PlatformX86(), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		check.Conventional(f.builder, f.items)
	}
	b.ReportMetric(float64(len(f.items)), "graphs/op")
}

func BenchmarkFig9CollectiveCheckSimData(b *testing.B) {
	f := simFixture(b, TestConfig{Threads: 4, OpsPerThread: 50, Words: 64, Seed: 1},
		sim.PlatformX86(), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := check.Collective(f.builder, f.items); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(f.items)), "graphs/op")
}

// BenchmarkAblationObservedWSCheck: collective checking with observed-ws
// graphs (larger diffs than the static default).
func BenchmarkAblationObservedWSCheck(b *testing.B) {
	p, err := testgen.Generate(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		b.Fatal(err)
	}
	builder := graph.NewBuilder(p, sim.PlatformX86().Model, graph.Options{
		Forwarding: true, WS: graph.WSObserved,
	})
	rng := rand.New(rand.NewSource(1))
	type raw struct {
		s     sig.Signature
		edges []graph.Edge
	}
	byKey := map[string]raw{}
	for i := 0; i < 1000; i++ {
		rf, ws := testgen.SCReference(p, rng)
		s, err := meta.EncodeExecution(testgen.LoadValuesOf(p, rf))
		if err != nil {
			b.Fatal(err)
		}
		edges, err := builder.DynamicEdges(rf, ws)
		if err != nil {
			b.Fatal(err)
		}
		byKey[s.Key()] = raw{s: s, edges: edges}
	}
	uniq := make([]sig.Signature, 0, len(byKey))
	for _, r := range byKey {
		uniq = append(uniq, r.s)
	}
	sig.Sort(uniq)
	items := make([]check.Item, 0, len(uniq))
	for _, s := range uniq {
		items = append(items, check.Item{Sig: s, Edges: byKey[s.Key()].edges})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := check.Collective(builder, items); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrunedAnalysis: §8 static pruning cost/benefit at
// analysis time.
func BenchmarkAblationPrunedAnalysis(b *testing.B) {
	p, err := testgen.Generate(TestConfig{Threads: 7, OpsPerThread: 200, Words: 64, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	pruner := instrument.SkewPruner(p, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := instrument.Analyze(p, 32, pruner); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPKIncrementalCheck: the Pearce–Kelly extension on the adversarial
// high-diversity fixture.
func BenchmarkPKIncrementalCheck(b *testing.B) {
	f := buildFixture(b, benchCfg, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := check.Incremental(f.builder, f.items); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(f.items)), "graphs/op")
}

// BenchmarkPKIncrementalCheckSimData: the same on realistic platform data.
func BenchmarkPKIncrementalCheckSimData(b *testing.B) {
	f := simFixture(b, TestConfig{Threads: 4, OpsPerThread: 50, Words: 64, Seed: 1},
		sim.PlatformX86(), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := check.Incremental(f.builder, f.items); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(f.items)), "graphs/op")
}

// BenchmarkVectorClockCheck: the TSOtool-style vector-clock closure on the
// adversarial high-diversity fixture — same graphs as the Fig. 9 sorting
// benchmarks, so the race against collective/conventional falls out of one
// bench run.
func BenchmarkVectorClockCheck(b *testing.B) {
	f := buildFixture(b, benchCfg, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := check.VectorClock(f.builder, f.items)
		if err != nil || len(res.Violations) != 0 {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(f.items)), "graphs/op")
}

// BenchmarkVectorClockCheckSimData: the same on realistic platform data.
func BenchmarkVectorClockCheckSimData(b *testing.B) {
	f := simFixture(b, TestConfig{Threads: 4, OpsPerThread: 50, Words: 64, Seed: 1},
		sim.PlatformX86(), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := check.VectorClock(f.builder, f.items); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(f.items)), "graphs/op")
}
