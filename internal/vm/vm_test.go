package vm

import (
	"errors"
	"math/rand"
	"testing"

	"mtracecheck/internal/instrument"
	"mtracecheck/internal/isa"
	"mtracecheck/internal/testgen"
)

// valueFn adapts a load-value map.
func valueFn(t *testing.T, vals map[int]uint32) func(int) (uint32, error) {
	t.Helper()
	return func(id int) (uint32, error) {
		v, ok := vals[id]
		if !ok {
			t.Fatalf("no value for load %d", id)
		}
		return v, nil
	}
}

func TestBasicArithmeticAndHalt(t *testing.T) {
	a := isa.NewAsm()
	a.MOVI(1, 5)
	a.ADDI(1, 7)
	a.STR(0x100, 1)
	a.HALT()
	th := NewThread(a.MustAssemble(), DefaultCostModel())
	res, err := th.Run(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Private[0x100] != 12 {
		t.Errorf("private[0x100] = %d, want 12", res.Private[0x100])
	}
	if res.Instructions != 4 {
		t.Errorf("instructions = %d, want 4", res.Instructions)
	}
	if res.PrivateStores != 1 {
		t.Errorf("private stores = %d", res.PrivateStores)
	}
}

func TestBranchingAndPredictor(t *testing.T) {
	// Loop-free code taking the same branch repeatedly across Runs: the
	// predictor should converge and stop mispredicting.
	a := isa.NewAsm()
	a.MOVI(0, 1)
	a.CMPI(0, 1)
	a.BEQ("yes")
	a.MOVI(2, 99)
	a.Label("yes")
	a.HALT()
	th := NewThread(a.MustAssemble(), DefaultCostModel())
	var first, last *Result
	for i := 0; i < 10; i++ {
		res, err := th.Run(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
		}
		last = res
	}
	if last.Mispredicts != 0 {
		t.Errorf("warmed predictor still mispredicting: %d", last.Mispredicts)
	}
	if first.Mispredicts == 0 {
		t.Error("cold predictor never mispredicted (suspicious)")
	}
}

func TestFailTrap(t *testing.T) {
	a := isa.NewAsm()
	a.FAIL()
	th := NewThread(a.MustAssemble(), DefaultCostModel())
	_, err := th.Run(nil, 0)
	if !errors.Is(err, ErrAssertFailed) {
		t.Errorf("err = %v, want ErrAssertFailed", err)
	}
}

func TestRunawayGuard(t *testing.T) {
	a := isa.NewAsm()
	a.Label("top")
	a.B("top")
	th := NewThread(a.MustAssemble(), DefaultCostModel())
	if _, err := th.Run(nil, 100); err == nil {
		t.Error("infinite loop not caught")
	}
}

// TestInstrumentedMatchesEncode is the central cross-check: interpreting
// the generated instrumented code must produce exactly the signature words
// that instrument.Meta.EncodeExecution computes analytically.
func TestInstrumentedMatchesEncode(t *testing.T) {
	for _, width := range []int{32, 64} {
		for seed := int64(1); seed <= 3; seed++ {
			p := testgen.MustGenerate(testgen.Config{
				Threads: 3, OpsPerThread: 50, Words: 4, Seed: seed,
			})
			meta, err := instrument.Analyze(p, width, nil)
			if err != nil {
				t.Fatal(err)
			}
			gp, err := instrument.Generate(meta, isa.EncodingRISC)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 10; trial++ {
				rf, _ := testgen.SCReference(p, rng)
				vals := testgen.LoadValuesOf(p, rf)
				want, err := meta.EncodeExecution(vals)
				if err != nil {
					t.Fatal(err)
				}
				wordAt := 0
				for ti := range p.Threads {
					th := NewThread(gp.Instrumented[ti], DefaultCostModel())
					res, err := th.Run(valueFn(t, vals), 0)
					if err != nil {
						t.Fatalf("thread %d: %v", ti, err)
					}
					words := meta.Threads[ti].Words
					for w := 0; w < words; w++ {
						got := res.Private[instrument.SigSlotAddr(ti, w)]
						// 32-bit platforms store 32-bit words; EncodeExecution
						// words always fit the register width by construction.
						if got != want.Word(wordAt+w) {
							t.Fatalf("width %d thread %d word %d: vm %d, encode %d",
								width, ti, w, got, want.Word(wordAt+w))
						}
					}
					wordAt += words
				}
			}
		}
	}
}

// TestInstrumentedAssertCatchesBadValue: feeding a value outside the
// candidate set must reach the FAIL trap.
func TestInstrumentedAssertCatchesBadValue(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 20, Words: 2, Seed: 4})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := instrument.Generate(meta, isa.EncodingCISC)
	if err != nil {
		t.Fatal(err)
	}
	th := NewThread(gp.Instrumented[0], DefaultCostModel())
	_, err = th.Run(func(id int) (uint32, error) { return 0xDEAD, nil }, 0)
	if !errors.Is(err, ErrAssertFailed) {
		t.Errorf("err = %v, want ErrAssertFailed", err)
	}
}

// TestIntrusivenessAccounting: the flush variant performs one private store
// per load; the instrumented variant performs one per signature word.
func TestIntrusivenessAccounting(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 50, Words: 4, Seed: 5})
	meta, err := instrument.Analyze(p, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := instrument.Generate(meta, isa.EncodingRISC)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	rf, _ := testgen.SCReference(p, rng)
	vals := testgen.LoadValuesOf(p, rf)
	for ti := range p.Threads {
		loads := int64(len(p.Threads[ti].Loads()))
		fl := NewThread(gp.Flush[ti], DefaultCostModel())
		fres, err := fl.Run(valueFn(t, vals), 0)
		if err != nil {
			t.Fatal(err)
		}
		if fres.PrivateStores != loads {
			t.Errorf("thread %d flush: %d private stores, want %d", ti, fres.PrivateStores, loads)
		}
		in := NewThread(gp.Instrumented[ti], DefaultCostModel())
		ires, err := in.Run(valueFn(t, vals), 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(meta.Threads[ti].Words); ires.PrivateStores != want {
			t.Errorf("thread %d instrumented: %d private stores, want %d",
				ti, ires.PrivateStores, want)
		}
		if loads > 2 && ires.PrivateStores >= fres.PrivateStores {
			t.Errorf("thread %d: signature stores (%d) not below flush stores (%d)",
				ti, ires.PrivateStores, fres.PrivateStores)
		}
	}
}

// TestOriginalCheaperThanInstrumented: the cost model must price the
// instrumented run above the original but in the same ballpark once the
// predictor warms (paper: minimal overhead with few unique interleavings).
func TestOriginalCheaperThanInstrumented(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 100, Words: 8, Seed: 7})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := instrument.Generate(meta, isa.EncodingRISC)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	rf, _ := testgen.SCReference(p, rng)
	vals := testgen.LoadValuesOf(p, rf)

	orig := NewThread(gp.Original[0], DefaultCostModel())
	inst := NewThread(gp.Instrumented[0], DefaultCostModel())
	var oC, iC int64
	for i := 0; i < 20; i++ { // same interleaving every iteration: warm predictor
		or, err := orig.Run(valueFn(t, vals), 0)
		if err != nil {
			t.Fatal(err)
		}
		ir, err := inst.Run(valueFn(t, vals), 0)
		if err != nil {
			t.Fatal(err)
		}
		oC, iC = or.Cycles, ir.Cycles
	}
	if iC <= oC {
		t.Errorf("instrumented (%d cycles) not above original (%d)", iC, oC)
	}
	if float64(iC) > 3.5*float64(oC) {
		t.Errorf("warmed instrumented overhead too high: %d vs %d cycles", iC, oC)
	}
}

func TestAccumulate(t *testing.T) {
	a := &Result{Instructions: 1, Cycles: 2, Private: map[uint64]uint64{1: 1}}
	b := &Result{Instructions: 2, Cycles: 3, Private: map[uint64]uint64{2: 2}}
	a.Accumulate(b)
	if a.Instructions != 3 || a.Cycles != 5 || len(a.Private) != 2 {
		t.Errorf("accumulate wrong: %+v", a)
	}
}
