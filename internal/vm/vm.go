// Package vm interprets the pseudo-ISA code emitted by package instrument,
// replaying one thread's instruction stream against the load values an
// execution observed. It exists to measure what the paper measures about
// the instrumentation itself:
//
//   - Fig. 10: execution-time overhead of signature computation, via an
//     instruction cost model with a branch predictor (the paper attributes
//     the overhead almost entirely to branch mispredictions);
//   - Fig. 11: intrusiveness, by counting memory accesses unrelated to the
//     test (signature spills and register-flush stores to the thread's
//     private area);
//   - functional cross-checking: the signature words the interpreted code
//     stores must equal instrument.Meta.EncodeExecution's result.
//
// Memory semantics: test loads return the value the execution observed for
// that operation (the coherent-memory interleaving was already resolved by
// package sim); test stores and fences are costed but need no effect here;
// STR writes to the private region are recorded.
package vm

import (
	"errors"
	"fmt"

	"mtracecheck/internal/isa"
)

// ErrAssertFailed reports that the instrumented code's assert chain caught
// a load value outside its candidate set (isa.FAIL reached).
var ErrAssertFailed = errors.New("vm: instrumentation assertion failed")

// CostModel assigns cycle costs to instruction classes.
type CostModel struct {
	Base        int // every instruction
	Mem         int // extra for LD/ST/STR
	Fence       int // extra for FENCE
	TakenBranch int // extra for a taken branch
	Mispredict  int // extra on branch misprediction
}

// DefaultCostModel loosely models a short pipeline: cheap ALU ops, costlier
// memory operations, and a significant misprediction penalty.
func DefaultCostModel() CostModel {
	return CostModel{Base: 1, Mem: 3, Fence: 10, TakenBranch: 1, Mispredict: 14}
}

// Result summarizes one thread-run.
type Result struct {
	Instructions int64
	Branches     int64
	Mispredicts  int64
	TestLoads    int64
	TestStores   int64
	Fences       int64
	// PrivateStores counts STR instructions — memory accesses unrelated to
	// the test execution (signature spills or register flushes).
	PrivateStores int64
	Cycles        int64
	// Private holds the final contents of the thread-private region
	// written by STR, keyed by address.
	Private map[uint64]uint64
}

// predictor is a classic per-PC 2-bit saturating counter table.
type predictor struct {
	counters map[int]uint8
}

func newPredictor() *predictor { return &predictor{counters: make(map[int]uint8)} }

// predict returns the predicted direction for the branch at pc and updates
// the counter with the actual outcome, reporting whether the prediction was
// wrong.
func (p *predictor) mispredicted(pc int, taken bool) bool {
	c := p.counters[pc]
	predictTaken := c >= 2
	if taken && c < 3 {
		c++
	} else if !taken && c > 0 {
		c--
	}
	p.counters[pc] = c
	return predictTaken != taken
}

// Thread interprets one thread's code. loadValue supplies the observed
// value for each test load (by test operation ID). The predictor state
// persists across Run calls, modelling a warmed branch predictor across
// iterations of the test loop — the effect behind the paper's observation
// that low-diversity tests pay almost no instrumentation overhead.
type Thread struct {
	code []isa.Instr
	cm   CostModel
	pred *predictor
}

// NewThread prepares an interpreter for the given code.
func NewThread(code []isa.Instr, cm CostModel) *Thread {
	return &Thread{code: code, cm: cm, pred: newPredictor()}
}

// Run interprets the code once. maxSteps guards against runaway loops
// (0 means a generous default).
func (t *Thread) Run(loadValue func(testOpID int) (uint32, error), maxSteps int) (*Result, error) {
	if maxSteps <= 0 {
		maxSteps = 100 * len(t.code)
		if maxSteps < 10000 {
			maxSteps = 10000
		}
	}
	res := &Result{Private: make(map[uint64]uint64)}
	var regs [isa.NumRegs]uint64
	flag := false
	pc := 0
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return res, fmt.Errorf("vm: exceeded %d steps (runaway code?)", maxSteps)
		}
		if pc < 0 || pc >= len(t.code) {
			return res, fmt.Errorf("vm: pc %d out of code bounds", pc)
		}
		ins := t.code[pc]
		res.Instructions++
		res.Cycles += int64(t.cm.Base)
		switch ins.Op {
		case isa.LD:
			res.Cycles += int64(t.cm.Mem)
			res.TestLoads++
			v, err := loadValue(ins.TestOpID)
			if err != nil {
				return res, err
			}
			regs[ins.Rd] = uint64(v)
		case isa.ST:
			res.Cycles += int64(t.cm.Mem)
			res.TestStores++
		case isa.STR:
			res.Cycles += int64(t.cm.Mem)
			res.PrivateStores++
			res.Private[ins.Addr] = regs[ins.Rs]
		case isa.MOVI:
			regs[ins.Rd] = ins.Imm
		case isa.ADDI:
			regs[ins.Rd] += ins.Imm
		case isa.CMPI:
			flag = regs[ins.Rs] == ins.Imm
		case isa.BEQ, isa.BNE, isa.B:
			res.Branches++
			taken := true
			if ins.Op == isa.BEQ {
				taken = flag
			} else if ins.Op == isa.BNE {
				taken = !flag
			}
			if t.pred.mispredicted(pc, taken) {
				res.Mispredicts++
				res.Cycles += int64(t.cm.Mispredict)
			}
			if taken {
				res.Cycles += int64(t.cm.TakenBranch)
				pc = ins.Target
				continue
			}
		case isa.FENCE:
			res.Cycles += int64(t.cm.Fence)
			res.Fences++
		case isa.FAIL:
			return res, fmt.Errorf("%w at pc %d (test op %d)", ErrAssertFailed, pc, ins.TestOpID)
		case isa.HALT:
			return res, nil
		default:
			return res, fmt.Errorf("vm: unknown opcode %v at pc %d", ins.Op, pc)
		}
		pc++
	}
}

// Accumulate adds other's counters into r (Private is merged).
func (r *Result) Accumulate(other *Result) {
	r.Instructions += other.Instructions
	r.Branches += other.Branches
	r.Mispredicts += other.Mispredicts
	r.TestLoads += other.TestLoads
	r.TestStores += other.TestStores
	r.Fences += other.Fences
	r.PrivateStores += other.PrivateStores
	r.Cycles += other.Cycles
	if r.Private == nil {
		r.Private = make(map[uint64]uint64)
	}
	for a, v := range other.Private {
		r.Private[a] = v
	}
}
