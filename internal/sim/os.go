package sim

import (
	"mtracecheck/internal/eventq"
	"mtracecheck/internal/prog"
)

// initOS installs time-sliced scheduling of threads over cores. Up to Cores
// threads run concurrently; every quantum the runnable window rotates, and
// (with Migrate) threads land on different cores, arriving with cold caches.
// A preempted thread's pipeline is flushed: its performed-but-uncommitted
// loads are squashed, as a context switch serializes the core.
func (e *engine) initOS() {
	if len(e.threads) <= e.r.plat.Cores && !e.r.plat.OS.Migrate {
		// Fewer threads than cores and no migration: every thread runs, but
		// quantum interrupts still inject thread-level jitter by briefly
		// pausing threads (modelling OS housekeeping preemptions).
		e.scheduleQuantum()
		return
	}
	// Start with the first Cores threads runnable.
	for i, t := range e.threads {
		t.running = i < e.r.plat.Cores
		if t.running {
			t.core = e.r.plat.coreOf(i)
		}
	}
	e.scheduleQuantum()
}

func (e *engine) quantumLen() eventq.Time {
	q := e.r.plat.OS.Quantum
	if q <= 0 {
		q = 400
	}
	if j := e.r.plat.OS.QuantumJitter; j > 0 {
		q += e.rng.Intn(j + 1)
	}
	return eventq.Time(q)
}

func (e *engine) scheduleQuantum() {
	e.q.PushAfter(e.quantumLen(), eventq.Event{Kind: evQuantum})
}

// rotate advances the runnable window by one thread and reassigns cores.
func (e *engine) rotate() {
	n := len(e.threads)
	cores := e.r.plat.Cores
	if n <= cores {
		// All threads fit: model a housekeeping preemption by pausing one
		// thread for this quantum and flushing its pipeline.
		victim := e.threads[e.rotateIdx%n]
		e.rotateIdx++
		for _, t := range e.threads {
			t.running = true
		}
		victim.running = false
		e.flushPipeline(victim)
		e.pump()
		return
	}
	e.rotateIdx = (e.rotateIdx + 1) % n
	for _, t := range e.threads {
		if t.running {
			e.flushPipeline(t)
		}
		t.running = false
	}
	for i := 0; i < cores; i++ {
		slot := (e.rotateIdx + i) % n
		t := e.threads[slot]
		t.running = true
		if e.r.plat.OS.Migrate {
			t.core = e.r.plat.coreOf(i)
		} else {
			t.core = e.r.plat.coreOf(slot)
		}
	}
	e.pump()
}

// flushPipeline squashes a thread's performed-but-uncommitted loads, as a
// context switch drains the core's pipeline.
func (e *engine) flushPipeline(t *thread) {
	for i := t.commit; i < t.next; i++ {
		o := &t.ops[i]
		if o.op.Kind == prog.Load && o.performed && !o.committed {
			o.performed = false
			o.forwarded = false
			o.epoch++
			o.squashes++
			e.exec.Squashes++
		}
	}
}
