// Package sim is the execution engine of the simulated post-silicon
// validation platform: it runs multi-threaded test programs (package prog)
// over the coherent memory substrate (package mem) under a configurable
// memory consistency model, producing one Execution — observed load values,
// per-word write-serialization order, and timing — per test iteration.
//
// # Microarchitectural model
//
// Each thread issues its operations in program order into a bounded window.
//
//   - Loads perform speculatively: a load may read memory before earlier
//     (different-word) loads have performed. When the model orders ld→ld
//     (SC, TSO, PSO), the load queue squashes and replays any performed but
//     uncommitted load whose cache line is invalidated, recovering the
//     architectural appearance of load ordering — exactly the mechanism the
//     paper's bugs 1 and 2 break. Under RMO loads to different words are
//     architecturally unordered and no squashing is needed (same-word loads
//     perform in order to preserve coherence).
//   - Stores enter a per-thread store buffer at commit and drain to the
//     coherent memory system later: FIFO when the model orders st→st
//     (SC, TSO), in arbitrary order otherwise (PSO, RMO), always preserving
//     per-word order. Loads forward from the youngest same-word store
//     buffer entry when store atomicity permits.
//   - Under SC a load additionally waits for all earlier stores to drain
//     (st→ld preserved); under TSO and weaker it does not — which is what
//     makes the SB litmus outcome observable.
//   - Fences commit only when every earlier load has performed and every
//     earlier store has drained; later operations wait on earlier fences.
//
// Bug 2 of the paper ("LSQ issue") is injected here: the load queue receives
// the invalidation notification but fails to squash, leaving stale
// speculative loads visible as ld→ld violations.
package sim

import (
	"fmt"

	"mtracecheck/internal/eventq"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/mem"
)

// Bugs selects engine-level injected defects.
type Bugs struct {
	// LQSquashSkip is the paper's bug 2: invalidations do not squash
	// performed-but-uncommitted loads.
	LQSquashSkip bool
}

// OSConfig models running tests under an operating system instead of
// bare-metal (paper §6.1, "Impact of the Operating System"): threads are
// time-sliced over the cores and may migrate between them, adding
// thread-level (coarse) interference on top of the instruction-level (fine)
// timing jitter.
type OSConfig struct {
	Enabled       bool
	Quantum       int // scheduling quantum in cycles
	QuantumJitter int // uniform extra cycles per quantum
	Migrate       bool
}

// Platform describes one system-under-validation (paper Table 1).
type Platform struct {
	Name string
	// Model is the platform's memory consistency model.
	Model mcm.Model
	// Atomicity is the platform's store atomicity (forwarding behaviour).
	Atomicity mcm.Atomicity
	// Cores is the number of cores.
	Cores int
	// AllocOrder lists core IDs in thread-allocation order (paper §5: ARM
	// fills big cores first; x86 fills secondary cores before the
	// boot-strap core). Empty means identity order.
	AllocOrder []int
	// CoreDelay adds per-core cycles to each operation initiation,
	// modelling heterogeneous (big.LITTLE) cores. Empty means zero.
	CoreDelay []eventq.Time
	// RegWidthBits is the register width (64 for x86-64, 32 for ARMv7);
	// it bounds per-word signature capacity during instrumentation.
	RegWidthBits int
	// Mem configures the coherent memory substrate. Mem.Cores is
	// overwritten with Cores.
	Mem mem.Config
	// SBDepth is the store buffer capacity per thread.
	SBDepth int
	// Window is the per-thread issue window (maximum in-flight ops).
	Window int
	// DrainDelayMax adds a uniform random delay before each store-buffer
	// drain, widening the st→ld reordering window.
	DrainDelayMax int
	// IssueJitterMax adds a uniform random delay to each load's initiation,
	// modelling pipeline variability; it is what lets speculative loads
	// perform out of order with respect to each other.
	IssueJitterMax int
	// StartJitterMax skews each thread's start within an iteration,
	// modelling barrier-release and pipeline-warmup skew.
	StartJitterMax int
	// LateLoadProb is the probability a load's initiation is delayed by an
	// extra uniform [0, LateLoadMax] cycles, modelling out-of-order
	// scheduler gaps (bank conflicts, issue-port contention). These long
	// gaps are what allow genuinely out-of-order same-line load performs —
	// the window the load-queue squash machinery exists to repair.
	LateLoadProb float64
	LateLoadMax  int
	// OS configures optional OS-mode scheduling.
	OS OSConfig
	// Bugs selects engine-level injected defects.
	Bugs Bugs
}

// Validate checks the platform description.
func (p Platform) Validate() error {
	switch {
	case p.Cores < 1:
		return fmt.Errorf("sim: %d cores", p.Cores)
	case p.RegWidthBits != 32 && p.RegWidthBits != 64:
		return fmt.Errorf("sim: register width %d not 32 or 64", p.RegWidthBits)
	case p.SBDepth < 1:
		return fmt.Errorf("sim: store buffer depth %d", p.SBDepth)
	case p.Window < 1:
		return fmt.Errorf("sim: window %d", p.Window)
	case p.DrainDelayMax < 0 || p.IssueJitterMax < 0 || p.StartJitterMax < 0 || p.LateLoadMax < 0:
		return fmt.Errorf("sim: negative jitter")
	case p.LateLoadProb < 0 || p.LateLoadProb > 1:
		return fmt.Errorf("sim: late-load probability %v outside [0,1]", p.LateLoadProb)
	}
	if len(p.AllocOrder) != 0 {
		if len(p.AllocOrder) != p.Cores {
			return fmt.Errorf("sim: alloc order lists %d cores, platform has %d",
				len(p.AllocOrder), p.Cores)
		}
		seen := make(map[int]bool)
		for _, c := range p.AllocOrder {
			if c < 0 || c >= p.Cores || seen[c] {
				return fmt.Errorf("sim: bad alloc order %v", p.AllocOrder)
			}
			seen[c] = true
		}
	}
	if len(p.CoreDelay) != 0 && len(p.CoreDelay) != p.Cores {
		return fmt.Errorf("sim: core delays list %d cores, platform has %d",
			len(p.CoreDelay), p.Cores)
	}
	m := p.Mem
	m.Cores = p.Cores
	return m.Validate()
}

// coreOf maps a thread slot to its core under the allocation order.
func (p Platform) coreOf(slot int) int {
	if len(p.AllocOrder) == 0 {
		return slot % p.Cores
	}
	return p.AllocOrder[slot%p.Cores]
}

// PlatformX86 models the paper's System 1: a 4-core x86-64 desktop under
// x86-TSO with 64-bit registers (Table 1).
func PlatformX86() Platform {
	return Platform{
		Name:           "x86-64 Core2Quad",
		Model:          mcm.TSO,
		Atomicity:      mcm.MultiCopy,
		Cores:          4,
		AllocOrder:     []int{1, 2, 3, 0}, // secondary cores first, boot-strap last
		RegWidthBits:   64,
		Mem:            mem.DefaultConfig(4),
		SBDepth:        8,
		Window:         16,
		DrainDelayMax:  120,
		IssueJitterMax: 16,
		StartJitterMax: 300,
		LateLoadProb:   0.08,
		LateLoadMax:    250,
	}
}

// PlatformARM models the paper's System 2: an 8-core ARMv7 big.LITTLE SoC
// under a weakly-ordered model with 32-bit registers (Table 1). Threads are
// allocated to the big (Cortex-A15-like, cores 4–7) cluster first.
func PlatformARM() Platform {
	return Platform{
		Name:           "ARMv7 Exynos5422",
		Model:          mcm.RMO,
		Atomicity:      mcm.MultiCopy,
		Cores:          8,
		AllocOrder:     []int{4, 5, 6, 7, 0, 1, 2, 3},
		CoreDelay:      []eventq.Time{6, 6, 6, 6, 0, 0, 0, 0}, // little cores slower
		RegWidthBits:   32,
		Mem:            armMem(),
		SBDepth:        8,
		Window:         16,
		DrainDelayMax:  60,
		IssueJitterMax: 6,
		StartJitterMax: 40,
		LateLoadProb:   0.03,
		LateLoadMax:    250,
	}
}

// armMem tunes the memory substrate for the ARM-like preset: modest message
// jitter, as the SoC's fabric timing is far more repeatable than a desktop
// northbridge — keeping two-threaded tests' interleaving diversity low, as
// the paper observes for its ARM system.
func armMem() mem.Config {
	c := mem.DefaultConfig(8)
	c.Jitter = 3
	return c
}

// PlatformGem5 models the paper's §7 bug-injection target: an 8-core
// out-of-order x86 under gem5 with a deliberately tiny L1 (1 KiB 2-way) to
// intensify evictions.
func PlatformGem5(memBugs mem.Bugs, simBugs Bugs) Platform {
	p := Platform{
		Name:           "gem5 8-core x86",
		Model:          mcm.TSO,
		Atomicity:      mcm.MultiCopy,
		Cores:          8,
		RegWidthBits:   64,
		Mem:            mem.TinyCacheConfig(8),
		SBDepth:        8,
		Window:         16,
		DrainDelayMax:  120,
		IssueJitterMax: 16,
		StartJitterMax: 300,
		LateLoadProb:   0.10,
		LateLoadMax:    250,
		Bugs:           simBugs,
	}
	p.Mem.Bugs = memBugs
	return p
}

// ForISA returns the platform flavor for a paper config label prefix.
func ForISA(isa string) (Platform, error) {
	switch isa {
	case "ARM", "arm":
		return PlatformARM(), nil
	case "x86", "X86":
		return PlatformX86(), nil
	default:
		return Platform{}, fmt.Errorf("sim: unknown ISA %q", isa)
	}
}
