package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mtracecheck/internal/eventq"

	"mtracecheck/internal/mcm"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/testgen"
)

// platFor returns a platform with the given model, based on x86 timing.
func platFor(model mcm.Model, cores int) Platform {
	p := PlatformX86()
	p.Model = model
	p.Cores = cores
	p.AllocOrder = nil
	p.Mem = mem.DefaultConfig(cores)
	return p
}

func mustRun(t *testing.T, plat Platform, p *prog.Program, seed int64, iters int) []*Execution {
	t.Helper()
	r, err := NewRunner(plat, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	exs, err := r.RunMany(iters)
	if err != nil {
		t.Fatal(err)
	}
	return exs
}

// checkExecutionSanity verifies universal invariants of one execution:
// every load has a value from its candidate set, and WS covers every store
// exactly once per word in a per-thread-order-respecting sequence.
func checkExecutionSanity(t *testing.T, p *prog.Program, ex *Execution) {
	t.Helper()
	for _, op := range p.Ops() {
		switch op.Kind {
		case prog.Load:
			v := ex.LoadValues[op.ID]
			if v == prog.InitialValue {
				continue
			}
			src, ok := p.StoreByValue(v)
			if !ok {
				t.Fatalf("load %d read %d, which no store wrote", op.ID, v)
			}
			if src.Word != op.Word {
				t.Fatalf("load %d (word %d) read store %d of word %d",
					op.ID, op.Word, src.ID, src.Word)
			}
		case prog.Store:
			found := 0
			for _, id := range ex.WS[op.Word] {
				if id == op.ID {
					found++
				}
			}
			if found != 1 {
				t.Fatalf("store %d appears %d times in WS[%d]", op.ID, found, op.Word)
			}
		}
	}
	// Same-thread same-word stores must respect program order in WS.
	for word, ids := range ex.WS {
		lastIdx := map[int]int{} // thread -> last op index seen
		for _, id := range ids {
			op := p.OpByID(id)
			if op.Word != word {
				t.Fatalf("WS[%d] contains store %d of word %d", word, id, op.Word)
			}
			if prev, ok := lastIdx[op.Thread]; ok && prev > op.Index {
				t.Fatalf("WS[%d] reorders same-thread stores", word)
			}
			lastIdx[op.Thread] = op.Index
		}
	}
}

func TestSingleThreadSequentialSemantics(t *testing.T) {
	// One thread: every load reads the latest preceding same-word store.
	p := prog.NewBuilder("seq", 2, prog.DefaultLayout()).
		Thread().Store(0).Load(0).Store(1).Store(0).Load(0).Load(1).
		MustBuild()
	for _, model := range mcm.Models {
		exs := mustRun(t, platFor(model, 1), p, 42, 10)
		for _, ex := range exs {
			checkExecutionSanity(t, p, ex)
			ops := p.Threads[0].Ops
			if got := ex.LoadValues[ops[1].ID]; got != ops[0].Value {
				t.Errorf("%v: load after store read %d, want %d", model, got, ops[0].Value)
			}
			if got := ex.LoadValues[ops[4].ID]; got != ops[3].Value {
				t.Errorf("%v: second load read %d, want %d", model, got, ops[3].Value)
			}
			if got := ex.LoadValues[ops[5].ID]; got != ops[2].Value {
				t.Errorf("%v: word-1 load read %d, want %d", model, got, ops[2].Value)
			}
		}
	}
}

// TestLitmusForbiddenNeverAppear runs every litmus test under every model on
// a bug-free platform and checks that forbidden outcomes never occur.
func TestLitmusForbiddenNeverAppear(t *testing.T) {
	for _, l := range testgen.LitmusTests() {
		for _, model := range mcm.Models {
			if !l.ForbiddenUnder(model) {
				continue
			}
			plat := platFor(model, max(l.Prog.NumThreads(), 2))
			exs := mustRun(t, plat, l.Prog, 7, 300)
			for i, ex := range exs {
				checkExecutionSanity(t, l.Prog, ex)
				if l.Interesting.MatchesValues(ex.LoadValues) {
					t.Errorf("%s: forbidden outcome under %v at iteration %d (values %v)",
						l.Name, model, i, ex.LoadValues)
					break
				}
			}
		}
	}
}

// TestLitmusAllowedObservable checks the engine actually produces the
// classic relaxed outcomes the hardware mechanisms enable: SB under TSO
// (store buffering) and MP under PSO/RMO (out-of-order drains).
func TestLitmusAllowedObservable(t *testing.T) {
	cases := []struct {
		litmus string
		model  mcm.Model
	}{
		{"SB", mcm.TSO},
		{"SB", mcm.RMO},
		{"MP", mcm.PSO},
		{"MP", mcm.RMO},
	}
	for _, c := range cases {
		l, err := testgen.LitmusByName(c.litmus)
		if err != nil {
			t.Fatal(err)
		}
		plat := platFor(c.model, 2)
		exs := mustRun(t, plat, l.Prog, 11, 400)
		seen := false
		for _, ex := range exs {
			if l.Interesting.MatchesValues(ex.LoadValues) {
				seen = true
				break
			}
		}
		if !seen {
			t.Errorf("%s under %v: allowed outcome never observed in %d iterations",
				c.litmus, c.model, len(exs))
		}
	}
}

func TestForwardingObserved(t *testing.T) {
	// st x; ld x under TSO: the load should (at least sometimes) forward
	// from the store buffer and always read the own store's value.
	p := prog.NewBuilder("fwd", 1, prog.DefaultLayout()).
		Thread().Store(0).Load(0).
		MustBuild()
	exs := mustRun(t, platFor(mcm.TSO, 1), p, 3, 50)
	ld := p.Threads[0].Ops[1]
	st := p.Threads[0].Ops[0]
	forwarded := 0
	for _, ex := range exs {
		if ex.LoadValues[ld.ID] != st.Value {
			t.Fatalf("load read %d, want own store %d", ex.LoadValues[ld.ID], st.Value)
		}
		if ex.Forwarded[ld.ID] {
			forwarded++
		}
	}
	if forwarded == 0 {
		t.Error("store-to-load forwarding never observed")
	}
}

func TestSingleCopyAtomicityDisablesForwarding(t *testing.T) {
	p := prog.NewBuilder("fwd", 1, prog.DefaultLayout()).
		Thread().Store(0).Load(0).
		MustBuild()
	plat := platFor(mcm.TSO, 1)
	plat.Atomicity = mcm.SingleCopy
	exs := mustRun(t, plat, p, 3, 30)
	for _, ex := range exs {
		if ex.AnyForwarded() {
			t.Fatal("forwarding observed under single-copy atomicity")
		}
	}
}

func TestRandomProgramsSanityAllModels(t *testing.T) {
	cfg := testgen.Config{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5}
	p := testgen.MustGenerate(cfg)
	for _, model := range mcm.Models {
		exs := mustRun(t, platFor(model, 4), p, 13, 30)
		for _, ex := range exs {
			checkExecutionSanity(t, p, ex)
		}
	}
}

func TestFencedProgramsComplete(t *testing.T) {
	cfg := testgen.Config{Threads: 3, OpsPerThread: 30, Words: 4, FenceProb: 0.2, Seed: 9}
	p := testgen.MustGenerate(cfg)
	for _, model := range mcm.Models {
		exs := mustRun(t, platFor(model, 3), p, 17, 10)
		for _, ex := range exs {
			checkExecutionSanity(t, p, ex)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testgen.Config{Threads: 2, OpsPerThread: 30, Words: 4, Seed: 21}
	p := testgen.MustGenerate(cfg)
	render := func() string {
		exs := mustRun(t, platFor(mcm.TSO, 2), p, 99, 5)
		s := ""
		for _, ex := range exs {
			s += fmt.Sprint(ex.LoadValues) + "|"
		}
		return s
	}
	if render() != render() {
		t.Error("same seed produced different executions")
	}
}

func TestThreadsExceedCoresRequiresOS(t *testing.T) {
	cfg := testgen.Config{Threads: 7, OpsPerThread: 10, Words: 4, Seed: 1}
	p := testgen.MustGenerate(cfg)
	plat := platFor(mcm.TSO, 4)
	if _, err := NewRunner(plat, p, 1); err == nil {
		t.Error("7 threads on 4 cores accepted without OS scheduling")
	}
	plat.OS = OSConfig{Enabled: true, Quantum: 300, QuantumJitter: 50, Migrate: true}
	exs := mustRun(t, plat, p, 1, 5)
	for _, ex := range exs {
		checkExecutionSanity(t, p, ex)
	}
}

func TestOSModeForbiddenStillForbidden(t *testing.T) {
	// OS preemption must not break the MCM: forbidden outcomes stay
	// forbidden (paper runs the same tests under Linux).
	l, err := testgen.LitmusByName("MP")
	if err != nil {
		t.Fatal(err)
	}
	plat := platFor(mcm.TSO, 2)
	plat.OS = OSConfig{Enabled: true, Quantum: 150, QuantumJitter: 80, Migrate: true}
	exs := mustRun(t, plat, l.Prog, 23, 300)
	for _, ex := range exs {
		checkExecutionSanity(t, l.Prog, ex)
		if l.Interesting.MatchesValues(ex.LoadValues) {
			t.Fatal("MP outcome observed under TSO with OS scheduling")
		}
	}
}

// corrViolation reports whether an execution contains a same-word ld→ld
// coherence violation: a younger load reading a WS-older value than an
// older same-thread load.
func corrViolation(p *prog.Program, ex *Execution) bool {
	pos := func(word int, v uint32) int {
		if v == prog.InitialValue {
			return -1
		}
		st, ok := p.StoreByValue(v)
		if !ok {
			return -2
		}
		for i, id := range ex.WS[word] {
			if id == st.ID {
				return i
			}
		}
		return -2
	}
	for _, th := range p.Threads {
		lastPos := map[int]int{} // word -> ws position of last load's value
		for _, op := range th.Ops {
			if op.Kind != prog.Load {
				continue
			}
			v := ex.LoadValues[op.ID]
			pp := pos(op.Word, v)
			if prev, ok := lastPos[op.Word]; ok && pp < prev {
				return true
			}
			lastPos[op.Word] = pp
		}
	}
	return false
}

// contentionProg builds a program with heavy same-word traffic to provoke
// invalidation races.
func contentionProg(threads, ops int) *prog.Program {
	return testgen.MustGenerate(testgen.Config{
		Threads: threads, OpsPerThread: ops, Words: 2, Seed: 77,
	})
}

// corrHammer builds a writer/reader pair on one word: the reader's
// speculative loads constantly race the writer's invalidations — the
// densest trigger for the ld→ld squash machinery.
func corrHammer() *prog.Program {
	b := prog.NewBuilder("hammer", 1, prog.DefaultLayout())
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Store(0)
	}
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Load(0)
	}
	return b.MustBuild()
}

func TestBug2ProducesCoherenceViolations(t *testing.T) {
	p := corrHammer()
	run := func(bug bool) int {
		plat := platFor(mcm.TSO, 2)
		plat.Bugs.LQSquashSkip = bug
		violations := 0
		exs := mustRun(t, plat, p, 31, 150)
		for _, ex := range exs {
			if corrViolation(p, ex) {
				violations++
			}
		}
		return violations
	}
	if v := run(false); v != 0 {
		t.Fatalf("bug-free platform produced %d coherence violations", v)
	}
	if v := run(true); v == 0 {
		t.Error("bug 2 produced no coherence violations in 150 iterations")
	}
}

func TestBug1ProducesCoherenceViolations(t *testing.T) {
	// The paper's bug-1 recipe (Table 3): x86-4-50-8 with 4 words per cache
	// line, so upgrade (S→M) transients on a line race invalidations while
	// speculative loads to the line's other words are outstanding.
	p := testgen.MustGenerate(testgen.Config{
		Threads: 4, OpsPerThread: 50, Words: 8, WordsPerLine: 4, Seed: 1,
	})
	run := func(bug bool) int {
		plat := PlatformGem5(mem.Bugs{StaleSMInv: bug}, Bugs{})
		r, err := NewRunner(plat, p, 41)
		if err != nil {
			t.Fatal(err)
		}
		violations := 0
		for i := 0; i < 200; i++ {
			ex, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if corrViolation(p, ex) {
				violations++
			}
		}
		return violations
	}
	if v := run(false); v != 0 {
		t.Fatalf("bug-free platform produced %d coherence violations", v)
	}
	if v := run(true); v == 0 {
		t.Error("bug 1 produced no coherence violations in 200 iterations")
	}
}

func TestBug3Crashes(t *testing.T) {
	// Line-contended stores with a tiny cache: the writeback race deadlocks.
	p := testgen.MustGenerate(testgen.Config{
		Threads: 7, OpsPerThread: 60, Words: 64, LoadRatio: 0.3, Seed: 3,
	})
	plat := PlatformGem5(mem.Bugs{WBRaceDeadlock: true}, Bugs{})
	r, err := NewRunner(plat, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	for i := 0; i < 60 && !crashed; i++ {
		if _, err := r.Run(); err != nil {
			if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrLivelock) {
				t.Fatalf("unexpected error: %v", err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Error("bug 3 never crashed in 60 iterations")
	}
}

func TestPlatformValidate(t *testing.T) {
	good := []Platform{PlatformX86(), PlatformARM(), PlatformGem5(mem.Bugs{}, Bugs{})}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := PlatformX86()
	bad.AllocOrder = []int{0, 0, 1, 2}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate alloc order accepted")
	}
	bad = PlatformX86()
	bad.RegWidthBits = 16
	if err := bad.Validate(); err == nil {
		t.Error("16-bit registers accepted")
	}
}

func TestForISA(t *testing.T) {
	arm, err := ForISA("ARM")
	if err != nil || arm.Model != mcm.RMO {
		t.Errorf("ForISA(ARM) = %v, %v", arm.Model, err)
	}
	x86, err := ForISA("x86")
	if err != nil || x86.Model != mcm.TSO {
		t.Errorf("ForISA(x86) = %v, %v", x86.Model, err)
	}
	if _, err := ForISA("mips"); err == nil {
		t.Error("ForISA accepted mips")
	}
}

func TestExecutionCyclesPositive(t *testing.T) {
	p := contentionProg(2, 20)
	exs := mustRun(t, platFor(mcm.TSO, 2), p, 1, 3)
	for _, ex := range exs {
		if ex.Cycles <= 0 {
			t.Errorf("Cycles = %d", ex.Cycles)
		}
		if ex.MemStats.Stores == 0 {
			t.Error("memory stats empty")
		}
	}
}

// TestTinyStoreBufferCompletes stresses the commit-stall path: with a
// single-entry store buffer every store serializes against the previous
// drain, and executions must still complete under every model.
func TestTinyStoreBufferCompletes(t *testing.T) {
	cfg := testgen.Config{Threads: 3, OpsPerThread: 30, Words: 4, Seed: 12}
	p := testgen.MustGenerate(cfg)
	for _, model := range mcm.Models {
		plat := platFor(model, 3)
		plat.SBDepth = 1
		exs := mustRun(t, plat, p, 19, 10)
		for _, ex := range exs {
			checkExecutionSanity(t, p, ex)
		}
	}
}

// TestInOrderWindowCompletes: a single-slot issue window makes the core
// fully in-order; everything must still complete and stay sane.
func TestInOrderWindowCompletes(t *testing.T) {
	cfg := testgen.Config{Threads: 2, OpsPerThread: 25, Words: 4, Seed: 13}
	p := testgen.MustGenerate(cfg)
	for _, model := range mcm.Models {
		plat := platFor(model, 2)
		plat.Window = 1
		exs := mustRun(t, plat, p, 29, 10)
		for _, ex := range exs {
			checkExecutionSanity(t, p, ex)
			if model == mcm.SC && ex.Squashes != 0 {
				t.Errorf("SC in-order core squashed %d loads", ex.Squashes)
			}
		}
	}
}

// TestForbiddenStaysForbiddenUnderStress: litmus forbidden outcomes must
// not appear even with aggressive timing noise and tiny structures.
func TestForbiddenStaysForbiddenUnderStress(t *testing.T) {
	l, err := testgen.LitmusByName("CoRR")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range mcm.Models {
		plat := platFor(model, 2)
		plat.SBDepth = 1
		plat.Window = 2
		plat.LateLoadProb = 0.5
		plat.LateLoadMax = 500
		plat.Mem = mem.TinyCacheConfig(2)
		exs := mustRun(t, plat, l.Prog, 37, 200)
		for _, ex := range exs {
			if l.Interesting.MatchesValues(ex.LoadValues) {
				t.Fatalf("%v: CoRR violation on a clean stressed platform", model)
			}
		}
	}
}

func TestTraceTimeline(t *testing.T) {
	p := contentionProg(2, 20)
	r, err := NewRunner(platFor(mcm.TSO, 2), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Trace = true
	ex, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Timeline) != p.NumOps() {
		t.Fatalf("timeline has %d events, want %d", len(ex.Timeline), p.NumOps())
	}
	for i, ev := range ex.Timeline {
		if ev.OpID != i {
			t.Fatalf("timeline[%d].OpID = %d", i, ev.OpID)
		}
		op := p.OpByID(ev.OpID)
		if op.IsMemory() && ev.Performed == 0 {
			t.Errorf("op %d never performed", ev.OpID)
		}
		if ev.Committed == 0 {
			t.Errorf("op %d never committed", ev.OpID)
		}
		if op.Kind == prog.Load {
			if got := ex.LoadValues[ev.OpID]; got != ev.Value {
				t.Errorf("op %d: timeline value %d, LoadValues %d", ev.OpID, ev.Value, got)
			}
		}
	}
	// Same-thread commits are monotone (in-order retirement).
	last := map[int]eventq.Time{}
	for _, ev := range ex.Timeline {
		op := p.OpByID(ev.OpID)
		if prev, ok := last[op.Thread]; ok && ev.Committed < prev {
			t.Errorf("thread %d committed op %d before its predecessor", op.Thread, ev.OpID)
		}
		last[op.Thread] = ev.Committed
	}
	var sb strings.Builder
	if err := FormatTimeline(&sb, p, ex); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "performed\tcommitted") {
		t.Error("timeline header missing")
	}

	// Without Trace, no timeline (and FormatTimeline refuses).
	r2, _ := NewRunner(platFor(mcm.TSO, 2), p, 1)
	ex2, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex2.Timeline) != 0 {
		t.Error("timeline recorded without Trace")
	}
	if err := FormatTimeline(&sb, p, ex2); err == nil {
		t.Error("FormatTimeline accepted traceless execution")
	}
}

// TestSeedStreamSkipMatchesSequentialRuns: a seed stream skipped past n
// iterations must hand out exactly the seed a same-seeded runner's n-th Run
// call would have drawn — the invariant behind the streaming pipeline's
// worker-invariant results and checkpoint resume.
func TestSeedStreamSkipMatchesSequentialRuns(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 4, OpsPerThread: 20, Words: 8, Seed: 2})
	plat := PlatformX86()
	full := mustRun(t, plat, p, 7, 20)
	for _, skip := range []int{0, 1, 7, 19} {
		r, err := NewRunner(plat, p, 7)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSeedStream(7)
		s.Skip(skip)
		if s.Pos() != skip {
			t.Fatalf("skip %d: Pos() = %d", skip, s.Pos())
		}
		ex, err := r.RunSeeded(s.Next())
		if err != nil {
			t.Fatal(err)
		}
		want := full[skip]
		if ex.Cycles != want.Cycles {
			t.Errorf("skip %d: cycles %d, sequential %d", skip, ex.Cycles, want.Cycles)
		}
		for id, v := range want.LoadValues {
			if ex.LoadValues[id] != v {
				t.Errorf("skip %d: load %d = %d, sequential %d", skip, id, ex.LoadValues[id], v)
			}
		}
	}
}

// TestRunnerRejectsConcurrentRun: a Runner is owned by one goroutine; a
// second concurrent Run must fail rather than corrupt the seed stream.
func TestRunnerRejectsConcurrentRun(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 2})
	r, err := NewRunner(PlatformX86(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	const grs = 4
	errs := make(chan error, grs)
	for g := 0; g < grs; g++ {
		go func() {
			var firstErr error
			for i := 0; i < 50; i++ {
				if _, err := r.Run(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			errs <- firstErr
		}()
	}
	sawReject := false
	for g := 0; g < grs; g++ {
		if err := <-errs; err != nil {
			if !strings.Contains(err.Error(), "concurrent") {
				t.Fatalf("unexpected error: %v", err)
			}
			sawReject = true
		}
	}
	if !sawReject {
		t.Log("no overlap provoked; ownership guard not exercised this run")
	}
}
