package sim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"

	"mtracecheck/internal/eventq"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
)

// ErrDeadlock reports that the platform stopped making progress with
// operations still outstanding — the manifestation of the paper's bug 3
// (all affected runs "crash" the simulation).
var ErrDeadlock = errors.New("sim: protocol deadlock: no progress with operations outstanding")

// ErrLivelock reports that an iteration exceeded its event budget.
var ErrLivelock = errors.New("sim: iteration exceeded event budget")

// Execution is the observable result of one test iteration.
//
// Load values, forwarding marks, and write-serialization orders are stored in
// dense slices rather than maps: operation IDs are contiguous per program
// (thread-major, 0..NumOps-1) and shared words are indexed 0..NumWords-1, so
// index addressing replaces associative lookups on the hot path.
//
// Ownership: the Execution returned by Runner.Run is the Runner's reusable
// scratch buffer — it is valid only until the next Run call on that Runner.
// Callers that retain executions across iterations must Clone them.
type Execution struct {
	// LoadValues holds, indexed by operation ID, the value each load
	// returned. Entries for non-load operations are zero.
	LoadValues []uint32
	// WS lists, per shared word (indexed by word), the store operation IDs in
	// global write-serialization (coherence) order. Words without stores have
	// empty slices.
	WS [][]int
	// Forwarded marks, indexed by operation ID, loads satisfied by
	// store-to-load forwarding from the thread's own store buffer (reads that
	// preceded global visibility).
	Forwarded []bool
	// Cycles is the iteration's duration in simulated cycles.
	Cycles eventq.Time
	// Squashes counts load-queue squash/replay events.
	Squashes int
	// MemStats snapshots the memory system counters for the iteration.
	MemStats mem.Stats
	// Timeline holds per-operation timing when the Runner's Trace flag is
	// set: perform (global visibility / value bind) and commit times plus
	// per-op squash counts, in op-ID order.
	Timeline []OpEvent
}

// reset prepares the scratch execution for a fresh iteration.
func (ex *Execution) reset(numOps, numWords int) {
	if cap(ex.LoadValues) < numOps {
		ex.LoadValues = make([]uint32, numOps)
		ex.Forwarded = make([]bool, numOps)
	} else {
		ex.LoadValues = ex.LoadValues[:numOps]
		ex.Forwarded = ex.Forwarded[:numOps]
		clear(ex.LoadValues)
		clear(ex.Forwarded)
	}
	if cap(ex.WS) < numWords {
		ex.WS = make([][]int, numWords)
	} else {
		ex.WS = ex.WS[:numWords]
	}
	for w := range ex.WS {
		ex.WS[w] = ex.WS[w][:0]
	}
	ex.Cycles = 0
	ex.Squashes = 0
	ex.MemStats = mem.Stats{}
	ex.Timeline = ex.Timeline[:0]
}

// Clone returns a deep copy safe to retain across subsequent Run calls.
func (ex *Execution) Clone() *Execution {
	c := &Execution{
		LoadValues: append([]uint32(nil), ex.LoadValues...),
		Forwarded:  append([]bool(nil), ex.Forwarded...),
		WS:         make([][]int, len(ex.WS)),
		Cycles:     ex.Cycles,
		Squashes:   ex.Squashes,
		MemStats:   ex.MemStats,
	}
	for w, ids := range ex.WS {
		if len(ids) > 0 {
			c.WS[w] = append([]int(nil), ids...)
		}
	}
	if len(ex.Timeline) > 0 {
		c.Timeline = append([]OpEvent(nil), ex.Timeline...)
	}
	return c
}

// WSByWord returns the write-serialization orders as a freshly allocated map
// keyed by shared word, with entries only for words that saw at least one
// store (the shape graph.WS consumers expect). The slices are copies, safe to
// retain across iterations.
func (ex *Execution) WSByWord() map[int][]int {
	m := make(map[int][]int)
	for w, ids := range ex.WS {
		if len(ids) > 0 {
			m[w] = append([]int(nil), ids...)
		}
	}
	return m
}

// AnyForwarded reports whether any load in the execution was satisfied by
// store-to-load forwarding.
func (ex *Execution) AnyForwarded() bool {
	for _, f := range ex.Forwarded {
		if f {
			return true
		}
	}
	return false
}

// OpEvent is one operation's timing within an iteration (Runner.Trace).
type OpEvent struct {
	OpID      int
	Performed eventq.Time
	Committed eventq.Time
	Squashes  int
	Forwarded bool
	Value     uint32
}

// Engine event kinds, dispatched through the jump table in engine.dispatch.
// Kinds at or above mem.KindBase belong to the memory system and are routed
// to mem.System.Dispatch; eventq.KindFunc is the queue's own closure shim.
const (
	// evThreadStart releases thread slot Core from the iteration's start
	// barrier after its random skew.
	evThreadStart uint8 = 1 + iota
	// evLoadFwd completes a store-to-load forward: thread slot Core, op
	// index Op, epoch Arg. The forwarded value is the youngest earlier
	// same-word store's (static) program value.
	evLoadFwd
	// evLoadIssue presents a load to the memory system: thread slot Core,
	// op index Op, epoch Arg. The issuing core is read at dispatch time —
	// OS migration may have moved the thread since scheduling.
	evLoadIssue
	// evStoreIssue drains a store from the store buffer into the memory
	// system: thread slot Core, op index Op.
	evStoreIssue
	// evQuantum fires an OS scheduling quantum (see os.go).
	evQuantum
)

// Completion tokens: a load/store issued to the memory system carries its
// requester identity packed into an int64, handed back synchronously through
// the completion hook — (thread slot << 48) | (op index << 32) | epoch.
// NewRunner rejects programs whose dimensions overflow the fields.
const (
	tokSlotShift = 48
	tokOpShift   = 32
	tokEpochMask = (1 << 32) - 1
	maxTokOps    = 1 << 16
	maxTokSlots  = 1 << 15
)

func packTok(slot, op, epoch int) int64 {
	return int64(slot)<<tokSlotShift | int64(op)<<tokOpShift | int64(epoch&tokEpochMask)
}

// opRec tracks one operation's dynamic state within an iteration.
type opRec struct {
	op        prog.Op
	issued    bool
	inFlight  bool
	performed bool // loads: value bound; stores: drained (globally visible)
	committed bool
	buffered  bool // stores: resident in the store buffer
	forwarded bool
	value     uint32
	epoch     int // bumped on squash; stale completions are dropped

	performedAt eventq.Time
	committedAt eventq.Time
	squashes    int
}

// static per-op precomputed indices (shared across iterations).
type opStatic struct {
	prefixFences      int // fences before this op in its thread
	prefixStores      int // stores before this op in its thread
	prefixSameWordSt  int // same-word stores before this op
	prefixSameWordLd  int // same-word loads before this op
	lastSameWordStore int // thread-local index of latest earlier same-word store; -1
	storeIndex        int // index among the thread's stores (stores only)
}

type thread struct {
	slot    int
	core    int
	ops     []opRec
	static  []opStatic
	next    int // issue pointer
	commit  int // commit pointer
	low     int // oldest op not yet both committed and performed
	sbUsed  int
	running bool
	started bool

	committedFences   int
	drainedStores     int
	drainedByWord     []int // same-word drained-store count, indexed by word
	performedLdByWord []int // indexed by word
}

// reset rewinds the thread to the start of an iteration.
func (t *thread) reset(r *Runner) {
	t.core = r.plat.coreOf(t.slot)
	t.next, t.commit, t.low, t.sbUsed = 0, 0, 0, 0
	t.running = true
	t.started = false
	t.committedFences = 0
	t.drainedStores = 0
	clear(t.drainedByWord)
	clear(t.performedLdByWord)
	ops := r.prog.Threads[t.slot].Ops
	for i := range t.ops {
		t.ops[i] = opRec{op: ops[i]}
	}
}

// Source produces executions one iteration at a time. *Runner is the
// canonical implementation; wrappers interpose on it (e.g. the fault
// injector's stall/panic shim) without the pipeline knowing. Implementations
// inherit Runner's ownership contract: one goroutine drives one Source, and
// the returned Execution may be a reusable scratch buffer valid only until
// the next Run call.
type Source interface {
	Run() (*Execution, error)
}

// Runner executes a program repeatedly on a platform, one fresh iteration at
// a time (the paper applies a hard reset before each test run, §5).
//
// A Runner is owned by exactly one goroutine: Run mutates the master seed
// stream and the reusable iteration state, so concurrent calls would
// interleave nondeterministically. Parallel pipelines give each worker
// goroutine its own Runner and feed it per-iteration seeds drawn once from
// the campaign's SeedStream via RunSeeded, so any runner can execute any
// iteration; Run and RunSeeded reject concurrent use.
//
// All per-iteration state — the event queue, the memory system, thread and
// op records, and the scratch Execution — is allocated once and reused, so a
// steady-state Run performs no per-iteration setup allocations. Reuse is
// observationally identical to rebuilding from scratch: the iteration RNG is
// reseeded (same stream as a fresh rand.New), the event queue is emptied and
// rewound, and the memory system is drained to quiescence and zeroed.
type Runner struct {
	plat   Platform
	prog   *prog.Program
	master *rand.Rand
	static [][]opStatic
	busy   atomic.Int32 // guards the single-goroutine ownership contract

	// Reusable per-iteration state (see prepare/finish).
	rng     *rand.Rand // iteration RNG, reseeded from master each Run
	q       *eventq.Queue
	ms      *mem.System
	eng     engine
	threads []*thread
	exec    Execution
	dirty   bool // platform state not reusable; rebuild before next Run

	// MaxEvents bounds one iteration's event count (0 = default).
	MaxEvents int
	// Trace records per-operation timing into Execution.Timeline.
	Trace bool
}

// SeedStream produces the per-iteration seed sequence of a campaign seed:
// value i is exactly what the i-th Run call on a Runner constructed over the
// same seed would draw from its master stream. Drawing the stream once and
// feeding slices of it to RunSeeded decouples results from how iterations
// are partitioned across workers, and replaces every per-shard O(start)
// skip-ahead with a single O(total) pass. The stream is drawn incrementally,
// so multi-million-iteration campaigns never materialize a full table.
//
// A SeedStream is not safe for concurrent use; the campaign draws from it
// under its scheduler lock.
type SeedStream struct {
	master *rand.Rand
	pos    int
}

// NewSeedStream returns the seed stream of the given campaign seed,
// positioned at iteration 0.
func NewSeedStream(seed int64) *SeedStream {
	return &SeedStream{master: rand.New(rand.NewSource(seed))}
}

// Pos returns the global iteration index of the next seed.
func (s *SeedStream) Pos() int { return s.pos }

// Skip advances past n iterations, e.g. to a checkpoint's resume point.
func (s *SeedStream) Skip(n int) {
	for i := 0; i < n; i++ {
		s.master.Int63()
	}
	s.pos += n
}

// Next returns the next iteration's seed.
func (s *SeedStream) Next() int64 {
	s.pos++
	return s.master.Int63()
}

// Fill fills dst with the next len(dst) iterations' seeds.
func (s *SeedStream) Fill(dst []int64) {
	for i := range dst {
		dst[i] = s.master.Int63()
	}
	s.pos += len(dst)
}

// SeedTable materializes the first n per-iteration seeds of a campaign
// seed. Convenience over SeedStream for bounded campaigns.
func SeedTable(seed int64, n int) []int64 {
	t := make([]int64, n)
	NewSeedStream(seed).Fill(t)
	return t
}

// NewRunner validates the platform/program pair and prepares static
// analysis shared by all iterations.
func NewRunner(plat Platform, p *prog.Program, seed int64) (*Runner, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !plat.OS.Enabled && p.NumThreads() > plat.Cores {
		return nil, fmt.Errorf("sim: %d threads exceed %d cores without OS scheduling",
			p.NumThreads(), plat.Cores)
	}
	if p.NumThreads() >= maxTokSlots {
		return nil, fmt.Errorf("sim: %d threads overflow the completion-token slot field", p.NumThreads())
	}
	for _, th := range p.Threads {
		if len(th.Ops) >= maxTokOps {
			return nil, fmt.Errorf("sim: %d ops per thread overflow the completion-token op field", len(th.Ops))
		}
	}
	r := &Runner{plat: plat, prog: p, master: rand.New(rand.NewSource(seed))}
	r.static = make([][]opStatic, p.NumThreads())
	for ti, th := range p.Threads {
		st := make([]opStatic, len(th.Ops))
		fences, stores := 0, 0
		sameWordSt := map[int]int{}
		sameWordLd := map[int]int{}
		lastStore := map[int]int{}
		for i, op := range th.Ops {
			s := opStatic{
				prefixFences:      fences,
				prefixStores:      stores,
				lastSameWordStore: -1,
			}
			if op.IsMemory() {
				s.prefixSameWordSt = sameWordSt[op.Word]
				s.prefixSameWordLd = sameWordLd[op.Word]
				if idx, ok := lastStore[op.Word]; ok {
					s.lastSameWordStore = idx
				}
			}
			switch op.Kind {
			case prog.Fence:
				fences++
			case prog.Store:
				s.storeIndex = stores
				stores++
				sameWordSt[op.Word]++
				lastStore[op.Word] = i
			case prog.Load:
				sameWordLd[op.Word]++
			}
			st[i] = s
		}
		r.static[ti] = st
	}
	// Reusable iteration state. The RNG is reseeded from the master stream at
	// the top of every Run; seeding an existing *rand.Rand yields exactly the
	// stream a fresh rand.New(rand.NewSource(seed)) would.
	r.rng = rand.New(rand.NewSource(0))
	r.q = eventq.New()
	r.threads = make([]*thread, 0, p.NumThreads())
	for ti, th := range p.Threads {
		t := &thread{
			slot:              ti,
			static:            r.static[ti],
			ops:               make([]opRec, len(th.Ops)),
			drainedByWord:     make([]int, p.NumWords),
			performedLdByWord: make([]int, p.NumWords),
		}
		r.threads = append(r.threads, t)
	}
	r.eng = engine{r: r, threads: r.threads, exec: &r.exec}
	r.q.SetHandler(r.eng.dispatch)
	return r, nil
}

// engine is the per-iteration dynamic state.
type engine struct {
	r       *Runner
	q       *eventq.Queue
	ms      *mem.System
	rng     *rand.Rand
	threads []*thread
	exec    *Execution

	squashActive bool // ld→ld ordered: LQ squash machinery engaged
	doneFlag     bool
	rotateIdx    int // OS: next thread slot to schedule
}

// prepare readies the reusable platform state for an iteration, rebuilding
// the event queue and memory system if a previous iteration left them in a
// non-reusable state (error paths, failed quiescence).
func (r *Runner) prepare() error {
	if r.ms == nil || r.dirty {
		r.q.Reset()
		memCfg := r.plat.Mem
		memCfg.Cores = r.plat.Cores
		ms, err := mem.NewSystem(r.q, memCfg, r.rng)
		if err != nil {
			return err
		}
		r.ms = ms
		ms.SetInvalHook(r.eng.onInvalidate)
		ms.SetCompleteHook(r.eng.onMemComplete)
		r.dirty = false
		return nil
	}
	// Reused path: the memory system was drained and zeroed by finish; only
	// the clock needs rewinding.
	r.q.Reset()
	return nil
}

// finish returns the platform to a reusable state after a completed
// iteration: residual protocol cleanup (writeback acks, fill acks, quantum
// timers) drains here, after the execution snapshot. Every program operation
// has already committed and performed, so these events cannot alter the
// recorded execution — they only settle the coherence protocol so the memory
// system can be zeroed in place instead of reallocated.
func (r *Runner) finish(maxEvents int) {
	r.q.Drain(maxEvents)
	if r.q.Len() == 0 && r.ms.Quiescent() && r.ms.Reset() == nil {
		return
	}
	r.dirty = true
}

// Run executes one iteration from a cold, zeroed platform state.
//
// The returned Execution is the Runner's reusable scratch buffer: it is
// valid until the next Run call. Clone it to retain it longer.
func (r *Runner) Run() (*Execution, error) {
	if !r.busy.CompareAndSwap(0, 1) {
		return nil, errors.New("sim: concurrent Runner.Run calls: each Runner must be driven by a single goroutine")
	}
	defer r.busy.Store(0)
	// Exactly one master draw per iteration — the seed-table API (SeedStream,
	// SeedTable) relies on this: stream value i is iteration i's seed.
	return r.run(r.master.Int63())
}

// RunSeeded executes one iteration under an explicit per-iteration seed,
// leaving the Runner's own master stream untouched. It is the streaming
// pipeline's entry point: the campaign draws the master stream once (see
// SeedStream) and hands each work chunk its slice of seeds, so any worker's
// Runner can execute any iteration and determinism no longer depends on how
// the iteration sequence is partitioned. RunSeeded(s) where s is the i-th
// value of the campaign's seed stream is bit-identical to Run() on a runner
// positioned at iteration i.
//
// The returned Execution is the Runner's reusable scratch buffer, exactly as
// for Run.
func (r *Runner) RunSeeded(seed int64) (*Execution, error) {
	if !r.busy.CompareAndSwap(0, 1) {
		return nil, errors.New("sim: concurrent Runner.RunSeeded calls: each Runner must be driven by a single goroutine")
	}
	defer r.busy.Store(0)
	return r.run(seed)
}

// run executes one iteration under the given per-iteration seed. Callers
// hold the busy guard.
func (r *Runner) run(seed int64) (*Execution, error) {
	if err := r.prepare(); err != nil {
		return nil, err
	}
	r.rng.Seed(seed)
	e := &r.eng
	e.q, e.ms, e.rng = r.q, r.ms, r.rng
	e.exec.reset(r.prog.NumOps(), r.prog.NumWords)
	e.squashActive = r.plat.Model.Ordered(prog.Load, prog.Load)
	e.doneFlag = false
	e.rotateIdx = 0
	for _, t := range e.threads {
		t.reset(r)
	}
	if r.plat.OS.Enabled {
		e.initOS()
	}
	// Threads leave the iteration's release barrier with random skew.
	for _, t := range e.threads {
		delay := eventq.Time(0)
		if m := r.plat.StartJitterMax; m > 0 {
			delay = eventq.Time(r.rng.Intn(m + 1))
		}
		r.q.PushAfter(delay, eventq.Event{Kind: evThreadStart, Core: int32(t.slot)})
	}
	e.pump()

	maxEvents := r.MaxEvents
	if maxEvents == 0 {
		maxEvents = 200_000 + 20_000*r.prog.NumOps()
	}
	n := r.q.RunUntil(e.done, maxEvents)
	if !e.done() {
		r.dirty = true
		if n >= maxEvents {
			return nil, ErrLivelock
		}
		return nil, ErrDeadlock
	}
	e.exec.Cycles = r.q.Now()
	e.exec.MemStats = r.ms.Stats()
	if r.Trace {
		for _, t := range e.threads {
			for i := range t.ops {
				o := &t.ops[i]
				e.exec.Timeline = append(e.exec.Timeline, OpEvent{
					OpID:      o.op.ID,
					Performed: o.performedAt,
					Committed: o.committedAt,
					Squashes:  o.squashes,
					Forwarded: o.forwarded,
					Value:     o.value,
				})
			}
		}
	}
	r.finish(maxEvents)
	return e.exec, nil
}

// RunMany executes n iterations, returning their executions (cloned, so the
// batch remains valid across iterations). A deadlock or livelock aborts the
// batch with the error (the "simulation crash" of the paper's bug 3).
func (r *Runner) RunMany(n int) ([]*Execution, error) {
	out := make([]*Execution, 0, n)
	for i := 0; i < n; i++ {
		ex, err := r.Run()
		if err != nil {
			return out, fmt.Errorf("iteration %d: %w", i, err)
		}
		out = append(out, ex.Clone())
	}
	return out, nil
}

// dispatch is the engine's jump table: every typed event the queue pops is
// decoded here by kind. Memory-system kinds route to mem.System.Dispatch.
func (e *engine) dispatch(ev eventq.Event) {
	if ev.Kind >= mem.KindBase {
		e.ms.Dispatch(ev)
		return
	}
	switch ev.Kind {
	case evThreadStart:
		e.threads[ev.Core].started = true
		e.pump()
	case evLoadFwd:
		t := e.threads[ev.Core]
		i := int(ev.Op)
		val := t.ops[t.static[i].lastSameWordStore].op.Value
		e.finishLoad(t, i, int(ev.Arg), val, true)
	case evLoadIssue:
		t := e.threads[ev.Core]
		i := int(ev.Op)
		o := &t.ops[i]
		e.ms.Read(t.core, e.addrOf(o.op), packTok(t.slot, i, int(ev.Arg)))
	case evStoreIssue:
		t := e.threads[ev.Core]
		i := int(ev.Op)
		o := &t.ops[i]
		e.ms.Write(t.core, e.addrOf(o.op), o.op.Value, packTok(t.slot, i, 0))
	case evQuantum:
		if e.done() {
			return
		}
		e.rotate()
		e.scheduleQuantum()
	default:
		panic(fmt.Sprintf("sim: dispatch of unknown event kind %d", ev.Kind))
	}
}

// onMemComplete is the memory system's completion hook: it unpacks the
// requester identity from the token and finishes the load or store. Called
// synchronously from mem dispatch — not via a fresh event — so completion
// ordering is exactly the protocol's delivery ordering.
func (e *engine) onMemComplete(tok int64, v uint32) {
	t := e.threads[tok>>tokSlotShift]
	i := int(tok>>tokOpShift) & (maxTokOps - 1)
	o := &t.ops[i]
	if o.op.Kind == prog.Load {
		e.finishLoad(t, i, int(tok&tokEpochMask), v, false)
		return
	}
	o.inFlight = false
	o.performed = true
	o.performedAt = e.q.Now()
	t.sbUsed--
	t.drainedStores++
	word := o.op.Word
	t.drainedByWord[word]++
	e.exec.WS[word] = append(e.exec.WS[word], o.op.ID)
	e.pump()
}

func (e *engine) done() bool {
	if e.doneFlag {
		return true
	}
	for _, t := range e.threads {
		if t.commit < len(t.ops) || t.sbUsed > 0 {
			return false
		}
		for i := range t.ops {
			if !t.ops[i].performed && t.ops[i].op.IsMemory() {
				return false
			}
		}
	}
	e.doneFlag = true
	return true
}

// addrOf returns the byte address of an op's shared word.
func (e *engine) addrOf(op prog.Op) uint64 { return e.r.prog.Layout.AddrOf(op.Word) }

func (e *engine) coreDelay(core int) eventq.Time {
	if len(e.r.plat.CoreDelay) == 0 {
		return 0
	}
	return e.r.plat.CoreDelay[core]
}

// pump advances every runnable thread: commits in order, issues into the
// window, starts eligible load performs and store drains.
func (e *engine) pump() {
	model := e.r.plat.Model
	for _, t := range e.threads {
		if !t.running || !t.started {
			continue
		}
		// Alternate issuing and committing to a fixpoint: issuing a store
		// lets the commit sweep buffer it, which can unblock further
		// issues within the window.
		for {
			before := t.next + t.commit
			for t.next < len(t.ops) && t.next-t.commit < e.r.plat.Window {
				t.ops[t.next].issued = true
				t.next++
			}
			e.commitSweep(t)
			if t.next+t.commit == before {
				break
			}
		}
		// Start eligible operations. The scan begins at the oldest op that
		// is not fully retired: committed stores may still be draining from
		// the store buffer, and committed is not performed for them.
		for t.low < t.next && t.ops[t.low].committed && t.ops[t.low].performed {
			t.low++
		}
		for i := t.low; i < t.next; i++ {
			o := &t.ops[i]
			if !o.issued || o.inFlight || o.performed {
				continue
			}
			switch o.op.Kind {
			case prog.Load:
				e.tryLoad(t, i, model)
			case prog.Store:
				if o.buffered {
					e.tryDrain(t, i, model)
				}
			}
		}
	}
}

// commitSweep retires operations in program order.
func (e *engine) commitSweep(t *thread) {
	for t.commit < len(t.ops) {
		o := &t.ops[t.commit]
		if !o.issued {
			return
		}
		switch o.op.Kind {
		case prog.Load:
			if !o.performed {
				return
			}
		case prog.Store:
			if !o.buffered {
				if t.sbUsed >= e.r.plat.SBDepth {
					return // store buffer full
				}
				o.buffered = true
				t.sbUsed++
			}
		case prog.Fence:
			// A fence retires only when every earlier store has drained
			// (earlier loads have performed by commit-order construction).
			if t.drainedStores < t.static[t.commit].prefixStores {
				return
			}
			t.committedFences++
			o.performed = true
		}
		o.committed = true
		o.committedAt = e.q.Now()
		t.commit++
	}
}

// tryLoad starts a load perform if its ordering constraints allow.
func (e *engine) tryLoad(t *thread, i int, model mcm.Model) {
	o := &t.ops[i]
	st := t.static[i]

	// Earlier fences must have retired.
	if t.committedFences < st.prefixFences {
		return
	}
	// Under SC (st→ld preserved) all earlier stores must be globally
	// visible before the load reads.
	if model.Ordered(prog.Store, prog.Load) && t.drainedStores < st.prefixStores {
		return
	}
	// Without squash machinery (RMO), same-word loads perform in order to
	// preserve coherence.
	if !e.squashActive && t.performedLdByWord[o.op.Word] < st.prefixSameWordLd {
		return
	}
	// Same-word stores: every earlier one must at least be buffered; the
	// youngest decides between forwarding and a memory read.
	if st.lastSameWordStore >= 0 {
		last := &t.ops[st.lastSameWordStore]
		if !last.buffered {
			return
		}
		if !last.performed {
			// Youngest same-word store still in the store buffer.
			if !e.r.plat.Atomicity.AllowsForwarding() {
				return // single-copy: wait for the drain
			}
			o.inFlight = true
			delay := 1 + e.coreDelay(t.core)
			e.q.PushAfter(delay, eventq.Event{Kind: evLoadFwd,
				Core: int32(t.slot), Op: int32(i), Arg: int64(o.epoch)})
			return
		}
		if t.drainedByWord[o.op.Word] < st.prefixSameWordSt {
			// An older same-word store is still undrained; reading memory
			// now could return a value older than program order allows.
			return
		}
	}
	// Perform against the coherent memory system.
	o.inFlight = true
	delay := e.coreDelay(t.core)
	if m := e.r.plat.IssueJitterMax; m > 0 {
		delay += eventq.Time(e.rng.Intn(m + 1))
	}
	if p := e.r.plat.LateLoadProb; p > 0 && e.rng.Float64() < p {
		delay += eventq.Time(e.rng.Intn(e.r.plat.LateLoadMax + 1))
	}
	e.q.PushAfter(delay, eventq.Event{Kind: evLoadIssue,
		Core: int32(t.slot), Op: int32(i), Arg: int64(o.epoch)})
}

// finishLoad binds a load's value unless the load was squashed while the
// access was in flight.
func (e *engine) finishLoad(t *thread, i, epoch int, v uint32, forwarded bool) {
	o := &t.ops[i]
	if o.epoch != epoch {
		return // squashed mid-flight; the replay owns the op now
	}
	o.inFlight = false
	o.performed = true
	o.performedAt = e.q.Now()
	o.value = v
	o.forwarded = forwarded
	e.exec.LoadValues[o.op.ID] = v
	e.exec.Forwarded[o.op.ID] = forwarded
	if !e.squashActive {
		t.performedLdByWord[o.op.Word]++
	}
	e.pump()
}

// tryDrain starts a store-buffer drain if the model's store order allows.
func (e *engine) tryDrain(t *thread, i int, model mcm.Model) {
	o := &t.ops[i]
	st := t.static[i]
	if model.Ordered(prog.Store, prog.Store) {
		// FIFO store buffer.
		if t.drainedStores < st.storeIndex {
			return
		}
	} else if t.drainedByWord[o.op.Word] < st.prefixSameWordSt {
		// Per-word FIFO always holds (coherence).
		return
	}
	o.inFlight = true
	delay := e.coreDelay(t.core)
	if m := e.r.plat.DrainDelayMax; m > 0 {
		delay += eventq.Time(e.rng.Intn(m + 1))
	}
	e.q.PushAfter(delay, eventq.Event{Kind: evStoreIssue, Core: int32(t.slot), Op: int32(i)})
}

// onInvalidate is the load-queue squash hook: performed-but-uncommitted
// loads whose line was invalidated replay, preserving the architectural
// ld→ld order — unless bug 2 skips the squash.
func (e *engine) onInvalidate(core int, lineBase uint64) {
	if !e.squashActive {
		return
	}
	if e.r.plat.Bugs.LQSquashSkip {
		return // bug 2: the LSQ ignores the invalidation
	}
	layout := e.r.prog.Layout
	line := lineBase / uint64(layout.LineSize)
	squashed := false
	for _, t := range e.threads {
		if t.core != core {
			continue
		}
		// A performed load only becomes stale in the ld→ld-appearance sense
		// when some older load has not yet performed: loads that performed
		// in program order already present a legal execution. Find the
		// oldest unperformed load; only younger performed loads on the
		// invalidated line need squashing.
		oldest := -1
		for i := t.commit; i < t.next; i++ {
			o := &t.ops[i]
			if o.op.Kind == prog.Load && !o.performed {
				oldest = i
				break
			}
		}
		if oldest < 0 {
			continue
		}
		for i := oldest + 1; i < t.next; i++ {
			o := &t.ops[i]
			if o.op.Kind != prog.Load || !o.performed || o.committed {
				continue
			}
			if layout.LineOfWord(o.op.Word) != line {
				continue
			}
			o.performed = false
			o.forwarded = false
			o.epoch++
			o.squashes++
			e.exec.Squashes++
			squashed = true
		}
	}
	if squashed {
		e.pump()
	}
}

// FormatTimeline renders an execution's timeline as tab-separated text:
// one line per operation with its mnemonic, perform/commit cycles, value,
// and squash count. Requires the Runner's Trace flag.
func FormatTimeline(w io.Writer, p *prog.Program, ex *Execution) error {
	if len(ex.Timeline) == 0 {
		return fmt.Errorf("sim: execution has no timeline (set Runner.Trace)")
	}
	if _, err := fmt.Fprintln(w, "op\tthread\tkind\tperformed\tcommitted\tvalue\tsquashes\tforwarded"); err != nil {
		return err
	}
	for _, ev := range ex.Timeline {
		op := p.OpByID(ev.OpID)
		if _, err := fmt.Fprintf(w, "%d\t%d\t%s\t%d\t%d\t%d\t%d\t%v\n",
			ev.OpID, op.Thread, op, ev.Performed, ev.Committed, ev.Value,
			ev.Squashes, ev.Forwarded); err != nil {
			return err
		}
	}
	return nil
}
