package mem

import (
	"math/rand"
	"testing"

	"mtracecheck/internal/eventq"
)

// bench adapts the token-based System API back to callback style for tests:
// each read/write claims a token, and the completion hook routes the value to
// the registered callback. It also wires the queue's handler to the system's
// dispatch, standing in for the engine's jump table.
type bench struct {
	q    *eventq.Queue
	s    *System
	cbs  map[int64]func(uint32)
	next int64
}

func newBench(q *eventq.Queue, s *System) *bench {
	b := &bench{q: q, s: s, cbs: map[int64]func(uint32){}}
	q.SetHandler(s.Dispatch)
	s.SetCompleteHook(func(tok int64, v uint32) {
		cb := b.cbs[tok]
		delete(b.cbs, tok)
		cb(v)
	})
	return b
}

func (b *bench) read(core int, addr uint64, done func(uint32)) {
	tok := b.next
	b.next++
	b.cbs[tok] = done
	b.s.Read(core, addr, tok)
}

func (b *bench) write(core int, addr uint64, val uint32, done func()) {
	tok := b.next
	b.next++
	b.cbs[tok] = func(uint32) { done() }
	b.s.Write(core, addr, val, tok)
}

// newSys builds a system for tests; jitter 0 keeps scenarios deterministic
// unless a test wants variability.
func newSys(t *testing.T, cores int, cfg Config) (*eventq.Queue, *System, *bench) {
	t.Helper()
	q := eventq.New()
	s, err := NewSystem(q, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	_ = cores
	return q, s, newBench(q, s)
}

func drain(t *testing.T, q *eventq.Queue, s *System) {
	t.Helper()
	q.Drain(2_000_000)
	if s.Outstanding() != 0 {
		t.Fatalf("deadlock: %d operations outstanding with empty queue", s.Outstanding())
	}
}

func TestReadInitialValue(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Jitter = 0
	q, s, b := newSys(t, 1, cfg)
	var got uint32 = 99
	b.read(0, 0x1000, func(v uint32) { got = v })
	drain(t, q, s)
	if got != 0 {
		t.Errorf("initial read = %d, want 0", got)
	}
}

func TestWriteThenRead(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Jitter = 0
	q, s, b := newSys(t, 1, cfg)
	var got uint32
	b.write(0, 0x1000, 7, func() {
		b.read(0, 0x1000, func(v uint32) { got = v })
	})
	drain(t, q, s)
	if got != 7 {
		t.Errorf("read after write = %d, want 7", got)
	}
	if s.PeekWord(0x1000) != 7 {
		t.Errorf("PeekWord = %d, want 7", s.PeekWord(0x1000))
	}
}

func TestCrossCoreVisibility(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	q, s, b := newSys(t, 2, cfg)
	var got uint32
	b.write(0, 0x2000, 42, func() {
		b.read(1, 0x2000, func(v uint32) { got = v })
	})
	drain(t, q, s)
	if got != 42 {
		t.Errorf("cross-core read = %d, want 42", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSameLineDifferentWords(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	q, s, b := newSys(t, 2, cfg)
	var a, bb uint32
	b.write(0, 0x3000, 1, func() {
		b.write(1, 0x3004, 2, func() {
			b.read(0, 0x3004, func(v uint32) { a = v })
			b.read(1, 0x3000, func(v uint32) { bb = v })
		})
	})
	drain(t, q, s)
	if a != 2 || bb != 1 {
		t.Errorf("word values = %d,%d; want 2,1", a, bb)
	}
}

// TestSerializedOracle issues fully serialized random traffic and demands
// exact last-writer semantics — the strongest protocol correctness check.
func TestSerializedOracle(t *testing.T) {
	cfgs := map[string]Config{
		"default": DefaultConfig(4),
		"tiny":    TinyCacheConfig(4), // forces evictions, PutM, WBAck, silent drops
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cfg.Jitter = 3
			q, s, b := newSys(t, 4, cfg)
			rng := rand.New(rand.NewSource(99))
			expect := map[uint64]uint32{}
			addrs := make([]uint64, 24)
			for i := range addrs {
				addrs[i] = 0x8000 + uint64(i)*4 // 6 lines with 4 words each... (16-word lines: 2 lines)
			}
			for i := 0; i < 3000; i++ {
				core := rng.Intn(4)
				addr := addrs[rng.Intn(len(addrs))]
				if rng.Intn(2) == 0 {
					val := uint32(i + 1)
					b.write(core, addr, val, func() {})
					expect[addr] = val
				} else {
					want := expect[addr]
					b.read(core, addr, func(v uint32) {
						if v != want {
							t.Errorf("serialized read of %#x = %d, want %d", addr, v, want)
						}
					})
				}
				drain(t, q, s) // serialize: complete before next op
			}
			if err := s.CheckInvariants(); err != nil {
				t.Error(err)
			}
			for addr, want := range expect {
				if got := s.PeekWord(addr); got != want {
					t.Errorf("final %#x = %d, want %d", addr, got, want)
				}
			}
		})
	}
}

// TestConcurrentTrafficCompletes floods the system with concurrent requests
// and checks that everything completes, values are plausible (every read
// returns the initial value or some written value for that address), and
// invariants hold afterwards.
func TestConcurrentTrafficCompletes(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		cfg := TinyCacheConfig(4)
		cfg.Jitter = 8
		q := eventq.New()
		s, err := NewSystem(q, cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		b := newBench(q, s)
		rng := rand.New(rand.NewSource(seed * 7))
		written := map[uint64]map[uint32]bool{}
		type obs struct {
			addr uint64
			val  uint32
		}
		var reads []obs
		for i := 0; i < 2000; i++ {
			core := rng.Intn(4)
			addr := 0x8000 + uint64(rng.Intn(16))*4
			if rng.Intn(2) == 0 {
				val := uint32(i + 1)
				if written[addr] == nil {
					written[addr] = map[uint32]bool{}
				}
				written[addr][val] = true
				b.write(core, addr, val, func() {})
			} else {
				addr := addr
				b.read(core, addr, func(v uint32) { reads = append(reads, obs{addr, v}) })
			}
		}
		q.Drain(20_000_000)
		if s.Outstanding() != 0 {
			t.Fatalf("seed %d: deadlock, %d outstanding", seed, s.Outstanding())
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, r := range reads {
			if r.val == 0 {
				continue // initial value
			}
			if !written[r.addr][r.val] {
				t.Fatalf("seed %d: read of %#x returned %d, never written there", seed, r.addr, r.val)
			}
		}
	}
}

func TestInvalHookFiresOnRemoteWrite(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	q, s, b := newSys(t, 2, cfg)
	var hooks []int
	s.SetInvalHook(func(core int, base uint64) { hooks = append(hooks, core) })
	// Core 0 and 1 both read (line Shared), then core 1 writes: core 0 must
	// be notified.
	b.read(0, 0x4000, func(uint32) {})
	b.read(1, 0x4000, func(uint32) {})
	drain(t, q, s)
	hooks = nil
	b.write(1, 0x4000, 5, func() {})
	drain(t, q, s)
	found := false
	for _, c := range hooks {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("invalidation hook not delivered to core 0; hooks=%v", hooks)
	}
}

func TestInvalHookFiresOnFwdGetM(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	q, s, b := newSys(t, 2, cfg)
	var hooks []int
	s.SetInvalHook(func(core int, base uint64) { hooks = append(hooks, core) })
	b.write(0, 0x5000, 1, func() {}) // core 0 owns M
	drain(t, q, s)
	hooks = nil
	b.write(1, 0x5000, 2, func() {}) // FwdGetM to core 0
	drain(t, q, s)
	if len(hooks) != 1 || hooks[0] != 0 {
		t.Errorf("hooks = %v, want [0]", hooks)
	}
}

// TestBug1SuppressesHook sets up the S→M transient race: both cores share
// the line, then both upgrade concurrently. The loser receives an Inv while
// its GetM is outstanding; with bug 1 its squash notification is swallowed.
func TestBug1SuppressesHook(t *testing.T) {
	run := func(bugs Bugs) (hookCount int) {
		cfg := DefaultConfig(2)
		cfg.Jitter = 0
		cfg.Bugs = bugs
		q := eventq.New()
		s, _ := NewSystem(q, cfg, rand.New(rand.NewSource(1)))
		b := newBench(q, s)
		s.SetInvalHook(func(core int, base uint64) { hookCount++ })
		b.read(0, 0x6000, func(uint32) {})
		b.read(1, 0x6000, func(uint32) {})
		q.Drain(0)
		// Concurrent upgrades: one wins, the other is invalidated mid-upgrade.
		b.write(0, 0x6000, 1, func() {})
		b.write(1, 0x6000, 2, func() {})
		q.Drain(0)
		if s.Outstanding() != 0 {
			t.Fatal("deadlock in upgrade race")
		}
		return hookCount
	}
	correct := run(Bugs{})
	buggy := run(Bugs{StaleSMInv: true})
	if buggy >= correct {
		t.Errorf("bug 1 did not suppress notifications: correct=%d buggy=%d", correct, buggy)
	}
}

// TestBug3Deadlocks drives eviction/write races with bug 3 enabled until a
// protocol deadlock appears, and verifies the same traffic completes with
// the bug disabled.
func TestBug3Deadlocks(t *testing.T) {
	traffic := func(bugs Bugs, seed int64) (outstanding int) {
		cfg := TinyCacheConfig(4)
		cfg.Jitter = 8
		cfg.Bugs = bugs
		q := eventq.New()
		s, _ := NewSystem(q, cfg, rand.New(rand.NewSource(seed)))
		b := newBench(q, s)
		rng := rand.New(rand.NewSource(seed))
		// Many lines mapping onto 8 sets force dirty evictions; concurrent
		// writers force forwards that race the writebacks.
		for i := 0; i < 1500; i++ {
			core := rng.Intn(4)
			addr := 0x8000 + uint64(rng.Intn(64))*64 // line-granular, 64 lines over 8 sets
			if rng.Intn(3) == 0 {
				b.read(core, addr, func(uint32) {})
			} else {
				b.write(core, addr, uint32(i+1), func() {})
			}
		}
		q.Drain(50_000_000)
		return s.Outstanding()
	}
	deadlocked := false
	for seed := int64(1); seed <= 10; seed++ {
		if traffic(Bugs{}, seed) != 0 {
			t.Fatalf("seed %d: bug-free protocol deadlocked", seed)
		}
		if traffic(Bugs{WBRaceDeadlock: true}, seed) != 0 {
			deadlocked = true
		}
	}
	if !deadlocked {
		t.Error("bug 3 never produced a deadlock across 10 seeds")
	}
}

func TestReset(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	q, s, b := newSys(t, 2, cfg)
	b.write(0, 0x7000, 9, func() {})
	drain(t, q, s)
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	var got uint32 = 99
	b.read(1, 0x7000, func(v uint32) { got = v })
	drain(t, q, s)
	if got != 0 {
		t.Errorf("read after Reset = %d, want 0", got)
	}
}

func TestResetRejectsInFlight(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Jitter = 0
	_, s, b := newSys(t, 1, cfg)
	b.read(0, 0x1000, func(uint32) {})
	if err := s.Reset(); err == nil {
		t.Error("Reset accepted in-flight operation")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Cores: 1, LineSize: 64, WordSize: 0, Sets: 1, Ways: 1},
		{Cores: 1, LineSize: 63, WordSize: 4, Sets: 1, Ways: 1},
		{Cores: 1, LineSize: 64, WordSize: 4, Sets: 0, Ways: 1},
		{Cores: 1, LineSize: 64, WordSize: 4, Sets: 1, Ways: 1, NetLat: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Jitter = 0
	q, s, b := newSys(t, 2, cfg)
	b.write(0, 0x9000, 1, func() {})
	drain(t, q, s)
	b.read(0, 0x9000, func(uint32) {})
	drain(t, q, s)
	st := s.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Errorf("Loads/Stores = %d/%d, want 1/1", st.Loads, st.Stores)
	}
	if st.Misses == 0 || st.Hits == 0 || st.Messages == 0 {
		t.Errorf("expected nonzero misses/hits/messages: %+v", st)
	}
}

// TestDirectMappedOracle repeats the serialized last-writer oracle on a
// direct-mapped (1-way) cache, maximizing conflict evictions.
func TestDirectMappedOracle(t *testing.T) {
	cfg := TinyCacheConfig(4)
	cfg.Ways = 1
	cfg.Jitter = 5
	q, s, b := newSys(t, 4, cfg)
	rng := rand.New(rand.NewSource(123))
	expect := map[uint64]uint32{}
	for i := 0; i < 2000; i++ {
		core := rng.Intn(4)
		addr := 0x8000 + uint64(rng.Intn(32))*64 // 32 distinct lines over 8 direct-mapped sets
		if rng.Intn(2) == 0 {
			val := uint32(i + 1)
			b.write(core, addr, val, func() {})
			expect[addr] = val
		} else {
			want := expect[addr]
			b.read(core, addr, func(v uint32) {
				if v != want {
					t.Errorf("read %#x = %d, want %d", addr, v, want)
				}
			})
		}
		drain(t, q, s)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if s.Stats().Writebacks == 0 {
		t.Error("direct-mapped stress produced no writebacks")
	}
}

// TestPoolsReachSteadyState runs two identical bursts of traffic with a Reset
// between them and checks the second burst allocates (almost) nothing: every
// pool — message slots, line buffers, MSHRs, pending replays — must have
// reached capacity during the first burst.
func TestPoolsReachSteadyState(t *testing.T) {
	cfg := TinyCacheConfig(4)
	cfg.Jitter = 4
	q, s, b := newSys(t, 4, cfg)
	burst := func() {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			core := rng.Intn(4)
			addr := 0x8000 + uint64(rng.Intn(32))*4
			if rng.Intn(2) == 0 {
				b.write(core, addr, uint32(i+1), func() {})
			} else {
				b.read(core, addr, func(uint32) {})
			}
		}
		q.Drain(0)
		if s.Outstanding() != 0 {
			t.Fatal("burst deadlocked")
		}
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
		q.Reset()
	}
	burst() // warm every pool
	allocs := testing.AllocsPerRun(3, burst)
	// The bench harness's token→callback map and closures account for the
	// small remainder; the memory system itself must be allocation-free.
	if allocs > 1100 {
		t.Errorf("steady-state burst allocated %.0f times; pools not reused", allocs)
	}
}
