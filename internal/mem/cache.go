package mem

import (
	"fmt"

	"mtracecheck/internal/eventq"
)

// lineState is a cache line's MESI stable state.
type lineState uint8

const (
	stateI lineState = iota
	stateS
	stateE
	stateM
)

func (s lineState) String() string {
	switch s {
	case stateI:
		return "I"
	case stateS:
		return "S"
	case stateE:
		return "E"
	case stateM:
		return "M"
	default:
		return fmt.Sprintf("lineState(%d)", uint8(s))
	}
}

// cacheLine is one L1 way.
type cacheLine struct {
	base    uint64
	state   lineState
	data    []uint32
	lastUse int64 // monotonic use counter for LRU
	pending bool  // reserved by an outstanding mshr
}

// memReq is one load or store presented to the cache. tok is the caller's
// completion token, handed back through the System's completion hook.
type memReq struct {
	isWrite bool
	addr    uint64
	val     uint32
	tok     int64
}

// mshr tracks one outstanding miss or upgrade for a line, including every
// request that arrived for the line while the transaction was in flight.
// MSHRs are pooled per cache; queued keeps its capacity across reuse.
type mshr struct {
	base     uint64
	set, way int
	wantM    bool // some queued request needs write permission
	queued   []memReq
}

// cache is one core's private L1 controller.
type cache struct {
	sys        *System
	id         int
	sets       [][]cacheLine
	mshrs      map[uint64]*mshr
	mshrFree   []*mshr
	wb         map[uint64][]uint32 // writeback buffer: PutM sent, WBAck pending
	stalled    []memReq            // requests waiting for a free way
	stalledAlt []memReq            // double buffer for retryStalled
	useCtr     int64
}

func newCache(s *System, id int) *cache {
	c := &cache{sys: s, id: id, mshrs: make(map[uint64]*mshr), wb: make(map[uint64][]uint32)}
	c.sets = make([][]cacheLine, s.cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, s.cfg.Ways)
	}
	return c
}

func (c *cache) reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			ln := &c.sets[i][j]
			// Keep the line buffer's capacity: refills reuse it.
			*ln = cacheLine{data: ln.data[:0]}
		}
	}
	for base, m := range c.mshrs {
		c.freeMSHR(m)
		delete(c.mshrs, base)
	}
	for base, buf := range c.wb {
		c.sys.putLineBuf(buf)
		delete(c.wb, base)
	}
	c.stalled = c.stalled[:0]
	c.useCtr = 0
}

// newMSHR claims an MSHR from the pool.
func (c *cache) newMSHR(base uint64, set, way int, wantM bool) *mshr {
	var m *mshr
	if n := len(c.mshrFree); n > 0 {
		m = c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
	} else {
		m = &mshr{}
	}
	m.base, m.set, m.way, m.wantM = base, set, way, wantM
	m.queued = m.queued[:0]
	return m
}

func (c *cache) freeMSHR(m *mshr) {
	m.queued = m.queued[:0]
	c.mshrFree = append(c.mshrFree, m)
}

func (c *cache) setIndex(base uint64) int {
	return int((base / uint64(c.sys.cfg.LineSize)) % uint64(c.sys.cfg.Sets))
}

// lookup returns the resident line for base, or nil.
func (c *cache) lookup(base uint64) *cacheLine {
	set := c.sets[c.setIndex(base)]
	for i := range set {
		if set[i].base == base && (set[i].state != stateI || set[i].pending) {
			return &set[i]
		}
	}
	return nil
}

func (c *cache) touch(ln *cacheLine) {
	c.useCtr++
	ln.lastUse = c.useCtr
}

// access presents a load or store to the cache.
func (c *cache) access(req memReq) {
	base := c.sys.lineBase(req.addr)

	// Coalesce into an existing transaction for the line.
	if m, ok := c.mshrs[base]; ok {
		m.queued = append(m.queued, req)
		if req.isWrite && !m.wantM {
			// The original transaction was read-only; an upgrade will be
			// issued when the fill arrives (see fill).
			m.wantM = true
		}
		return
	}

	ln := c.lookup(base)
	if ln != nil && ln.state != stateI {
		c.touch(ln)
		if !req.isWrite {
			// Load hit: data returns after tag latency, with a re-check at
			// return time (see replayLoadHit).
			c.sys.stats.Hits++
			c.sys.q.PushAfter(c.sys.cfg.TagLat, eventq.Event{
				Kind: kindLoadHit, Core: int32(c.id), Op: c.sys.newPend(req)})
			return
		}
		switch ln.state {
		case stateE, stateM:
			// Store hit with write permission (silent E→M upgrade at
			// replay time, see replayStoreHit).
			c.sys.stats.Hits++
			c.sys.q.PushAfter(c.sys.cfg.TagLat, eventq.Event{
				Kind: kindStoreHit, Core: int32(c.id), Op: c.sys.newPend(req)})
			return
		case stateS:
			// Upgrade: keep the Shared data resident, request M.
			c.sys.stats.Misses++
			m := c.newMSHR(base, c.setIndex(base), c.wayOf(ln), true)
			m.queued = append(m.queued, req)
			ln.pending = true
			c.mshrs[base] = m
			c.sys.send(-1, message{typ: msgGetM, from: c.id, base: base})
			return
		}
	}

	// Miss: reserve a way, evicting if necessary.
	c.sys.stats.Misses++
	set := c.setIndex(base)
	way := c.pickVictim(set)
	if way < 0 {
		c.sys.stats.Stalls++
		c.stalled = append(c.stalled, req)
		return
	}
	c.evict(set, way)
	ln = &c.sets[set][way]
	*ln = cacheLine{base: base, state: stateI, pending: true, data: ln.data[:0]}
	c.touch(ln)
	m := c.newMSHR(base, set, way, req.isWrite)
	m.queued = append(m.queued, req)
	c.mshrs[base] = m
	typ := msgGetS
	if req.isWrite {
		typ = msgGetM
	}
	c.sys.send(-1, message{typ: typ, from: c.id, base: base})
}

// replayLoadHit completes a load hit after tag latency. The line may have
// been invalidated between tag access and data return; real hardware replays
// the access, and so do we.
func (c *cache) replayLoadHit(pslot int32) {
	req := c.sys.takePend(pslot)
	base := c.sys.lineBase(req.addr)
	if cur := c.lookup(base); cur != nil && cur.state != stateI && cur.base == base {
		c.sys.finish(false, req.tok, cur.data[c.sys.wordIndex(req.addr)])
	} else {
		c.access(req)
	}
}

// replayStoreHit completes a store hit after tag latency, re-checking that
// write permission survived and upgrading E→M silently.
func (c *cache) replayStoreHit(pslot int32) {
	req := c.sys.takePend(pslot)
	base := c.sys.lineBase(req.addr)
	if cur := c.lookup(base); cur != nil && (cur.state == stateE || cur.state == stateM) {
		cur.state = stateM
		cur.data[c.sys.wordIndex(req.addr)] = req.val
		c.sys.finish(true, req.tok, 0)
	} else {
		c.access(req)
	}
}

func (c *cache) wayOf(ln *cacheLine) int {
	set := c.sets[c.setIndex(ln.base)]
	for i := range set {
		if &set[i] == ln {
			return i
		}
	}
	panic("mem: wayOf on foreign line")
}

// pickVictim returns an evictable way in the set: an invalid way if any,
// else the least recently used non-pending way, else -1.
func (c *cache) pickVictim(set int) int {
	best, bestUse := -1, int64(1<<62)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.pending {
			continue
		}
		if ln.state == stateI {
			return i
		}
		if ln.lastUse < bestUse {
			best, bestUse = i, ln.lastUse
		}
	}
	return best
}

// evict removes the line in (set, way); dirty lines go to the writeback
// buffer and a PutM is sent. Clean lines are dropped silently (MESI).
func (c *cache) evict(set, way int) {
	ln := &c.sets[set][way]
	if ln.state == stateM {
		data := append(c.sys.getLineBuf(), ln.data...)
		c.wb[ln.base] = data
		c.sys.stats.Writebacks++
		c.sys.send(-1, message{typ: msgPutM, from: c.id, base: ln.base, data: data, dirty: true})
	}
	ln.state = stateI
	ln.data = ln.data[:0]
}

// retryStalled re-presents stalled requests after a way freed up. The two
// stalled buffers ping-pong so re-stalled requests land in the other one.
func (c *cache) retryStalled() {
	if len(c.stalled) == 0 {
		return
	}
	reqs := c.stalled
	c.stalled, c.stalledAlt = c.stalledAlt[:0], reqs
	for _, r := range reqs {
		c.access(r)
	}
}

// receive handles a protocol message addressed to this cache.
func (c *cache) receive(m message) {
	switch m.typ {
	case msgDataS, msgDataE, msgDataM:
		c.fill(m)
	case msgInv:
		c.invalidate(m.base, true)
		c.sys.send(-1, message{typ: msgInvAck, from: c.id, base: m.base})
	case msgFwdGetS:
		c.forward(m.base, false)
	case msgFwdGetM:
		c.forward(m.base, true)
	case msgWBAck:
		if buf, ok := c.wb[m.base]; ok {
			c.sys.putLineBuf(buf)
			delete(c.wb, m.base)
		}
	default:
		panic(fmt.Sprintf("mem: cache %d received %v", c.id, m))
	}
}

// invalidate drops any copy of the line and notifies the core unless bug 1
// suppresses the notification for lines with an outstanding upgrade.
func (c *cache) invalidate(base uint64, mayBeSMTransient bool) {
	notify := true
	if mayBeSMTransient && c.sys.cfg.Bugs.StaleSMInv {
		if m, ok := c.mshrs[base]; ok && m.wantM {
			// Bug 1: invalidation during the S→M transient fails to squash
			// the core's already-performed loads.
			notify = false
		}
	}
	if ln := c.lookup(base); ln != nil && ln.state != stateI {
		ln.state = stateI
		ln.data = ln.data[:0]
		c.sys.stats.Invalidations++
	}
	if notify && c.sys.invalHook != nil {
		c.sys.invalHook(c.id, base)
	}
}

// forward services FwdGetS/FwdGetM: supply the line to the directory from
// the live copy or the writeback buffer.
func (c *cache) forward(base uint64, isGetM bool) {
	if ln := c.lookup(base); ln != nil && (ln.state == stateE || ln.state == stateM) {
		dirty := ln.state == stateM
		if isGetM {
			// Compose the response (copying the line data into the message
			// slot) before invalidating, but post it after the squash hook
			// runs, preserving hook-before-send ordering.
			slot := c.sys.newMsg(message{typ: msgOwnerData, from: c.id, base: base,
				data: ln.data, dirty: dirty})
			ln.state = stateI
			ln.data = ln.data[:0]
			c.sys.stats.Invalidations++
			if c.sys.invalHook != nil {
				c.sys.invalHook(c.id, base)
			}
			c.sys.post(-1, slot)
		} else {
			ln.state = stateS
			c.sys.send(-1, message{typ: msgOwnerData, from: c.id, base: base, data: ln.data,
				dirty: dirty, keepsCopy: true})
		}
		return
	}
	if data, ok := c.wb[base]; ok {
		if c.sys.cfg.Bugs.WBRaceDeadlock {
			// Bug 3: the owner ignores forwarded requests racing with its
			// writeback; the directory waits forever.
			return
		}
		c.sys.send(-1, message{typ: msgOwnerData, from: c.id, base: base, data: data, dirty: true})
		return
	}
	// Silently dropped clean line (E→I): memory is up to date.
	if isGetM && c.sys.invalHook != nil {
		c.sys.invalHook(c.id, base)
	}
	c.sys.send(-1, message{typ: msgOwnerNoData, from: c.id, base: base})
}

// fill completes an outstanding transaction with data and permission.
func (c *cache) fill(m message) {
	tx, ok := c.mshrs[m.base]
	if !ok {
		panic(fmt.Sprintf("mem: cache %d fill for line %#x without mshr", c.id, m.base))
	}
	ln := &c.sets[tx.set][tx.way]
	if ln.base != m.base {
		panic(fmt.Sprintf("mem: cache %d fill slot holds %#x, want %#x", c.id, ln.base, m.base))
	}
	if cap(ln.data) >= len(m.data) {
		ln.data = ln.data[:len(m.data)]
	} else {
		ln.data = make([]uint32, len(m.data))
	}
	copy(ln.data, m.data)
	switch m.typ {
	case msgDataS:
		ln.state = stateS
	case msgDataE:
		ln.state = stateE
	case msgDataM:
		ln.state = stateM
	}
	c.touch(ln)
	// Acknowledge the fill so the directory can unblock the line.
	c.sys.send(-1, message{typ: msgFillAck, from: c.id, base: m.base})

	// Replay queued requests in arrival order. A write encountered while
	// holding only Shared permission re-issues the transaction as GetM.
	for len(tx.queued) > 0 {
		req := tx.queued[0]
		idx := c.sys.wordIndex(req.addr)
		if req.isWrite {
			if ln.state == stateS {
				c.sys.send(-1, message{typ: msgGetM, from: c.id, base: m.base})
				return // mshr stays; remaining requests replay on DataM
			}
			ln.state = stateM
			ln.data[idx] = req.val
		}
		// Pop by copy-down so the queue keeps its backing array for reuse.
		n := copy(tx.queued, tx.queued[1:])
		tx.queued = tx.queued[:n]
		v := ln.data[idx]
		isWrite := int32(0)
		if req.isWrite {
			v = 0
			isWrite = 1
		}
		c.sys.q.PushAfter(c.sys.cfg.TagLat, eventq.Event{
			Kind: kindComplete, Core: isWrite, Op: int32(v), Arg: req.tok})
	}
	ln.pending = false
	c.freeMSHR(tx)
	delete(c.mshrs, m.base)
	c.retryStalled()
}
