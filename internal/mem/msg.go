package mem

import "fmt"

// msgType enumerates coherence protocol messages.
type msgType uint8

const (
	// Cache → directory requests.
	msgGetS msgType = iota // read permission
	msgGetM                // write permission
	msgPutM                // writeback of a dirty line (carries data)

	// Directory → cache.
	msgFwdGetS // forward: send line to directory, downgrade to S
	msgFwdGetM // forward: send line to directory, invalidate
	msgInv     // invalidate shared copy
	msgDataS   // fill with Shared permission
	msgDataE   // fill with Exclusive permission
	msgDataM   // fill with Modified permission
	msgWBAck   // writeback acknowledged

	// Cache → directory completions.
	msgInvAck      // invalidation performed
	msgOwnerData   // response to FwdGet*: line data (possibly dirty)
	msgOwnerNoData // response to FwdGet*: line was silently dropped (clean)
	msgFillAck     // grantee consumed a Data* fill; directory may unblock
)

var msgNames = [...]string{
	msgGetS: "GetS", msgGetM: "GetM", msgPutM: "PutM",
	msgFwdGetS: "FwdGetS", msgFwdGetM: "FwdGetM", msgInv: "Inv",
	msgDataS: "DataS", msgDataE: "DataE", msgDataM: "DataM", msgWBAck: "WBAck",
	msgInvAck: "InvAck", msgOwnerData: "OwnerData", msgOwnerNoData: "OwnerNoData",
	msgFillAck: "FillAck",
}

func (t msgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("msgType(%d)", uint8(t))
}

// message is one protocol message in flight.
type message struct {
	typ  msgType
	from int    // sending cache ID; -1 for the directory
	base uint64 // line base address
	data []uint32
	// dirty marks OwnerData carrying modified data; keepsCopy marks
	// OwnerData from an owner that retains a Shared copy.
	dirty     bool
	keepsCopy bool
}

func (m message) String() string {
	return fmt.Sprintf("%s[from=%d line=%#x]", m.typ, m.from, m.base)
}
