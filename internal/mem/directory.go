package mem

import (
	"fmt"
	"sort"

	"mtracecheck/internal/eventq"
)

// dirState is the directory's stable view of one line.
type dirState uint8

const (
	dirU  dirState = iota // uncached: memory is the only copy
	dirS                  // shared by one or more caches, memory clean
	dirEM                 // owned (Exclusive or Modified) by one cache
)

func (s dirState) String() string {
	switch s {
	case dirU:
		return "U"
	case dirS:
		return "S"
	case dirEM:
		return "EM"
	default:
		return fmt.Sprintf("dirState(%d)", uint8(s))
	}
}

// dirLine is the directory entry for one line. A busy entry is servicing a
// transaction that awaits owner data, invalidation acks, or the grantee's
// fill acknowledgment; further requests queue FIFO behind it (blocking
// directory). Holding the line busy until the fill is consumed guarantees a
// forwarded request can never observe an owner whose grant is still in
// flight.
type dirLine struct {
	state      dirState
	owner      int
	sharers    map[int]bool
	busy       bool
	cur        message // request in service while busy
	acksNeeded int
	queue      []message
}

// directory is the single home node of all lines.
type directory struct {
	sys   *System
	lines map[uint64]*dirLine
	fan   []int // scratch for deterministic invalidation fan-out
}

func newDirectory(s *System) *directory {
	return &directory{sys: s, lines: make(map[uint64]*dirLine)}
}

// reset rewinds every entry to the uncached state in place, keeping the
// entries (and their sharer maps and queues) for reuse. Entry resets are
// independent, so map iteration order does not matter.
func (d *directory) reset() {
	for _, l := range d.lines {
		clear(l.sharers)
		l.state = dirU
		l.owner = 0
		l.busy = false
		l.cur = message{}
		l.acksNeeded = 0
		l.queue = l.queue[:0]
	}
}

func (d *directory) line(base uint64) *dirLine {
	l, ok := d.lines[base]
	if !ok {
		l = &dirLine{state: dirU, sharers: make(map[int]bool)}
		d.lines[base] = l
	}
	return l
}

func (d *directory) busyLines() int {
	n := 0
	for _, l := range d.lines {
		if l.busy {
			n++
		}
	}
	return n
}

// receive dispatches a message arriving at the directory.
func (d *directory) receive(m message) {
	l := d.line(m.base)
	switch m.typ {
	case msgGetS, msgGetM, msgPutM:
		if l.busy {
			// The message's data lives in a message slot that is recycled
			// once delivery returns; a queued message outlives that, so it
			// gets its own pooled copy (returned in unblock).
			if m.data != nil {
				m.data = append(d.sys.getLineBuf(), m.data...)
			}
			l.queue = append(l.queue, m)
			return
		}
		d.service(l, m)
	case msgInvAck:
		if !l.busy || l.acksNeeded <= 0 {
			panic(fmt.Sprintf("mem: unexpected InvAck for line %#x", m.base))
		}
		l.acksNeeded--
		if l.acksNeeded == 0 {
			// All sharers gone: grant M to the requester from memory.
			req := l.cur.from
			clear(l.sharers)
			l.state = dirEM
			l.owner = req
			d.grant(req, msgDataM, m.base, 0)
		}
	case msgOwnerData, msgOwnerNoData:
		if !l.busy {
			panic(fmt.Sprintf("mem: owner response for idle line %#x", m.base))
		}
		if m.typ == msgOwnerData && m.dirty {
			copy(d.sys.memLine(m.base), m.data)
		}
		req := l.cur.from
		switch l.cur.typ {
		case msgGetS:
			l.state = dirS
			clear(l.sharers)
			l.sharers[req] = true
			if m.keepsCopy {
				l.sharers[m.from] = true
			}
			d.grant(req, msgDataS, m.base, 0)
		case msgGetM:
			l.state = dirEM
			l.owner = req
			clear(l.sharers)
			d.grant(req, msgDataM, m.base, 0)
		default:
			panic(fmt.Sprintf("mem: owner response while servicing %v", l.cur.typ))
		}
	case msgFillAck:
		if !l.busy || l.cur.from != m.from {
			panic(fmt.Sprintf("mem: unexpected FillAck from %d for line %#x", m.from, m.base))
		}
		d.unblock(l)
	default:
		panic(fmt.Sprintf("mem: directory received %v", m))
	}
}

// grant sends a fill carrying the current memory copy of the line, after
// the directory occupancy plus any extra (memory) latency. The memory data
// is snapshotted into the message slot now; the message-count bump and the
// network jitter draw happen when the kindGrant event fires (the moment the
// grant actually leaves the directory), matching the hop's send semantics.
func (d *directory) grant(to int, typ msgType, base uint64, extra int) {
	slot := d.sys.newMsg(message{typ: typ, from: -1, base: base, data: d.sys.memLine(base)})
	delay := d.sys.cfg.DirLat + eventq.Time(extra)
	d.sys.q.PushAfter(delay, eventq.Event{Kind: kindGrant, Core: int32(to), Op: slot})
}

// service handles one request on an idle line. GetS/GetM always leave the
// line busy: either awaiting an owner response / invalidation acks, or (once
// a grant is sent) awaiting the grantee's FillAck.
func (d *directory) service(l *dirLine, m message) {
	switch m.typ {
	case msgGetS:
		l.busy = true
		l.cur = m
		switch l.state {
		case dirU:
			l.state = dirEM
			l.owner = m.from
			d.grant(m.from, msgDataE, m.base, int(d.sys.cfg.MemLat))
		case dirS:
			l.sharers[m.from] = true
			d.grant(m.from, msgDataS, m.base, 0)
		case dirEM:
			if l.owner == m.from {
				// The owner silently dropped a clean line and re-requested:
				// memory is current.
				d.grant(m.from, msgDataE, m.base, 0)
				return
			}
			d.sys.send(l.owner, message{typ: msgFwdGetS, from: -1, base: m.base})
		}
	case msgGetM:
		l.busy = true
		l.cur = m
		switch l.state {
		case dirU:
			l.state = dirEM
			l.owner = m.from
			d.grant(m.from, msgDataM, m.base, int(d.sys.cfg.MemLat))
		case dirS:
			others := d.fan[:0]
			for s := range l.sharers {
				if s != m.from {
					others = append(others, s)
				}
			}
			// Deterministic fan-out order: map iteration order must not
			// influence message sequencing (and hence simulated timing).
			sort.Ints(others)
			d.fan = others
			if len(others) == 0 {
				l.state = dirEM
				l.owner = m.from
				clear(l.sharers)
				d.grant(m.from, msgDataM, m.base, 0)
				return
			}
			l.acksNeeded = len(others)
			for _, s := range others {
				d.sys.send(s, message{typ: msgInv, from: -1, base: m.base})
			}
		case dirEM:
			if l.owner == m.from {
				// Owner silently dropped clean line, now writing.
				d.grant(m.from, msgDataM, m.base, 0)
				return
			}
			d.sys.send(l.owner, message{typ: msgFwdGetM, from: -1, base: m.base})
		}
	case msgPutM:
		if l.state == dirEM && l.owner == m.from {
			copy(d.sys.memLine(m.base), m.data)
			l.state = dirU
			l.owner = 0
			clear(l.sharers)
		}
		// Stale PutM (ownership already transferred via a forward): the data
		// was already supplied to the directory by the writeback buffer.
		d.sys.send(m.from, message{typ: msgWBAck, from: -1, base: m.base})
	}
}

// unblock finishes the busy transaction and drains queued requests until the
// line blocks again or the queue empties.
func (d *directory) unblock(l *dirLine) {
	l.busy = false
	l.cur = message{}
	l.acksNeeded = 0
	for !l.busy && len(l.queue) > 0 {
		m := l.queue[0]
		// Pop by copy-down so the queue keeps its backing array for reuse.
		n := copy(l.queue, l.queue[1:])
		l.queue = l.queue[:n]
		d.service(l, m)
		if m.data != nil {
			// Return the pooled copy taken when the message was queued:
			// service consumes data synchronously (PutM copies it into the
			// backing store) and never retains it.
			d.sys.putLineBuf(m.data)
		}
	}
}
