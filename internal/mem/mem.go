// Package mem implements the coherent memory substrate of the simulated
// validation platform: per-core private L1 caches kept coherent by a
// blocking directory-based MESI protocol with explicit messages, transient
// states, writeback races, and configurable latencies.
//
// The package stands in for the cache hierarchies of the paper's silicon
// platforms (Core 2 Quad, Exynos 5422) and for gem5's MESI implementation in
// the bug-injection case studies (§7). Two of the paper's three injected
// bugs live here:
//
//   - Bug 1 ("protocol issue"): an invalidation received while a line is in
//     the Shared→Modified transient does not notify the core, so younger
//     loads that performed early against the stale Shared data are never
//     squashed — a ld→ld ordering violation (the Peekaboo problem).
//   - Bug 3 ("race in cache coherence protocol"): an owner that has a
//     writeback (PutM) in flight ignores forwarded requests for that line,
//     deadlocking the directory — every affected run crashes, as in the
//     paper's Table 3.
//
// (Bug 2, the load-queue issue, lives in package sim.)
//
// Timing: every message takes NetLat plus a uniformly random jitter cycles;
// cache hits take TagLat; the directory adds DirLat and memory fills MemLat.
// Timing variability — hit vs. miss vs. line ping-pong — is what produces
// the non-deterministic interleavings the paper measures, so latencies are
// deliberately coarse but state-dependent.
package mem

import (
	"fmt"
	"math/rand"

	"mtracecheck/internal/eventq"
)

// Bugs selects injectable protocol defects (paper §7).
type Bugs struct {
	// StaleSMInv is bug 1: skip the core notification for invalidations
	// that arrive while the line has an outstanding upgrade (S→M).
	StaleSMInv bool
	// WBRaceDeadlock is bug 3: the owner ignores FwdGetS/FwdGetM for lines
	// sitting in its writeback buffer, deadlocking the protocol.
	WBRaceDeadlock bool
}

// Config parameterizes the memory system.
type Config struct {
	Cores    int
	LineSize int // bytes per line
	WordSize int // bytes per word (4)
	Sets     int // L1 sets
	Ways     int // L1 ways

	TagLat eventq.Time // L1 hit latency
	NetLat eventq.Time // per-message network latency
	DirLat eventq.Time // directory occupancy per request
	MemLat eventq.Time // backing-memory access latency
	Jitter int         // max extra cycles added per message (uniform)

	Bugs Bugs
}

// DefaultConfig returns a 4-core, 32 KiB (256-set, 2-way) configuration with
// latencies loosely modeled on the paper's desktop platform.
func DefaultConfig(cores int) Config {
	return Config{
		Cores: cores, LineSize: 64, WordSize: 4, Sets: 256, Ways: 2,
		TagLat: 2, NetLat: 12, DirLat: 4, MemLat: 60, Jitter: 6,
	}
}

// TinyCacheConfig shrinks the L1 to 1 KiB 2-way (8 sets), the calibration
// the paper uses for bugs 1 and 3 to intensify evictions under a small
// working set.
func TinyCacheConfig(cores int) Config {
	c := DefaultConfig(cores)
	c.Sets, c.Ways = 8, 2
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("mem: %d cores", c.Cores)
	case c.LineSize <= 0 || c.WordSize <= 0 || c.LineSize%c.WordSize != 0:
		return fmt.Errorf("mem: bad line/word sizes %d/%d", c.LineSize, c.WordSize)
	case c.Sets < 1 || c.Ways < 1:
		return fmt.Errorf("mem: bad geometry %d sets × %d ways", c.Sets, c.Ways)
	case c.TagLat < 0 || c.NetLat < 0 || c.DirLat < 0 || c.MemLat < 0 || c.Jitter < 0:
		return fmt.Errorf("mem: negative latency")
	}
	return nil
}

// Stats counts memory-system activity.
type Stats struct {
	Loads, Stores int64 // completed operations
	Hits, Misses  int64
	Messages      int64
	Invalidations int64
	Writebacks    int64
	Stalls        int64 // requests stalled for a free way
}

// System is the coherent memory system. It is single-goroutine: all methods
// must be called from event callbacks of the owning queue or between runs.
type System struct {
	cfg    Config
	q      *eventq.Queue
	rng    *rand.Rand
	caches []*cache
	dir    *directory
	memory map[uint64][]uint32 // line base → word values
	stats  Stats

	outstanding int // incomplete Read/Write operations

	// invalHook, when set, is called whenever a cache loses read permission
	// on a line it had granted loads from (Inv or FwdGetM). The execution
	// engine uses it to squash speculatively performed loads.
	invalHook func(core int, base uint64)
}

// NewSystem builds a memory system scheduling on q and drawing jitter from
// rng (which must not be shared with concurrent users).
func NewSystem(q *eventq.Queue, cfg Config, rng *rand.Rand) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, q: q, rng: rng, memory: make(map[uint64][]uint32)}
	s.dir = newDirectory(s)
	for i := 0; i < cfg.Cores; i++ {
		s.caches = append(s.caches, newCache(s, i))
	}
	return s, nil
}

// SetInvalHook registers the invalidation callback (see System doc).
func (s *System) SetInvalHook(fn func(core int, base uint64)) { s.invalHook = fn }

// Stats returns a snapshot of activity counters.
func (s *System) Stats() Stats { return s.stats }

// Outstanding returns the number of incomplete Read/Write operations; a
// drained event queue with Outstanding > 0 indicates a protocol deadlock.
func (s *System) Outstanding() int { return s.outstanding }

func (s *System) lineBase(addr uint64) uint64 {
	return addr - addr%uint64(s.cfg.LineSize)
}

func (s *System) wordIndex(addr uint64) int {
	return int(addr%uint64(s.cfg.LineSize)) / s.cfg.WordSize
}

func (s *System) wordsPerLine() int { return s.cfg.LineSize / s.cfg.WordSize }

// memLine returns the backing-store copy of the line, allocating zeroes.
func (s *System) memLine(base uint64) []uint32 {
	l, ok := s.memory[base]
	if !ok {
		l = make([]uint32, s.wordsPerLine())
		s.memory[base] = l
	}
	return l
}

// netDelay returns one message's latency including jitter.
func (s *System) netDelay() eventq.Time {
	d := s.cfg.NetLat
	if s.cfg.Jitter > 0 {
		d += eventq.Time(s.rng.Intn(s.cfg.Jitter + 1))
	}
	return d
}

// send delivers m to the directory (to == -1) or to cache to after the
// network delay.
func (s *System) send(to int, m message) {
	s.stats.Messages++
	s.q.After(s.netDelay(), func() {
		if to < 0 {
			s.dir.receive(m)
		} else {
			s.caches[to].receive(m)
		}
	})
}

// Read issues a load of the word at addr on behalf of core. done is invoked
// at completion time with the loaded value.
func (s *System) Read(core int, addr uint64, done func(uint32)) {
	s.outstanding++
	s.caches[core].access(memReq{addr: addr, done: func(v uint32) {
		s.outstanding--
		s.stats.Loads++
		done(v)
	}})
}

// Write issues a store of val to the word at addr on behalf of core. done is
// invoked when the store has obtained write permission and updated the line
// (i.e. the store is globally visible).
func (s *System) Write(core int, addr uint64, val uint32, done func()) {
	s.outstanding++
	s.caches[core].access(memReq{isWrite: true, addr: addr, val: val, done: func(uint32) {
		s.outstanding--
		s.stats.Stores++
		done()
	}})
}

// PeekWord returns the globally committed value of the word at addr,
// preferring a dirty cached copy over backing memory. For use at quiescent
// points (between iterations, in tests).
func (s *System) PeekWord(addr uint64) uint32 {
	base, idx := s.lineBase(addr), s.wordIndex(addr)
	for _, c := range s.caches {
		if ln := c.lookup(base); ln != nil && ln.state == stateM {
			return ln.data[idx]
		}
	}
	return s.memLine(base)[idx]
}

// Quiescent reports whether no operations or writebacks are in flight.
func (s *System) Quiescent() bool {
	if s.outstanding != 0 || s.dir.busyLines() != 0 {
		return false
	}
	for _, c := range s.caches {
		if len(c.mshrs) != 0 || len(c.wb) != 0 || len(c.stalled) != 0 {
			return false
		}
	}
	return true
}

// Reset restores the initial state (all memory zero, caches empty) between
// test iterations. The system must be quiescent. Backing storage (line
// buffers, directory entries, map capacity) is zeroed in place and kept for
// reuse, so a reset system behaves identically to a freshly built one
// without re-paying its construction allocations.
func (s *System) Reset() error {
	if !s.Quiescent() {
		return fmt.Errorf("mem: Reset while not quiescent (%d outstanding)", s.outstanding)
	}
	for _, l := range s.memory {
		clear(l)
	}
	for _, c := range s.caches {
		c.reset()
	}
	s.dir.reset()
	s.stats = Stats{}
	return nil
}

// CheckInvariants verifies the single-writer/multiple-reader property and
// cache/directory agreement at a quiescent point. Intended for tests.
func (s *System) CheckInvariants() error {
	if !s.Quiescent() {
		return fmt.Errorf("mem: CheckInvariants while not quiescent")
	}
	type holder struct {
		core  int
		state lineState
	}
	byLine := make(map[uint64][]holder)
	for _, c := range s.caches {
		for si := range c.sets {
			for wi := range c.sets[si] {
				ln := &c.sets[si][wi]
				if ln.state != stateI {
					byLine[ln.base] = append(byLine[ln.base], holder{c.id, ln.state})
				}
			}
		}
	}
	for base, hs := range byLine {
		writers, readers := 0, 0
		for _, h := range hs {
			if h.state == stateM || h.state == stateE {
				writers++
			} else {
				readers++
			}
		}
		if writers > 1 || (writers == 1 && readers > 0) {
			return fmt.Errorf("mem: SWMR violated on line %#x: %+v", base, hs)
		}
	}
	return nil
}
