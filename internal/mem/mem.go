// Package mem implements the coherent memory substrate of the simulated
// validation platform: per-core private L1 caches kept coherent by a
// blocking directory-based MESI protocol with explicit messages, transient
// states, writeback races, and configurable latencies.
//
// The package stands in for the cache hierarchies of the paper's silicon
// platforms (Core 2 Quad, Exynos 5422) and for gem5's MESI implementation in
// the bug-injection case studies (§7). Two of the paper's three injected
// bugs live here:
//
//   - Bug 1 ("protocol issue"): an invalidation received while a line is in
//     the Shared→Modified transient does not notify the core, so younger
//     loads that performed early against the stale Shared data are never
//     squashed — a ld→ld ordering violation (the Peekaboo problem).
//   - Bug 3 ("race in cache coherence protocol"): an owner that has a
//     writeback (PutM) in flight ignores forwarded requests for that line,
//     deadlocking the directory — every affected run crashes, as in the
//     paper's Table 3.
//
// (Bug 2, the load-queue issue, lives in package sim.)
//
// Timing: every message takes NetLat plus a uniformly random jitter cycles;
// cache hits take TagLat; the directory adds DirLat and memory fills MemLat.
// Timing variability — hit vs. miss vs. line ping-pong — is what produces
// the non-deterministic interleavings the paper measures, so latencies are
// deliberately coarse but state-dependent.
//
// Scheduling is closure-free: every deferred action is a typed eventq.Event
// whose kind lives in the package's reserved kind space (KindBase and up),
// routed back in through Dispatch by the engine's jump table. Requests carry
// a caller-chosen completion token instead of a callback; the system reports
// completions synchronously through the hook set with SetCompleteHook.
// Messages, their line-data buffers, MSHRs, and pending-replay records are
// all pooled, so a steady-state iteration allocates nothing.
package mem

import (
	"fmt"
	"math/rand"

	"mtracecheck/internal/eventq"
)

// KindBase is the first event kind owned by package mem. The engine's
// dispatch routes every event with Kind >= KindBase (below eventq.KindFunc)
// to System.Dispatch; kinds below KindBase belong to the engine.
const KindBase uint8 = 0x80

// Event kinds scheduled by the memory system. Payload layout is private to
// this package: events are produced here and consumed by Dispatch.
const (
	// kindDeliver delivers message slot Op to cache Core (or the directory
	// when Core is negative) — the network hop.
	kindDeliver = KindBase + iota
	// kindGrant moves a directory grant (message slot Op, destination Core)
	// from directory occupancy onto the network: the deferred send draws its
	// jitter when this event fires, not when the grant was composed.
	kindGrant
	// kindLoadHit replays a load hit on cache Core after tag latency;
	// Op indexes the pending-request pool.
	kindLoadHit
	// kindStoreHit replays a store hit on cache Core after tag latency;
	// Op indexes the pending-request pool.
	kindStoreHit
	// kindComplete finishes a fill-satisfied request after tag latency:
	// Arg is the completion token, Op the value, Core 1 for writes.
	kindComplete
)

// Bugs selects injectable protocol defects (paper §7).
type Bugs struct {
	// StaleSMInv is bug 1: skip the core notification for invalidations
	// that arrive while the line has an outstanding upgrade (S→M).
	StaleSMInv bool
	// WBRaceDeadlock is bug 3: the owner ignores FwdGetS/FwdGetM for lines
	// sitting in its writeback buffer, deadlocking the protocol.
	WBRaceDeadlock bool
}

// Config parameterizes the memory system.
type Config struct {
	Cores    int
	LineSize int // bytes per line
	WordSize int // bytes per word (4)
	Sets     int // L1 sets
	Ways     int // L1 ways

	TagLat eventq.Time // L1 hit latency
	NetLat eventq.Time // per-message network latency
	DirLat eventq.Time // directory occupancy per request
	MemLat eventq.Time // backing-memory access latency
	Jitter int         // max extra cycles added per message (uniform)

	Bugs Bugs
}

// DefaultConfig returns a 4-core, 32 KiB (256-set, 2-way) configuration with
// latencies loosely modeled on the paper's desktop platform.
func DefaultConfig(cores int) Config {
	return Config{
		Cores: cores, LineSize: 64, WordSize: 4, Sets: 256, Ways: 2,
		TagLat: 2, NetLat: 12, DirLat: 4, MemLat: 60, Jitter: 6,
	}
}

// TinyCacheConfig shrinks the L1 to 1 KiB 2-way (8 sets), the calibration
// the paper uses for bugs 1 and 3 to intensify evictions under a small
// working set.
func TinyCacheConfig(cores int) Config {
	c := DefaultConfig(cores)
	c.Sets, c.Ways = 8, 2
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("mem: %d cores", c.Cores)
	case c.LineSize <= 0 || c.WordSize <= 0 || c.LineSize%c.WordSize != 0:
		return fmt.Errorf("mem: bad line/word sizes %d/%d", c.LineSize, c.WordSize)
	case c.Sets < 1 || c.Ways < 1:
		return fmt.Errorf("mem: bad geometry %d sets × %d ways", c.Sets, c.Ways)
	case c.TagLat < 0 || c.NetLat < 0 || c.DirLat < 0 || c.MemLat < 0 || c.Jitter < 0:
		return fmt.Errorf("mem: negative latency")
	}
	return nil
}

// Stats counts memory-system activity.
type Stats struct {
	Loads, Stores int64 // completed operations
	Hits, Misses  int64
	Messages      int64
	Invalidations int64
	Writebacks    int64
	Stalls        int64 // requests stalled for a free way
}

// System is the coherent memory system. It is single-goroutine: all methods
// must be called from event dispatch of the owning queue or between runs.
type System struct {
	cfg    Config
	q      *eventq.Queue
	rng    *rand.Rand
	caches []*cache
	dir    *directory
	memory map[uint64][]uint32 // line base → word values
	stats  Stats

	outstanding int // incomplete Read/Write operations

	// Message slots: in-flight protocol messages live in msgs, addressed by
	// the slot index riding in the event. Each slot owns a reusable line
	// buffer (msgBufs) that message data is copied into, so freeing a slot
	// keeps its buffer for the next message.
	msgs    []message
	msgBufs [][]uint32
	msgFree []int32

	// Pending-request slots for tag-latency hit replays.
	pend     []memReq
	pendFree []int32

	// lineBufs pools line-sized scratch buffers (writeback copies, queued
	// directory message data).
	lineBufs [][]uint32

	// invalHook, when set, is called whenever a cache loses read permission
	// on a line it had granted loads from (Inv or FwdGetM). The execution
	// engine uses it to squash speculatively performed loads.
	invalHook func(core int, base uint64)

	// completeHook receives every finished Read/Write: the request's token
	// and, for reads, the loaded value. Called synchronously from dispatch.
	completeHook func(tok int64, v uint32)
}

// NewSystem builds a memory system scheduling on q and drawing jitter from
// rng (which must not be shared with concurrent users).
func NewSystem(q *eventq.Queue, cfg Config, rng *rand.Rand) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, q: q, rng: rng, memory: make(map[uint64][]uint32)}
	s.dir = newDirectory(s)
	for i := 0; i < cfg.Cores; i++ {
		s.caches = append(s.caches, newCache(s, i))
	}
	return s, nil
}

// SetInvalHook registers the invalidation callback (see System doc).
func (s *System) SetInvalHook(fn func(core int, base uint64)) { s.invalHook = fn }

// SetCompleteHook registers the completion callback invoked for every
// finished Read/Write. It must be set before issuing requests.
func (s *System) SetCompleteHook(fn func(tok int64, v uint32)) { s.completeHook = fn }

// Stats returns a snapshot of activity counters.
func (s *System) Stats() Stats { return s.stats }

// Outstanding returns the number of incomplete Read/Write operations; a
// drained event queue with Outstanding > 0 indicates a protocol deadlock.
func (s *System) Outstanding() int { return s.outstanding }

func (s *System) lineBase(addr uint64) uint64 {
	return addr - addr%uint64(s.cfg.LineSize)
}

func (s *System) wordIndex(addr uint64) int {
	return int(addr%uint64(s.cfg.LineSize)) / s.cfg.WordSize
}

func (s *System) wordsPerLine() int { return s.cfg.LineSize / s.cfg.WordSize }

// memLine returns the backing-store copy of the line, allocating zeroes.
func (s *System) memLine(base uint64) []uint32 {
	l, ok := s.memory[base]
	if !ok {
		l = make([]uint32, s.wordsPerLine())
		s.memory[base] = l
	}
	return l
}

// netDelay returns one message's latency including jitter.
func (s *System) netDelay() eventq.Time {
	d := s.cfg.NetLat
	if s.cfg.Jitter > 0 {
		d += eventq.Time(s.rng.Intn(s.cfg.Jitter + 1))
	}
	return d
}

// newMsg claims a message slot and copies m into it, including its data
// (into the slot's own buffer), so the caller's view of the data may be
// mutated or recycled immediately after.
func (s *System) newMsg(m message) int32 {
	var slot int32
	if n := len(s.msgFree); n > 0 {
		slot = s.msgFree[n-1]
		s.msgFree = s.msgFree[:n-1]
	} else {
		slot = int32(len(s.msgs))
		s.msgs = append(s.msgs, message{})
		s.msgBufs = append(s.msgBufs, nil)
	}
	if m.data != nil {
		buf := s.msgBufs[slot]
		if cap(buf) < len(m.data) {
			buf = make([]uint32, len(m.data))
		} else {
			buf = buf[:len(m.data)]
		}
		copy(buf, m.data)
		s.msgBufs[slot] = buf
		m.data = buf
	}
	s.msgs[slot] = m
	return slot
}

func (s *System) freeMsg(slot int32) {
	s.msgs[slot] = message{}
	s.msgFree = append(s.msgFree, slot)
}

// newPend claims a pending-request slot for a tag-latency replay.
func (s *System) newPend(req memReq) int32 {
	var slot int32
	if n := len(s.pendFree); n > 0 {
		slot = s.pendFree[n-1]
		s.pendFree = s.pendFree[:n-1]
	} else {
		slot = int32(len(s.pend))
		s.pend = append(s.pend, memReq{})
	}
	s.pend[slot] = req
	return slot
}

func (s *System) takePend(slot int32) memReq {
	req := s.pend[slot]
	s.pend[slot] = memReq{}
	s.pendFree = append(s.pendFree, slot)
	return req
}

// getLineBuf pops a pooled line-sized buffer (length 0, capacity one line).
func (s *System) getLineBuf() []uint32 {
	if n := len(s.lineBufs); n > 0 {
		b := s.lineBufs[n-1]
		s.lineBufs = s.lineBufs[:n-1]
		return b[:0]
	}
	return make([]uint32, 0, s.wordsPerLine())
}

func (s *System) putLineBuf(b []uint32) { s.lineBufs = append(s.lineBufs, b) }

// post puts a composed message slot on the network to the directory
// (to == -1) or to cache to: one Messages count and one jitter draw, exactly
// at the moment the message leaves its sender.
func (s *System) post(to int, slot int32) {
	s.stats.Messages++
	s.q.PushAfter(s.netDelay(), eventq.Event{Kind: kindDeliver, Core: int32(to), Op: slot})
}

// send composes and posts a message in one step.
func (s *System) send(to int, m message) { s.post(to, s.newMsg(m)) }

// Dispatch routes a typed event scheduled by this package. The engine's
// event handler forwards every event with Kind >= KindBase here.
func (s *System) Dispatch(ev eventq.Event) {
	switch ev.Kind {
	case kindDeliver:
		m := s.msgs[ev.Op]
		if to := int(ev.Core); to < 0 {
			s.dir.receive(m)
		} else {
			s.caches[to].receive(m)
		}
		// Freed only after receive returns: handlers may read m.data, and
		// anything they retain past return (the directory's queue) holds its
		// own copy.
		s.freeMsg(ev.Op)
	case kindGrant:
		s.post(int(ev.Core), ev.Op)
	case kindLoadHit:
		s.caches[ev.Core].replayLoadHit(ev.Op)
	case kindStoreHit:
		s.caches[ev.Core].replayStoreHit(ev.Op)
	case kindComplete:
		s.finish(ev.Core == 1, ev.Arg, uint32(ev.Op))
	default:
		panic(fmt.Sprintf("mem: Dispatch of unknown kind %d", ev.Kind))
	}
}

// finish retires one completed operation and reports it to the engine.
func (s *System) finish(isWrite bool, tok int64, v uint32) {
	s.outstanding--
	if isWrite {
		s.stats.Stores++
	} else {
		s.stats.Loads++
	}
	s.completeHook(tok, v)
}

// Read issues a load of the word at addr on behalf of core. The completion
// hook receives tok and the loaded value when the load performs.
func (s *System) Read(core int, addr uint64, tok int64) {
	s.outstanding++
	s.caches[core].access(memReq{addr: addr, tok: tok})
}

// Write issues a store of val to the word at addr on behalf of core. The
// completion hook receives tok (value 0) when the store has obtained write
// permission and updated the line (i.e. the store is globally visible).
func (s *System) Write(core int, addr uint64, val uint32, tok int64) {
	s.outstanding++
	s.caches[core].access(memReq{isWrite: true, addr: addr, val: val, tok: tok})
}

// PeekWord returns the globally committed value of the word at addr,
// preferring a dirty cached copy over backing memory. For use at quiescent
// points (between iterations, in tests).
func (s *System) PeekWord(addr uint64) uint32 {
	base, idx := s.lineBase(addr), s.wordIndex(addr)
	for _, c := range s.caches {
		if ln := c.lookup(base); ln != nil && ln.state == stateM {
			return ln.data[idx]
		}
	}
	return s.memLine(base)[idx]
}

// Quiescent reports whether no operations or writebacks are in flight.
func (s *System) Quiescent() bool {
	if s.outstanding != 0 || s.dir.busyLines() != 0 {
		return false
	}
	for _, c := range s.caches {
		if len(c.mshrs) != 0 || len(c.wb) != 0 || len(c.stalled) != 0 {
			return false
		}
	}
	return true
}

// Reset restores the initial state (all memory zero, caches empty) between
// test iterations. The system must be quiescent. Backing storage (line
// buffers, directory entries, pools, map capacity) is zeroed in place and
// kept for reuse, so a reset system behaves identically to a freshly built
// one without re-paying its construction allocations.
func (s *System) Reset() error {
	if !s.Quiescent() {
		return fmt.Errorf("mem: Reset while not quiescent (%d outstanding)", s.outstanding)
	}
	for _, l := range s.memory {
		clear(l)
	}
	for _, c := range s.caches {
		c.reset()
	}
	s.dir.reset()
	s.stats = Stats{}
	return nil
}

// CheckInvariants verifies the single-writer/multiple-reader property and
// cache/directory agreement at a quiescent point. Intended for tests.
func (s *System) CheckInvariants() error {
	if !s.Quiescent() {
		return fmt.Errorf("mem: CheckInvariants while not quiescent")
	}
	type holder struct {
		core  int
		state lineState
	}
	byLine := make(map[uint64][]holder)
	for _, c := range s.caches {
		for si := range c.sets {
			for wi := range c.sets[si] {
				ln := &c.sets[si][wi]
				if ln.state != stateI {
					byLine[ln.base] = append(byLine[ln.base], holder{c.id, ln.state})
				}
			}
		}
	}
	for base, hs := range byLine {
		writers, readers := 0, 0
		for _, h := range hs {
			if h.state == stateM || h.state == stateE {
				writers++
			} else {
				readers++
			}
		}
		if writers > 1 || (writers == 1 && readers > 0) {
			return fmt.Errorf("mem: SWMR violated on line %#x: %+v", base, hs)
		}
	}
	return nil
}
