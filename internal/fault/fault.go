// Package fault is a deterministic device-side fault injector for the
// validation pipeline. The paper's deployment target is real silicon, where
// the device half of the flow is the unreliable half: signatures accumulate
// in registers and are stored to a result memory region that can be
// corrupted, and campaigns of tens of thousands of iterations can stall or
// die mid-run (paper §4–5; TSOtool-lineage checkers likewise treat observed
// executions as untrusted input). This package models that unreliability so
// the host-side tolerance machinery — quarantine, retry, partial results —
// can be proven against a reproducible fault stream.
//
// Two fault families are injected at the two places real faults strike:
//
//   - Signature corruption (bit flips, truncated/duplicated result-memory
//     entries, out-of-range words) is applied to the merged unique signature
//     set between execution and decoding — the point where the host reads
//     the device's result memory. Every per-entry decision is keyed by
//     (Seed, signature bytes), so the outcome is a pure function of the
//     collected set: identical for every worker count and iteration order.
//   - Execution faults (shard stalls and panics) are injected through a
//     sim.Source wrapper around the shard's runner. They trigger only on a
//     shard's first attempt — they model transient failures, so a retry of
//     the same iteration block succeeds and the campaign's final results
//     stay worker-invariant whenever retries are enabled.
package fault

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
)

// Kind identifies one injected fault class.
type Kind uint8

const (
	// KindNone means no fault.
	KindNone Kind = iota
	// KindBitFlip flips one random bit of one signature word.
	KindBitFlip
	// KindTruncate drops a result-memory entry entirely.
	KindTruncate
	// KindDuplicate stores a result-memory entry twice.
	KindDuplicate
	// KindOutOfRange overwrites one signature word with an impossible value.
	KindOutOfRange
	// KindStall blocks a shard mid-run (exceeding any shard deadline).
	KindStall
	// KindPanic panics a shard mid-run.
	KindPanic
	// KindWireCorrupt flips one bit of a chunk upload in flight.
	KindWireCorrupt
	// KindWireDrop loses a chunk upload in flight (the lease expires).
	KindWireDrop
	// KindWireDelay holds a chunk upload past its send time.
	KindWireDelay
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindBitFlip:
		return "bit-flip"
	case KindTruncate:
		return "truncate"
	case KindDuplicate:
		return "duplicate"
	case KindOutOfRange:
		return "out-of-range"
	case KindStall:
		return "stall"
	case KindPanic:
		return "panic"
	case KindWireCorrupt:
		return "wire-corrupt"
	case KindWireDrop:
		return "wire-drop"
	case KindWireDelay:
		return "wire-delay"
	}
	return fmt.Sprintf("fault.Kind(%d)", uint8(k))
}

// Config sets per-kind fault rates. The zero value injects nothing. All
// rates are probabilities in [0, 1]: the signature rates apply per unique
// set entry, the shard rates per shard (first attempt only).
type Config struct {
	// Seed drives every injection decision; independent of the run seed so
	// the same campaign can be replayed under different fault streams.
	Seed int64
	// BitFlip is the per-entry probability of flipping one random bit.
	BitFlip float64
	// Truncate is the per-entry probability of dropping the entry.
	Truncate float64
	// Duplicate is the per-entry probability of storing the entry twice.
	Duplicate float64
	// OutOfRange is the per-entry probability of overwriting one word with
	// an undecodable value.
	OutOfRange float64
	// ShardStall is the per-shard probability of a mid-run stall.
	ShardStall float64
	// ShardPanic is the per-shard probability of a mid-run panic.
	ShardPanic float64
	// StallFor is how long a stalled shard blocks before resuming
	// (interruptible by the shard's context); 0 selects 250ms.
	StallFor time.Duration
}

// Enabled reports whether any fault rate is set.
func (c Config) Enabled() bool {
	return c.corruption() || c.execution()
}

func (c Config) corruption() bool {
	return c.BitFlip > 0 || c.Truncate > 0 || c.Duplicate > 0 || c.OutOfRange > 0
}

// CorruptsSignatures reports whether any signature-corruption rate is set.
// Corruption is applied to the final merged set (a pure function of it), so
// a campaign with corruption enabled cannot decode signatures eagerly as
// chunks stream in — the streaming pipeline uses this predicate to fall
// back to barrier decoding.
func (c Config) CorruptsSignatures() bool { return c.corruption() }

func (c Config) execution() bool {
	return c.ShardStall > 0 || c.ShardPanic > 0
}

// Validate rejects rates outside [0, 1] and negative stall durations.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"BitFlip", c.BitFlip}, {"Truncate", c.Truncate},
		{"Duplicate", c.Duplicate}, {"OutOfRange", c.OutOfRange},
		{"ShardStall", c.ShardStall}, {"ShardPanic", c.ShardPanic},
	} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0, 1]", r.name, r.rate)
		}
	}
	if c.StallFor < 0 {
		return fmt.Errorf("fault: negative StallFor %v", c.StallFor)
	}
	return nil
}

// Injector applies a Config's fault stream deterministically.
type Injector struct {
	cfg Config
}

// NewInjector validates the config and returns an injector for it.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// entryRNG derives the decision stream for one signature: a pure function
// of (Seed, signature bytes), so corruption is independent of worker count
// and collection order.
func (in *Injector) entryRNG(s sig.Signature) *rand.Rand {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(in.cfg.Seed))
	h.Write(b[:])
	h.Write(s.AppendBinary(nil))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Corrupt applies the signature-level faults to a sorted unique set — the
// host reading the device's result memory — and returns the re-sorted,
// re-deduplicated corrupted set plus the count of injections per kind.
// A duplicated entry that survives unmodified merges back during
// re-deduplication with a doubled observation count (benign corruption the
// pipeline absorbs); flips and out-of-range writes produce entries the
// decoder must quarantine or, when the flip lands on another valid
// encoding, silently mimic.
func (in *Injector) Corrupt(uniques []sig.Unique) ([]sig.Unique, map[Kind]int) {
	if !in.cfg.corruption() {
		return uniques, nil
	}
	injected := make(map[Kind]int)
	out := make([]sig.Unique, 0, len(uniques))
	for _, u := range uniques {
		rng := in.entryRNG(u.Sig)
		// Fixed draw order keeps the stream stable as rates change one at
		// a time.
		if rng.Float64() < in.cfg.Truncate {
			injected[KindTruncate]++
			continue
		}
		if rng.Float64() < in.cfg.Duplicate {
			injected[KindDuplicate]++
			out = append(out, u)
		}
		cu := u
		if rng.Float64() < in.cfg.BitFlip {
			injected[KindBitFlip]++
			words := cu.Sig.Words()
			words[rng.Intn(len(words))] ^= 1 << uint(rng.Intn(64))
			cu.Sig = sig.New(words)
		}
		if rng.Float64() < in.cfg.OutOfRange {
			injected[KindOutOfRange]++
			words := cu.Sig.Words()
			words[rng.Intn(len(words))] = ^uint64(0)
			cu.Sig = sig.New(words)
		}
		out = append(out, cu)
	}
	// Host-side normalization: whatever the device handed over is sorted
	// and de-duplicated before decoding, as in the paper's flow.
	sort.Slice(out, func(i, j int) bool { return out[i].Sig.Compare(out[j].Sig) < 0 })
	merged := out[:0]
	for _, u := range out {
		if n := len(merged); n > 0 && merged[n-1].Sig.Equal(u.Sig) {
			merged[n-1].Count += u.Count
		} else {
			merged = append(merged, u)
		}
	}
	if len(injected) == 0 {
		injected = nil
	}
	return merged, injected
}

// ShardFault is one planned execution fault within a shard's iteration
// block; Kind is KindNone when the shard runs clean.
type ShardFault struct {
	Kind      Kind
	Iteration int // block-relative iteration at which the fault triggers
}

// ShardPlan decides the execution fault for one shard attempt, keyed by the
// shard's global iteration block. Faults are transient: only attempt 0 can
// fault, so a retried shard completes and the campaign's results stay
// worker-invariant.
func (in *Injector) ShardPlan(start, count, attempt int) ShardFault {
	if attempt > 0 || count <= 0 || !in.cfg.execution() {
		return ShardFault{}
	}
	h := fnv.New64a()
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(in.cfg.Seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(start))
	binary.LittleEndian.PutUint64(b[16:], uint64(count))
	h.Write(b[:])
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	if rng.Float64() < in.cfg.ShardPanic {
		return ShardFault{Kind: KindPanic, Iteration: rng.Intn(count)}
	}
	if rng.Float64() < in.cfg.ShardStall {
		return ShardFault{Kind: KindStall, Iteration: rng.Intn(count)}
	}
	return ShardFault{}
}

// WrapShard returns the execution source for one shard attempt: the inner
// runner as-is when no fault is planned, or wrapped to trigger the planned
// stall or panic.
func (in *Injector) WrapShard(ctx context.Context, inner sim.Source, start, count, attempt int) sim.Source {
	f := in.ShardPlan(start, count, attempt)
	if f.Kind == KindNone {
		return inner
	}
	stall := in.cfg.StallFor
	if stall == 0 {
		stall = 250 * time.Millisecond
	}
	return &Runner{inner: inner, ctx: ctx, fault: f, stallFor: stall}
}

// Runner wraps a sim.Source, injecting one planned stall or panic at a
// fixed block-relative iteration. Like the runner it wraps, it is owned by
// a single goroutine.
type Runner struct {
	inner    sim.Source
	ctx      context.Context
	fault    ShardFault
	stallFor time.Duration
	i        int
}

// Run delegates to the wrapped source, first triggering the planned fault
// when its iteration is reached: a panic unwinds into the shard's recover
// handler; a stall blocks until StallFor elapses or the shard's context is
// done (the per-shard deadline path).
func (r *Runner) Run() (*sim.Execution, error) {
	i := r.i
	r.i++
	if r.fault.Kind != KindNone && i == r.fault.Iteration {
		switch r.fault.Kind {
		case KindPanic:
			panic(fmt.Sprintf("fault: injected shard panic at block iteration %d", i))
		case KindStall:
			select {
			case <-r.ctx.Done():
				return nil, r.ctx.Err()
			case <-time.After(r.stallFor):
			}
		}
	}
	return r.inner.Run()
}

// QuarantineKind classifies why the host quarantined a signature.
type QuarantineKind uint8

const (
	// QuarantineDecode marks a signature the Algorithm 1 decoder rejected
	// (out-of-range index, nonzero residue, wrong word count).
	QuarantineDecode QuarantineKind = iota
	// QuarantineEdges marks a signature that decoded but whose reads-from
	// relation failed constraint-edge construction.
	QuarantineEdges
)

func (k QuarantineKind) String() string {
	switch k {
	case QuarantineDecode:
		return "decode"
	case QuarantineEdges:
		return "edge-build"
	}
	return fmt.Sprintf("fault.QuarantineKind(%d)", uint8(k))
}

// Quarantined is one corrupted signature held out of checking instead of
// aborting the run.
type Quarantined struct {
	Sig   sig.Signature
	Count int // observations the entry claimed
	Kind  QuarantineKind
	Err   error // the decode or edge-build failure
}

// CountByKind tallies quarantined signatures per kind; nil for an empty
// quarantine.
func CountByKind(q []Quarantined) map[QuarantineKind]int {
	if len(q) == 0 {
		return nil
	}
	out := make(map[QuarantineKind]int)
	for _, e := range q {
		out[e.Kind]++
	}
	return out
}
