package fault

import (
	"bytes"
	"testing"
	"time"
)

func TestWireConfigValidate(t *testing.T) {
	if err := (WireConfig{Corrupt: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (WireConfig{Drop: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (WireConfig{DelayFor: -time.Second}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := NewWireInjector(WireConfig{Corrupt: 0.5, Drop: 0.1}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if (WireConfig{}).Enabled() {
		t.Error("zero config claims enabled")
	}
}

func TestWirePlanDeterministic(t *testing.T) {
	in, err := NewWireInjector(WireConfig{Seed: 7, Corrupt: 0.5, Drop: 0.2, Delay: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for chunk := 0; chunk < 50; chunk++ {
		a := in.PlanUpload("job-1", chunk, 0)
		b := in.PlanUpload("job-1", chunk, 0)
		if a != b {
			t.Fatalf("chunk %d: plan not deterministic: %+v vs %+v", chunk, a, b)
		}
	}
	// Attempts draw independent decisions.
	diff := false
	for chunk := 0; chunk < 50 && !diff; chunk++ {
		diff = in.PlanUpload("job-1", chunk, 0) != in.PlanUpload("job-1", chunk, 1)
	}
	if !diff {
		t.Error("attempt number never changed the plan across 50 chunks")
	}
}

func TestWireMangleUpload(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 64)

	corrupt, _ := NewWireInjector(WireConfig{Seed: 1, Corrupt: 1})
	out, f := corrupt.MangleUpload(payload, "j", 0, 0)
	if f.Kind != KindWireCorrupt {
		t.Fatalf("fault %v, want wire-corrupt", f.Kind)
	}
	if bytes.Equal(out, payload) {
		t.Error("corrupt left the payload unchanged")
	}
	nFlipped := 0
	for i := range out {
		if out[i] != payload[i] {
			nFlipped++
		}
	}
	if nFlipped != 1 {
		t.Errorf("%d bytes changed, want exactly 1", nFlipped)
	}
	if payload[0] != 0xAA {
		t.Error("corrupt mutated the caller's payload")
	}

	drop, _ := NewWireInjector(WireConfig{Seed: 1, Drop: 1})
	if out, f := drop.MangleUpload(payload, "j", 0, 0); out != nil || f.Kind != KindWireDrop {
		t.Errorf("drop: payload %v fault %v", out != nil, f.Kind)
	}

	delay, _ := NewWireInjector(WireConfig{Seed: 1, Delay: 1, DelayFor: time.Millisecond})
	if out, f := delay.MangleUpload(payload, "j", 0, 0); !bytes.Equal(out, payload) ||
		f.Kind != KindWireDelay || f.Hold != time.Millisecond {
		t.Errorf("delay: fault %+v", f)
	}

	clean, _ := NewWireInjector(WireConfig{})
	if out, f := clean.MangleUpload(payload, "j", 0, 0); !bytes.Equal(out, payload) || f.Kind != KindNone {
		t.Errorf("clean: fault %v", f.Kind)
	}
}
