package fault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Wire faults model the third unreliable surface of the deployment: the
// network between a device-side worker and the trusted host. Unlike the
// in-process families, wire faults are applied by the *worker* to its own
// uploads — the server never trusts what arrives, so a corrupted upload
// exercises the server's validation/strike/quarantine path, a dropped one
// its lease-expiry redispatch path, and a delayed one its duplicate
// detection. Decisions are keyed by (Seed, job, chunk, attempt), so a
// retried upload of the same chunk draws a fresh decision and the test
// fleet's behavior replays bit-for-bit.

// WireConfig sets per-upload wire fault rates. The zero value injects
// nothing. Rates are probabilities in [0, 1], drawn once per upload attempt.
type WireConfig struct {
	// Seed drives every wire decision; independent of the run seed and the
	// device-side fault seed.
	Seed int64
	// Corrupt is the per-upload probability of flipping one payload bit.
	Corrupt float64
	// Drop is the per-upload probability of losing the upload entirely.
	Drop float64
	// Delay is the per-upload probability of holding the upload for
	// DelayFor before sending.
	Delay float64
	// DelayFor is how long a delayed upload is held; 0 selects 250ms.
	DelayFor time.Duration
}

// Enabled reports whether any wire fault rate is set.
func (c WireConfig) Enabled() bool {
	return c.Corrupt > 0 || c.Drop > 0 || c.Delay > 0
}

// Validate rejects rates outside [0, 1] and negative delays.
func (c WireConfig) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"Corrupt", c.Corrupt}, {"Drop", c.Drop}, {"Delay", c.Delay},
	} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("fault: wire %s rate %v outside [0, 1]", r.name, r.rate)
		}
	}
	if c.DelayFor < 0 {
		return fmt.Errorf("fault: negative wire DelayFor %v", c.DelayFor)
	}
	return nil
}

// WireInjector applies a WireConfig's fault stream deterministically.
type WireInjector struct {
	cfg WireConfig
}

// NewWireInjector validates the config and returns an injector for it.
func NewWireInjector(cfg WireConfig) (*WireInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &WireInjector{cfg: cfg}, nil
}

// WireFault is the planned fault for one upload attempt; Kind is KindNone
// for a clean send. For KindWireCorrupt, Bit is the payload bit to flip
// (modulo the payload length, which the planner does not know); for
// KindWireDelay, Hold is how long to wait before sending.
type WireFault struct {
	Kind Kind
	Bit  uint64
	Hold time.Duration
}

// PlanUpload decides the wire fault for one chunk-upload attempt, keyed by
// (Seed, job, chunk, attempt). Fixed draw order — drop, corrupt, delay —
// keeps the stream stable as rates change one at a time.
func (in *WireInjector) PlanUpload(job string, chunk, attempt int) WireFault {
	if !in.cfg.Enabled() {
		return WireFault{}
	}
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(in.cfg.Seed))
	h.Write(b[:])
	h.Write([]byte(job))
	binary.LittleEndian.PutUint64(b[:], uint64(chunk))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	if rng.Float64() < in.cfg.Drop {
		return WireFault{Kind: KindWireDrop}
	}
	if rng.Float64() < in.cfg.Corrupt {
		return WireFault{Kind: KindWireCorrupt, Bit: rng.Uint64()}
	}
	if rng.Float64() < in.cfg.Delay {
		hold := in.cfg.DelayFor
		if hold == 0 {
			hold = 250 * time.Millisecond
		}
		return WireFault{Kind: KindWireDelay, Hold: hold}
	}
	return WireFault{}
}

// MangleUpload applies the planned fault to an encoded chunk upload:
// a corrupt flips one bit in place (in a copy) and returns it, a drop
// returns nil (the caller skips the send and lets the lease expire), and a
// delay returns the payload unchanged with the hold duration. The returned
// fault reports what was applied.
func (in *WireInjector) MangleUpload(payload []byte, job string, chunk, attempt int) ([]byte, WireFault) {
	f := in.PlanUpload(job, chunk, attempt)
	switch f.Kind {
	case KindWireDrop:
		return nil, f
	case KindWireCorrupt:
		if len(payload) == 0 {
			return payload, WireFault{}
		}
		out := make([]byte, len(payload))
		copy(out, payload)
		bit := f.Bit % uint64(len(out)*8)
		out[bit/8] ^= 1 << (bit % 8)
		return out, f
	}
	return payload, f
}
