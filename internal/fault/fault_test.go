package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
)

func uniques(words ...uint64) []sig.Unique {
	out := make([]sig.Unique, len(words))
	for i, w := range words {
		out[i] = sig.Unique{Sig: sig.New([]uint64{w, w ^ 0xff}), Count: i + 1}
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{BitFlip: 1, Truncate: 0.5, Duplicate: 0.1, OutOfRange: 0.01},
		{ShardStall: 1, ShardPanic: 1, StallFor: time.Second},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
	bad := []Config{
		{BitFlip: -0.1},
		{Truncate: 1.5},
		{Duplicate: 2},
		{OutOfRange: -1},
		{ShardStall: 1.01},
		{ShardPanic: -0.5},
		{StallFor: -time.Second},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v): no error", c)
		}
		if _, err := NewInjector(c); err == nil {
			t.Errorf("NewInjector(%+v): no error", c)
		}
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, c := range []Config{
		{BitFlip: 0.1}, {Truncate: 0.1}, {Duplicate: 0.1},
		{OutOfRange: 0.1}, {ShardStall: 0.1}, {ShardPanic: 0.1},
	} {
		if !c.Enabled() {
			t.Errorf("%+v reports disabled", c)
		}
	}
	// Seed or StallFor alone inject nothing.
	if (Config{Seed: 42, StallFor: time.Second}).Enabled() {
		t.Error("rate-free config reports enabled")
	}
}

// TestCorruptDeterministic: corruption must be a pure function of
// (Seed, signature set) — independent of how the set was collected.
func TestCorruptDeterministic(t *testing.T) {
	in, err := NewInjector(Config{Seed: 3, BitFlip: 0.3, Truncate: 0.2, Duplicate: 0.2, OutOfRange: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	us := uniques(1, 2, 3, 5, 8, 13, 21, 34, 55, 89)
	first, firstCounts := in.Corrupt(us)
	for trial := 0; trial < 3; trial++ {
		got, counts := in.Corrupt(uniques(1, 2, 3, 5, 8, 13, 21, 34, 55, 89))
		if len(got) != len(first) {
			t.Fatalf("trial %d: %d entries, first run %d", trial, len(got), len(first))
		}
		for i := range got {
			if !got[i].Sig.Equal(first[i].Sig) || got[i].Count != first[i].Count {
				t.Fatalf("trial %d entry %d: %v/%d, first run %v/%d", trial, i,
					got[i].Sig, got[i].Count, first[i].Sig, first[i].Count)
			}
		}
		for k, n := range firstCounts {
			if counts[k] != n {
				t.Fatalf("trial %d: %v count %d, first run %d", trial, k, counts[k], n)
			}
		}
	}
}

// TestCorruptZeroRatesIsIdentity: a corruption-free injector must hand the
// set back untouched (the zero-fault run is bit-identical to no injector).
func TestCorruptZeroRatesIsIdentity(t *testing.T) {
	in, err := NewInjector(Config{Seed: 9, ShardPanic: 1})
	if err != nil {
		t.Fatal(err)
	}
	us := uniques(7, 11, 13)
	got, counts := in.Corrupt(us)
	if counts != nil {
		t.Errorf("injected counts %v, want nil", counts)
	}
	if len(got) != len(us) {
		t.Fatalf("%d entries, want %d", len(got), len(us))
	}
	for i := range got {
		if !got[i].Sig.Equal(us[i].Sig) || got[i].Count != us[i].Count {
			t.Errorf("entry %d changed: %v/%d", i, got[i].Sig, got[i].Count)
		}
	}
}

func TestCorruptTruncateAll(t *testing.T) {
	in, err := NewInjector(Config{Seed: 1, Truncate: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, counts := in.Corrupt(uniques(1, 2, 3))
	if len(got) != 0 {
		t.Errorf("%d entries survived Truncate=1", len(got))
	}
	if counts[KindTruncate] != 3 {
		t.Errorf("truncate count %d, want 3", counts[KindTruncate])
	}
}

func TestCorruptDuplicateMergesBack(t *testing.T) {
	// A duplicated entry that survives unmodified must merge back during
	// host-side dedup with a doubled count.
	in, err := NewInjector(Config{Seed: 1, Duplicate: 1})
	if err != nil {
		t.Fatal(err)
	}
	us := uniques(4, 6)
	got, counts := in.Corrupt(us)
	if counts[KindDuplicate] != 2 {
		t.Errorf("duplicate count %d, want 2", counts[KindDuplicate])
	}
	if len(got) != 2 {
		t.Fatalf("%d entries after dedup, want 2", len(got))
	}
	for i := range got {
		if got[i].Count != 2*us[i].Count {
			t.Errorf("entry %d count %d, want %d", i, got[i].Count, 2*us[i].Count)
		}
	}
}

func TestCorruptOutOfRangeWritesAllOnes(t *testing.T) {
	in, err := NewInjector(Config{Seed: 1, OutOfRange: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, counts := in.Corrupt(uniques(5))
	if counts[KindOutOfRange] != 1 {
		t.Fatalf("out-of-range count %d, want 1", counts[KindOutOfRange])
	}
	found := false
	for _, u := range got {
		for i := 0; i < u.Sig.Len(); i++ {
			if u.Sig.Word(i) == ^uint64(0) {
				found = true
			}
		}
	}
	if !found {
		t.Error("no all-ones word in corrupted set")
	}
}

func TestCorruptBitFlipChangesOneBit(t *testing.T) {
	in, err := NewInjector(Config{Seed: 2, BitFlip: 1})
	if err != nil {
		t.Fatal(err)
	}
	us := uniques(0x1234)
	got, counts := in.Corrupt(us)
	if counts[KindBitFlip] != 1 {
		t.Fatalf("bit-flip count %d, want 1", counts[KindBitFlip])
	}
	if len(got) != 1 {
		t.Fatalf("%d entries, want 1", len(got))
	}
	diff := 0
	for i := 0; i < got[0].Sig.Len(); i++ {
		x := got[0].Sig.Word(i) ^ us[0].Sig.Word(i)
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bits differ, want exactly 1", diff)
	}
}

// TestShardPlanTransient: execution faults must hit only attempt 0, and the
// plan must be deterministic per (seed, block).
func TestShardPlanTransient(t *testing.T) {
	in, err := NewInjector(Config{Seed: 5, ShardPanic: 1})
	if err != nil {
		t.Fatal(err)
	}
	f0 := in.ShardPlan(128, 64, 0)
	if f0.Kind != KindPanic {
		t.Fatalf("attempt 0 kind %v, want panic", f0.Kind)
	}
	if f0.Iteration < 0 || f0.Iteration >= 64 {
		t.Fatalf("fault iteration %d outside block", f0.Iteration)
	}
	if again := in.ShardPlan(128, 64, 0); again != f0 {
		t.Errorf("plan not deterministic: %+v vs %+v", again, f0)
	}
	for attempt := 1; attempt <= 3; attempt++ {
		if f := in.ShardPlan(128, 64, attempt); f.Kind != KindNone {
			t.Errorf("attempt %d faulted: %+v", attempt, f)
		}
	}
	if f := in.ShardPlan(128, 0, 0); f.Kind != KindNone {
		t.Errorf("empty block faulted: %+v", f)
	}
}

// stubSource counts Run calls without needing a simulator.
type stubSource struct{ calls int }

func (s *stubSource) Run() (*sim.Execution, error) {
	s.calls++
	return &sim.Execution{}, nil
}

func TestWrapShardPassThrough(t *testing.T) {
	in, err := NewInjector(Config{Seed: 1, BitFlip: 1}) // corruption only
	if err != nil {
		t.Fatal(err)
	}
	inner := &stubSource{}
	if src := in.WrapShard(context.Background(), inner, 0, 8, 0); src != sim.Source(inner) {
		t.Error("corruption-only injector wrapped the source")
	}
}

func TestRunnerInjectedPanic(t *testing.T) {
	in, err := NewInjector(Config{Seed: 5, ShardPanic: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := in.ShardPlan(0, 4, 0)
	inner := &stubSource{}
	src := in.WrapShard(context.Background(), inner, 0, 4, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "injected shard panic") {
			t.Fatalf("panic value %v", r)
		}
		if inner.calls != f.Iteration {
			t.Errorf("inner ran %d iterations before the panic, want %d", inner.calls, f.Iteration)
		}
	}()
	for i := 0; i <= f.Iteration; i++ {
		if _, err := src.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunnerStallHonorsContext(t *testing.T) {
	in, err := NewInjector(Config{Seed: 6, ShardStall: 1, StallFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	f := in.ShardPlan(0, 4, 0)
	if f.Kind != KindStall {
		t.Fatalf("planned %v, want stall", f.Kind)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	src := in.WrapShard(ctx, &stubSource{}, 0, 4, 0)
	start := time.Now()
	var runErr error
	for i := 0; i <= f.Iteration; i++ {
		if _, runErr = src.Run(); runErr != nil {
			break
		}
	}
	if !errors.Is(runErr, context.DeadlineExceeded) {
		t.Fatalf("stalled run error %v, want deadline exceeded", runErr)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("stall ignored the context (took %v)", el)
	}
}

func TestCountByKind(t *testing.T) {
	if CountByKind(nil) != nil {
		t.Error("empty quarantine yields non-nil counts")
	}
	q := []Quarantined{
		{Kind: QuarantineDecode}, {Kind: QuarantineDecode}, {Kind: QuarantineEdges},
	}
	counts := CountByKind(q)
	if counts[QuarantineDecode] != 2 || counts[QuarantineEdges] != 1 {
		t.Errorf("counts %v", counts)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNone: "none", KindBitFlip: "bit-flip", KindTruncate: "truncate",
		KindDuplicate: "duplicate", KindOutOfRange: "out-of-range",
		KindStall: "stall", KindPanic: "panic", KindWireCorrupt: "wire-corrupt",
		KindWireDrop: "wire-drop", KindWireDelay: "wire-delay",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if QuarantineDecode.String() != "decode" || QuarantineEdges.String() != "edge-build" {
		t.Errorf("quarantine kind strings: %q, %q", QuarantineDecode, QuarantineEdges)
	}
}
