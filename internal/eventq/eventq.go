// Package eventq provides the discrete-event scheduler underlying the
// simulated validation platform: a time-ordered queue of typed event records
// with a monotonic clock. Events at equal times run in scheduling order
// (FIFO), so simulations are fully deterministic for a given seed.
//
// Events are plain value records (Event) dispatched through a handler set
// with SetHandler — no per-event closure allocation on the hot path. A thin
// At/After compatibility shim boxes a func() as one reserved event kind
// (KindFunc) for tests and tools that don't need the typed path; both paths
// share the same clock and scheduling sequence, so interleaving them
// preserves FIFO tie-break order.
package eventq

// Time is a simulation timestamp in abstract cycles.
type Time int64

// KindFunc is the reserved event kind used by the At/After closure shim.
// Handlers never see it: the queue invokes the boxed func() directly.
// Typed-event producers must not use this kind.
const KindFunc uint8 = 255

// Event is a typed event record. Kind selects the dispatch arm in the
// handler's jump table; Core, Op, and Arg are payload fields whose meaning
// is private to the producer of each kind. At is filled in by the queue.
type Event struct {
	At   Time
	Kind uint8
	Core int32
	Op   int32
	Arg  int64
}

// Queue is a discrete-event scheduler. The zero value is not ready for use;
// call New.
//
// The heap is hand-rolled over a flat []entry rather than container/heap:
// the standard interface boxes every pushed and popped element in an
// interface value, which costs one allocation per event — far too much for a
// scheduler that runs hundreds of events per simulated iteration. The
// ordering (time, then scheduling sequence) is identical, so event execution
// order is unchanged.
type Queue struct {
	h       []entry
	now     Time
	seq     int64
	handler func(Event)
	// Closure shim storage: boxed funcs live in fns, indexed by Event.Arg.
	// Freed slots are recycled through fnFree so the shim reaches a steady
	// state too (it still allocates the closure itself, which is why the
	// hot paths use typed events).
	fns    []func()
	fnFree []int32
}

// New returns an empty queue with the clock at zero.
func New() *Queue { return &Queue{} }

type entry struct {
	ev  Event
	seq int64
}

func (a entry) before(b entry) bool {
	if a.ev.At != b.ev.At {
		return a.ev.At < b.ev.At
	}
	return a.seq < b.seq
}

// SetHandler installs the dispatch function invoked for every typed event.
// It survives Reset, so a Runner installs it once at construction. Stepping
// a queue holding typed events with no handler installed panics.
func (q *Queue) SetHandler(h func(Event)) { q.handler = h }

// Now returns the current simulation time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Reset discards all pending events and rewinds the clock and scheduling
// sequence to zero, keeping the underlying storage (and the handler) for
// reuse. A reset queue behaves exactly like a freshly New'd one.
func (q *Queue) Reset() {
	for i := range q.h {
		q.h[i] = entry{}
	}
	q.h = q.h[:0]
	for i := range q.fns {
		q.fns[i] = nil // release boxed closures for GC
	}
	q.fns = q.fns[:0]
	q.fnFree = q.fnFree[:0]
	q.now = 0
	q.seq = 0
}

// Push schedules a typed event at the absolute time ev.At. Scheduling in
// the past (before Now) runs the event at the current time instead; time
// never moves backwards.
func (q *Queue) Push(ev Event) {
	if ev.At < q.now {
		ev.At = q.now
	}
	q.seq++
	q.h = append(q.h, entry{ev: ev, seq: q.seq})
	q.siftUp(len(q.h) - 1)
}

// PushAfter schedules a typed event delay cycles from now.
func (q *Queue) PushAfter(delay Time, ev Event) {
	ev.At = q.now + delay
	q.Push(ev)
}

// At schedules fn to run at the absolute time at. This is the closure
// compatibility shim: the func is boxed as a KindFunc event sharing the same
// clock and sequence counter as typed events, so mixing both paths keeps
// FIFO tie-break order. Scheduling in the past (before Now) runs the event
// at the current time instead.
func (q *Queue) At(at Time, fn func()) {
	var slot int32
	if n := len(q.fnFree); n > 0 {
		slot = q.fnFree[n-1]
		q.fnFree = q.fnFree[:n-1]
		q.fns[slot] = fn
	} else {
		slot = int32(len(q.fns))
		q.fns = append(q.fns, fn)
	}
	q.Push(Event{At: at, Kind: KindFunc, Arg: int64(slot)})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Time, fn func()) { q.At(q.now+delay, fn) }

func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.h[r].before(q.h[l]) {
			min = r
		}
		if !q.h[min].before(q.h[i]) {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = entry{}
	q.h = q.h[:n]
	if n > 0 {
		q.siftDown(0)
	}
	q.now = e.ev.At
	if e.ev.Kind == KindFunc {
		slot := int32(e.ev.Arg)
		fn := q.fns[slot]
		q.fns[slot] = nil
		q.fnFree = append(q.fnFree, slot)
		fn()
	} else {
		q.handler(e.ev)
	}
	return true
}

// RunUntil processes events until the queue is empty, done returns true, or
// maxEvents events have run. It returns the number of events processed.
// A maxEvents of 0 means no limit. The done predicate is checked after each
// event.
func (q *Queue) RunUntil(done func() bool, maxEvents int) int {
	n := 0
	for len(q.h) > 0 {
		if done != nil && done() {
			return n
		}
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
		q.Step()
		n++
	}
	return n
}

// Drain processes all pending events (bounded by maxEvents when non-zero)
// and returns the number processed.
func (q *Queue) Drain(maxEvents int) int { return q.RunUntil(nil, maxEvents) }
