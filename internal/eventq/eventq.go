// Package eventq provides the discrete-event scheduler underlying the
// simulated validation platform: a time-ordered queue of callbacks with a
// monotonic clock. Events at equal times run in scheduling order (FIFO), so
// simulations are fully deterministic for a given seed.
package eventq

import "container/heap"

// Time is a simulation timestamp in abstract cycles.
type Time int64

// Queue is a discrete-event scheduler. The zero value is not ready for use;
// call New.
type Queue struct {
	h   eventHeap
	now Time
	seq int64
}

// New returns an empty queue with the clock at zero.
func New() *Queue { return &Queue{} }

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Now returns the current simulation time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// At schedules fn to run at the absolute time at. Scheduling in the past
// (before Now) runs the event at the current time instead; time never moves
// backwards.
func (q *Queue) At(at Time, fn func()) {
	if at < q.now {
		at = q.now
	}
	q.seq++
	heap.Push(&q.h, event{at: at, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Time, fn func()) { q.At(q.now+delay, fn) }

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(event)
	q.now = e.at
	e.fn()
	return true
}

// RunUntil processes events until the queue is empty, done returns true, or
// maxEvents events have run. It returns the number of events processed.
// A maxEvents of 0 means no limit. The done predicate is checked after each
// event.
func (q *Queue) RunUntil(done func() bool, maxEvents int) int {
	n := 0
	for len(q.h) > 0 {
		if done != nil && done() {
			return n
		}
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
		q.Step()
		n++
	}
	return n
}

// Drain processes all pending events (bounded by maxEvents when non-zero)
// and returns the number processed.
func (q *Queue) Drain(maxEvents int) int { return q.RunUntil(nil, maxEvents) }
