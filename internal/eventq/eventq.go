// Package eventq provides the discrete-event scheduler underlying the
// simulated validation platform: a time-ordered queue of callbacks with a
// monotonic clock. Events at equal times run in scheduling order (FIFO), so
// simulations are fully deterministic for a given seed.
package eventq

// Time is a simulation timestamp in abstract cycles.
type Time int64

// Queue is a discrete-event scheduler. The zero value is not ready for use;
// call New.
//
// The heap is hand-rolled over a flat []event rather than container/heap:
// the standard interface boxes every pushed and popped element in an
// interface value, which costs one allocation per event — far too much for a
// scheduler that runs hundreds of events per simulated iteration. The
// ordering (time, then scheduling sequence) is identical, so event execution
// order is unchanged.
type Queue struct {
	h   []event
	now Time
	seq int64
}

// New returns an empty queue with the clock at zero.
func New() *Queue { return &Queue{} }

type event struct {
	at  Time
	seq int64
	fn  func()
}

func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Now returns the current simulation time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Reset discards all pending events and rewinds the clock and scheduling
// sequence to zero, keeping the underlying storage for reuse. A reset queue
// behaves exactly like a freshly New'd one.
func (q *Queue) Reset() {
	for i := range q.h {
		q.h[i].fn = nil // release callback closures for GC
	}
	q.h = q.h[:0]
	q.now = 0
	q.seq = 0
}

// At schedules fn to run at the absolute time at. Scheduling in the past
// (before Now) runs the event at the current time instead; time never moves
// backwards.
func (q *Queue) At(at Time, fn func()) {
	if at < q.now {
		at = q.now
	}
	q.seq++
	q.h = append(q.h, event{at: at, seq: q.seq, fn: fn})
	q.siftUp(len(q.h) - 1)
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Time, fn func()) { q.At(q.now+delay, fn) }

func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.h[r].before(q.h[l]) {
			min = r
		}
		if !q.h[min].before(q.h[i]) {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = event{} // release callback for GC
	q.h = q.h[:n]
	if n > 0 {
		q.siftDown(0)
	}
	q.now = e.at
	e.fn()
	return true
}

// RunUntil processes events until the queue is empty, done returns true, or
// maxEvents events have run. It returns the number of events processed.
// A maxEvents of 0 means no limit. The done predicate is checked after each
// event.
func (q *Queue) RunUntil(done func() bool, maxEvents int) int {
	n := 0
	for len(q.h) > 0 {
		if done != nil && done() {
			return n
		}
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
		q.Step()
		n++
	}
	return n
}

// Drain processes all pending events (bounded by maxEvents when non-zero)
// and returns the number processed.
func (q *Queue) Drain(maxEvents int) int { return q.RunUntil(nil, maxEvents) }
