package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestOrderingByTime(t *testing.T) {
	q := New()
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	q.Drain(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if q.Now() != 30 {
		t.Errorf("Now = %d, want 30", q.Now())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func() { got = append(got, i) })
	}
	q.Drain(0)
	if !sort.IntsAreSorted(got) {
		t.Errorf("equal-time events out of scheduling order: %v", got)
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	q := New()
	var fired Time = -1
	q.At(100, func() {
		q.After(5, func() { fired = q.Now() })
	})
	q.Drain(0)
	if fired != 105 {
		t.Errorf("After fired at %d, want 105", fired)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	q := New()
	var fired Time = -1
	q.At(50, func() {
		q.At(10, func() { fired = q.Now() }) // in the past
	})
	q.Drain(0)
	if fired != 50 {
		t.Errorf("past event fired at %d, want 50", fired)
	}
}

func TestRunUntilPredicate(t *testing.T) {
	q := New()
	count := 0
	for i := 0; i < 100; i++ {
		q.At(Time(i), func() { count++ })
	}
	n := q.RunUntil(func() bool { return count >= 10 }, 0)
	if count != 10 || n != 10 {
		t.Errorf("count=%d n=%d, want 10/10", count, n)
	}
	if q.Len() != 90 {
		t.Errorf("Len = %d, want 90", q.Len())
	}
}

func TestRunUntilMaxEvents(t *testing.T) {
	q := New()
	count := 0
	for i := 0; i < 100; i++ {
		q.At(Time(i), func() { count++ })
	}
	if n := q.Drain(7); n != 7 || count != 7 {
		t.Errorf("n=%d count=%d, want 7/7", n, count)
	}
}

func TestStepEmpty(t *testing.T) {
	q := New()
	if q.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := New()
	var fired []Time
	for i := 0; i < 1000; i++ {
		at := Time(rng.Intn(500))
		q.At(at, func() { fired = append(fired, at) })
	}
	q.Drain(0)
	if len(fired) != 1000 {
		t.Fatalf("fired %d events", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("time went backwards at %d: %d < %d", i, fired[i], fired[i-1])
		}
	}
}

// TestMixedPathFIFOAtEqualTimes pins the tie-break contract across both
// scheduling paths: typed events (Push) and boxed closures (At) share one
// scheduling-sequence counter, so events at equal timestamps fire in exactly
// the order they were scheduled regardless of which path each one used.
func TestMixedPathFIFOAtEqualTimes(t *testing.T) {
	q := New()
	var got []int
	q.SetHandler(func(ev Event) { got = append(got, int(ev.Arg)) })
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			q.Push(Event{At: 5, Kind: 1, Arg: int64(i)})
		} else {
			i := i
			q.At(5, func() { got = append(got, i) })
		}
	}
	q.Drain(0)
	if len(got) != 12 || !sort.IntsAreSorted(got) {
		t.Errorf("mixed-path equal-time events out of scheduling order: %v", got)
	}
}

// TestTypedEventOrdering covers the typed path alone: time-major order,
// past-scheduling clamped to now, PushAfter relative to the current time.
func TestTypedEventOrdering(t *testing.T) {
	q := New()
	var got []int
	var at []Time
	q.SetHandler(func(ev Event) {
		got = append(got, int(ev.Arg))
		at = append(at, q.Now())
		if ev.Arg == 1 {
			q.PushAfter(7, Event{Kind: 1, Arg: 9})
			q.Push(Event{At: 2, Kind: 1, Arg: 8}) // in the past: clamps to now
		}
	})
	q.Push(Event{At: 30, Kind: 1, Arg: 3})
	q.Push(Event{At: 10, Kind: 1, Arg: 1})
	q.Push(Event{At: 20, Kind: 1, Arg: 2})
	q.Drain(0)
	want := []int{1, 8, 9, 2, 3}
	wantAt := []Time{10, 10, 17, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] || at[i] != wantAt[i] {
			t.Fatalf("fired %v at %v; want %v at %v", got, at, want, wantAt)
		}
	}
}

// TestHandlerSurvivesReset: Reset clears events and rewinds the clock but
// keeps the installed handler, so a Runner wires it exactly once.
func TestHandlerSurvivesReset(t *testing.T) {
	q := New()
	fired := 0
	q.SetHandler(func(Event) { fired++ })
	q.Push(Event{At: 1, Kind: 1})
	q.Reset()
	if q.Len() != 0 || q.Now() != 0 {
		t.Fatalf("Reset left Len=%d Now=%d", q.Len(), q.Now())
	}
	q.Push(Event{At: 1, Kind: 1})
	q.Drain(0)
	if fired != 1 {
		t.Errorf("fired %d events after reset, want 1", fired)
	}
}

// TestTypedPathAllocFree: pushing and dispatching typed events through a
// warm queue allocates nothing — the engine's hot loop depends on this.
func TestTypedPathAllocFree(t *testing.T) {
	q := New()
	q.SetHandler(func(Event) {})
	for i := 0; i < 64; i++ {
		q.Push(Event{At: Time(i), Kind: 1})
	}
	q.Drain(0)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 64; i++ {
			q.Push(Event{At: Time(i), Kind: 1})
		}
		q.Drain(0)
	})
	if allocs != 0 {
		t.Errorf("typed path allocated %.1f per run, want 0", allocs)
	}
}

func TestCascadingEvents(t *testing.T) {
	q := New()
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 50 {
			depth++
			q.After(1, recurse)
		}
	}
	q.At(0, recurse)
	q.Drain(0)
	if depth != 50 || q.Now() != 50 {
		t.Errorf("depth=%d now=%d", depth, q.Now())
	}
}
