package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestOrderingByTime(t *testing.T) {
	q := New()
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	q.Drain(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if q.Now() != 30 {
		t.Errorf("Now = %d, want 30", q.Now())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func() { got = append(got, i) })
	}
	q.Drain(0)
	if !sort.IntsAreSorted(got) {
		t.Errorf("equal-time events out of scheduling order: %v", got)
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	q := New()
	var fired Time = -1
	q.At(100, func() {
		q.After(5, func() { fired = q.Now() })
	})
	q.Drain(0)
	if fired != 105 {
		t.Errorf("After fired at %d, want 105", fired)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	q := New()
	var fired Time = -1
	q.At(50, func() {
		q.At(10, func() { fired = q.Now() }) // in the past
	})
	q.Drain(0)
	if fired != 50 {
		t.Errorf("past event fired at %d, want 50", fired)
	}
}

func TestRunUntilPredicate(t *testing.T) {
	q := New()
	count := 0
	for i := 0; i < 100; i++ {
		q.At(Time(i), func() { count++ })
	}
	n := q.RunUntil(func() bool { return count >= 10 }, 0)
	if count != 10 || n != 10 {
		t.Errorf("count=%d n=%d, want 10/10", count, n)
	}
	if q.Len() != 90 {
		t.Errorf("Len = %d, want 90", q.Len())
	}
}

func TestRunUntilMaxEvents(t *testing.T) {
	q := New()
	count := 0
	for i := 0; i < 100; i++ {
		q.At(Time(i), func() { count++ })
	}
	if n := q.Drain(7); n != 7 || count != 7 {
		t.Errorf("n=%d count=%d, want 7/7", n, count)
	}
}

func TestStepEmpty(t *testing.T) {
	q := New()
	if q.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := New()
	var fired []Time
	for i := 0; i < 1000; i++ {
		at := Time(rng.Intn(500))
		q.At(at, func() { fired = append(fired, at) })
	}
	q.Drain(0)
	if len(fired) != 1000 {
		t.Fatalf("fired %d events", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("time went backwards at %d: %d < %d", i, fired[i], fired[i-1])
		}
	}
}

func TestCascadingEvents(t *testing.T) {
	q := New()
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 50 {
			depth++
			q.After(1, recurse)
		}
	}
	q.At(0, recurse)
	q.Drain(0)
	if depth != 50 || q.Now() != 50 {
		t.Errorf("depth=%d now=%d", depth, q.Now())
	}
}
