package isa

import "fmt"

// Asm builds an instruction sequence with symbolic labels, resolving branch
// targets at Assemble time. Labels may be referenced before definition
// (forward branches), which the instrumentation's branch chains rely on.
type Asm struct {
	code   []Instr
	labels map[string]int
	refs   []ref
	opID   int // TestOpID attributed to subsequently emitted instructions
}

type ref struct {
	instr int
	label string
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int), opID: -1}
}

// SetTestOp attributes subsequently emitted instructions to the given test
// operation ID; pass -1 for instrumentation-only code.
func (a *Asm) SetTestOp(id int) { a.opID = id }

// Len returns the number of instructions emitted so far.
func (a *Asm) Len() int { return len(a.code) }

// Label defines name at the current position.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q", name))
	}
	a.labels[name] = len(a.code)
}

func (a *Asm) emit(i Instr) {
	i.TestOpID = a.opID
	a.code = append(a.code, i)
}

// LD emits a load of [addr] into rd.
func (a *Asm) LD(rd Reg, addr uint64) { a.emit(Instr{Op: LD, Rd: rd, Addr: addr}) }

// ST emits a store of the immediate to [addr].
func (a *Asm) ST(addr uint64, imm uint64) { a.emit(Instr{Op: ST, Addr: addr, Imm: imm}) }

// STR emits a store of register rs to [addr].
func (a *Asm) STR(addr uint64, rs Reg) { a.emit(Instr{Op: STR, Rs: rs, Addr: addr}) }

// MOVI emits rd = imm.
func (a *Asm) MOVI(rd Reg, imm uint64) { a.emit(Instr{Op: MOVI, Rd: rd, Imm: imm}) }

// ADDI emits rd += imm.
func (a *Asm) ADDI(rd Reg, imm uint64) { a.emit(Instr{Op: ADDI, Rd: rd, Imm: imm}) }

// CMPI emits flag = (rs == imm).
func (a *Asm) CMPI(rs Reg, imm uint64) { a.emit(Instr{Op: CMPI, Rs: rs, Imm: imm}) }

func (a *Asm) branch(op Opcode, label string) {
	a.refs = append(a.refs, ref{instr: len(a.code), label: label})
	a.emit(Instr{Op: op, Target: -1})
}

// BEQ emits a branch to label when the flag is set.
func (a *Asm) BEQ(label string) { a.branch(BEQ, label) }

// BNE emits a branch to label when the flag is clear.
func (a *Asm) BNE(label string) { a.branch(BNE, label) }

// B emits an unconditional branch to label.
func (a *Asm) B(label string) { a.branch(B, label) }

// FENCE emits a full barrier.
func (a *Asm) FENCE() { a.emit(Instr{Op: FENCE}) }

// FAIL emits an assertion trap.
func (a *Asm) FAIL() { a.emit(Instr{Op: FAIL}) }

// HALT emits a thread terminator.
func (a *Asm) HALT() { a.emit(Instr{Op: HALT}) }

// Assemble resolves all label references and returns the code.
func (a *Asm) Assemble() ([]Instr, error) {
	for _, r := range a.refs {
		tgt, ok := a.labels[r.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", r.label)
		}
		a.code[r.instr].Target = tgt
	}
	return a.code, nil
}

// MustAssemble is Assemble, panicking on error.
func (a *Asm) MustAssemble() []Instr {
	code, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return code
}
