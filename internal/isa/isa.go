// Package isa defines the small pseudo-ISA in which test programs are
// materialized after instrumentation, together with two byte encodings used
// for the paper's code-size accounting (Fig. 12):
//
//   - EncodingRISC: fixed 4-byte instructions (the "ARM-like" flavor), with
//     an extra 4-byte literal word when an immediate or address does not fit
//     the instruction's 16-bit immediate field (a movw/movt-style pair).
//   - EncodingCISC: variable-length instructions (the "x86-like" flavor):
//     one opcode byte, one register byte when registers are used, plus the
//     minimal 1/2/4/8-byte immediate and 4-byte absolute addresses.
//
// The interpreter in internal/vm executes the instruction list directly; the
// encodings exist so instrumented-versus-original code-size ratios are
// measured on realistic instruction bytes rather than estimated.
package isa

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Reg names one of the 16 general-purpose registers r0..r15.
type Reg uint8

// NumRegs is the number of addressable registers.
const NumRegs = 16

// String returns the conventional register name, e.g. "r3".
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Opcode enumerates the pseudo-ISA instructions.
type Opcode uint8

const (
	// LD loads the shared word at Addr into Rd.
	LD Opcode = iota
	// ST stores the immediate Imm to the shared word at Addr.
	ST
	// STR stores register Rs to the (typically thread-private) word at
	// Addr; used by signature spills and the register-flushing baseline.
	STR
	// MOVI sets Rd to the immediate Imm.
	MOVI
	// ADDI adds the immediate Imm to Rd.
	ADDI
	// CMPI sets the equality flag to (Rs == Imm).
	CMPI
	// BEQ branches to Target when the equality flag is set.
	BEQ
	// BNE branches to Target when the equality flag is clear.
	BNE
	// B branches unconditionally to Target.
	B
	// FENCE is a full memory barrier.
	FENCE
	// FAIL traps: an instrumentation assertion failed (paper §3.1 — a value
	// outside the load's statically computed candidate set).
	FAIL
	// HALT ends the thread.
	HALT
)

var opcodeNames = [...]string{
	LD: "ld", ST: "st", STR: "str", MOVI: "movi", ADDI: "addi", CMPI: "cmpi",
	BEQ: "beq", BNE: "bne", B: "b", FENCE: "fence", FAIL: "fail", HALT: "halt",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// IsBranch reports whether the opcode transfers control.
func (o Opcode) IsBranch() bool { return o == BEQ || o == BNE || o == B }

// Instr is one decoded instruction. Target is an instruction index within
// the containing code sequence (resolved by the assembler).
type Instr struct {
	Op     Opcode
	Rd, Rs Reg
	Imm    uint64
	Addr   uint64
	Target int
	// TestOpID links the instruction back to the test-program operation it
	// implements (-1 for instrumentation-only instructions). The VM uses it
	// to attribute memory traffic.
	TestOpID int
}

// String renders a textual disassembly of the instruction.
func (i Instr) String() string {
	switch i.Op {
	case LD:
		return fmt.Sprintf("ld %s, [%#x]", i.Rd, i.Addr)
	case ST:
		return fmt.Sprintf("st [%#x], #%d", i.Addr, i.Imm)
	case STR:
		return fmt.Sprintf("str [%#x], %s", i.Addr, i.Rs)
	case MOVI:
		return fmt.Sprintf("movi %s, #%d", i.Rd, i.Imm)
	case ADDI:
		return fmt.Sprintf("addi %s, #%d", i.Rd, i.Imm)
	case CMPI:
		return fmt.Sprintf("cmpi %s, #%d", i.Rs, i.Imm)
	case BEQ, BNE, B:
		return fmt.Sprintf("%s @%d", i.Op, i.Target)
	default:
		return i.Op.String()
	}
}

// Encoding selects a byte-size model for code-size accounting.
type Encoding uint8

const (
	// EncodingRISC is the fixed-width (ARM-like) encoding.
	EncodingRISC Encoding = iota
	// EncodingCISC is the variable-width (x86-like) encoding.
	EncodingCISC
)

// String names the encoding.
func (e Encoding) String() string {
	if e == EncodingRISC {
		return "RISC"
	}
	return "CISC"
}

// immBytes returns the minimal immediate width for the CISC encoding.
func immBytes(v uint64) int {
	switch {
	case v < 1<<8:
		return 1
	case v < 1<<16:
		return 2
	case v < 1<<32:
		return 4
	default:
		return 8
	}
}

// Size returns the encoded size of the instruction in bytes.
func (e Encoding) Size(i Instr) int {
	if e == EncodingRISC {
		// 4 bytes, plus a literal word for wide immediates/addresses.
		extra := 0
		if i.Imm >= 1<<16 {
			extra += 4
		}
		if (i.Op == LD || i.Op == ST || i.Op == STR) && i.Addr >= 1<<16 {
			extra += 4
		}
		return 4 + extra
	}
	// CISC: opcode byte + register byte (when registers used) + operands.
	switch i.Op {
	case LD:
		return 1 + 1 + 4 // opcode, reg, abs32 address
	case ST:
		return 1 + 4 + immBytes(i.Imm)
	case STR:
		return 1 + 1 + 4
	case MOVI, ADDI, CMPI:
		return 1 + 1 + immBytes(i.Imm)
	case BEQ, BNE, B:
		return 1 + 4 // rel32
	case FENCE:
		return 3 // e.g. mfence
	case FAIL:
		return 2 // e.g. ud2
	case HALT:
		return 1
	default:
		return 1
	}
}

// Encode appends an encoded form of the instruction to b. The byte layout
// is deterministic and length-consistent with Size; it exists so code-size
// measurements operate on real byte streams.
func (e Encoding) Encode(b []byte, i Instr) []byte {
	n := e.Size(i)
	start := len(b)
	b = append(b, byte(i.Op), byte(i.Rd)<<4|byte(i.Rs))
	b = binary.LittleEndian.AppendUint32(b, uint32(i.Addr))
	b = binary.LittleEndian.AppendUint64(b, i.Imm)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(i.Target)))
	// Truncate or pad to the modeled size.
	if len(b)-start > n {
		b = b[:start+n]
	}
	for len(b)-start < n {
		b = append(b, 0)
	}
	return b
}

// CodeSize returns the total encoded size in bytes of the code sequence.
func (e Encoding) CodeSize(code []Instr) int {
	n := 0
	for _, i := range code {
		n += e.Size(i)
	}
	return n
}

// Disassemble renders the code sequence one instruction per line with
// instruction indices, in the style of objdump output.
func Disassemble(code []Instr) string {
	var sb strings.Builder
	for idx, i := range code {
		fmt.Fprintf(&sb, "%4d: %s\n", idx, i)
	}
	return sb.String()
}
