package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeStrings(t *testing.T) {
	if LD.String() != "ld" || FENCE.String() != "fence" || HALT.String() != "halt" {
		t.Error("opcode mnemonics wrong")
	}
	if !strings.Contains(Opcode(200).String(), "200") {
		t.Error("unknown opcode String")
	}
}

func TestIsBranch(t *testing.T) {
	for _, op := range []Opcode{BEQ, BNE, B} {
		if !op.IsBranch() {
			t.Errorf("%v.IsBranch() = false", op)
		}
	}
	for _, op := range []Opcode{LD, ST, MOVI, FENCE, HALT} {
		if op.IsBranch() {
			t.Errorf("%v.IsBranch() = true", op)
		}
	}
}

func TestAsmResolvesForwardAndBackwardBranches(t *testing.T) {
	a := NewAsm()
	a.Label("top")
	a.MOVI(0, 1)
	a.CMPI(0, 1)
	a.BEQ("end") // forward
	a.B("top")   // backward
	a.Label("end")
	a.HALT()
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if code[2].Target != 4 {
		t.Errorf("forward target = %d, want 4", code[2].Target)
	}
	if code[3].Target != 0 {
		t.Errorf("backward target = %d, want 0", code[3].Target)
	}
}

func TestAsmUndefinedLabel(t *testing.T) {
	a := NewAsm()
	a.B("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Error("Assemble accepted undefined label")
	}
}

func TestAsmDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	a := NewAsm()
	a.Label("x")
	a.Label("x")
}

func TestAsmTestOpAttribution(t *testing.T) {
	a := NewAsm()
	a.SetTestOp(7)
	a.LD(0, 0x100)
	a.SetTestOp(-1)
	a.CMPI(0, 0)
	code := a.MustAssemble()
	if code[0].TestOpID != 7 {
		t.Errorf("load TestOpID = %d, want 7", code[0].TestOpID)
	}
	if code[1].TestOpID != -1 {
		t.Errorf("cmpi TestOpID = %d, want -1", code[1].TestOpID)
	}
}

func TestRISCFixedWidth(t *testing.T) {
	small := []Instr{
		{Op: LD, Rd: 1, Addr: 0x100},
		{Op: MOVI, Rd: 2, Imm: 5},
		{Op: B, Target: 3},
		{Op: FENCE},
		{Op: HALT},
	}
	for _, i := range small {
		if got := EncodingRISC.Size(i); got != 4 {
			t.Errorf("RISC size of %v = %d, want 4", i, got)
		}
	}
}

func TestRISCWideOperandsTakeLiterals(t *testing.T) {
	if got := EncodingRISC.Size(Instr{Op: MOVI, Imm: 1 << 20}); got != 8 {
		t.Errorf("wide MOVI = %d, want 8", got)
	}
	if got := EncodingRISC.Size(Instr{Op: LD, Addr: 0x10000}); got != 8 {
		t.Errorf("wide LD = %d, want 8", got)
	}
	if got := EncodingRISC.Size(Instr{Op: ST, Addr: 0x10000, Imm: 1 << 20}); got != 12 {
		t.Errorf("wide ST = %d, want 12", got)
	}
}

func TestCISCVariableWidth(t *testing.T) {
	cases := []struct {
		i    Instr
		want int
	}{
		{Instr{Op: LD, Rd: 1, Addr: 0x100}, 6},
		{Instr{Op: ST, Addr: 0x100, Imm: 5}, 6},
		{Instr{Op: ST, Addr: 0x100, Imm: 300}, 7},
		{Instr{Op: MOVI, Rd: 1, Imm: 1}, 3},
		{Instr{Op: MOVI, Rd: 1, Imm: 1 << 40}, 10},
		{Instr{Op: ADDI, Rd: 1, Imm: 70000}, 6},
		{Instr{Op: BNE, Target: 9}, 5},
		{Instr{Op: FENCE}, 3},
		{Instr{Op: FAIL}, 2},
		{Instr{Op: HALT}, 1},
	}
	for _, c := range cases {
		if got := EncodingCISC.Size(c.i); got != c.want {
			t.Errorf("CISC size of %v = %d, want %d", c.i, got, c.want)
		}
	}
}

func TestEncodeLengthMatchesSize(t *testing.T) {
	f := func(opSel uint8, rd, rs uint8, imm uint64, addr uint32, enc bool) bool {
		ops := []Opcode{LD, ST, STR, MOVI, ADDI, CMPI, BEQ, BNE, B, FENCE, FAIL, HALT}
		i := Instr{
			Op:   ops[int(opSel)%len(ops)],
			Rd:   Reg(rd % NumRegs),
			Rs:   Reg(rs % NumRegs),
			Imm:  imm,
			Addr: uint64(addr),
		}
		e := EncodingRISC
		if enc {
			e = EncodingCISC
		}
		b := e.Encode(nil, i)
		return len(b) == e.Size(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeSizeSums(t *testing.T) {
	code := []Instr{
		{Op: MOVI, Rd: 1, Imm: 1},
		{Op: HALT},
	}
	if got := EncodingCISC.CodeSize(code); got != 4 {
		t.Errorf("CodeSize = %d, want 4", got)
	}
	if got := EncodingRISC.CodeSize(code); got != 8 {
		t.Errorf("RISC CodeSize = %d, want 8", got)
	}
}

func TestDisassemble(t *testing.T) {
	a := NewAsm()
	a.LD(1, 0x100)
	a.CMPI(1, 0)
	a.BNE("out")
	a.Label("out")
	a.HALT()
	text := Disassemble(a.MustAssemble())
	for _, want := range []string{"ld r1, [0x100]", "cmpi r1, #0", "bne @3", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestInstrStringAll(t *testing.T) {
	// Every opcode renders something non-empty and panic-free.
	for op := LD; op <= HALT; op++ {
		s := Instr{Op: op, Rd: 1, Rs: 2, Imm: 3, Addr: 4, Target: 5}.String()
		if s == "" {
			t.Errorf("empty String for %v", op)
		}
	}
}
