package corpus

import (
	"encoding/binary"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"mtracecheck/internal/sig"
)

func testKey(n uint64) Key {
	return Key{ProgHash: n, Platform: "sim-x86", MCM: "TSO"}
}

func testSig(words ...uint64) sig.Signature { return sig.New(words) }

// seedStore builds a two-key store on disk and returns its path.
func seedStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corpus.mtc")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(testKey(1), testSig(10, 11), 100)
	s.Add(testKey(1), testSig(20, 21), 100)
	s.Add(testKey(1), testSig(30, 31), 200)
	s.Add(testKey(2), testSig(7), 300)
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenMissingFileIsEmptyStore(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "absent.mtc"))
	if err != nil {
		t.Fatalf("missing file must open clean, got %v", err)
	}
	if s.Total() != 0 || len(s.Keys()) != 0 {
		t.Fatalf("missing file yielded a non-empty store: %d sigs", s.Total())
	}
}

func TestRoundTrip(t *testing.T) {
	path := seedStore(t)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != testKey(1) || keys[1] != testKey(2) {
		t.Fatalf("keys = %v, want first-seen order [1, 2]", keys)
	}
	if w, ok := s.Words(testKey(1)); !ok || w != 2 {
		t.Fatalf("Words(key1) = %d,%v, want 2,true", w, ok)
	}
	if s.Len(testKey(1)) != 3 || s.Len(testKey(2)) != 1 || s.Total() != 4 {
		t.Fatalf("counts wrong: %d + %d = %d", s.Len(testKey(1)), s.Len(testKey(2)), s.Total())
	}
	entries := s.Entries(testKey(1))
	wantSeeds := []int64{100, 100, 200}
	for i, e := range entries {
		if e.Seed != wantSeeds[i] {
			t.Errorf("entry %d seed = %d, want %d (append order lost)", i, e.Seed, wantSeeds[i])
		}
	}
	if !entries[2].Sig.Equal(testSig(30, 31)) {
		t.Errorf("entry 2 sig = %v, want [30 31]", entries[2].Sig)
	}
	if !s.Contains(testKey(1), testSig(20, 21).AppendBinary(nil)) {
		t.Error("Contains missed a stored signature")
	}
	if s.Contains(testKey(1), testSig(99, 99).AppendBinary(nil)) {
		t.Error("Contains claimed an absent signature")
	}
	if s.Contains(testKey(3), testSig(10, 11).AppendBinary(nil)) {
		t.Error("Contains crossed keys")
	}
}

func TestAddDedupAndWidthMismatch(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "c.mtc"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Add(testKey(1), testSig(1, 2), 5) {
		t.Fatal("first Add rejected")
	}
	if s.Add(testKey(1), testSig(1, 2), 6) {
		t.Error("duplicate signature accepted")
	}
	if s.Add(testKey(1), testSig(1, 2, 3), 7) {
		t.Error("width-mismatched signature accepted")
	}
	if s.Len(testKey(1)) != 1 {
		t.Errorf("Len = %d, want 1", s.Len(testKey(1)))
	}
}

func TestFlushCleanStoreIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.mtc")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Flush()
	if err != nil || n != 0 {
		t.Fatalf("clean Flush = %d,%v, want 0,nil", n, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("clean Flush created a file")
	}
}

// refixChecksum recomputes the trailing FNV-64a so a mutation upstream of
// the checksum is seen by its own validator, not the checksum check.
func refixChecksum(data []byte) []byte {
	h := fnv.New64a()
	h.Write(data[:len(data)-8])
	binary.LittleEndian.PutUint64(data[len(data)-8:], h.Sum64())
	return data
}

// TestCorruptionDegradesToCold is the corruption matrix: every damaged
// image must yield (usable empty store, error) from Open — a cold run,
// never a wrong verdict.
func TestCorruptionDegradesToCold(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated entries", func(b []byte) []byte { return refixChecksum(b[:len(b)-24]) }},
		{"bad checksum", func(b []byte) []byte { b[20] ^= 0xff; return b }},
		{"wrong version", func(b []byte) []byte { b[7] = '2'; return refixChecksum(b) }},
		{"wrong magic", func(b []byte) []byte { copy(b, "NOTMYFMT"); return refixChecksum(b) }},
		{"implausible key count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 1<<30)
			return refixChecksum(b)
		}},
		{"index offset out of range", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(b)-16:], uint64(len(b)))
			return refixChecksum(b)
		}},
		{"empty file", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := seedStore(t)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(path)
			if err == nil {
				t.Fatal("corrupt corpus opened without error")
			}
			if s == nil {
				t.Fatal("corrupt corpus yielded no store (must degrade, not fail)")
			}
			if s.Total() != 0 {
				t.Fatalf("corrupt corpus retained %d signatures", s.Total())
			}
			if s.Contains(testKey(1), testSig(10, 11).AppendBinary(nil)) {
				t.Fatal("corrupt corpus still answers Contains — wrong-verdict risk")
			}
		})
	}
}

// TestQuarantineOnFlush: a store that failed to load preserves the
// unreadable original under ".quarantined" when it first persists.
func TestQuarantineOnFlush(t *testing.T) {
	path := seedStore(t)
	if err := os.WriteFile(path, []byte("garbage, not a corpus"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err == nil {
		t.Fatal("garbage opened without error")
	}
	s.Add(testKey(9), testSig(1), 42)
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	q, err := os.ReadFile(path + ".quarantined")
	if err != nil || string(q) != "garbage, not a corpus" {
		t.Fatalf("quarantined original missing or altered: %q, %v", q, err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatalf("rebuilt corpus unreadable: %v", err)
	}
	if re.Total() != 1 || !re.Contains(testKey(9), testSig(1).AppendBinary(nil)) {
		t.Fatal("rebuilt corpus lost the staged entry")
	}
}

func TestDecodeRejectsDuplicateKeySections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.mtc")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(testKey(1), testSig(5), 1)
	// Force the same key into the section order twice: encode emits two
	// identical sections and decode must refuse the second.
	s.mu.Lock()
	s.order = append(s.order, testKey(1))
	data := s.encode()
	s.mu.Unlock()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("duplicate key sections decoded without error")
	}
}

func TestFlushAtomicReplace(t *testing.T) {
	path := seedStore(t)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(testKey(2), testSig(8), 301)
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary file left behind after rename")
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Total() != 5 {
		t.Fatalf("reloaded total = %d, want 5", re.Total())
	}
}
