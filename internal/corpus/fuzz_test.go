package corpus

import (
	"os"
	"path/filepath"
	"testing"

	"mtracecheck/internal/sig"
)

// FuzzCorpusLoad feeds arbitrary bytes through the full lifecycle: Open
// must never panic and always return a usable store (possibly empty with
// an error), and after staging an entry and flushing, the rewritten file
// must load cleanly — the quarantine-and-rebuild contract under any
// corruption whatsoever.
func FuzzCorpusLoad(f *testing.F) {
	valid := func(build func(*Store)) []byte {
		s := &Store{sections: make(map[Key]*section)}
		build(s)
		return s.encode()
	}
	f.Add([]byte{})
	f.Add([]byte("MTCCORP1"))
	f.Add(valid(func(s *Store) {}))
	f.Add(valid(func(s *Store) {
		s.Add(Key{ProgHash: 7, Platform: "p", MCM: "TSO"}, sig.New([]uint64{1, 2}), 3)
		s.Add(Key{ProgHash: 7, Platform: "p", MCM: "TSO"}, sig.New([]uint64{4, 5}), 3)
		s.Add(Key{ProgHash: 8, Platform: "q", MCM: "RMO"}, sig.New([]uint64{6}), 9)
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "c.mtc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, _ := Open(path)
		if s == nil {
			t.Fatal("Open returned a nil store")
		}
		k := Key{ProgHash: 0xfeed, Platform: "fuzz", MCM: "SC"}
		s.Add(k, sig.New([]uint64{42}), 1)
		if _, err := s.Flush(); err != nil {
			t.Fatalf("Flush after load: %v", err)
		}
		if _, err := Open(path); err != nil {
			t.Fatalf("flushed corpus does not reload: %v", err)
		}
	})
}
