// Package corpus implements the persistent cross-campaign signature
// corpus: an append-only store of every signature ever proven acyclic,
// keyed by (program FNV-64a hash, platform name, memory consistency
// model). A signature is a pure function of (program, observed order),
// so an acyclicity verdict established by one campaign is reusable by
// every later campaign over the same key — warm campaigns skip decode
// and checking for corpus hits entirely, without changing any verdict.
//
// # File format (MTCCORP1)
//
// The on-disk format extends the MTCSIG02 provenance idea (program
// hash + seed + platform) to many keys and many campaigns, and is laid
// out mmap-friendly: fixed-width little-endian records and a trailing
// byte-offset index, so a reader can map the file and slice sections
// without a sequential parse. All integers are little-endian.
//
//	magic    [8]byte "MTCCORP1"
//	nkeys    uint32
//	nkeys × section:
//	    proghash uint64            program FNV-64a (prog.Format bytes)
//	    platlen  uint16, platform  UTF-8 platform name
//	    mcmlen   uint16, mcm       memory consistency model name
//	    words    uint32            signature width in 64-bit words
//	    nsigs    uint32            known-good signature count
//	    nsigs × entry:
//	        seed  uint64           first-seen campaign seed (int64 bits)
//	        words × uint64         signature words
//	index    nkeys × uint64        byte offset of each section
//	indexOff uint64                byte offset of the index
//	checksum uint64                FNV-64a of every preceding byte
//
// Entries within a section are kept in append order: the sequence of
// (seed, signature) records is the corpus-level unique-growth history
// across campaigns (tools/corpusstats replays it).
//
// # Atomicity and corruption
//
// Appends are staged in memory and persisted by Flush as a whole-file
// rewrite to a temporary file followed by rename, so concurrent readers
// only ever observe a complete, checksummed corpus. A corpus that fails
// to load (truncation, checksum mismatch, wrong version, implausible
// structure) degrades to an empty store — the campaign runs cold and
// the verdict is unaffected; the corrupt file is preserved under a
// ".quarantined" suffix when the store is next flushed.
package corpus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"mtracecheck/internal/sig"
)

var magic = [8]byte{'M', 'T', 'C', 'C', 'O', 'R', 'P', '1'}

// Sanity bounds mirroring internal/sig's readers: reject implausible
// counts before allocating, so a corrupt or adversarial file degrades
// to an error instead of an OOM.
const (
	maxKeys  = 1 << 20
	maxWords = 1024
	maxSigs  = 1 << 26
	maxName  = 1024
)

// Key identifies one corpus section. Verdicts are only reusable when
// all three coordinates match: the program fixes the static code, the
// platform fixes the signature encoding width and layout, and the MCM
// fixes which orders count as violations.
type Key struct {
	ProgHash uint64
	Platform string
	MCM      string
}

// Entry is one known-good signature with its first-seen provenance.
type Entry struct {
	Sig  sig.Signature
	Seed int64
}

type section struct {
	words   int
	index   map[string]struct{} // sig.Signature.Key() set
	entries []Entry             // append order = cross-campaign growth history
}

// Store is an open corpus bound to a path. All methods are safe for
// concurrent use: the dist server shares one store across every job's
// finalizer.
type Store struct {
	mu       sync.Mutex
	path     string
	loadErr  error // the file existed but did not load; quarantined on next Flush
	dirty    bool
	sections map[Key]*section
	order    []Key
}

// Open loads the corpus at path. A missing file yields an empty store
// bound to the path (the cold-start case). A file that exists but does
// not load also yields a usable empty store, together with the load
// error so the caller can warn — the campaign then runs cold, never
// with a wrong verdict.
func Open(path string) (*Store, error) {
	s := &Store{path: path, sections: make(map[Key]*section)}
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return s, nil
		}
		s.loadErr = err
		return s, fmt.Errorf("corpus: %w", err)
	}
	if err := decode(data, s); err != nil {
		s.sections = make(map[Key]*section)
		s.order = nil
		s.loadErr = err
		return s, fmt.Errorf("corpus: %s: %w", path, err)
	}
	return s, nil
}

// decode parses a complete MTCCORP1 image into s.
func decode(data []byte, s *Store) error {
	const header = 8 + 4 // magic + nkeys
	const footer = 8 + 8 // indexOff + checksum
	if len(data) < header+footer {
		return errors.New("truncated file")
	}
	if [8]byte(data[:8]) != magic {
		return fmt.Errorf("bad magic %q (want %q)", data[:8], magic[:])
	}
	h := fnv.New64a()
	h.Write(data[:len(data)-8])
	if got := binary.LittleEndian.Uint64(data[len(data)-8:]); got != h.Sum64() {
		return fmt.Errorf("checksum mismatch (file %#x, computed %#x)", got, h.Sum64())
	}
	nkeys := binary.LittleEndian.Uint32(data[8:12])
	if nkeys > maxKeys {
		return fmt.Errorf("implausible key count %d", nkeys)
	}
	indexOff := binary.LittleEndian.Uint64(data[len(data)-16:])
	if indexOff < header || indexOff+8*uint64(nkeys) != uint64(len(data)-footer) {
		return fmt.Errorf("index offset %d inconsistent with file size %d", indexOff, len(data))
	}
	for i := uint32(0); i < nkeys; i++ {
		off := binary.LittleEndian.Uint64(data[indexOff+uint64(8*i):])
		if off < header || off >= indexOff {
			return fmt.Errorf("section %d offset %d out of range", i, off)
		}
		k, sec, err := decodeSection(data[off:indexOff])
		if err != nil {
			return fmt.Errorf("section %d: %w", i, err)
		}
		if _, ok := s.sections[k]; ok {
			return fmt.Errorf("duplicate section key %#x/%s/%s", k.ProgHash, k.Platform, k.MCM)
		}
		s.sections[k] = sec
		s.order = append(s.order, k)
	}
	return nil
}

// decodeSection parses one key section from the start of b (b may
// extend past the section; trailing bytes belong to later sections).
func decodeSection(b []byte) (Key, *section, error) {
	var k Key
	cur := 0
	need := func(n int) bool { return len(b)-cur >= n }
	if !need(8 + 2) {
		return k, nil, errors.New("truncated section header")
	}
	k.ProgHash = binary.LittleEndian.Uint64(b[cur:])
	cur += 8
	platlen := int(binary.LittleEndian.Uint16(b[cur:]))
	cur += 2
	if platlen > maxName || !need(platlen+2) {
		return k, nil, fmt.Errorf("implausible platform name length %d", platlen)
	}
	k.Platform = string(b[cur : cur+platlen])
	cur += platlen
	mcmlen := int(binary.LittleEndian.Uint16(b[cur:]))
	cur += 2
	if mcmlen > maxName || !need(mcmlen+8) {
		return k, nil, fmt.Errorf("implausible MCM name length %d", mcmlen)
	}
	k.MCM = string(b[cur : cur+mcmlen])
	cur += mcmlen
	words := int(binary.LittleEndian.Uint32(b[cur:]))
	nsigs := int(binary.LittleEndian.Uint32(b[cur+4:]))
	cur += 8
	if words > maxWords || nsigs > maxSigs {
		return k, nil, fmt.Errorf("implausible signature shape: %d words, %d signatures", words, nsigs)
	}
	entryBytes := 8 + 8*words
	if !need(nsigs * entryBytes) {
		return k, nil, fmt.Errorf("truncated entries: need %d bytes, have %d", nsigs*entryBytes, len(b)-cur)
	}
	sec := &section{words: words, index: make(map[string]struct{}, nsigs)}
	scratch := make([]uint64, words)
	for i := 0; i < nsigs; i++ {
		seed := int64(binary.LittleEndian.Uint64(b[cur:]))
		cur += 8
		for w := range scratch {
			scratch[w] = binary.LittleEndian.Uint64(b[cur:])
			cur += 8
		}
		sg := sig.New(scratch)
		key := sg.Key()
		if _, dup := sec.index[key]; dup {
			return k, nil, fmt.Errorf("duplicate signature in section (entry %d)", i)
		}
		sec.index[key] = struct{}{}
		sec.entries = append(sec.entries, Entry{Sig: sg, Seed: seed})
	}
	return k, sec, nil
}

// Path returns the file path this store is bound to.
func (s *Store) Path() string { return s.path }

// Words returns the signature width recorded for k, if the key exists.
func (s *Store) Words(k Key) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := s.sections[k]
	if sec == nil {
		return 0, false
	}
	return sec.words, true
}

// Contains reports whether binKey — a signature's binary key as
// produced by sig.Signature.AppendBinary — is known good under k.
func (s *Store) Contains(k Key, binKey []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := s.sections[k]
	if sec == nil {
		return false
	}
	_, ok := sec.index[string(binKey)]
	return ok
}

// Add stages a newly proven-acyclic signature under k with its
// first-seen campaign seed, reporting whether it was new. A width
// mismatch against k's existing section is rejected (the caller should
// have degraded to a cold run long before this point).
func (s *Store) Add(k Key, sg sig.Signature, seed int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := s.sections[k]
	if sec == nil {
		sec = &section{words: sg.Len(), index: make(map[string]struct{})}
		s.sections[k] = sec
		s.order = append(s.order, k)
	}
	if sec.words != sg.Len() {
		return false
	}
	key := sg.Key()
	if _, ok := sec.index[key]; ok {
		return false
	}
	sec.index[key] = struct{}{}
	sec.entries = append(sec.entries, Entry{Sig: sg, Seed: seed})
	s.dirty = true
	return true
}

// Len returns the number of known-good signatures under k.
func (s *Store) Len(k Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := s.sections[k]
	if sec == nil {
		return 0
	}
	return len(sec.entries)
}

// Total returns the number of known-good signatures across all keys.
func (s *Store) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sec := range s.sections {
		n += len(sec.entries)
	}
	return n
}

// Keys returns the corpus keys in first-seen order.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, len(s.order))
	copy(out, s.order)
	return out
}

// Entries returns k's known-good signatures in append order — the
// cross-campaign growth history.
func (s *Store) Entries(k Key) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := s.sections[k]
	if sec == nil {
		return nil
	}
	out := make([]Entry, len(sec.entries))
	copy(out, sec.entries)
	return out
}

// Flush persists staged entries atomically (write to a temporary file,
// then rename), returning the bytes written. With nothing staged it is
// a no-op. If the original file had failed to load, it is preserved as
// path+".quarantined" before the rewrite.
func (s *Store) Flush() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return 0, nil
	}
	if s.loadErr != nil {
		// Keep the unreadable original for inspection; the store rebuilds
		// from scratch (a strictly-cold cache, never a wrong verdict).
		_ = os.Rename(s.path, s.path+".quarantined")
		s.loadErr = nil
	}
	data := s.encode()
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return 0, fmt.Errorf("corpus: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("corpus: %w", err)
	}
	s.dirty = false
	return int64(len(data)), nil
}

// encode serializes the full store. Callers hold s.mu.
func (s *Store) encode() []byte {
	var buf []byte
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.order)))
	offsets := make([]uint64, 0, len(s.order))
	for _, k := range s.order {
		sec := s.sections[k]
		offsets = append(offsets, uint64(len(buf)))
		buf = binary.LittleEndian.AppendUint64(buf, k.ProgHash)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k.Platform)))
		buf = append(buf, k.Platform...)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k.MCM)))
		buf = append(buf, k.MCM...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(sec.words))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sec.entries)))
		for _, e := range sec.entries {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Seed))
			for i := 0; i < e.Sig.Len(); i++ {
				buf = binary.LittleEndian.AppendUint64(buf, e.Sig.Word(i))
			}
		}
	}
	indexOff := uint64(len(buf))
	for _, off := range offsets {
		buf = binary.LittleEndian.AppendUint64(buf, off)
	}
	buf = binary.LittleEndian.AppendUint64(buf, indexOff)
	h := fnv.New64a()
	h.Write(buf)
	buf = binary.LittleEndian.AppendUint64(buf, h.Sum64())
	return buf
}
