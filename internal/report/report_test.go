package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "demo",
		Caption: "a caption",
		Header:  []string{"name", "value", "ratio"},
	}
	t.AddRow("alpha", 42, 0.125)
	t.AddRow("beta-long-name", 7, 12.5)
	return t
}

func TestWriteTextAlignment(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "a caption", "name", "alpha", "beta-long-name", "0.12", "12.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header and separator must be equally wide.
	var header, sep string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			header, sep = l, lines[i+1]
			break
		}
	}
	if len(header) == 0 || len(sep) == 0 {
		t.Fatalf("header/separator not found:\n%s", out)
	}
	if !strings.HasPrefix(sep, "----") {
		t.Errorf("separator = %q", sep)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### demo", "| name | value | ratio |", "| --- | --- | --- |", "| alpha | 42 | 0.12 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(1, 4); got != "25.0%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(1, 0); got != "n/a" {
		t.Errorf("Percent(÷0) = %q", got)
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := &Table{Header: []string{"a"}}
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
}
