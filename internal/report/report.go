// Package report renders experiment results as aligned text tables and
// Markdown, for the experiment binaries and EXPERIMENTS.md generation.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result grid.
type Table struct {
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteText renders the table as aligned plain text.
func (t *Table) WriteText(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	if t.Caption != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Caption); err != nil {
			return err
		}
	}
	widths := t.widths()
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteMarkdown renders the table as GitHub-flavored Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if t.Caption != "" {
		if _, err := fmt.Fprintf(w, "%s\n\n", t.Caption); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Percent formats a ratio as a percentage string.
func Percent(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}
