package check

import (
	"context"
	"fmt"

	"mtracecheck/internal/graph"
)

// Incremental is a third checker, extending the paper: instead of re-sorting
// one window spanning *all* new backward edges (§4.2), it repairs the
// maintained topological order edge by edge with the Pearce–Kelly dynamic
// algorithm. Each new backward edge (u,v) triggers a localized repair: the
// affected region is only what is forward-reachable from v and
// backward-reachable from u within the position range [pos(v), pos(u)] —
// so k small disjoint diffs cost k small repairs rather than one window
// covering their span. Verdicts are identical to the other checkers (a
// cycle is found exactly when u is forward-reachable from v).
//
// Soundness of carrying the order across graphs: the maintained order is
// topological for the previous graph, hence for the current graph minus its
// added edges (removing edges never invalidates an order); the added edges
// are then inserted one by one with PK repairs against the *current* edge
// set only.
func Incremental(b *graph.Builder, items []Item) (*Result, error) {
	return IncrementalContext(context.Background(), b, items)
}

// IncrementalContext is Incremental with cooperative cancellation: the
// context is polled between graphs, so a cancelled campaign stops checking
// promptly and returns ctx.Err() instead of a partial verdict.
func IncrementalContext(ctx context.Context, b *graph.Builder, items []Item) (*Result, error) {
	res := &Result{Total: len(items)}
	if len(items) == 0 {
		return res, nil
	}
	for i := 1; i < len(items); i++ {
		if items[i-1].Sig.Compare(items[i].Sig) > 0 {
			return nil, fmt.Errorf("check: items not in ascending signature order at %d", i)
		}
	}
	n := b.NumOps()
	w := getWorkspace(b)
	defer putWorkspace(w)
	pk := &pkState{
		w:       w,
		pos:     w.pos,
		order:   w.order,
		visited: make([]int32, n),
		epoch:   0,
	}
	backupPos := make([]int32, n)
	backupOrder := make([]int32, n)
	havePos := false
	var baseEdges []graph.Edge
	diffBuf := w.diffBuf[:0]
	defer func() { w.diffBuf = diffBuf }()

	for i, it := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w.setDyn(it.Edges)
		if !havePos {
			res.SortedVertices += int64(n)
			full, ok := w.fullSort(true)
			if !ok {
				res.Violations = append(res.Violations, Violation{
					Index: i, Sig: it.Sig, Cycle: b.FromDynamic(it.Edges).FindCycle(),
				})
				res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindComplete, Affected: n})
				continue
			}
			copy(pk.order, full)
			for p, v := range pk.order {
				pk.pos[v] = int32(p)
			}
			havePos = true
			baseEdges = it.Edges
			res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindComplete, Affected: n})
			continue
		}
		diffBuf = diffEdges(diffBuf[:0], it.Edges, baseEdges)
		copy(backupPos, pk.pos)
		copy(backupOrder, pk.order)
		affected := 0
		cyclic := false
		for _, e := range diffBuf {
			if pk.pos[e.U] < pk.pos[e.V] {
				continue // already consistent
			}
			moved, ok := pk.repair(e.U, e.V)
			affected += moved
			if !ok {
				cyclic = true
				break
			}
		}
		res.SortedVertices += int64(affected)
		if cyclic {
			res.Violations = append(res.Violations, Violation{
				Index: i, Sig: it.Sig, Cycle: b.FromDynamic(it.Edges).FindCycle(),
			})
			copy(pk.pos, backupPos)
			copy(pk.order, backupOrder)
			res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindIncremental, Affected: affected})
			continue
		}
		baseEdges = it.Edges
		kind := KindIncremental
		if affected == 0 {
			kind = KindNoResort
		}
		res.PerGraph = append(res.PerGraph, GraphStat{Kind: kind, Affected: affected})
		if debugValidate != nil {
			debugValidate(b.FromDynamic(it.Edges), pk.order)
		}
	}
	return res, nil
}

// pkState carries the Pearce–Kelly order maintenance structures.
type pkState struct {
	w       *workspace
	pos     []int32
	order   []int32
	visited []int32 // epoch marks
	epoch   int32
	fwd     []int32 // scratch: forward-affected vertices
	bwd     []int32 // scratch: backward-affected vertices
	all     []int32 // scratch: combined affected vertices
	slots   []int32 // scratch: their position multiset
}

// repair restores topological order after inserting edge (u,v) with
// pos[u] > pos[v]. It returns the number of vertices moved and ok=false
// when the edge closes a cycle.
func (p *pkState) repair(u, v int32) (moved int, ok bool) {
	lb, ub := p.pos[v], p.pos[u]
	p.epoch++
	// Forward DFS from v within (≤ ub): collects vertices that must come
	// after v. Seeing u means a cycle.
	p.fwd = p.fwd[:0]
	if !p.dfsF(v, ub, u) {
		return len(p.fwd), false
	}
	// Backward DFS from u within (≥ lb): vertices that must stay before u.
	p.bwd = p.bwd[:0]
	p.dfsB(u, lb)

	// Reorder: the affected vertices, in their current position order, are
	// reassigned to the same position multiset with the backward set first.
	all := append(p.all[:0], p.bwd...)
	all = append(all, p.fwd...)
	slots := p.slots[:0]
	for _, x := range all {
		slots = append(slots, p.pos[x])
	}
	sortInt32(slots)
	p.all, p.slots = all, slots
	// Within each set, preserve relative order by current position.
	sortByPos(p.bwd, p.pos)
	sortByPos(p.fwd, p.pos)
	i := 0
	for _, x := range p.bwd {
		p.pos[x] = slots[i]
		p.order[slots[i]] = x
		i++
	}
	for _, x := range p.fwd {
		p.pos[x] = slots[i]
		p.order[slots[i]] = x
		i++
	}
	return len(all), true
}

// dfsF explores forward from x, bounded by positions ≤ ub; returns false on
// reaching target (cycle).
func (p *pkState) dfsF(x, ub, target int32) bool {
	if x == target {
		return false
	}
	p.visited[x] = p.epoch
	p.fwd = append(p.fwd, x)
	okAll := true
	p.w.succs(x, func(y int32) {
		if !okAll || p.visited[y] == p.epoch || p.pos[y] > ub {
			return
		}
		if !p.dfsF(y, ub, target) {
			okAll = false
		}
	})
	return okAll
}

// dfsB explores backward from x, bounded by positions ≥ lb. The workspace
// has no reverse adjacency, so it scans candidates by position: every
// vertex w with lb ≤ pos[w] < pos[x] that has an edge into the affected
// backward set. To stay near-linear we walk positions from pos[x] down to
// lb once, testing membership via edges into visited-backward vertices.
func (p *pkState) dfsB(u, lb int32) {
	// Mark u and grow the backward set by scanning the position range once
	// per discovered member is O(range × degree); ranges are small in the
	// intended regime (localized diffs). Membership marks use epoch+bit:
	// we reuse visited with negative epoch to distinguish from forward set.
	inB := func(y int32) bool { return p.visited[y] == -p.epoch }
	p.visited[u] = -p.epoch
	p.bwd = append(p.bwd, u)
	for changed := true; changed; {
		changed = false
		for pp := p.pos[u]; pp >= lb; pp-- {
			x := p.order[pp]
			if p.visited[x] == -p.epoch || p.visited[x] == p.epoch {
				continue
			}
			hit := false
			p.w.succs(x, func(y int32) {
				if hit || !inB(y) {
					return
				}
				hit = true
			})
			if hit {
				p.visited[x] = -p.epoch
				p.bwd = append(p.bwd, x)
				changed = true
			}
		}
	}
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortByPos(xs []int32, pos []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && pos[xs[j]] < pos[xs[j-1]]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
