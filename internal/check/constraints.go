package check

import (
	"context"
	"sync"

	"mtracecheck/internal/graph"
)

// The constraints backend recasts checking as constraint solving, after
// Akgün et al. ("Memory Consistency Models using Constraints"): give every
// operation an integer position variable with domain [0, n) and encode each
// constraint-graph edge (u, v) as the ordering constraint pos[u] < pos[v].
// The constraint system is satisfiable exactly when the graph is acyclic —
// a solution is a linearization witness, and a cycle makes its strict
// inequalities sum to pos[u] < pos[u].
//
// The solver is the textbook combination of exhaustive bounds propagation
// and backtracking search: propagate lb[v] >= lb[u]+1 and ub[u] <= ub[v]-1
// to fixpoint (an empty domain refutes the system), then assign variables
// one at a time — smallest domain first, values in ascending order — with
// propagation after each assignment and trail-based undo on failure. The
// search is complete: it either finds a witness or proves none exists.
//
// This backend exists to be obviously correct, not fast: it shares no code
// with the sorting backends (Kahn's algorithm, Pearce–Kelly) or the
// vector-clock closure, which is what makes it worth racing against them in
// check.Differential — any verdict disagreement convicts one of the
// implementations. It is deliberately serial and roughly O(n·e) per graph
// even when no backtracking occurs; use it on small traces and differential
// runs, not hot campaign paths. Effort is reported as Result.Propagations,
// the number of domain-bound tightenings.

// csWorkspace holds the recycled solver state for one builder's programs,
// pooled like the other backends' workspaces.
type csWorkspace struct {
	owner  *graph.Builder
	n      int
	static []graph.Edge // flattened static adjacency, shared across items
	edges  []graph.Edge // static + dynamic, rebuilt per item
	lb, ub []int32      // position variable domains
	trail  []csChange   // undo log for backtracking
}

// csChange records one domain-bound tightening for undo.
type csChange struct {
	idx  int32
	old  int32
	isUB bool
}

var csPool sync.Pool

func getCSWorkspace(b *graph.Builder) *csWorkspace {
	if w, _ := csPool.Get().(*csWorkspace); w != nil && w.owner == b {
		return w
	}
	n := b.NumOps()
	w := &csWorkspace{owner: b, n: n, lb: make([]int32, n), ub: make([]int32, n)}
	static := b.FromDynamic(nil).Static
	for u, out := range static {
		for _, v := range out {
			w.static = append(w.static, graph.Edge{U: int32(u), V: v})
		}
	}
	return w
}

func putCSWorkspace(w *csWorkspace) { csPool.Put(w) }

// Constraints checks every item independently with the constraint solver;
// see ConstraintsContext. Items may be in any order.
func Constraints(b *graph.Builder, items []Item) (*Result, error) {
	return ConstraintsContext(context.Background(), b, items)
}

// ConstraintsContext is Constraints with cooperative cancellation: the
// context is polled between graphs, so a cancelled run stops promptly and
// returns ctx.Err() instead of a partial verdict.
//
// The Result populates Total, Violations, and Propagations only; the
// solver maintains no order and no clocks.
func ConstraintsContext(ctx context.Context, b *graph.Builder, items []Item) (*Result, error) {
	res := &Result{Total: len(items)}
	w := getCSWorkspace(b)
	defer putCSWorkspace(w)
	for i, it := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sat, props := w.solve(it.Edges)
		res.Propagations += props
		if !sat {
			res.Violations = append(res.Violations, Violation{
				Index: i, Sig: it.Sig, Cycle: b.FromDynamic(it.Edges).FindCycle(),
			})
		}
	}
	return res, nil
}

// solve reports whether the position constraints induced by the static plus
// dynamic edges are satisfiable (graph acyclic), and how many bound
// tightenings the solver performed.
func (w *csWorkspace) solve(dyn []graph.Edge) (sat bool, props int64) {
	if w.n == 0 {
		return true, 0
	}
	for i := range w.lb {
		w.lb[i], w.ub[i] = 0, int32(w.n-1)
	}
	w.edges = append(append(w.edges[:0], w.static...), dyn...)
	w.trail = w.trail[:0]
	if !w.propagate(&props) {
		return false, props
	}
	return w.search(&props), props
}

// setLB/setUB tighten one bound, recording the old value on the trail.
// They report false when the domain becomes empty.
func (w *csWorkspace) setLB(i, v int32, props *int64) bool {
	w.trail = append(w.trail, csChange{idx: i, old: w.lb[i]})
	w.lb[i] = v
	*props++
	return v <= w.ub[i]
}

func (w *csWorkspace) setUB(i, v int32, props *int64) bool {
	w.trail = append(w.trail, csChange{idx: i, old: w.ub[i], isUB: true})
	w.ub[i] = v
	*props++
	return v >= w.lb[i]
}

// undo rolls the domains back to a trail mark.
func (w *csWorkspace) undo(mark int) {
	for i := len(w.trail) - 1; i >= mark; i-- {
		c := w.trail[i]
		if c.isUB {
			w.ub[c.idx] = c.old
		} else {
			w.lb[c.idx] = c.old
		}
	}
	w.trail = w.trail[:mark]
}

// propagate runs bounds propagation to fixpoint over every constraint
// pos[u] < pos[v]. It reports false when some domain empties — the system
// is unsatisfiable (for the initial full domains, exactly when the graph
// is cyclic: lb follows longest paths, which a cycle grows past any ub).
func (w *csWorkspace) propagate(props *int64) bool {
	for changed := true; changed; {
		changed = false
		for _, e := range w.edges {
			u, v := e.U, e.V
			if min := w.lb[u] + 1; min > w.lb[v] {
				if !w.setLB(v, min, props) {
					return false
				}
				changed = true
			}
			if max := w.ub[v] - 1; max < w.ub[u] {
				if !w.setUB(u, max, props) {
					return false
				}
				changed = true
			}
		}
	}
	return true
}

// search completes the propagated system to a full assignment by exhaustive
// backtracking: repeatedly fix the unassigned variable with the smallest
// domain to each of its values in ascending order, propagating after each
// assignment and undoing on failure. When propagation has not refuted the
// system, assigning a variable its lower bound never fails (lb is the
// longest-path witness), so on acyclic graphs the first descent succeeds
// with zero backtracks — the search's exhaustiveness is a correctness
// backstop, not the expected path.
func (w *csWorkspace) search(props *int64) bool {
	best, bestSize := int32(-1), int32(0)
	for i := range w.lb {
		if size := w.ub[i] - w.lb[i]; size > 0 && (best < 0 || size < bestSize) {
			best, bestSize = int32(i), size
		}
	}
	if best < 0 {
		return true // every domain is a singleton: a witness assignment
	}
	lo, hi := w.lb[best], w.ub[best]
	for v := lo; v <= hi; v++ {
		mark := len(w.trail)
		if w.setLB(best, v, props) && w.setUB(best, v, props) &&
			w.propagate(props) && w.search(props) {
			return true
		}
		w.undo(mark)
	}
	return false
}
