package check

import (
	"sync"

	"mtracecheck/internal/graph"
)

// workspace holds the recycled vertex data structures both checkers run on
// (the paper recycles vertex structures across graphs while edge structures
// are rebuilt per graph, §6.2). One workspace serves one program's builder.
type workspace struct {
	owner   *graph.Builder // the builder this workspace was shaped for
	n       int
	static  [][]int32
	dyn     [][]int32 // per-vertex dynamic out-edges of the current graph
	touched []int32   // vertices whose dyn entry is non-empty
	indeg   []int32
	out     []int32
	queue   []int32 // FIFO scratch for the unprioritized baseline sort
	classOf []int32 // vertex priority class (word-major)
	bq      *bucketQueue
	ladj    [][]int32 // recycled window-local adjacency
	// pos/order/diffBuf back the checkers' maintained order and edge-diff
	// scratch; contents are overwritten before use on every checking run.
	pos     []int32
	order   []int32
	diffBuf []graph.Edge
}

func newWorkspace(b *graph.Builder) *workspace {
	n := b.NumOps()
	g := b.FromDynamic(nil) // borrow the shared static adjacency
	classOf, classes := b.WordClass()
	return &workspace{
		owner:   b,
		n:       n,
		static:  g.Static,
		dyn:     make([][]int32, n),
		indeg:   make([]int32, n),
		out:     make([]int32, 0, n),
		queue:   make([]int32, 0, n),
		classOf: classOf,
		bq:      newBucketQueue(classes),
		ladj:    make([][]int32, n),
		pos:     make([]int32, n),
		order:   make([]int32, n),
	}
}

// wsPool recycles workspaces across checking runs. Sharded collective
// checking calls CollectiveContext once per shard item batch against one
// shared builder, so without pooling every batch would rebuild the full
// vertex structures the paper's §6.2 recycling is about.
var wsPool sync.Pool

// getWorkspace returns a pooled workspace shaped for b, or a fresh one. A
// pooled workspace built against a different builder is discarded: its
// static adjacency, class table, and buffer sizes belong to that builder's
// program.
func getWorkspace(b *graph.Builder) *workspace {
	if w, _ := wsPool.Get().(*workspace); w != nil && w.owner == b {
		return w
	}
	return newWorkspace(b)
}

func putWorkspace(w *workspace) { wsPool.Put(w) }

// setDyn installs one graph's dynamic edges, clearing the previous graph's.
func (w *workspace) setDyn(edges []graph.Edge) {
	for _, u := range w.touched {
		w.dyn[u] = w.dyn[u][:0]
	}
	w.touched = w.touched[:0]
	for _, e := range edges {
		if len(w.dyn[e.U]) == 0 {
			w.touched = append(w.touched, e.U)
		}
		w.dyn[e.U] = append(w.dyn[e.U], e.V)
	}
}

// fullSort runs Kahn's algorithm over the whole current graph, returning a
// topological order (valid until the next sort) and whether one exists.
//
// The prioritized variant is the collective checker's key heuristic: ready
// vertices pop in word-major class order, clustering each shared word's
// stores and loads into a contiguous region whenever the program-order
// edges permit (always under RMO, where no cross-word po edges exist
// without fences). Every dynamic edge — rf, fr, ws — connects operations on
// the same word, so the edge changes between adjacent sorted signatures
// tend to fall inside word regions, keeping re-sort windows small. Under
// stronger models the po chains stretch the clusters apart — which is
// exactly why the paper's collective-checking benefit is smaller on x86
// than on ARM.
func (w *workspace) fullSort(prioritized bool) ([]int32, bool) {
	indeg := w.indeg
	for i := range indeg {
		indeg[i] = 0
	}
	for u := 0; u < w.n; u++ {
		for _, v := range w.static[u] {
			indeg[v]++
		}
		for _, v := range w.dyn[u] {
			indeg[v]++
		}
	}
	out := w.out[:0]
	if !prioritized {
		// Plain FIFO Kahn: the conventional baseline needs no particular
		// tie-breaking.
		queue := w.queue[:0]
		for v := int32(0); v < int32(w.n); v++ {
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			out = append(out, u)
			for _, v := range w.static[u] {
				if indeg[v]--; indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
			for _, v := range w.dyn[u] {
				if indeg[v]--; indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
		w.queue = queue[:0]
		w.out = out
		return out, len(out) == w.n
	}
	bq := w.bq
	bq.reset()
	for v := int32(0); v < int32(w.n); v++ {
		if indeg[v] == 0 {
			bq.push(int(w.classOf[v]), v)
		}
	}
	for bq.size > 0 {
		u := bq.pop()
		out = append(out, u)
		for _, v := range w.static[u] {
			if indeg[v]--; indeg[v] == 0 {
				bq.push(int(w.classOf[v]), v)
			}
		}
		for _, v := range w.dyn[u] {
			if indeg[v]--; indeg[v] == 0 {
				bq.push(int(w.classOf[v]), v)
			}
		}
	}
	w.out = out
	return out, len(out) == w.n
}

// windowSort topologically re-sorts the vertices at positions [lo, hi] of
// order against the current graph, with the same word-major tie-breaking as
// the prioritized fullSort. Window positions are contiguous, so a window
// vertex's local index is pos[v]-lo; crossing edges impose no
// window-internal constraints (see the package comment's proof sketch).
// The induced adjacency is materialized once into recycled buffers so the
// pop phase runs without membership checks.
func (w *workspace) windowSort(order, pos []int32, lo, hi int32) ([]int32, bool) {
	size := int32(hi - lo + 1)
	verts := order[lo : hi+1]
	indeg := w.indeg[:size]
	for k := range indeg {
		indeg[k] = 0
	}
	ladj := w.ladj[:size]
	usize := uint32(size)
	for k, u := range verts {
		edges := ladj[k][:0]
		for _, v := range w.static[u] {
			if lv := uint32(pos[v] - lo); lv < usize {
				edges = append(edges, int32(lv))
				indeg[lv]++
			}
		}
		for _, v := range w.dyn[u] {
			if lv := uint32(pos[v] - lo); lv < usize {
				edges = append(edges, int32(lv))
				indeg[lv]++
			}
		}
		ladj[k] = edges
	}
	bq := w.bq
	bq.reset()
	for k := int32(0); k < size; k++ {
		if indeg[k] == 0 {
			bq.push(int(w.classOf[verts[k]]), k)
		}
	}
	out := w.out[:0]
	for bq.size > 0 {
		lu := bq.pop()
		out = append(out, verts[lu])
		for _, lv := range ladj[lu] {
			if indeg[lv]--; indeg[lv] == 0 {
				bq.push(int(w.classOf[verts[lv]]), lv)
			}
		}
	}
	w.out = out
	if len(out) != int(size) {
		return nil, false
	}
	return out, true
}

// succs calls fn for every successor of u in the current graph.
func (w *workspace) succs(u int32, fn func(v int32)) {
	for _, v := range w.static[u] {
		fn(v)
	}
	for _, v := range w.dyn[u] {
		fn(v)
	}
}
