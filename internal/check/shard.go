package check

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mtracecheck/internal/graph"
)

// ShardFunc is notified as each checking shard completes, with the shard's
// index and the total shard count actually run, its item range, its
// (shard-local) result, and its wall-clock span. Shards complete
// concurrently, so implementations must be safe for concurrent use. A nil
// ShardFunc is never called. part is nil when the shard failed
// (cancellation or an internal error).
type ShardFunc func(shard, shards, start, count int, part *Result, began time.Time, took time.Duration)

// Sharded partitions the sorted items into shards contiguous ranges and
// runs Collective on each range concurrently, then merges the per-range
// results with violation indices rebased to global positions. It is
// ShardedBackend over the collective backend; see there for the sharding
// contract.
func Sharded(ctx context.Context, b *graph.Builder, items []Item, shards int) (*Result, error) {
	return ShardedObserved(ctx, b, items, shards, nil)
}

// ShardedObserved is Sharded with a per-shard completion callback for
// observability; onShard receives each shard's range and result as it
// finishes (including the degenerate single-shard case, reported as shard
// 0 of 1 over the whole range). Verdicts are unaffected by the callback.
func ShardedObserved(ctx context.Context, b *graph.Builder, items []Item, shards int, onShard ShardFunc) (*Result, error) {
	be, err := ForName("collective")
	if err != nil {
		return nil, err
	}
	return ShardedBackend(ctx, be, b, items, shards, onShard)
}

// ShardedBackend runs a checking backend across shards contiguous ranges of
// the sorted items concurrently, then merges the per-range results with
// violation indices rebased to global positions. The context is plumbed
// into every per-range check, so a cancelled campaign stops all checking
// shards promptly (the call still joins its goroutines before returning
// ctx.Err()).
//
// Disjoint signature ranges yield independent checking runs for every
// parallelizable backend: the per-graph backends (conventional,
// vectorclock) share no state between items at all, and the collective
// checker's §4.2 windowing argument only ever relates a graph to its
// immediate predecessor in sorted order, so checking a contiguous subrange
// in isolation reaches the same verdicts. The cost for the collective
// checker is that each shard's first graph has no predecessor and pays a
// full KindComplete sort (recorded honestly in PerGraph), where the serial
// checker could have reused the boundary predecessor's order.
//
// A backend reporting Parallelizable()==false runs as one shard regardless
// of the requested count, and onShard sees the honest shard count (one
// event, shard 0 of 1) rather than the count the caller asked for.
// ShardedBackend with shards <= 1 is exactly the backend's Check. Verdicts
// (the violation set) are identical for every shard count; only the effort
// accounting (PerGraph, SortedVertices) carries per-shard boundary
// overhead. Items must be in ascending signature order for every backend —
// uniform validation keeps the outcome independent of the shard count even
// for the per-graph backends, whose direct entry points accept any order.
func ShardedBackend(ctx context.Context, be Backend, b *graph.Builder, items []Item, shards int, onShard ShardFunc) (*Result, error) {
	for i := 1; i < len(items); i++ {
		if items[i-1].Sig.Compare(items[i].Sig) > 0 {
			return nil, fmt.Errorf("check: items not in ascending signature order at %d", i)
		}
	}
	if !be.Parallelizable() {
		shards = 1
	}
	if shards > len(items) {
		shards = len(items)
	}
	if shards <= 1 {
		began := time.Now()
		res, err := be.Check(ctx, b, items)
		if onShard != nil {
			onShard(0, 1, 0, len(items), res, began, time.Since(began))
		}
		return res, err
	}
	offsets := shardOffsets(len(items), shards)
	parts := make([]*Result, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := offsets[s], offsets[s+1]
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			began := time.Now()
			parts[s], errs[s] = be.Check(ctx, b, items[lo:hi])
			if onShard != nil {
				onShard(s, shards, lo, hi-lo, parts[s], began, time.Since(began))
			}
		}(s, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return MergeResults(offsets[:shards], parts), nil
}

// shardOffsets splits n items into shards contiguous ranges of near-equal
// size (the first n%shards ranges are one longer), returning the shards+1
// boundary offsets.
func shardOffsets(n, shards int) []int {
	base, rem := n/shards, n%shards
	offsets := make([]int, shards+1)
	for s := 0; s < shards; s++ {
		size := base
		if s < rem {
			size++
		}
		offsets[s+1] = offsets[s] + size
	}
	return offsets
}

// MergeResults combines per-shard results of contiguous item ranges into
// one global result: violation Index values are rebased by each shard's
// starting offset, PerGraph stats are concatenated in shard order (so entry
// i still describes item i), and the counters are summed. Nil parts are
// skipped.
func MergeResults(offsets []int, parts []*Result) *Result {
	out := &Result{}
	for s, part := range parts {
		if part == nil {
			continue
		}
		out.Total += part.Total
		out.SortedVertices += part.SortedVertices
		out.BackwardEdges += part.BackwardEdges
		out.ClockUpdates += part.ClockUpdates
		out.Propagations += part.Propagations
		if part.MaxWindow > out.MaxWindow {
			out.MaxWindow = part.MaxWindow
		}
		out.PerGraph = append(out.PerGraph, part.PerGraph...)
		for _, v := range part.Violations {
			v.Index += offsets[s]
			out.Violations = append(out.Violations, v)
		}
	}
	return out
}
