package check

import (
	"math/rand"
	"testing"

	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/testgen"
)

// fabricate builds a sorted, deduplicated item sequence from random
// candidate-respecting rf choices and random per-word store interleavings.
// Fabricated pairs are not necessarily legal executions, which is exactly
// what exercises both verdict paths.
func fabricate(t *testing.T, p *prog.Program, b *graph.Builder, meta *instrument.Meta,
	count int, rng *rand.Rand) []Item {
	t.Helper()
	type raw struct {
		s     sig.Signature
		edges []graph.Edge
	}
	byKey := map[string]raw{}
	for trial := 0; trial < count; trial++ {
		rf := graph.RF{}
		vals := map[int]uint32{}
		for _, tm := range meta.Threads {
			for _, li := range tm.Loads {
				c := li.Candidates[rng.Intn(len(li.Candidates))]
				rf[li.Op.ID] = c.Store
				vals[li.Op.ID] = c.Value
			}
		}
		ws := graph.WS{}
		for w := 0; w < p.NumWords; w++ {
			byThread := map[int][]int{}
			total := 0
			for _, s := range p.StoresToWord(w) {
				byThread[s.Thread] = append(byThread[s.Thread], s.ID)
				total++
			}
			var order []int
			for len(order) < total {
				ks := make([]int, 0, len(byThread))
				for k := range byThread {
					ks = append(ks, k)
				}
				k := ks[rng.Intn(len(ks))]
				order = append(order, byThread[k][0])
				byThread[k] = byThread[k][1:]
				if len(byThread[k]) == 0 {
					delete(byThread, k)
				}
			}
			if len(order) > 0 {
				ws[w] = order
			}
		}
		s, err := meta.EncodeExecution(vals)
		if err != nil {
			t.Fatal(err)
		}
		edges, err := b.DynamicEdges(rf, ws)
		if err != nil {
			t.Fatal(err)
		}
		byKey[s.Key()] = raw{s: s, edges: edges}
	}
	sigs := make([]sig.Signature, 0, len(byKey))
	for _, r := range byKey {
		sigs = append(sigs, r.s)
	}
	sig.Sort(sigs)
	items := make([]Item, len(sigs))
	for i, s := range sigs {
		items[i] = Item{Sig: s, Edges: byKey[s.Key()].edges}
	}
	return items
}

// scItems builds a sorted unique item sequence from SC reference
// executions — all guaranteed valid under every model.
func scItems(t *testing.T, p *prog.Program, b *graph.Builder, meta *instrument.Meta,
	count int, rng *rand.Rand) []Item {
	t.Helper()
	type raw struct {
		s     sig.Signature
		edges []graph.Edge
	}
	byKey := map[string]raw{}
	for i := 0; i < count; i++ {
		rf, ws := testgen.SCReference(p, rng)
		s, err := meta.EncodeExecution(testgen.LoadValuesOf(p, rf))
		if err != nil {
			t.Fatal(err)
		}
		edges, err := b.DynamicEdges(rf, ws)
		if err != nil {
			t.Fatal(err)
		}
		byKey[s.Key()] = raw{s: s, edges: edges}
	}
	sigs := make([]sig.Signature, 0, len(byKey))
	for _, r := range byKey {
		sigs = append(sigs, r.s)
	}
	sig.Sort(sigs)
	items := make([]Item, len(sigs))
	for i, s := range sigs {
		items[i] = Item{Sig: s, Edges: byKey[s.Key()].edges}
	}
	return items
}

func violIndices(r *Result) []int {
	out := make([]int, len(r.Violations))
	for i, v := range r.Violations {
		out[i] = v.Index
	}
	return out
}

// TestCollectiveEquivalence: the collective checker must deliver exactly the
// conventional checker's verdicts, across models, programs, and fabricated
// execution sets — the paper's claim that re-sorting is "as precise as the
// conventional topological sorting".
func TestCollectiveEquivalence(t *testing.T) {
	prevValidate := debugValidate
	defer func() { debugValidate = prevValidate }()
	debugValidate = func(g *graph.Graph, order []int32) {
		if err := g.VerifyOrder(order); err != nil {
			t.Fatalf("collective checker installed an invalid order: %v", err)
		}
	}
	for _, model := range mcm.Models {
		for seed := int64(1); seed <= 4; seed++ {
			p := testgen.MustGenerate(testgen.Config{
				Threads: 3, OpsPerThread: 20, Words: 4, Seed: seed,
			})
			meta, err := instrument.Analyze(p, 64, nil)
			if err != nil {
				t.Fatal(err)
			}
			b := graph.NewBuilder(p, model, graph.Options{Forwarding: true})
			rng := rand.New(rand.NewSource(seed * 101))
			items := fabricate(t, p, b, meta, 120, rng)

			conv := Conventional(b, items)
			coll, err := Collective(b, items)
			if err != nil {
				t.Fatal(err)
			}
			ci, vi := violIndices(coll), violIndices(conv)
			if len(ci) != len(vi) {
				t.Fatalf("%v seed %d: collective %d violations, conventional %d",
					model, seed, len(ci), len(vi))
			}
			for k := range ci {
				if ci[k] != vi[k] {
					t.Fatalf("%v seed %d: verdict mismatch at %d: %v vs %v",
						model, seed, k, ci, vi)
				}
			}
			if coll.Total != conv.Total || coll.Total != len(items) {
				t.Fatalf("totals: coll %d conv %d items %d", coll.Total, conv.Total, len(items))
			}
		}
	}
}

func TestCollectiveReducesWork(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{
		Threads: 2, OpsPerThread: 50, Words: 32, Seed: 3,
	})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	rng := rand.New(rand.NewSource(7))
	items := scItems(t, p, b, meta, 300, rng)
	conv := Conventional(b, items)
	coll, err := Collective(b, items)
	if err != nil {
		t.Fatal(err)
	}
	if coll.SortedVertices >= conv.SortedVertices {
		t.Errorf("collective sorted %d vertices, conventional %d — no speedup",
			coll.SortedVertices, conv.SortedVertices)
	}
	c, nr, inc := coll.Counts()
	if c+nr+inc != coll.Total {
		t.Errorf("counts %d+%d+%d != total %d", c, nr, inc, coll.Total)
	}
	if c < 1 {
		t.Error("no complete sort recorded for the first graph")
	}
}

// TestFig7Scenario mirrors the paper's Fig. 7 walk-through: a sequence of
// runs whose graphs differ incrementally, the last one buggy.
func TestFig7Scenario(t *testing.T) {
	// t0: st A (0); ld B (1); st A (2)   t1: st B (3); ld A (4); st B (5)
	p := prog.NewBuilder("fig7", 2, prog.DefaultLayout()).
		Thread().Store(0).Load(1).Store(0).
		Thread().Store(1).Load(0).Store(1).
		MustBuild()
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(t *testing.T, vals map[int]uint32, rf graph.RF, ws graph.WS) Item {
		s, err := meta.EncodeExecution(vals)
		if err != nil {
			t.Fatal(err)
		}
		edges, err := b.DynamicEdges(rf, ws)
		if err != nil {
			t.Fatal(err)
		}
		return Item{Sig: s, Edges: edges}
	}
	// Run 1: both loads read the initial value.
	r1 := mk(t, map[int]uint32{1: 0, 4: 0}, graph.RF{1: -1, 4: -1},
		graph.WS{0: {0, 2}, 1: {3, 5}})
	// Run 2: t0's load reads t1's first store.
	r2 := mk(t, map[int]uint32{1: 4, 4: 0}, graph.RF{1: 3, 4: -1},
		graph.WS{0: {0, 2}, 1: {3, 5}})
	// Run 3: both loads read the other thread's first store.
	r3 := mk(t, map[int]uint32{1: 4, 4: 1}, graph.RF{1: 3, 4: 0},
		graph.WS{0: {0, 2}, 1: {3, 5}})
	// Run 4 (buggy): the load-buffering cycle — each thread's load reads the
	// OTHER thread's later store: rf 5→1, po 1→2, rf 2→4, po 4→5 closes a
	// cycle under TSO (ld→st is preserved), as in the paper's fourth run.
	r4 := mk(t, map[int]uint32{1: 6, 4: 3}, graph.RF{1: 5, 4: 2},
		graph.WS{0: {0, 2}, 1: {3, 5}})

	items := []Item{r1, r2, r3, r4}
	// Sort ascending by signature as the collective checker requires.
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if items[j].Sig.Compare(items[i].Sig) < 0 {
				items[i], items[j] = items[j], items[i]
			}
		}
	}
	conv := Conventional(b, items)
	coll, err := Collective(b, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(conv.Violations) != len(coll.Violations) {
		t.Fatalf("conventional %d violations, collective %d",
			len(conv.Violations), len(coll.Violations))
	}
	if len(coll.Violations) == 0 {
		t.Fatal("buggy run not flagged")
	}
	for _, v := range coll.Violations {
		if len(v.Cycle) == 0 {
			t.Error("violation without a cycle witness")
		}
	}
}

func TestCollectiveRejectsUnsortedItems(t *testing.T) {
	p := prog.NewBuilder("t", 1, prog.DefaultLayout()).
		Thread().Store(0).Load(0).
		MustBuild()
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{})
	items := []Item{
		{Sig: sig.New([]uint64{2})},
		{Sig: sig.New([]uint64{1})},
	}
	if _, err := Collective(b, items); err == nil {
		t.Error("unsorted items accepted")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	p := prog.NewBuilder("t", 1, prog.DefaultLayout()).
		Thread().Store(0).Load(0).
		MustBuild()
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{})
	res, err := Collective(b, nil)
	if err != nil || res.Total != 0 {
		t.Fatalf("empty: %v, total %d", err, res.Total)
	}
	edges, err := b.DynamicEdges(graph.RF{1: 0}, graph.WS{0: {0}})
	if err != nil {
		t.Fatal(err)
	}
	res, err = Collective(b, []Item{{Sig: sig.New([]uint64{0}), Edges: edges}})
	if err != nil || res.Total != 1 || len(res.Violations) != 0 {
		t.Fatalf("single: %v, %+v", err, res)
	}
	c, _, _ := res.Counts()
	if c != 1 {
		t.Errorf("single graph should be a complete sort, counts=%v", res.PerGraph)
	}
}

func TestDiffEdges(t *testing.T) {
	e := func(u, v int32) graph.Edge { return graph.Edge{U: u, V: v} }
	cur := []graph.Edge{e(0, 1), e(1, 2), e(3, 4)}
	prev := []graph.Edge{e(0, 1), e(2, 2)}
	got := diffEdges(nil, cur, prev)
	want := []graph.Edge{e(1, 2), e(3, 4)}
	if len(got) != len(want) {
		t.Fatalf("diff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diff = %v, want %v", got, want)
		}
	}
	if d := diffEdges(nil, nil, prev); len(d) != 0 {
		t.Errorf("diff(nil, prev) = %v", d)
	}
	if d := diffEdges(nil, cur, nil); len(d) != len(cur) {
		t.Errorf("diff(cur, nil) = %v", d)
	}
}

// TestCyclicFirstGraphRecovers: when the very first unique signature is
// already a violation, the checker must still validate the remainder.
func TestCyclicFirstGraphRecovers(t *testing.T) {
	// CoRR program: t0: st(0)=op0; t1: ld(1), ld(2).
	p := prog.NewBuilder("corr", 1, prog.DefaultLayout()).
		Thread().Store(0).
		Thread().Load(0).Load(0).
		MustBuild()
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	bad, err := b.DynamicEdges(graph.RF{1: 0, 2: -1}, graph.WS{0: {0}})
	if err != nil {
		t.Fatal(err)
	}
	good, err := b.DynamicEdges(graph.RF{1: 0, 2: 0}, graph.WS{0: {0}})
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{
		{Sig: sig.New([]uint64{1}), Edges: bad},
		{Sig: sig.New([]uint64{2}), Edges: good},
	}
	res, err := Collective(b, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Violations[0].Index != 0 {
		t.Fatalf("violations = %+v, want exactly index 0", res.Violations)
	}
	conv := Conventional(b, items)
	if len(conv.Violations) != 1 || conv.Violations[0].Index != 0 {
		t.Fatalf("conventional disagrees: %+v", conv.Violations)
	}
}

// TestIncrementalEquivalence: the Pearce–Kelly checker must agree with both
// other checkers, with its maintained order staying topological.
func TestIncrementalEquivalence(t *testing.T) {
	prevValidate := debugValidate
	defer func() { debugValidate = prevValidate }()
	debugValidate = func(g *graph.Graph, order []int32) {
		if err := g.VerifyOrder(order); err != nil {
			t.Fatalf("incremental checker installed an invalid order: %v", err)
		}
	}
	for _, model := range mcm.Models {
		for seed := int64(1); seed <= 4; seed++ {
			p := testgen.MustGenerate(testgen.Config{
				Threads: 3, OpsPerThread: 20, Words: 4, Seed: seed,
			})
			meta, err := instrument.Analyze(p, 64, nil)
			if err != nil {
				t.Fatal(err)
			}
			b := graph.NewBuilder(p, model, graph.Options{Forwarding: true})
			rng := rand.New(rand.NewSource(seed * 211))
			items := fabricate(t, p, b, meta, 120, rng)
			conv := Conventional(b, items)
			inc, err := Incremental(b, items)
			if err != nil {
				t.Fatal(err)
			}
			ci, vi := violIndices(inc), violIndices(conv)
			if len(ci) != len(vi) {
				t.Fatalf("%v seed %d: incremental %d violations, conventional %d",
					model, seed, len(ci), len(vi))
			}
			for k := range ci {
				if ci[k] != vi[k] {
					t.Fatalf("%v seed %d: verdict mismatch: %v vs %v", model, seed, ci, vi)
				}
			}
		}
	}
}

func TestIncrementalOnCleanSCItems(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 50, Words: 32, Seed: 3})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	rng := rand.New(rand.NewSource(7))
	items := scItems(t, p, b, meta, 300, rng)
	inc, err := Incremental(b, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Violations) != 0 {
		t.Fatalf("%d violations on clean SC items", len(inc.Violations))
	}
	conv := Conventional(b, items)
	if inc.SortedVertices >= conv.SortedVertices {
		t.Errorf("incremental moved %d vertices, conventional sorted %d — no saving",
			inc.SortedVertices, conv.SortedVertices)
	}
}
