package check

// bucketQueue pops ready vertices in ascending priority-class order with
// O(1) amortized operations — a counting-sort replacement for a heap, valid
// because the word-major priorities form a small static set of classes.
// Within a class, pops are FIFO. When a push lands in a class below the
// current cursor, the cursor moves back.
type bucketQueue struct {
	buckets [][]int32
	heads   []int
	cur     int
	size    int
}

func newBucketQueue(classes int) *bucketQueue {
	return &bucketQueue{
		buckets: make([][]int32, classes),
		heads:   make([]int, classes),
		cur:     classes,
	}
}

func (q *bucketQueue) reset() {
	for c := range q.buckets {
		q.buckets[c] = q.buckets[c][:0]
		q.heads[c] = 0
	}
	q.cur = len(q.buckets)
	q.size = 0
}

func (q *bucketQueue) push(class int, v int32) {
	q.buckets[class] = append(q.buckets[class], v)
	if class < q.cur {
		q.cur = class
	}
	q.size++
}

// pop returns the lowest-class ready vertex; call only when size > 0.
func (q *bucketQueue) pop() int32 {
	for q.heads[q.cur] >= len(q.buckets[q.cur]) {
		q.cur++
	}
	v := q.buckets[q.cur][q.heads[q.cur]]
	q.heads[q.cur]++
	q.size--
	return v
}
