package check

import (
	"context"
	"math/rand"
	"testing"

	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/testgen"
)

// TestShardedMatchesCollective: Sharded must deliver exactly Collective's
// verdicts for every shard count, with violation indices rebased to global
// positions; the only permitted divergence is effort accounting — one extra
// KindComplete per shard, plus window-size drift downstream of each
// boundary (a full sort installs a different maintained order than the
// serial chain had at that point).
func TestShardedMatchesCollective(t *testing.T) {
	for _, model := range []mcm.Model{mcm.TSO, mcm.RMO} {
		for seed := int64(1); seed <= 3; seed++ {
			p := testgen.MustGenerate(testgen.Config{
				Threads: 3, OpsPerThread: 20, Words: 4, Seed: seed,
			})
			meta, err := instrument.Analyze(p, 64, nil)
			if err != nil {
				t.Fatal(err)
			}
			b := graph.NewBuilder(p, model, graph.Options{Forwarding: true})
			rng := rand.New(rand.NewSource(seed * 31))
			items := fabricate(t, p, b, meta, 150, rng)

			serial, err := Collective(b, items)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3, 7, len(items), len(items) + 5} {
				sharded, err := Sharded(context.Background(), b, items, shards)
				if err != nil {
					t.Fatal(err)
				}
				if sharded.Total != serial.Total {
					t.Fatalf("%v seed %d shards %d: total %d, want %d",
						model, seed, shards, sharded.Total, serial.Total)
				}
				si, vi := violIndices(sharded), violIndices(serial)
				if len(si) != len(vi) {
					t.Fatalf("%v seed %d shards %d: %d violations, serial %d",
						model, seed, shards, len(si), len(vi))
				}
				for k := range si {
					if si[k] != vi[k] {
						t.Fatalf("%v seed %d shards %d: rebased indices %v, serial %v",
							model, seed, shards, si, vi)
					}
					if !sharded.Violations[k].Sig.Equal(serial.Violations[k].Sig) {
						t.Fatalf("%v seed %d shards %d: violation %d signature mismatch",
							model, seed, shards, k)
					}
				}
				if len(sharded.PerGraph) != len(items) {
					t.Fatalf("%v seed %d shards %d: PerGraph has %d entries, want %d",
						model, seed, shards, len(sharded.PerGraph), len(items))
				}
				// Effort accounting modulo shard overhead: each shard's first
				// graph pays a full sort, and because that sort installs a
				// different maintained order than the serial chain had at
				// that point, later window sizes may drift in either
				// direction. Bound the divergence by the boundary sorts plus
				// a drift allowance proportional to the serial effort.
				eff := shards
				if eff > len(items) {
					eff = len(items)
				}
				slack := int64(eff+len(vi))*int64(b.NumOps()) + serial.SortedVertices/4
				diff := sharded.SortedVertices - serial.SortedVertices
				if diff < -slack || diff > slack {
					t.Fatalf("%v seed %d shards %d: SortedVertices %d vs serial %d exceeds slack %d",
						model, seed, shards, sharded.SortedVertices,
						serial.SortedVertices, slack)
				}
			}
		}
	}
}

func TestShardedDegenerate(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 10, Words: 4, Seed: 2})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	res, err := Sharded(context.Background(), b, nil, 4)
	if err != nil || res.Total != 0 {
		t.Fatalf("empty items: res %+v err %v", res, err)
	}
	items := scItems(t, p, b, meta, 30, rand.New(rand.NewSource(5)))
	one, err := Sharded(context.Background(), b, items[:1], 8)
	if err != nil || one.Total != 1 {
		t.Fatalf("single item: total %d err %v", one.Total, err)
	}
}

func TestShardedRejectsUnsortedItems(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 10, Words: 4, Seed: 2})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	items := scItems(t, p, b, meta, 60, rand.New(rand.NewSource(5)))
	if len(items) < 4 {
		t.Skip("not enough unique items")
	}
	items[0], items[len(items)-1] = items[len(items)-1], items[0]
	if _, err := Sharded(context.Background(), b, items, 2); err == nil {
		t.Error("unsorted items accepted")
	}
}

// TestShardedCancelled: a cancelled context must stop both the serial and
// the sharded checker with ctx.Err() instead of a partial verdict.
func TestShardedCancelled(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 3, OpsPerThread: 20, Words: 4, Seed: 1})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	items := fabricate(t, p, b, meta, 50, rand.New(rand.NewSource(3)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, shards := range []int{1, 4} {
		res, err := Sharded(ctx, b, items, shards)
		if err != context.Canceled {
			t.Errorf("shards=%d: err = %v, want context.Canceled", shards, err)
		}
		if res != nil {
			t.Errorf("shards=%d: partial result returned alongside cancellation", shards)
		}
	}
}

func TestMergeResultsRebasesIndices(t *testing.T) {
	s := sig.New([]uint64{1})
	parts := []*Result{
		{Total: 3, SortedVertices: 10, Violations: []Violation{{Index: 2, Sig: s}},
			PerGraph: []GraphStat{{Kind: KindComplete, Affected: 5}, {}, {}}},
		nil,
		{Total: 2, SortedVertices: 4, Violations: []Violation{{Index: 0, Sig: s}, {Index: 1, Sig: s}},
			PerGraph: []GraphStat{{Kind: KindComplete, Affected: 5}, {Kind: KindNoResort}}},
	}
	merged := MergeResults([]int{0, 3, 3}, parts)
	if merged.Total != 5 || merged.SortedVertices != 14 {
		t.Fatalf("merged totals: %+v", merged)
	}
	want := []int{2, 3, 4}
	got := violIndices(merged)
	if len(got) != len(want) {
		t.Fatalf("violations %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("violations %v, want %v", got, want)
		}
	}
	if len(merged.PerGraph) != 5 {
		t.Errorf("PerGraph has %d entries, want 5", len(merged.PerGraph))
	}
}

func TestShardOffsets(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []int
	}{
		{10, 3, []int{0, 4, 7, 10}},
		{6, 3, []int{0, 2, 4, 6}},
		{5, 5, []int{0, 1, 2, 3, 4, 5}},
		{1, 1, []int{0, 1}},
	}
	for _, c := range cases {
		got := shardOffsets(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("shardOffsets(%d,%d) = %v, want %v", c.n, c.shards, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("shardOffsets(%d,%d) = %v, want %v", c.n, c.shards, got, c.want)
			}
		}
	}
}
