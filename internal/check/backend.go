package check

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mtracecheck/internal/graph"
	"mtracecheck/internal/sig"
)

// Backend is one violation-checking algorithm behind a common dispatch
// surface. All backends agree on verdicts — the violation set over the same
// items is identical — and differ only in effort accounting (which Result
// counters they populate) and in whether sharding applies.
type Backend interface {
	// Name is the backend's stable registry key — the value users pass to
	// the CLIs' -checker flag.
	Name() string
	// Parallelizable reports whether checking a contiguous subrange of a
	// sorted item sequence in isolation reaches the same verdicts as the
	// serial pass, so ShardedBackend may fan the items out across workers.
	// Serial backends (those maintaining state across the entire sequence
	// that sharding would invalidate) run as a single shard regardless of
	// the requested worker count.
	Parallelizable() bool
	// Check validates the items against b's constraint graphs. Items must be
	// in ascending signature order for the order-maintaining backends
	// (collective, incremental); per-graph backends accept any order.
	// Implementations poll ctx between graphs and return ctx.Err() promptly
	// on cancellation instead of a partial verdict.
	Check(ctx context.Context, b *graph.Builder, items []Item) (*Result, error)
}

// backendFunc adapts a checking function to the Backend interface.
type backendFunc struct {
	name     string
	parallel bool
	check    func(ctx context.Context, b *graph.Builder, items []Item) (*Result, error)
}

func (f *backendFunc) Name() string         { return f.name }
func (f *backendFunc) Parallelizable() bool { return f.parallel }
func (f *backendFunc) Check(ctx context.Context, b *graph.Builder, items []Item) (*Result, error) {
	return f.check(ctx, b, items)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Backend)
)

// Register adds a backend under its Name; it panics on a duplicate name,
// since backend names are CLI-visible identifiers that must stay unique.
func Register(be Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[be.Name()]; dup {
		panic(fmt.Sprintf("check: duplicate backend %q", be.Name()))
	}
	registry[be.Name()] = be
}

// ForName returns the registered backend for name. The error lists every
// valid name, so CLI flag errors derived from it can never drift from the
// implemented set.
func ForName(name string) (Backend, error) {
	registryMu.RLock()
	be, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("check: unknown backend %q (valid: %s)", name, strings.Join(Backends(), ", "))
	}
	return be, nil
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(&backendFunc{name: "collective", parallel: true, check: CollectiveContext})
	Register(&backendFunc{name: "conventional", parallel: true, check: ConventionalContext})
	// Pearce–Kelly is the one inherently serial backend: its whole point is
	// a single topological order repaired edge by edge across the entire
	// sorted sequence, and splitting the sequence forfeits exactly the
	// cross-graph state the algorithm amortizes.
	Register(&backendFunc{name: "incremental", parallel: false, check: IncrementalContext})
	Register(&backendFunc{name: "vectorclock", parallel: true, check: VectorClockContext})
	// The constraint solver is an oracle, not a contender: it is kept
	// serial so a differential run exercises exactly one deterministic
	// solving order, making any disagreement against a fast backend
	// trivially reproducible.
	Register(&backendFunc{name: "constraints", parallel: false, check: ConstraintsContext})
}

// Disagreement reports the first item on which two backends reached
// different verdicts — by construction a bug in at least one of them.
type Disagreement struct {
	A, B                 string // backend names
	Index                int    // position of the disputed item
	Sig                  sig.Signature
	AViolates, BViolates bool
}

func (d *Disagreement) String() string {
	return fmt.Sprintf("item %d (%s): %s violation=%t, %s violation=%t",
		d.Index, d.Sig, d.A, d.AViolates, d.B, d.BViolates)
}

// Differential races two backends over the same items concurrently and
// compares their verdicts: a nil Disagreement means the violation index sets
// matched exactly. Any disagreement is a checker bug finder for free — the
// backends implement independent algorithms, so they can only diverge when
// one of them is wrong. An error from either backend (including ctx
// cancellation) aborts the comparison.
func Differential(ctx context.Context, a, b Backend, builder *graph.Builder, items []Item) (*Disagreement, error) {
	var ra, rb *Result
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ra, ea = a.Check(ctx, builder, items) }()
	go func() { defer wg.Done(); rb, eb = b.Check(ctx, builder, items) }()
	wg.Wait()
	if ea != nil {
		return nil, fmt.Errorf("check: differential: %s: %w", a.Name(), ea)
	}
	if eb != nil {
		return nil, fmt.Errorf("check: differential: %s: %w", b.Name(), eb)
	}
	// Violations are appended in ascending item order by every backend, so
	// the first membership difference falls out of one sorted-merge walk.
	va, vb := ra.Violations, rb.Violations
	for len(va) > 0 || len(vb) > 0 {
		switch {
		case len(vb) == 0 || (len(va) > 0 && va[0].Index < vb[0].Index):
			return &Disagreement{A: a.Name(), B: b.Name(), Index: va[0].Index,
				Sig: va[0].Sig, AViolates: true}, nil
		case len(va) == 0 || vb[0].Index < va[0].Index:
			return &Disagreement{A: a.Name(), B: b.Name(), Index: vb[0].Index,
				Sig: vb[0].Sig, BViolates: true}, nil
		default:
			va, vb = va[1:], vb[1:]
		}
	}
	return nil, nil
}
