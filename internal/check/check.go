// Package check implements MTraceCheck's violation checking (paper §4):
// the conventional baseline that topologically sorts every unique
// execution's constraint graph from scratch, and the collective checker
// that exploits structural similarity between graphs of adjacent sorted
// signatures, re-sorting only the window of vertices spanned by newly
// introduced backward edges (§4.2).
//
// Window correctness (the proof the paper omits for space): let pos be a
// valid topological order of the previous graph and let the window [lo, hi]
// span every new backward edge — lo is the minimum position among backward
// edge heads, hi the maximum among backward-edge tails. Any edge entering
// the window from a position above hi would have been a backward edge with
// its head inside the window (old edges are forward; new backward edges
// have tails at positions ≤ hi by construction), and any edge leaving the
// window to a position below lo would likewise contradict lo's minimality.
// Hence no constraint crosses into the window from above or out of it
// below: re-sorting the window's vertices among their own positions
// preserves validity, and any cycle must lie entirely within the window.
package check

import (
	"context"
	"fmt"

	"mtracecheck/internal/graph"
	"mtracecheck/internal/sig"
)

// Item is one unique execution to check: its signature (for ordering and
// reporting) and its dynamic constraint edges.
type Item struct {
	Sig   sig.Signature
	Edges []graph.Edge
}

// Violation reports one failed graph.
type Violation struct {
	Index int           // position within the checked sequence
	Sig   sig.Signature // offending signature
	Cycle []int32       // one cyclic dependency (operation IDs)
}

// Kind classifies how a graph was validated by the collective checker
// (paper Fig. 14's breakdown).
type Kind uint8

const (
	// KindComplete is a full from-scratch topological sort.
	KindComplete Kind = iota
	// KindNoResort means no new backward edges: validated for free.
	KindNoResort
	// KindIncremental means a bounded window was re-sorted.
	KindIncremental
)

// GraphStat records the checking effort for one graph.
type GraphStat struct {
	Kind     Kind
	Affected int // vertices re-sorted (window size; N for complete)
}

// Result aggregates a checking run. Total and Violations are the verdict,
// identical across backends; the remaining fields are effort accounting and
// each backend populates only the counters its algorithm has a notion of.
type Result struct {
	Total      int
	Violations []Violation
	PerGraph   []GraphStat // order-maintaining checkers (collective, incremental) only
	// SortedVertices counts every vertex visited by a topological (re)sort —
	// the computation metric behind Fig. 9's speedup.
	SortedVertices int64
	// BackwardEdges counts new edges found backward against the maintained
	// order — the quantity whose span defines each re-sort window (§4.2).
	BackwardEdges int64
	// MaxWindow is the largest window re-sorted incrementally (0 when every
	// graph was validated by a complete sort or for free).
	MaxWindow int
	// ClockUpdates counts clock joins that changed a clock — the vector-clock
	// backend's effort metric (zero for the sorting backends).
	ClockUpdates int64
	// Propagations counts domain-bound tightenings performed by the
	// constraint-solver backend — its effort metric (zero elsewhere).
	Propagations int64
}

// Complete, NoResort, and Incremental count graphs per validation kind.
// The counts are meaningful only for the collective backend (and the
// incremental backend, which records the analogous per-graph repair kinds);
// the conventional and vector-clock backends keep no PerGraph stats, so all
// three counts are zero there.
func (r *Result) Counts() (complete, noResort, incremental int) {
	for _, s := range r.PerGraph {
		switch s.Kind {
		case KindComplete:
			complete++
		case KindNoResort:
			noResort++
		case KindIncremental:
			incremental++
		}
	}
	return
}

// debugValidate, when set (tests only), is invoked with each graph the
// collective checker validated incrementally and the full order it
// maintains, so tests can assert the order remains a valid topological sort.
var debugValidate func(g *graph.Graph, order []int32)

// Conventional checks every item with an independent full topological sort
// — the baseline MTraceCheck compares against (tsort in the paper). Vertex
// data structures are recycled across graphs, edges rebuilt per graph.
func Conventional(b *graph.Builder, items []Item) *Result {
	res, _ := ConventionalContext(context.Background(), b, items)
	return res
}

// ConventionalContext is Conventional with cooperative cancellation: the
// context is polled between graphs, so a cancelled campaign stops checking
// promptly and returns ctx.Err() instead of a partial verdict. Items need
// not be sorted — each graph is checked independently.
func ConventionalContext(ctx context.Context, b *graph.Builder, items []Item) (*Result, error) {
	res := &Result{Total: len(items)}
	w := getWorkspace(b)
	defer putWorkspace(w)
	for i, it := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w.setDyn(it.Edges)
		res.SortedVertices += int64(w.n)
		if _, ok := w.fullSort(false); !ok {
			res.Violations = append(res.Violations, Violation{
				Index: i, Sig: it.Sig, Cycle: b.FromDynamic(it.Edges).FindCycle(),
			})
		}
	}
	return res, nil
}

// Collective checks items in ascending-signature order using topological
// re-sorting. Items must be sorted by signature (as produced by
// sig.Dedup); Collective returns an error otherwise, since the similarity
// assumption underpins the windowing.
func Collective(b *graph.Builder, items []Item) (*Result, error) {
	return CollectiveContext(context.Background(), b, items)
}

// CollectiveContext is Collective with cooperative cancellation: the context
// is polled between graphs, so a cancelled campaign stops checking promptly
// and returns ctx.Err() instead of a partial verdict.
func CollectiveContext(ctx context.Context, b *graph.Builder, items []Item) (*Result, error) {
	res := &Result{Total: len(items)}
	if len(items) == 0 {
		return res, nil
	}
	for i := 1; i < len(items); i++ {
		if items[i-1].Sig.Compare(items[i].Sig) > 0 {
			return nil, fmt.Errorf("check: items not in ascending signature order at %d", i)
		}
	}

	n := b.NumOps()
	w := getWorkspace(b)
	defer putWorkspace(w)
	pos := w.pos     // vertex -> position in current valid order
	order := w.order // position -> vertex
	havePos := false
	var baseEdges []graph.Edge // dynamic edges of the last valid graph
	diffBuf := w.diffBuf[:0]   // reused new-edge scratch
	defer func() { w.diffBuf = diffBuf }()

	for i, it := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !havePos {
			// First graph (or recovery after a cyclic graph): complete sort.
			res.SortedVertices += int64(n)
			w.setDyn(it.Edges)
			full, ok := w.fullSort(true)
			if !ok {
				res.Violations = append(res.Violations, Violation{
					Index: i, Sig: it.Sig, Cycle: b.FromDynamic(it.Edges).FindCycle(),
				})
				res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindComplete, Affected: n})
				continue
			}
			copy(order, full)
			for p, v := range order {
				pos[v] = int32(p)
			}
			havePos = true
			baseEdges = it.Edges
			res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindComplete, Affected: n})
			continue
		}

		// New edges relative to the last valid graph; removed edges only
		// relax constraints and are ignored (§4.2).
		diffBuf = diffEdges(diffBuf[:0], it.Edges, baseEdges)
		added := diffBuf
		lo, hi := int32(-1), int32(-1)
		for _, e := range added {
			pu, pv := pos[e.U], pos[e.V]
			if pu > pv { // backward edge
				res.BackwardEdges++
				if lo < 0 || pv < lo {
					lo = pv
				}
				if pu > hi {
					hi = pu
				}
			}
		}
		if lo < 0 {
			// Every new edge is forward: the existing order already proves
			// this graph consistent.
			res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindNoResort})
			baseEdges = it.Edges
			continue
		}

		window := int(hi - lo + 1)
		res.SortedVertices += int64(window)
		if window > res.MaxWindow {
			res.MaxWindow = window
		}
		w.setDyn(it.Edges)
		if window*4 >= n*3 {
			// The window spans almost the whole order: a from-scratch sort
			// is cheaper than window bookkeeping and, since any cycle is
			// confined to the window, delivers the same verdict.
			full, ok := w.fullSort(true)
			if !ok {
				res.Violations = append(res.Violations, Violation{
					Index: i, Sig: it.Sig, Cycle: b.FromDynamic(it.Edges).FindCycle(),
				})
				res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindIncremental, Affected: window})
				continue
			}
			copy(order, full)
			for p, v := range order {
				pos[v] = int32(p)
			}
			baseEdges = it.Edges
			res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindIncremental, Affected: window})
			if debugValidate != nil {
				debugValidate(b.FromDynamic(it.Edges), order)
			}
			continue
		}
		sub, ok := w.windowSort(order, pos, lo, hi)
		if !ok {
			res.Violations = append(res.Violations, Violation{
				Index: i, Sig: it.Sig, Cycle: b.FromDynamic(it.Edges).FindCycle(),
			})
			res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindIncremental, Affected: window})
			// pos still describes the last valid graph; keep using it.
			continue
		}
		// Install the re-sorted window.
		for k, v := range sub {
			p := lo + int32(k)
			order[p] = v
			pos[v] = p
		}
		baseEdges = it.Edges
		res.PerGraph = append(res.PerGraph, GraphStat{Kind: KindIncremental, Affected: window})
		if debugValidate != nil {
			debugValidate(b.FromDynamic(it.Edges), order)
		}
	}
	return res, nil
}

// diffEdges appends the edges of cur not present in prev to out; both
// inputs are sorted (graph.DynamicEdges order).
func diffEdges(out, cur, prev []graph.Edge) []graph.Edge {
	i, j := 0, 0
	for i < len(cur) {
		switch {
		case j >= len(prev) || less(cur[i], prev[j]):
			out = append(out, cur[i])
			i++
		case less(prev[j], cur[i]):
			j++
		default:
			i++
			j++
		}
	}
	return out
}

func less(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}
