package check

import (
	"context"
	"sync"

	"mtracecheck/internal/graph"
)

// The vector-clock backend adapts the TSOtool family of polynomial-time
// checkers (Roy et al., "Fast and Generalized Polynomial Time Memory
// Consistency Verification"): instead of (re)sorting each constraint graph
// topologically, every operation carries a clock recording the set of
// operations ordered strictly before it, and the clocks are propagated
// along edges to fixpoint. A graph is cyclic exactly when some operation's
// clock comes to order the operation before itself.
//
// TSOtool's rule-based edge derivation collapses to plain closure here: the
// signature decode already yields the complete dynamic edge set (rf, fr,
// ws), so the part of the algorithm that survives is its iterative clock
// propagation and the self-ordering cycle test. The clocks are per-operation
// predecessor bitsets, not the per-thread [tid]→index vectors of the TSO
// original: under weak models the constraint graph does not totally order a
// thread's operations (an RMO thread's independent accesses carry no po
// edge), so "max program-order index seen per thread" would manufacture
// orderings that are not in the graph and report false cycles. A bitset
// clock encodes exactly the graph's reachability and nothing more, at
// n/64 words per operation — n is a few hundred for the paper's test sizes,
// so a clock is a handful of words and a join is a few OR instructions.
//
// Each graph is checked independently (no cross-item state), which makes
// the backend trivially parallelizable and its effort counter —
// Result.ClockUpdates, the number of joins that changed a clock —
// worker-invariant, unlike the sorting backends' SortedVertices.

// vcWorkspace holds the recycled clock matrix for one builder's programs,
// pooled like the sorting workspace (§6.2 recycling: vertex structures
// persist across graphs, edge structures are rebuilt per graph).
type vcWorkspace struct {
	owner  *graph.Builder
	n      int
	words  int       // clock width: ceil(n/64) uint64 words
	static [][]int32 // shared static adjacency, borrowed from the builder
	clocks []uint64  // n×words bit-matrix; clocks[u] = ops strictly before u
}

var vcPool sync.Pool

func getVCWorkspace(b *graph.Builder) *vcWorkspace {
	if w, _ := vcPool.Get().(*vcWorkspace); w != nil && w.owner == b {
		return w
	}
	n := b.NumOps()
	words := (n + 63) / 64
	return &vcWorkspace{
		owner:  b,
		n:      n,
		words:  words,
		static: b.FromDynamic(nil).Static,
		clocks: make([]uint64, n*words),
	}
}

func putVCWorkspace(w *vcWorkspace) { vcPool.Put(w) }

// VectorClock checks every item independently by vector-clock closure; see
// VectorClockContext. Unlike the order-maintaining backends it accepts
// items in any order.
func VectorClock(b *graph.Builder, items []Item) (*Result, error) {
	return VectorClockContext(context.Background(), b, items)
}

// VectorClockContext is VectorClock with cooperative cancellation: the
// context is polled between graphs, so a cancelled campaign stops checking
// promptly and returns ctx.Err() instead of a partial verdict.
//
// The Result populates Total, Violations, and ClockUpdates only: there is
// no maintained order, so PerGraph, SortedVertices, BackwardEdges, and
// MaxWindow stay zero (see Result.Counts).
func VectorClockContext(ctx context.Context, b *graph.Builder, items []Item) (*Result, error) {
	res := &Result{Total: len(items)}
	w := getVCWorkspace(b)
	defer putVCWorkspace(w)
	for i, it := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cyclic, joins := w.closure(it.Edges)
		res.ClockUpdates += joins
		if cyclic {
			res.Violations = append(res.Violations, Violation{
				Index: i, Sig: it.Sig, Cycle: b.FromDynamic(it.Edges).FindCycle(),
			})
		}
	}
	return res, nil
}

// closure propagates predecessor clocks along the graph's static and
// dynamic edges until no clock changes, reporting whether some operation
// ends up ordered before itself and how many joins changed a clock. Each
// round sweeps vertices in ascending ID, walking the sorted dynamic edge
// list in lockstep; edges pointing to higher IDs settle within a round, so
// the round count is bounded by the longest descending-ID chain, and the
// whole closure by O(rounds × edges × words).
func (w *vcWorkspace) closure(dyn []graph.Edge) (cyclic bool, joins int64) {
	clocks := w.clocks
	for k := range clocks {
		clocks[k] = 0
	}
	words := w.words
	for changed := true; changed; {
		changed = false
		di := 0
		for u := 0; u < w.n; u++ {
			cu := clocks[u*words : (u+1)*words]
			for _, v := range w.static[u] {
				did, cyc := joinClock(clocks, cu, int32(u), v, words)
				if cyc {
					return true, joins + 1
				}
				if did {
					joins++
					changed = true
				}
			}
			for ; di < len(dyn) && int(dyn[di].U) == u; di++ {
				did, cyc := joinClock(clocks, cu, int32(u), dyn[di].V, words)
				if cyc {
					return true, joins + 1
				}
				if did {
					joins++
					changed = true
				}
			}
		}
	}
	return false, joins
}

// joinClock merges u's clock plus u itself into v's clock for edge (u,v):
// everything before u is before v, and so is u. It reports whether v's
// clock changed and whether v is now ordered before itself (a cycle). The
// cycle test runs only on a changed join: a clock already containing bit v
// was detected the round it first appeared.
func joinClock(clocks, cu []uint64, u, v int32, words int) (changed, cyclic bool) {
	cv := clocks[int(v)*words : (int(v)+1)*words]
	for k := range cv {
		add := cu[k]
		if int32(k) == u>>6 {
			add |= 1 << (uint(u) & 63)
		}
		if merged := cv[k] | add; merged != cv[k] {
			cv[k] = merged
			changed = true
		}
	}
	if changed && cv[v>>6]&(1<<(uint(v)&63)) != 0 {
		return true, true
	}
	return changed, false
}
