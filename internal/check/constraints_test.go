package check

import (
	"math/rand"
	"reflect"
	"testing"

	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/testgen"
)

// TestConstraintsEquivalence: the constraint solver must deliver exactly the
// conventional checker's verdicts across models, programs, and fabricated
// execution sets — the property that makes it the differential oracle for
// every fast backend.
func TestConstraintsEquivalence(t *testing.T) {
	for _, model := range mcm.Models {
		for seed := int64(1); seed <= 3; seed++ {
			p := testgen.MustGenerate(testgen.Config{
				Threads: 3, OpsPerThread: 12, Words: 4, Seed: seed,
			})
			meta, err := instrument.Analyze(p, 64, nil)
			if err != nil {
				t.Fatal(err)
			}
			b := graph.NewBuilder(p, model, graph.Options{Forwarding: true})
			rng := rand.New(rand.NewSource(seed * 131))
			items := fabricate(t, p, b, meta, 60, rng)
			conv := Conventional(b, items)
			cs, err := Constraints(b, items)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(violIndices(cs), violIndices(conv)) {
				t.Fatalf("%v seed %d: constraints verdicts %v, conventional %v",
					model, seed, violIndices(cs), violIndices(conv))
			}
			if cs.Total != len(items) {
				t.Fatalf("%v seed %d: total %d, want %d", model, seed, cs.Total, len(items))
			}
			if cs.Propagations == 0 {
				t.Errorf("%v seed %d: no propagations recorded", model, seed)
			}
			if cs.ClockUpdates != 0 || cs.SortedVertices != 0 || len(cs.PerGraph) != 0 {
				t.Errorf("%v seed %d: solver populated another backend's counters: %+v",
					model, seed, cs)
			}
		}
	}
}

// TestConstraintsCycleWitness: a refuted graph must carry a real cycle of
// the flagged item's constraint graph, exactly like every other backend.
func TestConstraintsCycleWitness(t *testing.T) {
	b, items := fig7Items(t)
	cs, err := Constraints(b, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Violations) != 1 {
		t.Fatalf("violations = %+v, want exactly one", cs.Violations)
	}
	v := cs.Violations[0]
	if len(v.Cycle) < 2 {
		t.Fatalf("cycle witness %v too short", v.Cycle)
	}
	g := b.FromDynamic(items[v.Index].Edges)
	for i, u := range v.Cycle {
		next := v.Cycle[(i+1)%len(v.Cycle)]
		found := false
		g.Out(u, func(w int32) {
			if w == next {
				found = true
			}
		})
		if !found {
			t.Fatalf("witness %v: no edge %d->%d in the flagged graph", v.Cycle, u, next)
		}
	}
}

// TestConstraintsWitnessAssignment: on an acyclic graph the solver's search
// must complete every domain to a singleton satisfying all constraints —
// checked by re-running solve on a hand-built workspace and inspecting the
// final bounds.
func TestConstraintsWitnessAssignment(t *testing.T) {
	b, items := fig7Items(t)
	w := getCSWorkspace(b)
	for _, it := range items {
		sat, _ := w.solve(it.Edges)
		cyclic := b.FromDynamic(it.Edges).FindCycle() != nil
		if sat == cyclic {
			t.Fatalf("solve = %t but FindCycle cyclic = %t", sat, cyclic)
		}
		if !sat {
			continue
		}
		// The search ended with every variable assigned; the assignment must
		// satisfy every constraint of this item.
		for i := range w.lb {
			if w.lb[i] != w.ub[i] {
				t.Fatalf("variable %d left unassigned: [%d, %d]", i, w.lb[i], w.ub[i])
			}
		}
		for _, e := range w.edges {
			if w.lb[e.U] >= w.lb[e.V] {
				t.Fatalf("witness violates edge %d->%d: pos %d >= %d",
					e.U, e.V, w.lb[e.U], w.lb[e.V])
			}
		}
	}
	putCSWorkspace(w)
}

// TestConstraintsTrailUndo: trail-based undo must restore domains exactly,
// including interleaved lb/ub tightenings of the same variable — the
// machinery backtracking depends on.
func TestConstraintsTrailUndo(t *testing.T) {
	b, _ := fig7Items(t)
	w := getCSWorkspace(b)
	n := w.n
	for i := range w.lb {
		w.lb[i], w.ub[i] = 0, int32(n-1)
	}
	w.trail = w.trail[:0]
	var props int64
	mark0 := len(w.trail)
	if !w.setLB(0, 2, &props) || !w.setUB(0, 3, &props) {
		t.Fatal("tightening within the domain reported failure")
	}
	mark1 := len(w.trail)
	if !w.setLB(0, 3, &props) {
		t.Fatal("tightening to the singleton reported failure")
	}
	if w.setUB(0, 2, &props) {
		t.Fatal("emptying the domain reported success")
	}
	w.undo(mark1)
	if w.lb[0] != 2 || w.ub[0] != 3 {
		t.Fatalf("undo to mark1: domain [%d, %d], want [2, 3]", w.lb[0], w.ub[0])
	}
	w.undo(mark0)
	if w.lb[0] != 0 || w.ub[0] != int32(n-1) {
		t.Fatalf("undo to mark0: domain [%d, %d], want [0, %d]", w.lb[0], w.ub[0], n-1)
	}
	if props != 4 {
		t.Errorf("props = %d, want 4 (every tightening counts, undone or not)", props)
	}
	putCSWorkspace(w)
}
