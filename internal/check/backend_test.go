package check

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/testgen"
)

func TestBackendRegistry(t *testing.T) {
	want := []string{"collective", "constraints", "conventional", "incremental", "vectorclock"}
	if got := Backends(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for _, name := range want {
		be, err := ForName(name)
		if err != nil {
			t.Fatalf("ForName(%q): %v", name, err)
		}
		if be.Name() != name {
			t.Errorf("ForName(%q).Name() = %q", name, be.Name())
		}
		// Pearce–Kelly maintains one order across the whole sequence, and
		// the constraint solver is deliberately serial; every other backend
		// shards.
		if wantPar := name != "incremental" && name != "constraints"; be.Parallelizable() != wantPar {
			t.Errorf("%s: Parallelizable() = %t, want %t", name, be.Parallelizable(), wantPar)
		}
	}
	_, err := ForName("bogus")
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ForName error %q does not list %q", err, name)
		}
	}
}

// TestVectorClockEquivalence: the vector-clock closure must deliver exactly
// the conventional checker's verdicts across models, programs, and fabricated
// execution sets — the property that makes it a trustworthy differential
// partner for the sorting backends.
func TestVectorClockEquivalence(t *testing.T) {
	for _, model := range mcm.Models {
		for seed := int64(1); seed <= 4; seed++ {
			p := testgen.MustGenerate(testgen.Config{
				Threads: 3, OpsPerThread: 20, Words: 4, Seed: seed,
			})
			meta, err := instrument.Analyze(p, 64, nil)
			if err != nil {
				t.Fatal(err)
			}
			b := graph.NewBuilder(p, model, graph.Options{Forwarding: true})
			rng := rand.New(rand.NewSource(seed * 307))
			items := fabricate(t, p, b, meta, 120, rng)
			conv := Conventional(b, items)
			vc, err := VectorClock(b, items)
			if err != nil {
				t.Fatal(err)
			}
			ci, vi := violIndices(vc), violIndices(conv)
			if !reflect.DeepEqual(ci, vi) {
				t.Fatalf("%v seed %d: vector-clock verdicts %v, conventional %v",
					model, seed, ci, vi)
			}
			if vc.Total != len(items) {
				t.Fatalf("%v seed %d: total %d, want %d", model, seed, vc.Total, len(items))
			}
			if len(vi) < len(items) && vc.ClockUpdates == 0 {
				t.Errorf("%v seed %d: no clock updates recorded", model, seed)
			}
		}
	}
}

// fig7Items rebuilds the paper's Fig. 7 four-run sequence (TestFig7Scenario),
// whose last run closes a load-buffering cycle under TSO.
func fig7Items(t *testing.T) (*graph.Builder, []Item) {
	t.Helper()
	p := prog.NewBuilder("fig7", 2, prog.DefaultLayout()).
		Thread().Store(0).Load(1).Store(0).
		Thread().Store(1).Load(0).Store(1).
		MustBuild()
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(vals map[int]uint32, rf graph.RF) Item {
		s, err := meta.EncodeExecution(vals)
		if err != nil {
			t.Fatal(err)
		}
		edges, err := b.DynamicEdges(rf, graph.WS{0: {0, 2}, 1: {3, 5}})
		if err != nil {
			t.Fatal(err)
		}
		return Item{Sig: s, Edges: edges}
	}
	items := []Item{
		mk(map[int]uint32{1: 0, 4: 0}, graph.RF{1: -1, 4: -1}),
		mk(map[int]uint32{1: 4, 4: 0}, graph.RF{1: 3, 4: -1}),
		mk(map[int]uint32{1: 4, 4: 1}, graph.RF{1: 3, 4: 0}),
		mk(map[int]uint32{1: 6, 4: 3}, graph.RF{1: 5, 4: 2}), // the buggy run
	}
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if items[j].Sig.Compare(items[i].Sig) < 0 {
				items[i], items[j] = items[j], items[i]
			}
		}
	}
	return b, items
}

// TestVectorClockCycleWitness: a flagged graph must carry a real cycle — every
// consecutive pair of witness operations (wrapping around) is an edge of that
// item's constraint graph.
func TestVectorClockCycleWitness(t *testing.T) {
	b, items := fig7Items(t)
	vc, err := VectorClock(b, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(vc.Violations) != 1 {
		t.Fatalf("violations = %+v, want exactly one", vc.Violations)
	}
	v := vc.Violations[0]
	if len(v.Cycle) < 2 {
		t.Fatalf("cycle witness %v too short", v.Cycle)
	}
	g := b.FromDynamic(items[v.Index].Edges)
	for i, u := range v.Cycle {
		next := v.Cycle[(i+1)%len(v.Cycle)]
		found := false
		g.Out(u, func(w int32) {
			if w == next {
				found = true
			}
		})
		if !found {
			t.Fatalf("witness %v: no edge %d->%d in the flagged graph", v.Cycle, u, next)
		}
	}
	conv := Conventional(b, items)
	if !reflect.DeepEqual(violIndices(vc), violIndices(conv)) {
		t.Fatalf("vector-clock %v, conventional %v", violIndices(vc), violIndices(conv))
	}
}

// TestBackendsCancelled: every registered backend must return ctx.Err()
// promptly — and no partial result — when its context is already cancelled.
func TestBackendsCancelled(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 3, OpsPerThread: 20, Words: 4, Seed: 1})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	items := fabricate(t, p, b, meta, 50, rand.New(rand.NewSource(3)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Backends() {
		be, err := ForName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := be.Check(ctx, b, items)
		if err != context.Canceled {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil {
			t.Errorf("%s: partial result returned alongside cancellation", name)
		}
	}
}

// TestDifferentialAgreesOnRealBackends: every backend pair must agree on
// fabricated items containing both verdicts — any Disagreement here is a
// checker bug.
func TestDifferentialAgreesOnRealBackends(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 3, OpsPerThread: 20, Words: 4, Seed: 2})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(p, mcm.RMO, graph.Options{Forwarding: true})
	items := fabricate(t, p, b, meta, 120, rand.New(rand.NewSource(17)))
	names := Backends()
	for i, an := range names {
		for _, bn := range names[i+1:] {
			ba, _ := ForName(an)
			bb, _ := ForName(bn)
			d, err := Differential(context.Background(), ba, bb, b, items)
			if err != nil {
				t.Fatalf("%s vs %s: %v", an, bn, err)
			}
			if d != nil {
				t.Errorf("%s vs %s disagree: %s", an, bn, d)
			}
		}
	}
}

// TestDifferentialFindsInjectedDisagreement: a deliberately blind backend
// racing a real one must surface the first disputed item with the right
// attribution.
func TestDifferentialFindsInjectedDisagreement(t *testing.T) {
	b, items := fig7Items(t)
	conv, _ := ForName("conventional")
	blind := &backendFunc{name: "blind", parallel: true,
		check: func(ctx context.Context, b *graph.Builder, items []Item) (*Result, error) {
			return &Result{Total: len(items)}, nil
		}}
	ref := Conventional(b, items)
	if len(ref.Violations) != 1 {
		t.Fatalf("fixture: %d violations, want 1", len(ref.Violations))
	}
	d, err := Differential(context.Background(), conv, blind, b, items)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("blind backend escaped differential checking")
	}
	if d.A != "conventional" || d.B != "blind" || !d.AViolates || d.BViolates {
		t.Errorf("disagreement misattributed: %+v", d)
	}
	if d.Index != ref.Violations[0].Index || !d.Sig.Equal(ref.Violations[0].Sig) {
		t.Errorf("disagreement at item %d (%s), want %d", d.Index, d.Sig, ref.Violations[0].Index)
	}
	// Swapped operands must flip the attribution, not the detection.
	d, err = Differential(context.Background(), blind, conv, b, items)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.AViolates || !d.BViolates {
		t.Errorf("swapped operands: %+v", d)
	}
	// A cancelled context aborts the comparison with an error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Differential(ctx, conv, blind, b, items); err == nil {
		t.Error("cancelled differential returned no error")
	}
}

// TestShardedBackendSerialSingleShard: a non-parallelizable backend must run
// as one honest shard no matter the requested count — one onShard call
// reporting shards=1 over the full range, with the serial pass's exact result.
func TestShardedBackendSerialSingleShard(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 3, OpsPerThread: 20, Words: 4, Seed: 1})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	items := fabricate(t, p, b, meta, 100, rand.New(rand.NewSource(9)))
	serial, err := Incremental(b, items)
	if err != nil {
		t.Fatal(err)
	}
	be, _ := ForName("incremental")
	type call struct{ shard, shards, start, count int }
	var calls []call
	res, err := ShardedBackend(context.Background(), be, b, items, 8,
		func(shard, shards, start, count int, part *Result, _ time.Time, _ time.Duration) {
			calls = append(calls, call{shard, shards, start, count})
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0] != (call{0, 1, 0, len(items)}) {
		t.Fatalf("shard callbacks = %+v, want one full-range call with shards=1", calls)
	}
	if !reflect.DeepEqual(violIndices(res), violIndices(serial)) ||
		res.SortedVertices != serial.SortedVertices {
		t.Fatalf("sharded serial backend diverges from direct call")
	}
}

// TestShardedBackendShardInvariance: for every parallelizable backend the
// verdicts — and for the per-graph vector-clock backend even the effort —
// must not depend on the shard count.
func TestShardedBackendShardInvariance(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 3, OpsPerThread: 20, Words: 4, Seed: 4})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(p, mcm.RMO, graph.Options{Forwarding: true})
	items := fabricate(t, p, b, meta, 150, rand.New(rand.NewSource(41)))
	for _, name := range Backends() {
		be, _ := ForName(name)
		base, err := ShardedBackend(context.Background(), be, b, items, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, shards := range []int{2, 5, len(items) + 3} {
			res, err := ShardedBackend(context.Background(), be, b, items, shards, nil)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if !reflect.DeepEqual(violIndices(res), violIndices(base)) {
				t.Errorf("%s shards=%d: verdicts %v, serial %v",
					name, shards, violIndices(res), violIndices(base))
			}
			if name == "vectorclock" && res.ClockUpdates != base.ClockUpdates {
				t.Errorf("vectorclock shards=%d: %d clock updates, serial %d",
					shards, res.ClockUpdates, base.ClockUpdates)
			}
		}
	}
}

// TestShardedBackendRejectsUnsortedItems: the order contract is enforced
// uniformly, so a backend's verdict can never depend on the shard count or
// on which backend happened to be configured.
func TestShardedBackendRejectsUnsortedItems(t *testing.T) {
	p := prog.NewBuilder("t", 1, prog.DefaultLayout()).
		Thread().Store(0).Load(0).
		MustBuild()
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{})
	items := []Item{
		{Sig: sig.New([]uint64{2})},
		{Sig: sig.New([]uint64{1})},
	}
	for _, name := range Backends() {
		be, _ := ForName(name)
		if _, err := ShardedBackend(context.Background(), be, b, items, 1, nil); err == nil {
			t.Errorf("%s: unsorted items accepted", name)
		}
	}
}

// FuzzDifferential cross-checks all backends against the conventional
// reference on fuzz-chosen execution sets over the Fig. 7 program: each input
// byte pair picks one rf assignment for the two loads, so the corpus spans
// every combination including the known-cyclic load-buffering run.
func FuzzDifferential(f *testing.F) {
	p := prog.NewBuilder("fig7", 2, prog.DefaultLayout()).
		Thread().Store(0).Load(1).Store(0).
		Thread().Store(1).Load(0).Store(1).
		MustBuild()
	b := graph.NewBuilder(p, mcm.TSO, graph.Options{Forwarding: true})
	meta, err := instrument.Analyze(p, 64, nil)
	if err != nil {
		f.Fatal(err)
	}
	var loads []instrument.LoadInfo
	for _, tm := range meta.Threads {
		loads = append(loads, tm.Loads...)
	}
	// Seed every single-item candidate combination — one of them is the
	// cyclic Fig. 7 run 4 — plus a multi-item sequence.
	for i := byte(0); i < 4; i++ {
		for j := byte(0); j < 4; j++ {
			f.Add([]byte{i, j})
		}
	}
	f.Add([]byte{0, 0, 1, 0, 1, 1, 3, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		type raw struct {
			s     sig.Signature
			edges []graph.Edge
		}
		byKey := map[string]raw{}
		for k := 0; k+len(loads) <= len(data) && len(byKey) < 16; k += len(loads) {
			rf := graph.RF{}
			vals := map[int]uint32{}
			for li, info := range loads {
				c := info.Candidates[int(data[k+li])%len(info.Candidates)]
				rf[info.Op.ID] = c.Store
				vals[info.Op.ID] = c.Value
			}
			s, err := meta.EncodeExecution(vals)
			if err != nil {
				t.Fatal(err)
			}
			edges, err := b.DynamicEdges(rf, graph.WS{0: {0, 2}, 1: {3, 5}})
			if err != nil {
				t.Fatal(err)
			}
			byKey[s.Key()] = raw{s: s, edges: edges}
		}
		sigs := make([]sig.Signature, 0, len(byKey))
		for _, r := range byKey {
			sigs = append(sigs, r.s)
		}
		sig.Sort(sigs)
		items := make([]Item, len(sigs))
		for i, s := range sigs {
			items[i] = Item{Sig: s, Edges: byKey[s.Key()].edges}
		}
		ref, _ := ForName("conventional")
		for _, name := range Backends() {
			if name == "conventional" {
				continue
			}
			be, _ := ForName(name)
			d, err := Differential(context.Background(), ref, be, b, items)
			if err != nil {
				t.Fatal(err)
			}
			if d != nil {
				t.Fatalf("conventional vs %s disagree: %s", name, d)
			}
		}
	})
}
