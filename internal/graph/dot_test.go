package graph

import (
	"strings"
	"testing"

	"mtracecheck/internal/mcm"
)

func TestWriteDOT(t *testing.T) {
	p := lb()
	b := NewBuilder(p, mcm.SC, Options{})
	g, err := b.BuildGraph(RF{0: 3, 2: 1}, WS{0: {3}, 1: {1}})
	if err != nil {
		t.Fatal(err)
	}
	cycle := g.FindCycle()
	if len(cycle) == 0 {
		t.Fatal("expected a cycle in the LB outcome under SC")
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, p, cycle); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph constraints {",
		"subgraph cluster_t0",
		"subgraph cluster_t1",
		"ld 0x0", "st 0x1",
		"style=dashed", // dynamic edge
		"style=solid",  // po edge
		"color=red",    // highlighted cycle
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Every operation appears as a node.
	for _, op := range p.Ops() {
		if !strings.Contains(out, nodeName(op.ID)) {
			t.Errorf("missing node for op %d", op.ID)
		}
	}
}

func nodeName(id int) string {
	return "n" + string(rune('0'+id))
}

func TestWriteDOTNoHighlight(t *testing.T) {
	p := lb()
	b := NewBuilder(p, mcm.RMO, Options{})
	g, err := b.BuildGraph(RF{0: -1, 2: -1}, WS{0: {3}, 1: {1}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, p, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "color=red") {
		t.Error("unexpected highlight without a cycle")
	}
}
