package graph

import (
	"math/rand"
	"testing"

	"mtracecheck/internal/mcm"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/testgen"
)

// lb builds the paper's Fig. 2 program: two threads, each loading the other
// thread's word before storing its own.
//
//	t0: ld w0 (op 0); st w1 (op 1)
//	t1: ld w1 (op 2); st w0 (op 3)
func lb() *prog.Program {
	return prog.NewBuilder("fig2", 2, prog.DefaultLayout()).
		Thread().Load(0).Store(1).
		Thread().Load(1).Store(0).
		MustBuild()
}

func TestFig2CycleUnderTSO(t *testing.T) {
	p := lb()
	// Both loads read the other thread's store: r0 = r1 = 1 in the paper.
	rf := RF{0: 3, 2: 1}
	ws := WS{0: {3}, 1: {1}}
	for _, model := range []mcm.Model{mcm.SC, mcm.TSO, mcm.PSO} {
		b := NewBuilder(p, model, Options{})
		g, err := b.BuildGraph(rf, ws)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := g.TopoSort(); ok {
			t.Errorf("%v: LB outcome has a topological sort (should be cyclic)", model)
		}
		if cyc := g.FindCycle(); len(cyc) == 0 {
			t.Errorf("%v: FindCycle found nothing", model)
		}
	}
	// RMO relaxes ld→st: the same outcome is acyclic.
	b := NewBuilder(p, mcm.RMO, Options{})
	g, err := b.BuildGraph(rf, ws)
	if err != nil {
		t.Fatal(err)
	}
	if order, ok := g.TopoSort(); !ok {
		t.Error("RMO: LB outcome cyclic, should be allowed")
	} else if err := g.VerifyOrder(order); err != nil {
		t.Error(err)
	}
}

func TestSBOutcomeTSOvsSC(t *testing.T) {
	// t0: st w0 (0); ld w1 (1)    t1: st w1 (2); ld w0 (3)
	p := prog.NewBuilder("sb", 2, prog.DefaultLayout()).
		Thread().Store(0).Load(1).
		Thread().Store(1).Load(0).
		MustBuild()
	rf := RF{1: -1, 3: -1} // both loads read the initial value
	ws := WS{0: {0}, 1: {2}}

	bSC := NewBuilder(p, mcm.SC, Options{})
	g, err := bSC.BuildGraph(rf, ws)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TopoSort(); ok {
		t.Error("SC: SB outcome should be cyclic")
	}

	bTSO := NewBuilder(p, mcm.TSO, Options{})
	g, err = bTSO.BuildGraph(rf, ws)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TopoSort(); !ok {
		t.Error("TSO: SB outcome should be acyclic (store buffering)")
	}
}

func TestCoRRCycleEverywhere(t *testing.T) {
	// t0: st w0 (0)    t1: ld w0 (1); ld w0 (2)
	p := prog.NewBuilder("corr", 1, prog.DefaultLayout()).
		Thread().Store(0).
		Thread().Load(0).Load(0).
		MustBuild()
	rf := RF{1: 0, 2: -1} // first load sees the store, second sees initial
	ws := WS{0: {0}}
	for _, model := range mcm.Models {
		b := NewBuilder(p, model, Options{})
		g, err := b.BuildGraph(rf, ws)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := g.TopoSort(); ok {
			t.Errorf("%v: CoRR violation has a topological sort", model)
		}
	}
}

func TestFenceRestoresOrder(t *testing.T) {
	// SB with fences: cyclic under every model.
	p := prog.NewBuilder("sbf", 2, prog.DefaultLayout()).
		Thread().Store(0).Fence().Load(1).
		Thread().Store(1).Fence().Load(0).
		MustBuild()
	rf := RF{2: -1, 5: -1}
	ws := WS{0: {0}, 1: {3}}
	for _, model := range mcm.Models {
		b := NewBuilder(p, model, Options{})
		g, err := b.BuildGraph(rf, ws)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := g.TopoSort(); ok {
			t.Errorf("%v: fenced SB outcome has a topological sort", model)
		}
	}
}

// TestIntraThreadRFFalsePositive reproduces the paper's §8 footnote: on a
// forwarding (multi-copy) platform, adding intra-thread store→load rf edges
// yields a spurious cycle for the classic "n6" forwarding outcome, which is
// legal under x86-TSO.
func TestIntraThreadRFFalsePositive(t *testing.T) {
	// t0: st w0 (0); ld w0 (1); ld w1 (2)
	// t1: st w1 (3); ld w1 (4); ld w0 (5)
	p := prog.NewBuilder("n6", 2, prog.DefaultLayout()).
		Thread().Store(0).Load(0).Load(1).
		Thread().Store(1).Load(1).Load(0).
		MustBuild()
	rf := RF{1: 0, 2: -1, 4: 3, 5: -1}
	ws := WS{0: {0}, 1: {3}}

	sound := NewBuilder(p, mcm.TSO, Options{Forwarding: true})
	g, err := sound.BuildGraph(rf, ws)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TopoSort(); !ok {
		t.Error("forwarding outcome flagged as violation with intra-thread rf ignored")
	}

	naive := NewBuilder(p, mcm.TSO, Options{Forwarding: false})
	g, err = naive.BuildGraph(rf, ws)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TopoSort(); ok {
		t.Error("expected the naive intra-thread-rf graph to be (falsely) cyclic")
	}
}

// reachable computes the reachability matrix of the full (unreduced)
// preserved-program-order relation for reference.
func fullPOReach(p *prog.Program, model mcm.Model) [][]bool {
	n := p.NumOps()
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	b := &Builder{prog: p, model: model}
	for _, th := range p.Threads {
		for i := 0; i < len(th.Ops); i++ {
			for j := i + 1; j < len(th.Ops); j++ {
				if b.ordered(th.Ops[i], th.Ops[j]) {
					reach[th.Ops[i].ID][th.Ops[j].ID] = true
				}
			}
		}
	}
	// Transitive closure (Floyd–Warshall style on the boolean matrix).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	return reach
}

// TestPOReductionPreservesReachability: the transitive closure of the
// reduced static edges must equal the closure of the full relation.
func TestPOReductionPreservesReachability(t *testing.T) {
	for _, model := range mcm.Models {
		for seed := int64(1); seed <= 3; seed++ {
			p := testgen.MustGenerate(testgen.Config{
				Threads: 3, OpsPerThread: 25, Words: 4, FenceProb: 0.1, Seed: seed,
			})
			want := fullPOReach(p, model)
			b := NewBuilder(p, model, Options{})
			n := p.NumOps()
			got := make([][]bool, n)
			for i := range got {
				got[i] = make([]bool, n)
			}
			for u := 0; u < n; u++ {
				for _, v := range b.static[u] {
					got[u][v] = true
				}
			}
			for k := 0; k < n; k++ {
				for i := 0; i < n; i++ {
					if !got[i][k] {
						continue
					}
					for j := 0; j < n; j++ {
						if got[k][j] {
							got[i][j] = true
						}
					}
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got[i][j] != want[i][j] {
						t.Fatalf("%v seed %d: reachability (%d,%d): got %v want %v",
							model, seed, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// randomExec fabricates a consistent-looking rf/ws pair (not necessarily a
// legal execution — the checker must still behave deterministically).
func randomExec(p *prog.Program, rng *rand.Rand) (RF, WS) {
	rf := RF{}
	ws := WS{}
	for w := 0; w < p.NumWords; w++ {
		stores := p.StoresToWord(w)
		ids := make([]int, len(stores))
		for i, s := range stores {
			ids[i] = s.ID
		}
		// Random interleaving preserving per-thread order: repeatedly pick a
		// random thread's next store.
		byThread := map[int][]int{}
		for _, s := range stores {
			byThread[s.Thread] = append(byThread[s.Thread], s.ID)
		}
		var order []int
		for len(order) < len(ids) {
			keys := make([]int, 0, len(byThread))
			for k := range byThread {
				keys = append(keys, k)
			}
			k := keys[rng.Intn(len(keys))]
			order = append(order, byThread[k][0])
			byThread[k] = byThread[k][1:]
			if len(byThread[k]) == 0 {
				delete(byThread, k)
			}
		}
		if len(order) > 0 {
			ws[w] = order
		}
	}
	for _, op := range p.Ops() {
		if op.Kind != prog.Load {
			continue
		}
		stores := p.StoresToWord(op.Word)
		if len(stores) == 0 || rng.Intn(4) == 0 {
			rf[op.ID] = -1
		} else {
			rf[op.ID] = stores[rng.Intn(len(stores))].ID
		}
	}
	return rf, ws
}

func TestTopoSortOrdersAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := testgen.MustGenerate(testgen.Config{Threads: 4, OpsPerThread: 30, Words: 6, Seed: 2})
	for _, model := range mcm.Models {
		b := NewBuilder(p, model, Options{})
		for trial := 0; trial < 30; trial++ {
			rf, ws := randomExec(p, rng)
			g, err := b.BuildGraph(rf, ws)
			if err != nil {
				t.Fatal(err)
			}
			order, ok := g.TopoSort()
			if !ok {
				// Cyclic fabrications happen; FindCycle must agree.
				if len(g.FindCycle()) == 0 {
					t.Fatal("TopoSort failed but FindCycle found nothing")
				}
				continue
			}
			if err := g.VerifyOrder(order); err != nil {
				t.Fatalf("%v: %v", model, err)
			}
		}
	}
}

func TestFindCycleReturnsRealCycle(t *testing.T) {
	p := lb()
	b := NewBuilder(p, mcm.SC, Options{})
	g, err := b.BuildGraph(RF{0: 3, 2: 1}, WS{0: {3}, 1: {1}})
	if err != nil {
		t.Fatal(err)
	}
	cyc := g.FindCycle()
	if len(cyc) < 2 {
		t.Fatalf("cycle = %v", cyc)
	}
	// Every consecutive pair (wrapping) must be an edge.
	for i := range cyc {
		u, v := cyc[i], cyc[(i+1)%len(cyc)]
		found := false
		g.Out(u, func(x int32) {
			if x == v {
				found = true
			}
		})
		if !found {
			t.Fatalf("cycle %v: %d->%d is not an edge", cyc, u, v)
		}
	}
}

func TestDynamicEdgesValidation(t *testing.T) {
	p := lb()
	b := NewBuilder(p, mcm.TSO, Options{WS: WSObserved})
	if _, err := b.DynamicEdges(RF{1: 3}, WS{}); err == nil {
		t.Error("rf on a store op accepted")
	}
	if _, err := b.DynamicEdges(RF{0: 1}, WS{}); err == nil {
		t.Error("rf to a store of another word accepted")
	}
	if _, err := b.DynamicEdges(RF{0: 3}, WS{}); err == nil {
		t.Error("rf store missing from ws accepted")
	}
}

func TestVerifyOrderRejectsBadOrders(t *testing.T) {
	p := lb()
	b := NewBuilder(p, mcm.SC, Options{})
	g := b.FromDynamic(nil)
	if err := g.VerifyOrder([]int32{0, 1, 2}); err == nil {
		t.Error("short order accepted")
	}
	if err := g.VerifyOrder([]int32{0, 0, 2, 3}); err == nil {
		t.Error("non-permutation accepted")
	}
	if err := g.VerifyOrder([]int32{1, 0, 2, 3}); err == nil {
		t.Error("order violating po edge accepted")
	}
}

func TestStaticReachabilityByModel(t *testing.T) {
	// Transitive reduction makes raw edge counts incomparable (SC reduces
	// to a chain), but the number of REACHABLE pairs must grow as models
	// strengthen.
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 40, Words: 4, Seed: 8})
	count := func(model mcm.Model) int {
		reach := fullPOReach(p, model)
		n := 0
		for i := range reach {
			for j := range reach[i] {
				if reach[i][j] {
					n++
				}
			}
		}
		return n
	}
	prev := -1
	for _, model := range []mcm.Model{mcm.RMO, mcm.PSO, mcm.TSO, mcm.SC} {
		if c := count(model); prev >= 0 && c < prev {
			t.Errorf("%v reaches fewer pairs (%d) than the weaker model (%d)", model, c, prev)
		} else {
			prev = c
		}
	}
}

// TestConditionalForwardingEdgeCatchesUniproc: on a forwarding platform a
// load that skips its own preceding store must still be flagged.
func TestConditionalForwardingEdgeCatchesUniproc(t *testing.T) {
	// t0: st w0 (0); ld w0 (1)   t1: st w0 (2)
	p := prog.NewBuilder("uniproc", 1, prog.DefaultLayout()).
		Thread().Store(0).Load(0).
		Thread().Store(0).
		MustBuild()
	b := NewBuilder(p, mcm.TSO, Options{Forwarding: true, WS: WSObserved})
	// Load reads t1's store 2, which serialized BEFORE the own store 0:
	// uniproc violation (the load may never read older than its own store).
	g, err := b.BuildGraph(RF{1: 2}, WS{0: {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TopoSort(); ok {
		t.Error("uniproc violation undetected on forwarding platform")
	}
	// Reading the own store itself is fine.
	g, err = b.BuildGraph(RF{1: 0}, WS{0: {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TopoSort(); !ok {
		t.Error("own-store read flagged on forwarding platform")
	}
	// Reading the initial value despite an own preceding store: violation.
	g, err = b.BuildGraph(RF{1: -1}, WS{0: {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TopoSort(); ok {
		t.Error("initial-value read past own store undetected")
	}
}

// TestWSStaticMode pins the static-ws contract (the paper's "gathered
// statically" claim): graphs are a pure function of the signature, fr edges
// derive from same-thread store chains, and the documented false-negative
// class (cross-thread write-serialization violations) is indeed not caught.
func TestWSStaticMode(t *testing.T) {
	// t0: st w0 (0); ld w0 (1)   t1: st w0 (2)
	p := prog.NewBuilder("static", 1, prog.DefaultLayout()).
		Thread().Store(0).Load(0).
		Thread().Store(0).
		MustBuild()
	b := NewBuilder(p, mcm.TSO, Options{Forwarding: true, WS: WSStatic})

	// ws argument is ignored entirely: same edges with and without it.
	rf := RF{1: 2}
	e1, err := b.DynamicEdges(rf, WS{0: {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := b.DynamicEdges(rf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) != len(e2) {
		t.Fatalf("static mode depends on ws: %v vs %v", e1, e2)
	}

	// Cross-thread ws violation (load skipped its own store, reading a
	// store that serialized earlier): NOT caught in static mode — the
	// paper's acknowledged false-negative class...
	g := b.FromDynamic(e2)
	if _, ok := g.TopoSort(); !ok {
		t.Error("static mode unexpectedly caught a cross-thread ws violation")
	}
	// ...but the same outcome IS caught in observed mode.
	bo := NewBuilder(p, mcm.TSO, Options{Forwarding: true, WS: WSObserved})
	go1, err := bo.BuildGraph(rf, WS{0: {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := go1.TopoSort(); ok {
		t.Error("observed mode missed the cross-thread ws violation")
	}

	// Same-thread staleness IS caught statically: t0: st;st, t1: ld;ld
	// reading (newer, older).
	p2 := prog.NewBuilder("corr2", 1, prog.DefaultLayout()).
		Thread().Store(0).Store(0).
		Thread().Load(0).Load(0).
		MustBuild()
	b2 := NewBuilder(p2, mcm.TSO, Options{Forwarding: true, WS: WSStatic})
	g2, err := b2.BuildGraph(RF{2: 1, 3: 0}, nil) // first ld reads newer store 1, second reads older store 0
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g2.TopoSort(); ok {
		t.Error("static mode missed a same-thread ld->ld staleness violation")
	}
	// Initial-value staleness is caught too: first ld reads store, second
	// reads initial.
	g3, err := b2.BuildGraph(RF{2: 0, 3: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g3.TopoSort(); ok {
		t.Error("static mode missed an initial-value ld->ld violation")
	}
}

// TestDropFRMode pins the paper-ARM emulation: without fr edges every
// dynamic edge is store→load, the CoRR violation becomes invisible, and a
// stores-first topological order never sees backward dynamic edges.
func TestDropFRMode(t *testing.T) {
	p := prog.NewBuilder("corr", 1, prog.DefaultLayout()).
		Thread().Store(0).
		Thread().Load(0).Load(0).
		MustBuild()
	b := NewBuilder(p, mcm.RMO, Options{Forwarding: true, DropFR: true})
	// CoRR violation: first load sees the store, second sees initial.
	g, err := b.BuildGraph(RF{1: 0, 2: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TopoSort(); !ok {
		t.Error("DropFR graphs should be blind to CoRR (documented trade-off)")
	}
	// Every dynamic edge must be store→load.
	for _, e := range g.Dynamic {
		if p.OpByID(int(e.U)).Kind != prog.Store || p.OpByID(int(e.V)).Kind != prog.Load {
			t.Errorf("dynamic edge %d->%d is not store→load", e.U, e.V)
		}
	}
}
