// Package graph builds and checks constraint graphs for test executions
// (paper §2): vertices are the program's operations; edges are the
// program-order constraints the memory consistency model enforces (computed
// statically, shared by all executions of a test) plus the dynamic
// reads-from (rf), from-read (fr), and write-serialization (ws) edges
// observed in one execution. An execution violates the MCM exactly when its
// constraint graph has a cycle, i.e. no topological sort exists.
package graph

import (
	"fmt"
	"slices"

	"mtracecheck/internal/mcm"
	"mtracecheck/internal/prog"
)

// Edge is one directed constraint: U happens before V. U and V are
// operation IDs.
type Edge struct {
	U, V int32
}

// RF maps each load op ID to the store op ID it read, or -1 for the initial
// value.
type RF = map[int]int

// WS maps each shared word to its stores' op IDs in write-serialization
// (coherence) order.
type WS = map[int][]int

// Options tunes edge construction for the platform's store atomicity.
type Options struct {
	// Forwarding marks a platform with store-to-load forwarding (multi-copy
	// or weaker atomicity): a load may read its own thread's latest store
	// from the store buffer before that store is globally visible.
	//
	// On such platforms the intra-thread same-address store→load ordering
	// cannot be assumed: neither a static po edge nor an rf edge is added
	// for a load that read its own store — treating them as ordered
	// produces the false positives of the paper's §8 footnote. Coherence is
	// still enforced precisely: when a load did NOT read its own latest
	// preceding store, forwarding cannot have occurred, so a dynamic
	// store→load edge is added conditionally (the TSOtool/Arvind–Maessen
	// treatment).
	Forwarding bool

	// WS selects how write-serialization constraints enter the graph.
	WS WSMode

	// DropFR omits every from-read edge (all load→store constraints),
	// emulating the constraint graphs the paper evidently used on its ARM
	// system: §8 observes that with tsort "stores do not depend on any load
	// operations in absence of memory barriers", which only holds when no
	// fr edges enter the graph — and it is what makes the paper's ARM
	// checking need almost no re-sorting (every dynamic edge is then
	// store→load and stores sort first). The cost is blindness to
	// fr-dependent violations (e.g. CoRR); see the `fr` ablation.
	DropFR bool
}

// WSMode selects the source of write-serialization (ws) edges.
type WSMode uint8

const (
	// WSStatic is the paper's mode: write serialization is "gathered
	// statically during the instrumentation process" (§3.2). Only
	// statically known ws facts are used — same-thread same-word store
	// order (already part of the static po edges) — and fr edges are
	// derived from rf alone: a load reading store s precedes s's next
	// same-thread same-word store, and a load reading the initial value
	// precedes every thread's first store to the word. Cross-thread store
	// serialization is not constrained, which admits the false-negative
	// class the paper acknowledges ("if some dependency edges are missing,
	// false negatives may result", §2) but makes the constraint graph a
	// pure function of the signature — the property the collective
	// checker's similarity windows rely on.
	WSStatic WSMode = iota
	// WSObserved additionally uses the per-execution coherence order
	// recorded by the platform harness: full ws chains and precise fr
	// edges. More violations are detectable; adjacent graphs differ more.
	WSObserved
)

// Builder constructs constraint graphs for many executions of one program
// under one model, amortizing the static program-order edges.
type Builder struct {
	prog    *prog.Program
	model   mcm.Model
	opts    Options
	n       int
	static  [][]int32 // static adjacency: po (model) + same-address + fences
	statCnt int
	// lastOwnStore maps a load op ID to the latest preceding same-thread
	// same-word store op ID (used for conditional forwarding edges).
	lastOwnStore map[int]int
	// nextOwnStore maps a store op ID to the next same-thread same-word
	// store op ID (static fr targets in WSStatic mode).
	nextOwnStore map[int]int
	// firstStores maps a word to each thread's first store to it (static
	// fr targets for initial-value reads in WSStatic mode).
	firstStores map[int][]int
	// loads lists every load op ID in ID order (for the dense rf path).
	loads []int32
}

// NewBuilder precomputes the static (execution-independent) edges.
func NewBuilder(p *prog.Program, model mcm.Model, opts Options) *Builder {
	b := &Builder{prog: p, model: model, opts: opts, n: p.NumOps()}
	b.static = make([][]int32, b.n)
	b.lastOwnStore = make(map[int]int)
	b.nextOwnStore = make(map[int]int)
	b.firstStores = make(map[int][]int)
	for _, th := range p.Threads {
		b.buildThreadPO(th.Ops)
		latest := map[int]int{}
		seenFirst := map[int]bool{}
		for _, op := range th.Ops {
			switch op.Kind {
			case prog.Load:
				b.loads = append(b.loads, int32(op.ID))
				if st, ok := latest[op.Word]; ok {
					b.lastOwnStore[op.ID] = st
				}
			case prog.Store:
				if st, ok := latest[op.Word]; ok {
					b.nextOwnStore[st] = op.ID
				}
				latest[op.Word] = op.ID
				if !seenFirst[op.Word] {
					seenFirst[op.Word] = true
					b.firstStores[op.Word] = append(b.firstStores[op.Word], op.ID)
				}
			}
		}
	}
	for _, out := range b.static {
		b.statCnt += len(out)
	}
	return b
}

// ordered reports whether program order between ops a (earlier) and b
// (later) of one thread is preserved: by the model's kind matrix, by
// same-address coherence, or by fence semantics. Same-address store→load
// pairs are excluded on forwarding platforms — the load may be satisfied
// from the store buffer before the store is globally visible; the ordering
// is reinstated per execution by DynamicEdges when no forwarding occurred.
func (b *Builder) ordered(a, c prog.Op) bool {
	if a.Kind == prog.Fence || c.Kind == prog.Fence {
		return true
	}
	if a.Word == c.Word {
		if b.opts.Forwarding && a.Kind == prog.Store && c.Kind == prog.Load {
			return false
		}
		return b.model.OrderedSameAddr(a.Kind, c.Kind)
	}
	return b.model.Ordered(a.Kind, c.Kind)
}

// buildThreadPO emits a transitive reduction of the thread's preserved
// program order: an edge (i,j) is skipped when some k between them is
// ordered after i and before j, as the two shorter edges imply the longer
// one (induction on span length keeps reachability intact).
func (b *Builder) buildThreadPO(ops []prog.Op) {
	n := len(ops)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !b.ordered(ops[i], ops[j]) {
				continue
			}
			implied := false
			for k := i + 1; k < j; k++ {
				if b.ordered(ops[i], ops[k]) && b.ordered(ops[k], ops[j]) {
					implied = true
					break
				}
			}
			if !implied {
				u, v := int32(ops[i].ID), int32(ops[j].ID)
				b.static[u] = append(b.static[u], v)
			}
		}
	}
}

// NumOps returns the vertex count.
func (b *Builder) NumOps() int { return b.n }

// StaticEdgeCount returns the number of static (po) edges.
func (b *Builder) StaticEdgeCount() int { return b.statCnt }

// DynamicEdges computes the execution-dependent edges — rf, fr, and ws — in
// deterministic sorted order (suitable for set-diffing by the collective
// checker).
//
//   - ws: consecutive stores per word in coherence order.
//   - rf: source store → load (skipped intra-thread unless opted in).
//   - fr: load → the immediate ws-successor of the store it read; reads of
//     the initial value precede the word's first store. Transitivity
//     through the ws chain covers later stores.
func (b *Builder) DynamicEdges(rf RF, ws WS) ([]Edge, error) {
	var edges []Edge
	edges, wsPos, err := b.startDynamicEdges(edges, ws)
	if err != nil {
		return nil, err
	}
	for loadID, storeID := range rf {
		load := b.prog.OpByID(loadID)
		if load.Kind != prog.Load {
			return nil, fmt.Errorf("graph: rf references non-load op %d", loadID)
		}
		edges, err = b.appendLoadEdges(edges, loadID, storeID, ws, wsPos)
		if err != nil {
			return nil, err
		}
	}
	sortEdges(edges)
	return dedupEdges(edges), nil
}

// AppendDynamicEdges is DynamicEdges over a dense reads-from slice indexed by
// op ID (rf[loadID] = source store op ID, or -1 for a read of the initial
// value — the shape instrument.Meta.DecodeInto fills). Every load op must
// have an entry; non-load slots are ignored. Edges are appended to dst
// (callers reuse a scratch buffer via dst[:0]) and the sorted, de-duplicated
// result is returned. The output is identical to the map-based DynamicEdges
// over the equivalent RF map.
func (b *Builder) AppendDynamicEdges(dst []Edge, rf []int32, ws WS) ([]Edge, error) {
	if len(rf) < b.n {
		return nil, fmt.Errorf("graph: dense rf has %d entries, need %d", len(rf), b.n)
	}
	edges, wsPos, err := b.startDynamicEdges(dst, ws)
	if err != nil {
		return nil, err
	}
	for _, loadID := range b.loads {
		edges, err = b.appendLoadEdges(edges, int(loadID), int(rf[loadID]), ws, wsPos)
		if err != nil {
			return nil, err
		}
	}
	sortEdges(edges)
	return dedupEdges(edges), nil
}

// startDynamicEdges emits the ws-chain edges and builds the store→position
// index when coherence order is observed; in static mode it does nothing
// (and allocates nothing).
func (b *Builder) startDynamicEdges(edges []Edge, ws WS) ([]Edge, map[int]int, error) {
	if b.opts.WS != WSObserved {
		return edges, nil, nil
	}
	wsPos := make(map[int]int, 64) // store ID -> position within its word's order
	for _, stores := range ws {
		for i, s := range stores {
			wsPos[s] = i
			if i > 0 {
				edges = append(edges, Edge{int32(stores[i-1]), int32(s)})
			}
		}
	}
	return edges, wsPos, nil
}

// appendLoadEdges emits the rf/fr/forwarding edges contributed by one load
// reading from storeID (negative = initial value). wsPos is non-nil exactly
// in observed mode.
func (b *Builder) appendLoadEdges(edges []Edge, loadID, storeID int, ws WS, wsPos map[int]int) ([]Edge, error) {
	observed := wsPos != nil
	load := b.prog.OpByID(loadID)
	if storeID < 0 {
		// Read the initial value: the load precedes every store to the
		// word. Observed mode: the first store in coherence order
		// suffices (ws chains cover the rest). Static mode: each
		// thread's first store to the word. (DropFR omits these
		// load→store constraints entirely.)
		if b.opts.DropFR {
			// no fr edges
		} else if observed {
			if chain := ws[load.Word]; len(chain) > 0 {
				edges = append(edges, Edge{int32(loadID), int32(chain[0])})
			}
		} else {
			for _, st := range b.firstStores[load.Word] {
				edges = append(edges, Edge{int32(loadID), int32(st)})
			}
		}
		if own, ok := b.lastOwnStore[loadID]; ok && b.opts.Forwarding {
			// Reading the initial value despite an own preceding store
			// is a uniprocessor violation; the reinstated edge (plus the
			// fr edge above) exposes it as a cycle.
			edges = append(edges, Edge{int32(own), int32(loadID)})
		}
		return edges, nil
	}
	st := b.prog.OpByID(storeID)
	if st.Kind != prog.Store || st.Word != load.Word {
		return nil, fmt.Errorf("graph: rf store %d incompatible with load %d", storeID, loadID)
	}
	if st.Thread != load.Thread {
		edges = append(edges, Edge{int32(storeID), int32(loadID)})
	} else if !b.opts.Forwarding {
		// Single-copy atomicity: the read implies global visibility.
		edges = append(edges, Edge{int32(storeID), int32(loadID)})
	}
	if b.opts.Forwarding {
		// No forwarding happened if the load read anything other than
		// its own latest preceding store: reinstate the same-address
		// store→load program order for this execution.
		if own, ok := b.lastOwnStore[loadID]; ok && own != storeID {
			edges = append(edges, Edge{int32(own), int32(loadID)})
		}
	}
	// from-read: the load precedes whatever overwrites the store it
	// read. Observed mode: the immediate coherence-order successor.
	// Static mode: the store's next same-thread same-word store.
	if b.opts.DropFR {
		return edges, nil
	}
	if observed {
		pos, ok := wsPos[storeID]
		if !ok {
			return nil, fmt.Errorf("graph: rf store %d missing from ws of word %d", storeID, load.Word)
		}
		if chain := ws[load.Word]; pos+1 < len(chain) {
			edges = append(edges, Edge{int32(loadID), int32(chain[pos+1])})
		}
	} else if next, ok := b.nextOwnStore[storeID]; ok {
		edges = append(edges, Edge{int32(loadID), int32(next)})
	}
	return edges, nil
}

func sortEdges(edges []Edge) {
	slices.SortFunc(edges, func(a, b Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
}

// dedupEdges removes duplicates from a sorted edge slice in place.
func dedupEdges(edges []Edge) []Edge {
	if len(edges) == 0 {
		return edges
	}
	out := edges[:1]
	for _, e := range edges[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

// Graph is one execution's constraint graph: shared static adjacency plus
// this execution's dynamic edges.
type Graph struct {
	N       int
	Static  [][]int32
	Dynamic []Edge
	dynAdj  [][]int32
}

// BuildGraph assembles the graph for one execution.
func (b *Builder) BuildGraph(rf RF, ws WS) (*Graph, error) {
	dyn, err := b.DynamicEdges(rf, ws)
	if err != nil {
		return nil, err
	}
	return b.FromDynamic(dyn), nil
}

// FromDynamic assembles a graph from precomputed dynamic edges.
func (b *Builder) FromDynamic(dyn []Edge) *Graph {
	g := &Graph{N: b.n, Static: b.static, Dynamic: dyn}
	g.dynAdj = make([][]int32, b.n)
	for _, e := range dyn {
		g.dynAdj[e.U] = append(g.dynAdj[e.U], e.V)
	}
	return g
}

// Out calls fn for every successor of u.
func (g *Graph) Out(u int32, fn func(v int32)) {
	for _, v := range g.Static[u] {
		fn(v)
	}
	for _, v := range g.dynAdj[u] {
		fn(v)
	}
}

// EdgeCount returns the total number of edges.
func (g *Graph) EdgeCount() int {
	n := len(g.Dynamic)
	for _, out := range g.Static {
		n += len(out)
	}
	return n
}

// TopoSort returns a topological order of the graph (Kahn's algorithm) and
// whether one exists; ok == false means the graph is cyclic — an MCM
// violation.
func (g *Graph) TopoSort() (order []int32, ok bool) {
	indeg := make([]int32, g.N)
	for u := int32(0); u < int32(g.N); u++ {
		g.Out(u, func(v int32) { indeg[v]++ })
	}
	queue := make([]int32, 0, g.N)
	for v := int32(0); v < int32(g.N); v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order = make([]int32, 0, g.N)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		g.Out(u, func(v int32) {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		})
	}
	return order, len(order) == g.N
}

// FindCycle returns the operations of one cycle when the graph is cyclic
// (for diagnostics in the style of the paper's Fig. 13), or nil.
func (g *Graph) FindCycle() []int32 {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, g.N)
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int32
	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		color[u] = gray
		found := false
		g.Out(u, func(v int32) {
			if found {
				return
			}
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					found = true
				}
			case gray:
				// Back edge u->v closes a cycle v -> ... -> u -> v.
				cyc := []int32{v}
				for x := u; x != v && x >= 0; x = parent[x] {
					cyc = append(cyc, x)
				}
				// Reverse into forward order v, ..., u.
				for i, j := 1, len(cyc)-1; i < j; i, j = i+1, j-1 {
					cyc[i], cyc[j] = cyc[j], cyc[i]
				}
				cycle = cyc
				found = true
			}
		})
		color[u] = black
		return found
	}
	for v := int32(0); v < int32(g.N); v++ {
		if color[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// VerifyOrder checks that order is a valid topological sort of g: a
// permutation of all vertices with every edge pointing forward. Used by
// tests and by the collective checker's self-checks.
func (g *Graph) VerifyOrder(order []int32) error {
	if len(order) != g.N {
		return fmt.Errorf("graph: order has %d vertices, want %d", len(order), g.N)
	}
	pos := make([]int32, g.N)
	seen := make([]bool, g.N)
	for i, v := range order {
		if v < 0 || int(v) >= g.N || seen[v] {
			return fmt.Errorf("graph: order is not a permutation (vertex %d)", v)
		}
		seen[v] = true
		pos[v] = int32(i)
	}
	var bad error
	for u := int32(0); u < int32(g.N); u++ {
		g.Out(u, func(v int32) {
			if bad == nil && pos[u] >= pos[v] {
				bad = fmt.Errorf("graph: edge %d->%d not forward in order", u, v)
			}
		})
	}
	return bad
}

// WordClass returns a per-operation priority class grouping operations by
// the shared word they access: fences first (class 0), then per word its
// stores (class 1+2w) followed by its loads (class 2+2w). NumWordClasses
// gives the class count. The collective checker pops ready vertices in
// class order, clustering each word's operations in its topological orders
// whenever program order permits; all dynamic edges are word-local, so edge
// changes between similar executions tend to stay inside small windows.
func (b *Builder) WordClass() (classOf []int32, classes int) {
	classOf = make([]int32, b.n)
	for _, op := range b.prog.Ops() {
		switch op.Kind {
		case prog.Fence:
			classOf[op.ID] = 0
		case prog.Store:
			classOf[op.ID] = int32(1 + 2*op.Word)
		case prog.Load:
			classOf[op.ID] = int32(2 + 2*op.Word)
		}
	}
	return classOf, 2*b.prog.NumWords + 1
}
