package graph

import (
	"fmt"
	"io"

	"mtracecheck/internal/prog"
)

// WriteDOT renders the constraint graph in Graphviz DOT format for
// debugging and for Fig. 2/Fig. 13-style violation illustrations. Threads
// become clusters; static (program-order) edges are solid, dynamic
// (rf/fr/ws) edges dashed; vertices on highlight (e.g. a violation cycle
// from FindCycle) are drawn red, as are the edges between consecutive
// highlighted vertices.
func (g *Graph) WriteDOT(w io.Writer, p *prog.Program, highlight []int32) error {
	marked := make(map[int32]bool, len(highlight))
	for _, v := range highlight {
		marked[v] = true
	}
	// Consecutive highlight pairs (wrapping) are the cycle's edges.
	cycleEdge := make(map[[2]int32]bool, len(highlight))
	for i := range highlight {
		cycleEdge[[2]int32{highlight[i], highlight[(i+1)%len(highlight)]}] = true
	}

	if _, err := fmt.Fprintln(w, "digraph constraints {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for ti, th := range p.Threads {
		fmt.Fprintf(w, "  subgraph cluster_t%d {\n    label=\"thread %d\";\n", ti, ti)
		for _, op := range th.Ops {
			attrs := ""
			if marked[int32(op.ID)] {
				attrs = ", color=red, fontcolor=red"
			}
			fmt.Fprintf(w, "    n%d [label=\"%d: %s\"%s];\n", op.ID, op.ID, op, attrs)
		}
		fmt.Fprintln(w, "  }")
	}
	emit := func(u, v int32, dynamic bool) {
		style := "solid"
		if dynamic {
			style = "dashed"
		}
		color := ""
		if cycleEdge[[2]int32{u, v}] {
			color = ", color=red, penwidth=2"
		}
		fmt.Fprintf(w, "  n%d -> n%d [style=%s%s];\n", u, v, style, color)
	}
	for u := int32(0); u < int32(g.N); u++ {
		for _, v := range g.Static[u] {
			emit(u, v, false)
		}
	}
	for _, e := range g.Dynamic {
		emit(e.U, e.V, true)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
