package dist

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mtracecheck"
)

// gatedTransport fails the first fail requests with a connection error,
// then proxies to the real transport — the deterministic stand-in for a
// worker fleet started before its server.
type gatedTransport struct {
	fail int32
	n    atomic.Int32
	rt   http.RoundTripper
}

func (g *gatedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if g.n.Add(1) <= g.fail {
		return nil, errors.New("dial tcp: connection refused (injected)")
	}
	return g.rt.RoundTrip(r)
}

// TestWorkerStartupRetry: a worker whose first 30 requests fail — more
// than the unreachable cap that used to kill ExitWhenIdle fleets — must
// keep retrying within its startup window and then drain the job
// normally. This is the any-order fleet-startup contract.
func TestWorkerStartupRetry(t *testing.T) {
	spec := testSpec()
	srv, url := startServer(t, ServerOptions{})
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	gate := &gatedTransport{fail: 30, rt: http.DefaultTransport}
	w := &Worker{
		Server:         url,
		ID:             "late-starter",
		Poll:           time.Millisecond,
		ExitWhenIdle:   true,
		StartupTimeout: 30 * time.Second,
		Client:         &http.Client{Transport: gate, Timeout: 10 * time.Second},
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker failed despite server coming up: %v", err)
	}
	if n := gate.n.Load(); n <= 30 {
		t.Fatalf("worker stopped retrying after %d requests", n)
	}
	if _, err := srv.Wait(context.Background(), id); err != nil {
		t.Fatalf("job did not finish: %v", err)
	}
}

// TestWorkerStartupTimeout: a server that never answers must fail the
// worker fast with a startup-specific error once the window expires —
// not after the poll-cadenced unreachable budget.
func TestWorkerStartupTimeout(t *testing.T) {
	gate := &gatedTransport{fail: 1 << 30, rt: http.DefaultTransport}
	w := &Worker{
		Server:         "http://127.0.0.1:1", // never reached; transport fails first
		ID:             "orphan",
		Poll:           time.Millisecond,
		ExitWhenIdle:   true,
		StartupTimeout: 50 * time.Millisecond,
		Client:         &http.Client{Transport: gate},
	}
	start := time.Now()
	err := w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "startup timeout") {
		t.Fatalf("err = %v, want startup-timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("startup failure took %v", elapsed)
	}
}

// TestWorkerPostContactKeepsUnreachableCap: once the server has answered,
// a disappearing server must still trip the ExitWhenIdle unreachable cap
// rather than the (much longer) startup machinery.
func TestWorkerPostContactKeepsUnreachableCap(t *testing.T) {
	srv, url := startServer(t, ServerOptions{})
	if _, err := srv.Submit(testSpec()); err != nil {
		t.Fatal(err)
	}
	// The first two requests — the lease and the spec fetch — succeed, so
	// contact is established with undone work pending; then the server
	// "dies" and every later request fails.
	gate := &dyingTransport{succeed: 2, rt: http.DefaultTransport}
	w := &Worker{
		Server:         url,
		ID:             "bereaved",
		Poll:           time.Millisecond,
		ExitWhenIdle:   true,
		StartupTimeout: time.Hour, // must not mask the unreachable cap
		Client:         &http.Client{Transport: gate, Timeout: 10 * time.Second},
	}
	err := w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v, want unreachable-cap error", err)
	}
}

type dyingTransport struct {
	succeed int32
	n       atomic.Int32
	rt      http.RoundTripper
}

func (d *dyingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if d.n.Add(1) > d.succeed {
		return nil, errors.New("dial tcp: connection refused (injected)")
	}
	return d.rt.RoundTrip(r)
}

// TestDistSharedCorpusAcrossJobs: one server-attached corpus memoizes
// verdicts across jobs — the second submission of the same spec finalizes
// entirely from corpus hits, with the report otherwise bit-identical.
func TestDistSharedCorpusAcrossJobs(t *testing.T) {
	spec := testSpec()
	ref, refU := reference(t, spec)
	path := filepath.Join(t.TempDir(), "corpus.mtc")
	store, err := mtracecheck.OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, url := startServer(t, ServerOptions{Corpus: store})

	runJob := func() *mtracecheck.Report {
		t.Helper()
		id, err := srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		runWorkers(t, url, 2, nil)
		report, err := srv.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		_, uniques, err := srv.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, ref, refU, report, uniques)
		return report
	}
	cold := runJob()
	if cold.CorpusAppended != cold.UniqueSignatures || cold.CorpusHits != 0 {
		t.Errorf("first job: appended=%d hits=%d, want %d/0",
			cold.CorpusAppended, cold.CorpusHits, cold.UniqueSignatures)
	}
	warm := runJob()
	if warm.CorpusHits != warm.UniqueSignatures || warm.CorpusAppended != 0 {
		t.Errorf("second job: hits=%d appended=%d, want %d/0",
			warm.CorpusHits, warm.CorpusAppended, warm.UniqueSignatures)
	}
	// The corpus persisted: a fresh store sees every unique.
	re, err := mtracecheck.OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Total() != ref.UniqueSignatures {
		t.Errorf("persisted corpus holds %d signatures, want %d", re.Total(), ref.UniqueSignatures)
	}
}
