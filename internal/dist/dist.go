// Package dist is the distributed campaign service: a long-running server
// fans a campaign's worker-invariant chunk grid out to remote worker
// processes over HTTP and merges their uploads into a report bit-identical
// to a single-process run. The robustness semantics are the point, not the
// transport — the paper's deployment model has unreliable devices feeding a
// trusted host, so the server assumes workers crash, hang, partition, and
// lie:
//
//   - Chunks are handed out under leases with deadlines. A missed lease
//     (crash, hang, partition) returns the chunk to the queue with capped
//     exponential backoff and it is re-dispatched to another worker.
//   - Chunk results are a pure function of (program, options, chunk index),
//     so duplicate completions — stragglers, redispatch races, retried
//     sends — are deduplicated by chunk ID with no effect on the report.
//   - Every upload is validated (checksum, grid bounds, signature width,
//     iteration accounting) before it is trusted; a worker whose uploads
//     repeatedly fail validation is quarantined: its leases are revoked and
//     it is refused new ones.
//   - The job checkpoint (MTCCKPT1 + the MTCDIST1 lease section) is written
//     atomically, so a restarted server resumes mid-campaign without
//     re-running completed chunks.
//
// All of it is observable through internal/obs (worker/lease events,
// Prometheus series) rather than silently absorbed.
package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"time"

	"mtracecheck"
	"mtracecheck/internal/fault"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// JobSpec describes one campaign job, JSON-serializable so the same spec
// drives the submitting client, the server, and every worker: all three
// call Build and get the identical (program, options) pair, which is what
// makes any worker's chunk results interchangeable.
type JobSpec struct {
	// Name labels the job in logs and events; optional.
	Name string `json:"name,omitempty"`
	// Program is the test program in the text format; empty generates one
	// from Test.
	Program string `json:"program,omitempty"`
	// Test parameterizes generation when Program is empty.
	Test *testgen.Config `json:"test,omitempty"`
	// ISA selects the platform flavor ("x86" or "ARM"); ignored when Bug is
	// set (bug injection uses the gem5-like preset). Empty means x86.
	ISA string `json:"isa,omitempty"`
	// OS enables simulated OS scheduling.
	OS bool `json:"os,omitempty"`
	// Bug injects one of the paper's §7 defects: sm-inv, lsq-skip, wb-race.
	Bug string `json:"bug,omitempty"`

	Iterations int    `json:"iterations"`
	Seed       int64  `json:"seed"`
	Checker    string `json:"checker,omitempty"`
	// Workers sizes the server-side decode/check stage, not the worker
	// fleet (workers size themselves by joining).
	Workers             int           `json:"workers,omitempty"`
	Strict              bool          `json:"strict,omitempty"`
	QuarantineThreshold float64       `json:"quarantine_threshold,omitempty"`
	ShardTimeout        time.Duration `json:"shard_timeout,omitempty"`
	ShardRetries        int           `json:"shard_retries,omitempty"`
	// Fault configures the device-side injector; execution faults apply on
	// the workers (keyed by chunk bounds, so they are worker-invariant) and
	// signature corruption applies once, server-side, to the merged set.
	Fault fault.Config `json:"fault,omitempty"`

	// CheckpointPath, when set, has the server persist job progress there
	// atomically; with Resume, the server restores from it instead of
	// starting over (completed chunks are never re-executed).
	CheckpointPath string `json:"checkpoint_path,omitempty"`
	// CheckpointEveryChunks sets the save cadence in completed chunks
	// (0 = every tenth of the grid, at least 1).
	CheckpointEveryChunks int  `json:"checkpoint_every_chunks,omitempty"`
	Resume                bool `json:"resume,omitempty"`
}

// Build resolves a spec into the (program, options) pair every party —
// submitter, server, worker — derives identically.
func Build(spec JobSpec) (*mtracecheck.Program, mtracecheck.Options, error) {
	plat, err := platformFor(spec)
	if err != nil {
		return nil, mtracecheck.Options{}, err
	}
	opts := mtracecheck.Options{
		Platform:            plat,
		Iterations:          spec.Iterations,
		Seed:                spec.Seed,
		Workers:             spec.Workers,
		Strict:              spec.Strict,
		QuarantineThreshold: spec.QuarantineThreshold,
		ShardTimeout:        spec.ShardTimeout,
		ShardRetries:        spec.ShardRetries,
		Fault:               spec.Fault,
	}
	if spec.Checker != "" {
		if opts.Checker, err = mtracecheck.ParseChecker(spec.Checker); err != nil {
			return nil, mtracecheck.Options{}, err
		}
	}
	var p *mtracecheck.Program
	if spec.Program != "" {
		if p, err = prog.Parse(strings.NewReader(spec.Program)); err != nil {
			return nil, mtracecheck.Options{}, fmt.Errorf("dist: job program: %w", err)
		}
	} else {
		if spec.Test == nil {
			return nil, mtracecheck.Options{}, errors.New("dist: job needs a program or a test config")
		}
		if p, err = testgen.Generate(*spec.Test); err != nil {
			return nil, mtracecheck.Options{}, err
		}
	}
	return p, opts, nil
}

// platformFor mirrors the mtracecheck CLI's platform resolution so a spec's
// isa/os/bug fields select exactly the platform the CLI flags would.
func platformFor(spec JobSpec) (mtracecheck.Platform, error) {
	var memBugs mem.Bugs
	var simBugs sim.Bugs
	switch spec.Bug {
	case "":
	case "sm-inv":
		memBugs.StaleSMInv = true
	case "lsq-skip":
		simBugs.LQSquashSkip = true
	case "wb-race":
		memBugs.WBRaceDeadlock = true
	default:
		return mtracecheck.Platform{}, fmt.Errorf("dist: unknown bug %q (valid: sm-inv, lsq-skip, wb-race)", spec.Bug)
	}
	var plat mtracecheck.Platform
	if spec.Bug != "" {
		plat = mtracecheck.PlatformGem5(memBugs, simBugs)
	} else {
		isa := spec.ISA
		if isa == "" {
			isa = "x86"
		}
		var err error
		if plat, err = sim.ForISA(isa); err != nil {
			return mtracecheck.Platform{}, err
		}
	}
	if spec.OS {
		plat.OS = sim.OSConfig{Enabled: true, Quantum: 400, QuantumJitter: 120, Migrate: true}
	}
	return plat, nil
}

// Upload error kinds: a worker reports how its chunk execution ended so the
// server can classify without parsing error strings.
const (
	// UploadOK marks a fully executed chunk.
	UploadOK uint8 = iota
	// UploadCrash marks a platform crash — a finding (paper bug class 3)
	// that fails the whole job, not the worker.
	UploadCrash
	// UploadShardFailed marks an infra failure that survived the worker's
	// retries; the server re-dispatches the chunk.
	UploadShardFailed
	// UploadOther marks any other execution error.
	UploadOther
)

// ChunkUpload is one worker's completed (or failed) chunk crossing the
// wire. The binary encoding ends in a whole-payload checksum so any bit
// flip in transit is detected server-side and strikes the sender instead of
// corrupting the campaign.
type ChunkUpload struct {
	Job     string
	Worker  string
	Chunk   int
	Start   int
	Count   int
	Stats   mtracecheck.ChunkStats
	ErrKind uint8
	Err     string
	Uniques []mtracecheck.Unique
}

// chunkMagic heads the binary chunk-upload envelope.
var chunkMagic = [8]byte{'M', 'T', 'C', 'C', 'H', 'N', 'K', '1'}

// EncodeChunkUpload serializes an upload:
//
//	magic    [8]byte "MTCCHNK1"
//	job      uint16 length + bytes
//	worker   uint16 length + bytes
//	chunk, start, count, iterations  uint32
//	cycles   uint64
//	squashes uint32
//	errKind  uint8
//	err      uint16 length + bytes
//	asserts  uint32 count, each uint16 length + bytes
//	sigs     WriteSet encoding of the unique set
//	checksum uint64 FNV-64a of all preceding bytes
func EncodeChunkUpload(u *ChunkUpload) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(chunkMagic[:])
	writeString := func(s string) error {
		if len(s) > 0xffff {
			return fmt.Errorf("dist: upload string too long (%d bytes)", len(s))
		}
		binary.Write(&buf, binary.LittleEndian, uint16(len(s)))
		buf.WriteString(s)
		return nil
	}
	if err := writeString(u.Job); err != nil {
		return nil, err
	}
	if err := writeString(u.Worker); err != nil {
		return nil, err
	}
	for _, v := range []int{u.Chunk, u.Start, u.Count, u.Stats.Iterations} {
		if v < 0 {
			return nil, fmt.Errorf("dist: negative upload field %d", v)
		}
		binary.Write(&buf, binary.LittleEndian, uint32(v))
	}
	binary.Write(&buf, binary.LittleEndian, uint64(u.Stats.Cycles))
	if u.Stats.Squashes < 0 {
		return nil, fmt.Errorf("dist: negative squash count %d", u.Stats.Squashes)
	}
	binary.Write(&buf, binary.LittleEndian, uint32(u.Stats.Squashes))
	buf.WriteByte(u.ErrKind)
	if err := writeString(u.Err); err != nil {
		return nil, err
	}
	binary.Write(&buf, binary.LittleEndian, uint32(len(u.Stats.Asserts)))
	for _, a := range u.Stats.Asserts {
		if err := writeString(a); err != nil {
			return nil, err
		}
	}
	if err := sig.WriteSet(&buf, u.Uniques); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	binary.Write(&buf, binary.LittleEndian, h.Sum64())
	return buf.Bytes(), nil
}

// DecodeChunkUpload parses and verifies an upload envelope. Any truncation,
// trailing garbage, or checksum mismatch is an error — the transport is
// untrusted by design.
func DecodeChunkUpload(data []byte) (*ChunkUpload, error) {
	if len(data) < len(chunkMagic)+8 {
		return nil, errors.New("dist: upload too short")
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, errors.New("dist: upload checksum mismatch")
	}
	if [8]byte(body[:8]) != chunkMagic {
		return nil, fmt.Errorf("dist: bad upload magic %q", body[:8])
	}
	r := bytes.NewReader(body[8:])
	readString := func() (string, error) {
		var n uint16
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	u := &ChunkUpload{}
	var err error
	if u.Job, err = readString(); err != nil {
		return nil, fmt.Errorf("dist: upload job: %w", err)
	}
	if u.Worker, err = readString(); err != nil {
		return nil, fmt.Errorf("dist: upload worker: %w", err)
	}
	var chunk, start, count, iters, squashes, nAsserts uint32
	var cycles uint64
	for _, dst := range []*uint32{&chunk, &start, &count, &iters} {
		if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("dist: upload header: %w", err)
		}
	}
	if err := binary.Read(r, binary.LittleEndian, &cycles); err != nil {
		return nil, fmt.Errorf("dist: upload header: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &squashes); err != nil {
		return nil, fmt.Errorf("dist: upload header: %w", err)
	}
	if chunk > 1<<24 || start > 1<<30 || count > 1<<20 || iters > 1<<20 || squashes > 1<<30 {
		return nil, errors.New("dist: implausible upload header")
	}
	u.Chunk, u.Start, u.Count = int(chunk), int(start), int(count)
	u.Stats.Iterations, u.Stats.Cycles, u.Stats.Squashes = int(iters), int64(cycles), int(squashes)
	kind, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("dist: upload header: %w", err)
	}
	if kind > UploadOther {
		return nil, fmt.Errorf("dist: invalid upload error kind %d", kind)
	}
	u.ErrKind = kind
	if u.Err, err = readString(); err != nil {
		return nil, fmt.Errorf("dist: upload error: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &nAsserts); err != nil {
		return nil, fmt.Errorf("dist: upload asserts: %w", err)
	}
	if nAsserts > 1<<20 {
		return nil, errors.New("dist: implausible upload assert count")
	}
	for i := 0; i < int(nAsserts); i++ {
		s, err := readString()
		if err != nil {
			return nil, fmt.Errorf("dist: upload assert %d: %w", i, err)
		}
		u.Stats.Asserts = append(u.Stats.Asserts, s)
	}
	if u.Uniques, err = sig.ReadSet(r); err != nil {
		return nil, fmt.Errorf("dist: upload signatures: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("dist: %d trailing bytes after upload", r.Len())
	}
	return u, nil
}
