package dist

import (
	"bytes"
	"testing"

	"mtracecheck"
)

// FuzzChunkUpload hammers the upload decoder — the one parser on the
// untrusted wire path — with arbitrary bytes. It must never panic, and
// whenever it does accept a payload, re-encoding the result must round-trip
// (the decoder may not invent state the encoder cannot represent).
func FuzzChunkUpload(f *testing.F) {
	seed, err := EncodeChunkUpload(&ChunkUpload{
		Job: "job-1", Worker: "w0", Chunk: 1, Start: 64, Count: 64,
		Stats: mtracecheck.ChunkStats{
			Iterations: 64, Cycles: 12345, Squashes: 2,
			Asserts: []string{"thread 1: bad flush"},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("MTCCHNK1"))
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeChunkUpload(data)
		if err != nil {
			return
		}
		enc, err := EncodeChunkUpload(u)
		if err != nil {
			t.Fatalf("accepted upload does not re-encode: %v", err)
		}
		u2, err := DecodeChunkUpload(enc)
		if err != nil {
			t.Fatalf("re-encoded upload does not decode: %v", err)
		}
		if u2.Job != u.Job || u2.Chunk != u.Chunk || u2.Stats.Iterations != u.Stats.Iterations ||
			len(u2.Uniques) != len(u.Uniques) {
			t.Fatalf("round trip drifted: %+v vs %+v", u, u2)
		}
	})
}
