package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mtracecheck"
	"mtracecheck/internal/fault"
	"mtracecheck/internal/testgen"
)

// testSpec is the campaign every test distributes: small enough to run in
// milliseconds, large enough for a multi-chunk grid (320 iterations = 5
// chunks of 64).
func testSpec() JobSpec {
	return JobSpec{
		Test: &testgen.Config{
			Threads: 2, OpsPerThread: 20, Words: 8, LoadRatio: 0.5, Seed: 7,
		},
		Iterations: 5 * mtracecheck.ChunkSize,
		Seed:       7,
	}
}

// reference runs the spec's campaign in-process and returns its report and
// final unique set — the bit-identity baseline every distributed run must
// reproduce.
func reference(t *testing.T, spec JobSpec) (*mtracecheck.Report, []mtracecheck.Unique) {
	t.Helper()
	p, opts, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	c, err := mtracecheck.NewCampaign(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	uniques, err := c.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := mtracecheck.NewCampaign(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	report, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return report, uniques
}

// requireIdentical asserts a distributed report and unique set match the
// in-process reference exactly.
func requireIdentical(t *testing.T, ref *mtracecheck.Report, refU []mtracecheck.Unique,
	got *mtracecheck.Report, gotU []mtracecheck.Unique) {
	t.Helper()
	if got.Iterations != ref.Iterations || got.TotalCycles != ref.TotalCycles ||
		got.Squashes != ref.Squashes || got.UniqueSignatures != ref.UniqueSignatures {
		t.Fatalf("report counters differ: got iters=%d cycles=%d squashes=%d uniques=%d, ref iters=%d cycles=%d squashes=%d uniques=%d",
			got.Iterations, got.TotalCycles, got.Squashes, got.UniqueSignatures,
			ref.Iterations, ref.TotalCycles, ref.Squashes, ref.UniqueSignatures)
	}
	if len(got.Violations) != len(ref.Violations) ||
		len(got.AssertionFailures) != len(ref.AssertionFailures) {
		t.Fatalf("findings differ: got %d violations %d asserts, ref %d violations %d asserts",
			len(got.Violations), len(got.AssertionFailures),
			len(ref.Violations), len(ref.AssertionFailures))
	}
	if len(gotU) != len(refU) {
		t.Fatalf("unique set sizes differ: got %d, ref %d", len(gotU), len(refU))
	}
	for i := range gotU {
		if !gotU[i].Sig.Equal(refU[i].Sig) || gotU[i].Count != refU[i].Count {
			t.Fatalf("unique %d differs: got %v×%d, ref %v×%d",
				i, gotU[i].Sig, gotU[i].Count, refU[i].Sig, refU[i].Count)
		}
	}
}

// startServer wires a dist server behind an httptest listener.
func startServer(t *testing.T, opts ServerOptions) (*Server, string) {
	t.Helper()
	srv := NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts.URL
}

// runWorkers drives n workers until the server drains, then waits for them.
func runWorkers(t *testing.T, url string, n int, mutate func(i int, w *Worker)) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Server:       url,
			ID:           fmt.Sprintf("w%d", i),
			Poll:         5 * time.Millisecond,
			ExitWhenIdle: true,
		}
		if mutate != nil {
			mutate(i, w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(context.Background())
		}()
	}
	wg.Wait()
}

func TestChunkUploadRoundTrip(t *testing.T) {
	spec := testSpec()
	p, opts, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := mtracecheck.NewCampaign(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := c.NewChunkRunner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cr.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	u := &ChunkUpload{
		Job: "job-1", Worker: "w0", Chunk: res.Chunk, Start: res.Start,
		Count: res.Count, Stats: res.Stats, Uniques: res.Uniques,
	}
	data, err := EncodeChunkUpload(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChunkUpload(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Job != u.Job || got.Worker != u.Worker || got.Chunk != u.Chunk ||
		got.Start != u.Start || got.Count != u.Count ||
		got.Stats.Iterations != u.Stats.Iterations || got.Stats.Cycles != u.Stats.Cycles ||
		got.Stats.Squashes != u.Stats.Squashes || len(got.Uniques) != len(u.Uniques) {
		t.Fatalf("round trip mismatch: got %+v, want %+v", got, u)
	}
	for i := range got.Uniques {
		if !got.Uniques[i].Sig.Equal(u.Uniques[i].Sig) || got.Uniques[i].Count != u.Uniques[i].Count {
			t.Fatalf("unique %d differs after round trip", i)
		}
	}
}

func TestChunkUploadDetectsCorruption(t *testing.T) {
	u := &ChunkUpload{Job: "j", Worker: "w", Chunk: 1, Start: 64, Count: 64,
		Stats: mtracecheck.ChunkStats{Iterations: 64, Cycles: 123}}
	data, err := EncodeChunkUpload(u)
	if err != nil {
		t.Fatal(err)
	}
	// Any single bit flip anywhere in the payload must fail the checksum
	// (or, for flips inside the checksum itself, the comparison).
	for _, bit := range []int{0, 100, len(data)*8 - 1} {
		mangled := bytes.Clone(data)
		mangled[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeChunkUpload(mangled); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
	if _, err := DecodeChunkUpload(data[:len(data)-3]); err == nil {
		t.Fatal("truncated upload went undetected")
	}
	if _, err := DecodeChunkUpload(append(bytes.Clone(data), 0)); err == nil {
		t.Fatal("extended upload went undetected")
	}
}

// TestDistMatchesInProcess is the core acceptance property: a campaign
// fanned out to two workers produces a report bit-identical to the
// in-process single-worker run.
func TestDistMatchesInProcess(t *testing.T) {
	spec := testSpec()
	ref, refU := reference(t, spec)
	srv, url := startServer(t, ServerOptions{})
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, url, 2, nil)
	report, err := srv.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	_, uniques, err := srv.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, refU, report, uniques)
}

// TestCorruptWorkerQuarantined submits one worker that corrupts every
// upload alongside an honest one: the corrupt worker must be quarantined
// after the strike threshold, the campaign must still complete through the
// honest worker, and the report must stay bit-identical — corruption is
// surfaced in the stats, never absorbed into the results.
func TestCorruptWorkerQuarantined(t *testing.T) {
	spec := testSpec()
	ref, refU := reference(t, spec)
	srv, url := startServer(t, ServerOptions{LeaseTTL: 250 * time.Millisecond, QuarantineAfter: 2})
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewWireInjector(fault.WireConfig{Seed: 3, Corrupt: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The liar runs alone first: with every upload corrupted the job cannot
	// progress, so it deterministically strikes out and Run returns the
	// quarantine error.
	liar := &Worker{Server: url, ID: "liar", Poll: 5 * time.Millisecond, Wire: inj}
	if err := liar.Run(context.Background()); !errors.Is(err, ErrWorkerQuarantined) {
		t.Fatalf("liar exited with %v, want quarantine", err)
	}
	runWorkers(t, url, 1, nil)
	report, err := srv.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	_, uniques, err := srv.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, refU, report, uniques)
	// A corrupt payload cannot be attributed to a job, so the strikes are
	// per-worker state, not JobStats.
	srv.mu.Lock()
	ws := srv.workers["liar"]
	srv.mu.Unlock()
	if ws == nil || !ws.quarantined {
		t.Fatal("corrupt worker was not quarantined")
	}
	if ws.strikes < 2 {
		t.Fatalf("expected at least 2 strikes, got %d", ws.strikes)
	}
}

// TestDuplicateUploadDeduplicated uploads the same chunk twice: the second
// must be answered "duplicate" and the job must still finish with the
// reference counters (the duplicate is counted, not merged).
func TestDuplicateUploadDeduplicated(t *testing.T) {
	spec := testSpec()
	ref, refU := reference(t, spec)
	srv, url := startServer(t, ServerOptions{})
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	p, opts, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := mtracecheck.NewCampaign(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := c.NewChunkRunner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cr.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeChunkUpload(&ChunkUpload{
		Job: id, Worker: "dup", Chunk: res.Chunk, Start: res.Start,
		Count: res.Count, Stats: res.Stats, Uniques: res.Uniques,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{Server: url, ID: "dup"}
	first, err := w.postChunk(context.Background(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != UploadAccepted {
		t.Fatalf("first upload: got %q, want accepted", first.Status)
	}
	second, err := w.postChunk(context.Background(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != UploadDuplicate {
		t.Fatalf("second upload: got %q, want duplicate", second.Status)
	}
	runWorkers(t, url, 1, nil)
	report, err := srv.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	_, uniques, err := srv.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, refU, report, uniques)
	stats, _ := srv.Stats(id)
	if stats.Duplicates != 1 {
		t.Fatalf("expected 1 counted duplicate, got %+v", stats)
	}
}

// TestExpiredLeaseRedispatched gives the only available worker a
// drop-everything wire injector, so every lease it takes expires; then an
// honest worker joins and the chunks redispatch to it.
func TestExpiredLeaseRedispatched(t *testing.T) {
	spec := testSpec()
	spec.Iterations = 2 * mtracecheck.ChunkSize
	ref, refU := reference(t, spec)
	srv, url := startServer(t, ServerOptions{
		LeaseTTL: 50 * time.Millisecond, BackoffBase: time.Millisecond,
	})
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewWireInjector(fault.WireConfig{Seed: 5, Drop: 1})
	if err != nil {
		t.Fatal(err)
	}
	dropCtx, stopDropper := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := &Worker{Server: url, ID: "dropper", Poll: 5 * time.Millisecond, Wire: inj}
		w.Run(dropCtx)
	}()
	// Let the dropper burn at least one lease before honest help arrives.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if stats, err := srv.Stats(id); err == nil && stats.Expired > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease expired within the deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopDropper()
	wg.Wait()
	runWorkers(t, url, 1, nil)
	report, err := srv.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	_, uniques, err := srv.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, refU, report, uniques)
	stats, _ := srv.Stats(id)
	if stats.Expired == 0 || stats.Redispatched == 0 {
		t.Fatalf("expected expiry and redispatch, got %+v", stats)
	}
}

// TestKillMidChunkResume is the crash-survivability acceptance test: a
// worker is killed mid-lease, the server itself is torn down, and a new
// server resumes the job from its checkpoint — never re-running completed
// chunks — with the final report bit-identical to an uninterrupted
// in-process run.
func TestKillMidChunkResume(t *testing.T) {
	spec := testSpec()
	spec.CheckpointPath = filepath.Join(t.TempDir(), "job.ckpt")
	spec.CheckpointEveryChunks = 1
	ref, refU := reference(t, spec)

	// Phase 1: one worker completes part of the grid, then is killed
	// mid-lease (hard cancel, no upload); the server dies with it.
	srv1, url1 := startServer(t, ServerOptions{LeaseTTL: 20 * time.Second})
	id1, err := srv1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	wctx, kill := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := &Worker{Server: url1, ID: "victim", Poll: time.Millisecond}
		w.Run(wctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv1.mu.Lock()
		j := srv1.jobs[id1]
		partial := j.nDone >= 1 && j.nDone < len(j.chunks)
		srv1.mu.Unlock()
		if partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never completed a first chunk")
		}
		time.Sleep(time.Millisecond)
	}
	kill() // mid-lease: the victim holds a chunk it will never upload
	wg.Wait()
	srv1.Close()

	// Phase 2: a fresh server resumes from the checkpoint.
	srv2, url2 := startServer(t, ServerOptions{LeaseTTL: 500 * time.Millisecond, BackoffBase: time.Millisecond})
	resumed := spec
	resumed.Resume = true
	id2, err := srv2.Submit(resumed)
	if err != nil {
		t.Fatal(err)
	}
	srv2.mu.Lock()
	restored := srv2.jobs[id2].nDone
	total := len(srv2.jobs[id2].chunks)
	srv2.mu.Unlock()
	if restored == 0 {
		t.Fatal("resume restored no completed chunks")
	}
	if restored == total {
		t.Fatal("test did not leave any chunk unfinished; nothing was resumed mid-flight")
	}
	runWorkers(t, url2, 1, nil)
	report, err := srv2.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	_, uniques, err := srv2.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, refU, report, uniques)
}

// TestCrashUploadFailsJob forwards a worker's platform crash as a campaign
// finding: the job fails with ErrCrash, exactly as in-process.
func TestCrashUploadFailsJob(t *testing.T) {
	spec := testSpec()
	srv, url := startServer(t, ServerOptions{})
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeChunkUpload(&ChunkUpload{
		Job: id, Worker: "crasher", Chunk: 0, Start: 0, Count: mtracecheck.ChunkSize,
		ErrKind: UploadCrash, Err: "deadlock at iteration 3",
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{Server: url, ID: "crasher"}
	if _, err := w.postChunk(context.Background(), payload); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := srv.Wait(ctx, id); !errors.Is(err, mtracecheck.ErrCrash) {
		t.Fatalf("crash upload failed the job with %v, want ErrCrash", err)
	}
}
