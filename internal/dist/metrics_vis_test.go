package dist

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"mtracecheck/internal/fault"
)

// TestMetricsSurfaceQuarantine asserts the acceptance-criteria visibility:
// a corrupting worker shows up in the /metrics exposition as per-worker
// strikes and a quarantine count, and lease grants are counted.
func TestMetricsSurfaceQuarantine(t *testing.T) {
	spec := testSpec()
	srv, url := startServer(t, ServerOptions{QuarantineAfter: 2})
	if _, err := srv.Submit(spec); err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewWireInjector(fault.WireConfig{Seed: 9, Corrupt: 1})
	if err != nil {
		t.Fatal(err)
	}
	liar := &Worker{Server: url, ID: "liar", Poll: 5 * time.Millisecond, Wire: inj}
	liar.Run(context.Background())
	runWorkers(t, url, 1, nil)
	var buf bytes.Buffer
	if err := srv.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`mtracecheck_dist_worker_strikes{worker="liar"} 2`,
		`mtracecheck_dist_worker_quarantined{worker="liar"} 1`,
		"mtracecheck_dist_workers_quarantined_total 1",
		"mtracecheck_dist_leases_granted_total",
		"mtracecheck_dist_upload_rejects_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}
