package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"mtracecheck"
	"mtracecheck/internal/obs"
	"mtracecheck/internal/sig"
)

// ServerOptions tune the server's robustness machinery. The zero value
// selects the documented defaults.
type ServerOptions struct {
	// LeaseTTL is how long a worker holds a chunk before the lease expires
	// and the chunk is re-dispatched (0 = 10s). Heartbeats extend it.
	LeaseTTL time.Duration
	// QuarantineAfter is how many rejected uploads quarantine a worker
	// (0 = 3; negative disables quarantine).
	QuarantineAfter int
	// MaxAttempts caps dispatches per chunk before the job fails as
	// undispatchable (0 = 10).
	MaxAttempts int
	// BackoffBase seeds the capped exponential redispatch backoff
	// (0 = 100ms; capped at 5s).
	BackoffBase time.Duration
	// Observer receives campaign and dist events in addition to the
	// server's own metrics.
	Observer obs.Observer
	// Corpus, when set, is the shared signature corpus every job's
	// campaign consults and grows (mtracecheck.Options.Corpus) — the
	// server is the warm storage layer across its whole fleet. The store
	// is safe for the concurrent job finalizers.
	Corpus *mtracecheck.Corpus
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

const backoffCap = 5 * time.Second

func (o ServerOptions) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return 10 * time.Second
	}
	return o.LeaseTTL
}

func (o ServerOptions) quarantineAfter() int {
	if o.QuarantineAfter == 0 {
		return 3
	}
	return o.QuarantineAfter
}

func (o ServerOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 10
	}
	return o.MaxAttempts
}

func (o ServerOptions) backoff(attempt int) time.Duration {
	d := o.BackoffBase
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 1; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	return min(d, backoffCap)
}

// Server owns the jobs, the lease table, and the worker registry. All
// state transitions happen under one mutex; the only long-running work —
// the final decode/check — runs in a goroutine after the last chunk lands.
type Server struct {
	opts    ServerOptions
	metrics *obs.Metrics
	obsrv   obs.Observer
	mux     *http.ServeMux

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	jobs    map[string]*job
	jobIDs  []string // insertion order, the dispatch scan order
	workers map[string]*workerState
	nextID  int
}

type jobState uint8

const (
	jobRunning jobState = iota
	jobFinalizing
	jobDone
	jobFailed
)

func (s jobState) String() string {
	switch s {
	case jobRunning:
		return "running"
	case jobFinalizing:
		return "finalizing"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	}
	return "state?"
}

const (
	chunkPending = sig.ChunkPending
	chunkLeased  = sig.ChunkLeased
	chunkDone    = sig.ChunkDone
)

// chunkState is one grid chunk's lease-table entry.
type chunkState struct {
	status   uint8
	worker   string    // lease holder while leased
	deadline time.Time // lease expiry while leased
	attempt  int       // dispatches so far
	eligible time.Time // redispatch backoff gate while pending
}

// JobStats counts a job's robustness events — the operational visibility
// the acceptance criteria require alongside the bit-identical report.
type JobStats struct {
	Redispatched int `json:"redispatched"`
	Duplicates   int `json:"duplicates"`
	Rejected     int `json:"rejected"`
	Expired      int `json:"expired"`
}

type job struct {
	id       string
	spec     JobSpec
	specJSON []byte
	prog     *mtracecheck.Program
	campaign *mtracecheck.Campaign
	merger   *mtracecheck.ChunkMerger
	chunks   []chunkState
	nDone    int
	ckptGate int // completed chunks at last checkpoint
	stats    JobStats
	state    jobState
	report   *mtracecheck.Report
	err      error
	doneCh   chan struct{}
}

type workerState struct {
	id          string
	strikes     int
	quarantined bool
	leases      map[leaseKey]struct{}
}

type leaseKey struct {
	job   string
	chunk int
}

// NewServer builds a server. It always owns an obs.Metrics (exposed at
// /metrics) and multiplexes the caller's observer on top.
func NewServer(opts ServerOptions) *Server {
	s := &Server{
		opts:    opts,
		metrics: obs.NewMetrics(),
		jobs:    make(map[string]*job),
		workers: make(map[string]*workerState),
	}
	s.obsrv = obs.Multi(s.metrics, opts.Observer)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/spec", s.handleSpec)
	s.mux.HandleFunc("POST /api/v1/lease", s.handleLease)
	s.mux.HandleFunc("POST /api/v1/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST /api/v1/chunk", s.handleChunk)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	// Reaper: leases also expire lazily on every API call, but the ticker
	// keeps redispatch moving when no worker is polling.
	go s.reap()
	return s
}

// Handler returns the server's HTTP handler (for http.Server or tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the reaper and cancels any in-flight finalization.
func (s *Server) Close() { s.cancel() }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) reap() {
	t := time.NewTicker(max(s.opts.leaseTTL()/4, 10*time.Millisecond))
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-t.C:
			s.mu.Lock()
			s.expireDue(now)
			s.mu.Unlock()
		}
	}
}

// expireDue returns every overdue lease to the queue. Callers hold s.mu.
func (s *Server) expireDue(now time.Time) {
	for _, id := range s.jobIDs {
		j := s.jobs[id]
		if j.state != jobRunning {
			continue
		}
		for c := range j.chunks {
			cs := &j.chunks[c]
			if cs.status != chunkLeased || now.Before(cs.deadline) {
				continue
			}
			holder := cs.worker
			s.releaseLease(j, c, now)
			j.stats.Expired++
			obs.EmitLease(s.obsrv, obs.LeaseEvent{
				Op: obs.LeaseExpired, Job: j.id, Chunk: c, Worker: holder,
				Attempt: cs.attempt, Time: now,
			})
			if ws := s.workers[holder]; ws != nil {
				obs.EmitWorker(s.obsrv, obs.WorkerEvent{
					Op: obs.WorkerLost, Worker: holder, Strikes: ws.strikes,
					Leases: 1, Time: now,
				})
			}
			s.logf("dist: job %s chunk %d lease expired on %s (attempt %d)", j.id, c, holder, cs.attempt)
		}
	}
}

// releaseLease returns a leased chunk to pending with its backoff gate set.
// Callers hold s.mu.
func (s *Server) releaseLease(j *job, c int, now time.Time) {
	cs := &j.chunks[c]
	if ws := s.workers[cs.worker]; ws != nil {
		delete(ws.leases, leaseKey{j.id, c})
	}
	cs.status = chunkPending
	cs.worker = ""
	cs.eligible = now.Add(s.opts.backoff(cs.attempt))
}

// corpusTap is the observer the server hands to job campaigns when a
// shared corpus is attached: job campaigns are otherwise unobserved
// (workers own execution; the server only merges), but corpus lookups
// and flushes happen server-side at finalize and belong in /metrics.
// Every pipeline event is a no-op; only corpus events pass through.
type corpusTap struct{ o obs.Observer }

func (t corpusTap) CampaignStart(obs.CampaignStart) {}
func (t corpusTap) CampaignEnd(obs.CampaignEnd)     {}
func (t corpusTap) ShardStart(obs.ShardStart)       {}
func (t corpusTap) ShardEnd(obs.ShardEnd)           {}
func (t corpusTap) MergeDone(obs.MergeDone)         {}
func (t corpusTap) Checkpoint(obs.Checkpoint)       {}
func (t corpusTap) CorpusEvent(e obs.CorpusEvent)   { obs.EmitCorpus(t.o, e) }

// Submit registers a job and (when the spec asks) restores it from its
// checkpoint. It returns the job ID.
func (s *Server) Submit(spec JobSpec) (string, error) {
	p, opts, err := Build(spec)
	if err != nil {
		return "", err
	}
	if s.opts.Corpus != nil {
		// One corpus across all jobs: each finalize consults it before
		// decode and appends its newly verified signatures, so later jobs
		// (and later server runs) start warm.
		opts.Corpus = s.opts.Corpus
		opts.Observer = corpusTap{s.obsrv}
	}
	campaign, err := mtracecheck.NewCampaign(p, opts)
	if err != nil {
		return "", err
	}
	merger, err := campaign.NewChunkMerger()
	if err != nil {
		return "", err
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := &job{
		id:       fmt.Sprintf("job-%d", s.nextID),
		spec:     spec,
		specJSON: specJSON,
		prog:     p,
		campaign: campaign,
		merger:   merger,
		chunks:   make([]chunkState, campaign.NumChunks()),
		doneCh:   make(chan struct{}),
	}
	if spec.Resume {
		if err := s.restore(j); err != nil {
			return "", err
		}
	}
	s.jobs[j.id] = j
	s.jobIDs = append(s.jobIDs, j.id)
	s.logf("dist: job %s submitted: %d iterations in %d chunks (%d restored)",
		j.id, spec.Iterations, len(j.chunks), j.nDone)
	if j.nDone == len(j.chunks) {
		s.finalize(j)
	}
	return j.id, nil
}

// restore loads the job's checkpoint and replays its chunk states: done
// chunks keep their results, leased chunks fall back to pending (the lease
// died with the previous server) but keep their attempt counts so the
// redispatch backoff survives the restart.
func (s *Server) restore(j *job) error {
	if j.spec.CheckpointPath == "" {
		return errors.New("dist: resume requires a checkpoint path")
	}
	f, err := os.Open(j.spec.CheckpointPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // nothing saved yet: a fresh start is the resume
		}
		return fmt.Errorf("dist: resume: %w", err)
	}
	ck, err := sig.ReadCheckpoint(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("dist: resume: %w", err)
	}
	if ck.Dist == nil {
		return errors.New("dist: resume: checkpoint was written by an in-process campaign")
	}
	if ck.Seed != j.spec.Seed {
		return fmt.Errorf("dist: resume: checkpoint seed %d does not match job seed %d", ck.Seed, j.spec.Seed)
	}
	if h := mtracecheck.ProgramHash(j.prog); ck.ProgHash != h {
		return errors.New("dist: resume: checkpoint was written for a different test program")
	}
	if ck.Dist.ChunkSize != mtracecheck.ChunkSize || len(ck.Dist.Chunks) != len(j.chunks) {
		return fmt.Errorf("dist: resume: checkpoint grid %d×%d does not match job grid %d×%d",
			len(ck.Dist.Chunks), ck.Dist.ChunkSize, len(j.chunks), mtracecheck.ChunkSize)
	}
	done := make(map[int]mtracecheck.ChunkStats)
	for c := range ck.Dist.Chunks {
		ckc := &ck.Dist.Chunks[c]
		j.chunks[c].attempt = ckc.Attempt
		if ckc.Status != chunkDone {
			continue
		}
		done[c] = mtracecheck.ChunkStats{
			Iterations: ckc.Iterations, Cycles: ckc.Cycles,
			Squashes: ckc.Squashes, Asserts: ckc.Asserts,
		}
	}
	if err := j.merger.Restore(ck.Uniques, done); err != nil {
		return fmt.Errorf("dist: resume: %w", err)
	}
	for c := range done {
		j.chunks[c].status = chunkDone
	}
	j.nDone = len(done)
	j.ckptGate = j.nDone
	s.obsrv.Checkpoint(obs.Checkpoint{
		Op: obs.CheckpointResumed, Path: j.spec.CheckpointPath,
		Completed: ck.Completed, Uniques: len(ck.Uniques), Time: time.Now(),
	})
	return nil
}

// checkpoint persists the job's progress atomically. Callers hold s.mu.
func (s *Server) checkpoint(j *job) {
	if j.spec.CheckpointPath == "" {
		return
	}
	completed := 0
	ck := sig.Checkpoint{
		Seed: j.spec.Seed, ProgHash: mtracecheck.ProgramHash(j.prog),
		Uniques: j.merger.Merged(),
		Dist: &sig.DistState{
			ChunkSize: mtracecheck.ChunkSize,
			Chunks:    make([]sig.CkptChunk, len(j.chunks)),
		},
	}
	for c := range j.chunks {
		cs := &j.chunks[c]
		ckc := &ck.Dist.Chunks[c]
		ckc.Status = cs.status
		ckc.Attempt = min(cs.attempt, 0xffff)
		if cs.status == chunkLeased {
			ckc.Worker = cs.worker
		}
		if cs.status != chunkDone {
			continue
		}
		st := j.merger.Stats(c)
		ckc.Iterations, ckc.Cycles, ckc.Squashes, ckc.Asserts =
			st.Iterations, st.Cycles, st.Squashes, st.Asserts
		completed += st.Iterations
	}
	ck.Completed = completed
	n, err := writeFileAtomic(j.spec.CheckpointPath, func(w io.Writer) error {
		return sig.WriteCheckpoint(w, ck)
	})
	if err != nil {
		s.logf("dist: job %s checkpoint: %v", j.id, err)
		return
	}
	j.ckptGate = j.nDone
	s.obsrv.Checkpoint(obs.Checkpoint{
		Op: obs.CheckpointSaved, Path: j.spec.CheckpointPath,
		Completed: completed, Uniques: len(ck.Uniques), Bytes: n, Time: time.Now(),
	})
}

// ckptEvery is the job's checkpoint cadence in completed chunks.
func (j *job) ckptEvery() int {
	if n := j.spec.CheckpointEveryChunks; n > 0 {
		return n
	}
	return max(1, len(j.chunks)/10)
}

// finalize runs the host side — merge, decode, check — off the lock once
// every chunk has landed. Callers hold s.mu.
func (s *Server) finalize(j *job) {
	j.state = jobFinalizing
	s.checkpoint(j)
	go func() {
		report, err := j.merger.Report(s.ctx)
		s.mu.Lock()
		j.report, j.err = report, err
		if err != nil {
			j.state = jobFailed
		} else {
			j.state = jobDone
		}
		s.mu.Unlock()
		close(j.doneCh)
	}()
}

// fail marks a running job failed. Callers hold s.mu. (A finalizing job is
// past failing here — its outcome belongs to the finalize goroutine, which
// owns the doneCh close.)
func (s *Server) fail(j *job, err error) {
	if j.state != jobRunning {
		return
	}
	j.state = jobFailed
	j.err = err
	s.logf("dist: job %s failed: %v", j.id, err)
	close(j.doneCh)
}

// Wait blocks until the job completes and returns its report. The report
// error mirrors the in-process Campaign.Run contract (findings, quarantine
// overflow, infra errors).
func (s *Server) Wait(ctx context.Context, id string) (*mtracecheck.Report, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, fmt.Errorf("dist: unknown job %q", id)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.doneCh:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.report, j.err
}

// Result returns a completed job's report and its final (post-injection)
// unique signature set — what SaveSignatures persists for the device/host
// channel.
func (s *Server) Result(id string) (*mtracecheck.Report, []mtracecheck.Unique, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, nil, fmt.Errorf("dist: unknown job %q", id)
	}
	switch j.state {
	case jobDone, jobFailed:
		return j.report, j.merger.Final(), j.err
	}
	return nil, nil, fmt.Errorf("dist: job %s still %s", id, j.state)
}

// Stats returns a job's robustness counters.
func (s *Server) Stats(id string) (JobStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStats{}, fmt.Errorf("dist: unknown job %q", id)
	}
	return j.stats, nil
}

// Metrics exposes the server's metrics collector (also served at /metrics).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// ---- HTTP API ----

// SubmitResponse answers POST /api/v1/jobs.
type SubmitResponse struct {
	ID string `json:"id"`
}

// JobStatus answers GET /api/v1/jobs/{id}.
type JobStatus struct {
	ID                 string   `json:"id"`
	State              string   `json:"state"`
	DoneChunks         int      `json:"done_chunks"`
	TotalChunks        int      `json:"total_chunks"`
	Stats              JobStats `json:"stats"`
	QuarantinedWorkers []string `json:"quarantined_workers,omitempty"`
	Error              string   `json:"error,omitempty"`
	Iterations         int      `json:"iterations,omitempty"`
	UniqueSignatures   int      `json:"unique_signatures,omitempty"`
	Violations         int      `json:"violations,omitempty"`
	AssertionFailures  int      `json:"assertion_failures,omitempty"`
	Failed             bool     `json:"failed,omitempty"`
}

// LeaseRequest asks for one chunk of work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease statuses.
const (
	LeaseOK          = "ok"          // a chunk was granted
	LeaseWait        = "wait"        // no chunk eligible right now; poll again
	LeaseDrained     = "drained"     // no running job has undone chunks
	LeaseQuarantined = "quarantined" // this worker is refused service
)

// LeaseResponse answers POST /api/v1/lease.
type LeaseResponse struct {
	Status string `json:"status"`
	Job    string `json:"job,omitempty"`
	Chunk  int    `json:"chunk"`
	// TTL is the lease deadline interval; workers heartbeat well inside it.
	TTL time.Duration `json:"ttl"`
}

// HeartbeatRequest extends a held lease.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Job    string `json:"job"`
	Chunk  int    `json:"chunk"`
}

// HeartbeatResponse answers POST /api/v1/heartbeat. Held reports whether
// the lease is still the worker's; a false tells it to abandon the chunk.
type HeartbeatResponse struct {
	Held bool `json:"held"`
}

// Upload statuses.
const (
	UploadAccepted    = "accepted"
	UploadDuplicate   = "duplicate"
	UploadRejected    = "rejected"
	UploadQuarantined = "quarantined"
)

// UploadResponse answers POST /api/v1/chunk.
type UploadResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 10<<20)).Decode(&spec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, SubmitResponse{ID: id})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireDue(time.Now())
	j := s.jobs[r.PathValue("id")]
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	st := JobStatus{
		ID: j.id, State: j.state.String(),
		DoneChunks: j.nDone, TotalChunks: len(j.chunks), Stats: j.stats,
	}
	for _, ws := range s.workers {
		if ws.quarantined {
			st.QuarantinedWorkers = append(st.QuarantinedWorkers, ws.id)
		}
	}
	sort.Strings(st.QuarantinedWorkers)
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.report != nil {
		st.Iterations = j.report.Iterations
		st.UniqueSignatures = j.report.UniqueSignatures
		st.Violations = len(j.report.Violations)
		st.AssertionFailures = len(j.report.AssertionFailures)
		st.Failed = j.report.Failed()
	}
	writeJSON(w, st)
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(j.specJSON)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "bad lease request", http.StatusBadRequest)
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireDue(now)
	ws := s.worker(req.Worker, now)
	if ws.quarantined {
		writeJSON(w, LeaseResponse{Status: LeaseQuarantined})
		return
	}
	drained := true
	for _, id := range s.jobIDs {
		j := s.jobs[id]
		if j.state != jobRunning || j.nDone == len(j.chunks) {
			continue
		}
		drained = false
		for c := range j.chunks {
			cs := &j.chunks[c]
			if cs.status != chunkPending || now.Before(cs.eligible) {
				continue
			}
			if cs.attempt >= s.opts.maxAttempts() {
				s.fail(j, fmt.Errorf("dist: chunk %d undispatchable after %d attempts", c, cs.attempt))
				break
			}
			cs.status = chunkLeased
			cs.worker = ws.id
			cs.deadline = now.Add(s.opts.leaseTTL())
			cs.attempt++
			ws.leases[leaseKey{j.id, c}] = struct{}{}
			op := obs.LeaseGranted
			if cs.attempt > 1 {
				op = obs.ChunkRedispatched
				j.stats.Redispatched++
			}
			obs.EmitLease(s.obsrv, obs.LeaseEvent{
				Op: op, Job: j.id, Chunk: c, Worker: ws.id,
				Attempt: cs.attempt - 1, Time: now,
			})
			writeJSON(w, LeaseResponse{Status: LeaseOK, Job: j.id, Chunk: c, TTL: s.opts.leaseTTL()})
			return
		}
	}
	if drained {
		writeJSON(w, LeaseResponse{Status: LeaseDrained})
		return
	}
	writeJSON(w, LeaseResponse{Status: LeaseWait})
}

// worker returns (registering if needed) the state for a worker ID.
// Callers hold s.mu.
func (s *Server) worker(id string, now time.Time) *workerState {
	ws := s.workers[id]
	if ws == nil {
		ws = &workerState{id: id, leases: make(map[leaseKey]struct{})}
		s.workers[id] = ws
		obs.EmitWorker(s.obsrv, obs.WorkerEvent{Op: obs.WorkerJoin, Worker: id, Time: now})
		s.logf("dist: worker %s joined", id)
	}
	return ws
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat", http.StatusBadRequest)
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireDue(now)
	j := s.jobs[req.Job]
	held := j != nil && req.Chunk >= 0 && req.Chunk < len(j.chunks) &&
		j.chunks[req.Chunk].status == chunkLeased && j.chunks[req.Chunk].worker == req.Worker
	if held {
		j.chunks[req.Chunk].deadline = now.Add(s.opts.leaseTTL())
	}
	writeJSON(w, HeartbeatResponse{Held: held})
}

func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	// The worker header is authoritative for striking: when the payload is
	// corrupt, nothing inside it can be trusted, including its worker field.
	sender := r.Header.Get("X-Mtracecheck-Worker")
	data, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u, decodeErr := DecodeChunkUpload(data)
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireDue(now)
	if sender == "" && u != nil {
		sender = u.Worker
	}
	if decodeErr != nil {
		writeJSON(w, s.strike(nil, -1, sender, now, decodeErr))
		return
	}
	j := s.jobs[u.Job]
	if j == nil {
		writeJSON(w, s.strike(nil, -1, sender, now, fmt.Errorf("dist: upload for unknown job %q", u.Job)))
		return
	}
	if u.Chunk < 0 || u.Chunk >= len(j.chunks) {
		writeJSON(w, s.strike(j, -1, sender, now, fmt.Errorf("dist: upload for chunk %d outside grid of %d", u.Chunk, len(j.chunks))))
		return
	}
	// The upload resolves this worker's lease on the chunk either way.
	cs := &j.chunks[u.Chunk]
	if cs.status == chunkLeased && cs.worker == sender {
		delete(s.workers[sender].leases, leaseKey{j.id, u.Chunk})
		cs.status = chunkPending
		cs.worker = ""
		cs.eligible = now
	}
	if j.state != jobRunning {
		// Late upload for a finished job: harmless straggler.
		writeJSON(w, UploadResponse{Status: UploadDuplicate})
		return
	}
	switch u.ErrKind {
	case UploadCrash:
		// A platform crash is a finding that fails the whole campaign, as
		// in-process. The honest reporter is not struck.
		s.fail(j, fmt.Errorf("%w: %s", mtracecheck.ErrCrash, u.Err))
		writeJSON(w, UploadResponse{Status: UploadAccepted})
		return
	case UploadShardFailed, UploadOther:
		// Worker-side infra failure after its own retries: back off and let
		// another worker try, up to the dispatch cap.
		cs.eligible = now.Add(s.opts.backoff(cs.attempt))
		s.logf("dist: job %s chunk %d failed on %s: %s", j.id, u.Chunk, sender, u.Err)
		writeJSON(w, UploadResponse{Status: UploadAccepted})
		return
	}
	fresh, err := j.merger.Absorb(&mtracecheck.ChunkResult{
		Chunk: u.Chunk, Start: u.Start, Count: u.Count,
		Stats: u.Stats, Uniques: u.Uniques,
	})
	if err != nil {
		writeJSON(w, s.strike(j, u.Chunk, sender, now, err))
		return
	}
	if !fresh {
		j.stats.Duplicates++
		obs.EmitLease(s.obsrv, obs.LeaseEvent{
			Op: obs.ChunkDuplicate, Job: j.id, Chunk: u.Chunk, Worker: sender,
			Attempt: cs.attempt - 1, Time: now,
		})
		writeJSON(w, UploadResponse{Status: UploadDuplicate})
		return
	}
	cs.status = chunkDone
	j.nDone++
	if j.nDone == len(j.chunks) {
		s.finalize(j)
	} else if j.nDone-j.ckptGate >= j.ckptEvery() {
		s.checkpoint(j)
	}
	writeJSON(w, UploadResponse{Status: UploadAccepted})
}

// strike records an upload-validation failure against a worker, emits the
// rejection, and quarantines the worker once it crosses the threshold —
// revoking every lease it still holds. Callers hold s.mu.
func (s *Server) strike(j *job, chunk int, worker string, now time.Time, cause error) UploadResponse {
	jobID := ""
	if j != nil {
		jobID = j.id
		j.stats.Rejected++
	}
	ws := s.worker(worker, now)
	ws.strikes++
	obs.EmitLease(s.obsrv, obs.LeaseEvent{
		Op: obs.UploadRejected, Job: jobID, Chunk: chunk, Worker: worker, Time: now,
	})
	s.logf("dist: upload from %s rejected (strike %d): %v", worker, ws.strikes, cause)
	threshold := s.opts.quarantineAfter()
	if threshold > 0 && ws.strikes >= threshold && !ws.quarantined {
		ws.quarantined = true
		revoked := 0
		for lk := range ws.leases {
			if lj := s.jobs[lk.job]; lj != nil && lj.chunks[lk.chunk].status == chunkLeased &&
				lj.chunks[lk.chunk].worker == worker {
				s.releaseLease(lj, lk.chunk, now)
				revoked++
			}
		}
		clear(ws.leases)
		obs.EmitWorker(s.obsrv, obs.WorkerEvent{
			Op: obs.WorkerQuarantined, Worker: worker, Strikes: ws.strikes,
			Leases: revoked, Time: now,
		})
		s.logf("dist: worker %s quarantined after %d rejected uploads (%d leases revoked)",
			worker, ws.strikes, revoked)
		return UploadResponse{Status: UploadQuarantined, Error: cause.Error()}
	}
	return UploadResponse{Status: UploadRejected, Error: cause.Error()}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

// writeFileAtomic writes via a temp file and rename, so a crash mid-write
// never corrupts the previous file. It returns the byte count written.
func writeFileAtomic(path string, write func(io.Writer) error) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	if err := write(cw); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return cw.n, os.Rename(tmp, path)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
