package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mtracecheck"
	"mtracecheck/internal/fault"
)

// Worker is the remote execution client: it polls the server for chunk
// leases, executes them on a locally rebuilt campaign (Build of the same
// spec the server holds, so results are interchangeable with any other
// worker's), heartbeats while executing, and uploads results. Its optional
// wire injector corrupts, drops, or delays its own uploads — the test
// harness for the server's validation, expiry, and quarantine paths.
type Worker struct {
	// Server is the base URL, e.g. "http://127.0.0.1:7077".
	Server string
	// ID names this worker in leases, events, and metrics.
	ID string
	// Client is the HTTP client (nil = a client with sane timeouts).
	Client *http.Client
	// Poll is the idle wait between lease attempts (0 = 100ms).
	Poll time.Duration
	// Wire, when set, mangles uploads in flight.
	Wire *fault.WireInjector
	// ExitWhenIdle returns from Run when the server reports no undone work
	// instead of polling forever — the batch-fleet mode.
	ExitWhenIdle bool
	// StartupTimeout bounds how long Run keeps retrying before the first
	// successful server response (0 = 60s). Until first contact,
	// connection errors retry with capped exponential backoff instead of
	// counting toward the unreachable cap, so a fleet started before its
	// server still comes up cleanly; past the deadline Run fails fast.
	StartupTimeout time.Duration
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)

	jobs map[string]*workerJob
}

// workerJob is one job's locally rebuilt execution state, cached across
// chunks so the spec fetch and program analysis are paid once.
type workerJob struct {
	spec   JobSpec
	runner *mtracecheck.ChunkRunner
}

// ErrWorkerQuarantined reports that the server refused this worker service.
var ErrWorkerQuarantined = errors.New("dist: worker quarantined by server")

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (w *Worker) poll() time.Duration {
	if w.Poll <= 0 {
		return 100 * time.Millisecond
	}
	return w.Poll
}

func (w *Worker) startupTimeout() time.Duration {
	if w.StartupTimeout <= 0 {
		return 60 * time.Second
	}
	return w.StartupTimeout
}

// startupBackoffCap bounds the pre-contact retry backoff so a late
// server is noticed within a couple of seconds of coming up. It scales
// from the poll interval so short-poll configurations (tests, local
// fleets) retry proportionally faster.
func (w *Worker) startupBackoffCap() time.Duration {
	return min(2*time.Second, 32*w.poll())
}

// Run polls for leases until the context is canceled, the server drains
// (with ExitWhenIdle), or the server quarantines this worker.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		return errors.New("dist: worker needs an ID")
	}
	w.jobs = make(map[string]*workerJob)
	unreachable := 0
	contacted := false
	deadline := time.Now().Add(w.startupTimeout())
	backoff := w.poll()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		if err := w.postJSON(ctx, "/api/v1/lease", LeaseRequest{Worker: w.ID}, &lease); err != nil {
			if !contacted {
				// The server has never answered: a fleet may legitimately start
				// before its server, so retry with capped exponential backoff
				// until the startup deadline instead of burning the unreachable
				// budget — then fail fast with a startup-specific error.
				if time.Now().After(deadline) {
					return fmt.Errorf("dist: server not up within startup timeout %v: %w", w.startupTimeout(), err)
				}
				w.logf("worker %s: waiting for server: %v", w.ID, err)
				if !w.sleep(ctx, backoff) {
					return ctx.Err()
				}
				backoff = min(backoff*2, w.startupBackoffCap())
				continue
			}
			// The server may be restarting; transient by assumption — but a
			// batch-fleet worker gives up once the server stays gone, so a
			// fleet never outlives a oneshot server.
			unreachable++
			if w.ExitWhenIdle && unreachable >= 20 {
				return fmt.Errorf("dist: server unreachable after %d attempts: %w", unreachable, err)
			}
			w.logf("worker %s: lease: %v", w.ID, err)
			if !w.sleep(ctx, w.poll()) {
				return ctx.Err()
			}
			continue
		}
		contacted = true
		unreachable = 0
		switch lease.Status {
		case LeaseQuarantined:
			return ErrWorkerQuarantined
		case LeaseDrained:
			if w.ExitWhenIdle {
				return nil
			}
			fallthrough
		case LeaseWait:
			if !w.sleep(ctx, w.poll()) {
				return ctx.Err()
			}
			continue
		case LeaseOK:
		default:
			return fmt.Errorf("dist: unknown lease status %q", lease.Status)
		}
		if err := w.executeLease(ctx, lease); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("worker %s: job %s chunk %d: %v", w.ID, lease.Job, lease.Chunk, err)
		}
	}
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// jobFor returns (building and caching if needed) the local execution
// state for a job.
func (w *Worker) jobFor(ctx context.Context, id string) (*workerJob, error) {
	if wj := w.jobs[id]; wj != nil {
		return wj, nil
	}
	var spec JobSpec
	if err := w.getJSON(ctx, "/api/v1/jobs/"+id+"/spec", &spec); err != nil {
		return nil, err
	}
	p, opts, err := Build(spec)
	if err != nil {
		return nil, err
	}
	campaign, err := mtracecheck.NewCampaign(p, opts)
	if err != nil {
		return nil, err
	}
	runner, err := campaign.NewChunkRunner()
	if err != nil {
		return nil, err
	}
	wj := &workerJob{spec: spec, runner: runner}
	w.jobs[id] = wj
	return wj, nil
}

// executeLease runs one leased chunk and uploads the result, heartbeating
// in the background so a long chunk outlives its initial lease TTL. A
// heartbeat that reports the lease lost cancels the execution — the chunk
// now belongs to another worker and finishing it would only upload a
// duplicate.
func (w *Worker) executeLease(ctx context.Context, lease LeaseResponse) error {
	wj, err := w.jobFor(ctx, lease.Job)
	if err != nil {
		return err
	}
	chunkCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := max(lease.TTL/3, 10*time.Millisecond)
		for {
			select {
			case <-chunkCtx.Done():
				return
			case <-time.After(tick):
			}
			var hb HeartbeatResponse
			err := w.postJSON(chunkCtx, "/api/v1/heartbeat",
				HeartbeatRequest{Worker: w.ID, Job: lease.Job, Chunk: lease.Chunk}, &hb)
			if err == nil && !hb.Held {
				w.logf("worker %s: job %s chunk %d lease lost; abandoning", w.ID, lease.Job, lease.Chunk)
				cancel()
				return
			}
		}
	}()
	result, runErr := wj.runner.Run(chunkCtx, lease.Chunk)
	cancel()
	<-hbDone
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if chunkCtx.Err() != nil && runErr != nil {
		return runErr // lease lost mid-execution; nothing to upload
	}
	u := &ChunkUpload{
		Job: lease.Job, Worker: w.ID, Chunk: lease.Chunk,
	}
	if result != nil {
		u.Start, u.Count = result.Start, result.Count
		u.Stats = result.Stats
		u.Uniques = result.Uniques
	}
	switch {
	case runErr == nil:
	case errors.Is(runErr, mtracecheck.ErrCrash):
		u.ErrKind, u.Err = UploadCrash, runErr.Error()
		u.Uniques = nil
	case errors.Is(runErr, mtracecheck.ErrShardFailed):
		u.ErrKind, u.Err = UploadShardFailed, runErr.Error()
		u.Uniques = nil
	default:
		u.ErrKind, u.Err = UploadOther, runErr.Error()
		u.Uniques = nil
	}
	payload, err := EncodeChunkUpload(u)
	if err != nil {
		return err
	}
	attempt := 0 // wire faults are keyed per send; lease attempts are server-side
	if w.Wire != nil {
		mangled, f := w.Wire.MangleUpload(payload, lease.Job, lease.Chunk, attempt)
		switch f.Kind {
		case fault.KindWireDrop:
			w.logf("worker %s: job %s chunk %d upload dropped (injected)", w.ID, lease.Job, lease.Chunk)
			return nil // the lease will expire and the chunk redispatch
		case fault.KindWireDelay:
			w.logf("worker %s: job %s chunk %d upload delayed %v (injected)", w.ID, lease.Job, lease.Chunk, f.Hold)
			if !w.sleep(ctx, f.Hold) {
				return ctx.Err()
			}
		case fault.KindWireCorrupt:
			w.logf("worker %s: job %s chunk %d upload corrupted (injected)", w.ID, lease.Job, lease.Chunk)
		}
		payload = mangled
	}
	resp, err := w.postChunk(ctx, payload)
	if err != nil {
		return err
	}
	switch resp.Status {
	case UploadAccepted, UploadDuplicate:
		return nil
	case UploadQuarantined:
		return ErrWorkerQuarantined
	default:
		return fmt.Errorf("dist: upload rejected: %s", resp.Error)
	}
}

func (w *Worker) postChunk(ctx context.Context, payload []byte) (*UploadResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Server+"/api/v1/chunk", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Mtracecheck-Worker", w.ID)
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("dist: chunk upload: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var out UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (w *Worker) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Server+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Server+path, nil)
	if err != nil {
		return err
	}
	return w.do(req, out)
}

func (w *Worker) do(req *http.Request, out any) error {
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("dist: %s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
