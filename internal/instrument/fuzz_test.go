package instrument

import (
	"testing"

	"mtracecheck/internal/sig"
	"mtracecheck/internal/testgen"
)

// FuzzDecode feeds arbitrary signature words to the Algorithm 1 decoder:
// it must either decode cleanly or reject with an error — never panic, and
// anything it accepts must re-encode to the same signature (decode/encode
// inverse property).
func FuzzDecode(f *testing.F) {
	p := testgen.MustGenerate(testgen.Config{Threads: 3, OpsPerThread: 30, Words: 4, Seed: 11})
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, w0, w1, w2 uint64) {
		s := sig.New([]uint64{w0, w1, w2})
		cands, err := meta.Decode(s)
		if err != nil {
			return // rejected: fine
		}
		vals := make(map[int]uint32, len(cands))
		for id, c := range cands {
			vals[id] = c.Value
		}
		back, err := meta.EncodeExecution(vals)
		if err != nil {
			t.Fatalf("decoded values failed to re-encode: %v", err)
		}
		if !back.Equal(s) {
			t.Fatalf("decode/encode mismatch: %v -> %v", s, back)
		}
	})
}

// FuzzEncodeValues feeds arbitrary load values to the encoder: any accepted
// execution must round-trip through Decode.
func FuzzEncodeValues(f *testing.F) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 20, Words: 2, Seed: 13})
	meta, err := Analyze(p, 32, nil)
	if err != nil {
		f.Fatal(err)
	}
	var loadIDs []int
	for _, tm := range meta.Threads {
		for _, li := range tm.Loads {
			loadIDs = append(loadIDs, li.Op.ID)
		}
	}
	f.Add(uint32(0), uint32(1), uint32(7))
	f.Fuzz(func(t *testing.T, a, b, c uint32) {
		vals := make(map[int]uint32, len(loadIDs))
		pick := []uint32{a, b, c}
		for i, id := range loadIDs {
			vals[id] = pick[i%len(pick)]
		}
		s, err := meta.EncodeExecution(vals)
		if err != nil {
			return // value outside candidate set: the assert path
		}
		back, err := meta.Decode(s)
		if err != nil {
			t.Fatalf("encoded signature failed to decode: %v", err)
		}
		for id, v := range vals {
			if back[id].Value != v {
				t.Fatalf("load %d: decoded %d, encoded %d", id, back[id].Value, v)
			}
		}
	})
}
