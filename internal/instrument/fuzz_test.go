package instrument

import (
	"testing"

	"mtracecheck/internal/sig"
	"mtracecheck/internal/testgen"
)

// FuzzDecode feeds arbitrary signature words to the Algorithm 1 decoder:
// it must either decode cleanly or reject with an error — never panic, and
// anything it accepts must re-encode to the same signature (decode/encode
// inverse property).
func FuzzDecode(f *testing.F) {
	p := testgen.MustGenerate(testgen.Config{Threads: 3, OpsPerThread: 30, Words: 4, Seed: 11})
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	// Mutated valid signatures — the fault injector's corruption model:
	// start from real encodings and flip single bits or blow out one word,
	// so the fuzzer explores the boundary between decodable and corrupt.
	valid := validSignature(f, meta)
	f.Add(valid.Word(0), valid.Word(1), valid.Word(2))
	for w := 0; w < valid.Len(); w++ {
		for _, bit := range []uint{0, 1, 7, 31, 63} {
			words := valid.Words()
			words[w] ^= 1 << bit
			f.Add(words[0], words[1], words[2])
		}
		words := valid.Words()
		words[w] = ^uint64(0)
		f.Add(words[0], words[1], words[2])
	}
	f.Fuzz(func(t *testing.T, w0, w1, w2 uint64) {
		s := sig.New([]uint64{w0, w1, w2})
		cands, err := meta.Decode(s)
		if err != nil {
			return // rejected: fine
		}
		vals := make(map[int]uint32, len(cands))
		for id, c := range cands {
			vals[id] = c.Value
		}
		back, err := meta.EncodeExecution(vals)
		if err != nil {
			t.Fatalf("decoded values failed to re-encode: %v", err)
		}
		if !back.Equal(s) {
			t.Fatalf("decode/encode mismatch: %v -> %v", s, back)
		}
	})
}

// validSignature builds a real encoding without running the simulator:
// every load observes its last (highest-weight) candidate, which the
// encoder must accept by construction.
func validSignature(f *testing.F, meta *Meta) sig.Signature {
	f.Helper()
	vals := make(map[int]uint32)
	for _, tm := range meta.Threads {
		for _, li := range tm.Loads {
			vals[li.Op.ID] = li.Candidates[len(li.Candidates)-1].Value
		}
	}
	s, err := meta.EncodeExecution(vals)
	if err != nil {
		f.Fatalf("constructed execution failed to encode: %v", err)
	}
	return s
}

// TestDecodeRejectsOutOfRange pins the decoder's reaction to the fault
// injector's out-of-range corruption: a signature word forced to all-ones
// must produce a decode error (not a panic, not a silent acceptance),
// whichever word is hit.
func TestDecodeRejectsOutOfRange(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 3, OpsPerThread: 30, Words: 4, Seed: 11})
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[int]uint32)
	for _, tm := range meta.Threads {
		for _, li := range tm.Loads {
			vals[li.Op.ID] = li.Candidates[0].Value
		}
	}
	valid, err := meta.EncodeExecution(vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := meta.Decode(valid); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	for w := 0; w < valid.Len(); w++ {
		words := valid.Words()
		words[w] = ^uint64(0)
		if _, err := meta.Decode(sig.New(words)); err == nil {
			t.Errorf("all-ones word %d decoded without error", w)
		}
	}
	// Wrong word count is likewise an error, not a panic.
	if _, err := meta.Decode(sig.New(valid.Words()[:valid.Len()-1])); err == nil {
		t.Error("short signature decoded without error")
	}
}

// FuzzEncodeValues feeds arbitrary load values to the encoder: any accepted
// execution must round-trip through Decode.
func FuzzEncodeValues(f *testing.F) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 20, Words: 2, Seed: 13})
	meta, err := Analyze(p, 32, nil)
	if err != nil {
		f.Fatal(err)
	}
	var loadIDs []int
	for _, tm := range meta.Threads {
		for _, li := range tm.Loads {
			loadIDs = append(loadIDs, li.Op.ID)
		}
	}
	f.Add(uint32(0), uint32(1), uint32(7))
	f.Fuzz(func(t *testing.T, a, b, c uint32) {
		vals := make(map[int]uint32, len(loadIDs))
		pick := []uint32{a, b, c}
		for i, id := range loadIDs {
			vals[id] = pick[i%len(pick)]
		}
		s, err := meta.EncodeExecution(vals)
		if err != nil {
			return // value outside candidate set: the assert path
		}
		back, err := meta.Decode(s)
		if err != nil {
			t.Fatalf("encoded signature failed to decode: %v", err)
		}
		for id, v := range vals {
			if back[id].Value != v {
				t.Fatalf("load %d: decoded %d, encoded %d", id, back[id].Value, v)
			}
		}
	})
}
