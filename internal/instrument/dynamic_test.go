package instrument

import (
	"errors"
	"math/rand"
	"testing"

	"mtracecheck/internal/mcm"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/testgen"
)

func TestDynamicEncoderRejectsWeakModels(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 10, Words: 2, Seed: 1})
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDynamicEncoder(meta, mcm.RMO); err == nil {
		t.Error("dynamic pruning accepted RMO (ld->ld unordered)")
	}
	for _, m := range []mcm.Model{mcm.SC, mcm.TSO, mcm.PSO} {
		if _, err := NewDynamicEncoder(meta, m); err != nil {
			t.Errorf("%v rejected: %v", m, err)
		}
	}
}

// coherentRF builds a random execution respecting the frontier invariants
// (monotone per-(word,source-thread) observation, no initial after store) —
// what a correct ld→ld-ordered platform produces.
func coherentRF(meta *Meta, rng *rand.Rand) map[int]uint32 {
	vals := map[int]uint32{}
	for _, tm := range meta.Threads {
		f := newFrontier()
		for _, li := range tm.Loads {
			cands := f.admissible(meta, li)
			c := cands[rng.Intn(len(cands))]
			vals[li.Op.ID] = c.Value
			f.observe(meta, li, c)
		}
	}
	return vals
}

func TestDynamicRoundTrip(t *testing.T) {
	for _, width := range []int{32, 64} {
		for seed := int64(1); seed <= 4; seed++ {
			p := testgen.MustGenerate(testgen.Config{
				Threads: 4, OpsPerThread: 60, Words: 4, Seed: seed,
			})
			meta, err := Analyze(p, width, nil)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := NewDynamicEncoder(meta, mcm.TSO)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 7))
			for trial := 0; trial < 25; trial++ {
				vals := coherentRF(meta, rng)
				s, err := enc.Encode(vals)
				if err != nil {
					t.Fatal(err)
				}
				back, err := enc.Decode(s)
				if err != nil {
					t.Fatalf("width %d seed %d: %v (sig %v)", width, seed, err, s)
				}
				for id, v := range vals {
					if back[id].Value != v {
						t.Fatalf("load %d: decoded %d, want %d", id, back[id].Value, v)
					}
				}
			}
		}
	}
}

// TestDynamicShorterThanStatic: the whole point — frontier pruning shrinks
// signatures on contended tests.
func TestDynamicShorterThanStatic(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 4, OpsPerThread: 100, Words: 4, Seed: 3})
	meta, err := Analyze(p, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewDynamicEncoder(meta, mcm.TSO)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	staticWords := meta.TotalWords()
	maxDyn, sum, n := 0, 0, 0
	for trial := 0; trial < 30; trial++ {
		vals := coherentRF(meta, rng)
		s, err := enc.Encode(vals)
		if err != nil {
			t.Fatal(err)
		}
		dynWords := s.Len() - p.NumThreads() // exclude per-thread length words
		if dynWords > maxDyn {
			maxDyn = dynWords
		}
		sum += dynWords
		n++
	}
	if avg := float64(sum) / float64(n); avg >= float64(staticWords) {
		t.Errorf("dynamic avg %.1f words not below static %d", avg, staticWords)
	}
}

func TestDynamicAssertOnFrontierViolation(t *testing.T) {
	// t0: st x (value 1)   t1: ld x, ld x
	p := prog.NewBuilder("corr", 1, prog.DefaultLayout()).
		Thread().Store(0).
		Thread().Load(0).Load(0).
		MustBuild()
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewDynamicEncoder(meta, mcm.TSO)
	if err != nil {
		t.Fatal(err)
	}
	// Coherence violation: new value then initial — the frontier prunes the
	// initial value, so the dynamic instrumentation asserts inline, without
	// any graph checking (the very violation static encoding only catches
	// at graph time).
	_, err = enc.Encode(map[int]uint32{1: 1, 2: 0})
	var ae *AssertionError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want AssertionError", err)
	}
	// The static encoder accepts the same values (graph checking needed).
	if _, err := meta.EncodeExecution(map[int]uint32{1: 1, 2: 0}); err != nil {
		t.Fatalf("static encoder rejected: %v", err)
	}
}

func TestDynamicDecodeRejectsGarbage(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{Threads: 2, OpsPerThread: 30, Words: 2, Seed: 5})
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewDynamicEncoder(meta, mcm.TSO)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]uint64{
		{},                    // empty
		{0},                   // zero count
		{1},                   // truncated section
		{99, 0},               // absurd count
		{1, ^uint64(0), 1, 0}, // out-of-range digits
	}
	for i, words := range bad {
		if _, err := enc.Decode(sigOfWords(words)); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
}

func sigOfWords(words []uint64) sig.Signature { return sig.New(words) }
