package instrument

import (
	"fmt"

	"mtracecheck/internal/isa"
	"mtracecheck/internal/prog"
)

// Register conventions for generated code.
const (
	// RegLoad receives every test load's value.
	RegLoad isa.Reg = 0
	// RegSig accumulates the current signature word (the paper's "sig"
	// variable in Fig. 4). Completed words spill to the thread's private
	// signature area and the register is reused — the multi-word mechanism
	// of §3.2.
	RegSig isa.Reg = 8
)

// PrivateBase is the start of the thread-private (non-shared, uncoherent)
// region holding spilled signature words and register-flush logs. Accesses
// to it are exactly the paper's "memory accesses unrelated to the test".
const PrivateBase uint64 = 0x8000_0000

// privateStride separates consecutive threads' private areas.
const privateStride uint64 = 1 << 20

// SigSlotAddr returns the private address of a thread's w-th spilled
// signature word.
func SigSlotAddr(thread, w int) uint64 {
	return PrivateBase + uint64(thread)*privateStride + uint64(w)*8
}

// FlushSlotAddr returns the private address of a thread's i-th register
// flush (baseline instrumentation).
func FlushSlotAddr(thread, i int) uint64 {
	return PrivateBase + uint64(thread)*privateStride + (privateStride / 2) + uint64(i)*8
}

// Program bundles the three code variants of one test for a platform
// encoding: the bare test, the MTraceCheck-instrumented test, and the
// register-flushing baseline (paper's intrusiveness comparison, Fig. 11).
type Program struct {
	Meta     *Meta
	Encoding isa.Encoding
	// Original is the uninstrumented test code, one slice per thread.
	Original [][]isa.Instr
	// Instrumented adds the signature branch/accumulate chains (Fig. 4).
	Instrumented [][]isa.Instr
	// Flush is the register-flushing baseline: every loaded value is stored
	// back to a private log slot immediately.
	Flush [][]isa.Instr
}

// Generate materializes all three code variants.
func Generate(meta *Meta, enc isa.Encoding) (*Program, error) {
	gp := &Program{Meta: meta, Encoding: enc}
	for ti := range meta.Prog.Threads {
		orig, err := genOriginal(meta.Prog, ti)
		if err != nil {
			return nil, err
		}
		inst, err := genInstrumented(meta, ti)
		if err != nil {
			return nil, err
		}
		flush, err := genFlush(meta.Prog, ti)
		if err != nil {
			return nil, err
		}
		gp.Original = append(gp.Original, orig)
		gp.Instrumented = append(gp.Instrumented, inst)
		gp.Flush = append(gp.Flush, flush)
	}
	return gp, nil
}

// emitTestOp appends the bare code for one test operation.
func emitTestOp(a *isa.Asm, p *prog.Program, op prog.Op) {
	a.SetTestOp(op.ID)
	switch op.Kind {
	case prog.Load:
		a.LD(RegLoad, p.Layout.AddrOf(op.Word))
	case prog.Store:
		a.ST(p.Layout.AddrOf(op.Word), uint64(op.Value))
	case prog.Fence:
		a.FENCE()
	}
	a.SetTestOp(-1)
}

func genOriginal(p *prog.Program, ti int) ([]isa.Instr, error) {
	a := isa.NewAsm()
	for _, op := range p.Threads[ti].Ops {
		emitTestOp(a, p, op)
	}
	a.HALT()
	return a.Assemble()
}

// genInstrumented emits the paper's Fig. 4 shape: the signature register is
// zeroed up front; each load is followed by a compare/branch chain that adds
// the observed candidate's weight (zero-weight additions are elided) and
// asserts when no candidate matches; completed words spill to the private
// signature area; the final word is stored at the end.
func genInstrumented(meta *Meta, ti int) ([]isa.Instr, error) {
	p := meta.Prog
	tm := meta.Threads[ti]
	a := isa.NewAsm()
	a.MOVI(RegSig, 0)

	loadIdx := 0
	curWord := 0
	spilled := 0
	for _, op := range p.Threads[ti].Ops {
		if op.Kind == prog.Load && loadIdx < len(tm.Loads) && tm.Loads[loadIdx].Op.ID == op.ID {
			li := tm.Loads[loadIdx]
			loadIdx++
			if li.WordIndex != curWord {
				// Spill the completed word and restart accumulation (§3.2).
				a.STR(SigSlotAddr(ti, spilled), RegSig)
				spilled++
				a.MOVI(RegSig, 0)
				curWord = li.WordIndex
			}
			emitTestOp(a, p, op)
			done := fmt.Sprintf("done_%d", op.ID)
			for ci, c := range li.Candidates {
				next := fmt.Sprintf("chk_%d_%d", op.ID, ci+1)
				a.CMPI(RegLoad, uint64(c.Value))
				a.BNE(next)
				if w := li.Multiplier * uint64(ci); w != 0 {
					a.ADDI(RegSig, w)
				}
				a.B(done)
				a.Label(next)
			}
			a.FAIL() // value outside the candidate set: assert error
			a.Label(done)
			continue
		}
		emitTestOp(a, p, op)
	}
	// Store the final signature word.
	a.STR(SigSlotAddr(ti, spilled), RegSig)
	a.HALT()
	return a.Assemble()
}

// genFlush emits the register-flushing baseline: each load's value is
// immediately stored to the next private log slot (as in TSOtool), doubling
// the test's memory operations.
func genFlush(p *prog.Program, ti int) ([]isa.Instr, error) {
	a := isa.NewAsm()
	flushes := 0
	for _, op := range p.Threads[ti].Ops {
		emitTestOp(a, p, op)
		if op.Kind == prog.Load {
			a.STR(FlushSlotAddr(ti, flushes), RegLoad)
			flushes++
		}
	}
	a.HALT()
	return a.Assemble()
}

// CodeSizes reports total code bytes per variant under the bundle's
// encoding (paper Fig. 12).
func (gp *Program) CodeSizes() (original, instrumented, flush int) {
	for ti := range gp.Original {
		original += gp.Encoding.CodeSize(gp.Original[ti])
		instrumented += gp.Encoding.CodeSize(gp.Instrumented[ti])
		flush += gp.Encoding.CodeSize(gp.Flush[ti])
	}
	return original, instrumented, flush
}
