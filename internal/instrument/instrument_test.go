package instrument

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mtracecheck/internal/isa"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/testgen"
)

// fig3Program reconstructs the paper's Fig. 3 example (IDs here are 0-based;
// the paper's figure numbers operations from 1). Word 0 is the figure's
// 0x100, word 1 is 0x104.
func fig3Program() *prog.Program {
	return prog.NewBuilder("fig3", 2, prog.DefaultLayout()).
		Thread().Store(0).Load(0).Load(1).Store(0). // ops 0-3
		Thread().Store(1).Store(0).Load(0).         // ops 4-6
		Thread().Store(1).Store(0).Store(1).        // ops 7-9
		MustBuild()
}

func TestFig3CandidatesAndWeights(t *testing.T) {
	p := fig3Program()
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := meta.Threads[0]
	if len(t0.Loads) != 2 {
		t.Fatalf("thread 0: %d loads, want 2", len(t0.Loads))
	}
	// Load op 1 (paper's #2): candidates {own st 0, t1 st 5, t2 st 8},
	// multiplier 1.
	l2 := t0.Loads[0]
	wantStores := []int{0, 5, 8}
	if len(l2.Candidates) != 3 || l2.Multiplier != 1 {
		t.Fatalf("load 1: %d candidates, multiplier %d", len(l2.Candidates), l2.Multiplier)
	}
	for i, c := range l2.Candidates {
		if c.Store != wantStores[i] {
			t.Errorf("load 1 candidate %d: store %d, want %d", i, c.Store, wantStores[i])
		}
	}
	// Load op 2 (paper's #3): candidates {initial, st 4, st 7, st 9},
	// multiplier 3 (the previous load had 3 candidates).
	l3 := t0.Loads[1]
	wantStores = []int{-1, 4, 7, 9}
	if len(l3.Candidates) != 4 || l3.Multiplier != 3 {
		t.Fatalf("load 2: %d candidates, multiplier %d", len(l3.Candidates), l3.Multiplier)
	}
	for i, c := range l3.Candidates {
		if c.Store != wantStores[i] {
			t.Errorf("load 2 candidate %d: store %d, want %d", i, c.Store, wantStores[i])
		}
	}
	// Thread 1's load (op 6, paper's #7): own store 5 plus stores 0, 3, 8.
	l7 := meta.Threads[1].Loads[0]
	wantStores = []int{0, 3, 5, 8}
	if len(l7.Candidates) != 4 || l7.Multiplier != 1 {
		t.Fatalf("load 6: %d candidates, multiplier %d", len(l7.Candidates), l7.Multiplier)
	}
	for i, c := range l7.Candidates {
		if c.Store != wantStores[i] {
			t.Errorf("load 6 candidate %d: store %d, want %d", i, c.Store, wantStores[i])
		}
	}
	// Thread 2 has no loads but still contributes one zero word.
	if meta.Threads[2].Words != 1 || len(meta.Threads[2].Loads) != 0 {
		t.Errorf("thread 2: %d words, %d loads", meta.Threads[2].Words, len(meta.Threads[2].Loads))
	}
}

func TestFig3SignatureValue(t *testing.T) {
	// Paper: thread 0 observes store #9 (0-based 8) at the first load and
	// store #8 (0-based 7) at the second: signature 2 + 6 = 8.
	p := fig3Program()
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	values := map[int]uint32{
		1: 9, // store 8 writes value 9
		2: 8, // store 7 writes value 8
		6: 1, // thread 1's load reads store 0 (value 1): weight 0
	}
	s, err := meta.EncodeExecution(values)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("signature has %d words, want 3", s.Len())
	}
	if s.Word(0) != 8 {
		t.Errorf("thread 0 word = %d, want 8", s.Word(0))
	}
	if s.Word(1) != 0 || s.Word(2) != 0 {
		t.Errorf("threads 1/2 words = %d/%d, want 0/0", s.Word(1), s.Word(2))
	}
}

// randomRF picks a random candidate for every load.
func randomRF(meta *Meta, rng *rand.Rand) map[int]uint32 {
	vals := make(map[int]uint32)
	for _, tm := range meta.Threads {
		for _, li := range tm.Loads {
			vals[li.Op.ID] = li.Candidates[rng.Intn(len(li.Candidates))].Value
		}
	}
	return vals
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, width := range []int{32, 64} {
		for seed := int64(1); seed <= 5; seed++ {
			p := testgen.MustGenerate(testgen.Config{
				Threads: 4, OpsPerThread: 60, Words: 8, Seed: seed,
			})
			meta, err := Analyze(p, width, nil)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 31))
			for trial := 0; trial < 20; trial++ {
				vals := randomRF(meta, rng)
				s, err := meta.EncodeExecution(vals)
				if err != nil {
					t.Fatal(err)
				}
				rf, err := meta.Decode(s)
				if err != nil {
					t.Fatal(err)
				}
				for id, v := range vals {
					if rf[id].Value != v {
						t.Fatalf("width %d seed %d: load %d decoded %d, want %d",
							width, seed, id, rf[id].Value, v)
					}
				}
			}
		}
	}
}

// TestSignatureUniqueness: distinct reads-from patterns must yield distinct
// signatures (the 1:1 mapping of §3.1).
func TestSignatureUniqueness(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{
		Threads: 3, OpsPerThread: 30, Words: 4, Seed: 9,
	})
	meta, err := Analyze(p, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	seen := map[string]string{} // sig key -> rf fingerprint
	for trial := 0; trial < 500; trial++ {
		vals := randomRF(meta, rng)
		fp := ""
		for _, tm := range meta.Threads {
			for _, li := range tm.Loads {
				fp += string(rune(vals[li.Op.ID])) + ","
			}
		}
		s, err := meta.EncodeExecution(vals)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[s.Key()]; ok && prev != fp {
			t.Fatal("two distinct reads-from patterns share a signature")
		}
		seen[s.Key()] = fp
	}
}

func TestMultiWordOverflow32(t *testing.T) {
	// High contention on few words with 32-bit registers forces multi-word
	// per-thread signatures.
	p := testgen.MustGenerate(testgen.Config{
		Threads: 4, OpsPerThread: 100, Words: 4, Seed: 3,
	})
	meta32, err := Analyze(p, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	meta64, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta32.TotalWords() <= p.NumThreads() {
		t.Errorf("32-bit words = %d, expected overflow beyond %d",
			meta32.TotalWords(), p.NumThreads())
	}
	if meta32.TotalWords() <= meta64.TotalWords() {
		t.Errorf("32-bit words (%d) should exceed 64-bit words (%d)",
			meta32.TotalWords(), meta64.TotalWords())
	}
	// Capacity invariant: within each word, the product of candidate counts
	// fits the register.
	for _, tm := range meta32.Threads {
		prod := map[int]float64{}
		for _, li := range tm.Loads {
			prod[li.WordIndex] = math.Max(prod[li.WordIndex], 1)
			prod[li.WordIndex] *= float64(len(li.Candidates))
		}
		for w, pr := range prod {
			if pr > math.Pow(2, 32) {
				t.Errorf("word %d holds %g > 2^32 combinations", w, pr)
			}
		}
	}
}

func TestAssertionError(t *testing.T) {
	p := fig3Program()
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[int]uint32{1: 99, 2: 0, 6: 1} // 99 written by nobody
	_, err = meta.EncodeExecution(vals)
	var ae *AssertionError
	if !errors.As(err, &ae) {
		t.Fatalf("EncodeExecution error = %v, want AssertionError", err)
	}
	if ae.Load.ID != 1 || ae.Value != 99 {
		t.Errorf("AssertionError = %+v", ae)
	}
}

func TestDecodeRejectsCorruptSignatures(t *testing.T) {
	p := fig3Program()
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Word 0 max valid value is 2 + 9 = 11; 12 decodes out of range.
	if _, err := meta.Decode(sig.New([]uint64{12, 0, 0})); err == nil {
		t.Error("Decode accepted out-of-range word")
	}
	if _, err := meta.Decode(sig.New([]uint64{0, 0})); err == nil {
		t.Error("Decode accepted wrong word count")
	}
}

func TestCardinalityPaperExample(t *testing.T) {
	// §3.2: S=L=50, A=32, T=2 → ≈2.7e20 ≈ 2^68.
	values, bits := Cardinality(2, 50, 50, 32)
	if values < 2.0e20 || values > 3.5e20 {
		t.Errorf("cardinality = %g, want ≈2.7e20", values)
	}
	if bits < 67 || bits > 69 {
		t.Errorf("bits = %g, want ≈68", bits)
	}
}

func TestPrunerShrinksSignatures(t *testing.T) {
	p := testgen.MustGenerate(testgen.Config{
		Threads: 4, OpsPerThread: 100, Words: 4, Seed: 3,
	})
	full, err := Analyze(p, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only candidates whose store is "nearby" in ID space — a crude
	// stand-in for LSQ-bounded pruning (§8).
	pruned, err := Analyze(p, 32, func(load prog.Op, c Candidate) bool {
		if c.Store < 0 {
			return true
		}
		d := c.Store - load.ID
		return d < 40 && d > -40
	})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.SignatureBytes() >= full.SignatureBytes() {
		t.Errorf("pruned signature %dB not smaller than full %dB",
			pruned.SignatureBytes(), full.SignatureBytes())
	}
}

func TestGenerateCodeShapes(t *testing.T) {
	p := fig3Program()
	meta, err := Analyze(p, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, enc := range []isa.Encoding{isa.EncodingRISC, isa.EncodingCISC} {
		gp, err := Generate(meta, enc)
		if err != nil {
			t.Fatal(err)
		}
		orig, inst, flush := gp.CodeSizes()
		if inst <= orig {
			t.Errorf("%v: instrumented %dB not larger than original %dB", enc, inst, orig)
		}
		if flush <= orig {
			t.Errorf("%v: flush %dB not larger than original %dB", enc, flush, orig)
		}
		// The flush variant adds exactly one STR per load.
		for ti, code := range gp.Flush {
			strs := 0
			for _, ins := range code {
				if ins.Op == isa.STR {
					strs++
				}
			}
			loads := len(p.Threads[ti].Loads())
			if strs != loads {
				t.Errorf("thread %d flush: %d STRs, want %d", ti, strs, loads)
			}
		}
		// Instrumented code ends each thread with a final signature store;
		// total STRs per thread equal the thread's word count.
		for ti, code := range gp.Instrumented {
			strs := 0
			fails := 0
			for _, ins := range code {
				if ins.Op == isa.STR {
					strs++
				}
				if ins.Op == isa.FAIL {
					fails++
				}
			}
			if strs != meta.Threads[ti].Words {
				t.Errorf("thread %d: %d signature stores, want %d", ti, strs, meta.Threads[ti].Words)
			}
			if fails != len(meta.Threads[ti].Loads) {
				t.Errorf("thread %d: %d assert traps, want %d", ti, fails, len(meta.Threads[ti].Loads))
			}
		}
	}
}

func TestSignatureBytes(t *testing.T) {
	p := fig3Program()
	meta32, _ := Analyze(p, 32, nil)
	meta64, _ := Analyze(p, 64, nil)
	if got := meta32.SignatureBytes(); got != 3*4 {
		t.Errorf("32-bit signature bytes = %d, want 12", got)
	}
	if got := meta64.SignatureBytes(); got != 3*8 {
		t.Errorf("64-bit signature bytes = %d, want 24", got)
	}
}
