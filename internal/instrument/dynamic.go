package instrument

import (
	"fmt"
	"math"

	"mtracecheck/internal/mcm"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
)

// Dynamic pruning (paper §8): "in a strong MCM (e.g., TSO), we can also
// apply a runtime technique to reduce signature size. At runtime, each
// thread would track the set of the recent store operations performed by
// other threads, computing a frontier of memory operations. Any value
// loaded from a store operation behind this frontier would be considered
// invalid. However, with this dynamic pruning, signature decoding becomes
// complicated as the length of signatures varies."
//
// The frontier rule implemented here is sound exactly when the model
// preserves ld→ld program order (SC, TSO, PSO) — the paper's "strong MCM"
// condition — plus per-location coherence:
//
//   - once one of my loads observed any store to word w, a later load of
//     mine on w can no longer observe the initial value;
//   - once one of my loads observed store index j of thread u on word w
//     (same-thread stores drain in per-word order), a later load of mine on
//     w cannot observe an earlier store of u on w.
//
// Because candidate counts now depend on earlier observations, the encoding
// uses a little-endian mixed-radix scheme decoded FORWARD (first load in
// the least significant position), so the decoder can replay the frontier
// state as it goes — unlike the static Algorithm 1, which walks backward
// with precomputed multipliers. Per-thread word counts vary by execution;
// each thread's section is prefixed by one word holding its length.

// DynamicEncoder encodes and decodes frontier-pruned signatures for one
// instrumented program.
type DynamicEncoder struct {
	meta  *Meta
	model mcm.Model
	cap   uint64
}

// NewDynamicEncoder validates the model's ld→ld ordering and returns an
// encoder bound to the metadata.
func NewDynamicEncoder(meta *Meta, model mcm.Model) (*DynamicEncoder, error) {
	if !model.Ordered(prog.Load, prog.Load) {
		return nil, fmt.Errorf("instrument: dynamic pruning requires a model preserving ld->ld order; %v does not", model)
	}
	return &DynamicEncoder{meta: meta, model: model, cap: capacity(meta.RegWidthBits)}, nil
}

// frontier tracks one observing thread's knowledge.
type frontier struct {
	sawStore map[int]bool   // word -> some store observed
	minIndex map[[2]int]int // (word, source thread) -> min admissible store Index
}

func newFrontier() *frontier {
	return &frontier{sawStore: map[int]bool{}, minIndex: map[[2]int]int{}}
}

// admissible filters a load's static candidates by the frontier.
func (f *frontier) admissible(meta *Meta, li LoadInfo) []Candidate {
	out := make([]Candidate, 0, len(li.Candidates))
	for _, c := range li.Candidates {
		if c.Store < 0 {
			if f.sawStore[li.Op.Word] {
				continue // coherence: no going back to the initial value
			}
			out = append(out, c)
			continue
		}
		st := meta.Prog.OpByID(c.Store)
		if min, ok := f.minIndex[[2]int{li.Op.Word, st.Thread}]; ok && st.Index < min {
			continue // behind the frontier
		}
		out = append(out, c)
	}
	return out
}

// observe advances the frontier with a load's observed candidate.
func (f *frontier) observe(meta *Meta, li LoadInfo, c Candidate) {
	if c.Store < 0 {
		return
	}
	f.sawStore[li.Op.Word] = true
	st := meta.Prog.OpByID(c.Store)
	key := [2]int{li.Op.Word, st.Thread}
	if st.Index > f.minIndex[key] {
		f.minIndex[key] = st.Index
	}
}

// Encode computes the frontier-pruned signature for observed load values.
// The layout is, per thread: [wordCount, w0, w1, ...], threads concatenated
// in order. Values outside the (pruned) candidate set return an
// AssertionError — under a correct ld→ld-ordered platform the frontier
// never prunes the actually observed value.
func (d *DynamicEncoder) Encode(loadValues map[int]uint32) (sig.Signature, error) {
	var words []uint64
	for _, tm := range d.meta.Threads {
		f := newFrontier()
		var tw []uint64
		var acc, radix uint64 = 0, 1
		flush := func() {
			tw = append(tw, acc)
			acc, radix = 0, 1
		}
		for _, li := range tm.Loads {
			v, ok := loadValues[li.Op.ID]
			if !ok {
				return sig.Signature{}, fmt.Errorf("instrument: no observed value for load %d", li.Op.ID)
			}
			cands := f.admissible(d.meta, li)
			idx := -1
			for i, c := range cands {
				if c.Value == v {
					idx = i
					break
				}
			}
			if idx < 0 {
				return sig.Signature{}, &AssertionError{Load: li.Op, Value: v}
			}
			n := uint64(len(cands))
			if n > 1 {
				if radix > d.cap/n {
					flush()
				}
				// Little-endian mixed radix: the first load occupies the
				// least significant digits, so the decoder replays forward.
				acc += uint64(idx) * radix
				radix *= n
			}
			f.observe(d.meta, li, cands[idx])
		}
		flush()
		words = append(words, uint64(len(tw)))
		words = append(words, tw...)
	}
	return sig.New(words), nil
}

// Decode reconstructs the reads-from relation from a frontier-pruned
// signature by replaying the frontier forward.
func (d *DynamicEncoder) Decode(s sig.Signature) (map[int]Candidate, error) {
	rf := make(map[int]Candidate)
	pos := 0
	next := func() (uint64, error) {
		if pos >= s.Len() {
			return 0, fmt.Errorf("instrument: dynamic signature truncated at word %d", pos)
		}
		w := s.Word(pos)
		pos++
		return w, nil
	}
	for _, tm := range d.meta.Threads {
		countW, err := next()
		if err != nil {
			return nil, err
		}
		count := int(countW)
		if count < 1 || count > s.Len()-pos+1 {
			return nil, fmt.Errorf("instrument: implausible per-thread word count %d", count)
		}
		cur, err := next()
		if err != nil {
			return nil, err
		}
		used := 1
		var radix uint64 = 1
		f := newFrontier()
		for _, li := range tm.Loads {
			cands := f.admissible(d.meta, li)
			n := uint64(len(cands))
			if n == 0 {
				return nil, fmt.Errorf("instrument: load %d has no admissible candidates", li.Op.ID)
			}
			var idx uint64
			if n > 1 {
				if radix > d.cap/n {
					if cur != 0 {
						return nil, fmt.Errorf("instrument: residue %d in dynamic signature word", cur)
					}
					if used >= count {
						return nil, fmt.Errorf("instrument: dynamic signature thread section exhausted")
					}
					cur, err = next()
					if err != nil {
						return nil, err
					}
					used++
					radix = 1
				}
				idx = cur % n
				cur /= n
				radix *= n
			}
			if idx >= n {
				return nil, fmt.Errorf("instrument: dynamic decode index %d out of %d", idx, n)
			}
			rf[li.Op.ID] = cands[idx]
			f.observe(d.meta, li, cands[idx])
		}
		if cur != 0 {
			return nil, fmt.Errorf("instrument: residue %d after decoding thread section", cur)
		}
		if used != count {
			return nil, fmt.Errorf("instrument: thread section used %d of %d words", used, count)
		}
	}
	if pos != s.Len() {
		return nil, fmt.Errorf("instrument: %d trailing signature words", s.Len()-pos)
	}
	return rf, nil
}

// InformationBits returns the information content (log2 of the number of
// representable reads-from patterns) of the frontier-pruned encoding for
// one execution — the quantity dynamic pruning reduces relative to
// Meta.InformationBits.
func (d *DynamicEncoder) InformationBits(loadValues map[int]uint32) (float64, error) {
	var bits float64
	for _, tm := range d.meta.Threads {
		f := newFrontier()
		for _, li := range tm.Loads {
			v, ok := loadValues[li.Op.ID]
			if !ok {
				return 0, fmt.Errorf("instrument: no observed value for load %d", li.Op.ID)
			}
			cands := f.admissible(d.meta, li)
			idx := -1
			for i, c := range cands {
				if c.Value == v {
					idx = i
					break
				}
			}
			if idx < 0 {
				return 0, &AssertionError{Load: li.Op, Value: v}
			}
			bits += math.Log2(float64(len(cands)))
			f.observe(d.meta, li, cands[idx])
		}
	}
	return bits, nil
}
