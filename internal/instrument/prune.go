package instrument

import "mtracecheck/internal/prog"

// SkewPruner returns a static candidate pruner (paper §8, "static pruning")
// that drops remote-store candidates whose program position is further than
// maxSkew operations from the load's own position.
//
// The bound models microarchitectural knowledge the paper alludes to: with
// barrier-started iterations, bounded start skew, and LSQ-bounded numbers of
// outstanding operations, two free-running threads cannot drift arbitrarily
// far apart within one iteration, so a load cannot observe a remote store
// "from the distant future" nor miss every store "from the distant past"
// except through its own thread's last write. Own-thread candidates and the
// initial value are always kept.
//
// Pruning trades signature and code size for a soundness obligation: if the
// platform's real skew exceeds maxSkew, the instrumentation's inline assert
// fires (an AssertionError at encode time) rather than corrupting
// signatures — the same fail-loud behaviour the paper's assert chains give.
func SkewPruner(p *prog.Program, maxSkew int) Pruner {
	return func(load prog.Op, c Candidate) bool {
		if c.Store < 0 {
			return true // the initial value is always observable
		}
		st := p.OpByID(c.Store)
		if st.Thread == load.Thread {
			return true // own-thread candidate: program order, not skew
		}
		d := st.Index - load.Index
		if d < 0 {
			d = -d
		}
		return d <= maxSkew
	}
}
