// Package instrument implements MTraceCheck's observability-enhancing code
// instrumentation (paper §3): static analysis of each load's candidate store
// set, weight and multiplier assignment with multi-word overflow handling
// (§3.2), signature encoding of an execution's reads-from pattern, the
// signature decoding procedure (Algorithm 1), and generation of instrumented
// pseudo-ISA code — including the register-flushing baseline the paper
// compares against for intrusiveness (Fig. 11).
package instrument

import (
	"fmt"
	"math"
	"sort"

	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
)

// Candidate is one value a load could observe: a specific store's unique
// value, or the initial memory value.
type Candidate struct {
	Value uint32 // observable value; prog.InitialValue for the initial value
	Store int    // source store op ID; -1 for the initial value
}

// Pruner optionally filters candidate sets using extra microarchitectural
// knowledge (paper §8, "static pruning"). Returning false removes the
// candidate. A nil Pruner keeps the paper's conservative default: every
// memory operation may be reordered independently.
type Pruner func(load prog.Op, c Candidate) bool

// LoadInfo is the instrumentation metadata for one load: its candidates in
// weight order, its weight multiplier, and which per-thread signature word
// it contributes to. The candidate at index i carries weight i×Multiplier.
type LoadInfo struct {
	Op         prog.Op
	Candidates []Candidate
	Multiplier uint64
	WordIndex  int
}

// ThreadMeta aggregates a thread's loads (in program order) and the number
// of signature words the thread produces. Threads with no loads still emit
// one (always-zero) word, as in the paper's Fig. 3 ("thread 2 always stores
// sig=0 to memory").
type ThreadMeta struct {
	Loads []LoadInfo
	Words int
}

// Meta is the full instrumentation metadata for a program: the paper's
// "multipliers" and "store_maps" tables plus word-layout information.
type Meta struct {
	Prog         *prog.Program
	RegWidthBits int
	Threads      []ThreadMeta
}

// capacity returns the number of distinct values one signature word can
// hold (2^width, saturated to MaxUint64 for width 64).
func capacity(widthBits int) uint64 {
	if widthBits >= 64 {
		return math.MaxUint64
	}
	return 1 << uint(widthBits)
}

// Analyze computes per-load candidate sets and assigns weights (paper §3.1).
//
// A load's candidates are the latest preceding same-thread store to its word
// (or the initial value when none exists) plus every other thread's store to
// that word. Weights use consecutive multiples: the first load in a word has
// multiplier 1, and each subsequent load's multiplier is the previous
// multiplier times the previous load's candidate count, guaranteeing a 1:1
// mapping between signature values and reads-from patterns. When a word
// would overflow the register width, a fresh word starts and the multiplier
// resets (§3.2).
func Analyze(p *prog.Program, regWidthBits int, prune Pruner) (*Meta, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if regWidthBits != 32 && regWidthBits != 64 {
		return nil, fmt.Errorf("instrument: register width %d not 32 or 64", regWidthBits)
	}
	cap64 := capacity(regWidthBits)
	meta := &Meta{Prog: p, RegWidthBits: regWidthBits}
	for ti, th := range p.Threads {
		tm := ThreadMeta{Words: 1}
		var product uint64 = 1
		lastOwnStore := map[int]prog.Op{} // word -> latest own store so far
		for _, op := range th.Ops {
			switch op.Kind {
			case prog.Store:
				lastOwnStore[op.Word] = op
				continue
			case prog.Fence:
				continue
			}
			// Candidate set: own latest store or initial, then other
			// threads' stores in ID order.
			var cands []Candidate
			if own, ok := lastOwnStore[op.Word]; ok {
				cands = append(cands, Candidate{Value: own.Value, Store: own.ID})
			} else {
				cands = append(cands, Candidate{Value: prog.InitialValue, Store: -1})
			}
			for _, st := range p.StoresToWord(op.Word) {
				if st.Thread != ti {
					cands = append(cands, Candidate{Value: st.Value, Store: st.ID})
				}
			}
			if prune != nil {
				kept := cands[:0]
				for _, c := range cands {
					if prune(op, c) {
						kept = append(kept, c)
					}
				}
				cands = kept
			}
			if len(cands) == 0 {
				return nil, fmt.Errorf("instrument: load %d pruned to an empty candidate set", op.ID)
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].Store < cands[j].Store })

			n := uint64(len(cands))
			li := LoadInfo{Op: op, Candidates: cands}
			if n > 1 && product > cap64/n {
				// Word overflow: spill and start a fresh word (§3.2).
				tm.Words++
				product = 1
			}
			li.Multiplier = product
			li.WordIndex = tm.Words - 1
			product *= n
			tm.Loads = append(tm.Loads, li)
		}
		meta.Threads = append(meta.Threads, tm)
	}
	return meta, nil
}

// TotalWords returns the execution signature's total word count.
func (m *Meta) TotalWords() int {
	n := 0
	for _, t := range m.Threads {
		n += t.Words
	}
	return n
}

// SignatureBytes returns the execution signature size in bytes at the
// platform's register width (the quantity inside the bars of Fig. 11).
func (m *Meta) SignatureBytes() int { return m.TotalWords() * m.RegWidthBits / 8 }

// wordsBefore returns the number of signature words of threads preceding ti.
func (m *Meta) wordsBefore(ti int) int {
	n := 0
	for i := 0; i < ti; i++ {
		n += m.Threads[i].Words
	}
	return n
}

// candIndex returns the index of value v in the load's candidate set, or -1.
func candIndex(li *LoadInfo, v uint32) int {
	for i, c := range li.Candidates {
		if c.Value == v {
			return i
		}
	}
	return -1
}

// EncodeExecutionInto computes the execution signature for dense observed
// load values (indexed by op ID, the shape sim.Execution.LoadValues uses)
// into dst, returning dst resized to TotalWords. It allocates only when
// dst's capacity is insufficient, so a reused buffer makes steady-state
// encoding allocation-free. A value outside a load's candidate set returns
// an AssertionError — the instrumentation's inline assertion (paper §3.1)
// that catches, e.g., program-order violations without any graph checking.
func (m *Meta) EncodeExecutionInto(dst []uint64, vals []uint32) ([]uint64, error) {
	total := m.TotalWords()
	if cap(dst) < total {
		dst = make([]uint64, total)
	} else {
		dst = dst[:total]
		clear(dst)
	}
	base := 0
	for ti := range m.Threads {
		tm := &m.Threads[ti]
		for i := range tm.Loads {
			li := &tm.Loads[i]
			if li.Op.ID >= len(vals) {
				return dst, fmt.Errorf("instrument: no observed value for load %d", li.Op.ID)
			}
			v := vals[li.Op.ID]
			idx := candIndex(li, v)
			if idx < 0 {
				return dst, &AssertionError{Load: li.Op, Value: v}
			}
			// Within a thread the first word is most significant: word 0 of
			// the thread sits at offset 0.
			dst[base+li.WordIndex] += li.Multiplier * uint64(idx)
		}
		base += tm.Words
	}
	return dst, nil
}

// EncodeValues is EncodeExecutionInto with a freshly allocated signature —
// the convenient form for callers off the hot path.
func (m *Meta) EncodeValues(vals []uint32) (sig.Signature, error) {
	words, err := m.EncodeExecutionInto(nil, vals)
	if err != nil {
		return sig.Signature{}, err
	}
	return sig.New(words), nil
}

// EncodeExecution computes the execution signature for observed load values
// as a map (load op ID → value), exactly as the instrumented code would at
// runtime. Thin map-shaped wrapper over the same per-load encoding the dense
// EncodeExecutionInto fast path uses.
func (m *Meta) EncodeExecution(loadValues map[int]uint32) (sig.Signature, error) {
	words := make([]uint64, m.TotalWords())
	base := 0
	for ti := range m.Threads {
		tm := &m.Threads[ti]
		for i := range tm.Loads {
			li := &tm.Loads[i]
			v, ok := loadValues[li.Op.ID]
			if !ok {
				return sig.Signature{}, fmt.Errorf("instrument: no observed value for load %d", li.Op.ID)
			}
			idx := candIndex(li, v)
			if idx < 0 {
				return sig.Signature{}, &AssertionError{Load: li.Op, Value: v}
			}
			words[base+li.WordIndex] += li.Multiplier * uint64(idx)
		}
		base += tm.Words
	}
	return sig.New(words), nil
}

// AssertionError reports a loaded value outside the statically computed
// candidate set — caught instantly by the instrumented code's assert chain.
type AssertionError struct {
	Load  prog.Op
	Value uint32
}

func (e *AssertionError) Error() string {
	return fmt.Sprintf("instrument: assertion failed: load %d (%s, thread %d) observed value %d outside its candidate set",
		e.Load.ID, e.Load, e.Load.Thread, e.Value)
}

// decodeWalk runs Algorithm 1 over the signature, calling emit with each
// load and its decoded candidate index. Within a thread, loads are stored in
// program order and word indices only grow, so each word's loads form a
// contiguous run — no per-call regrouping is needed. Words without loads
// (threads with no loads emit one always-zero word) still get the residue
// check.
func (m *Meta) decodeWalk(s sig.Signature, emit func(li *LoadInfo, idx int)) error {
	if s.Len() != m.TotalWords() {
		return fmt.Errorf("instrument: signature has %d words, metadata expects %d",
			s.Len(), m.TotalWords())
	}
	base := 0
	for ti := range m.Threads {
		tm := &m.Threads[ti]
		loads := tm.Loads
		lo := 0
		for w := 0; w < tm.Words; w++ {
			hi := lo
			for hi < len(loads) && loads[hi].WordIndex == w {
				hi++
			}
			// Decode the word from its last load to its first.
			remaining := s.Word(base + w)
			for i := hi - 1; i >= lo; i-- {
				li := &loads[i]
				idx := remaining / li.Multiplier
				remaining %= li.Multiplier
				if idx >= uint64(len(li.Candidates)) {
					return fmt.Errorf("instrument: signature word %d decodes load %d to index %d of %d candidates",
						base+w, li.Op.ID, idx, len(li.Candidates))
				}
				emit(li, int(idx))
			}
			if remaining != 0 {
				return fmt.Errorf("instrument: signature word %d has residue %d after decoding",
					base+w, remaining)
			}
			lo = hi
		}
		base += tm.Words
	}
	return nil
}

// Decode reconstructs the reads-from relation from an execution signature
// (paper Algorithm 1): per thread, per word, loads are walked from last to
// first, dividing by each load's multiplier. The result maps every load op
// ID to its observed Candidate.
func (m *Meta) Decode(s sig.Signature) (map[int]Candidate, error) {
	rf := make(map[int]Candidate)
	err := m.decodeWalk(s, func(li *LoadInfo, idx int) {
		rf[li.Op.ID] = li.Candidates[idx]
	})
	if err != nil {
		return nil, err
	}
	return rf, nil
}

// DecodeInto reconstructs the reads-from relation into rf, a dense slice
// indexed by operation ID: rf[loadID] = source store op ID, or -1 when the
// load read the initial value. Entries for non-load operations are left
// untouched. rf must be at least m.Prog.NumOps() long. This is the hot-path
// form — it avoids the map[int]Candidate allocation per decoded signature.
func (m *Meta) DecodeInto(s sig.Signature, rf []int32) error {
	if n := m.Prog.NumOps(); len(rf) < n {
		return fmt.Errorf("instrument: rf buffer has %d entries, program has %d ops", len(rf), n)
	}
	return m.decodeWalk(s, func(li *LoadInfo, idx int) {
		rf[li.Op.ID] = int32(li.Candidates[idx].Store)
	})
}

// Cardinality returns the paper's §3.2 estimate of per-thread signature
// cardinality, {1 + (S/A)(T-1)}^L, and the bits needed to represent it.
func Cardinality(threads, storesPerThread, loadsPerThread, sharedWords int) (values float64, bits float64) {
	perLoad := 1 + float64(storesPerThread)/float64(sharedWords)*float64(threads-1)
	values = math.Pow(perLoad, float64(loadsPerThread))
	bits = float64(loadsPerThread) * math.Log2(perLoad)
	return values, bits
}

// InformationBits returns the information content of the static signature
// encoding: the log2 of the number of distinct reads-from patterns it can
// represent (Σ log2 of candidate counts over all loads).
func (m *Meta) InformationBits() float64 {
	var bits float64
	for _, tm := range m.Threads {
		for _, li := range tm.Loads {
			bits += math.Log2(float64(len(li.Candidates)))
		}
	}
	return bits
}
