package testgen

import (
	"testing"

	"mtracecheck/internal/mcm"
	"mtracecheck/internal/prog"
)

func TestGenerateValidProgram(t *testing.T) {
	cfg := Config{Threads: 4, OpsPerThread: 50, Words: 32, Seed: 1}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 4 {
		t.Errorf("threads = %d, want 4", p.NumThreads())
	}
	for ti, th := range p.Threads {
		mem := 0
		for _, op := range th.Ops {
			if op.IsMemory() {
				mem++
			}
		}
		if mem != 50 {
			t.Errorf("thread %d: %d memory ops, want 50", ti, mem)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Threads: 2, OpsPerThread: 30, Words: 8, Seed: 42}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.String() != b.String() {
		t.Error("same seed produced different programs")
	}
	cfg.Seed = 43
	c := MustGenerate(cfg)
	if a.String() == c.String() {
		t.Error("different seeds produced identical programs (suspicious)")
	}
}

func TestGenerateLoadRatio(t *testing.T) {
	cfg := Config{Threads: 2, OpsPerThread: 2000, Words: 16, LoadRatio: 0.5, Seed: 7}
	p := MustGenerate(cfg)
	loads := 0
	for _, op := range p.Ops() {
		if op.Kind == prog.Load {
			loads++
		}
	}
	total := p.NumOps()
	frac := float64(loads) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("load fraction = %v, want ≈0.5", frac)
	}
}

func TestGenerateFences(t *testing.T) {
	cfg := Config{Threads: 2, OpsPerThread: 100, Words: 8, FenceProb: 0.3, Seed: 3}
	p := MustGenerate(cfg)
	fences := 0
	for _, op := range p.Ops() {
		if op.Kind == prog.Fence {
			fences++
		}
	}
	if fences == 0 {
		t.Error("FenceProb=0.3 produced no fences")
	}
	// Memory ops per thread still exactly OpsPerThread.
	for ti, th := range p.Threads {
		mem := 0
		for _, op := range th.Ops {
			if op.IsMemory() {
				mem++
			}
		}
		if mem != 100 {
			t.Errorf("thread %d: %d memory ops, want 100", ti, mem)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Threads: 0, OpsPerThread: 1, Words: 1},
		{Threads: 1, OpsPerThread: 0, Words: 1},
		{Threads: 1, OpsPerThread: 1, Words: 0},
		{Threads: 1, OpsPerThread: 1, Words: 1, LoadRatio: 1.5},
		{Threads: 1, OpsPerThread: 1, Words: 1, FenceProb: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted %+v", i, cfg)
		}
	}
}

func TestConfigName(t *testing.T) {
	c := Config{Threads: 2, OpsPerThread: 50, Words: 32}
	if got := c.Name(); got != "2-50-32" {
		t.Errorf("Name = %q", got)
	}
	c.Label = "ARM-2-50-32"
	if got := c.Name(); got != "ARM-2-50-32" {
		t.Errorf("Name = %q", got)
	}
}

func TestPaperConfigs(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 21 {
		t.Fatalf("%d paper configs, want 21", len(cfgs))
	}
	arm, x86 := 0, 0
	seen := map[string]bool{}
	for _, pc := range cfgs {
		if seen[pc.Label] {
			t.Errorf("duplicate config %s", pc.Label)
		}
		seen[pc.Label] = true
		switch pc.ISA {
		case ISAARM:
			arm++
		case ISAX86:
			x86++
		default:
			t.Errorf("unknown ISA %q", pc.ISA)
		}
		if _, err := Generate(pc.Config); err != nil {
			t.Errorf("%s: %v", pc.Label, err)
		}
	}
	if arm != 15 || x86 != 6 {
		t.Errorf("ARM=%d x86=%d, want 15/6", arm, x86)
	}
	if cfgs[0].Label != "ARM-2-50-32" {
		t.Errorf("first config %s, want ARM-2-50-32", cfgs[0].Label)
	}
}

func TestLitmusLibrary(t *testing.T) {
	tests := LitmusTests()
	if len(tests) != 10 {
		t.Fatalf("%d litmus tests, want 10", len(tests))
	}
	for _, l := range tests {
		if err := l.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if len(l.Interesting) == 0 {
			t.Errorf("%s: empty interesting outcome", l.Name)
		}
		for id := range l.Interesting {
			if op := l.Prog.OpByID(id); op.Kind != prog.Load {
				t.Errorf("%s: outcome references non-load op %d (%v)", l.Name, id, op.Kind)
			}
		}
	}
}

func TestLitmusForbiddenMonotone(t *testing.T) {
	// If an outcome is forbidden under a weaker model, it must be forbidden
	// under every stronger model too.
	for _, l := range LitmusTests() {
		for i, weak := range mcm.Models {
			if !l.ForbiddenUnder(weak) {
				continue
			}
			for j := 0; j < i; j++ {
				stronger := mcm.Models[j]
				if !l.ForbiddenUnder(stronger) {
					t.Errorf("%s: forbidden under %v but allowed under stronger %v",
						l.Name, weak, stronger)
				}
			}
		}
	}
}

func TestLitmusByName(t *testing.T) {
	l, err := LitmusByName("SB")
	if err != nil || l.Name != "SB" {
		t.Errorf("LitmusByName(SB) = %v, %v", l.Name, err)
	}
	if _, err := LitmusByName("nope"); err == nil {
		t.Error("LitmusByName accepted unknown name")
	}
}

func TestOutcomeMatches(t *testing.T) {
	o := Outcome{3: 7, 5: 0}
	if !o.Matches(map[int]uint32{3: 7, 5: 0, 9: 1}) {
		t.Error("Matches rejected satisfying observation")
	}
	if o.Matches(map[int]uint32{3: 7, 5: 2}) {
		t.Error("Matches accepted wrong value")
	}
	if o.Matches(map[int]uint32{3: 7}) {
		t.Error("Matches accepted missing load")
	}
}

func TestLitmusExpectations(t *testing.T) {
	// Spot-check the forbidden sets against the standard catalog.
	want := map[string][]mcm.Model{
		"SB":   {mcm.SC},
		"MP":   {mcm.SC, mcm.TSO},
		"LB":   {mcm.SC, mcm.TSO, mcm.PSO},
		"CoRR": mcm.Models,
		"SB+F": mcm.Models,
	}
	for name, models := range want {
		l, err := LitmusByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mcm.Models {
			wantForbidden := false
			for _, f := range models {
				if f == m {
					wantForbidden = true
				}
			}
			if got := l.ForbiddenUnder(m); got != wantForbidden {
				t.Errorf("%s under %v: forbidden=%v, want %v", name, m, got, wantForbidden)
			}
		}
	}
}

func TestHotWordBias(t *testing.T) {
	biased := MustGenerate(Config{Threads: 2, OpsPerThread: 2000, Words: 64, HotWordBias: 0.8, Seed: 4})
	uniform := MustGenerate(Config{Threads: 2, OpsPerThread: 2000, Words: 64, Seed: 4})
	count := func(p *prog.Program) int {
		hotOps := 0
		for _, op := range p.Ops() {
			if op.IsMemory() && op.Word < 8 {
				hotOps++
			}
		}
		return hotOps
	}
	if b, u := count(biased), count(uniform); b < 2*u {
		t.Errorf("bias not effective: %d hot ops biased vs %d uniform", b, u)
	}
	if _, err := Generate(Config{Threads: 1, OpsPerThread: 1, Words: 1, HotWordBias: 2}); err == nil {
		t.Error("bias > 1 accepted")
	}
}
