// Package testgen produces the multi-threaded test programs MTraceCheck
// validates: constrained-random tests over the paper's parameter space
// (Table 2) and a library of classic directed litmus tests with per-model
// expected outcomes.
//
// Constrained-random tests use perfectly disambiguated addresses (every
// operation names a literal shared word), which is what allows the
// instrumentation pass to compute each load's complete candidate store set
// statically (paper §3.1).
package testgen

import (
	"fmt"
	"math/rand"

	"mtracecheck/internal/prog"
)

// Config parameterizes constrained-random test generation.
type Config struct {
	Label        string  // optional display name, e.g. "ARM-2-50-32"
	Threads      int     // number of test threads (paper: 2, 4, 7)
	OpsPerThread int     // static memory operations per thread (50, 100, 200)
	Words        int     // distinct shared words (32, 64, 128)
	LoadRatio    float64 // probability an op is a load; paper uses 0.5
	FenceProb    float64 // probability of inserting a fence before an op; paper tests use 0
	WordsPerLine int     // false-sharing layout; 1 = none (paper default)
	// HotWordBias concentrates accesses: with this probability an operation
	// targets the small "hot" subset (⅛ of the words) instead of a uniform
	// choice. The paper's generator is uniform (§5); contention biasing is a
	// simple instance of the advanced test generation its §9 defers to —
	// more same-word races per operation means more distinct interleavings
	// per iteration budget.
	HotWordBias float64
	Seed        int64 // RNG seed; same seed ⇒ same program
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Threads < 1:
		return fmt.Errorf("testgen: %d threads", c.Threads)
	case c.OpsPerThread < 1:
		return fmt.Errorf("testgen: %d ops per thread", c.OpsPerThread)
	case c.Words < 1:
		return fmt.Errorf("testgen: %d shared words", c.Words)
	case c.LoadRatio < 0 || c.LoadRatio > 1:
		return fmt.Errorf("testgen: load ratio %v outside [0,1]", c.LoadRatio)
	case c.FenceProb < 0 || c.FenceProb > 1:
		return fmt.Errorf("testgen: fence probability %v outside [0,1]", c.FenceProb)
	case c.WordsPerLine < 1:
		return fmt.Errorf("testgen: %d words per line", c.WordsPerLine)
	case c.HotWordBias < 0 || c.HotWordBias > 1:
		return fmt.Errorf("testgen: hot-word bias %v outside [0,1]", c.HotWordBias)
	}
	return nil
}

// Name returns the config's label, or a synthesized "T-OPS-WORDS" name.
func (c Config) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("%d-%d-%d", c.Threads, c.OpsPerThread, c.Words)
}

// Default fills unset probabilistic fields with the paper's defaults:
// 50% loads, no fences, no false sharing.
func (c Config) Default() Config {
	if c.LoadRatio == 0 {
		c.LoadRatio = 0.5
	}
	if c.WordsPerLine == 0 {
		c.WordsPerLine = 1
	}
	return c
}

// Generate builds a constrained-random program from the configuration.
// Fences do not count against OpsPerThread (which counts memory operations,
// as in the paper).
func Generate(cfg Config) (*prog.Program, error) {
	cfg = cfg.Default()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout := prog.DefaultLayout()
	layout.WordsPerLine = cfg.WordsPerLine
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := prog.NewBuilder(cfg.Name(), cfg.Words, layout)
	hot := cfg.Words / 8
	if hot < 1 {
		hot = 1
	}
	for t := 0; t < cfg.Threads; t++ {
		b.Thread()
		for i := 0; i < cfg.OpsPerThread; i++ {
			if cfg.FenceProb > 0 && rng.Float64() < cfg.FenceProb {
				b.Fence()
			}
			word := rng.Intn(cfg.Words)
			if cfg.HotWordBias > 0 && rng.Float64() < cfg.HotWordBias {
				word = rng.Intn(hot)
			}
			if rng.Float64() < cfg.LoadRatio {
				b.Load(word)
			} else {
				b.Store(word)
			}
		}
	}
	return b.Build()
}

// MustGenerate is Generate, panicking on error; for static tables and tests.
func MustGenerate(cfg Config) *prog.Program {
	p, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// ISA labels the two platform flavors used in the paper's evaluation.
// "ARM" selects the weak (RMO) model with fixed-width RISC encoding;
// "x86" selects TSO with variable-width CISC encoding.
type ISA string

const (
	// ISAARM is the weakly-ordered (RMO) RISC-encoded platform flavor.
	ISAARM ISA = "ARM"
	// ISAX86 is the TSO CISC-encoded platform flavor.
	ISAX86 ISA = "x86"
)

// PaperConfig couples a generation config with the platform flavor it runs
// on, named per the paper's [ISA]-[threads]-[ops]-[addrs] convention.
type PaperConfig struct {
	ISA ISA
	Config
}

// PaperConfigs returns the paper's 21 representative test configurations
// (§5, x-axis of Fig. 8), in the paper's presentation order.
func PaperConfigs() []PaperConfig {
	type triple struct{ t, o, w int }
	arm := []triple{
		{2, 50, 32}, {2, 50, 64}, {2, 100, 32}, {2, 100, 64}, {2, 200, 32}, {2, 200, 64},
		{4, 50, 64}, {4, 100, 64}, {4, 200, 64},
		{7, 50, 64}, {7, 50, 128}, {7, 100, 64}, {7, 100, 128}, {7, 200, 64}, {7, 200, 128},
	}
	x86 := []triple{
		{2, 50, 32}, {2, 100, 32}, {2, 200, 32},
		{4, 50, 64}, {4, 100, 64}, {4, 200, 64},
	}
	var out []PaperConfig
	add := func(isa ISA, ts []triple) {
		for _, tr := range ts {
			label := fmt.Sprintf("%s-%d-%d-%d", isa, tr.t, tr.o, tr.w)
			out = append(out, PaperConfig{
				ISA: isa,
				Config: Config{
					Label:        label,
					Threads:      tr.t,
					OpsPerThread: tr.o,
					Words:        tr.w,
					LoadRatio:    0.5,
					WordsPerLine: 1,
					Seed:         int64(len(out)) + 1,
				},
			})
		}
	}
	add(ISAARM, arm)
	add(ISAX86, x86)
	return out
}
