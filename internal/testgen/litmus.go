package testgen

import (
	"fmt"

	"mtracecheck/internal/mcm"
	"mtracecheck/internal/prog"
)

// Outcome describes a particular execution result as the values observed by
// selected loads, keyed by load operation ID. A value of prog.InitialValue
// means the load read the initial memory contents.
type Outcome map[int]uint32

// Matches reports whether the observed load values (load ID → value, covering
// at least the outcome's loads) satisfy the outcome.
func (o Outcome) Matches(observed map[int]uint32) bool {
	for id, want := range o {
		got, ok := observed[id]
		if !ok || got != want {
			return false
		}
	}
	return true
}

// MatchesValues is Matches over a dense load-value slice indexed by
// operation ID (the shape sim.Execution.LoadValues uses).
func (o Outcome) MatchesValues(vals []uint32) bool {
	for id, want := range o {
		if id >= len(vals) || vals[id] != want {
			return false
		}
	}
	return true
}

// Litmus is a directed test: a small program, an outcome of interest, and
// the set of models under which that outcome is forbidden. Outcomes assume
// multi-copy store atomicity (mcm.MultiCopy), matching the paper's
// evaluation platforms.
type Litmus struct {
	Name        string
	Description string
	Prog        *prog.Program
	Interesting Outcome
	Forbidden   []mcm.Model
}

// ForbiddenUnder reports whether the interesting outcome violates model m.
func (l Litmus) ForbiddenUnder(m mcm.Model) bool {
	for _, f := range l.Forbidden {
		if f == m {
			return true
		}
	}
	return false
}

// op returns the ID of the operation at (thread, index); storeVal returns
// the value written by the store at (thread, index).
func opID(p *prog.Program, thread, index int) int { return p.Threads[thread].Ops[index].ID }

func storeVal(p *prog.Program, thread, index int) uint32 {
	op := p.Threads[thread].Ops[index]
	if op.Kind != prog.Store {
		panic(fmt.Sprintf("testgen: op %d/%d is %v, not a store", thread, index, op.Kind))
	}
	return op.Value
}

// LitmusTests returns the directed litmus library. Shared words: the tests
// use at most four words (x=0, y=1, ...), each on its own cache line.
func LitmusTests() []Litmus {
	const x, y = 0, 1
	layout := prog.DefaultLayout()
	var tests []Litmus

	// SB — store buffering (Dekker). Both loads reading the initial value
	// requires st→ld reordering: forbidden only under SC.
	{
		p := prog.NewBuilder("SB", 2, layout).
			Thread().Store(x).Load(y).
			Thread().Store(y).Load(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "SB",
			Description: "store buffering: r0=r1=0 needs st->ld reordering",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 0, 1): prog.InitialValue,
				opID(p, 1, 1): prog.InitialValue,
			},
			Forbidden: []mcm.Model{mcm.SC},
		})
	}

	// SB+F — store buffering with fences: forbidden under every model.
	{
		p := prog.NewBuilder("SB+F", 2, layout).
			Thread().Store(x).Fence().Load(y).
			Thread().Store(y).Fence().Load(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "SB+F",
			Description: "store buffering with full fences: r0=r1=0 always forbidden",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 0, 2): prog.InitialValue,
				opID(p, 1, 2): prog.InitialValue,
			},
			Forbidden: mcm.Models,
		})
	}

	// MP — message passing. Seeing the flag but stale data requires st→st
	// (writer) or ld→ld (reader) reordering: forbidden under SC and TSO.
	{
		p := prog.NewBuilder("MP", 2, layout).
			Thread().Store(x).Store(y). // x=data, y=flag
			Thread().Load(y).Load(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "MP",
			Description: "message passing: flag set but data stale",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 1, 0): storeVal(p, 0, 1), // read flag
				opID(p, 1, 1): prog.InitialValue, // stale data
			},
			Forbidden: []mcm.Model{mcm.SC, mcm.TSO},
		})
	}

	// MP+F — message passing with fences: forbidden everywhere.
	{
		p := prog.NewBuilder("MP+F", 2, layout).
			Thread().Store(x).Fence().Store(y).
			Thread().Load(y).Fence().Load(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "MP+F",
			Description: "message passing with full fences: always forbidden",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 1, 0): storeVal(p, 0, 2),
				opID(p, 1, 2): prog.InitialValue,
			},
			Forbidden: mcm.Models,
		})
	}

	// LB — load buffering. Both loads seeing the other thread's store
	// requires ld→st reordering: forbidden under SC, TSO, PSO.
	{
		p := prog.NewBuilder("LB", 2, layout).
			Thread().Load(x).Store(y).
			Thread().Load(y).Store(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "LB",
			Description: "load buffering: both loads see the other store",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 0, 0): storeVal(p, 1, 1),
				opID(p, 1, 0): storeVal(p, 0, 1),
			},
			Forbidden: []mcm.Model{mcm.SC, mcm.TSO, mcm.PSO},
		})
	}

	// CoRR — coherence read-read: a later same-address load must not read an
	// older value than an earlier one. Forbidden under every model; this is
	// exactly the ld→ld-violation manifestation of the paper's bugs 1 and 2.
	{
		p := prog.NewBuilder("CoRR", 1, layout).
			Thread().Store(x).
			Thread().Load(x).Load(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "CoRR",
			Description: "coherence read-read: new value then old value",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 1, 0): storeVal(p, 0, 0),
				opID(p, 1, 1): prog.InitialValue,
			},
			Forbidden: mcm.Models,
		})
	}

	// LB+F — load buffering with fences: forbidden under every model.
	{
		p := prog.NewBuilder("LB+F", 2, layout).
			Thread().Load(x).Fence().Store(y).
			Thread().Load(y).Fence().Store(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "LB+F",
			Description: "load buffering with full fences: always forbidden",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 0, 0): storeVal(p, 1, 2),
				opID(p, 1, 0): storeVal(p, 0, 2),
			},
			Forbidden: mcm.Models,
		})
	}

	// WRC — write-to-read causality: forbidden under SC/TSO/PSO with
	// multi-copy atomic stores.
	{
		p := prog.NewBuilder("WRC", 2, layout).
			Thread().Store(x).
			Thread().Load(x).Store(y).
			Thread().Load(y).Load(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "WRC",
			Description: "write-to-read causality chain broken",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 1, 0): storeVal(p, 0, 0),
				opID(p, 2, 0): storeVal(p, 1, 1),
				opID(p, 2, 1): prog.InitialValue,
			},
			Forbidden: []mcm.Model{mcm.SC, mcm.TSO, mcm.PSO},
		})
	}

	// IRIW — independent reads of independent writes: the two readers
	// disagree on the store order. With multi-copy atomic stores this needs
	// ld→ld reordering: forbidden under SC/TSO/PSO.
	{
		p := prog.NewBuilder("IRIW", 2, layout).
			Thread().Store(x).
			Thread().Store(y).
			Thread().Load(x).Load(y).
			Thread().Load(y).Load(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "IRIW",
			Description: "independent readers disagree on write order",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 2, 0): storeVal(p, 0, 0),
				opID(p, 2, 1): prog.InitialValue,
				opID(p, 3, 0): storeVal(p, 1, 0),
				opID(p, 3, 1): prog.InitialValue,
			},
			Forbidden: []mcm.Model{mcm.SC, mcm.TSO, mcm.PSO},
		})
	}

	// IRIW+F — independent reads with fenced readers: forbidden under every
	// model given multi-copy atomic stores.
	{
		p := prog.NewBuilder("IRIW+F", 2, layout).
			Thread().Store(x).
			Thread().Store(y).
			Thread().Load(x).Fence().Load(y).
			Thread().Load(y).Fence().Load(x).
			MustBuild()
		tests = append(tests, Litmus{
			Name:        "IRIW+F",
			Description: "fenced independent readers disagree on write order",
			Prog:        p,
			Interesting: Outcome{
				opID(p, 2, 0): storeVal(p, 0, 0),
				opID(p, 2, 2): prog.InitialValue,
				opID(p, 3, 0): storeVal(p, 1, 0),
				opID(p, 3, 2): prog.InitialValue,
			},
			Forbidden: mcm.Models,
		})
	}

	return tests
}

// LitmusByName returns the named litmus test.
func LitmusByName(name string) (Litmus, error) {
	for _, l := range LitmusTests() {
		if l.Name == name {
			return l, nil
		}
	}
	return Litmus{}, fmt.Errorf("testgen: no litmus test named %q", name)
}
