package testgen

import (
	"fmt"

	"mtracecheck/internal/prog"
)

// MergeSegments combines several independent test programs into one larger
// test, implementing the paper's §8 scalability suggestion: "even larger
// test-cases can be obtained by merging multiple independent code segments,
// where memory addresses are assigned in a way that leads only to false
// sharing across the segments."
//
// Thread i of the merged program runs segment 0's thread i, then segment
// 1's, and so on. Word w of segment k maps to merged word w*K+k, and the
// merged layout packs K words per cache line, so word w of *different*
// segments shares a line (false sharing, coherence contention) while no
// word is truly shared across segments. Per-load candidate sets therefore
// never cross segment boundaries, which keeps each load's candidate count —
// and hence the signature cardinality growth — bounded by its own segment.
func MergeSegments(name string, segs []*prog.Program) (*prog.Program, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("testgen: no segments to merge")
	}
	k := len(segs)
	threads, words := 0, 0
	for _, s := range segs {
		if s.NumThreads() > threads {
			threads = s.NumThreads()
		}
		if s.NumWords > words {
			words = s.NumWords
		}
	}
	base := segs[0].Layout
	if k*base.WordSize > base.LineSize {
		return nil, fmt.Errorf("testgen: %d segments of %d-byte words exceed a %d-byte line",
			k, base.WordSize, base.LineSize)
	}
	layout := prog.Layout{
		Base:         base.Base,
		LineSize:     base.LineSize,
		WordSize:     base.WordSize,
		WordsPerLine: k,
	}
	b := prog.NewBuilder(name, words*k, layout)
	for t := 0; t < threads; t++ {
		b.Thread()
		for si, s := range segs {
			if t >= s.NumThreads() {
				continue
			}
			for _, op := range s.Threads[t].Ops {
				switch op.Kind {
				case prog.Load:
					b.Load(op.Word*k + si)
				case prog.Store:
					b.Store(op.Word*k + si)
				case prog.Fence:
					b.Fence()
				}
			}
		}
	}
	return b.Build()
}

// SegmentOfWord returns which segment a merged word index belongs to, given
// the segment count used at merge time.
func SegmentOfWord(word, segments int) int { return word % segments }
