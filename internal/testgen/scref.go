package testgen

import (
	"math/rand"

	"mtracecheck/internal/prog"
)

// SCReference executes the program on a sequentially consistent reference
// interpreter that picks one ready operation uniformly at random at each
// step, with single-copy store atomicity — the paper's §4.1 "in-house
// architectural simulator" used for the k-medoids limit study. It returns
// the observed reads-from relation (load op ID → store op ID, -1 for the
// initial value) and the per-word write-serialization order.
//
// Every returned execution is SC-legal and therefore valid under every
// supported (weaker) model, which makes SCReference a convenient source of
// guaranteed-clean execution sets for the checking pipeline.
func SCReference(p *prog.Program, rng *rand.Rand) (rf map[int]int, ws map[int][]int) {
	rf = make(map[int]int)
	ws = make(map[int][]int)
	next := make([]int, p.NumThreads())
	memory := map[int]int{} // word -> last store op ID (absent = initial)
	remaining := p.NumOps()
	for remaining > 0 {
		// Pick a random thread that still has operations.
		t := rng.Intn(p.NumThreads())
		for len(p.Threads[t].Ops) == next[t] {
			t = (t + 1) % p.NumThreads()
		}
		op := p.Threads[t].Ops[next[t]]
		next[t]++
		remaining--
		switch op.Kind {
		case prog.Load:
			if st, ok := memory[op.Word]; ok {
				rf[op.ID] = st
			} else {
				rf[op.ID] = -1
			}
		case prog.Store:
			memory[op.Word] = op.ID
			ws[op.Word] = append(ws[op.Word], op.ID)
		}
	}
	return rf, ws
}

// LoadValuesOf converts a reads-from relation into observed load values
// (what the instrumented code would see at runtime).
func LoadValuesOf(p *prog.Program, rf map[int]int) map[int]uint32 {
	vals := make(map[int]uint32, len(rf))
	for loadID, storeID := range rf {
		if storeID < 0 {
			vals[loadID] = prog.InitialValue
		} else {
			vals[loadID] = p.OpByID(storeID).Value
		}
	}
	return vals
}
