package testgen

import (
	"testing"

	"mtracecheck/internal/instrument"
	"mtracecheck/internal/prog"
)

func TestMergeSegmentsStructure(t *testing.T) {
	segA := MustGenerate(Config{Threads: 2, OpsPerThread: 20, Words: 4, Seed: 1})
	segB := MustGenerate(Config{Threads: 2, OpsPerThread: 30, Words: 3, Seed: 2})
	merged, err := MergeSegments("merged", []*prog.Program{segA, segB})
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := merged.NumOps(), segA.NumOps()+segB.NumOps(); got != want {
		t.Errorf("merged ops = %d, want %d", got, want)
	}
	if merged.Layout.WordsPerLine != 2 {
		t.Errorf("words per line = %d, want 2", merged.Layout.WordsPerLine)
	}
	// Word w of segment 0 and word w of segment 1 share a cache line
	// (false sharing only).
	if merged.Layout.LineOfWord(0) != merged.Layout.LineOfWord(1) {
		t.Error("corresponding words of different segments do not share a line")
	}
	if merged.Layout.LineOfWord(0) == merged.Layout.LineOfWord(2) {
		t.Error("different words of one segment share a line")
	}
}

// TestMergeSegmentsCandidateIsolation: the §8 property — per-load candidate
// sets never cross segment boundaries, so signature growth stays bounded
// per segment.
func TestMergeSegmentsCandidateIsolation(t *testing.T) {
	segs := []*prog.Program{
		MustGenerate(Config{Threads: 3, OpsPerThread: 30, Words: 4, Seed: 3}),
		MustGenerate(Config{Threads: 3, OpsPerThread: 30, Words: 4, Seed: 4}),
		MustGenerate(Config{Threads: 3, OpsPerThread: 30, Words: 4, Seed: 5}),
	}
	merged, err := MergeSegments("m3", segs)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := instrument.Analyze(merged, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range meta.Threads {
		for _, li := range tm.Loads {
			seg := SegmentOfWord(li.Op.Word, len(segs))
			for _, c := range li.Candidates {
				if c.Store < 0 {
					continue
				}
				st := merged.OpByID(c.Store)
				if SegmentOfWord(st.Word, len(segs)) != seg {
					t.Fatalf("load %d (segment %d) has candidate store %d from segment %d",
						li.Op.ID, seg, st.ID, SegmentOfWord(st.Word, len(segs)))
				}
			}
		}
	}
}

// TestMergeSignatureBoundedGrowth: merging K segments multiplies the word
// count at most K-fold (candidate sets stay per-segment), rather than
// exploding combinatorially as one big shared pool would.
func TestMergeSignatureBoundedGrowth(t *testing.T) {
	seg := MustGenerate(Config{Threads: 2, OpsPerThread: 50, Words: 4, Seed: 6})
	segMeta, err := instrument.Analyze(seg, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeSegments("m4", []*prog.Program{seg, seg, seg, seg})
	if err != nil {
		t.Fatal(err)
	}
	mergedMeta, err := instrument.Analyze(merged, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, limit := mergedMeta.TotalWords(), 4*segMeta.TotalWords(); got > limit {
		t.Errorf("merged signature words = %d, want ≤ %d (4 × segment)", got, limit)
	}
	// A monolithic random test with the same totals contends far harder.
	mono := MustGenerate(Config{Threads: 2, OpsPerThread: 200, Words: 4, Seed: 6})
	monoMeta, err := instrument.Analyze(mono, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mergedMeta.TotalWords() >= monoMeta.TotalWords() {
		t.Errorf("merged words (%d) not below monolithic words (%d)",
			mergedMeta.TotalWords(), monoMeta.TotalWords())
	}
}

func TestMergeSegmentsErrors(t *testing.T) {
	if _, err := MergeSegments("none", nil); err == nil {
		t.Error("empty merge accepted")
	}
	seg := MustGenerate(Config{Threads: 2, OpsPerThread: 5, Words: 2, Seed: 7})
	many := make([]*prog.Program, 17) // 17 × 4-byte words > 64-byte line
	for i := range many {
		many[i] = seg
	}
	if _, err := MergeSegments("over", many); err == nil {
		t.Error("line-overflowing merge accepted")
	}
}
