package sig

import (
	"bytes"
	"strings"
	"testing"
)

func ckUniques(words ...uint64) []Unique {
	out := make([]Unique, len(words))
	for i, w := range words {
		out[i] = Unique{Sig: New([]uint64{w}), Count: int(w)}
	}
	return out
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := Checkpoint{
		Seed:      -42,
		ProgHash:  0xdeadbeefcafe,
		Completed: 12345,
		Uniques:   ckUniques(3, 7, 9),
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != ck.Seed || got.ProgHash != ck.ProgHash || got.Completed != ck.Completed {
		t.Fatalf("header %+v, want %+v", got, ck)
	}
	if len(got.Uniques) != len(ck.Uniques) {
		t.Fatalf("%d uniques, want %d", len(got.Uniques), len(ck.Uniques))
	}
	for i := range got.Uniques {
		if !got.Uniques[i].Sig.Equal(ck.Uniques[i].Sig) || got.Uniques[i].Count != ck.Uniques[i].Count {
			t.Errorf("unique %d: %v/%d", i, got.Uniques[i].Sig, got.Uniques[i].Count)
		}
	}
}

func TestCheckpointEmptySet(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Checkpoint{Seed: 1, Completed: 0}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Uniques) != 0 {
		t.Errorf("%d uniques from empty checkpoint", len(got.Uniques))
	}
}

func TestCheckpointRejectsBadInput(t *testing.T) {
	if err := WriteCheckpoint(&bytes.Buffer{}, Checkpoint{Completed: -1}); err == nil {
		t.Error("negative Completed accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader("BOGUSMAG rest")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader("MTC")); err == nil {
		t.Error("truncated magic accepted")
	}
	// Header cut off after the magic.
	if _, err := ReadCheckpoint(strings.NewReader("MTCCKPT1")); err == nil {
		t.Error("truncated header accepted")
	}
	// Valid header, payload missing.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Checkpoint{Uniques: ckUniques(1, 2)}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadCheckpoint(bytes.NewReader(cut)); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestCheckpointDistRoundTrip(t *testing.T) {
	ck := Checkpoint{
		Seed:      99,
		ProgHash:  0xabcd,
		Completed: 128,
		Uniques:   ckUniques(4, 8),
		Dist: &DistState{
			ChunkSize: 64,
			Chunks: []CkptChunk{
				{Status: ChunkDone, Attempt: 1, Iterations: 64, Cycles: 9999, Squashes: 2,
					Asserts: []string{"t1 assert failed", "t2 assert failed"}},
				{Status: ChunkLeased, Attempt: 3, Worker: "worker-b"},
				{Status: ChunkPending, Attempt: 2},
				{Status: ChunkDone, Iterations: 40, Cycles: 5},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist == nil {
		t.Fatal("dist section lost")
	}
	if got.Dist.ChunkSize != 64 {
		t.Errorf("chunk size %d", got.Dist.ChunkSize)
	}
	if got.Dist.DoneChunks() != 2 {
		t.Errorf("%d done chunks, want 2", got.Dist.DoneChunks())
	}
	if len(got.Dist.Chunks) != len(ck.Dist.Chunks) {
		t.Fatalf("%d chunks, want %d", len(got.Dist.Chunks), len(ck.Dist.Chunks))
	}
	for i, want := range ck.Dist.Chunks {
		g := got.Dist.Chunks[i]
		if g.Status != want.Status || g.Attempt != want.Attempt || g.Worker != want.Worker {
			t.Errorf("chunk %d lease state %+v, want %+v", i, g, want)
		}
		if want.Status != ChunkDone {
			continue
		}
		if g.Iterations != want.Iterations || g.Cycles != want.Cycles || g.Squashes != want.Squashes {
			t.Errorf("chunk %d counters %+v, want %+v", i, g, want)
		}
		if len(g.Asserts) != len(want.Asserts) {
			t.Fatalf("chunk %d: %d asserts, want %d", i, len(g.Asserts), len(want.Asserts))
		}
		for a := range g.Asserts {
			if g.Asserts[a] != want.Asserts[a] {
				t.Errorf("chunk %d assert %d: %q", i, a, g.Asserts[a])
			}
		}
	}
}

func TestCheckpointLegacyHasNilDist(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Checkpoint{Seed: 5, Uniques: ckUniques(1)}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist != nil {
		t.Error("plain checkpoint grew a dist section")
	}
}

func TestCheckpointDistRejectsBadInput(t *testing.T) {
	base := Checkpoint{Seed: 1, Uniques: ckUniques(2)}
	if err := WriteCheckpoint(&bytes.Buffer{}, Checkpoint{
		Seed: 1, Dist: &DistState{ChunkSize: 0, Chunks: []CkptChunk{{}}},
	}); err == nil {
		t.Error("zero chunk size accepted on write")
	}
	if err := WriteCheckpoint(&bytes.Buffer{}, Checkpoint{
		Seed: 1, Dist: &DistState{ChunkSize: 64, Chunks: []CkptChunk{{Status: 7}}},
	}); err == nil {
		t.Error("invalid chunk status accepted on write")
	}
	// Garbage where the dist magic would be.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, base); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("NOTDIST1")
	if _, err := ReadCheckpoint(&buf); err == nil {
		t.Error("bogus trailer magic accepted")
	}
	// Dist section truncated mid-chunk.
	buf.Reset()
	ck := base
	ck.Dist = &DistState{ChunkSize: 64, Chunks: []CkptChunk{
		{Status: ChunkDone, Iterations: 64}, {Status: ChunkPending},
	}}
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadCheckpoint(bytes.NewReader(cut)); err == nil {
		t.Error("truncated dist section accepted")
	}
}

func TestMergeUniques(t *testing.T) {
	a := ckUniques(1, 3, 5)
	b := ckUniques(2, 3, 6)
	c := ckUniques(3)
	got := MergeUniques(a, nil, b, c, []Unique{})
	wantWords := []uint64{1, 2, 3, 5, 6}
	wantCounts := []int{1, 2, 9, 5, 6} // 3 appears in all three lists: 3+3+3
	if len(got) != len(wantWords) {
		t.Fatalf("%d merged entries, want %d", len(got), len(wantWords))
	}
	for i := range got {
		if got[i].Sig.Word(0) != wantWords[i] || got[i].Count != wantCounts[i] {
			t.Errorf("entry %d: word %#x count %d, want %#x/%d",
				i, got[i].Sig.Word(0), got[i].Count, wantWords[i], wantCounts[i])
		}
	}
	if MergeUniques() != nil {
		t.Error("empty merge yields non-nil")
	}
	single := MergeUniques(nil, a, nil)
	if len(single) != len(a) {
		t.Fatalf("single-list merge length %d", len(single))
	}
	for i := range single {
		if !single[i].Sig.Equal(a[i].Sig) {
			t.Errorf("single-list merge changed entry %d", i)
		}
	}
}
