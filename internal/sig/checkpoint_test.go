package sig

import (
	"bytes"
	"strings"
	"testing"
)

func ckUniques(words ...uint64) []Unique {
	out := make([]Unique, len(words))
	for i, w := range words {
		out[i] = Unique{Sig: New([]uint64{w}), Count: int(w)}
	}
	return out
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := Checkpoint{
		Seed:      -42,
		ProgHash:  0xdeadbeefcafe,
		Completed: 12345,
		Uniques:   ckUniques(3, 7, 9),
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != ck.Seed || got.ProgHash != ck.ProgHash || got.Completed != ck.Completed {
		t.Fatalf("header %+v, want %+v", got, ck)
	}
	if len(got.Uniques) != len(ck.Uniques) {
		t.Fatalf("%d uniques, want %d", len(got.Uniques), len(ck.Uniques))
	}
	for i := range got.Uniques {
		if !got.Uniques[i].Sig.Equal(ck.Uniques[i].Sig) || got.Uniques[i].Count != ck.Uniques[i].Count {
			t.Errorf("unique %d: %v/%d", i, got.Uniques[i].Sig, got.Uniques[i].Count)
		}
	}
}

func TestCheckpointEmptySet(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Checkpoint{Seed: 1, Completed: 0}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Uniques) != 0 {
		t.Errorf("%d uniques from empty checkpoint", len(got.Uniques))
	}
}

func TestCheckpointRejectsBadInput(t *testing.T) {
	if err := WriteCheckpoint(&bytes.Buffer{}, Checkpoint{Completed: -1}); err == nil {
		t.Error("negative Completed accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader("BOGUSMAG rest")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader("MTC")); err == nil {
		t.Error("truncated magic accepted")
	}
	// Header cut off after the magic.
	if _, err := ReadCheckpoint(strings.NewReader("MTCCKPT1")); err == nil {
		t.Error("truncated header accepted")
	}
	// Valid header, payload missing.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Checkpoint{Uniques: ckUniques(1, 2)}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadCheckpoint(bytes.NewReader(cut)); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestMergeUniques(t *testing.T) {
	a := ckUniques(1, 3, 5)
	b := ckUniques(2, 3, 6)
	c := ckUniques(3)
	got := MergeUniques(a, nil, b, c, []Unique{})
	wantWords := []uint64{1, 2, 3, 5, 6}
	wantCounts := []int{1, 2, 9, 5, 6} // 3 appears in all three lists: 3+3+3
	if len(got) != len(wantWords) {
		t.Fatalf("%d merged entries, want %d", len(got), len(wantWords))
	}
	for i := range got {
		if got[i].Sig.Word(0) != wantWords[i] || got[i].Count != wantCounts[i] {
			t.Errorf("entry %d: word %#x count %d, want %#x/%d",
				i, got[i].Sig.Word(0), got[i].Count, wantWords[i], wantCounts[i])
		}
	}
	if MergeUniques() != nil {
		t.Error("empty merge yields non-nil")
	}
	single := MergeUniques(nil, a, nil)
	if len(single) != len(a) {
		t.Fatalf("single-list merge length %d", len(single))
	}
	for i := range single {
		if !single[i].Sig.Equal(a[i].Sig) {
			t.Errorf("single-list merge changed entry %d", i)
		}
	}
}
