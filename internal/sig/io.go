package sig

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary persistence for collected signature sets: the channel between the
// device under validation and the checking host. The format is deliberately
// compact — the paper's §1 motivation includes keeping device-to-host
// transfer volumes small.
//
// Layout (all little-endian):
//
//	magic   [8]byte  "MTCSIG01"
//	words   uint32   words per signature
//	count   uint32   number of unique signatures
//	entries count × { count uint32, words × uint64 }
var magic = [8]byte{'M', 'T', 'C', 'S', 'I', 'G', '0', '1'}

// WriteSet serializes unique signatures with their observation counts.
// All signatures must have the same word count.
func WriteSet(w io.Writer, uniques []Unique) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	words := 0
	if len(uniques) > 0 {
		words = uniques[0].Sig.Len()
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(words)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(uniques))); err != nil {
		return err
	}
	for _, u := range uniques {
		if u.Sig.Len() != words {
			return fmt.Errorf("sig: mixed signature widths (%d and %d words)", words, u.Sig.Len())
		}
		if u.Count < 0 {
			return fmt.Errorf("sig: negative count %d", u.Count)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(u.Count)); err != nil {
			return err
		}
		for i := 0; i < words; i++ {
			if err := binary.Write(bw, binary.LittleEndian, u.Sig.Word(i)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSet deserializes a signature set written by WriteSet.
func ReadSet(r io.Reader) ([]Unique, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("sig: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("sig: bad magic %q", got[:])
	}
	var words, count uint32
	if err := binary.Read(br, binary.LittleEndian, &words); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const sanity = 1 << 26
	if words > 1024 || count > sanity {
		return nil, fmt.Errorf("sig: implausible header (%d words, %d signatures)", words, count)
	}
	out := make([]Unique, 0, count)
	buf := make([]uint64, words)
	for i := uint32(0); i < count; i++ {
		var c uint32
		if err := binary.Read(br, binary.LittleEndian, &c); err != nil {
			return nil, fmt.Errorf("sig: entry %d: %w", i, err)
		}
		for w := range buf {
			if err := binary.Read(br, binary.LittleEndian, &buf[w]); err != nil {
				return nil, fmt.Errorf("sig: entry %d word %d: %w", i, w, err)
			}
		}
		out = append(out, Unique{Sig: New(buf), Count: int(c)})
	}
	return out, nil
}
