package sig

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary persistence for collected signature sets: the channel between the
// device under validation and the checking host. The format is deliberately
// compact — the paper's §1 motivation includes keeping device-to-host
// transfer volumes small.
//
// Layout (all little-endian):
//
// Layout v1 (all little-endian):
//
//	magic   [8]byte  "MTCSIG01"
//	words   uint32   words per signature
//	count   uint32   number of unique signatures
//	entries count × { count uint32, words × uint64 }
//
// Layout v2 prepends a provenance header so the host-side check-only path
// can reject sets collected from a different program, seed, or platform —
// the wrong-artifact mistake the checkpoint format already catches:
//
//	magic    [8]byte  "MTCSIG02"
//	proghash uint64   FNV-64a of the canonical program listing
//	seed     uint64   campaign seed (int64 bit pattern)
//	platlen  uint16   platform-name byte length
//	platform platlen bytes (UTF-8)
//	body     the v1 layout, magic included
var magic = [8]byte{'M', 'T', 'C', 'S', 'I', 'G', '0', '1'}

var metaMagic = [8]byte{'M', 'T', 'C', 'S', 'I', 'G', '0', '2'}

// FileMeta is the provenance header of a v2 signature-set file: enough to
// verify that a stored set matches the (program, seed, platform) the host
// is about to check it against.
type FileMeta struct {
	ProgHash uint64
	Seed     int64
	Platform string
}

// WriteSet serializes unique signatures with their observation counts in
// the headerless v1 layout. All signatures must have the same word count.
func WriteSet(w io.Writer, uniques []Unique) error {
	bw := bufio.NewWriter(w)
	if err := writeSetBody(bw, uniques); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSetMeta serializes a signature set in the v2 layout, prefixed with
// the provenance header meta.
func WriteSetMeta(w io.Writer, meta FileMeta, uniques []Unique) error {
	if len(meta.Platform) > 0xffff {
		return fmt.Errorf("sig: platform name too long (%d bytes)", len(meta.Platform))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(metaMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, meta.ProgHash); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(meta.Seed)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(meta.Platform))); err != nil {
		return err
	}
	if _, err := bw.WriteString(meta.Platform); err != nil {
		return err
	}
	if err := writeSetBody(bw, uniques); err != nil {
		return err
	}
	return bw.Flush()
}

func writeSetBody(bw *bufio.Writer, uniques []Unique) error {
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	words := 0
	if len(uniques) > 0 {
		words = uniques[0].Sig.Len()
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(words)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(uniques))); err != nil {
		return err
	}
	for _, u := range uniques {
		if u.Sig.Len() != words {
			return fmt.Errorf("sig: mixed signature widths (%d and %d words)", words, u.Sig.Len())
		}
		if u.Count < 0 {
			return fmt.Errorf("sig: negative count %d", u.Count)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(u.Count)); err != nil {
			return err
		}
		for i := 0; i < words; i++ {
			if err := binary.Write(bw, binary.LittleEndian, u.Sig.Word(i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadSet deserializes a signature set written by WriteSet or WriteSetMeta,
// discarding any provenance header. Use ReadSetMeta to inspect it.
func ReadSet(r io.Reader) ([]Unique, error) {
	uniques, _, err := ReadSetMeta(r)
	return uniques, err
}

// ReadSetMeta deserializes a signature set along with its provenance
// header. Headerless v1 files load with a nil meta.
func ReadSetMeta(r io.Reader) ([]Unique, *FileMeta, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, nil, fmt.Errorf("sig: reading magic: %w", err)
	}
	var meta *FileMeta
	if got == metaMagic {
		var progHash, seed uint64
		if err := binary.Read(br, binary.LittleEndian, &progHash); err != nil {
			return nil, nil, fmt.Errorf("sig: reading header: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, &seed); err != nil {
			return nil, nil, fmt.Errorf("sig: reading header: %w", err)
		}
		var platLen uint16
		if err := binary.Read(br, binary.LittleEndian, &platLen); err != nil {
			return nil, nil, fmt.Errorf("sig: reading header: %w", err)
		}
		plat := make([]byte, platLen)
		if _, err := io.ReadFull(br, plat); err != nil {
			return nil, nil, fmt.Errorf("sig: reading header: %w", err)
		}
		meta = &FileMeta{ProgHash: progHash, Seed: int64(seed), Platform: string(plat)}
		if _, err := io.ReadFull(br, got[:]); err != nil {
			return nil, nil, fmt.Errorf("sig: reading body magic: %w", err)
		}
	}
	if got != magic {
		return nil, nil, fmt.Errorf("sig: bad magic %q", got[:])
	}
	uniques, err := readSetBody(br)
	if err != nil {
		return nil, nil, err
	}
	return uniques, meta, nil
}

func readSetBody(br *bufio.Reader) ([]Unique, error) {
	var words, count uint32
	if err := binary.Read(br, binary.LittleEndian, &words); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const sanity = 1 << 26
	if words > 1024 || count > sanity {
		return nil, fmt.Errorf("sig: implausible header (%d words, %d signatures)", words, count)
	}
	out := make([]Unique, 0, count)
	buf := make([]uint64, words)
	for i := uint32(0); i < count; i++ {
		var c uint32
		if err := binary.Read(br, binary.LittleEndian, &c); err != nil {
			return nil, fmt.Errorf("sig: entry %d: %w", i, err)
		}
		for w := range buf {
			if err := binary.Read(br, binary.LittleEndian, &buf[w]); err != nil {
				return nil, fmt.Errorf("sig: entry %d word %d: %w", i, w, err)
			}
		}
		out = append(out, Unique{Sig: New(buf), Count: int(c)})
	}
	return out, nil
}
