package sig

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestWriteReadSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set := NewSet()
	for i := 0; i < 400; i++ {
		set.Add(New([]uint64{uint64(rng.Intn(40)), uint64(rng.Intn(5)), rng.Uint64()}))
	}
	uniques := set.Sorted()

	var buf bytes.Buffer
	if err := WriteSet(&buf, uniques); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(uniques) {
		t.Fatalf("read %d signatures, wrote %d", len(back), len(uniques))
	}
	for i := range back {
		if !back[i].Sig.Equal(uniques[i].Sig) || back[i].Count != uniques[i].Count {
			t.Fatalf("entry %d mismatch: %v x%d vs %v x%d", i,
				back[i].Sig, back[i].Count, uniques[i].Sig, uniques[i].Count)
		}
	}
}

func TestWriteReadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSet(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSet(&buf)
	if err != nil || len(back) != 0 {
		t.Fatalf("empty round trip: %v, %d entries", err, len(back))
	}
}

func TestReadSetRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC younger bytes follow..."),
		append([]byte("MTCSIG01"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF), // absurd header
	}
	for i, b := range cases {
		if _, err := ReadSet(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestWriteSetRejectsMixedWidths(t *testing.T) {
	uniques := []Unique{
		{Sig: New([]uint64{1}), Count: 1},
		{Sig: New([]uint64{1, 2}), Count: 1},
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, uniques); err == nil {
		t.Error("mixed widths accepted")
	}
}

func TestReadSetTruncated(t *testing.T) {
	set := NewSet()
	set.Add(New([]uint64{7, 8}))
	var buf bytes.Buffer
	if err := WriteSet(&buf, set.Sorted()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 5 {
		if _, err := ReadSet(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestWriteReadSetMetaRoundTrip(t *testing.T) {
	set := NewSet()
	set.Add(New([]uint64{3, 1}))
	set.Add(New([]uint64{9, 4}))
	uniques := set.Sorted()
	meta := FileMeta{ProgHash: 0xdeadbeefcafe, Seed: -42, Platform: "sim-x86/TSO"}

	var buf bytes.Buffer
	if err := WriteSetMeta(&buf, meta, uniques); err != nil {
		t.Fatal(err)
	}
	back, got, err := ReadSetMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || *got != meta {
		t.Fatalf("meta round trip: got %+v, want %+v", got, meta)
	}
	if len(back) != len(uniques) {
		t.Fatalf("read %d signatures, wrote %d", len(back), len(uniques))
	}
	for i := range back {
		if !back[i].Sig.Equal(uniques[i].Sig) || back[i].Count != uniques[i].Count {
			t.Fatalf("entry %d mismatch", i)
		}
	}

	// The headerless reader skips the provenance transparently.
	viaV1, err := ReadSet(bytes.NewReader(buf.Bytes()))
	if err != nil || len(viaV1) != len(uniques) {
		t.Fatalf("ReadSet on v2 file: %v, %d entries", err, len(viaV1))
	}
}

func TestReadSetMetaHeaderlessFile(t *testing.T) {
	set := NewSet()
	set.Add(New([]uint64{5}))
	var buf bytes.Buffer
	if err := WriteSet(&buf, set.Sorted()); err != nil {
		t.Fatal(err)
	}
	back, meta, err := ReadSetMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Fatalf("v1 file produced meta %+v", meta)
	}
	if len(back) != 1 {
		t.Fatalf("got %d entries", len(back))
	}
}

func TestReadSetMetaTruncatedHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSetMeta(&buf, FileMeta{ProgHash: 1, Seed: 2, Platform: "p"}, nil); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, _, err := ReadSetMeta(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
