package sig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareSingleWord(t *testing.T) {
	a := New([]uint64{5})
	b := New([]uint64{9})
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Errorf("Compare ordering wrong: %d %d %d", a.Compare(b), b.Compare(a), a.Compare(a))
	}
}

func TestCompareMultiWordMostSignificantFirst(t *testing.T) {
	// First word dominates: {1, 0} > {0, ^0}.
	hi := New([]uint64{1, 0})
	lo := New([]uint64{0, ^uint64(0)})
	if hi.Compare(lo) != 1 {
		t.Error("most-significant-first comparison violated")
	}
}

func TestCompareLengths(t *testing.T) {
	short := New([]uint64{9})
	long := New([]uint64{0, 0})
	if short.Compare(long) != -1 || long.Compare(short) != 1 {
		t.Error("length comparison wrong")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a, b, c uint64) bool {
		s := New([]uint64{a, b, c})
		back, err := FromBytes(s.Bytes())
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBytesBadLength(t *testing.T) {
	if _, err := FromBytes(make([]byte, 7)); err == nil {
		t.Error("FromBytes accepted length 7")
	}
}

func TestKeyUniqueness(t *testing.T) {
	a := New([]uint64{1, 2})
	b := New([]uint64{1, 3})
	c := New([]uint64{1, 2})
	if a.Key() == b.Key() {
		t.Error("distinct signatures share a key")
	}
	if a.Key() != c.Key() {
		t.Error("equal signatures have different keys")
	}
}

func TestSortAndDedup(t *testing.T) {
	sigs := []Signature{
		New([]uint64{3}), New([]uint64{1}), New([]uint64{3}),
		New([]uint64{2}), New([]uint64{1}), New([]uint64{1}),
	}
	u := Dedup(sigs)
	if len(u) != 3 {
		t.Fatalf("Dedup: %d unique, want 3", len(u))
	}
	wantVals := []uint64{1, 2, 3}
	wantCounts := []int{3, 1, 2}
	for i := range u {
		if u[i].Sig.Word(0) != wantVals[i] || u[i].Count != wantCounts[i] {
			t.Errorf("Dedup[%d] = %v x%d, want %d x%d",
				i, u[i].Sig, u[i].Count, wantVals[i], wantCounts[i])
		}
	}
	if !IsSorted(sigs) {
		t.Error("input not sorted in place")
	}
}

func TestDedupEmpty(t *testing.T) {
	if got := Dedup(nil); got != nil {
		t.Errorf("Dedup(nil) = %v, want nil", got)
	}
}

func TestSetMatchesDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sigs []Signature
	set := NewSet()
	for i := 0; i < 500; i++ {
		s := New([]uint64{uint64(rng.Intn(20)), uint64(rng.Intn(3))})
		sigs = append(sigs, s)
		set.Add(s)
	}
	fromSet := set.Sorted()
	fromSlice := Dedup(sigs)
	if len(fromSet) != len(fromSlice) {
		t.Fatalf("Set: %d unique, Dedup: %d", len(fromSet), len(fromSlice))
	}
	for i := range fromSet {
		if !fromSet[i].Sig.Equal(fromSlice[i].Sig) || fromSet[i].Count != fromSlice[i].Count {
			t.Errorf("mismatch at %d: set %v x%d, slice %v x%d", i,
				fromSet[i].Sig, fromSet[i].Count, fromSlice[i].Sig, fromSlice[i].Count)
		}
	}
	if set.Total() != 500 {
		t.Errorf("Total = %d, want 500", set.Total())
	}
}

func TestSetAddReportsNew(t *testing.T) {
	set := NewSet()
	s := New([]uint64{42})
	if !set.Add(s) {
		t.Error("first Add reported duplicate")
	}
	if set.Add(s) {
		t.Error("second Add reported new")
	}
	if set.Len() != 1 {
		t.Errorf("Len = %d, want 1", set.Len())
	}
}

func TestStringFormat(t *testing.T) {
	if got := New([]uint64{0x2, 0x84}).String(); got != "0x2:0x84" {
		t.Errorf("String = %q", got)
	}
	if got := (Signature{}).String(); got != "0x0" {
		t.Errorf("empty String = %q", got)
	}
}

func TestNewCopiesInput(t *testing.T) {
	w := []uint64{1, 2}
	s := New(w)
	w[0] = 99
	if s.Word(0) != 1 {
		t.Error("New aliased caller slice")
	}
	got := s.Words()
	got[1] = 77
	if s.Word(1) != 2 {
		t.Error("Words aliased internal slice")
	}
}

// Property: Compare is a total order consistent with big-endian byte
// comparison of the encodings (equal lengths).
func TestCompareMatchesByteOrder(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a := New([]uint64{a1, a2})
		b := New([]uint64{b1, b2})
		byteCmp := 0
		ab, bb := a.Bytes(), b.Bytes()
		for i := range ab {
			if ab[i] != bb[i] {
				if ab[i] < bb[i] {
					byteCmp = -1
				} else {
					byteCmp = 1
				}
				break
			}
		}
		return a.Compare(b) == byteCmp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZero(t *testing.T) {
	z := Zero(3)
	if z.Len() != 3 {
		t.Fatalf("Len = %d", z.Len())
	}
	for i := 0; i < 3; i++ {
		if z.Word(i) != 0 {
			t.Errorf("word %d = %d", i, z.Word(i))
		}
	}
}

func TestMergeSetsSumsDuplicateCounts(t *testing.T) {
	// Three shards with overlapping signatures: the merge must be the same
	// as one set fed every observation.
	obs := [][]uint64{
		{1}, {3}, {5}, {3}, // shard 0
		{2}, {3}, {5}, // shard 1
		{5}, {5}, {9}, // shard 2
	}
	bounds := []int{0, 4, 7, 10}
	var shards []*Set
	global := NewSet()
	for s := 0; s+1 < len(bounds); s++ {
		set := NewSet()
		for _, w := range obs[bounds[s]:bounds[s+1]] {
			set.Add(New(w))
			global.Add(New(w))
		}
		shards = append(shards, set)
	}
	merged := MergeSets(shards...)
	want := global.Sorted()
	if len(merged) != len(want) {
		t.Fatalf("merged %d uniques, want %d", len(merged), len(want))
	}
	total := 0
	for i := range merged {
		if !merged[i].Sig.Equal(want[i].Sig) || merged[i].Count != want[i].Count {
			t.Errorf("unique %d: got %v x%d, want %v x%d", i,
				merged[i].Sig, merged[i].Count, want[i].Sig, want[i].Count)
		}
		total += merged[i].Count
	}
	if total != len(obs) {
		t.Errorf("merged counts sum to %d, want %d", total, len(obs))
	}
	// The signature 5 appears in every shard: its counts must sum.
	for _, u := range merged {
		if u.Sig.Equal(New([]uint64{5})) && u.Count != 4 {
			t.Errorf("signature 0x5 count = %d, want 4", u.Count)
		}
	}
}

func TestMergeSetsRandomizedMatchesGlobalSet(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(5)
		shards := make([]*Set, k)
		for i := range shards {
			shards[i] = NewSet()
		}
		global := NewSet()
		for i := 0; i < 300; i++ {
			s := New([]uint64{uint64(rng.Intn(10)), uint64(rng.Intn(4))})
			shards[rng.Intn(k)].Add(s)
			global.Add(s)
		}
		merged := MergeSets(shards...)
		want := global.Sorted()
		if len(merged) != len(want) {
			t.Fatalf("trial %d: merged %d uniques, want %d", trial, len(merged), len(want))
		}
		for i := range merged {
			if !merged[i].Sig.Equal(want[i].Sig) || merged[i].Count != want[i].Count {
				t.Fatalf("trial %d: unique %d mismatch", trial, i)
			}
		}
	}
}

func TestMergeSetsDegenerate(t *testing.T) {
	if got := MergeSets(); got != nil {
		t.Errorf("MergeSets() = %v, want nil", got)
	}
	if got := MergeSets(nil, NewSet(), nil); got != nil {
		t.Errorf("MergeSets of empty sets = %v, want nil", got)
	}
	one := NewSet()
	one.Add(New([]uint64{7}))
	one.Add(New([]uint64{7}))
	got := MergeSets(nil, one, NewSet())
	if len(got) != 1 || got[0].Count != 2 {
		t.Errorf("single-set merge = %v, want one unique x2", got)
	}
}
