package sig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareSingleWord(t *testing.T) {
	a := New([]uint64{5})
	b := New([]uint64{9})
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Errorf("Compare ordering wrong: %d %d %d", a.Compare(b), b.Compare(a), a.Compare(a))
	}
}

func TestCompareMultiWordMostSignificantFirst(t *testing.T) {
	// First word dominates: {1, 0} > {0, ^0}.
	hi := New([]uint64{1, 0})
	lo := New([]uint64{0, ^uint64(0)})
	if hi.Compare(lo) != 1 {
		t.Error("most-significant-first comparison violated")
	}
}

func TestCompareLengths(t *testing.T) {
	short := New([]uint64{9})
	long := New([]uint64{0, 0})
	if short.Compare(long) != -1 || long.Compare(short) != 1 {
		t.Error("length comparison wrong")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a, b, c uint64) bool {
		s := New([]uint64{a, b, c})
		back, err := FromBytes(s.Bytes())
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBytesBadLength(t *testing.T) {
	if _, err := FromBytes(make([]byte, 7)); err == nil {
		t.Error("FromBytes accepted length 7")
	}
}

func TestKeyUniqueness(t *testing.T) {
	a := New([]uint64{1, 2})
	b := New([]uint64{1, 3})
	c := New([]uint64{1, 2})
	if a.Key() == b.Key() {
		t.Error("distinct signatures share a key")
	}
	if a.Key() != c.Key() {
		t.Error("equal signatures have different keys")
	}
}

func TestSortAndDedup(t *testing.T) {
	sigs := []Signature{
		New([]uint64{3}), New([]uint64{1}), New([]uint64{3}),
		New([]uint64{2}), New([]uint64{1}), New([]uint64{1}),
	}
	u := Dedup(sigs)
	if len(u) != 3 {
		t.Fatalf("Dedup: %d unique, want 3", len(u))
	}
	wantVals := []uint64{1, 2, 3}
	wantCounts := []int{3, 1, 2}
	for i := range u {
		if u[i].Sig.Word(0) != wantVals[i] || u[i].Count != wantCounts[i] {
			t.Errorf("Dedup[%d] = %v x%d, want %d x%d",
				i, u[i].Sig, u[i].Count, wantVals[i], wantCounts[i])
		}
	}
	if !IsSorted(sigs) {
		t.Error("input not sorted in place")
	}
}

func TestDedupEmpty(t *testing.T) {
	if got := Dedup(nil); got != nil {
		t.Errorf("Dedup(nil) = %v, want nil", got)
	}
}

func TestSetMatchesDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sigs []Signature
	set := NewSet()
	for i := 0; i < 500; i++ {
		s := New([]uint64{uint64(rng.Intn(20)), uint64(rng.Intn(3))})
		sigs = append(sigs, s)
		set.Add(s)
	}
	fromSet := set.Sorted()
	fromSlice := Dedup(sigs)
	if len(fromSet) != len(fromSlice) {
		t.Fatalf("Set: %d unique, Dedup: %d", len(fromSet), len(fromSlice))
	}
	for i := range fromSet {
		if !fromSet[i].Sig.Equal(fromSlice[i].Sig) || fromSet[i].Count != fromSlice[i].Count {
			t.Errorf("mismatch at %d: set %v x%d, slice %v x%d", i,
				fromSet[i].Sig, fromSet[i].Count, fromSlice[i].Sig, fromSlice[i].Count)
		}
	}
	if set.Total() != 500 {
		t.Errorf("Total = %d, want 500", set.Total())
	}
}

func TestSetAddReportsNew(t *testing.T) {
	set := NewSet()
	s := New([]uint64{42})
	if !set.Add(s) {
		t.Error("first Add reported duplicate")
	}
	if set.Add(s) {
		t.Error("second Add reported new")
	}
	if set.Len() != 1 {
		t.Errorf("Len = %d, want 1", set.Len())
	}
}

func TestStringFormat(t *testing.T) {
	if got := New([]uint64{0x2, 0x84}).String(); got != "0x2:0x84" {
		t.Errorf("String = %q", got)
	}
	if got := (Signature{}).String(); got != "0x0" {
		t.Errorf("empty String = %q", got)
	}
}

func TestNewCopiesInput(t *testing.T) {
	w := []uint64{1, 2}
	s := New(w)
	w[0] = 99
	if s.Word(0) != 1 {
		t.Error("New aliased caller slice")
	}
	got := s.Words()
	got[1] = 77
	if s.Word(1) != 2 {
		t.Error("Words aliased internal slice")
	}
}

// Property: Compare is a total order consistent with big-endian byte
// comparison of the encodings (equal lengths).
func TestCompareMatchesByteOrder(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a := New([]uint64{a1, a2})
		b := New([]uint64{b1, b2})
		byteCmp := 0
		ab, bb := a.Bytes(), b.Bytes()
		for i := range ab {
			if ab[i] != bb[i] {
				if ab[i] < bb[i] {
					byteCmp = -1
				} else {
					byteCmp = 1
				}
				break
			}
		}
		return a.Compare(b) == byteCmp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZero(t *testing.T) {
	z := Zero(3)
	if z.Len() != 3 {
		t.Fatalf("Len = %d", z.Len())
	}
	for i := 0; i < 3; i++ {
		if z.Word(i) != 0 {
			t.Errorf("word %d = %d", i, z.Word(i))
		}
	}
}
