// Package sig implements memory-access interleaving signatures (paper §3):
// fixed-shape multi-word unsigned integers produced by the instrumented test
// code, one per test iteration. A signature is the concatenation of
// per-thread signature words; the first thread's words occupy the most
// significant position, and within a thread the first word is most
// significant (paper §4.1's layout, which the authors found yields the best
// structural similarity between adjacent sorted signatures).
//
// The package provides comparison, sorting, de-duplication with occurrence
// counts, and a compact binary encoding used to move signatures off the
// "device" (the simulated platform) to the checking host.
package sig

import (
	"encoding/binary"
	"fmt"
	"slices"
	"strings"
)

// Signature is one execution signature: concatenated per-thread words,
// most significant word first. All signatures produced by the same
// instrumented test have the same number of words, so lexicographic
// comparison over the word slice is numeric comparison.
type Signature struct {
	words []uint64
}

// New returns a signature over the given words (most significant first).
// The slice is copied.
func New(words []uint64) Signature {
	w := make([]uint64, len(words))
	copy(w, words)
	return Signature{words: w}
}

// Zero returns the all-zero signature with n words.
func Zero(n int) Signature { return Signature{words: make([]uint64, n)} }

// Len returns the number of words.
func (s Signature) Len() int { return len(s.words) }

// Word returns the i-th word (0 = most significant).
func (s Signature) Word(i int) uint64 { return s.words[i] }

// Words returns a copy of the word slice, most significant first.
func (s Signature) Words() []uint64 {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	return out
}

// Compare returns -1, 0, or +1 comparing s and t numerically.
// Signatures of different lengths compare by length first; that case never
// arises within one test's signature set.
func (s Signature) Compare(t Signature) int {
	switch {
	case len(s.words) < len(t.words):
		return -1
	case len(s.words) > len(t.words):
		return 1
	}
	for i := range s.words {
		switch {
		case s.words[i] < t.words[i]:
			return -1
		case s.words[i] > t.words[i]:
			return 1
		}
	}
	return 0
}

// Equal reports whether s and t are identical.
func (s Signature) Equal(t Signature) bool { return s.Compare(t) == 0 }

// Key returns a string usable as a map key identifying the signature.
func (s Signature) Key() string { return string(s.AppendBinary(nil)) }

// AppendBinary appends the big-endian encoding of the signature to b.
func (s Signature) AppendBinary(b []byte) []byte {
	for _, w := range s.words {
		b = binary.BigEndian.AppendUint64(b, w)
	}
	return b
}

// Bytes returns the big-endian binary encoding.
func (s Signature) Bytes() []byte { return s.AppendBinary(nil) }

// FromBytes decodes a signature from the big-endian encoding produced by
// Bytes. The length of b must be a multiple of 8.
func FromBytes(b []byte) (Signature, error) {
	if len(b)%8 != 0 {
		return Signature{}, fmt.Errorf("sig: encoding length %d not a multiple of 8", len(b))
	}
	words := make([]uint64, len(b)/8)
	for i := range words {
		words[i] = binary.BigEndian.Uint64(b[i*8:])
	}
	return Signature{words: words}, nil
}

// String renders the signature as grouped hex words, e.g. "0x2:0x84".
func (s Signature) String() string {
	if len(s.words) == 0 {
		return "0x0"
	}
	parts := make([]string, len(s.words))
	for i, w := range s.words {
		parts[i] = fmt.Sprintf("%#x", w)
	}
	return strings.Join(parts, ":")
}

// Sort sorts signatures ascending in place (paper §4.1: adjacent signatures
// correspond to structurally similar constraint graphs).
func Sort(sigs []Signature) {
	slices.SortFunc(sigs, Signature.Compare)
}

// IsSorted reports whether sigs is ascending.
func IsSorted(sigs []Signature) bool {
	return slices.IsSortedFunc(sigs, Signature.Compare)
}

// Unique is a de-duplicated signature with its observation count.
type Unique struct {
	Sig   Signature
	Count int // number of iterations that produced Sig
}

// Dedup sorts sigs and returns the ascending unique signatures with counts.
// The input slice is sorted in place. Duplicate filtering happens here, as
// in the paper's flow where duplicates are dropped while sorting (§4).
func Dedup(sigs []Signature) []Unique {
	if len(sigs) == 0 {
		return nil
	}
	Sort(sigs)
	out := make([]Unique, 0, len(sigs))
	out = append(out, Unique{Sig: sigs[0], Count: 1})
	for _, s := range sigs[1:] {
		if s.Equal(out[len(out)-1].Sig) {
			out[len(out)-1].Count++
		} else {
			out = append(out, Unique{Sig: s, Count: 1})
		}
	}
	return out
}

// Set accumulates signatures online, tracking unique values and counts.
// It is what the on-device collection buffer holds before the host-side
// sort; methods are not safe for concurrent use.
//
// Internally the Set keys uniques by their binary encoding, append-built in
// a reusable scratch buffer: adding an already-seen signature (the common
// case — the paper's runs see far fewer uniques than iterations) performs
// one encode and one map lookup with no allocation at all. Only a genuinely
// new signature pays for the retained key string and entry.
type Set struct {
	index   map[string]int // binary key → index into entries
	entries []Unique
	total   int
	scratch []byte
}

// NewSet returns an empty Set.
func NewSet() *Set {
	return &Set{index: make(map[string]int)}
}

// AddWords inserts one observation of the signature formed by words (most
// significant first), reporting whether it was new. The words are copied
// only when new; the caller keeps ownership of the slice. This is the
// hot-path form of Add.
func (set *Set) AddWords(words []uint64) bool {
	b := set.scratch[:0]
	for _, w := range words {
		b = binary.BigEndian.AppendUint64(b, w)
	}
	set.scratch = b
	set.total++
	// The []byte→string conversion inside a map index does not allocate.
	if i, ok := set.index[string(b)]; ok {
		set.entries[i].Count++
		return false
	}
	set.index[string(b)] = len(set.entries)
	set.entries = append(set.entries, Unique{Sig: New(words), Count: 1})
	return true
}

// Add inserts one observation of s, reporting whether s was new.
func (set *Set) Add(s Signature) bool { return set.AddWords(s.words) }

// AddUnique folds an already-counted unique into the set, weighting the
// observation total and the per-signature count by u.Count, and reports
// whether the signature was new to this set. It is the streaming pipeline's
// incremental merge step: absorbing each completed chunk's uniques as the
// chunk lands is equivalent to a final MergeUniques over all chunks, so the
// global sort can wait for the barrier while dedup happens online.
func (set *Set) AddUnique(u Unique) bool {
	b := u.Sig.AppendBinary(set.scratch[:0])
	set.scratch = b
	set.total += u.Count
	if i, ok := set.index[string(b)]; ok {
		set.entries[i].Count += u.Count
		return false
	}
	set.index[string(b)] = len(set.entries)
	set.entries = append(set.entries, u)
	return true
}

// Entries returns the unique signatures in first-observation order with
// their current counts. The slice is borrowed from the set — it is valid
// until the next Add*/merge call and must not be mutated. Use Sorted for an
// owned, ascending copy.
func (set *Set) Entries() []Unique { return set.entries }

// Len returns the number of unique signatures.
func (set *Set) Len() int { return len(set.entries) }

// Total returns the number of observations added.
func (set *Set) Total() int { return set.total }

// Sorted returns the unique signatures ascending with counts.
func (set *Set) Sorted() []Unique {
	out := make([]Unique, len(set.entries))
	copy(out, set.entries)
	slices.SortFunc(out, func(a, b Unique) int { return a.Sig.Compare(b.Sig) })
	return out
}

// MergeSets merges per-shard signature sets into one global ascending
// unique slice — a k-way merge over each set's already-sorted uniques,
// summing the occurrence counts of signatures observed by several shards.
// It is the reduction step of the sharded execution pipeline; nil and empty
// sets are skipped. MergeSets of a single set is equivalent to its Sorted.
func MergeSets(sets ...*Set) []Unique {
	lists := make([][]Unique, 0, len(sets))
	for _, s := range sets {
		if s == nil || s.Len() == 0 {
			continue
		}
		lists = append(lists, s.Sorted())
	}
	return MergeUniques(lists...)
}

// MergeUniques k-way merges already-sorted unique lists, summing the counts
// of signatures present in several lists. Nil and empty lists are skipped;
// a single non-empty list is returned as-is (not copied). It generalizes
// MergeSets to pre-sorted slices, e.g. a checkpointed set merged with the
// post-resume shards' sets.
func MergeUniques(lists ...[]Unique) []Unique {
	kept := make([][]Unique, 0, len(lists))
	size := 0
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		kept = append(kept, l)
		size += len(l)
	}
	lists = kept
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	heads := make([]int, len(lists))
	out := make([]Unique, 0, size)
	for {
		best := -1
		for li, l := range lists {
			if heads[li] >= len(l) {
				continue
			}
			if best < 0 || l[heads[li]].Sig.Compare(lists[best][heads[best]].Sig) < 0 {
				best = li
			}
		}
		if best < 0 {
			return out
		}
		u := lists[best][heads[best]]
		heads[best]++
		if n := len(out); n > 0 && out[n-1].Sig.Equal(u.Sig) {
			out[n-1].Count += u.Count
		} else {
			out = append(out, u)
		}
	}
}
