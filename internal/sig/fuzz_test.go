package sig

import (
	"bytes"
	"testing"
)

// FuzzReadSet throws arbitrary bytes at the persistence parser: it must
// never panic or over-allocate, and anything it accepts must re-serialize
// byte-identically.
func FuzzReadSet(f *testing.F) {
	var good bytes.Buffer
	set := NewSet()
	set.Add(New([]uint64{1, 2}))
	set.Add(New([]uint64{3, 4}))
	if err := WriteSet(&good, set.Sorted()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte("MTCSIG01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		uniques, err := ReadSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteSet(&out, uniques); err != nil {
			t.Fatalf("accepted set failed to re-serialize: %v", err)
		}
		back, err := ReadSet(&out)
		if err != nil {
			t.Fatalf("re-serialized set rejected: %v", err)
		}
		if len(back) != len(uniques) {
			t.Fatalf("round trip changed cardinality: %d -> %d", len(uniques), len(back))
		}
	})
}
