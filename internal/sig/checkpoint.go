package sig

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Campaign checkpoints: the merged unique signature set collected so far,
// plus enough identity to refuse resuming the wrong campaign. A checkpoint
// written after iteration N and a fresh runner skipped past N reproduce the
// uninterrupted campaign exactly (the runner draws one master value per
// iteration, so skip-ahead is bit-faithful), which is why the payload needs
// nothing beyond the signature set.
//
// Layout (all little-endian):
//
//	magic     [8]byte  "MTCCKPT1"
//	seed      uint64   campaign seed (two's complement of the int64)
//	progHash  uint64   FNV-64a of the program's text format
//	completed uint32   iterations covered by the set
//	payload            WriteSet encoding of the unique set
var ckptMagic = [8]byte{'M', 'T', 'C', 'C', 'K', 'P', 'T', '1'}

// Checkpoint is a campaign's resumable progress.
type Checkpoint struct {
	Seed      int64
	ProgHash  uint64
	Completed int
	Uniques   []Unique
}

// WriteCheckpoint serializes a checkpoint.
func WriteCheckpoint(w io.Writer, ck Checkpoint) error {
	if ck.Completed < 0 {
		return fmt.Errorf("sig: negative checkpoint iteration count %d", ck.Completed)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(ck.Seed), ck.ProgHash} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(ck.Completed)); err != nil {
		return err
	}
	if err := WriteSet(bw, ck.Uniques); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (Checkpoint, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return Checkpoint{}, fmt.Errorf("sig: reading checkpoint magic: %w", err)
	}
	if got != ckptMagic {
		return Checkpoint{}, fmt.Errorf("sig: bad checkpoint magic %q", got[:])
	}
	var seed, progHash uint64
	var completed uint32
	if err := binary.Read(br, binary.LittleEndian, &seed); err != nil {
		return Checkpoint{}, err
	}
	if err := binary.Read(br, binary.LittleEndian, &progHash); err != nil {
		return Checkpoint{}, err
	}
	if err := binary.Read(br, binary.LittleEndian, &completed); err != nil {
		return Checkpoint{}, err
	}
	if completed > 1<<30 {
		return Checkpoint{}, fmt.Errorf("sig: implausible checkpoint iteration count %d", completed)
	}
	uniques, err := ReadSet(br)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("sig: checkpoint payload: %w", err)
	}
	return Checkpoint{
		Seed:      int64(seed),
		ProgHash:  progHash,
		Completed: int(completed),
		Uniques:   uniques,
	}, nil
}
