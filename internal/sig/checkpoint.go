package sig

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Campaign checkpoints: the merged unique signature set collected so far,
// plus enough identity to refuse resuming the wrong campaign. A checkpoint
// written after iteration N and a fresh runner skipped past N reproduce the
// uninterrupted campaign exactly (the runner draws one master value per
// iteration, so skip-ahead is bit-faithful), which is why the payload needs
// nothing beyond the signature set.
//
// Layout (all little-endian):
//
//	magic     [8]byte  "MTCCKPT1"
//	seed      uint64   campaign seed (two's complement of the int64)
//	progHash  uint64   FNV-64a of the program's text format
//	completed uint32   iterations covered by the set
//	payload            WriteSet encoding of the unique set
//
// A distributed campaign's checkpoint appends the optional dist section:
// chunks complete out of order under lease-based dispatch, so coverage is a
// per-chunk bitmap plus lease state rather than a contiguous prefix, and the
// per-chunk execution counters let a restarted server rebuild a report
// bit-identical to an uninterrupted run. Readers of the base format that
// predate the section stop at the payload; ReadCheckpoint detects it by its
// magic and otherwise returns Dist == nil:
//
//	distMagic [8]byte  "MTCDIST1"
//	chunkSize uint32   iterations per grid chunk
//	nChunks   uint32   chunks in the campaign grid
//	per chunk (ascending index):
//	  status    uint8   0 pending, 1 leased, 2 done
//	  attempt   uint16  dispatch count so far
//	  worker    uint16 length + bytes (leased chunks: the lease holder)
//	  done chunks additionally carry:
//	    iterations uint32, cycles uint64, squashes uint32,
//	    asserts    uint16 count, each uint16 length + bytes
var ckptMagic = [8]byte{'M', 'T', 'C', 'C', 'K', 'P', 'T', '1'}

var distMagic = [8]byte{'M', 'T', 'C', 'D', 'I', 'S', 'T', '1'}

// Chunk lease states recorded in the dist checkpoint section.
const (
	// ChunkPending marks a chunk awaiting dispatch.
	ChunkPending uint8 = iota
	// ChunkLeased marks a chunk leased to a worker at save time; a restart
	// treats it as pending (the lease died with the server) but keeps its
	// attempt count so redispatch backoff survives.
	ChunkLeased
	// ChunkDone marks a completed, validated chunk.
	ChunkDone
)

// CkptChunk is one grid chunk's state in a distributed checkpoint. The
// execution counters are meaningful only for ChunkDone chunks; Worker only
// for ChunkLeased ones (the outstanding lease holder at save time).
type CkptChunk struct {
	Status  uint8
	Attempt int
	Worker  string

	Iterations int
	Cycles     int64
	Squashes   int
	Asserts    []string
}

// DistState is the distributed extension of a checkpoint: the chunk grid
// with per-chunk completion, outstanding leases, and execution counters.
// The checkpoint's Uniques hold the merged set of the done chunks.
type DistState struct {
	ChunkSize int
	Chunks    []CkptChunk
}

// DoneChunks counts completed chunks.
func (d *DistState) DoneChunks() int {
	n := 0
	for i := range d.Chunks {
		if d.Chunks[i].Status == ChunkDone {
			n++
		}
	}
	return n
}

// Checkpoint is a campaign's resumable progress.
type Checkpoint struct {
	Seed      int64
	ProgHash  uint64
	Completed int
	Uniques   []Unique
	// Dist, when non-nil, marks a distributed campaign's checkpoint:
	// Completed sums the done chunks' iterations (not a contiguous prefix),
	// so the in-process prefix-resume path must reject it.
	Dist *DistState
}

// WriteCheckpoint serializes a checkpoint.
func WriteCheckpoint(w io.Writer, ck Checkpoint) error {
	if ck.Completed < 0 {
		return fmt.Errorf("sig: negative checkpoint iteration count %d", ck.Completed)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(ck.Seed), ck.ProgHash} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(ck.Completed)); err != nil {
		return err
	}
	if err := WriteSet(bw, ck.Uniques); err != nil {
		return err
	}
	if ck.Dist != nil {
		if err := writeDistState(bw, ck.Dist); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeDistState(bw *bufio.Writer, d *DistState) error {
	if d.ChunkSize <= 0 {
		return fmt.Errorf("sig: non-positive checkpoint chunk size %d", d.ChunkSize)
	}
	if _, err := bw.Write(distMagic[:]); err != nil {
		return err
	}
	for _, v := range []uint32{uint32(d.ChunkSize), uint32(len(d.Chunks))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	writeString := func(s string) error {
		if len(s) > 0xffff {
			return fmt.Errorf("sig: checkpoint string too long (%d bytes)", len(s))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	for i := range d.Chunks {
		c := &d.Chunks[i]
		if c.Status > ChunkDone {
			return fmt.Errorf("sig: chunk %d has invalid status %d", i, c.Status)
		}
		if err := bw.WriteByte(c.Status); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(c.Attempt)); err != nil {
			return err
		}
		if err := writeString(c.Worker); err != nil {
			return err
		}
		if c.Status != ChunkDone {
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(c.Iterations)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(c.Cycles)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(c.Squashes)); err != nil {
			return err
		}
		if len(c.Asserts) > 0xffff {
			return fmt.Errorf("sig: chunk %d has implausibly many asserts (%d)", i, len(c.Asserts))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(c.Asserts))); err != nil {
			return err
		}
		for _, a := range c.Asserts {
			if err := writeString(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (Checkpoint, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return Checkpoint{}, fmt.Errorf("sig: reading checkpoint magic: %w", err)
	}
	if got != ckptMagic {
		return Checkpoint{}, fmt.Errorf("sig: bad checkpoint magic %q", got[:])
	}
	var seed, progHash uint64
	var completed uint32
	if err := binary.Read(br, binary.LittleEndian, &seed); err != nil {
		return Checkpoint{}, err
	}
	if err := binary.Read(br, binary.LittleEndian, &progHash); err != nil {
		return Checkpoint{}, err
	}
	if err := binary.Read(br, binary.LittleEndian, &completed); err != nil {
		return Checkpoint{}, err
	}
	if completed > 1<<30 {
		return Checkpoint{}, fmt.Errorf("sig: implausible checkpoint iteration count %d", completed)
	}
	uniques, err := ReadSet(br)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("sig: checkpoint payload: %w", err)
	}
	ck := Checkpoint{
		Seed:      int64(seed),
		ProgHash:  progHash,
		Completed: int(completed),
		Uniques:   uniques,
	}
	// The dist section is optional and trailing: plain checkpoints (and any
	// written before the section existed) end at the payload.
	peek, err := br.Peek(len(distMagic))
	if err == io.EOF || (err == nil && len(peek) < len(distMagic)) {
		return ck, nil
	}
	if err != nil {
		return Checkpoint{}, fmt.Errorf("sig: checkpoint trailer: %w", err)
	}
	if [8]byte(peek) != distMagic {
		return Checkpoint{}, fmt.Errorf("sig: bad checkpoint trailer magic %q", peek)
	}
	br.Discard(len(distMagic))
	d, err := readDistState(br)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("sig: checkpoint dist section: %w", err)
	}
	ck.Dist = d
	return ck, nil
}

func readDistState(br *bufio.Reader) (*DistState, error) {
	var chunkSize, nChunks uint32
	if err := binary.Read(br, binary.LittleEndian, &chunkSize); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nChunks); err != nil {
		return nil, err
	}
	if chunkSize == 0 || chunkSize > 1<<20 || nChunks > 1<<24 {
		return nil, fmt.Errorf("sig: implausible dist header (%d-iteration chunks, %d chunks)", chunkSize, nChunks)
	}
	readString := func() (string, error) {
		var n uint16
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	d := &DistState{ChunkSize: int(chunkSize), Chunks: make([]CkptChunk, nChunks)}
	for i := range d.Chunks {
		c := &d.Chunks[i]
		status, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		if status > ChunkDone {
			return nil, fmt.Errorf("chunk %d: invalid status %d", i, status)
		}
		c.Status = status
		var attempt uint16
		if err := binary.Read(br, binary.LittleEndian, &attempt); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		c.Attempt = int(attempt)
		if c.Worker, err = readString(); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		if c.Status != ChunkDone {
			continue
		}
		var iters, squashes uint32
		var cycles uint64
		if err := binary.Read(br, binary.LittleEndian, &iters); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cycles); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &squashes); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		if iters > chunkSize {
			return nil, fmt.Errorf("chunk %d: %d iterations exceed the %d-iteration chunk size", i, iters, chunkSize)
		}
		c.Iterations, c.Cycles, c.Squashes = int(iters), int64(cycles), int(squashes)
		var nAsserts uint16
		if err := binary.Read(br, binary.LittleEndian, &nAsserts); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		for a := 0; a < int(nAsserts); a++ {
			s, err := readString()
			if err != nil {
				return nil, fmt.Errorf("chunk %d assert %d: %w", i, a, err)
			}
			c.Asserts = append(c.Asserts, s)
		}
	}
	return d, nil
}
