package obs

import "time"

// Signature-corpus events. The cross-campaign corpus (internal/corpus)
// turns repeated interleavings into cache hits that skip decode and
// checking; these events make the cache's effectiveness — hit rates,
// growth, per-program saturation — operationally visible. Like the dist
// events they extend the observer layer through an optional interface,
// so existing Observer implementations keep compiling.
//
// Corpus hits are a pure function of (unique set, corpus content), both
// determinism-fixed, so every corpus quantity belongs in the
// worker-invariant Totals of a metrics snapshot: one CorpusLookup event
// fires per campaign at the sort barrier (never per worker or per
// chunk), and one CorpusFlush fires per persisted append batch.

// CorpusOp identifies a corpus interaction by a campaign.
type CorpusOp uint8

const (
	// CorpusLookup marks the campaign's merged unique set being partitioned
	// against the corpus at the sort barrier: Hits skip decode+check,
	// Misses proceed as a cold run would.
	CorpusLookup CorpusOp = iota
	// CorpusFlush marks newly proven-acyclic signatures being persisted
	// atomically (violating signatures are never appended).
	CorpusFlush
	// CorpusIgnored marks an attached corpus the campaign refused to use
	// (load failure, signature-width mismatch); the campaign ran cold.
	CorpusIgnored
)

func (op CorpusOp) String() string {
	switch op {
	case CorpusLookup:
		return "lookup"
	case CorpusFlush:
		return "flush"
	case CorpusIgnored:
		return "ignored"
	}
	return "corpus-op?"
}

// CorpusEvent fires on signature-corpus interactions.
type CorpusEvent struct {
	Op CorpusOp
	// Program, Platform, and MCM are the corpus key coordinates.
	Program  uint64
	Platform string
	MCM      string
	// Hits and Misses partition the campaign's unique set (CorpusLookup).
	Hits   int
	Misses int
	// Appended is the number of newly staged known-good signatures
	// persisted by a CorpusFlush.
	Appended int
	// Known is the corpus's known-good count for this key after the op —
	// the per-program saturation denominator.
	Known int
	// Bytes is the file size written by a CorpusFlush.
	Bytes int64
	// Err carries the degradation cause for CorpusIgnored.
	Err  error
	Time time.Time
}

// CorpusObserver is the optional extension an Observer may implement to
// receive signature-corpus events. Implementations must be safe for
// concurrent use and must not block.
type CorpusObserver interface {
	CorpusEvent(e CorpusEvent)
}

// EmitCorpus delivers a corpus event to o if it implements
// CorpusObserver; nil-safe, so emission sites stay a single call.
func EmitCorpus(o Observer, e CorpusEvent) {
	if c, ok := o.(CorpusObserver); ok {
		c.CorpusEvent(e)
	}
}

// CorpusEvent implements CorpusObserver, forwarding to members that do.
func (m multi) CorpusEvent(e CorpusEvent) {
	for _, o := range m {
		EmitCorpus(o, e)
	}
}
