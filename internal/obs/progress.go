package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a rate-limited human-readable campaign logger: one line per
// interesting boundary (campaign start/end, retries, checkpoints, the
// final merge) and at most one throughput line per Every interval while a
// stage is streaming shard completions. It is meant for a terminal or a
// log file during a multi-hour campaign, not for machine consumption — use
// Metrics for that.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
	last  time.Time

	// Running campaign state, reset at CampaignStart.
	target      int // requested iterations
	iterations  int
	uniques     int
	decoded     int
	quarantined int
	graphs      int
	violations  int
}

// NewProgress returns a progress logger writing to w, emitting rate-limited
// lines at most once per every (0 selects 500ms).
func NewProgress(w io.Writer, every time.Duration) *Progress {
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	return &Progress{w: w, every: every}
}

// logf always prints; tickf prints only when the rate limiter allows.
// Callers hold p.mu.
func (p *Progress) logf(format string, args ...any) {
	fmt.Fprintf(p.w, "obs: "+format+"\n", args...)
	p.last = time.Now()
}

func (p *Progress) tickf(format string, args ...any) {
	if time.Since(p.last) < p.every {
		return
	}
	p.logf(format, args...)
}

// CampaignStart implements Observer.
func (p *Progress) CampaignStart(e CampaignStart) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.target = e.Iterations
	p.iterations, p.uniques, p.decoded, p.quarantined, p.graphs, p.violations = 0, 0, 0, 0, 0, 0
	if e.Iterations == 0 {
		p.logf("campaign %s: host-side check on %s (%s), %d workers",
			e.Program, e.Platform, e.Model, e.Workers)
		return
	}
	p.logf("campaign %s: %d iterations on %s (%s), %d workers",
		e.Program, e.Iterations, e.Platform, e.Model, e.Workers)
}

// ShardStart implements Observer.
func (p *Progress) ShardStart(e ShardStart) {}

// ShardEnd implements Observer.
func (p *Progress) ShardEnd(e ShardEnd) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Stage {
	case StageExecute:
		if e.WillRetry {
			// Operational signal, never rate-limited: the campaign is
			// degrading and recovering in real time.
			p.logf("execute: shard %d attempt %d failed after %d iterations (%v); retrying in %v",
				e.Shard, e.Attempt+1, e.Iterations, e.Err, e.Backoff)
			return
		}
		p.iterations += e.Iterations
		if p.target > 0 {
			p.tickf("execute: %d/%d iterations (%.1f%%)",
				p.iterations, p.target, 100*float64(p.iterations)/float64(p.target))
		}
	case StageDecode:
		p.decoded += e.Decoded
		p.quarantined += e.QuarantinedDecode + e.QuarantinedEdges
		p.tickf("decode: %d/%d signatures, %d quarantined", p.decoded, p.uniques, p.quarantined)
	case StageCheck:
		p.graphs += e.Graphs
		p.violations += e.Violations
		p.tickf("check: %d graphs, %d violations", p.graphs, p.violations)
	}
}

// MergeDone implements Observer.
func (p *Progress) MergeDone(e MergeDone) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.uniques = e.Uniques
	if e.Final {
		if n := e.Injected.Total(); n > 0 {
			p.logf("merge: %d uniques over %d iterations (%d faults injected)",
				e.Uniques, e.Completed, n)
			return
		}
		p.logf("merge: %d uniques over %d iterations", e.Uniques, e.Completed)
		return
	}
	p.tickf("merge: %d uniques over %d iterations", e.Uniques, e.Completed)
}

// Checkpoint implements Observer.
func (p *Progress) Checkpoint(e Checkpoint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e.Op == CheckpointResumed {
		p.iterations += e.Completed
		p.logf("checkpoint: resumed %d iterations (%d uniques) from %s", e.Completed, e.Uniques, e.Path)
		return
	}
	p.logf("checkpoint: saved %d iterations (%d uniques, %d bytes) to %s",
		e.Completed, e.Uniques, e.Bytes, e.Path)
}

// WorkerEvent implements DistObserver: worker-lifecycle transitions are
// operational signals and never rate-limited.
func (p *Progress) WorkerEvent(e WorkerEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Op {
	case WorkerJoin:
		p.logf("dist: worker %s joined", e.Worker)
	case WorkerLost:
		p.logf("dist: worker %s lost (%d leases returned to the queue)", e.Worker, e.Leases)
	case WorkerQuarantined:
		p.logf("dist: worker %s QUARANTINED after %d rejected uploads (%d leases revoked)",
			e.Worker, e.Strikes, e.Leases)
	}
}

// LeaseEvent implements DistObserver: grants are rate-limited chatter,
// failures (expiry, redispatch, rejects) always print.
func (p *Progress) LeaseEvent(e LeaseEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Op {
	case LeaseGranted:
		p.tickf("dist: chunk %d of %s leased to %s (attempt %d)", e.Chunk, e.Job, e.Worker, e.Attempt)
	case LeaseExpired:
		p.logf("dist: chunk %d of %s lease expired on %s", e.Chunk, e.Job, e.Worker)
	case ChunkRedispatched:
		p.logf("dist: chunk %d of %s redispatched to %s (attempt %d)", e.Chunk, e.Job, e.Worker, e.Attempt)
	case ChunkDuplicate:
		p.logf("dist: chunk %d of %s duplicate completion from %s discarded", e.Chunk, e.Job, e.Worker)
	case UploadRejected:
		p.logf("dist: chunk %d of %s upload from %s REJECTED", e.Chunk, e.Job, e.Worker)
	}
}

// CampaignEnd implements Observer.
func (p *Progress) CampaignEnd(e CampaignEnd) {
	p.mu.Lock()
	defer p.mu.Unlock()
	status := "done"
	switch {
	case e.Err != nil:
		status = fmt.Sprintf("failed (%v)", e.Err)
	case e.Partial:
		status = "done (partial)"
	}
	p.logf("campaign %s in %v: %d iterations, %d uniques, %d quarantined, %d violations",
		status, e.Duration.Round(time.Millisecond), e.Iterations, e.Uniques, e.Quarantined, e.Violations)
}
