package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace writes pipeline events as a Chrome trace_event JSON array —
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing — so the
// shard/decode/check timeline of a campaign can be inspected visually:
// which execution shards straggled, how long the merge gated decoding, how
// checking shards were balanced.
//
// Each stage renders as one process row (named via process_name metadata)
// with one thread row per shard; shard attempts are complete ("X") spans
// carrying their counters as args, and merges/checkpoints are instant
// events. Timestamps are microseconds relative to the first event.
//
// Close finishes the JSON array; both viewers also accept an unterminated
// array, so a trace cut short by a crash still loads.
type Trace struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	started bool // first event seen: base timestamp fixed, '[' written
	n       int  // events written, for comma placement
	base    time.Time
	err     error
}

// NewTraceJSON returns a trace writer emitting to w. The caller must call
// Close after the campaign to terminate the JSON array and flush.
func NewTraceJSON(w io.Writer) *Trace {
	return &Trace{bw: bufio.NewWriter(w)}
}

// traceEvent is one trace_event entry. Complete events ("X") carry Dur;
// instant ("i") and metadata ("M") events do not.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// Stage rows: pid per stage keeps Perfetto grouping stable. Campaign-level
// events live on their own row.
const pidCampaign = 100

func pidFor(s Stage) int { return int(s) + 1 }

func (t *Trace) ts(at time.Time) int64 {
	if at.IsZero() {
		return 0
	}
	return at.Sub(t.base).Microseconds()
}

// write appends one event, lazily opening the array and emitting the
// process-name metadata on the first event. Callers hold t.mu.
func (t *Trace) write(ev traceEvent) {
	if t.err != nil {
		return
	}
	if !t.started {
		t.started = true
		if _, t.err = t.bw.WriteString("[\n"); t.err != nil {
			return
		}
		for _, meta := range []traceEvent{
			{Name: "process_name", Ph: "M", PID: pidCampaign, Args: map[string]any{"name": "campaign"}},
			{Name: "process_name", Ph: "M", PID: pidFor(StageExecute), Args: map[string]any{"name": "execute"}},
			{Name: "process_name", Ph: "M", PID: pidFor(StageMerge), Args: map[string]any{"name": "merge"}},
			{Name: "process_name", Ph: "M", PID: pidFor(StageDecode), Args: map[string]any{"name": "decode"}},
			{Name: "process_name", Ph: "M", PID: pidFor(StageCheck), Args: map[string]any{"name": "check"}},
			{Name: "process_name", Ph: "M", PID: pidFor(StageCheckpoint), Args: map[string]any{"name": "checkpoint"}},
		} {
			if t.err = t.encode(meta); t.err != nil {
				return
			}
		}
	}
	t.err = t.encode(ev)
}

func (t *Trace) encode(ev traceEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if t.n > 0 {
		if _, err := t.bw.WriteString(",\n"); err != nil {
			return err
		}
	}
	t.n++
	_, err = t.bw.Write(b)
	return err
}

// CampaignStart implements Observer.
func (t *Trace) CampaignStart(e CampaignStart) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.base = e.Time
	}
	t.write(traceEvent{
		Name: "campaign " + e.Program, Cat: "campaign", Ph: "i",
		TS: t.ts(e.Time), PID: pidCampaign, TID: 1, Scope: "g",
		Args: map[string]any{
			"program": e.Program, "platform": e.Platform, "model": e.Model,
			"iterations": e.Iterations, "workers": e.Workers,
		},
	})
}

// ShardStart implements Observer. Shard spans are written as complete
// events at ShardEnd (which carries the duration); starts need no entry.
func (t *Trace) ShardStart(e ShardStart) {}

// ShardEnd implements Observer.
func (t *Trace) ShardEnd(e ShardEnd) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.base = e.Time.Add(-e.Duration)
	}
	name := e.Stage.String()
	args := map[string]any{"start": e.Start, "count": e.Count}
	switch e.Stage {
	case StageExecute:
		args["iterations"] = e.Iterations
		args["cycles"] = e.Cycles
		args["uniques"] = e.Uniques
		if e.Attempt > 0 {
			args["attempt"] = e.Attempt
		}
	case StageDecode:
		args["decoded"] = e.Decoded
		args["quarantined"] = e.QuarantinedDecode + e.QuarantinedEdges
	case StageCheck:
		args["graphs"] = e.Graphs
		args["sorted_vertices"] = e.SortedVertices
		args["backward_edges"] = e.BackwardEdges
		args["violations"] = e.Violations
		if e.Backend != "" {
			args["backend"] = e.Backend
		}
		if e.ClockUpdates > 0 {
			args["clock_updates"] = e.ClockUpdates
		}
		if e.Propagations > 0 {
			args["propagations"] = e.Propagations
		}
	}
	if e.Err != nil {
		args["error"] = e.Err.Error()
		if e.WillRetry {
			name += " (retried)"
		}
	}
	t.write(traceEvent{
		Name: name, Cat: e.Stage.String(), Ph: "X",
		TS: t.ts(e.Time.Add(-e.Duration)), Dur: e.Duration.Microseconds(),
		PID: pidFor(e.Stage), TID: e.Shard + 1, Args: args,
	})
}

// MergeDone implements Observer.
func (t *Trace) MergeDone(e MergeDone) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.base = e.Time
	}
	t.write(traceEvent{
		Name: "merge", Cat: "merge", Ph: "i",
		TS: t.ts(e.Time), PID: pidFor(StageMerge), TID: 1, Scope: "p",
		Args: map[string]any{
			"completed": e.Completed, "uniques": e.Uniques,
			"injected_faults": e.Injected.Total(), "final": e.Final,
		},
	})
}

// Checkpoint implements Observer.
func (t *Trace) Checkpoint(e Checkpoint) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.base = e.Time
	}
	t.write(traceEvent{
		Name: "checkpoint " + e.Op.String(), Cat: "checkpoint", Ph: "i",
		TS: t.ts(e.Time), PID: pidFor(StageCheckpoint), TID: 1, Scope: "p",
		Args: map[string]any{
			"completed": e.Completed, "uniques": e.Uniques, "bytes": e.Bytes, "path": e.Path,
		},
	})
}

// CampaignEnd implements Observer.
func (t *Trace) CampaignEnd(e CampaignEnd) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.base = e.Time.Add(-e.Duration)
	}
	args := map[string]any{
		"iterations": e.Iterations, "uniques": e.Uniques,
		"quarantined": e.Quarantined, "violations": e.Violations,
	}
	if e.Err != nil {
		args["error"] = e.Err.Error()
	}
	t.write(traceEvent{
		Name: "campaign", Cat: "campaign", Ph: "X",
		TS: t.ts(e.Time.Add(-e.Duration)), Dur: e.Duration.Microseconds(),
		PID: pidCampaign, TID: 1, Args: args,
	})
}

// Close terminates the JSON array and flushes buffered events. It reports
// the first write or encoding error encountered over the trace's lifetime.
func (t *Trace) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if !t.started {
		if _, err := t.bw.WriteString("[\n"); err != nil {
			return err
		}
	}
	if _, err := t.bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return t.bw.Flush()
}
