package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics aggregates pipeline events into atomic counters, split into two
// groups with different guarantees:
//
//   - Totals are worker-invariant: for the same campaign configuration they
//     are bit-identical for every Workers value, including under fault
//     injection, because they aggregate only quantities the pipeline's
//     determinism contract fixes — final-attempt execution counters, the
//     merged unique set, per-signature quarantine verdicts, and checking
//     verdicts.
//
//   - Effort records how the work was actually partitioned — shard
//     attempts, retries, sorted vertices (each checking shard's first graph
//     pays a boundary re-sort), stage wall time — and legitimately varies
//     with Workers and machine load.
//
// All event methods are safe for concurrent use and allocation-free except
// for growth-curve appends (one per merge, never per iteration).
type Metrics struct {
	// Invariant totals.
	campaigns    atomic.Int64
	iterations   atomic.Int64
	cycles       atomic.Int64
	squashes     atomic.Int64
	asserts      atomic.Int64
	uniques      atomic.Int64 // final merged set of the last campaign (gauge)
	fBitFlip     atomic.Int64
	fTruncate    atomic.Int64
	fDuplicate   atomic.Int64
	fOutOfRange  atomic.Int64
	decoded      atomic.Int64
	quarDecode   atomic.Int64
	quarEdges    atomic.Int64
	graphs       atomic.Int64
	violations   atomic.Int64
	ckptSaves    atomic.Int64
	ckptBytes    atomic.Int64
	ckptResumes  atomic.Int64
	resumedIters atomic.Int64

	// Signature-corpus counters (CorpusObserver events). Hits partition the
	// determinism-fixed unique set against the corpus content at the sort
	// barrier, so they are worker-invariant and belong with the totals.
	corpusHits    atomic.Int64
	corpusMisses  atomic.Int64
	corpusAppends atomic.Int64
	corpusIgnored atomic.Int64

	// Partition-dependent effort.
	shardAttempts  atomic.Int64
	shardRetries   atomic.Int64
	retriedIters   atomic.Int64 // iterations executed by attempts that were discarded
	sortedVertices atomic.Int64
	backwardEdges  atomic.Int64
	clockUpdates   atomic.Int64
	propagations   atomic.Int64
	checkShards    atomic.Int64
	complete       atomic.Int64
	noResort       atomic.Int64
	incremental    atomic.Int64
	maxWindow      atomic.Int64
	stageNanos     [numStages]atomic.Int64

	// Distributed-campaign counters (DistObserver events from the dist
	// server); zero for in-process campaigns.
	distJoins       atomic.Int64
	distLost        atomic.Int64
	distQuarantined atomic.Int64
	distLeases      atomic.Int64
	distExpired     atomic.Int64
	distRedispatch  atomic.Int64
	distDuplicates  atomic.Int64
	distRejects     atomic.Int64

	mu    sync.Mutex
	curve []CurvePoint
	// Per-worker dist accounting, keyed by worker ID (map writes are rare —
	// once per worker event, never per iteration).
	workers map[string]*WorkerCounts
	// Per-program corpus accounting, keyed by the corpus key coordinates
	// (one write per campaign, never per iteration).
	corpusProgs map[string]*CorpusProgram
}

// WorkerCounts is one worker's per-ID dist accounting.
type WorkerCounts struct {
	Strikes     int64 // upload-validation failures
	Quarantined bool
	Lost        int64 // lease deadlines missed
}

// CorpusProgram is one corpus key's accounting: how saturated the corpus
// is for this (program, platform, MCM) — Hits/(Hits+Misses) is the warm
// fraction, Known the corpus's known-good count after the last event.
type CorpusProgram struct {
	Program  uint64
	Platform string
	MCM      string
	Known    int64
	Hits     int64
	Misses   int64
}

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics { return &Metrics{} }

// CurvePoint is one sample of the unique-interleaving growth curve (the
// paper's Fig. 8 metric over campaign time), taken at each merge boundary.
type CurvePoint struct {
	Iterations int
	Uniques    int
}

// Totals is the worker-invariant aggregate: identical for every Workers
// value on the same campaign configuration.
type Totals struct {
	Campaigns         int64
	Iterations        int64
	Cycles            int64
	Squashes          int64
	Asserts           int64
	Uniques           int64 // final merged unique set of the last campaign
	Faults            FaultCounts
	Decoded           int64
	QuarantinedDecode int64
	QuarantinedEdges  int64
	Graphs            int64
	Violations        int64
	CheckpointSaves   int64
	CheckpointBytes   int64
	CheckpointResumes int64
	ResumedIterations int64
	// Corpus counters: unique signatures that skipped decode+check as
	// corpus hits, those that proceeded cold, and newly proven-acyclic
	// signatures appended. CorpusIgnored counts campaigns that refused an
	// attached corpus (load failure or width mismatch) and ran cold.
	CorpusHits    int64
	CorpusMisses  int64
	CorpusAppends int64
	CorpusIgnored int64
	Curve         []CurvePoint
}

// Effort is the partition-dependent accounting: it varies with Workers
// (each checking shard's first graph pays a full boundary sort; fault plans
// are keyed by shard blocks) and with wall-clock conditions.
type Effort struct {
	ShardAttempts     int64
	ShardRetries      int64
	RetriedIterations int64
	SortedVertices    int64
	BackwardEdges     int64
	// ClockUpdates counts clock joins that changed a clock — the
	// vector-clock backend's effort metric; zero for the sorting backends.
	ClockUpdates int64
	// Propagations counts domain-bound tightenings — the constraint-solver
	// backend's effort metric; zero for every other backend.
	Propagations int64
	// CheckShards counts checking shard completions. A serial backend
	// contributes one per campaign regardless of Workers, so the counter
	// reflects the parallelism that actually happened.
	CheckShards  int64
	Complete     int64
	NoResort     int64
	Incremental  int64
	MaxWindow    int64
	ExecuteNanos int64
	DecodeNanos  int64
	CheckNanos   int64
}

// Dist aggregates the distributed-campaign robustness events: how the lease
// protocol, quarantine, and redispatch machinery actually behaved. All zero
// for in-process campaigns.
type Dist struct {
	WorkerJoins        int64
	WorkersLost        int64
	WorkersQuarantined int64
	LeasesGranted      int64
	LeasesExpired      int64
	Redispatched       int64
	Duplicates         int64
	UploadRejects      int64
	// Workers holds the per-worker breakdown, keyed by worker ID.
	Workers map[string]WorkerCounts
}

// Snapshot is a consistent copy of the aggregated metrics.
type Snapshot struct {
	Totals Totals
	Effort Effort
	Dist   Dist
	// Corpus holds the per-program signature-corpus breakdown, keyed by
	// "proghash/platform/mcm"; nil when no corpus was attached.
	Corpus map[string]CorpusProgram
}

// Snapshot returns a copy of the current aggregates. It is safe to call
// concurrently with event delivery; call it after the campaign returns for
// totals covering the whole run.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	curve := make([]CurvePoint, len(m.curve))
	copy(curve, m.curve)
	var workers map[string]WorkerCounts
	if len(m.workers) > 0 {
		workers = make(map[string]WorkerCounts, len(m.workers))
		for id, wc := range m.workers {
			workers[id] = *wc
		}
	}
	var corpus map[string]CorpusProgram
	if len(m.corpusProgs) > 0 {
		corpus = make(map[string]CorpusProgram, len(m.corpusProgs))
		for key, cp := range m.corpusProgs {
			corpus[key] = *cp
		}
	}
	m.mu.Unlock()
	return Snapshot{
		Totals: Totals{
			Campaigns:  m.campaigns.Load(),
			Iterations: m.iterations.Load(),
			Cycles:     m.cycles.Load(),
			Squashes:   m.squashes.Load(),
			Asserts:    m.asserts.Load(),
			Uniques:    m.uniques.Load(),
			Faults: FaultCounts{
				BitFlip:    int(m.fBitFlip.Load()),
				Truncate:   int(m.fTruncate.Load()),
				Duplicate:  int(m.fDuplicate.Load()),
				OutOfRange: int(m.fOutOfRange.Load()),
			},
			Decoded:           m.decoded.Load(),
			QuarantinedDecode: m.quarDecode.Load(),
			QuarantinedEdges:  m.quarEdges.Load(),
			Graphs:            m.graphs.Load(),
			Violations:        m.violations.Load(),
			CheckpointSaves:   m.ckptSaves.Load(),
			CheckpointBytes:   m.ckptBytes.Load(),
			CheckpointResumes: m.ckptResumes.Load(),
			ResumedIterations: m.resumedIters.Load(),
			CorpusHits:        m.corpusHits.Load(),
			CorpusMisses:      m.corpusMisses.Load(),
			CorpusAppends:     m.corpusAppends.Load(),
			CorpusIgnored:     m.corpusIgnored.Load(),
			Curve:             curve,
		},
		Effort: Effort{
			ShardAttempts:     m.shardAttempts.Load(),
			ShardRetries:      m.shardRetries.Load(),
			RetriedIterations: m.retriedIters.Load(),
			SortedVertices:    m.sortedVertices.Load(),
			BackwardEdges:     m.backwardEdges.Load(),
			ClockUpdates:      m.clockUpdates.Load(),
			Propagations:      m.propagations.Load(),
			CheckShards:       m.checkShards.Load(),
			Complete:          m.complete.Load(),
			NoResort:          m.noResort.Load(),
			Incremental:       m.incremental.Load(),
			MaxWindow:         m.maxWindow.Load(),
			ExecuteNanos:      m.stageNanos[StageExecute].Load(),
			DecodeNanos:       m.stageNanos[StageDecode].Load(),
			CheckNanos:        m.stageNanos[StageCheck].Load(),
		},
		Dist: Dist{
			WorkerJoins:        m.distJoins.Load(),
			WorkersLost:        m.distLost.Load(),
			WorkersQuarantined: m.distQuarantined.Load(),
			LeasesGranted:      m.distLeases.Load(),
			LeasesExpired:      m.distExpired.Load(),
			Redispatched:       m.distRedispatch.Load(),
			Duplicates:         m.distDuplicates.Load(),
			UploadRejects:      m.distRejects.Load(),
			Workers:            workers,
		},
		Corpus: corpus,
	}
}

// corpusProgram returns the per-key corpus record, creating it if
// needed. Callers hold m.mu.
func (m *Metrics) corpusProgram(e CorpusEvent) *CorpusProgram {
	key := fmt.Sprintf("%016x/%s/%s", e.Program, e.Platform, e.MCM)
	if m.corpusProgs == nil {
		m.corpusProgs = make(map[string]*CorpusProgram)
	}
	cp, ok := m.corpusProgs[key]
	if !ok {
		cp = &CorpusProgram{Program: e.Program, Platform: e.Platform, MCM: e.MCM}
		m.corpusProgs[key] = cp
	}
	return cp
}

// CorpusEvent implements CorpusObserver.
func (m *Metrics) CorpusEvent(e CorpusEvent) {
	switch e.Op {
	case CorpusLookup:
		m.corpusHits.Add(int64(e.Hits))
		m.corpusMisses.Add(int64(e.Misses))
	case CorpusFlush:
		m.corpusAppends.Add(int64(e.Appended))
	case CorpusIgnored:
		m.corpusIgnored.Add(1)
		return
	}
	m.mu.Lock()
	cp := m.corpusProgram(e)
	cp.Known = int64(e.Known)
	if e.Op == CorpusLookup {
		cp.Hits += int64(e.Hits)
		cp.Misses += int64(e.Misses)
	}
	m.mu.Unlock()
}

// workerCounts returns the per-worker record, creating it if needed.
// Callers hold m.mu.
func (m *Metrics) workerCounts(id string) *WorkerCounts {
	if m.workers == nil {
		m.workers = make(map[string]*WorkerCounts)
	}
	wc, ok := m.workers[id]
	if !ok {
		wc = &WorkerCounts{}
		m.workers[id] = wc
	}
	return wc
}

// WorkerEvent implements DistObserver.
func (m *Metrics) WorkerEvent(e WorkerEvent) {
	m.mu.Lock()
	wc := m.workerCounts(e.Worker)
	switch e.Op {
	case WorkerLost:
		wc.Lost++
	case WorkerQuarantined:
		wc.Quarantined = true
	}
	wc.Strikes = int64(e.Strikes)
	m.mu.Unlock()
	switch e.Op {
	case WorkerJoin:
		m.distJoins.Add(1)
	case WorkerLost:
		m.distLost.Add(1)
	case WorkerQuarantined:
		m.distQuarantined.Add(1)
	}
}

// LeaseEvent implements DistObserver.
func (m *Metrics) LeaseEvent(e LeaseEvent) {
	switch e.Op {
	case LeaseGranted:
		m.distLeases.Add(1)
	case LeaseExpired:
		m.distExpired.Add(1)
	case ChunkRedispatched:
		m.distRedispatch.Add(1)
	case ChunkDuplicate:
		m.distDuplicates.Add(1)
	case UploadRejected:
		m.distRejects.Add(1)
		m.mu.Lock()
		m.workerCounts(e.Worker).Strikes++
		m.mu.Unlock()
	}
}

// CampaignStart implements Observer.
func (m *Metrics) CampaignStart(e CampaignStart) { m.campaigns.Add(1) }

// ShardStart implements Observer.
func (m *Metrics) ShardStart(e ShardStart) {}

// ShardEnd implements Observer.
func (m *Metrics) ShardEnd(e ShardEnd) {
	if int(e.Stage) < int(numStages) {
		m.stageNanos[e.Stage].Add(int64(e.Duration))
	}
	switch e.Stage {
	case StageExecute:
		m.shardAttempts.Add(1)
		if e.WillRetry {
			// Discarded progress: effort, not results. Totals only ever see
			// the final attempt, which is what the report covers — the basis
			// of the worker-invariance guarantee under fault injection.
			m.shardRetries.Add(1)
			m.retriedIters.Add(int64(e.Iterations))
			return
		}
		m.iterations.Add(int64(e.Iterations))
		m.cycles.Add(e.Cycles)
		m.squashes.Add(int64(e.Squashes))
		m.asserts.Add(int64(e.Asserts))
	case StageDecode:
		m.decoded.Add(int64(e.Decoded))
		m.quarDecode.Add(int64(e.QuarantinedDecode))
		m.quarEdges.Add(int64(e.QuarantinedEdges))
	case StageCheck:
		m.graphs.Add(int64(e.Graphs))
		m.violations.Add(int64(e.Violations))
		m.sortedVertices.Add(e.SortedVertices)
		m.backwardEdges.Add(e.BackwardEdges)
		m.clockUpdates.Add(e.ClockUpdates)
		m.propagations.Add(e.Propagations)
		m.checkShards.Add(1)
		m.complete.Add(int64(e.Complete))
		m.noResort.Add(int64(e.NoResort))
		m.incremental.Add(int64(e.Incremental))
		storeMax(&m.maxWindow, int64(e.MaxWindow))
	}
}

// MergeDone implements Observer.
func (m *Metrics) MergeDone(e MergeDone) {
	m.mu.Lock()
	m.curve = append(m.curve, CurvePoint{Iterations: e.Completed, Uniques: e.Uniques})
	m.mu.Unlock()
	if e.Final {
		m.uniques.Store(int64(e.Uniques))
		m.fBitFlip.Add(int64(e.Injected.BitFlip))
		m.fTruncate.Add(int64(e.Injected.Truncate))
		m.fDuplicate.Add(int64(e.Injected.Duplicate))
		m.fOutOfRange.Add(int64(e.Injected.OutOfRange))
	}
}

// Checkpoint implements Observer.
func (m *Metrics) Checkpoint(e Checkpoint) {
	switch e.Op {
	case CheckpointSaved:
		m.ckptSaves.Add(1)
		m.ckptBytes.Add(e.Bytes)
	case CheckpointResumed:
		m.ckptResumes.Add(1)
		m.resumedIters.Add(int64(e.Completed))
	}
}

// CampaignEnd implements Observer.
func (m *Metrics) CampaignEnd(e CampaignEnd) {}

func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4), suitable for a textfile-collector drop or a
// scrape endpoint. Metric order is fixed so successive snapshots diff
// cleanly.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	bw := bufio.NewWriter(w)
	counter := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("mtracecheck_campaigns_total", "Validation campaigns observed.", s.Totals.Campaigns)
	counter("mtracecheck_iterations_total", "Test iterations executed (final attempts only).", s.Totals.Iterations)
	counter("mtracecheck_cycles_total", "Simulated cycles over executed iterations.", s.Totals.Cycles)
	counter("mtracecheck_squashes_total", "Load-queue squash/replay events.", s.Totals.Squashes)
	counter("mtracecheck_assertion_failures_total", "Instrumentation assertion failures.", s.Totals.Asserts)
	gauge("mtracecheck_unique_signatures", "Unique interleavings in the last campaign's merged set (Fig. 8).", s.Totals.Uniques)

	fmt.Fprintf(bw, "# HELP mtracecheck_injected_faults_total Deterministic device-side faults injected, by kind.\n")
	fmt.Fprintf(bw, "# TYPE mtracecheck_injected_faults_total counter\n")
	for _, kv := range []struct {
		kind string
		v    int
	}{
		{"bit-flip", s.Totals.Faults.BitFlip},
		{"truncate", s.Totals.Faults.Truncate},
		{"duplicate", s.Totals.Faults.Duplicate},
		{"out-of-range", s.Totals.Faults.OutOfRange},
	} {
		fmt.Fprintf(bw, "mtracecheck_injected_faults_total{kind=%q} %d\n", kv.kind, kv.v)
	}

	counter("mtracecheck_decoded_signatures_total", "Unique signatures decoded into checkable items.", s.Totals.Decoded)
	fmt.Fprintf(bw, "# HELP mtracecheck_quarantined_total Corrupted signatures held out of checking, by kind.\n")
	fmt.Fprintf(bw, "# TYPE mtracecheck_quarantined_total counter\n")
	fmt.Fprintf(bw, "mtracecheck_quarantined_total{kind=\"decode\"} %d\n", s.Totals.QuarantinedDecode)
	fmt.Fprintf(bw, "mtracecheck_quarantined_total{kind=\"edge-build\"} %d\n", s.Totals.QuarantinedEdges)
	counter("mtracecheck_graphs_checked_total", "Constraint graphs checked.", s.Totals.Graphs)
	counter("mtracecheck_violations_total", "MCM violations found by graph checking.", s.Totals.Violations)
	counter("mtracecheck_checkpoint_saves_total", "Campaign checkpoints written.", s.Totals.CheckpointSaves)
	counter("mtracecheck_checkpoint_bytes_total", "Bytes of checkpoint payload written.", s.Totals.CheckpointBytes)
	counter("mtracecheck_checkpoint_resumes_total", "Campaigns resumed from a checkpoint.", s.Totals.CheckpointResumes)
	counter("mtracecheck_resumed_iterations_total", "Iterations restored from checkpoints instead of executed.", s.Totals.ResumedIterations)
	counter("mtracecheck_corpus_hits_total", "Unique signatures that skipped decode+check as corpus hits.", s.Totals.CorpusHits)
	counter("mtracecheck_corpus_misses_total", "Unique signatures absent from the corpus, decoded and checked cold.", s.Totals.CorpusMisses)
	counter("mtracecheck_corpus_appends_total", "Newly proven-acyclic signatures appended to the corpus.", s.Totals.CorpusAppends)
	counter("mtracecheck_corpus_ignored_total", "Campaigns that refused an attached corpus and ran cold.", s.Totals.CorpusIgnored)

	counter("mtracecheck_shard_attempts_total", "Execution shard attempts, including retries.", s.Effort.ShardAttempts)
	counter("mtracecheck_shard_retries_total", "Execution shard attempts that failed and were retried.", s.Effort.ShardRetries)
	counter("mtracecheck_retried_iterations_total", "Iterations executed by attempts later discarded by a retry.", s.Effort.RetriedIterations)
	counter("mtracecheck_sorted_vertices_total", "Vertices visited by topological (re)sorts (Fig. 9 effort).", s.Effort.SortedVertices)
	counter("mtracecheck_backward_edges_total", "Backward edges found against the maintained orders.", s.Effort.BackwardEdges)
	counter("mtracecheck_clock_updates_total", "Vector-clock joins that changed a clock (vectorclock backend effort).", s.Effort.ClockUpdates)
	counter("mtracecheck_propagations_total", "Constraint-solver domain-bound tightenings (constraints backend effort).", s.Effort.Propagations)
	counter("mtracecheck_check_shards_total", "Checking shard completions (1 per campaign for serial backends).", s.Effort.CheckShards)
	fmt.Fprintf(bw, "# HELP mtracecheck_graphs_by_kind_total Graphs validated per collective-checking kind (Fig. 14).\n")
	fmt.Fprintf(bw, "# TYPE mtracecheck_graphs_by_kind_total counter\n")
	fmt.Fprintf(bw, "mtracecheck_graphs_by_kind_total{kind=\"complete\"} %d\n", s.Effort.Complete)
	fmt.Fprintf(bw, "mtracecheck_graphs_by_kind_total{kind=\"no-resort\"} %d\n", s.Effort.NoResort)
	fmt.Fprintf(bw, "mtracecheck_graphs_by_kind_total{kind=\"incremental\"} %d\n", s.Effort.Incremental)
	gauge("mtracecheck_max_resort_window", "Largest re-sorted vertex window.", s.Effort.MaxWindow)
	fmt.Fprintf(bw, "# HELP mtracecheck_stage_seconds_total Wall time summed over shard attempts, by stage.\n")
	fmt.Fprintf(bw, "# TYPE mtracecheck_stage_seconds_total counter\n")
	for _, kv := range []struct {
		stage string
		ns    int64
	}{
		{"execute", s.Effort.ExecuteNanos},
		{"decode", s.Effort.DecodeNanos},
		{"check", s.Effort.CheckNanos},
	} {
		fmt.Fprintf(bw, "mtracecheck_stage_seconds_total{stage=%q} %.6f\n", kv.stage, float64(kv.ns)/1e9)
	}

	counter("mtracecheck_dist_worker_joins_total", "Workers that joined the dist server.", s.Dist.WorkerJoins)
	counter("mtracecheck_dist_workers_lost_total", "Worker lease deadlines missed (crash, hang, or partition).", s.Dist.WorkersLost)
	counter("mtracecheck_dist_workers_quarantined_total", "Workers quarantined for repeated upload-validation failures.", s.Dist.WorkersQuarantined)
	counter("mtracecheck_dist_leases_granted_total", "Chunk leases granted to workers.", s.Dist.LeasesGranted)
	counter("mtracecheck_dist_leases_expired_total", "Chunk leases that expired without a completed upload.", s.Dist.LeasesExpired)
	counter("mtracecheck_dist_chunks_redispatched_total", "Chunks granted again after a lost lease or quarantined worker.", s.Dist.Redispatched)
	counter("mtracecheck_dist_duplicate_completions_total", "Uploads for already-completed chunks, deduplicated by chunk ID.", s.Dist.Duplicates)
	counter("mtracecheck_dist_upload_rejects_total", "Chunk uploads that failed server-side validation.", s.Dist.UploadRejects)
	if len(s.Dist.Workers) > 0 {
		ids := make([]string, 0, len(s.Dist.Workers))
		for id := range s.Dist.Workers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(bw, "# HELP mtracecheck_dist_worker_strikes Upload-validation failures per worker.\n")
		fmt.Fprintf(bw, "# TYPE mtracecheck_dist_worker_strikes gauge\n")
		for _, id := range ids {
			fmt.Fprintf(bw, "mtracecheck_dist_worker_strikes{worker=%q} %d\n", id, s.Dist.Workers[id].Strikes)
		}
		fmt.Fprintf(bw, "# HELP mtracecheck_dist_worker_quarantined Whether the worker is quarantined (1) or trusted (0).\n")
		fmt.Fprintf(bw, "# TYPE mtracecheck_dist_worker_quarantined gauge\n")
		for _, id := range ids {
			q := 0
			if s.Dist.Workers[id].Quarantined {
				q = 1
			}
			fmt.Fprintf(bw, "mtracecheck_dist_worker_quarantined{worker=%q} %d\n", id, q)
		}
	}
	if len(s.Corpus) > 0 {
		keys := make([]string, 0, len(s.Corpus))
		for key := range s.Corpus {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		fmt.Fprintf(bw, "# HELP mtracecheck_corpus_known_signatures Known-good signatures in the corpus per (program, platform, MCM).\n")
		fmt.Fprintf(bw, "# TYPE mtracecheck_corpus_known_signatures gauge\n")
		for _, key := range keys {
			cp := s.Corpus[key]
			fmt.Fprintf(bw, "mtracecheck_corpus_known_signatures{program=\"%016x\",platform=%q,mcm=%q} %d\n",
				cp.Program, cp.Platform, cp.MCM, cp.Known)
		}
		fmt.Fprintf(bw, "# HELP mtracecheck_corpus_saturation Warm fraction of observed uniques per (program, platform, MCM): hits/(hits+misses).\n")
		fmt.Fprintf(bw, "# TYPE mtracecheck_corpus_saturation gauge\n")
		for _, key := range keys {
			cp := s.Corpus[key]
			sat := 0.0
			if n := cp.Hits + cp.Misses; n > 0 {
				sat = float64(cp.Hits) / float64(n)
			}
			fmt.Fprintf(bw, "mtracecheck_corpus_saturation{program=\"%016x\",platform=%q,mcm=%q} %.6f\n",
				cp.Program, cp.Platform, cp.MCM, sat)
		}
	}
	return bw.Flush()
}
