// Package obs is the campaign observability layer: typed events emitted at
// every pipeline stage boundary — execution chunks, the unique-signature
// merge, streaming decode batches, checking shards, and checkpoints —
// consumed by an Observer. A multi-hour validation campaign (the paper runs 65536
// iterations per test across 21 configurations, §5) is otherwise a black
// box between launch and report; the events make its throughput, fault
// tolerance, and progress operationally visible without perturbing it.
//
// Two contracts govern the layer:
//
//   - Worker invariance. Events mirror the pipeline's determinism contract:
//     aggregating the final (non-retried) events of a campaign yields totals
//     identical for every Workers value. Per-shard quantities (a shard's
//     local unique count, a checking shard's boundary re-sort) are visible
//     individually but only their invariant aggregates are exposed as
//     Metrics totals; genuinely partition-dependent effort (sorted vertices,
//     retry counts) is reported separately as effort accounting.
//
//   - Zero-cost no-op. A nil Observer must add nothing to the pipeline:
//     events fire at stage boundaries — per shard attempt, per merge, per
//     checkpoint — never per iteration, and every emission site is a single
//     nil check. The hot loop's allocation budgets are unchanged whether or
//     not observability is compiled into a campaign.
//
// Three built-in observers cover the common needs: Metrics (atomic
// aggregation with Prometheus text exposition), Progress (rate-limited
// human-readable log lines), and Trace (Chrome trace_event spans viewable
// in Perfetto or chrome://tracing). Multi fans events out to several
// observers at once.
package obs

import "time"

// Stage identifies the pipeline stage an event belongs to.
type Stage uint8

const (
	// StageExecute is the sharded execution stage (device side).
	StageExecute Stage = iota
	// StageMerge is the unique-signature k-way merge.
	StageMerge
	// StageDecode is the signature-decode stage: streaming batches as
	// chunks merge, or a barrier pass when corruption faults force one.
	StageDecode
	// StageCheck is the sharded collective-checking stage.
	StageCheck
	// StageCheckpoint is checkpoint persistence and resume.
	StageCheckpoint

	numStages
)

func (s Stage) String() string {
	switch s {
	case StageExecute:
		return "execute"
	case StageMerge:
		return "merge"
	case StageDecode:
		return "decode"
	case StageCheck:
		return "check"
	case StageCheckpoint:
		return "checkpoint"
	}
	return "stage?"
}

// CampaignStart fires once when a campaign begins, before any shard runs.
type CampaignStart struct {
	Program    string // test program name
	Threads    int
	Ops        int // total memory operations
	Platform   string
	Model      string // memory consistency model
	Iterations int    // requested iteration count (0 for host-side check campaigns)
	Workers    int    // resolved pipeline shard count
	Time       time.Time
}

// CampaignEnd fires once when a campaign finishes, successfully or not.
type CampaignEnd struct {
	Iterations  int // covered by the report (executed + resumed)
	Uniques     int
	Quarantined int
	Violations  int
	Asserts     int
	Partial     bool  // execution shards were lost after retries
	Err         error // non-nil when the campaign failed
	Time        time.Time
	Duration    time.Duration
}

// ShardStart fires when one unit of a parallel stage begins an attempt:
// an execution-chunk attempt, a streaming decode batch or barrier decode
// range, or a checking shard's range.
type ShardStart struct {
	Stage Stage
	// Shard is the lane the work runs in. For StageExecute it is the
	// work-stealing worker index — consecutive chunks claimed by the same
	// worker share a lane, so a trace shows each worker's chunk spans
	// overlapping the merge/decode stream. For streaming decode batches it
	// is the index of the chunk whose merge produced the batch; for barrier
	// decode and check it is the shard index within the stage.
	Shard   int
	Attempt int // execution retries; always 0 for decode and check
	// Start and Count describe the contiguous block the attempt owns.
	// StageExecute: global iteration indices of the chunk. StageCheck and
	// barrier StageDecode: sorted unique-signature indices. Streaming
	// StageDecode batches: Start is the number of uniques the decoder had
	// already seen and Count the fresh ones in this batch, so batches tile
	// the campaign's first-observation order (not the final sorted order).
	Start, Count int
	Time         time.Time
}

// ShardEnd fires when the shard attempt completes. The stage-specific
// counter groups are zero for the other stages; the struct is flat so
// emission never allocates.
type ShardEnd struct {
	Stage        Stage
	Shard        int
	Attempt      int
	Start, Count int

	// Execution-stage counters (final attempts carry the values that reach
	// the report; retried attempts carry the partial progress that was
	// discarded).
	Iterations int
	Cycles     int64
	Squashes   int
	Uniques    int // shard-local unique signatures (aggregate via MergeDone, not by summing)
	Asserts    int

	// Decode-stage counters.
	Decoded           int
	QuarantinedDecode int
	QuarantinedEdges  int

	// Check-stage counters. Backend names the checking backend that produced
	// the event, and Shards is the total number of checking shards the stage
	// actually ran — 1 for a serial backend regardless of the worker count,
	// so Effort aggregates never imply parallelism that didn't happen. Each
	// backend populates only the effort counters its algorithm has a notion
	// of: the sorting backends fill SortedVertices (and the collective and
	// incremental ones the per-kind graph counts and window fields), the
	// vector-clock backend fills ClockUpdates, and the constraint solver
	// fills Propagations.
	Backend        string
	Shards         int
	Graphs         int
	Complete       int
	NoResort       int
	Incremental    int
	SortedVertices int64
	BackwardEdges  int64
	MaxWindow      int // largest re-sorted window
	ClockUpdates   int64
	Propagations   int64
	Violations     int

	Err       error
	WillRetry bool          // failed execution attempt that will be re-run
	Backoff   time.Duration // sleep before the retry (WillRetry only)
	Time      time.Time
	Duration  time.Duration
}

// FaultCounts tallies injected device-side signature corruption per kind.
// The flat struct (rather than a map) keeps event emission allocation-free.
type FaultCounts struct {
	BitFlip, Truncate, Duplicate, OutOfRange int
}

// Total sums the per-kind counts.
func (f FaultCounts) Total() int {
	return f.BitFlip + f.Truncate + f.Duplicate + f.OutOfRange
}

// MergeDone fires after each unique-signature merge: once per checkpoint
// segment during a checkpointed campaign and once at the end of every
// campaign (Final). The (Completed, Uniques) sequence is the paper's Fig. 8
// unique-interleaving growth curve sampled at segment boundaries.
type MergeDone struct {
	Completed int // iterations covered by the merged set
	Uniques   int
	Injected  FaultCounts // non-zero only on the final merge under fault injection
	Final     bool
	Time      time.Time
}

// CheckpointOp distinguishes checkpoint writes from resume reads.
type CheckpointOp uint8

const (
	// CheckpointSaved marks a periodic checkpoint write.
	CheckpointSaved CheckpointOp = iota
	// CheckpointResumed marks a campaign restored from a checkpoint.
	CheckpointResumed
)

func (op CheckpointOp) String() string {
	if op == CheckpointResumed {
		return "resumed"
	}
	return "saved"
}

// Checkpoint fires on every checkpoint write and on resume.
type Checkpoint struct {
	Op        CheckpointOp
	Path      string
	Completed int // iterations the checkpoint covers
	Uniques   int
	Bytes     int64 // encoded size (CheckpointSaved only)
	Time      time.Time
}

// Observer receives pipeline events. Implementations must be safe for
// concurrent use: execution shards, decode workers, and checking shards
// emit concurrently. Observers must not block — a slow observer stalls the
// shard that emitted the event.
//
// Observers are strictly read-only taps: attaching any observer (or any
// combination) leaves every campaign result bit-identical to an unobserved
// run.
type Observer interface {
	CampaignStart(e CampaignStart)
	ShardStart(e ShardStart)
	ShardEnd(e ShardEnd)
	MergeDone(e MergeDone)
	Checkpoint(e Checkpoint)
	CampaignEnd(e CampaignEnd)
}

// Multi fans events out to several observers in argument order; nil
// entries are skipped. Multi of zero or all-nil observers returns nil, so
// the pipeline's nil fast path is preserved.
func Multi(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multi(kept)
}

type multi []Observer

func (m multi) CampaignStart(e CampaignStart) {
	for _, o := range m {
		o.CampaignStart(e)
	}
}

func (m multi) ShardStart(e ShardStart) {
	for _, o := range m {
		o.ShardStart(e)
	}
}

func (m multi) ShardEnd(e ShardEnd) {
	for _, o := range m {
		o.ShardEnd(e)
	}
}

func (m multi) MergeDone(e MergeDone) {
	for _, o := range m {
		o.MergeDone(e)
	}
}

func (m multi) Checkpoint(e Checkpoint) {
	for _, o := range m {
		o.Checkpoint(e)
	}
}

func (m multi) CampaignEnd(e CampaignEnd) {
	for _, o := range m {
		o.CampaignEnd(e)
	}
}
