package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// feed delivers a small synthetic campaign to an observer: two execution
// shards (one retried attempt), a decode shard, a check shard, a
// checkpoint save, a final merge, and the campaign bookends.
func feed(o Observer) {
	base := time.Unix(1700000000, 0)
	o.CampaignStart(CampaignStart{
		Program: "probe", Threads: 4, Ops: 160, Platform: "sim-x86", Model: "TSO",
		Iterations: 100, Workers: 2, Time: base,
	})
	o.ShardStart(ShardStart{Stage: StageExecute, Shard: 0, Start: 0, Count: 50, Time: base})
	o.ShardEnd(ShardEnd{
		Stage: StageExecute, Shard: 0, Attempt: 0, Start: 0, Count: 50,
		Iterations: 12, Err: errors.New("injected stall"), WillRetry: true,
		Backoff: time.Millisecond, Time: base.Add(time.Millisecond), Duration: time.Millisecond,
	})
	o.ShardEnd(ShardEnd{
		Stage: StageExecute, Shard: 0, Attempt: 1, Start: 0, Count: 50,
		Iterations: 50, Cycles: 5000, Squashes: 3, Uniques: 7,
		Time: base.Add(3 * time.Millisecond), Duration: 2 * time.Millisecond,
	})
	o.ShardEnd(ShardEnd{
		Stage: StageExecute, Shard: 1, Attempt: 0, Start: 50, Count: 50,
		Iterations: 50, Cycles: 4800, Squashes: 1, Uniques: 6, Asserts: 1,
		Time: base.Add(3 * time.Millisecond), Duration: 3 * time.Millisecond,
	})
	o.Checkpoint(Checkpoint{Op: CheckpointSaved, Path: "ckpt.bin", Completed: 100, Uniques: 9, Bytes: 512, Time: base.Add(4 * time.Millisecond)})
	o.MergeDone(MergeDone{Completed: 100, Uniques: 9, Injected: FaultCounts{BitFlip: 2}, Final: true, Time: base.Add(4 * time.Millisecond)})
	o.ShardEnd(ShardEnd{
		Stage: StageDecode, Shard: 0, Start: 0, Count: 9, Decoded: 8,
		QuarantinedDecode: 1, Time: base.Add(5 * time.Millisecond), Duration: time.Millisecond,
	})
	o.ShardEnd(ShardEnd{
		Stage: StageCheck, Shard: 0, Start: 0, Count: 8, Graphs: 8,
		Complete: 1, NoResort: 5, Incremental: 2, SortedVertices: 200,
		BackwardEdges: 14, MaxWindow: 12, Violations: 1,
		Time: base.Add(6 * time.Millisecond), Duration: time.Millisecond,
	})
	o.CampaignEnd(CampaignEnd{
		Iterations: 100, Uniques: 9, Quarantined: 1, Violations: 1, Asserts: 1,
		Time: base.Add(7 * time.Millisecond), Duration: 7 * time.Millisecond,
	})
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	feed(m)
	s := m.Snapshot()

	tot := s.Totals
	if tot.Campaigns != 1 || tot.Iterations != 100 || tot.Cycles != 9800 || tot.Squashes != 4 || tot.Asserts != 1 {
		t.Errorf("execution totals wrong: %+v", tot)
	}
	if tot.Uniques != 9 {
		t.Errorf("uniques gauge = %d, want 9", tot.Uniques)
	}
	if tot.Faults != (FaultCounts{BitFlip: 2}) {
		t.Errorf("faults = %+v", tot.Faults)
	}
	if tot.Decoded != 8 || tot.QuarantinedDecode != 1 || tot.QuarantinedEdges != 0 {
		t.Errorf("decode totals wrong: %+v", tot)
	}
	if tot.Graphs != 8 || tot.Violations != 1 {
		t.Errorf("check totals wrong: %+v", tot)
	}
	if tot.CheckpointSaves != 1 || tot.CheckpointBytes != 512 {
		t.Errorf("checkpoint totals wrong: %+v", tot)
	}
	if len(tot.Curve) != 1 || tot.Curve[0] != (CurvePoint{Iterations: 100, Uniques: 9}) {
		t.Errorf("growth curve = %+v", tot.Curve)
	}

	eff := s.Effort
	if eff.ShardAttempts != 3 || eff.ShardRetries != 1 || eff.RetriedIterations != 12 {
		t.Errorf("retry effort wrong: %+v", eff)
	}
	if eff.SortedVertices != 200 || eff.BackwardEdges != 14 || eff.MaxWindow != 12 {
		t.Errorf("check effort wrong: %+v", eff)
	}
	if eff.Complete != 1 || eff.NoResort != 5 || eff.Incremental != 2 {
		t.Errorf("graph kinds wrong: %+v", eff)
	}
	if eff.ExecuteNanos != int64(6*time.Millisecond) {
		t.Errorf("execute nanos = %d (should include retried attempts)", eff.ExecuteNanos)
	}
}

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	feed(m)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mtracecheck_iterations_total 100",
		"mtracecheck_unique_signatures 9",
		`mtracecheck_injected_faults_total{kind="bit-flip"} 2`,
		`mtracecheck_quarantined_total{kind="decode"} 1`,
		"mtracecheck_graphs_checked_total 8",
		"mtracecheck_shard_retries_total 1",
		`mtracecheck_graphs_by_kind_total{kind="no-resort"} 5`,
		"mtracecheck_max_resort_window 12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Every non-comment line must be "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestProgressOutput(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Nanosecond) // effectively unlimited rate
	feed(p)
	out := buf.String()
	for _, want := range []string{
		"campaign probe: 100 iterations on sim-x86 (TSO), 2 workers",
		"shard 0 attempt 1 failed after 12 iterations",
		"merge: 9 uniques over 100 iterations (2 faults injected)",
		"checkpoint: saved 100 iterations (9 uniques, 512 bytes) to ckpt.bin",
		"campaign done in 7ms: 100 iterations, 9 uniques, 1 quarantined, 1 violations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q\n%s", want, out)
		}
	}
}

func TestProgressRateLimit(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Hour)
	feed(p)
	// Rate-limited ticks are suppressed; boundary lines still appear.
	if got := strings.Count(buf.String(), "execute: "); got != 1 {
		// Only the never-limited retry line.
		t.Errorf("expected only the retry execute line, got %d:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "campaign done") {
		t.Errorf("campaign end line missing:\n%s", buf.String())
	}
}

func TestTraceJSONValid(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTraceJSON(&buf)
	feed(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a valid JSON array: %v\n%s", err, buf.String())
	}
	var spans, metas int
	for _, ev := range events {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			spans++
			if ev["dur"] == nil {
				t.Errorf("complete event without dur: %v", ev)
			}
		case "M":
			metas++
		}
	}
	// 5 shard spans (incl. the retried attempt) + campaign span; 6
	// process_name records.
	if spans != 6 || metas != 6 {
		t.Errorf("spans=%d metas=%d, want 6 and 6", spans, metas)
	}
	// Timestamps are relative to campaign start: first span at >= 0.
	for _, ev := range events {
		if ts, ok := ev["ts"].(float64); ok && ts < 0 {
			t.Errorf("negative relative timestamp: %v", ev)
		}
	}
}

func TestTraceEmptyCampaignCloses(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTraceJSON(&buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%q", err, buf.String())
	}
	if len(events) != 0 {
		t.Errorf("expected empty array, got %d events", len(events))
	}
}

func TestMultiNilHandling(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	m := NewMetrics()
	if got := Multi(nil, m, nil); got != Observer(m) {
		t.Error("Multi with one live observer should unwrap it")
	}
	p := NewProgress(new(bytes.Buffer), time.Hour)
	fan := Multi(m, p)
	if fan == nil {
		t.Fatal("Multi(m, p) should not be nil")
	}
	feed(fan)
	if s := m.Snapshot(); s.Totals.Iterations != 100 {
		t.Errorf("fan-out did not reach metrics: %+v", s.Totals)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageExecute: "execute", StageMerge: "merge", StageDecode: "decode",
		StageCheck: "check", StageCheckpoint: "checkpoint", numStages: "stage?",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
}
