package obs

import "time"

// Distributed-campaign events. The dist server's robustness machinery —
// lease-based chunk dispatch, worker quarantine, redispatch after expiry —
// emits these so fleet failures are operationally visible instead of
// silently absorbed by the bit-identical merge. They extend the observer
// layer through the optional DistObserver interface rather than Observer
// itself, so every existing Observer implementation keeps compiling and the
// in-process pipeline's contract is untouched.

// WorkerOp identifies a worker-lifecycle transition seen by the dist server.
type WorkerOp uint8

const (
	// WorkerJoin marks the first lease request from a worker ID.
	WorkerJoin WorkerOp = iota
	// WorkerLost marks a worker missing a lease deadline (crash, hang, or
	// partition); its chunks return to the dispatch queue.
	WorkerLost
	// WorkerQuarantined marks a worker whose uploads repeatedly failed
	// validation; the server revokes its leases and refuses it new ones.
	WorkerQuarantined
)

func (op WorkerOp) String() string {
	switch op {
	case WorkerJoin:
		return "join"
	case WorkerLost:
		return "lost"
	case WorkerQuarantined:
		return "quarantined"
	}
	return "worker-op?"
}

// WorkerEvent fires on worker-lifecycle transitions at the dist server.
type WorkerEvent struct {
	Op     WorkerOp
	Worker string
	// Strikes is the worker's accumulated upload-validation failures at the
	// time of the event.
	Strikes int
	// Leases is how many chunk leases the worker held when the event fired
	// (the chunks being returned to the queue for WorkerLost/Quarantined).
	Leases int
	Time   time.Time
}

// LeaseOp identifies a chunk-lease transition at the dist server.
type LeaseOp uint8

const (
	// LeaseGranted marks a chunk handed to a worker under a deadline.
	LeaseGranted LeaseOp = iota
	// LeaseExpired marks a lease whose deadline passed without a completed
	// upload; the chunk returns to the queue with backoff.
	LeaseExpired
	// ChunkRedispatched marks a chunk granted again after a previous lease
	// expired or its worker was quarantined.
	ChunkRedispatched
	// ChunkDuplicate marks a completed upload for an already-finished chunk
	// (a straggler or a retried send); results are bit-identical regardless
	// of who computed them, so the duplicate is counted and discarded.
	ChunkDuplicate
	// UploadRejected marks a chunk upload that failed server-side
	// validation (corrupt payload, checksum mismatch, wrong provenance);
	// it strikes the uploading worker.
	UploadRejected
)

func (op LeaseOp) String() string {
	switch op {
	case LeaseGranted:
		return "granted"
	case LeaseExpired:
		return "expired"
	case ChunkRedispatched:
		return "redispatched"
	case ChunkDuplicate:
		return "duplicate"
	case UploadRejected:
		return "rejected"
	}
	return "lease-op?"
}

// LeaseEvent fires on chunk-lease transitions at the dist server.
type LeaseEvent struct {
	Op     LeaseOp
	Job    string
	Chunk  int
	Worker string
	// Attempt is the chunk's dispatch count so far (0 for the first grant).
	Attempt int
	Time    time.Time
}

// DistObserver is the optional extension an Observer may implement to
// receive distributed-campaign events. The dist server type-asserts its
// observer; implementations that don't care simply don't implement it.
// Like Observer methods, these must be safe for concurrent use and must
// not block.
type DistObserver interface {
	WorkerEvent(e WorkerEvent)
	LeaseEvent(e LeaseEvent)
}

// EmitWorker delivers a worker event to o if it implements DistObserver;
// nil-safe, so emission sites stay a single call.
func EmitWorker(o Observer, e WorkerEvent) {
	if d, ok := o.(DistObserver); ok {
		d.WorkerEvent(e)
	}
}

// EmitLease delivers a lease event to o if it implements DistObserver.
func EmitLease(o Observer, e LeaseEvent) {
	if d, ok := o.(DistObserver); ok {
		d.LeaseEvent(e)
	}
}

// WorkerEvent implements DistObserver, forwarding to members that do.
func (m multi) WorkerEvent(e WorkerEvent) {
	for _, o := range m {
		EmitWorker(o, e)
	}
}

// LeaseEvent implements DistObserver, forwarding to members that do.
func (m multi) LeaseEvent(e LeaseEvent) {
	for _, o := range m {
		EmitLease(o, e)
	}
}
