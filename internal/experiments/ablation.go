package experiments

import (
	"fmt"
	"time"

	"mtracecheck/internal/check"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/obs"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/report"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// collectMode is the experiments' shared collection path (collect is a
// wrapper generating the program first): one serial campaign with an
// explicit write-serialization mode and an optional pruner for the
// ablation studies. A non-nil observer o receives the campaign's events —
// execution shard, final merge, decode shard — exactly as the library
// pipeline emits them; results are identical either way.
func collectMode(o obs.Observer, p *prog.Program, plat sim.Platform, iters int, seed int64,
	ws graph.WSMode, pruner instrument.Pruner) (*collected, error) {
	meta, err := instrument.Analyze(p, plat.RegWidthBits, pruner)
	if err != nil {
		return nil, err
	}
	runner, err := sim.NewRunner(plat, p, seed)
	if err != nil {
		return nil, err
	}
	began := time.Now()
	if o != nil {
		threads, ops := 0, 0
		for _, t := range p.Threads {
			threads++
			ops += len(t.Ops)
		}
		o.CampaignStart(obs.CampaignStart{Program: p.Name, Threads: threads, Ops: ops,
			Platform: plat.Name, Model: plat.Model.String(),
			Iterations: iters, Workers: 1, Time: began})
		o.ShardStart(obs.ShardStart{Stage: obs.StageExecute, Count: iters, Time: began})
	}
	set := sig.NewSet()
	wsBySig := map[string]graph.WS{}
	asserts := 0
	var cycles int64
	squashes := 0
	for i := 0; i < iters; i++ {
		ex, err := runner.Run()
		if err != nil {
			return nil, err
		}
		cycles += int64(ex.Cycles)
		squashes += ex.Squashes
		s, err := meta.EncodeValues(ex.LoadValues)
		if err != nil {
			asserts++
			continue
		}
		if set.Add(s) {
			wsBySig[s.Key()] = ex.WSByWord()
		}
	}
	uniques := set.Sorted()
	if o != nil {
		now := time.Now()
		o.ShardEnd(obs.ShardEnd{Stage: obs.StageExecute, Count: iters,
			Iterations: iters, Cycles: cycles, Squashes: squashes,
			Uniques: len(uniques), Asserts: asserts,
			Time: now, Duration: now.Sub(began)})
		o.MergeDone(obs.MergeDone{Completed: iters, Uniques: len(uniques),
			Final: true, Time: now})
	}
	builder := graph.NewBuilder(p, plat.Model, graph.Options{
		Forwarding: plat.Atomicity.AllowsForwarding(),
		WS:         ws,
	})
	decodeBegan := time.Now()
	items := make([]check.Item, 0, len(uniques))
	for _, u := range uniques {
		cands, err := meta.Decode(u.Sig)
		if err != nil {
			return nil, err
		}
		rf := make(graph.RF, len(cands))
		for id, c := range cands {
			rf[id] = c.Store
		}
		edges, err := builder.DynamicEdges(rf, wsBySig[u.Sig.Key()])
		if err != nil {
			return nil, err
		}
		items = append(items, check.Item{Sig: u.Sig, Edges: edges})
	}
	if o != nil {
		now := time.Now()
		o.ShardEnd(obs.ShardEnd{Stage: obs.StageDecode, Count: len(uniques),
			Decoded: len(items), Time: now, Duration: now.Sub(decodeBegan)})
		o.CampaignEnd(obs.CampaignEnd{Iterations: iters, Uniques: len(uniques),
			Asserts: asserts, Time: now, Duration: now.Sub(began)})
	}
	return &collected{meta: meta, builder: builder, uniques: uniques,
		items: items, asserts: asserts}, nil
}

// WSAblation quantifies the static-vs-observed write-serialization choice
// (DESIGN.md §2): bug detections caught by each mode on the bug-2 platform,
// and the checking-effort difference on a clean platform. Static ws — the
// paper's "gathered statically" mode — provably misses cross-thread
// serialization violations; observed ws catches them at the cost of larger
// graph diffs.
func WSAblation(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "Ablation: static vs observed write serialization",
		Caption: fmt.Sprintf("bug-2 campaign: %d tests × %d iterations; effort row: clean x86-4-50-64.",
			cfg.Table3Tests, cfg.Table3Iters),
		Header: []string{"metric", "static ws (paper mode)", "observed ws"},
	}
	tcBug := testgen.Config{Threads: 7, OpsPerThread: 200, Words: 32, WordsPerLine: 16}
	plat := sim.PlatformGem5(mem.Bugs{}, sim.Bugs{LQSquashSkip: true})
	detect := func(ws graph.WSMode) (tests, sigs int, err error) {
		for test := 0; test < cfg.Table3Tests; test++ {
			tc := tcBug
			tc.Seed = cfg.Seed + int64(test)
			p, err := testgen.Generate(tc)
			if err != nil {
				return 0, 0, err
			}
			col, err := collectMode(cfg.Observer, p, plat, cfg.Table3Iters, tc.Seed+1, ws, nil)
			if err != nil {
				return 0, 0, err
			}
			res, err := checkItems(cfg, col.builder, col.items)
			if err != nil {
				return 0, 0, err
			}
			if len(res.Violations)+col.asserts > 0 {
				tests++
				sigs += len(res.Violations)
			}
		}
		return tests, sigs, nil
	}
	sTests, sSigs, err := detect(graph.WSStatic)
	if err != nil {
		return nil, err
	}
	oTests, oSigs, err := detect(graph.WSObserved)
	if err != nil {
		return nil, err
	}
	t.AddRow("bug-2 tests detecting", fmt.Sprintf("%d/%d", sTests, cfg.Table3Tests),
		fmt.Sprintf("%d/%d", oTests, cfg.Table3Tests))
	t.AddRow("bug-2 violating signatures", sSigs, oSigs)

	// Checking-effort comparison on a clean test.
	tcClean := testgen.Config{Threads: 4, OpsPerThread: 50, Words: 64, Seed: cfg.Seed}
	p, err := testgen.Generate(tcClean)
	if err != nil {
		return nil, err
	}
	x86 := sim.PlatformX86()
	for _, mode := range []struct {
		name string
		ws   graph.WSMode
	}{{"static ws (paper mode)", graph.WSStatic}, {"observed ws", graph.WSObserved}} {
		col, err := collectMode(cfg.Observer, p, x86, cfg.Iterations, cfg.Seed, mode.ws, nil)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := checkItems(cfg, col.builder, col.items)
		if err != nil {
			return nil, err
		}
		_ = res
		_ = start
		var edges int
		for _, it := range col.items {
			edges += len(it.Edges)
		}
		t.AddRow(fmt.Sprintf("clean run dyn edges/graph (%s)", mode.name),
			fmt.Sprintf("%.1f", float64(edges)/float64(max(1, len(col.items)))), "")
		t.AddRow(fmt.Sprintf("clean run sorted vertices (%s)", mode.name),
			res.SortedVertices, "")
	}
	return t, nil
}

// PruneAblation quantifies §8's static pruning: signature and code size
// with and without a skew-bounded candidate pruner, plus the runtime
// assertion failures that would reveal an unsound (too tight) bound.
func PruneAblation(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "Ablation: static candidate pruning (§8)",
		Caption: fmt.Sprintf("%d iterations per cell; asserts >0 would mean the skew bound is unsound on this platform.",
			cfg.Iterations),
		Header: []string{"config", "pruner", "sig bytes", "code kB", "asserts"},
	}
	cfgs := []testgen.Config{
		{Threads: 4, OpsPerThread: 100, Words: 32, Seed: cfg.Seed, Label: "x86-4-100-32"},
		{Threads: 7, OpsPerThread: 200, Words: 64, Seed: cfg.Seed, Label: "ARM-7-200-64"},
	}
	plats := []sim.Platform{sim.PlatformX86(), sim.PlatformARM()}
	for i, tc := range cfgs {
		p, err := testgen.Generate(tc)
		if err != nil {
			return nil, err
		}
		plat := plats[i]
		enc := encodingFor(testgen.ISAX86)
		if i == 1 {
			enc = encodingFor(testgen.ISAARM)
		}
		for _, pr := range []struct {
			name  string
			prune instrument.Pruner
		}{
			{"none", nil},
			{"skew≤192", instrument.SkewPruner(p, 192)},
			{"skew≤96", instrument.SkewPruner(p, 96)},
			{"skew≤32", instrument.SkewPruner(p, 32)},
		} {
			meta, err := instrument.Analyze(p, plat.RegWidthBits, pr.prune)
			if err != nil {
				return nil, err
			}
			gp, err := instrument.Generate(meta, enc)
			if err != nil {
				return nil, err
			}
			_, inst, _ := gp.CodeSizes()
			col, err := collectMode(cfg.Observer, p, plat, cfg.Iterations, cfg.Seed+9, graph.WSStatic, pr.prune)
			if err != nil {
				return nil, err
			}
			t.AddRow(tc.Label, pr.name, meta.SignatureBytes(),
				fmt.Sprintf("%.1f", float64(inst)/1024), col.asserts)
		}
	}
	return t, nil
}

// ScalingAblation sweeps the iteration count on one configuration, showing
// how signature-space density drives the collective checker's advantage —
// the similarity mechanism behind the paper's Fig. 9 results at 65536
// iterations.
func ScalingAblation(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "Ablation: collective-checking advantage vs iteration count",
		Header: []string{"iterations", "unique sigs", "no-resort", "sorted verts (coll)", "sorted verts (conv)", "reduction"},
	}
	tc := testgen.Config{Threads: 4, OpsPerThread: 50, Words: 64, Seed: cfg.Seed}
	p, err := testgen.Generate(tc)
	if err != nil {
		return nil, err
	}
	for _, iters := range []int{256, 1024, 4096} {
		col, err := collectMode(cfg.Observer, p, sim.PlatformX86(), iters, cfg.Seed, graph.WSStatic, nil)
		if err != nil {
			return nil, err
		}
		conv := check.Conventional(col.builder, col.items)
		coll, err := check.Collective(col.builder, col.items)
		if err != nil {
			return nil, err
		}
		_, noResort, _ := coll.Counts()
		t.AddRow(iters, len(col.items), noResort, coll.SortedVertices, conv.SortedVertices,
			report.Percent(float64(conv.SortedVertices-coll.SortedVertices), float64(conv.SortedVertices)))
	}
	return t, nil
}

// FRAblation explains the paper's Fig. 14 ARM result: with from-read edges
// omitted (the construction implied by §8's "stores do not depend on any
// load operations"), every dynamic edge is store→load, stores sort ahead of
// loads, and virtually no graph needs re-sorting — at the price of
// blindness to fr-dependent violations such as CoRR.
func FRAblation(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "Ablation: from-read edges and the ARM no-resort result (Fig. 14)",
		Caption: fmt.Sprintf("%d iterations per config; dropping fr edges trades CoRR-class detection for near-free checking.",
			cfg.Iterations),
		Header: []string{"config", "fr edges", "no-resort", "incremental", "sorted verts", "vs conventional"},
	}
	for _, label := range []string{"ARM-2-100-32", "ARM-4-50-64", "ARM-7-50-64"} {
		var tc testgen.Config
		switch label {
		case "ARM-2-100-32":
			tc = testgen.Config{Threads: 2, OpsPerThread: 100, Words: 32}
		case "ARM-4-50-64":
			tc = testgen.Config{Threads: 4, OpsPerThread: 50, Words: 64}
		case "ARM-7-50-64":
			tc = testgen.Config{Threads: 7, OpsPerThread: 50, Words: 64}
		}
		tc.Seed = cfg.Seed
		p, err := testgen.Generate(tc)
		if err != nil {
			return nil, err
		}
		plat := sim.PlatformARM()
		for _, dropFR := range []bool{false, true} {
			meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
			if err != nil {
				return nil, err
			}
			runner, err := sim.NewRunner(plat, p, cfg.Seed)
			if err != nil {
				return nil, err
			}
			set := sig.NewSet()
			for i := 0; i < cfg.Iterations; i++ {
				ex, err := runner.Run()
				if err != nil {
					return nil, err
				}
				if s, err := meta.EncodeValues(ex.LoadValues); err == nil {
					set.Add(s)
				}
			}
			builder := graph.NewBuilder(p, plat.Model, graph.Options{
				Forwarding: true, WS: graph.WSStatic, DropFR: dropFR,
			})
			items := make([]check.Item, 0, set.Len())
			for _, u := range set.Sorted() {
				cands, err := meta.Decode(u.Sig)
				if err != nil {
					return nil, err
				}
				rf := make(graph.RF, len(cands))
				for id, c := range cands {
					rf[id] = c.Store
				}
				edges, err := builder.DynamicEdges(rf, nil)
				if err != nil {
					return nil, err
				}
				items = append(items, check.Item{Sig: u.Sig, Edges: edges})
			}
			conv := check.Conventional(builder, items)
			coll, err := check.Collective(builder, items)
			if err != nil {
				return nil, err
			}
			_, noResort, incremental := coll.Counts()
			mode := "full (ours)"
			if dropFR {
				mode = "dropped (paper-ARM)"
			}
			t.AddRow(label, mode, noResort, incremental, coll.SortedVertices,
				report.Percent(float64(coll.SortedVertices), float64(conv.SortedVertices)))
		}
	}
	return t, nil
}

// Saturation reproduces the paper's §6.1 iteration-count sensitivity study
// (ARM-2-200-32: 54% unique at 65536 iterations vs 30% at 1M): the fraction
// of unique interleavings falls as the iteration budget grows, because the
// underlying distribution has finite support.
func Saturation(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "Sensitivity: unique-interleaving fraction vs iteration count (§6.1)",
		Caption: "ARM-2-50-32 (the paper used ARM-2-200-32; our simulator's 2-200 configs " +
			"have effectively unbounded interleaving support, so the finite-support " +
			"effect shows on the smaller config).",
		Header: []string{"iterations", "unique", "fraction"},
	}
	tc := testgen.Config{Threads: 2, OpsPerThread: 50, Words: 32, Seed: cfg.Seed}
	p, err := testgen.Generate(tc)
	if err != nil {
		return nil, err
	}
	plat := sim.PlatformARM()
	meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
	if err != nil {
		return nil, err
	}
	runner, err := sim.NewRunner(plat, p, cfg.Seed)
	if err != nil {
		return nil, err
	}
	set := sig.NewSet()
	checkpoints := []int{cfg.Iterations, cfg.Iterations * 4, cfg.Iterations * 16}
	done := 0
	for _, target := range checkpoints {
		for ; done < target; done++ {
			ex, err := runner.Run()
			if err != nil {
				return nil, err
			}
			if s, err := meta.EncodeValues(ex.LoadValues); err == nil {
				set.Add(s)
			}
		}
		t.AddRow(target, set.Len(), report.Percent(float64(set.Len()), float64(target)))
	}
	return t, nil
}

// Atomicity examines store atomicity (§8): on a single-copy platform
// (no store-to-load forwarding) the forwarded-read outcome of the n6 litmus
// disappears — a load can no longer see its own store before global
// visibility — while the store-buffering outcome persists (SB needs no
// same-address forwarding). The checker soundly includes intra-thread rf
// edges only on the single-copy platform; including them under multi-copy
// atomicity is the paper's §8 false-positive footnote (unit-tested in
// internal/graph).
func Atomicity(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "Ablation: store atomicity (§8)",
		Header: []string{"platform", "litmus", "observed", "violations"},
	}
	n6 := prog.NewBuilder("n6", 2, prog.DefaultLayout()).
		Thread().Store(0).Load(0).Load(1).
		Thread().Store(1).Load(1).Load(0).
		MustBuild()
	sb, err := testgen.LitmusByName("SB")
	if err != nil {
		return nil, err
	}
	type subject struct {
		name    string
		prog    *prog.Program
		outcome testgen.Outcome
	}
	subjects := []subject{
		{"SB (r0=r1=0)", sb.Prog, sb.Interesting},
		{"n6 (forwarded reads)", n6, testgen.Outcome{
			n6.Threads[0].Ops[1].ID: n6.Threads[0].Ops[0].Value,
			n6.Threads[0].Ops[2].ID: prog.InitialValue,
			n6.Threads[1].Ops[1].ID: n6.Threads[1].Ops[0].Value,
			n6.Threads[1].Ops[2].ID: prog.InitialValue,
		}},
	}
	for _, atom := range []mcm.Atomicity{mcm.MultiCopy, mcm.SingleCopy} {
		plat := sim.PlatformX86()
		plat.Atomicity = atom
		for _, sub := range subjects {
			meta, err := instrument.Analyze(sub.prog, plat.RegWidthBits, nil)
			if err != nil {
				return nil, err
			}
			runner, err := sim.NewRunner(plat, sub.prog, cfg.Seed)
			if err != nil {
				return nil, err
			}
			builder := graph.NewBuilder(sub.prog, plat.Model, graph.Options{
				Forwarding: atom.AllowsForwarding(),
				WS:         graph.WSStatic,
			})
			observed, violations := 0, 0
			set := sig.NewSet()
			for i := 0; i < cfg.Iterations; i++ {
				ex, err := runner.Run()
				if err != nil {
					return nil, err
				}
				if sub.outcome.MatchesValues(ex.LoadValues) {
					observed++
				}
				if s, err := meta.EncodeValues(ex.LoadValues); err == nil {
					set.Add(s)
				}
			}
			for _, u := range set.Sorted() {
				cands, err := meta.Decode(u.Sig)
				if err != nil {
					return nil, err
				}
				rf := graph.RF{}
				for id, c := range cands {
					rf[id] = c.Store
				}
				g, err := builder.BuildGraph(rf, nil)
				if err != nil {
					return nil, err
				}
				if _, ok := g.TopoSort(); !ok {
					violations++
				}
			}
			t.AddRow(atom.String(), sub.name, observed, violations)
		}
	}
	return t, nil
}

// DynPrune evaluates §8's dynamic (frontier) pruning on TSO platforms.
// Two findings: the information saved by the frontier is small on
// constrained-random tests (each load's candidates come mostly from stores
// the frontier has no grounds to exclude), and — because the frontier
// encodes per-location coherence itself — ld→ld violations from the bug-2
// platform are caught inline by the assert chain at encode time, before any
// graph checking. The paper anticipated the costs ("signature decoding
// becomes complicated as the length of signatures varies"); this measures
// the benefit side.
func DynPrune(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "Ablation: dynamic (frontier) pruning (§8)",
		Caption: fmt.Sprintf("%d iterations per config on the TSO platform; sizes in words excluding headers.",
			cfg.Iterations),
		Header: []string{"config", "static bits", "dynamic bits (avg)", "shrink", "inline asserts (bug 2)"},
	}
	cfgs := []testgen.Config{
		{Threads: 4, OpsPerThread: 100, Words: 8, Seed: cfg.Seed, Label: "x86-4-100-8"},
		{Threads: 7, OpsPerThread: 200, Words: 32, WordsPerLine: 16, Seed: cfg.Seed, Label: "x86-7-200-32"},
	}
	for _, tc := range cfgs {
		p, err := testgen.Generate(tc)
		if err != nil {
			return nil, err
		}
		plat := sim.PlatformX86()
		plat.Cores = 8
		plat.AllocOrder = nil
		meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
		if err != nil {
			return nil, err
		}
		enc, err := instrument.NewDynamicEncoder(meta, plat.Model)
		if err != nil {
			return nil, err
		}
		runner, err := sim.NewRunner(plat, p, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var dynBits float64
		count := 0
		for i := 0; i < cfg.Iterations; i++ {
			ex, err := runner.Run()
			if err != nil {
				return nil, err
			}
			lvs := denseToMap(ex.LoadValues)
			if _, err := enc.Encode(lvs); err != nil {
				return nil, fmt.Errorf("%s: clean platform asserted: %w", tc.Label, err)
			}
			bits, err := enc.InformationBits(lvs)
			if err != nil {
				return nil, err
			}
			dynBits += bits
			count++
		}
		// Same test on the bug-2 platform: frontier asserts fire inline.
		buggy := sim.PlatformGem5(mem.Bugs{}, sim.Bugs{LQSquashSkip: true})
		brunner, err := sim.NewRunner(buggy, p, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		asserts := 0
		for i := 0; i < cfg.Iterations; i++ {
			ex, err := brunner.Run()
			if err != nil {
				return nil, err
			}
			if _, err := enc.Encode(denseToMap(ex.LoadValues)); err != nil {
				asserts++
			}
		}
		staticBits := meta.InformationBits()
		avg := dynBits / float64(count)
		t.AddRow(tc.Label, fmt.Sprintf("%.1f", staticBits), fmt.Sprintf("%.1f", avg),
			report.Percent(staticBits-avg, staticBits),
			asserts)
	}
	return t, nil
}

// Bias examines contention-biased test generation (a minimal instance of
// the advanced generation the paper's §9 surveys): concentrating accesses
// on a hot word subset raises interleaving diversity — and hence coverage —
// per iteration budget on otherwise low-diversity configurations.
func Bias(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:   "Extension: contention-biased generation vs uniform (§9)",
		Caption: fmt.Sprintf("%d iterations per cell on the TSO platform.", cfg.Iterations),
		Header:  []string{"config", "hot-word bias", "unique interleavings"},
	}
	base := []testgen.Config{
		{Threads: 2, OpsPerThread: 50, Words: 32, Seed: cfg.Seed, Label: "x86-2-50-32"},
		{Threads: 4, OpsPerThread: 50, Words: 64, Seed: cfg.Seed, Label: "x86-4-50-64"},
	}
	for _, tc := range base {
		for _, bias := range []float64{0, 0.5, 0.9} {
			c := tc
			c.HotWordBias = bias
			col, err := collect(cfg.Observer, c, sim.PlatformX86(), cfg.Iterations, cfg.Seed+3)
			if err != nil {
				return nil, err
			}
			t.AddRow(tc.Label, fmt.Sprintf("%.1f", bias), len(col.uniques))
		}
	}
	return t, nil
}

// denseToMap converts a dense op-indexed value slice (sim.Execution.LoadValues)
// into the map shape the dynamic encoder consumes; non-load entries are
// harmless extras the encoder never looks up.
func denseToMap(vals []uint32) map[int]uint32 {
	m := make(map[int]uint32, len(vals))
	for id, v := range vals {
		m[id] = v
	}
	return m
}
