// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§7) on the simulated platform: the non-determinism sweep
// (Fig. 8), checking performance (Figs. 9 and 14), execution overhead
// (Fig. 10), intrusiveness (Fig. 11), code size (Fig. 12), the k-medoids
// limit study (Fig. 6), and the bug-injection campaigns (Table 3). Each
// experiment returns a report.Table consumed by cmd/mtc-experiments and by
// the benchmark suite.
//
// Absolute numbers differ from the paper's silicon measurements by design;
// the shapes — which configurations are diverse, who wins and by how much —
// are the reproduction targets (see EXPERIMENTS.md).
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"mtracecheck/internal/check"
	"mtracecheck/internal/cluster"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/isa"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/obs"
	"mtracecheck/internal/report"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
	"mtracecheck/internal/vm"
)

// Config scales the experiment harness. The paper's full scale (65536
// iterations, 10 tests × 5 runs, 101 bug tests) is reachable by flag but
// impractical for routine runs.
type Config struct {
	Iterations  int   // iterations per test run (paper: 65536)
	Tests       int   // distinct random tests per configuration (paper: 10)
	Seed        int64 // master seed
	Fig6Runs    int   // SC-reference executions for the limit study (paper: 1000)
	Table3Tests int   // tests per bug campaign (paper: 101)
	Table3Iters int   // iterations per bug test (paper: 1024)

	// Observer, when non-nil, receives pipeline events from every signature
	// collection the experiments perform (one campaign per collected test).
	// Results are bit-identical with and without it.
	Observer obs.Observer

	// Checker names the backend used wherever an experiment checks graphs
	// without comparing backends (the bug campaigns, the ws ablation).
	// Empty means collective. Experiments that explicitly race backends
	// (Fig9And14) always run their fixed roster regardless.
	Checker string

	// CorpusPath is the directory holding the Corpus experiment's
	// persistent signature corpora (one file per configuration). Empty
	// means a temporary directory removed when the experiment finishes;
	// a real path makes the warm-cache effect persist across invocations.
	CorpusPath string
}

// backend resolves cfg.Checker against the checker registry, defaulting to
// the paper's collective checker.
func (cfg Config) backend() (check.Backend, error) {
	name := cfg.Checker
	if name == "" {
		name = "collective"
	}
	return check.ForName(name)
}

// checkItems runs one checkable-item batch through the configured backend.
func checkItems(cfg Config, b *graph.Builder, items []check.Item) (*check.Result, error) {
	be, err := cfg.backend()
	if err != nil {
		return nil, err
	}
	return be.Check(context.Background(), b, items)
}

// Default returns a laptop-scale configuration preserving every trend.
func Default() Config {
	return Config{Iterations: 512, Tests: 2, Seed: 1, Fig6Runs: 1000,
		Table3Tests: 20, Table3Iters: 256}
}

// Quick returns a configuration small enough for test suites.
func Quick() Config {
	return Config{Iterations: 96, Tests: 1, Seed: 1, Fig6Runs: 120,
		Table3Tests: 3, Table3Iters: 96}
}

// platformFor returns the platform preset for a paper config's ISA flavor.
func platformFor(isa testgen.ISA) sim.Platform {
	if isa == testgen.ISAARM {
		return sim.PlatformARM()
	}
	return sim.PlatformX86()
}

func encodingFor(flavor testgen.ISA) isa.Encoding {
	if flavor == testgen.ISAARM {
		return isa.EncodingRISC
	}
	return isa.EncodingCISC
}

// collected bundles signature collection results for one executed test.
type collected struct {
	meta    *instrument.Meta
	builder *graph.Builder
	uniques []sig.Unique
	items   []check.Item
	asserts int
}

// collect runs a test program for iters iterations on plat and gathers its
// sorted unique signatures plus checkable items.
func collect(o obs.Observer, pc testgen.Config, plat sim.Platform, iters int, seed int64) (*collected, error) {
	p, err := testgen.Generate(pc)
	if err != nil {
		return nil, err
	}
	return collectMode(o, p, plat, iters, seed, graph.WSStatic, nil)
}

// Platforms renders the simulated systems-under-validation (paper Table 1).
func Platforms() *report.Table {
	t := &report.Table{
		Title:   "Table 1: simulated systems under validation",
		Caption: "Substitutes for the paper's silicon platforms (see DESIGN.md).",
		Header:  []string{"system", "MCM", "atomicity", "cores", "reg width", "L1 (sets×ways)", "alloc order"},
	}
	for _, p := range []sim.Platform{sim.PlatformX86(), sim.PlatformARM(),
		sim.PlatformGem5(mem.Bugs{}, sim.Bugs{})} {
		t.AddRow(p.Name, p.Model.String(), p.Atomicity.String(), p.Cores,
			fmt.Sprintf("%d-bit", p.RegWidthBits),
			fmt.Sprintf("%d×%d", p.Mem.Sets, p.Mem.Ways),
			fmt.Sprintf("%v", p.AllocOrder))
	}
	return t
}

// Fig6 reproduces the k-medoids limit study: total differing reads-from
// relationships to the closest medoid, for k ∈ {1,2,3,5,10,30,100,all} on
// two tests executed by the SC reference interpreter.
func Fig6(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "Fig. 6: k-medoids clustering of constraint graphs",
		Caption: fmt.Sprintf("%d SC-reference executions per test; distance = differing rf relationships.",
			cfg.Fig6Runs),
		Header: []string{"k", "test1 (2-50-32) total diff", "test2 (4-50-32) total diff"},
	}
	type study struct {
		unique int
		byK    map[int]int64
	}
	ks := []int{1, 2, 3, 5, 10, 30, 100}
	studies := make([]study, 2)
	configs := []testgen.Config{
		{Threads: 2, OpsPerThread: 50, Words: 32, Seed: cfg.Seed},
		{Threads: 4, OpsPerThread: 50, Words: 32, Seed: cfg.Seed + 1},
	}
	for si, tc := range configs {
		p, err := testgen.Generate(tc)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(si)*97))
		seen := map[string]cluster.Point{}
		for i := 0; i < cfg.Fig6Runs; i++ {
			rf, _ := testgen.SCReference(p, rng)
			key := fmt.Sprint(rf)
			if _, ok := seen[key]; !ok {
				pt := cluster.Point{}
				for k, v := range rf {
					pt[k] = v
				}
				seen[key] = pt
			}
		}
		pts := make([]cluster.Point, 0, len(seen))
		for _, pt := range seen {
			pts = append(pts, pt)
		}
		dist := cluster.DistanceMatrix(pts)
		st := study{unique: len(pts), byK: map[int]int64{}}
		for _, k := range ks {
			kk := k
			if kk > len(pts) {
				kk = len(pts)
			}
			res, err := cluster.Best(dist, kk, 3, rng)
			if err != nil {
				return nil, err
			}
			st.byK[k] = res.TotalDistance
		}
		studies[si] = st
	}
	for _, k := range ks {
		t.AddRow(k, studies[0].byK[k], studies[1].byK[k])
	}
	t.AddRow("unique", studies[0].unique, studies[1].unique)
	return t, nil
}

// fig8Variant describes one bar group of Fig. 8.
type fig8Variant struct {
	name         string
	wordsPerLine int
	osMode       bool
}

var fig8Variants = []fig8Variant{
	{"bare-metal (1 word/line)", 1, false},
	{"4 words/line", 4, false},
	{"16 words/line", 16, false},
	{"Linux (OS mode)", 1, true},
}

// Fig8 measures unique memory-access interleavings across the paper's 21
// configurations and the false-sharing / OS variants.
func Fig8(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "Fig. 8: number of unique memory-access interleavings",
		Caption: fmt.Sprintf("%d iterations × %d tests per configuration (averaged).",
			cfg.Iterations, cfg.Tests),
		Header: []string{"config", fig8Variants[0].name, fig8Variants[1].name,
			fig8Variants[2].name, fig8Variants[3].name, "iters"},
	}
	for _, pc := range testgen.PaperConfigs() {
		cells := make([]any, 0, 6)
		cells = append(cells, pc.Label)
		for _, v := range fig8Variants {
			total := 0
			for test := 0; test < cfg.Tests; test++ {
				tc := pc.Config
				tc.WordsPerLine = v.wordsPerLine
				tc.Seed = cfg.Seed + int64(test)*1009
				plat := platformFor(pc.ISA)
				if v.osMode {
					plat.OS = sim.OSConfig{Enabled: true, Quantum: 400, QuantumJitter: 120, Migrate: true}
				}
				col, err := collect(cfg.Observer, tc, plat, cfg.Iterations, cfg.Seed+int64(test))
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", pc.Label, v.name, err)
				}
				total += len(col.uniques)
			}
			cells = append(cells, total/cfg.Tests)
		}
		cells = append(cells, cfg.Iterations)
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig9And14 measures the collective checker against the conventional one:
// wall-clock topological-sorting time (Fig. 9) and the validation-kind
// breakdown with affected-vertex percentages (Fig. 14). The VC columns race
// the polynomial-time vector-clock backend (TSOtool-style closure) on the
// same items; every backend's verdict must agree or the row errors out.
func Fig9And14(cfg Config) (fig9, fig14 *report.Table, err error) {
	fig9 = &report.Table{
		Title:   "Fig. 9: MCM violation checking — topological sorting speedup",
		Caption: "Collective (MTraceCheck) vs conventional per-graph sorting; PK is this repo's Pearce–Kelly extension, VC the vector-clock closure backend.",
		Header: []string{"config", "unique graphs", "conventional (ms)", "collective (ms)",
			"normalized", "vertices conv", "vertices coll", "PK (ms)", "vertices PK",
			"VC (ms)", "clock updates"},
	}
	fig14 = &report.Table{
		Title:  "Fig. 14: breakdown of collective graph checking",
		Header: []string{"config", "complete", "no re-sort", "incremental", "avg affected vertices"},
	}
	for _, pc := range testgen.PaperConfigs() {
		tc := pc.Config
		tc.Seed = cfg.Seed
		col, cerr := collect(cfg.Observer, tc, platformFor(pc.ISA), cfg.Iterations, cfg.Seed)
		if cerr != nil {
			return nil, nil, fmt.Errorf("%s: %w", pc.Label, cerr)
		}
		start := time.Now()
		conv := check.Conventional(col.builder, col.items)
		convT := time.Since(start)
		start = time.Now()
		coll, cerr := check.Collective(col.builder, col.items)
		collT := time.Since(start)
		if cerr != nil {
			return nil, nil, cerr
		}
		start = time.Now()
		inc, cerr := check.Incremental(col.builder, col.items)
		incT := time.Since(start)
		if cerr != nil {
			return nil, nil, cerr
		}
		start = time.Now()
		vc, cerr := check.VectorClock(col.builder, col.items)
		vcT := time.Since(start)
		if cerr != nil {
			return nil, nil, cerr
		}
		if len(inc.Violations) != len(conv.Violations) ||
			len(vc.Violations) != len(conv.Violations) {
			return nil, nil, fmt.Errorf("%s: checker verdicts disagree (conv %d, inc %d, vc %d)",
				pc.Label, len(conv.Violations), len(inc.Violations), len(vc.Violations))
		}
		norm := "n/a"
		if convT > 0 {
			norm = report.Percent(float64(collT), float64(convT))
		}
		fig9.AddRow(pc.Label, len(col.items),
			fmt.Sprintf("%.3f", float64(convT.Microseconds())/1000),
			fmt.Sprintf("%.3f", float64(collT.Microseconds())/1000),
			norm, conv.SortedVertices, coll.SortedVertices,
			fmt.Sprintf("%.3f", float64(incT.Microseconds())/1000), inc.SortedVertices,
			fmt.Sprintf("%.3f", float64(vcT.Microseconds())/1000), vc.ClockUpdates)

		complete, noResort, incremental := coll.Counts()
		var affected, affCount int64
		for _, gs := range coll.PerGraph {
			if gs.Kind == check.KindIncremental {
				affected += int64(gs.Affected)
				affCount++
			}
		}
		avgAff := "n/a"
		if affCount > 0 {
			avgAff = report.Percent(float64(affected)/float64(affCount), float64(col.builder.NumOps()))
		}
		fig14.AddRow(pc.Label, complete, noResort, incremental, avgAff)
	}
	return fig9, fig14, nil
}

// Fig10 measures test-execution overhead on the ARM-flavor configurations:
// original test cycles, signature-computation cycles (instrumented minus
// original, both interpreted with a persistent branch predictor), and
// signature-sorting time.
func Fig10(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig. 10: test execution — MTraceCheck execution overhead",
		Caption: "VM cost-model cycles across all iterations; sorting is host wall time.",
		Header: []string{"config", "original (Mcycles)", "sig computation (Mcycles)",
			"overhead", "sig sorting (ms)"},
	}
	for _, pc := range testgen.PaperConfigs() {
		if pc.ISA != testgen.ISAARM {
			continue
		}
		tc := pc.Config
		tc.Seed = cfg.Seed
		p, err := testgen.Generate(tc)
		if err != nil {
			return nil, err
		}
		plat := platformFor(pc.ISA)
		meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
		if err != nil {
			return nil, err
		}
		gp, err := instrument.Generate(meta, encodingFor(pc.ISA))
		if err != nil {
			return nil, err
		}
		runner, err := sim.NewRunner(plat, p, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cm := vm.DefaultCostModel()
		orig := make([]*vm.Thread, p.NumThreads())
		inst := make([]*vm.Thread, p.NumThreads())
		for ti := range p.Threads {
			orig[ti] = vm.NewThread(gp.Original[ti], cm)
			inst[ti] = vm.NewThread(gp.Instrumented[ti], cm)
		}
		var origCycles, instCycles int64
		var sigs []sig.Signature
		for i := 0; i < cfg.Iterations; i++ {
			ex, err := runner.Run()
			if err != nil {
				return nil, err
			}
			vals := ex.LoadValues
			lookup := func(id int) (uint32, error) { return vals[id], nil }
			var oMax, iMax int64
			for ti := range p.Threads {
				or, err := orig[ti].Run(lookup, 0)
				if err != nil {
					return nil, err
				}
				ir, err := inst[ti].Run(lookup, 0)
				if err != nil {
					return nil, err
				}
				// The test's wall time is the slowest thread's time.
				if or.Cycles > oMax {
					oMax = or.Cycles
				}
				if ir.Cycles > iMax {
					iMax = ir.Cycles
				}
			}
			origCycles += oMax
			instCycles += iMax
			if s, err := meta.EncodeValues(vals); err == nil {
				sigs = append(sigs, s)
			}
		}
		start := time.Now()
		sig.Sort(sigs)
		sortT := time.Since(start)
		sigComp := instCycles - origCycles
		t.AddRow(pc.Label,
			fmt.Sprintf("%.2f", float64(origCycles)/1e6),
			fmt.Sprintf("%.2f", float64(sigComp)/1e6),
			report.Percent(float64(sigComp), float64(origCycles)),
			fmt.Sprintf("%.3f", float64(sortT.Microseconds())/1000))
	}
	return t, nil
}

// Fig11 measures intrusiveness: memory accesses unrelated to the test
// (signature stores) normalized against the register-flushing baseline, and
// the execution signature size in bytes.
func Fig11(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig. 11: intrusiveness of verification",
		Caption: "Signature stores normalized to register-flushing stores (the paper's ~7% average).",
		Header:  []string{"config", "sig stores/iter", "flush stores/iter", "normalized", "sig bytes"},
	}
	for _, pc := range testgen.PaperConfigs() {
		var sigStores, flushStores, sigBytes float64
		for test := 0; test < cfg.Tests; test++ {
			tc := pc.Config
			tc.Seed = cfg.Seed + int64(test)*1009
			p, err := testgen.Generate(tc)
			if err != nil {
				return nil, err
			}
			plat := platformFor(pc.ISA)
			meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
			if err != nil {
				return nil, err
			}
			loads := 0
			for _, th := range p.Threads {
				loads += len(th.Loads())
			}
			sigStores += float64(meta.TotalWords())
			flushStores += float64(loads)
			sigBytes += float64(meta.SignatureBytes())
		}
		n := float64(cfg.Tests)
		t.AddRow(pc.Label,
			fmt.Sprintf("%.1f", sigStores/n),
			fmt.Sprintf("%.1f", flushStores/n),
			report.Percent(sigStores, flushStores),
			fmt.Sprintf("%.1f", sigBytes/n))
	}
	return t, nil
}

// Fig12 measures code size: instrumented vs original bytes per config under
// the platform's encoding.
func Fig12(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "Fig. 12: code size comparison",
		Header: []string{"config", "original (kB)", "instrumented (kB)", "ratio", "flush (kB)"},
	}
	for _, pc := range testgen.PaperConfigs() {
		var orig, inst, flush float64
		for test := 0; test < cfg.Tests; test++ {
			tc := pc.Config
			tc.Seed = cfg.Seed + int64(test)*1009
			p, err := testgen.Generate(tc)
			if err != nil {
				return nil, err
			}
			plat := platformFor(pc.ISA)
			meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
			if err != nil {
				return nil, err
			}
			gp, err := instrument.Generate(meta, encodingFor(pc.ISA))
			if err != nil {
				return nil, err
			}
			o, i, f := gp.CodeSizes()
			orig += float64(o)
			inst += float64(i)
			flush += float64(f)
		}
		n := float64(cfg.Tests) * 1024
		ratio := inst / orig
		t.AddRow(pc.Label,
			fmt.Sprintf("%.1f", orig/n),
			fmt.Sprintf("%.1f", inst/n),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%.1f", flush/n))
	}
	return t, nil
}

// Table3 runs the three bug-injection campaigns (paper §7): each bug gets
// its calibrated test configuration; detection is reported as tests
// flagging the bug and total violating signatures (bug 3: crashed tests).
func Table3(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "Table 3: bug detection results",
		Caption: fmt.Sprintf("%d random tests per bug, %d iterations each.",
			cfg.Table3Tests, cfg.Table3Iters),
		Header: []string{"bug", "test configuration", "tests detecting", "violating signatures", "result"},
	}
	type campaign struct {
		name string
		tc   testgen.Config
		plat sim.Platform
	}
	campaigns := []campaign{
		{
			name: "1: ld->ld violation (protocol)",
			tc:   testgen.Config{Threads: 4, OpsPerThread: 50, Words: 8, WordsPerLine: 4},
			plat: sim.PlatformGem5(mem.Bugs{StaleSMInv: true}, sim.Bugs{}),
		},
		{
			name: "2: ld->ld violation (LSQ)",
			tc:   testgen.Config{Threads: 7, OpsPerThread: 200, Words: 32, WordsPerLine: 16},
			plat: sim.PlatformGem5(mem.Bugs{}, sim.Bugs{LQSquashSkip: true}),
		},
		{
			name: "3: coherence race",
			tc:   testgen.Config{Threads: 7, OpsPerThread: 200, Words: 64, WordsPerLine: 4},
			plat: bug3Platform(),
		},
	}
	for ci, c := range campaigns {
		testsDetecting, badSigs, crashes := 0, 0, 0
		for test := 0; test < cfg.Table3Tests; test++ {
			tc := c.tc
			tc.Seed = cfg.Seed + int64(ci*10007+test)
			col, err := collectWithCrash(cfg.Observer, tc, c.plat, cfg.Table3Iters, tc.Seed+1)
			if err != nil {
				crashes++
				testsDetecting++
				continue
			}
			coll, err := checkItems(cfg, col.builder, col.items)
			if err != nil {
				return nil, err
			}
			bad := len(coll.Violations) + col.asserts
			if bad > 0 {
				testsDetecting++
				badSigs += len(coll.Violations)
			}
		}
		result := fmt.Sprintf("%d/%d tests", testsDetecting, cfg.Table3Tests)
		if crashes > 0 {
			result = fmt.Sprintf("%d/%d tests crashed", crashes, cfg.Table3Tests)
		}
		label := fmt.Sprintf("x86-%d-%d-%d (%d words/line)",
			c.tc.Threads, c.tc.OpsPerThread, c.tc.Words, c.tc.WordsPerLine)
		t.AddRow(c.name, label, testsDetecting, badSigs, result)
	}
	return t, nil
}

// bug3Platform returns the writeback-race platform with the L1 shrunk to
// 4 sets so the paper's 7-200-64 (4 words/line) working set overflows it —
// the same "calibrated the size and associativity to intensify evictions"
// step the paper describes for its gem5 runs.
func bug3Platform() sim.Platform {
	p := sim.PlatformGem5(mem.Bugs{WBRaceDeadlock: true}, sim.Bugs{})
	p.Mem.Sets = 4
	return p
}

// collectWithCrash is collect, but surfaces simulator crashes (deadlocks) to
// the caller as errors rather than failing the campaign.
func collectWithCrash(o obs.Observer, tc testgen.Config, plat sim.Platform, iters int, seed int64) (*collected, error) {
	return collect(o, tc, plat, iters, seed)
}

// Litmus audits the directed litmus library across all four models
// (extension experiment; the paper's intro scenario).
func Litmus(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:   "Litmus audit across models",
		Caption: fmt.Sprintf("%d iterations per cell; 'obs' = interesting outcome count.", cfg.Iterations),
		Header:  []string{"litmus", "model", "forbidden", "observed", "violations", "verdict"},
	}
	models := []struct {
		name string
		plat func() sim.Platform
	}{
		{"SC", func() sim.Platform { p := sim.PlatformX86(); p.Model = mcm.SC; return p }},
		{"TSO", sim.PlatformX86},
		{"RMO", sim.PlatformARM},
	}
	for _, l := range testgen.LitmusTests() {
		for _, m := range models {
			plat := m.plat()
			p := l.Prog
			runner, err := sim.NewRunner(plat, p, cfg.Seed)
			if err != nil {
				return nil, err
			}
			meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
			if err != nil {
				return nil, err
			}
			builder := graph.NewBuilder(p, plat.Model, graph.Options{
				Forwarding: plat.Atomicity.AllowsForwarding(),
			})
			observed, violations := 0, 0
			set := sig.NewSet()
			wsBySig := map[string]graph.WS{}
			for i := 0; i < cfg.Iterations; i++ {
				ex, err := runner.Run()
				if err != nil {
					return nil, err
				}
				if l.Interesting.MatchesValues(ex.LoadValues) {
					observed++
				}
				if s, err := meta.EncodeValues(ex.LoadValues); err == nil && set.Add(s) {
					wsBySig[s.Key()] = ex.WSByWord()
				}
			}
			for _, u := range set.Sorted() {
				cands, err := meta.Decode(u.Sig)
				if err != nil {
					return nil, err
				}
				rf := graph.RF{}
				for id, c := range cands {
					rf[id] = c.Store
				}
				g, err := builder.BuildGraph(rf, wsBySig[u.Sig.Key()])
				if err != nil {
					return nil, err
				}
				if _, ok := g.TopoSort(); !ok {
					violations++
				}
			}
			forbidden := l.ForbiddenUnder(plat.Model)
			verdict := "ok"
			if forbidden && observed > 0 {
				verdict = "VIOLATION OBSERVED"
			}
			if violations > 0 {
				verdict = "GRAPH VIOLATION"
			}
			t.AddRow(l.Name, m.name, forbidden, observed, violations, verdict)
		}
	}
	return t, nil
}
