package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"mtracecheck"
	"mtracecheck/internal/report"
	"mtracecheck/internal/testgen"
)

// Corpus measures the cross-campaign signature corpus (the warm-cache
// fast path): each paper configuration runs one cold campaign against an
// empty corpus, then an identical warm rerun against the corpus the cold
// run grew. The warm rerun must reproduce the cold verdicts while
// decoding and checking zero graphs — every unique is a corpus hit — so
// the "warm checked" column is the per-configuration work saved by
// memoizing acyclicity verdicts across campaigns.
func Corpus(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "Signature corpus: cold vs warm repeat campaigns",
		Caption: fmt.Sprintf("%d iterations per campaign; the warm rerun consults the corpus grown by the cold run.",
			cfg.Iterations),
		Header: []string{"config", "uniques", "cold checked", "cold appended",
			"warm hits", "warm checked", "verdicts"},
	}
	dir := cfg.CorpusPath
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mtc-corpus-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	for ci, pc := range testgen.PaperConfigs() {
		tc := pc.Config
		tc.Seed = cfg.Seed
		p, err := testgen.Generate(tc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pc.Label, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("corpus-%02d.mtc", ci))
		run := func() (*mtracecheck.Report, error) {
			// Re-open per campaign: the warm run sees exactly what the cold
			// run persisted, the same way two separate invocations would.
			store, err := mtracecheck.OpenCorpus(path)
			if err != nil {
				return nil, err
			}
			c, err := mtracecheck.NewCampaign(p, mtracecheck.Options{
				Platform:   platformFor(pc.ISA),
				Iterations: cfg.Iterations,
				Seed:       cfg.Seed,
				Observer:   cfg.Observer,
				Corpus:     store,
			})
			if err != nil {
				return nil, err
			}
			return c.Run(context.Background())
		}
		cold, err := run()
		if err != nil {
			return nil, fmt.Errorf("%s: cold: %w", pc.Label, err)
		}
		warm, err := run()
		if err != nil {
			return nil, fmt.Errorf("%s: warm: %w", pc.Label, err)
		}
		verdict := "identical"
		if cold.UniqueSignatures != warm.UniqueSignatures ||
			len(cold.Violations) != len(warm.Violations) ||
			len(cold.AssertionFailures) != len(warm.AssertionFailures) {
			verdict = "MISMATCH"
		}
		t.AddRow(pc.Label, cold.UniqueSignatures, graphsChecked(cold), cold.CorpusAppended,
			warm.CorpusHits, graphsChecked(warm), verdict)
	}
	return t, nil
}

func graphsChecked(r *mtracecheck.Report) int {
	if r.CheckStats == nil {
		return 0
	}
	return r.CheckStats.Total
}
