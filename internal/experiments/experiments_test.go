package experiments

import (
	"fmt"
	"strings"
	"testing"

	"mtracecheck/internal/report"
)

// renderable asserts a table has content and renders without error.
func renderable(t *testing.T, tbl *report.Table, wantRows int) {
	t.Helper()
	if tbl == nil {
		t.Fatal("nil table")
	}
	if len(tbl.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want at least %d", tbl.Title, len(tbl.Rows), wantRows)
	}
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), tbl.Header[0]) {
		t.Error("rendered output missing header")
	}
}

func TestPlatformsTable(t *testing.T) {
	renderable(t, Platforms(), 3)
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	tbl, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, tbl, 8)
	// The paper's trend: distance decreases with k, and test2 (4 threads)
	// is looser than test1 (2 threads) at every k.
	var prev1 int64 = 1 << 62
	for i := 0; i < len(tbl.Rows)-1; i++ {
		var d1, d2 int64
		if _, err := fmtSscan(tbl.Rows[i][1], &d1); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(tbl.Rows[i][2], &d2); err != nil {
			t.Fatal(err)
		}
		if d1 > prev1 {
			t.Errorf("test1 distance rose at k row %d: %d > %d", i, d1, prev1)
		}
		prev1 = d1
		if d2 < d1 {
			t.Errorf("row %d: test2 (%d) tighter than test1 (%d)", i, d2, d1)
		}
	}
}

func TestFig11Fig12Static(t *testing.T) {
	cfg := Quick()
	f11, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, f11, 21)
	f12, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, f12, 21)
}

func TestFig9And14Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	cfg.Iterations = 48
	f9, f14, err := Fig9And14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, f9, 21)
	renderable(t, f14, 21)
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	tbl, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, tbl, 3)
}

func TestLitmusQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	cfg.Iterations = 120
	tbl, err := Litmus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, tbl, 8)
	for _, row := range tbl.Rows {
		if strings.Contains(row[5], "VIOLATION") {
			t.Errorf("clean platform flagged: %v", row)
		}
	}
}

// fmtSscan wraps fmt.Sscan for table cells.
func fmtSscan(s string, v *int64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestNewAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Quick()
	fr, err := FRAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, fr, 6)
	sat, err := Saturation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, sat, 3)
	at, err := Atomicity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, at, 4)
	ws, err := WSAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, ws, 2)
	pr, err := PruneAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, pr, 8)
	sc, err := ScalingAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, sc, 3)
}

func TestDynPruneQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := DynPrune(Quick())
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, tbl, 2)
}

func TestBiasQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Bias(Quick())
	if err != nil {
		t.Fatal(err)
	}
	renderable(t, tbl, 6)
}
