// Package trace is the neutral representation of externally observed
// executions: per-thread sequences of top-level memory requests and
// responses, in the style of the Axe consistency checker's trace files
// (CTSRD-CHERI/axe). A trace records what some memory subsystem — real
// silicon, an RTL simulation, another simulator — actually did: the stores
// each thread issued and the value each load response carried. Checking a
// trace against a memory consistency model needs nothing else, which is
// what makes the format the front door for executions this repository's own
// simulator never produced.
//
// A trace maps onto the existing checking machinery by Bind: the per-thread
// operation sequences become a prog.Program (with the framework's canonical
// unique store values), and each load's observed value resolves to the
// store that wrote it — the reads-from relation the constraint-graph
// builder consumes. The text grammar lives in Parse/Format; the golden
// files under testdata/ are the committed examples.
package trace

import (
	"fmt"

	"mtracecheck/internal/prog"
)

// Kind classifies one trace operation.
type Kind uint8

const (
	// Load is a read request whose response carried Value.
	Load Kind = iota
	// Store is a write request of Value.
	Store
	// Fence is a full memory barrier ("sync" in the text format).
	Fence
)

// String returns the text-format spelling of the kind's operator.
func (k Kind) String() string {
	switch k {
	case Load:
		return "=="
	case Store:
		return ":="
	case Fence:
		return "sync"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one observed memory request/response.
type Op struct {
	Thread int    // issuing thread ID (non-negative; need not be dense)
	Kind   Kind   // Load, Store, or Fence
	Addr   uint64 // byte address; 0 for fences
	Value  uint64 // store: value written; load: value the response carried
	Line   int    // 1-based source line in the parsed file; 0 if constructed
}

// String renders the op as one canonical trace line (without newline),
// re-parseable by Parse.
func (o Op) String() string {
	if o.Kind == Fence {
		return fmt.Sprintf("%d: sync", o.Thread)
	}
	return fmt.Sprintf("%d: M[%#x] %s %d", o.Thread, o.Addr, o.Kind, o.Value)
}

// Trace is one observed execution: operations in file order, which within
// each thread is that thread's program order. Order across threads carries
// no meaning — the trace records what happened, not when.
type Trace struct {
	Ops []Op
}

// InitialValue is the value every address holds before the execution
// starts, matching both Axe's convention and prog.InitialValue.
const InitialValue uint64 = 0

// Structural bounds. They exist so hostile or corrupt inputs fail fast with
// a clear error instead of exhausting memory: op IDs must fit the checker's
// int32 vertices, and thread IDs size per-thread bookkeeping.
const (
	// MaxOps bounds the operation count of one trace.
	MaxOps = 1 << 20
	// MaxThreadID bounds thread IDs (IDs need not be dense below it).
	MaxThreadID = 1 << 16
)

// NumThreads returns the number of distinct thread IDs observed.
func (t *Trace) NumThreads() int {
	seen := make(map[int]bool)
	for _, op := range t.Ops {
		seen[op.Thread] = true
	}
	return len(seen)
}

// NumAddrs returns the number of distinct addresses accessed.
func (t *Trace) NumAddrs() int {
	seen := make(map[uint64]bool)
	for _, op := range t.Ops {
		if op.Kind != Fence {
			seen[op.Addr] = true
		}
	}
	return len(seen)
}

// Equal reports whether two traces record the same operations in the same
// order, ignoring source-line provenance.
func (t *Trace) Equal(u *Trace) bool {
	if len(t.Ops) != len(u.Ops) {
		return false
	}
	for i, a := range t.Ops {
		b := u.Ops[i]
		if a.Thread != b.Thread || a.Kind != b.Kind || a.Addr != b.Addr || a.Value != b.Value {
			return false
		}
	}
	return true
}

// line renders an op's source position for error messages.
func (o Op) line() string {
	if o.Line > 0 {
		return fmt.Sprintf("line %d", o.Line)
	}
	return fmt.Sprintf("op %d", o.Thread)
}

// Validate checks the structural rules that make a trace checkable:
//
//   - bounds: at most MaxOps operations, thread IDs in [0, MaxThreadID);
//   - store distinguishability: for each address, every store value is
//     distinct and none equals InitialValue, so any load response
//     identifies exactly one writer (the property MTraceCheck's own test
//     generator guarantees by construction, here demanded of the input).
//
// Load responses carrying a value no store wrote are NOT structural errors:
// they are findings (an impossible observation under every model) and are
// surfaced by Bind as value faults, so a checker can report them instead of
// refusing the trace.
func (t *Trace) Validate() error {
	if len(t.Ops) > MaxOps {
		return fmt.Errorf("trace: %d operations exceed the %d limit", len(t.Ops), MaxOps)
	}
	type write struct {
		addr, val uint64
	}
	writers := make(map[write]int) // -> source line of the first writer
	for _, op := range t.Ops {
		if op.Thread < 0 || op.Thread >= MaxThreadID {
			return fmt.Errorf("trace: %s: thread ID %d out of range [0, %d)", op.line(), op.Thread, MaxThreadID)
		}
		if op.Kind != Store {
			continue
		}
		if op.Value == InitialValue {
			return fmt.Errorf("trace: %s: store of the initial value %d to %#x is indistinguishable from no store", op.line(), InitialValue, op.Addr)
		}
		key := write{op.Addr, op.Value}
		if prev, dup := writers[key]; dup {
			return fmt.Errorf("trace: %s: duplicate store of %d to %#x (first at line %d): load responses would be ambiguous", op.line(), op.Value, op.Addr, prev)
		}
		writers[key] = op.Line
	}
	return nil
}

// ValueFault is one load response carrying a value no store to its address
// ever wrote — impossible under every memory consistency model, and
// therefore a finding in its own right (the trace-mode analogue of the
// instrumentation's inline assertion failures).
type ValueFault struct {
	Op   Op  // the offending load
	OpID int // the bound program operation ID
}

func (f *ValueFault) Error() string {
	return fmt.Sprintf("trace: %s: thread %d load of %#x observed %d, a value never written to that address", f.Op.line(), f.Op.Thread, f.Op.Addr, f.Op.Value)
}

// Binding is a trace mapped onto the checking machinery's representation.
type Binding struct {
	// Trace is the source trace.
	Trace *Trace
	// Prog mirrors the trace's per-thread operation sequences as a test
	// program: threads in ascending trace-thread-ID order, each thread's
	// operations in trace order, addresses renumbered to dense shared-word
	// indices, and stores carrying the framework's canonical values
	// (ID+1) rather than the trace's observed ones.
	Prog *prog.Program
	// RF maps each load's program operation ID to the program operation ID
	// of the store whose value its response carried, or -1 for a read of
	// the initial value. Loads with value faults are absent — they
	// constrain nothing.
	RF map[int]int
	// Addrs maps shared-word indices back to the trace's byte addresses.
	Addrs []uint64
	// Threads maps program thread indices back to trace thread IDs.
	Threads []int
	// Source maps program operation IDs to indices into Trace.Ops.
	Source []int
	// ValueFaults lists loads whose response value no store wrote — each
	// one a finding (see ValueFault).
	ValueFaults []error
}

// AddrOfOp returns the trace byte address accessed by a bound program
// operation ID (fences return 0).
func (b *Binding) AddrOfOp(id int) uint64 {
	return b.Trace.Ops[b.Source[id]].Addr
}

// Bind maps the trace onto the checking machinery: a prog.Program plus the
// reads-from relation resolved from observed values. The trace must have
// passed Validate; Bind reports structural inconsistencies it depends on,
// but its error messages assume validation ran first.
//
// The construction is the inverse of what MTraceCheck's signature decoder
// produces for simulator runs: there the program is known and the rf
// relation is decoded from the signature; here both are reconstructed from
// the observed trace. Downstream — graph.Builder.DynamicEdges over
// (Prog, RF), then any registered checking backend — the two front doors
// are indistinguishable.
func (t *Trace) Bind() (*Binding, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}

	// Dense renumbering: threads in ascending trace-ID order, addresses in
	// first-appearance order (keeps word indices stable under reordering
	// of unrelated threads' lines).
	threadIDs := make([]int, 0, 8)
	seenThread := make(map[int]int) // trace thread ID -> program thread index
	for _, op := range t.Ops {
		if _, ok := seenThread[op.Thread]; !ok {
			seenThread[op.Thread] = -1 // mark; index assigned after sorting
			threadIDs = append(threadIDs, op.Thread)
		}
	}
	sortInts(threadIDs)
	for i, id := range threadIDs {
		seenThread[id] = i
	}
	var addrs []uint64
	wordOf := make(map[uint64]int)
	for _, op := range t.Ops {
		if op.Kind == Fence {
			continue
		}
		if _, ok := wordOf[op.Addr]; !ok {
			wordOf[op.Addr] = len(addrs)
			addrs = append(addrs, op.Addr)
		}
	}

	// Assemble the program directly (thread-major IDs, canonical store
	// values) rather than via prog.Builder — one pass, no quadratic ID
	// recounting on large traces.
	perThread := make([][]int, len(threadIDs)) // program thread -> trace op indices
	for i, op := range t.Ops {
		ti := seenThread[op.Thread]
		perThread[ti] = append(perThread[ti], i)
	}
	p := &prog.Program{
		Name:     "external-trace",
		NumWords: len(addrs),
		Layout:   prog.DefaultLayout(),
		Threads:  make([]prog.Thread, len(threadIDs)),
	}
	source := make([]int, 0, len(t.Ops))
	id := 0
	for ti, idxs := range perThread {
		ops := make([]prog.Op, 0, len(idxs))
		for oi, i := range idxs {
			top := t.Ops[i]
			op := prog.Op{ID: id, Thread: ti, Index: oi}
			switch top.Kind {
			case Load:
				op.Kind, op.Word = prog.Load, wordOf[top.Addr]
			case Store:
				op.Kind, op.Word = prog.Store, wordOf[top.Addr]
				op.Value = uint32(id) + 1
			case Fence:
				op.Kind, op.Word = prog.Fence, -1
			default:
				return nil, fmt.Errorf("trace: %s: unknown op kind %d", top.line(), top.Kind)
			}
			ops = append(ops, op)
			source = append(source, i)
			id++
		}
		p.Threads[ti] = prog.Thread{Ops: ops}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("trace: bound program invalid: %w", err)
	}

	// Resolve reads-from: a load's observed value identifies its writer by
	// the store-distinguishability rule Validate enforced.
	type write struct {
		addr, val uint64
	}
	storeID := make(map[write]int, len(t.Ops)/2)
	for opID, srcIdx := range source {
		top := t.Ops[srcIdx]
		if top.Kind == Store {
			storeID[write{top.Addr, top.Value}] = opID
		}
	}
	b := &Binding{
		Trace: t, Prog: p, RF: make(map[int]int),
		Addrs: addrs, Threads: threadIDs, Source: source,
	}
	for opID, srcIdx := range source {
		top := t.Ops[srcIdx]
		if top.Kind != Load {
			continue
		}
		if top.Value == InitialValue {
			b.RF[opID] = -1
			continue
		}
		st, ok := storeID[write{top.Addr, top.Value}]
		if !ok {
			b.ValueFaults = append(b.ValueFaults, &ValueFault{Op: top, OpID: opID})
			continue
		}
		b.RF[opID] = st
	}
	return b, nil
}

// sortInts is a tiny insertion sort — thread ID lists are short, and using
// it keeps the package free of a sort import its hot paths don't need.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
