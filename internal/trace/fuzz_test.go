package trace

import (
	"strings"
	"testing"
)

// FuzzTraceParse checks three properties on arbitrary input:
//
//  1. Parse never panics and either errors or returns a trace;
//  2. canonical round trip: Format(Parse(x)) re-parses to an Equal trace;
//  3. Validate and Bind never panic on whatever parses.
func FuzzTraceParse(f *testing.F) {
	f.Add("0: M[0x10] := 1\n0: M[0x14] == 0\n1: M[0x14] := 2\n1: M[0x10] == 0\n")
	f.Add("0: sync\n")
	f.Add("# comment\n\n3: M[20] == 0x5\n")
	f.Add("0: M[0] := 0\n")
	f.Add("65535: M[0xffffffffffffffff] == 18446744073709551615\n")
	f.Add("0: M[1] := 7\n1: M[1] := 7\n")
	f.Add("0: M[0x10] == 42\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		again, err := Parse(strings.NewReader(tr.String()))
		if err != nil {
			t.Fatalf("canonical form failed to re-parse: %v\ncanonical:\n%s", err, tr.String())
		}
		if !tr.Equal(again) {
			t.Fatalf("round trip changed the trace\nin: %q\nfirst:  %+v\nsecond: %+v", in, tr.Ops, again.Ops)
		}
		if err := tr.Validate(); err != nil {
			return
		}
		b, err := tr.Bind()
		if err != nil {
			t.Fatalf("validated trace failed to bind: %v", err)
		}
		if err := b.Prog.Validate(); err != nil {
			t.Fatalf("bound program invalid: %v", err)
		}
		if len(b.Source) != len(tr.Ops) {
			t.Fatalf("source map has %d entries, want %d", len(b.Source), len(tr.Ops))
		}
	})
}
