package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtracecheck/internal/prog"
)

func parseString(t *testing.T, s string) *Trace {
	t.Helper()
	tr, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tr
}

func TestParseBasic(t *testing.T) {
	tr := parseString(t, `
# comment line
0: M[0x10] := 1   # trailing comment
0: M[0x14] == 0
1: sync
3: M[0x20] == 0x5
`)
	want := []Op{
		{Thread: 0, Kind: Store, Addr: 0x10, Value: 1, Line: 3},
		{Thread: 0, Kind: Load, Addr: 0x14, Value: 0, Line: 4},
		{Thread: 1, Kind: Fence, Line: 5},
		{Thread: 3, Kind: Load, Addr: 0x20, Value: 5, Line: 6},
	}
	if len(tr.Ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(tr.Ops), len(want))
	}
	for i, op := range tr.Ops {
		if op != want[i] {
			t.Errorf("op %d: got %+v, want %+v", i, op, want[i])
		}
	}
	if got := tr.NumThreads(); got != 3 {
		t.Errorf("NumThreads = %d, want 3", got)
	}
	if got := tr.NumAddrs(); got != 3 {
		t.Errorf("NumAddrs = %d, want 3", got)
	}
}

func TestParseEmpty(t *testing.T) {
	tr := parseString(t, "\n# only comments\n\n")
	if len(tr.Ops) != 0 {
		t.Fatalf("got %d ops, want 0", len(tr.Ops))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("empty trace should validate: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		// Without an explicit separator the ":" of ":=" is taken as the
		// thread delimiter, so the diagnosis lands on the thread ID.
		{"no colon", "0 M[1] := 2", "thread ID"},
		{"bad tid", "x: sync", "thread ID"},
		{"negative tid", "-1: sync", "thread ID"},
		{"huge tid", "99999999: sync", "out of range"},
		{"bad keyword", "0: load 5", `"sync"`},
		{"unterminated addr", "0: M[0x10 := 1", "unterminated"},
		{"bad addr", "0: M[zz] := 1", "bad address"},
		{"bad op", "0: M[1] <- 2", `":="`},
		{"bad value", "0: M[1] := ", "bad value"},
		{"octalish", "0: M[010] := 1", "leading zeros"},
		{"underscore", "0: M[1_0] := 1", "bad address"},
		{"signed value", "0: M[1] := +2", "bad value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("Parse(%q) error %q does not mention %q", tc.in, err, tc.wantSub)
			}
			var pe *ParseError
			if !asParseError(err, &pe) {
				t.Errorf("Parse(%q) error is %T, want *ParseError", tc.in, err)
			} else if pe.Line != 1 {
				t.Errorf("Parse(%q) error line = %d, want 1", tc.in, pe.Line)
			}
		})
	}
}

func asParseError(err error, out **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*out = pe
	}
	return ok
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"store of zero", "0: M[1] := 0", "initial value"},
		{"duplicate store value", "0: M[1] := 7\n1: M[1] := 7", "duplicate store"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := parseString(t, tc.in)
			err := tr.Validate()
			if err == nil {
				t.Fatalf("Validate succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("Validate error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	// Same value to different addresses is fine.
	tr := parseString(t, "0: M[1] := 7\n1: M[2] := 7")
	if err := tr.Validate(); err != nil {
		t.Errorf("distinct-address same-value stores should validate: %v", err)
	}
}

func TestRoundTripGoldenFiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.trace"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden traces found: %v", err)
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := Parse(strings.NewReader(string(data)))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if len(tr.Ops) == 0 {
				t.Fatal("golden trace has no operations")
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			again, err := Parse(strings.NewReader(tr.String()))
			if err != nil {
				t.Fatalf("re-Parse of canonical form: %v", err)
			}
			if !tr.Equal(again) {
				t.Errorf("round trip changed the trace:\noriginal: %+v\nreparsed: %+v", tr.Ops, again.Ops)
			}
			if _, err := tr.Bind(); err != nil {
				t.Errorf("Bind: %v", err)
			}
		})
	}
}

func TestBindSB(t *testing.T) {
	// Store buffering with sparse thread IDs and hex/decimal mixing: checks
	// thread compaction, address renumbering, and rf resolution.
	tr := parseString(t, `
5: M[0x10] := 3
5: M[0x14] == 0
2: M[0x14] := 9
2: M[16] == 3
`)
	b, err := tr.Bind()
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if got, want := b.Prog.NumThreads(), 2; got != want {
		t.Fatalf("threads = %d, want %d", got, want)
	}
	// Thread IDs compact ascending: trace thread 2 -> program thread 0.
	if b.Threads[0] != 2 || b.Threads[1] != 5 {
		t.Fatalf("thread map = %v, want [2 5]", b.Threads)
	}
	if err := b.Prog.Validate(); err != nil {
		t.Fatalf("bound program invalid: %v", err)
	}
	if b.Prog.NumWords != 2 {
		t.Fatalf("NumWords = %d, want 2", b.Prog.NumWords)
	}
	// Program thread 0 = trace thread 2 = ops {st 0x14:=9, ld 0x10==3}:
	// IDs 0,1. Program thread 1 = trace thread 5 = {st 0x10:=3,
	// ld 0x14==0}: IDs 2,3.
	if op := b.Prog.OpByID(0); op.Kind != prog.Store {
		t.Errorf("op 0 kind = %v, want store", op.Kind)
	}
	// Load 1 (M[16]==3, decimal 16 == 0x10) read thread 5's store (ID 2).
	if got, want := b.RF[1], 2; got != want {
		t.Errorf("RF[1] = %d, want %d", got, want)
	}
	// Load 3 (M[0x14]==0) read the initial value.
	if got, want := b.RF[3], -1; got != want {
		t.Errorf("RF[3] = %d, want %d", got, want)
	}
	if len(b.ValueFaults) != 0 {
		t.Errorf("unexpected value faults: %v", b.ValueFaults)
	}
	// Addresses map back.
	if b.AddrOfOp(1) != 0x10 || b.AddrOfOp(0) != 0x14 {
		t.Errorf("AddrOfOp mapping wrong: op1=%#x op0=%#x", b.AddrOfOp(1), b.AddrOfOp(0))
	}
}

func TestBindValueFault(t *testing.T) {
	tr := parseString(t, `
0: M[0x10] := 1
1: M[0x10] == 42
`)
	b, err := tr.Bind()
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if len(b.ValueFaults) != 1 {
		t.Fatalf("got %d value faults, want 1: %v", len(b.ValueFaults), b.ValueFaults)
	}
	if !strings.Contains(b.ValueFaults[0].Error(), "never written") {
		t.Errorf("fault message %q lacks explanation", b.ValueFaults[0])
	}
	// The faulted load must not constrain the graph.
	if _, ok := b.RF[1]; ok {
		t.Errorf("faulted load has an RF entry")
	}
}

func TestBindFence(t *testing.T) {
	tr := parseString(t, `
0: M[0x10] := 1
0: sync
0: M[0x14] == 0
`)
	b, err := tr.Bind()
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if op := b.Prog.OpByID(1); op.Kind != prog.Fence || op.Word != -1 {
		t.Errorf("op 1 = %+v, want fence with word -1", op)
	}
}

func TestBindTooManyOps(t *testing.T) {
	tr := &Trace{Ops: make([]Op, MaxOps+1)}
	for i := range tr.Ops {
		tr.Ops[i] = Op{Thread: 0, Kind: Load, Addr: 0x10}
	}
	if _, err := tr.Bind(); err == nil {
		t.Fatal("Bind accepted an oversized trace")
	}
}
