package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format, one operation per line, in the style of Axe traces:
//
//	<tid>: M[<addr>] := <val>     store request
//	<tid>: M[<addr>] == <val>     load response
//	<tid>: sync                   full memory barrier
//
// `#` starts a comment running to end of line; blank lines are ignored.
// Numbers are unsigned decimal or 0x-prefixed hexadecimal. File order is
// per-thread program order; interleaving across threads carries no meaning.

// ParseError reports a malformed trace line with its position.
type ParseError struct {
	Line int    // 1-based line number
	Text string // the offending line, comment stripped and trimmed
	Msg  string // what was wrong
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Parse reads a trace in the text format. It stops at the first malformed
// line, returning a *ParseError. A trace with no operations is valid (and
// trivially consistent).
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		op, err := parseLine(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		op.Line = lineNo
		t.Ops = append(t.Ops, op)
		if len(t.Ops) > MaxOps {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: fmt.Sprintf("more than %d operations", MaxOps)}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return t, nil
}

// parseLine parses one non-empty, comment-stripped line.
func parseLine(line string) (Op, error) {
	head, rest, ok := strings.Cut(line, ":")
	if !ok {
		return Op{}, fmt.Errorf("missing thread prefix %q", "<tid>:")
	}
	tid, err := parseNum(strings.TrimSpace(head))
	if err != nil {
		return Op{}, fmt.Errorf("bad thread ID: %v", err)
	}
	if tid >= MaxThreadID {
		return Op{}, fmt.Errorf("thread ID %d out of range [0, %d)", tid, MaxThreadID)
	}
	op := Op{Thread: int(tid)}
	rest = strings.TrimSpace(rest)

	if rest == "sync" {
		op.Kind = Fence
		return op, nil
	}
	if !strings.HasPrefix(rest, "M[") {
		return Op{}, fmt.Errorf("expected %q, %q, or %q after thread ID", "M[<addr>] := <val>", "M[<addr>] == <val>", "sync")
	}
	addrTxt, rest, ok := strings.Cut(rest[len("M["):], "]")
	if !ok {
		return Op{}, fmt.Errorf("unterminated address: missing %q", "]")
	}
	if op.Addr, err = parseNum(strings.TrimSpace(addrTxt)); err != nil {
		return Op{}, fmt.Errorf("bad address: %v", err)
	}
	rest = strings.TrimSpace(rest)
	var valTxt string
	switch {
	case strings.HasPrefix(rest, ":="):
		op.Kind, valTxt = Store, rest[len(":="):]
	case strings.HasPrefix(rest, "=="):
		op.Kind, valTxt = Load, rest[len("=="):]
	default:
		return Op{}, fmt.Errorf("expected %q (store) or %q (load response) after address", ":=", "==")
	}
	if op.Value, err = parseNum(strings.TrimSpace(valTxt)); err != nil {
		return Op{}, fmt.Errorf("bad value: %v", err)
	}
	return op, nil
}

// parseNum accepts unsigned decimal or 0x-prefixed hexadecimal. Base 0 with
// a leading-zero octal/underscore rejection keeps the accepted grammar
// exactly what Format emits plus plain decimal.
func parseNum(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	if strings.ContainsAny(s, "_+- ") {
		return 0, fmt.Errorf("malformed number %q", s)
	}
	if len(s) > 1 && s[0] == '0' && s[1] != 'x' && s[1] != 'X' {
		return 0, fmt.Errorf("leading zeros not allowed in %q", s)
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed number %q", s)
	}
	return v, nil
}

// Format writes the trace in canonical text form: one op per line,
// addresses hexadecimal, values decimal. Parse(Format(t)) yields a trace
// Equal to t.
func Format(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, op := range t.Ops {
		if op.Kind != Store && op.Kind != Load && op.Kind != Fence {
			return fmt.Errorf("trace: cannot format op of kind %d", op.Kind)
		}
		if _, err := fmt.Fprintln(bw, op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// String renders the trace in canonical text form.
func (t *Trace) String() string {
	var b strings.Builder
	_ = Format(&b, t)
	return b.String()
}
