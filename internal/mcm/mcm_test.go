package mcm

import (
	"testing"

	"mtracecheck/internal/prog"
)

func TestOrderedMatrix(t *testing.T) {
	// want[model][first][second] for first,second in {Load, Store}.
	type pair struct{ a, b prog.OpKind }
	ordered := map[Model]map[pair]bool{
		SC: {
			{prog.Load, prog.Load}: true, {prog.Load, prog.Store}: true,
			{prog.Store, prog.Load}: true, {prog.Store, prog.Store}: true,
		},
		TSO: {
			{prog.Load, prog.Load}: true, {prog.Load, prog.Store}: true,
			{prog.Store, prog.Load}: false, {prog.Store, prog.Store}: true,
		},
		PSO: {
			{prog.Load, prog.Load}: true, {prog.Load, prog.Store}: true,
			{prog.Store, prog.Load}: false, {prog.Store, prog.Store}: false,
		},
		RMO: {
			{prog.Load, prog.Load}: false, {prog.Load, prog.Store}: false,
			{prog.Store, prog.Load}: false, {prog.Store, prog.Store}: false,
		},
	}
	for m, table := range ordered {
		for p, want := range table {
			if got := m.Ordered(p.a, p.b); got != want {
				t.Errorf("%v.Ordered(%v, %v) = %v, want %v", m, p.a, p.b, got, want)
			}
		}
	}
}

func TestFencesOrderEverything(t *testing.T) {
	kinds := []prog.OpKind{prog.Load, prog.Store, prog.Fence}
	for _, m := range Models {
		for _, k := range kinds {
			if !m.Ordered(prog.Fence, k) {
				t.Errorf("%v: fence->%v not ordered", m, k)
			}
			if !m.Ordered(k, prog.Fence) {
				t.Errorf("%v: %v->fence not ordered", m, k)
			}
		}
	}
}

func TestSameAddrAlwaysOrdered(t *testing.T) {
	kinds := []prog.OpKind{prog.Load, prog.Store}
	for _, m := range Models {
		for _, a := range kinds {
			for _, b := range kinds {
				if !m.OrderedSameAddr(a, b) {
					t.Errorf("%v.OrderedSameAddr(%v, %v) = false", m, a, b)
				}
			}
		}
	}
}

func TestWeakerThanHierarchy(t *testing.T) {
	// SC < TSO < PSO < RMO in weakness.
	chain := []Model{SC, TSO, PSO, RMO}
	for i, weak := range chain {
		for j, strong := range chain {
			want := i > j
			if got := weak.WeakerThan(strong); got != want {
				t.Errorf("%v.WeakerThan(%v) = %v, want %v", weak, strong, got, want)
			}
		}
	}
}

func TestRelaxationCounts(t *testing.T) {
	want := map[Model]int{SC: 0, TSO: 1, PSO: 2, RMO: 4}
	for m, n := range want {
		if got := len(m.Relaxations()); got != n {
			t.Errorf("%v: %d relaxations (%v), want %d", m, got, m.Relaxations(), n)
		}
	}
}

func TestParse(t *testing.T) {
	good := map[string]Model{
		"sc": SC, "SC": SC,
		"tso": TSO, "x86": TSO, "X86-TSO": TSO,
		"rmo": RMO, "weak": RMO, "arm": RMO,
		"pso": PSO, " TSO ": TSO,
	}
	for s, want := range good {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse accepted bogus model name")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, m := range Models {
		back, err := Parse(m.String())
		if err != nil || back != m {
			t.Errorf("Parse(%v.String()) = %v, %v", m, back, err)
		}
	}
}

func TestAtomicity(t *testing.T) {
	if SingleCopy.AllowsForwarding() {
		t.Error("single-copy must not forward")
	}
	if !MultiCopy.AllowsForwarding() || !NonMultiCopy.AllowsForwarding() {
		t.Error("multi-copy and non-multi-copy must forward")
	}
	names := map[Atomicity]string{
		MultiCopy: "multi-copy", SingleCopy: "single-copy", NonMultiCopy: "non-multi-copy",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}
