// Package mcm defines memory consistency models as ordering predicates over
// program-order pairs of operations, plus fence and store-atomicity
// semantics. These predicates drive both the execution engine (which
// reorderings the simulated hardware may perform) and the constraint-graph
// builder (which program-order edges must hold in a valid execution).
//
// The models follow the paper's usage:
//
//   - SC  — sequential consistency: all four program-order pairs preserved.
//   - TSO — total store order (x86 / SPARC TSO): only store→load relaxed;
//     stores drain through a FIFO store buffer with own-store forwarding.
//   - PSO — partial store order: store→load and store→store relaxed.
//   - RMO — relaxed memory order (the paper's "weakly-ordered" ARM stand-in):
//     all four pairs relaxed; only fences and same-address coherence order
//     remain.
package mcm

import (
	"fmt"
	"strings"

	"mtracecheck/internal/prog"
)

// Model identifies a memory consistency model.
type Model uint8

const (
	// SC is sequential consistency (Lamport).
	SC Model = iota
	// TSO is total store order (x86-TSO).
	TSO
	// PSO is partial store order.
	PSO
	// RMO is relaxed memory order; the weak model used for the ARM-like
	// platform in the paper.
	RMO
)

// Models lists all supported models, strongest first.
var Models = []Model{SC, TSO, PSO, RMO}

// String returns the conventional short name of the model.
func (m Model) String() string {
	switch m {
	case SC:
		return "SC"
	case TSO:
		return "TSO"
	case PSO:
		return "PSO"
	case RMO:
		return "RMO"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// Parse returns the model named by s (case-insensitive).
func Parse(s string) (Model, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SC":
		return SC, nil
	case "TSO", "X86", "X86-TSO":
		return TSO, nil
	case "PSO":
		return PSO, nil
	case "RMO", "WEAK", "ARM":
		return RMO, nil
	default:
		return SC, fmt.Errorf("mcm: unknown model %q", s)
	}
}

// Ordered reports whether the model preserves program order from an earlier
// operation of kind first to a later operation of kind second on the same
// thread, in the absence of intervening fences and ignoring same-address
// dependencies. Fences order against everything under every model.
//
// Same-address program-order pairs are always ordered by coherence
// ("uniprocessor" / sc-per-location semantics) regardless of the model; that
// rule is handled by callers via OrderedSameAddr, since Ordered sees only
// kinds.
func (m Model) Ordered(first, second prog.OpKind) bool {
	if first == prog.Fence || second == prog.Fence {
		return true
	}
	switch m {
	case SC:
		return true
	case TSO:
		// Only store→load is relaxed.
		return !(first == prog.Store && second == prog.Load)
	case PSO:
		// store→load and store→store relaxed.
		return first == prog.Load
	case RMO:
		// Everything relaxed between plain accesses.
		return false
	default:
		panic(fmt.Sprintf("mcm: Ordered on invalid model %d", uint8(m)))
	}
}

// OrderedSameAddr reports whether program order is preserved between two
// same-address memory operations under the model. All models enforce
// coherence (sc-per-location): same-address pairs stay ordered.
//
// The one nuance is store→load under store-buffer forwarding: the load may
// read the store early (before it is globally visible), but it can never
// read an *older* value, so for constraint-graph purposes the pair is
// ordered. Store atomicity concerns are handled separately (see Atomicity).
func (m Model) OrderedSameAddr(first, second prog.OpKind) bool {
	_ = first
	_ = second
	return true
}

// Relaxations returns the set of program-order kind pairs the model relaxes,
// as human-readable "first->second" strings; useful in reports and tests.
func (m Model) Relaxations() []string {
	kinds := []prog.OpKind{prog.Load, prog.Store}
	var out []string
	for _, a := range kinds {
		for _, b := range kinds {
			if !m.Ordered(a, b) {
				out = append(out, fmt.Sprintf("%s->%s", a, b))
			}
		}
	}
	return out
}

// WeakerThan reports whether m permits strictly more reorderings than other.
func (m Model) WeakerThan(other Model) bool {
	mr, or := len(m.Relaxations()), len(other.Relaxations())
	if mr <= or {
		return false
	}
	// Every relaxation of other must also be a relaxation of m.
	has := make(map[string]bool, mr)
	for _, r := range m.Relaxations() {
		has[r] = true
	}
	for _, r := range other.Relaxations() {
		if !has[r] {
			return false
		}
	}
	return true
}

// Atomicity describes store atomicity (paper §8, citing Arvind & Maessen).
type Atomicity uint8

const (
	// MultiCopy: a store becomes visible to all *other* cores at once, but
	// the issuing core may read its own store early via forwarding
	// (x86-TSO). The paper's systems are all at least this weak; assuming
	// SingleCopy on x86 produced the false positives described in §8's
	// footnote.
	MultiCopy Atomicity = iota
	// SingleCopy: a store becomes visible to all cores, including its own,
	// at a single instant; no forwarding.
	SingleCopy
	// NonMultiCopy: a store may become visible to different cores at
	// different times (e.g. pre-ARMv8 clusters).
	NonMultiCopy
)

// String returns the atomicity class name.
func (a Atomicity) String() string {
	switch a {
	case MultiCopy:
		return "multi-copy"
	case SingleCopy:
		return "single-copy"
	case NonMultiCopy:
		return "non-multi-copy"
	default:
		return fmt.Sprintf("Atomicity(%d)", uint8(a))
	}
}

// AllowsForwarding reports whether a core may read its own store before the
// store is globally visible.
func (a Atomicity) AllowsForwarding() bool { return a != SingleCopy }
