package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceProperties(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		p := Point{0: int(a1), 1: int(a2)}
		q := Point{0: int(b1), 1: int(b2)}
		if Distance(p, p) != 0 || Distance(q, q) != 0 {
			return false
		}
		return Distance(p, q) == Distance(q, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceCounts(t *testing.T) {
	a := Point{0: 1, 1: 2, 2: 3}
	b := Point{0: 1, 1: 9, 2: 8}
	if got := Distance(a, b); got != 2 {
		t.Errorf("Distance = %d, want 2", got)
	}
	c := Point{0: 1}
	if got := Distance(a, c); got != 2 {
		t.Errorf("missing-key distance = %d, want 2", got)
	}
}

// synthetic builds three well-separated clusters of points.
func synthetic(rng *rand.Rand) []Point {
	var pts []Point
	centers := []Point{
		{0: 0, 1: 0, 2: 0, 3: 0, 4: 0},
		{0: 9, 1: 9, 2: 9, 3: 9, 4: 9},
		{0: 5, 1: 5, 2: 5, 3: 5, 4: 5},
	}
	for _, c := range centers {
		for i := 0; i < 20; i++ {
			p := Point{}
			for k, v := range c {
				p[k] = v
			}
			// Perturb one coordinate occasionally.
			if rng.Intn(2) == 0 {
				p[rng.Intn(5)] += 100 + rng.Intn(3)
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestKMedoidsFindsClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := synthetic(rng)
	dist := DistanceMatrix(pts)
	res, err := Best(dist, 3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With 3 medoids on 3 clusters where half the points differ from their
	// center in one coordinate, total distance ≤ n (60).
	if res.TotalDistance > int64(len(pts)) {
		t.Errorf("k=3 total distance = %d, want ≤ %d", res.TotalDistance, len(pts))
	}
}

func TestKMedoidsMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := synthetic(rng)
	dist := DistanceMatrix(pts)
	prev := int64(1) << 62
	for _, k := range []int{1, 3, 10, 30, len(pts)} {
		res, err := Best(dist, k, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalDistance > prev {
			t.Errorf("k=%d distance %d exceeds smaller-k distance %d",
				k, res.TotalDistance, prev)
		}
		prev = res.TotalDistance
	}
}

func TestKEqualsNIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := synthetic(rng)
	dist := DistanceMatrix(pts)
	res, err := KMedoids(dist, len(pts), rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDistance != 0 {
		t.Errorf("k=n distance = %d, want 0", res.TotalDistance)
	}
}

func TestKMedoidsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := KMedoids(nil, 1, rng, 0); err == nil {
		t.Error("empty point set accepted")
	}
	dist := DistanceMatrix([]Point{{0: 1}, {0: 2}})
	if _, err := KMedoids(dist, 0, rng, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMedoids(dist, 3, rng, 0); err == nil {
		t.Error("k>n accepted")
	}
}

func TestDistanceMatrixSymmetricZeroDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := synthetic(rng)[:10]
	m := DistanceMatrix(pts)
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal (%d) = %d", i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}
