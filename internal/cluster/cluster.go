// Package cluster implements the k-medoids analysis of the paper's §4.1
// limit study (Fig. 6): measuring how well k representative executions
// cover a set of observed memory-access interleavings, where the distance
// between two executions is the number of differing reads-from
// relationships. The study motivates MTraceCheck's design: finding truly
// closest graphs is computationally prohibitive, so the tool instead sorts
// signatures and diffs adjacent ones.
package cluster

import (
	"fmt"
	"math/rand"
)

// Point is one execution's reads-from fingerprint: load op ID → store op ID
// (-1 for the initial value). All points of one study share the same key
// set (the program's loads).
type Point map[int]int

// Distance counts differing reads-from relationships between two
// executions of the same program.
func Distance(a, b Point) int {
	d := 0
	for k, va := range a {
		if vb, ok := b[k]; !ok || vb != va {
			d++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			d++
		}
	}
	return d
}

// DistanceMatrix precomputes all pairwise distances.
func DistanceMatrix(points []Point) [][]int32 {
	n := len(points)
	m := make([][]int32, n)
	for i := range m {
		m[i] = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := int32(Distance(points[i], points[j]))
			m[i][j] = d
			m[j][i] = d
		}
	}
	return m
}

// Result of one clustering run.
type Result struct {
	Medoids []int // indices of the k medoid points
	// TotalDistance sums each point's distance to its closest medoid — the
	// y-axis of the paper's Fig. 6.
	TotalDistance int64
	Iterations    int
}

// KMedoids clusters the points whose pairwise distances are given by dist
// using the alternating (Voronoi) k-medoids heuristic with random
// initialization: assign each point to its closest medoid, then move each
// medoid to its cluster's minimizer; repeat to a fixed point. Optimal
// k-medoids is prohibitive (as the paper notes), so this is a heuristic;
// use restarts for tighter results.
func KMedoids(dist [][]int32, k int, rng *rand.Rand, maxIters int) (Result, error) {
	n := len(dist)
	switch {
	case n == 0:
		return Result{}, fmt.Errorf("cluster: no points")
	case k < 1 || k > n:
		return Result{}, fmt.Errorf("cluster: k=%d outside [1,%d]", k, n)
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	medoids := rng.Perm(n)[:k]
	assign := make([]int, n) // point -> medoid slot
	var iters int
	for iters = 0; iters < maxIters; iters++ {
		// Assignment step.
		for i := 0; i < n; i++ {
			best, bestD := 0, dist[i][medoids[0]]
			for s := 1; s < k; s++ {
				if d := dist[i][medoids[s]]; d < bestD {
					best, bestD = s, d
				}
			}
			assign[i] = best
		}
		// Update step: each medoid moves to its cluster's 1-median.
		changed := false
		for s := 0; s < k; s++ {
			var members []int
			for i := 0; i < n; i++ {
				if assign[i] == s {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			best, bestSum := medoids[s], int64(1)<<62
			for _, cand := range members {
				var sum int64
				for _, m := range members {
					sum += int64(dist[cand][m])
				}
				if sum < bestSum {
					best, bestSum = cand, sum
				}
			}
			if best != medoids[s] {
				medoids[s] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	var total int64
	for i := 0; i < n; i++ {
		bestD := dist[i][medoids[0]]
		for s := 1; s < k; s++ {
			if d := dist[i][medoids[s]]; d < bestD {
				bestD = d
			}
		}
		total += int64(bestD)
	}
	return Result{Medoids: medoids, TotalDistance: total, Iterations: iters + 1}, nil
}

// Best runs KMedoids with the given number of random restarts and returns
// the tightest clustering found.
func Best(dist [][]int32, k, restarts int, rng *rand.Rand) (Result, error) {
	if restarts < 1 {
		restarts = 1
	}
	var best Result
	for r := 0; r < restarts; r++ {
		res, err := KMedoids(dist, k, rng, 0)
		if err != nil {
			return Result{}, err
		}
		if r == 0 || res.TotalDistance < best.TotalDistance {
			best = res
		}
	}
	return best, nil
}
