// Package prog defines the intermediate representation of multi-threaded
// memory-ordering test programs: operations, threads, programs, and the
// shared-memory layout that maps abstract shared words onto byte addresses
// and cache lines (including false-sharing layouts).
//
// A test program in MTraceCheck is a set of per-thread straight-line
// sequences of load, store, and fence operations over a small pool of shared
// words. Every store writes a unique non-zero value (its "store ID") so that
// any load's observed value identifies exactly one writer, which is the
// property the signature instrumentation relies on.
package prog

import (
	"fmt"
	"strings"
)

// OpKind classifies an operation in a test program.
type OpKind uint8

const (
	// Load reads one shared word into a (virtual) register.
	Load OpKind = iota
	// Store writes the operation's unique value to one shared word.
	Store
	// Fence is a full memory barrier: it orders every earlier memory
	// operation of its thread before every later one.
	Fence
)

// String returns the conventional lowercase mnemonic for the kind.
func (k OpKind) String() string {
	switch k {
	case Load:
		return "ld"
	case Store:
		return "st"
	case Fence:
		return "fence"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// InitialValue is the value every shared word holds before a test iteration
// starts. Store IDs are allocated starting at 1 so that InitialValue never
// aliases a store.
const InitialValue uint32 = 0

// Op is a single operation of a test program.
//
// IDs are unique within a program and allocated thread-major: thread 0's
// operations come first in ID order, then thread 1's, and so on. A store's
// Value is its ID+1, guaranteeing uniqueness and non-zeroness.
type Op struct {
	ID     int    // unique within the program, thread-major
	Thread int    // owning thread index
	Index  int    // position within the owning thread, from 0
	Kind   OpKind // Load, Store, or Fence
	Word   int    // shared-word index; -1 for fences
	Value  uint32 // stores: unique value written (ID+1); otherwise 0
}

// IsMemory reports whether the operation accesses memory (load or store).
func (o Op) IsMemory() bool { return o.Kind == Load || o.Kind == Store }

// String renders the operation in the style of the paper's listings,
// e.g. "st 0x6" or "ld 0x2".
func (o Op) String() string {
	if o.Kind == Fence {
		return "fence"
	}
	return fmt.Sprintf("%s %#x", o.Kind, o.Word)
}

// Thread is one thread's straight-line operation sequence.
type Thread struct {
	Ops []Op
}

// Loads returns the thread's load operations in program order.
func (t Thread) Loads() []Op {
	var out []Op
	for _, op := range t.Ops {
		if op.Kind == Load {
			out = append(out, op)
		}
	}
	return out
}

// Stores returns the thread's store operations in program order.
func (t Thread) Stores() []Op {
	var out []Op
	for _, op := range t.Ops {
		if op.Kind == Store {
			out = append(out, op)
		}
	}
	return out
}

// Layout maps shared-word indices to byte addresses. WordsPerLine controls
// false sharing: with WordsPerLine == 1 every word occupies its own cache
// line; larger values pack several independent shared words into one line,
// creating line-level contention between threads that access different
// words (paper §6.1, "Impact of false sharing").
type Layout struct {
	Base         uint64 // byte address of shared word 0
	LineSize     int    // cache line size in bytes
	WordSize     int    // shared word size in bytes
	WordsPerLine int    // shared words packed per cache line (1, 4, 16, ...)
}

// DefaultLayout matches the paper's setup: 64-byte lines, 4-byte words, no
// false sharing.
func DefaultLayout() Layout {
	return Layout{Base: 0x10000, LineSize: 64, WordSize: 4, WordsPerLine: 1}
}

// Validate checks the layout's internal consistency.
func (l Layout) Validate() error {
	switch {
	case l.LineSize <= 0:
		return fmt.Errorf("prog: layout line size %d must be positive", l.LineSize)
	case l.WordSize <= 0:
		return fmt.Errorf("prog: layout word size %d must be positive", l.WordSize)
	case l.WordsPerLine <= 0:
		return fmt.Errorf("prog: layout words-per-line %d must be positive", l.WordsPerLine)
	case l.WordsPerLine*l.WordSize > l.LineSize:
		return fmt.Errorf("prog: %d words of %d bytes exceed %d-byte line",
			l.WordsPerLine, l.WordSize, l.LineSize)
	case l.Base%uint64(l.LineSize) != 0:
		return fmt.Errorf("prog: base %#x not line-aligned", l.Base)
	}
	return nil
}

// AddrOf returns the byte address of the given shared-word index.
func (l Layout) AddrOf(word int) uint64 {
	line := word / l.WordsPerLine
	slot := word % l.WordsPerLine
	return l.Base + uint64(line)*uint64(l.LineSize) + uint64(slot)*uint64(l.WordSize)
}

// LineOf returns the cache-line number containing the byte address.
func (l Layout) LineOf(addr uint64) uint64 { return addr / uint64(l.LineSize) }

// LineOfWord returns the cache-line number of a shared-word index.
func (l Layout) LineOfWord(word int) uint64 { return l.LineOf(l.AddrOf(word)) }

// Program is a complete multi-threaded test program.
type Program struct {
	Name     string   // optional human-readable name (litmus tests)
	Threads  []Thread // per-thread operation sequences
	NumWords int      // number of distinct shared words used
	Layout   Layout   // shared-memory placement
}

// NumThreads returns the number of threads.
func (p *Program) NumThreads() int { return len(p.Threads) }

// NumOps returns the total operation count across all threads.
func (p *Program) NumOps() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t.Ops)
	}
	return n
}

// Ops returns all operations flattened in ID (thread-major) order.
func (p *Program) Ops() []Op {
	out := make([]Op, 0, p.NumOps())
	for _, t := range p.Threads {
		out = append(out, t.Ops...)
	}
	return out
}

// OpByID returns the operation with the given ID.
// It panics if the ID is out of range or the program is inconsistently
// numbered; use Validate to check integrity first.
func (p *Program) OpByID(id int) Op {
	for _, t := range p.Threads {
		if len(t.Ops) == 0 {
			continue
		}
		first := t.Ops[0].ID
		if id >= first && id < first+len(t.Ops) {
			return t.Ops[id-first]
		}
	}
	panic(fmt.Sprintf("prog: no op with ID %d", id))
}

// StoresToWord returns, in thread-major program order, every store to the
// given shared word.
func (p *Program) StoresToWord(word int) []Op {
	var out []Op
	for _, t := range p.Threads {
		for _, op := range t.Ops {
			if op.Kind == Store && op.Word == word {
				out = append(out, op)
			}
		}
	}
	return out
}

// StoreByValue returns the store writing the given value, or false when the
// value is InitialValue or no store writes it.
func (p *Program) StoreByValue(v uint32) (Op, bool) {
	if v == InitialValue {
		return Op{}, false
	}
	id := int(v) - 1
	for _, t := range p.Threads {
		if len(t.Ops) == 0 {
			continue
		}
		first := t.Ops[0].ID
		if id >= first && id < first+len(t.Ops) {
			op := t.Ops[id-first]
			if op.Kind == Store && op.Value == v {
				return op, true
			}
			return Op{}, false
		}
	}
	return Op{}, false
}

// Validate checks structural integrity: thread-major contiguous IDs, store
// values equal to ID+1, word indices in range, and a consistent layout.
func (p *Program) Validate() error {
	if err := p.Layout.Validate(); err != nil {
		return err
	}
	nextID := 0
	for ti, t := range p.Threads {
		for oi, op := range t.Ops {
			if op.ID != nextID {
				return fmt.Errorf("prog: thread %d op %d: ID %d, want %d", ti, oi, op.ID, nextID)
			}
			nextID++
			if op.Thread != ti {
				return fmt.Errorf("prog: op %d: thread %d, want %d", op.ID, op.Thread, ti)
			}
			if op.Index != oi {
				return fmt.Errorf("prog: op %d: index %d, want %d", op.ID, op.Index, oi)
			}
			switch op.Kind {
			case Load, Store:
				if op.Word < 0 || op.Word >= p.NumWords {
					return fmt.Errorf("prog: op %d: word %d out of range [0,%d)", op.ID, op.Word, p.NumWords)
				}
			case Fence:
				if op.Word != -1 {
					return fmt.Errorf("prog: fence op %d: word %d, want -1", op.ID, op.Word)
				}
			default:
				return fmt.Errorf("prog: op %d: unknown kind %d", op.ID, op.Kind)
			}
			if op.Kind == Store {
				if op.Value != uint32(op.ID)+1 {
					return fmt.Errorf("prog: store op %d: value %d, want %d", op.ID, op.Value, op.ID+1)
				}
			} else if op.Value != 0 {
				return fmt.Errorf("prog: non-store op %d: value %d, want 0", op.ID, op.Value)
			}
		}
	}
	return nil
}

// String renders the program as per-thread columns of mnemonics.
func (p *Program) String() string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "%s ", p.Name)
	}
	fmt.Fprintf(&b, "(%d threads, %d words)\n", p.NumThreads(), p.NumWords)
	for ti, t := range p.Threads {
		fmt.Fprintf(&b, "thread %d:", ti)
		for _, op := range t.Ops {
			fmt.Fprintf(&b, " %s;", op)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Builder incrementally constructs a valid Program, assigning IDs, indices,
// and store values automatically.
type Builder struct {
	p       Program
	current int
}

// NewBuilder returns a Builder for a program over numWords shared words with
// the given layout.
func NewBuilder(name string, numWords int, layout Layout) *Builder {
	return &Builder{p: Program{Name: name, NumWords: numWords, Layout: layout}, current: -1}
}

// Thread starts a new thread; subsequent Op calls append to it.
// Threads must be built in order; IDs are thread-major.
func (b *Builder) Thread() *Builder {
	b.p.Threads = append(b.p.Threads, Thread{})
	b.current = len(b.p.Threads) - 1
	return b
}

func (b *Builder) add(kind OpKind, word int) *Builder {
	if b.current < 0 {
		panic("prog: Builder.Op before Thread")
	}
	t := &b.p.Threads[b.current]
	id := b.nextID()
	op := Op{ID: id, Thread: b.current, Index: len(t.Ops), Kind: kind, Word: word}
	if kind == Store {
		op.Value = uint32(id) + 1
	}
	if kind == Fence {
		op.Word = -1
	}
	t.Ops = append(t.Ops, op)
	return b
}

func (b *Builder) nextID() int {
	n := 0
	for _, t := range b.p.Threads {
		n += len(t.Ops)
	}
	return n
}

// Load appends a load of the given shared word to the current thread.
func (b *Builder) Load(word int) *Builder { return b.add(Load, word) }

// Store appends a store to the given shared word to the current thread.
func (b *Builder) Store(word int) *Builder { return b.add(Store, word) }

// Fence appends a full fence to the current thread.
func (b *Builder) Fence() *Builder { return b.add(Fence, -1) }

// Build finalizes and validates the program.
//
// Because the Builder assigns IDs eagerly in thread-major order, threads must
// be populated strictly in sequence; interleaving Thread and Op calls across
// threads would break ID contiguity and is reported here.
func (b *Builder) Build() (*Program, error) {
	p := b.p
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// MustBuild is Build, panicking on error. Intended for static test tables.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
