package prog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format for test programs, for saving generated tests and writing
// directed ones by hand:
//
//	# any comment
//	words 4
//	layout line=64 word=4 perline=1
//	thread: st 0; ld 1; fence; ld 0
//	thread: ld 0; st 1
//
// The layout line is optional (DefaultLayout applies). Word operands are
// decimal or 0x-prefixed shared-word indices. Store values and operation IDs
// are assigned automatically (they are structural, not part of the format).

// Format renders the program in the text format; Parse inverts it.
func Format(p *Program) string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "# %s\n", p.Name)
	}
	fmt.Fprintf(&b, "words %d\n", p.NumWords)
	l := p.Layout
	fmt.Fprintf(&b, "layout line=%d word=%d perline=%d\n", l.LineSize, l.WordSize, l.WordsPerLine)
	for _, t := range p.Threads {
		b.WriteString("thread:")
		for i, op := range t.Ops {
			if i > 0 {
				b.WriteByte(';')
			}
			switch op.Kind {
			case Fence:
				b.WriteString(" fence")
			default:
				fmt.Fprintf(&b, " %s %d", op.Kind, op.Word)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads a program in the text format. The first comment line, if any,
// becomes the program name.
func Parse(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	name := ""
	words := 0
	layout := DefaultLayout()
	var threads [][]string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "#"):
			if name == "" {
				name = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			}
		case strings.HasPrefix(line, "words"):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "words")))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("prog: line %d: bad word count %q", lineNo, line)
			}
			words = n
		case strings.HasPrefix(line, "layout"):
			if err := parseLayout(line, &layout); err != nil {
				return nil, fmt.Errorf("prog: line %d: %w", lineNo, err)
			}
		case strings.HasPrefix(line, "thread:"):
			body := strings.TrimPrefix(line, "thread:")
			var ops []string
			for _, part := range strings.Split(body, ";") {
				if part = strings.TrimSpace(part); part != "" {
					ops = append(ops, part)
				}
			}
			threads = append(threads, ops)
		default:
			return nil, fmt.Errorf("prog: line %d: unrecognized %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if words == 0 {
		return nil, fmt.Errorf("prog: missing 'words' declaration")
	}
	if len(threads) == 0 {
		return nil, fmt.Errorf("prog: no threads")
	}
	b := NewBuilder(name, words, layout)
	for ti, ops := range threads {
		b.Thread()
		for oi, op := range ops {
			if err := parseOp(b, op); err != nil {
				return nil, fmt.Errorf("prog: thread %d op %d: %w", ti, oi, err)
			}
		}
	}
	return b.Build()
}

func parseLayout(line string, l *Layout) error {
	for _, field := range strings.Fields(line)[1:] {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("bad layout field %q", field)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad layout value %q", field)
		}
		switch k {
		case "line":
			l.LineSize = n
		case "word":
			l.WordSize = n
		case "perline":
			l.WordsPerLine = n
		default:
			return fmt.Errorf("unknown layout key %q", k)
		}
	}
	return l.Validate()
}

func parseOp(b *Builder, s string) error {
	fields := strings.Fields(s)
	switch {
	case len(fields) == 1 && fields[0] == "fence":
		b.Fence()
		return nil
	case len(fields) == 2:
		word, err := strconv.ParseInt(strings.TrimPrefix(fields[1], "0x"), wordBase(fields[1]), 32)
		if err != nil {
			return fmt.Errorf("bad word operand %q", fields[1])
		}
		switch fields[0] {
		case "ld":
			b.Load(int(word))
			return nil
		case "st":
			b.Store(int(word))
			return nil
		}
	}
	return fmt.Errorf("unrecognized operation %q", s)
}

func wordBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}
