package prog

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpKindString(t *testing.T) {
	cases := []struct {
		k    OpKind
		want string
	}{
		{Load, "ld"},
		{Store, "st"},
		{Fence, "fence"},
		{OpKind(9), "OpKind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("OpKind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestBuilderAssignsIDsThreadMajor(t *testing.T) {
	p := NewBuilder("t", 4, DefaultLayout()).
		Thread().Store(0).Load(1).
		Thread().Load(0).Store(1).Fence().Load(2).
		MustBuild()

	if got := p.NumOps(); got != 6 {
		t.Fatalf("NumOps = %d, want 6", got)
	}
	wantIDs := []int{0, 1, 2, 3, 4, 5}
	for i, op := range p.Ops() {
		if op.ID != wantIDs[i] {
			t.Errorf("op %d: ID = %d, want %d", i, op.ID, wantIDs[i])
		}
	}
	if p.Threads[1].Ops[1].Value != 4 {
		t.Errorf("store value = %d, want ID+1 = 4", p.Threads[1].Ops[1].Value)
	}
	if p.Threads[1].Ops[2].Word != -1 {
		t.Errorf("fence word = %d, want -1", p.Threads[1].Ops[2].Word)
	}
}

func TestBuilderBuildRejectsBadWord(t *testing.T) {
	_, err := NewBuilder("t", 1, DefaultLayout()).Thread().Load(5).Build()
	if err == nil {
		t.Fatal("Build accepted out-of-range word index")
	}
}

func TestOpByIDAndStoreByValue(t *testing.T) {
	p := NewBuilder("t", 2, DefaultLayout()).
		Thread().Store(0).Load(0).
		Thread().Store(1).
		MustBuild()

	for _, op := range p.Ops() {
		if got := p.OpByID(op.ID); got != op {
			t.Errorf("OpByID(%d) = %+v, want %+v", op.ID, got, op)
		}
	}
	st, ok := p.StoreByValue(1)
	if !ok || st.ID != 0 {
		t.Errorf("StoreByValue(1) = %+v, %v; want store 0", st, ok)
	}
	st, ok = p.StoreByValue(3)
	if !ok || st.ID != 2 {
		t.Errorf("StoreByValue(3) = %+v, %v; want store 2", st, ok)
	}
	if _, ok := p.StoreByValue(InitialValue); ok {
		t.Error("StoreByValue(InitialValue) reported a store")
	}
	if _, ok := p.StoreByValue(2); ok {
		t.Error("StoreByValue(2) matched a load's would-be value")
	}
	if _, ok := p.StoreByValue(99); ok {
		t.Error("StoreByValue(99) matched beyond program")
	}
}

func TestStoresToWord(t *testing.T) {
	p := NewBuilder("t", 2, DefaultLayout()).
		Thread().Store(0).Store(1).Store(0).
		Thread().Store(0).
		MustBuild()
	got := p.StoresToWord(0)
	if len(got) != 3 {
		t.Fatalf("StoresToWord(0): %d stores, want 3", len(got))
	}
	wantIDs := []int{0, 2, 3}
	for i, op := range got {
		if op.ID != wantIDs[i] {
			t.Errorf("StoresToWord(0)[%d].ID = %d, want %d", i, op.ID, wantIDs[i])
		}
	}
}

func TestLayoutAddrOfNoFalseSharing(t *testing.T) {
	l := DefaultLayout() // 1 word per 64-byte line
	if a := l.AddrOf(0); a != l.Base {
		t.Errorf("AddrOf(0) = %#x, want base %#x", a, l.Base)
	}
	if a, b := l.AddrOf(1), l.Base+64; a != b {
		t.Errorf("AddrOf(1) = %#x, want %#x", a, b)
	}
	if l.LineOfWord(0) == l.LineOfWord(1) {
		t.Error("distinct words share a line despite WordsPerLine=1")
	}
}

func TestLayoutFalseSharing(t *testing.T) {
	l := Layout{Base: 0, LineSize: 64, WordSize: 4, WordsPerLine: 4}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Words 0..3 share line 0; word 4 starts line 1.
	for w := 0; w < 4; w++ {
		if got := l.LineOfWord(w); got != 0 {
			t.Errorf("LineOfWord(%d) = %d, want 0", w, got)
		}
	}
	if got := l.LineOfWord(4); got != 1 {
		t.Errorf("LineOfWord(4) = %d, want 1", got)
	}
	if a := l.AddrOf(1); a != 4 {
		t.Errorf("AddrOf(1) = %d, want 4", a)
	}
	if a := l.AddrOf(5); a != 68 {
		t.Errorf("AddrOf(5) = %d, want 68", a)
	}
}

func TestLayoutValidateErrors(t *testing.T) {
	bad := []Layout{
		{Base: 0, LineSize: 0, WordSize: 4, WordsPerLine: 1},
		{Base: 0, LineSize: 64, WordSize: 0, WordsPerLine: 1},
		{Base: 0, LineSize: 64, WordSize: 4, WordsPerLine: 0},
		{Base: 0, LineSize: 64, WordSize: 4, WordsPerLine: 17},
		{Base: 3, LineSize: 64, WordSize: 4, WordsPerLine: 1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid layout %+v", i, l)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Program {
		return NewBuilder("t", 2, DefaultLayout()).
			Thread().Store(0).Load(1).
			Thread().Load(0).
			MustBuild()
	}

	corruptions := []struct {
		name string
		mut  func(*Program)
	}{
		{"bad ID", func(p *Program) { p.Threads[0].Ops[1].ID = 7 }},
		{"bad thread", func(p *Program) { p.Threads[1].Ops[0].Thread = 0 }},
		{"bad index", func(p *Program) { p.Threads[0].Ops[1].Index = 0 }},
		{"bad store value", func(p *Program) { p.Threads[0].Ops[0].Value = 9 }},
		{"load with value", func(p *Program) { p.Threads[0].Ops[1].Value = 9 }},
		{"word out of range", func(p *Program) { p.Threads[0].Ops[0].Word = 2 }},
		{"fence with word", func(p *Program) {
			p.Threads[0].Ops[1] = Op{ID: 1, Thread: 0, Index: 1, Kind: Fence, Word: 3}
		}},
	}
	for _, c := range corruptions {
		p := mk()
		c.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted program", c.name)
		}
	}
}

func TestStringRendering(t *testing.T) {
	p := NewBuilder("demo", 2, DefaultLayout()).
		Thread().Store(0).Load(1).
		MustBuild()
	s := p.String()
	for _, want := range []string{"demo", "thread 0:", "st 0x0", "ld 0x1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestThreadLoadsStores(t *testing.T) {
	p := NewBuilder("t", 2, DefaultLayout()).
		Thread().Store(0).Load(1).Fence().Load(0).
		MustBuild()
	th := p.Threads[0]
	if got := len(th.Loads()); got != 2 {
		t.Errorf("Loads() len = %d, want 2", got)
	}
	if got := len(th.Stores()); got != 1 {
		t.Errorf("Stores() len = %d, want 1", got)
	}
}

// Property: AddrOf is injective over word indices and words never straddle
// line boundaries, for any sane layout.
func TestLayoutAddrOfProperties(t *testing.T) {
	f := func(wplSel, wordRaw uint8) bool {
		wpls := []int{1, 2, 4, 8, 16}
		l := Layout{Base: 0x40000, LineSize: 64, WordSize: 4,
			WordsPerLine: wpls[int(wplSel)%len(wpls)]}
		w1 := int(wordRaw) % 128
		w2 := (int(wordRaw) + 1) % 128
		a1, a2 := l.AddrOf(w1), l.AddrOf(w2)
		if w1 != w2 && a1 == a2 {
			return false
		}
		// Word must fit entirely within its line.
		return l.LineOf(a1) == l.LineOf(a1+uint64(l.WordSize)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProgramOpsOrder(t *testing.T) {
	p := NewBuilder("t", 3, DefaultLayout()).
		Thread().Store(0).
		Thread().Store(1).Load(0).
		Thread().Load(2).
		MustBuild()
	ops := p.Ops()
	for i, op := range ops {
		if op.ID != i {
			t.Fatalf("Ops()[%d].ID = %d, want %d", i, op.ID, i)
		}
	}
}
