package prog

import (
	"strings"
	"testing"
)

func TestFormatParseRoundTrip(t *testing.T) {
	p := NewBuilder("roundtrip", 4, Layout{Base: 0x10000, LineSize: 64, WordSize: 4, WordsPerLine: 4}).
		Thread().Store(0).Load(1).Fence().Load(3).
		Thread().Load(0).Store(2).
		MustBuild()
	text := Format(p)
	back, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.Name != "roundtrip" {
		t.Errorf("name = %q", back.Name)
	}
	if Format(back) != text {
		t.Errorf("round trip not fixed-point:\n%s\nvs\n%s", text, Format(back))
	}
	if back.NumOps() != p.NumOps() || back.NumWords != p.NumWords {
		t.Errorf("structure mismatch")
	}
	for i, op := range p.Ops() {
		got := back.Ops()[i]
		if got.Kind != op.Kind || got.Word != op.Word || got.Thread != op.Thread {
			t.Errorf("op %d: %+v vs %+v", i, got, op)
		}
	}
	if back.Layout.WordsPerLine != 4 {
		t.Errorf("layout lost: %+v", back.Layout)
	}
}

func TestParseHandWritten(t *testing.T) {
	src := `
# SB by hand
words 2

thread: st 0; ld 1
thread: st 1 ; ld 0x0
`
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "SB by hand" {
		t.Errorf("name = %q", p.Name)
	}
	if p.NumThreads() != 2 || p.NumOps() != 4 {
		t.Errorf("shape: %d threads %d ops", p.NumThreads(), p.NumOps())
	}
	if p.Threads[1].Ops[1].Kind != Load || p.Threads[1].Ops[1].Word != 0 {
		t.Errorf("hex operand parsed wrong: %+v", p.Threads[1].Ops[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                     // empty
		"thread: st 0",                         // missing words
		"words 2",                              // no threads
		"words 0\nthread: st 0",                // bad count
		"words 2\nthread: st 9",                // word out of range
		"words 2\nthread: mystery 0",           // unknown op
		"words 2\nbogus line",                  // unknown directive
		"words 2\nlayout flux=1\nthread: st 0", // unknown layout key
		"words 2\nlayout line=3\nthread: st 0", // invalid layout
		"words 2\nthread: st zz",               // bad operand
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: parsed %q", i, src)
		}
	}
}

func TestParseDefaultLayout(t *testing.T) {
	p, err := Parse(strings.NewReader("words 1\nthread: st 0"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Layout != DefaultLayout() {
		t.Errorf("layout = %+v", p.Layout)
	}
}
