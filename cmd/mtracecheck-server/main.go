// Command mtracecheck-server is the distributed campaign host: it serves
// the dist HTTP API (job submission, chunk leases, heartbeats, uploads,
// metrics) and merges worker uploads into reports bit-identical to
// single-process runs.
//
// Usage:
//
//	mtracecheck-server -listen :7077                 # serve jobs over HTTP
//	mtracecheck-server -oneshot -threads 4 -ops 40 \
//	    -iters 2048 -sigs-out sigs.bin               # one job, then exit
//
// In -oneshot mode the server builds one job from the generation flags
// (mirroring the mtracecheck CLI), serves it to whatever workers connect,
// waits for the report, prints the same summary the CLI would, and exits
// with the CLI's exit-code contract (see -h). Robustness machinery —
// lease expiry, redispatch backoff, worker quarantine, checkpoint/resume —
// is tuned by the -lease-ttl/-quarantine-after/-max-attempts/-backoff
// flags and observable at /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mtracecheck"
	"mtracecheck/internal/dist"
	"mtracecheck/internal/fault"
	"mtracecheck/internal/testgen"
)

// Exit codes match cmd/mtracecheck so scripts can swap the binaries.
const (
	exitPass       = 0
	exitFinding    = 1
	exitInfra      = 2
	exitQuarantine = 3
)

func main() { os.Exit(run()) }

func run() int {
	var (
		listen   = flag.String("listen", "127.0.0.1:7077", "HTTP listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for :0 discovery)")
		verbose  = flag.Bool("v", false, "log server operations to stderr")

		leaseTTL  = flag.Duration("lease-ttl", 0, "chunk lease duration before expiry and redispatch (0 = 10s)")
		quarAfter = flag.Int("quarantine-after", 0, "rejected uploads before a worker is quarantined (0 = 3, negative disables)")
		maxAtt    = flag.Int("max-attempts", 0, "dispatches per chunk before the job fails as undispatchable (0 = 10)")
		backoff   = flag.Duration("backoff", 0, "base redispatch backoff, doubled per attempt up to 5s (0 = 100ms)")
		corpusIn  = flag.String("corpus", "", "consult and grow this persistent signature corpus across all jobs: known-good uniques skip decode+check at finalize, newly verified ones are appended")

		oneshot = flag.Bool("oneshot", false, "submit one job from the generation flags, wait for it, print the report, and exit")
		sigsOut = flag.String("sigs-out", "", "oneshot: write the final unique signatures to this file")

		isa     = flag.String("isa", "x86", "oneshot: platform flavor: x86 (TSO) or ARM (weak)")
		threads = flag.Int("threads", 4, "oneshot: test threads")
		ops     = flag.Int("ops", 50, "oneshot: memory operations per thread")
		words   = flag.Int("words", 64, "oneshot: distinct shared words")
		wpl     = flag.Int("wpl", 1, "oneshot: shared words per cache line")
		loads   = flag.Float64("loads", 0.5, "oneshot: load fraction")
		fences  = flag.Float64("fences", 0, "oneshot: fence insertion probability")
		iters   = flag.Int("iters", 2048, "oneshot: test iterations")
		seed    = flag.Int64("seed", 1, "oneshot: random seed")
		checker = flag.String("checker", "", "oneshot: checker backend: "+strings.Join(mtracecheck.CheckerNames(), ", "))
		bug     = flag.String("bug", "", "oneshot: inject a bug: sm-inv, lsq-skip, or wb-race")
		osMode  = flag.Bool("os", false, "oneshot: run under simulated OS scheduling")
		workers = flag.Int("workers", 0, "oneshot: server-side decode/check workers (0 = GOMAXPROCS)")

		strict    = flag.Bool("strict", false, "oneshot: abort on the first corrupted signature instead of degrading")
		maxQuar   = flag.Float64("max-quarantine", 0, "oneshot: fail (exit 3) when more than this fraction of signatures is quarantined")
		shardTO   = flag.Duration("shard-timeout", 0, "oneshot: deadline per execution-shard attempt on the workers")
		retries   = flag.Int("shard-retries", 2, "oneshot: retries per failed execution shard on the workers")
		ckptPath  = flag.String("checkpoint", "", "oneshot: persist job progress to this file")
		ckptEvery = flag.Int("checkpoint-every-chunks", 0, "oneshot: checkpoint cadence in completed chunks (0 = grid/10)")
		resume    = flag.Bool("resume", false, "oneshot: resume the job from -checkpoint, skipping completed chunks")

		fBitFlip  = flag.Float64("fault-bitflip", 0, "oneshot: injected fault rate: flip one signature bit (applied server-side to the merged set)")
		fTruncate = flag.Float64("fault-truncate", 0, "oneshot: injected fault rate: drop a unique-set entry")
		fDup      = flag.Float64("fault-duplicate", 0, "oneshot: injected fault rate: duplicate a unique-set entry")
		fOOR      = flag.Float64("fault-oor", 0, "oneshot: injected fault rate: force a signature word out of range")
		fStall    = flag.Float64("fault-stall", 0, "oneshot: injected fault rate: stall an execution shard (on the workers)")
		fStallFor = flag.Duration("fault-stall-for", 0, "oneshot: injected stall duration (0 = 250ms)")
		fPanic    = flag.Float64("fault-panic", 0, "oneshot: injected fault rate: panic an execution shard (on the workers)")
		fSeed     = flag.Int64("fault-seed", 1, "oneshot: seed for deterministic fault injection")
	)
	flag.Usage = usage
	flag.Parse()

	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var store *mtracecheck.Corpus
	if *corpusIn != "" {
		var err error
		if store, err = mtracecheck.OpenCorpus(*corpusIn); err != nil {
			fmt.Fprintf(os.Stderr, "mtracecheck-server: %v (running cold)\n", err)
		}
	}
	srv := dist.NewServer(dist.ServerOptions{
		LeaseTTL:        *leaseTTL,
		QuarantineAfter: *quarAfter,
		MaxAttempts:     *maxAtt,
		BackoffBase:     *backoff,
		Corpus:          store,
		Logf:            logf,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return infra(err)
	}
	if *addrFile != "" {
		// Written atomically enough for the smoke harness: the file appears
		// only once the listener is bound.
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return infra(err)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	defer httpSrv.Shutdown(context.Background())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !*oneshot {
		fmt.Fprintf(os.Stderr, "mtracecheck-server: listening on %s\n", ln.Addr())
		select {
		case <-ctx.Done():
			return exitPass
		case err := <-serveErr:
			return infra(err)
		}
	}

	spec := dist.JobSpec{
		Test: &testgen.Config{
			Threads:      *threads,
			OpsPerThread: *ops,
			Words:        *words,
			WordsPerLine: *wpl,
			LoadRatio:    *loads,
			FenceProb:    *fences,
			Seed:         *seed,
		},
		ISA:                   *isa,
		OS:                    *osMode,
		Bug:                   *bug,
		Iterations:            *iters,
		Seed:                  *seed,
		Checker:               *checker,
		Workers:               *workers,
		Strict:                *strict,
		QuarantineThreshold:   *maxQuar,
		ShardTimeout:          *shardTO,
		ShardRetries:          *retries,
		CheckpointPath:        *ckptPath,
		CheckpointEveryChunks: *ckptEvery,
		Resume:                *resume,
		Fault: fault.Config{
			Seed:       *fSeed,
			BitFlip:    *fBitFlip,
			Truncate:   *fTruncate,
			Duplicate:  *fDup,
			OutOfRange: *fOOR,
			ShardStall: *fStall,
			ShardPanic: *fPanic,
			StallFor:   *fStallFor,
		},
	}
	// Resolve the spec locally too: the summary header and the signature
	// file need the program and platform, derived identically everywhere.
	p, opts, err := dist.Build(spec)
	if err != nil {
		return infra(err)
	}
	id, err := srv.Submit(spec)
	if err != nil {
		return infra(err)
	}
	fmt.Printf("mtracecheck: %s-%d-%d-%d on %s (%s), %d iterations\n",
		*isa, *threads, *ops, *words, opts.Platform.Name,
		mtracecheck.ModelName(opts.Platform), *iters)
	fmt.Fprintf(os.Stderr, "mtracecheck-server: job %s on %s, waiting for workers\n", id, ln.Addr())

	report, runErr := srv.Wait(ctx, id)
	if stats, err := srv.Stats(id); err == nil &&
		(stats.Redispatched+stats.Duplicates+stats.Rejected+stats.Expired > 0) {
		fmt.Printf("dist robustness:      %d leases expired, %d chunks redispatched, %d duplicate uploads, %d rejected uploads\n",
			stats.Expired, stats.Redispatched, stats.Duplicates, stats.Rejected)
	}
	if runErr != nil {
		return reportRunError(report, runErr)
	}
	failed := mtracecheck.WriteResultSummary(os.Stdout, report, opts.Checker)
	if *sigsOut != "" {
		_, uniques, err := srv.Result(id)
		if err != nil {
			return infra(err)
		}
		if err := saveSignatures(*sigsOut, p, opts, uniques); err != nil {
			return infra(err)
		}
		fmt.Printf("signatures written to %s\n", *sigsOut)
	}
	if failed {
		return exitFinding
	}
	return exitPass
}

func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "Usage: mtracecheck-server [flags]\n\n")
	flag.PrintDefaults()
	fmt.Fprintf(out, `
Exit codes (oneshot mode; matches cmd/mtracecheck):
  0  pass: every observed interleaving is consistent with the model
  1  finding: MCM violation, assertion failure, or platform crash
  2  infrastructure error: bad configuration, I/O failure, or an
     undispatchable chunk
  3  quarantine overflow: corrupted-signature fraction exceeded
     -max-quarantine
`)
}

// saveSignatures persists the merged unique set in the device/host binary
// format with real provenance, byte-identical to what the CLI's -sigs-out
// writes for the same (program, options).
func saveSignatures(path string, p *mtracecheck.Program, opts mtracecheck.Options, uniques []mtracecheck.Unique) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	report := &mtracecheck.Report{Program: p, Seed: opts.Seed, Platform: opts.Platform.Name}
	return mtracecheck.SaveSignatures(f, report, uniques)
}

// reportRunError classifies a job error into the exit-code contract, same
// as cmd/mtracecheck.
func reportRunError(report *mtracecheck.Report, err error) int {
	switch {
	case errors.Is(err, mtracecheck.ErrCrash):
		iters := 0
		if report != nil {
			iters = report.Iterations
		}
		fmt.Printf("CRASH after %d iterations: %v\n", iters, err)
		return exitFinding
	case errors.Is(err, mtracecheck.ErrQuarantineThreshold):
		if report != nil {
			mtracecheck.WriteDegradation(os.Stdout, report)
		}
		fmt.Printf("RESULT: QUARANTINE OVERFLOW — %v\n", err)
		return exitQuarantine
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "mtracecheck-server: interrupted")
		return exitInfra
	default:
		return infra(err)
	}
}

func infra(err error) int {
	fmt.Fprintln(os.Stderr, "mtracecheck-server:", strings.TrimPrefix(err.Error(), "mtracecheck: "))
	return exitInfra
}
