// Command mtc-litmus runs the directed litmus library (SB, MP, LB, CoRR,
// WRC, IRIW, and fenced variants) on a chosen platform and reports how often
// each test's interesting outcome was observed, whether the model forbids
// it, and whether graph checking flagged any violation.
//
// Usage:
//
//	mtc-litmus                 # all tests on the x86 (TSO) platform
//	mtc-litmus -isa ARM        # the weakly-ordered platform
//	mtc-litmus -test SB -iters 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"mtracecheck"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/sim"
)

func main() {
	var (
		isa   = flag.String("isa", "x86", "platform flavor: x86 (TSO) or ARM (weak)")
		model = flag.String("model", "", "override the platform's memory model (SC, TSO, PSO, RMO)")
		name  = flag.String("test", "", "run only the named litmus test")
		iters = flag.Int("iters", 2048, "iterations per test")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	plat, err := sim.ForISA(*isa)
	if err != nil {
		fatal(err)
	}
	if *model != "" {
		m, err := mcm.Parse(*model)
		if err != nil {
			fatal(err)
		}
		plat.Model = m
	}
	fmt.Printf("litmus audit on %s (%s), %d iterations per test\n\n",
		plat.Name, mtracecheck.ModelName(plat), *iters)
	fmt.Printf("%-6s %-9s %-10s %-10s %s\n", "test", "forbidden", "observed", "violations", "verdict")

	failed := false
	for _, l := range mtracecheck.LitmusTests() {
		if *name != "" && l.Name != *name {
			continue
		}
		observed, report, err := mtracecheck.RunLitmus(l, mtracecheck.Options{
			Platform: plat, Iterations: *iters, Seed: *seed,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", l.Name, err))
		}
		forbidden := l.ForbiddenUnder(plat.Model)
		verdict := "ok"
		switch {
		case report.Failed():
			verdict = "GRAPH VIOLATION"
			failed = true
		case forbidden && observed > 0:
			verdict = "FORBIDDEN OUTCOME OBSERVED"
			failed = true
		case !forbidden && observed == 0:
			verdict = "ok (allowed outcome not observed)"
		}
		fmt.Printf("%-6s %-9v %-10d %-10d %s\n",
			l.Name, forbidden, observed, len(report.Violations), verdict)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtc-litmus:", err)
	os.Exit(1)
}
