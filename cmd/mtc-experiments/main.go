// Command mtc-experiments regenerates the paper's evaluation tables and
// figures on the simulated platform and prints them as text or Markdown.
//
// Usage:
//
//	mtc-experiments -exp all                  # everything, default scale
//	mtc-experiments -exp fig8 -iters 4096     # one figure, custom scale
//	mtc-experiments -exp table3 -quick        # smoke scale
//	mtc-experiments -exp all -markdown > out.md
//
// Experiments: platforms, fig6, fig8, fig9 (includes fig14), fig10, fig11,
// fig12, table3, litmus, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mtracecheck"
	"mtracecheck/internal/experiments"
	"mtracecheck/internal/report"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (platforms, fig6, fig8, fig9, fig10, fig11, fig12, table3, litmus, corpus, all)")
		iters    = flag.Int("iters", 0, "override iterations per test run")
		tests    = flag.Int("tests", 0, "override tests per configuration")
		seed     = flag.Int64("seed", 1, "master seed")
		quick    = flag.Bool("quick", false, "smoke-test scale")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of text")
		checker  = flag.String("checker", "", "checking backend for single-backend experiments (default collective): "+
			strings.Join(mtracecheck.CheckerNames(), ", "))
		listCheckers = flag.Bool("list-checkers", false, "print the registered checker backends, one per line, and exit")
		corpusDir    = flag.String("corpus", "", "directory for the corpus experiment's persistent signature corpora (default: a temporary directory)")

		metricsOut = flag.String("metrics-out", "", "write collection metrics (Prometheus text format) to this file at exit")
		progress   = flag.Bool("progress", false, "log rate-limited per-collection progress to stderr")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event timeline (open in Perfetto) to this file")
	)
	flag.Parse()

	if *listCheckers {
		// Derived from the backend registry, so the list never drifts as
		// backends are added — same contract as cmd/mtracecheck.
		for _, name := range mtracecheck.CheckerNames() {
			fmt.Println(name)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *iters > 0 {
		cfg.Iterations = *iters
	}
	if *tests > 0 {
		cfg.Tests = *tests
	}
	cfg.Seed = *seed
	cfg.CorpusPath = *corpusDir
	if *checker != "" {
		// Fail fast on typos instead of erroring mid-experiment.
		if _, err := mtracecheck.ParseChecker(*checker); err != nil {
			fatal(err)
		}
		cfg.Checker = *checker
	}
	fin, err := attachObservers(&cfg, *metricsOut, *progress, *traceOut)
	if err != nil {
		fatal(err)
	}
	finishObs = fin
	defer finishObs()

	render := func(t *report.Table) {
		if *markdown {
			if err := t.WriteMarkdown(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if err := t.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
	run := func(name string, fn func() ([]*report.Table, error)) {
		start := time.Now()
		tables, err := fn()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		for _, t := range tables {
			render(t)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	one := func(fn func(experiments.Config) (*report.Table, error)) func() ([]*report.Table, error) {
		return func() ([]*report.Table, error) {
			t, err := fn(cfg)
			return []*report.Table{t}, err
		}
	}
	all := map[string]func() ([]*report.Table, error){
		"platforms": func() ([]*report.Table, error) {
			return []*report.Table{experiments.Platforms()}, nil
		},
		"fig6":  one(experiments.Fig6),
		"fig8":  one(experiments.Fig8),
		"fig10": one(experiments.Fig10),
		"fig11": one(experiments.Fig11),
		"fig12": one(experiments.Fig12),
		"fig9": func() ([]*report.Table, error) {
			f9, f14, err := experiments.Fig9And14(cfg)
			return []*report.Table{f9, f14}, err
		},
		"table3":     one(experiments.Table3),
		"litmus":     one(experiments.Litmus),
		"ws":         one(experiments.WSAblation),
		"prune":      one(experiments.PruneAblation),
		"scaling":    one(experiments.ScalingAblation),
		"fr":         one(experiments.FRAblation),
		"saturation": one(experiments.Saturation),
		"atomicity":  one(experiments.Atomicity),
		"dynprune":   one(experiments.DynPrune),
		"bias":       one(experiments.Bias),
		"corpus":     one(experiments.Corpus),
	}

	order := []string{"platforms", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12",
		"table3", "litmus", "ws", "prune", "scaling", "fr", "saturation", "atomicity", "dynprune", "bias", "corpus"}
	switch {
	case *exp == "all":
		for _, name := range order {
			run(name, all[name])
		}
	default:
		name := strings.ToLower(*exp)
		if name == "fig14" {
			name = "fig9" // fig14 is produced alongside fig9
		}
		fn, ok := all[name]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (want one of %v)", *exp, order))
		}
		run(name, fn)
	}
}

// finishObs finalizes the observability artifacts; fatal runs it too,
// since os.Exit skips deferred calls and a partial trace/metrics file from
// a failed run is still worth keeping.
var finishObs = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtc-experiments:", err)
	finishObs()
	os.Exit(1)
}

// attachObservers wires the observability flags into the experiment
// configuration; every signature collection the experiments perform feeds
// the same aggregators. The returned finalizer writes the artifacts.
func attachObservers(cfg *experiments.Config, metricsOut string, progress bool, traceOut string) (func(), error) {
	var observers []mtracecheck.Observer
	var metrics *mtracecheck.Metrics
	if metricsOut != "" {
		metrics = mtracecheck.NewMetrics()
		observers = append(observers, metrics)
	}
	if progress {
		observers = append(observers, mtracecheck.NewProgress(os.Stderr, 0))
	}
	var trace *mtracecheck.Trace
	var traceFile *os.File
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, err
		}
		traceFile = f
		trace = mtracecheck.NewTraceJSON(f)
		observers = append(observers, trace)
	}
	cfg.Observer = mtracecheck.MultiObserver(observers...)
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		if trace != nil {
			if err := trace.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mtc-experiments: finishing trace: %v\n", err)
			}
			if err := traceFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mtc-experiments: finishing trace: %v\n", err)
			}
		}
		if metrics != nil {
			f, err := os.Create(metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mtc-experiments: writing metrics: %v\n", err)
				return
			}
			if err := metrics.WritePrometheus(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mtc-experiments: writing metrics: %v\n", err)
			}
		}
	}, nil
}
