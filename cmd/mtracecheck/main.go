// Command mtracecheck runs the full MTraceCheck validation pipeline on one
// constrained-random test configuration: generate, instrument, execute for
// many iterations on the simulated platform, and check the collected
// signatures collectively.
//
// Usage:
//
//	mtracecheck -isa ARM -threads 4 -ops 100 -words 64 -iters 2048
//	mtracecheck -isa x86 -threads 4 -ops 50 -words 8 -wpl 4 -bug sm-inv
//
// The -bug flag injects one of the paper's §7 defects (sm-inv, lsq-skip,
// wb-race) into the platform, switching to the gem5-like preset.
package main

import (
	"flag"
	"fmt"
	"os"

	"mtracecheck"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

func main() {
	var (
		isa     = flag.String("isa", "x86", "platform flavor: x86 (TSO) or ARM (weak)")
		threads = flag.Int("threads", 4, "test threads")
		ops     = flag.Int("ops", 50, "memory operations per thread")
		words   = flag.Int("words", 64, "distinct shared words")
		wpl     = flag.Int("wpl", 1, "shared words per cache line (false sharing)")
		loads   = flag.Float64("loads", 0.5, "load fraction (rest are stores)")
		fences  = flag.Float64("fences", 0, "fence insertion probability")
		iters   = flag.Int("iters", 2048, "test iterations")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "pipeline shards for execute/decode/check (0 = GOMAXPROCS; results are identical for any value)")
		osMode  = flag.Bool("os", false, "run under simulated OS scheduling")
		checker = flag.String("checker", "collective", "checker: collective, conventional, or incremental (Pearce–Kelly)")
		bug     = flag.String("bug", "", "inject a bug: sm-inv, lsq-skip, or wb-race")
		verbose = flag.Bool("v", false, "print violation details")
		sigsOut = flag.String("sigs-out", "", "write the collected unique signatures to this file")
		dotOut  = flag.String("dot", "", "write the first violation's constraint graph (DOT) to this file")
		traceTo = flag.String("trace", "", "write one traced iteration's op timeline (TSV) to this file")
		progIn  = flag.String("prog", "", "run this saved test program instead of generating one")
		progOut = flag.String("dump-prog", "", "write the generated test program (text format) to this file")
	)
	flag.Parse()

	plat, err := platform(*isa, *bug)
	if err != nil {
		fatal(err)
	}
	if *osMode {
		plat.OS = sim.OSConfig{Enabled: true, Quantum: 400, QuantumJitter: 120, Migrate: true}
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0, got %d", *workers))
	}
	opts := mtracecheck.Options{
		Platform:   plat,
		Iterations: *iters,
		Seed:       *seed,
		Workers:    *workers,
	}
	opts.Checker, err = parseChecker(*checker)
	if err != nil {
		fatal(err)
	}
	cfg := mtracecheck.TestConfig{
		Threads:      *threads,
		OpsPerThread: *ops,
		Words:        *words,
		WordsPerLine: *wpl,
		LoadRatio:    *loads,
		FenceProb:    *fences,
		Seed:         *seed,
	}

	var report *mtracecheck.Report
	if *progIn != "" {
		p, err := loadProgram(*progIn)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mtracecheck: %s (%d threads, %d ops) on %s (%s), %d iterations\n",
			p.Name, p.NumThreads(), p.NumOps(), plat.Name, mtracecheck.ModelName(plat), *iters)
		report, err = mtracecheck.RunProgram(p, opts)
		if err != nil {
			reportRunError(report, err)
		}
	} else {
		if *progOut != "" {
			if err := saveProgram(*progOut, cfg); err != nil {
				fatal(err)
			}
			fmt.Printf("test program written to %s\n", *progOut)
		}
		fmt.Printf("mtracecheck: %s-%d-%d-%d on %s (%s), %d iterations\n",
			*isa, *threads, *ops, *words, plat.Name, mtracecheck.ModelName(plat), *iters)
		var err error
		report, err = mtracecheck.Run(cfg, opts)
		if err != nil {
			reportRunError(report, err)
		}
	}
	err = error(nil)
	fmt.Printf("unique interleavings: %d / %d iterations (%.1f%%)\n",
		report.UniqueSignatures, report.Iterations,
		100*float64(report.UniqueSignatures)/float64(report.Iterations))
	fmt.Printf("execution signature:  %d bytes\n", report.SignatureBytes)
	fmt.Printf("simulated cycles:     %d total\n", report.TotalCycles)
	c, nr, inc := report.CheckStats.Counts()
	if c+nr+inc > 0 {
		fmt.Printf("collective checking:  %d complete, %d no-resort, %d incremental (%d vertices sorted)\n",
			c, nr, inc, report.CheckStats.SortedVertices)
	}
	if *traceTo != "" {
		if err := dumpTrace(*traceTo, cfg, opts); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline written to %s\n", *traceTo)
	}
	if *sigsOut != "" {
		if err := dumpSignatures(*sigsOut, cfg, opts); err != nil {
			fatal(err)
		}
		fmt.Printf("signatures written to %s\n", *sigsOut)
	}
	if *dotOut != "" && len(report.Violations) > 0 {
		if err := dumpDOT(*dotOut, report, report.Violations[0], opts); err != nil {
			fatal(err)
		}
		fmt.Printf("violation graph written to %s\n", *dotOut)
	}
	if report.Failed() {
		fmt.Printf("RESULT: FAIL — %d graph violations, %d assertion failures\n",
			len(report.Violations), len(report.AssertionFailures))
		if *verbose {
			for _, v := range report.Violations {
				fmt.Printf("  violation: signature %v, cycle through ops %v\n", v.Sig, v.Cycle)
				for _, opID := range v.Cycle {
					op := report.Program.OpByID(int(opID))
					fmt.Printf("    op %d: thread %d  %s\n", op.ID, op.Thread, op)
				}
			}
			for _, e := range report.AssertionFailures {
				fmt.Printf("  assert: %v\n", e)
			}
		}
		os.Exit(1)
	}
	fmt.Println("RESULT: PASS — all observed interleavings consistent with the model")
}

// parseChecker maps the -checker flag to a checker selection; unknown
// values are rejected with the valid list rather than silently defaulting
// to the collective checker.
func parseChecker(name string) (mtracecheck.Checker, error) {
	switch name {
	case "collective":
		return mtracecheck.CheckerCollective, nil
	case "conventional":
		return mtracecheck.CheckerConventional, nil
	case "incremental":
		return mtracecheck.CheckerIncremental, nil
	}
	return 0, fmt.Errorf("unknown checker %q (valid: collective, conventional, incremental)", name)
}

func platform(isa, bug string) (mtracecheck.Platform, error) {
	var memBugs mem.Bugs
	var simBugs sim.Bugs
	switch bug {
	case "":
	case "sm-inv":
		memBugs.StaleSMInv = true
	case "lsq-skip":
		simBugs.LQSquashSkip = true
	case "wb-race":
		memBugs.WBRaceDeadlock = true
	default:
		// Reject rather than silently validating the defect-free platform.
		return mtracecheck.Platform{}, fmt.Errorf("unknown bug %q (valid: sm-inv, lsq-skip, wb-race)", bug)
	}
	if bug != "" {
		return mtracecheck.PlatformGem5(memBugs, simBugs), nil
	}
	return sim.ForISA(isa)
}

// dumpSignatures re-collects the test's signatures (same seed, hence the
// same executions) and writes them in the binary device-to-host format.
func dumpSignatures(path string, cfg mtracecheck.TestConfig, opts mtracecheck.Options) error {
	p, err := testgen.Generate(cfg)
	if err != nil {
		return err
	}
	uniques, err := mtracecheck.CollectSignatures(p, opts)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return mtracecheck.SaveSignatures(f, nil, uniques)
}

// dumpTrace runs a single traced iteration and writes its timeline.
func dumpTrace(path string, cfg mtracecheck.TestConfig, opts mtracecheck.Options) error {
	p, err := testgen.Generate(cfg)
	if err != nil {
		return err
	}
	runner, err := sim.NewRunner(opts.Platform, p, opts.Seed)
	if err != nil {
		return err
	}
	runner.Trace = true
	ex, err := runner.Run()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sim.FormatTimeline(f, p, ex)
}

func dumpDOT(path string, report *mtracecheck.Report, v mtracecheck.Violation,
	opts mtracecheck.Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return mtracecheck.WriteViolationDOT(f, report, v, opts)
}

// reportRunError prints a crash (a finding in itself) or a hard error.
func reportRunError(report *mtracecheck.Report, err error) {
	if report != nil {
		fmt.Printf("CRASH after %d iterations: %v\n", report.Iterations, err)
		os.Exit(2)
	}
	fatal(err)
}

// loadProgram reads a saved test program.
func loadProgram(path string) (*mtracecheck.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return prog.Parse(f)
}

// saveProgram writes the generated program in the text format.
func saveProgram(path string, cfg mtracecheck.TestConfig) error {
	p, err := testgen.Generate(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(prog.Format(p)), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtracecheck:", err)
	os.Exit(1)
}
