// Command mtracecheck runs the full MTraceCheck validation pipeline on one
// constrained-random test configuration: generate, instrument, execute for
// many iterations on the simulated platform, and check the collected
// signatures collectively.
//
// Usage:
//
//	mtracecheck -isa ARM -threads 4 -ops 100 -words 64 -iters 2048
//	mtracecheck -isa x86 -threads 4 -ops 50 -words 8 -wpl 4 -bug sm-inv
//	mtracecheck -threads 4 -ops 50 -sigs-out sigs.bin      # device side
//	mtracecheck -threads 4 -ops 50 -sigs-in sigs.bin       # host side
//	mtracecheck -iters 65536 -checkpoint run.ckpt          # checkpointed
//	mtracecheck -iters 65536 -checkpoint run.ckpt -resume  # ...resumed
//	mtracecheck -trace obs.trace -mcm tso                  # external trace
//
// The -trace mode checks an externally observed execution — an Axe-style
// text trace of per-thread memory requests/responses — against the model
// named by -mcm (sc, tso, pso, rmo), without invoking the simulator at all;
// -checker, -workers, the observability flags, and the exit-code contract
// apply as in a campaign.
//
// The -bug flag injects one of the paper's §7 defects (sm-inv, lsq-skip,
// wb-race) into the platform, switching to the gem5-like preset. The
// -fault-* flags inject deterministic device-side signature corruption and
// shard faults (see internal/fault) to exercise the quarantine and retry
// machinery.
//
// Exit codes distinguish findings from infrastructure trouble; see -h.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mtracecheck"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// Exit codes: scripts driving validation campaigns need to tell "the
// platform is broken" (a finding — the whole point of the tool) from "the
// pipeline is broken" (infra) from "the signature channel is too corrupted
// to trust" (quarantine overflow).
const (
	exitPass       = 0
	exitFinding    = 1 // MCM violation, assertion failure, or platform crash
	exitInfra      = 2 // configuration, I/O, or pipeline error
	exitQuarantine = 3 // quarantined fraction exceeded -max-quarantine
)

func main() { os.Exit(run()) }

func run() int {
	var (
		isa     = flag.String("isa", "x86", "platform flavor: x86 (TSO) or ARM (weak)")
		threads = flag.Int("threads", 4, "test threads")
		ops     = flag.Int("ops", 50, "memory operations per thread")
		words   = flag.Int("words", 64, "distinct shared words")
		wpl     = flag.Int("wpl", 1, "shared words per cache line (false sharing)")
		loads   = flag.Float64("loads", 0.5, "load fraction (rest are stores)")
		fences  = flag.Float64("fences", 0, "fence insertion probability")
		iters   = flag.Int("iters", 2048, "test iterations")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "streaming pipeline workers: work-stealing execution chunks with overlapped merge/decode (0 = GOMAXPROCS; results are identical for any value)")
		osMode  = flag.Bool("os", false, "run under simulated OS scheduling")
		checker = flag.String("checker", "collective",
			"checker backend: "+strings.Join(mtracecheck.CheckerNames(), ", "))
		listCheckers = flag.Bool("list-checkers", false, "print the registered checker backends, one per line, and exit")
		bug          = flag.String("bug", "", "inject a bug: sm-inv, lsq-skip, or wb-race")
		verbose      = flag.Bool("v", false, "print violation details")
		sigsOut      = flag.String("sigs-out", "", "write the collected unique signatures to this file")
		sigsIn       = flag.String("sigs-in", "", "check-only mode: skip execution and check the signatures in this file (pair with -prog or the same generation flags/seed)")
		dotOut       = flag.String("dot", "", "write the first violation's constraint graph (DOT) to this file")
		traceIn      = flag.String("trace", "", "check this external execution trace (Axe-style text format) against -mcm instead of running the simulator")
		mcmName      = flag.String("mcm", "sc", "memory consistency model for -trace: sc, tso, pso, or rmo")
		timelineTo   = flag.String("timeline", "", "write one traced iteration's op timeline (TSV) to this file")
		progIn       = flag.String("prog", "", "run this saved test program instead of generating one")
		progOut      = flag.String("dump-prog", "", "write the generated test program (text format) to this file")

		strict    = flag.Bool("strict", false, "abort on the first corrupted signature or lost shard instead of degrading")
		maxQuar   = flag.Float64("max-quarantine", 0, "fail (exit 3) when more than this fraction of unique signatures is quarantined (0 = no limit)")
		shardTO   = flag.Duration("shard-timeout", 0, "deadline per execution-shard attempt (0 = none)")
		retries   = flag.Int("shard-retries", 2, "retries per failed execution shard before degrading to partial results")
		ckptPath  = flag.String("checkpoint", "", "periodically persist campaign progress to this file")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint cadence in iterations (0 = iters/10)")
		resume    = flag.Bool("resume", false, "resume the campaign from -checkpoint, skipping the iterations it covers")
		corpusIn  = flag.String("corpus", "", "consult and grow this persistent signature corpus: known-good uniques skip decode+check, newly verified ones are appended (verdicts identical to a cold run)")

		fBitFlip  = flag.Float64("fault-bitflip", 0, "injected fault rate: flip one bit in a signature word")
		fTruncate = flag.Float64("fault-truncate", 0, "injected fault rate: drop a unique-set entry")
		fDup      = flag.Float64("fault-duplicate", 0, "injected fault rate: duplicate a unique-set entry")
		fOOR      = flag.Float64("fault-oor", 0, "injected fault rate: force a signature word out of range")
		fStall    = flag.Float64("fault-stall", 0, "injected fault rate: stall an execution shard")
		fStallFor = flag.Duration("fault-stall-for", 0, "injected stall duration (0 = 250ms)")
		fPanic    = flag.Float64("fault-panic", 0, "injected fault rate: panic an execution shard")
		fSeed     = flag.Int64("fault-seed", 1, "seed for deterministic fault injection")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf = flag.String("memprofile", "", "write a heap profile taken at exit to this file (go tool pprof)")

		metricsOut = flag.String("metrics-out", "", "write campaign metrics (Prometheus text format) to this file at exit")
		progress   = flag.Bool("progress", false, "log rate-limited per-stage progress to stderr")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event timeline (open in Perfetto or chrome://tracing) to this file")
	)
	flag.Usage = usage
	flag.Parse()

	if *listCheckers {
		printCheckers(os.Stdout)
		return exitPass
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return infra(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return infra(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mtracecheck: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects out of the heap profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mtracecheck: %v\n", err)
			}
		}()
	}

	plat, err := platform(*isa, *bug)
	if err != nil {
		return infra(err)
	}
	if *osMode {
		plat.OS = sim.OSConfig{Enabled: true, Quantum: 400, QuantumJitter: 120, Migrate: true}
	}
	if *workers < 0 {
		return infra(fmt.Errorf("-workers must be >= 0, got %d", *workers))
	}
	opts := mtracecheck.Options{
		Platform:            plat,
		Iterations:          *iters,
		Seed:                *seed,
		Workers:             *workers,
		Strict:              *strict,
		QuarantineThreshold: *maxQuar,
		ShardTimeout:        *shardTO,
		ShardRetries:        *retries,
		CheckpointPath:      *ckptPath,
		CheckpointEvery:     *ckptEvery,
		Resume:              *resume,
		Fault: mtracecheck.FaultConfig{
			Seed:       *fSeed,
			BitFlip:    *fBitFlip,
			Truncate:   *fTruncate,
			Duplicate:  *fDup,
			OutOfRange: *fOOR,
			ShardStall: *fStall,
			ShardPanic: *fPanic,
			StallFor:   *fStallFor,
		},
	}
	opts.Checker, err = parseChecker(*checker)
	if err != nil {
		return infra(err)
	}
	if *corpusIn != "" {
		store, err := mtracecheck.OpenCorpus(*corpusIn)
		if err != nil {
			// The store is still usable (empty); the campaign runs cold and
			// the unreadable original is quarantined at the next flush.
			fmt.Fprintf(os.Stderr, "mtracecheck: %v (running cold)\n", err)
		}
		opts.Corpus = store
	}
	finishObs, err := attachObservers(&opts, *metricsOut, *progress, *traceOut)
	if err != nil {
		return infra(err)
	}
	defer finishObs()
	cfg := mtracecheck.TestConfig{
		Threads:      *threads,
		OpsPerThread: *ops,
		Words:        *words,
		WordsPerLine: *wpl,
		LoadRatio:    *loads,
		FenceProb:    *fences,
		Seed:         *seed,
	}

	// External-trace mode: check an observed execution against -mcm with
	// the selected backend; the simulator never runs.
	if *traceIn != "" {
		return runTraceCheck(*traceIn, *mcmName, opts, *verbose)
	}

	// Check-only mode: the host side of the device/host split. The program
	// must be reconstructed exactly — from its saved text or from the same
	// generation flags and seed the device side used.
	if *sigsIn != "" {
		p, err := checkProgram(*progIn, cfg)
		if err != nil {
			return infra(err)
		}
		return runCheckOnly(*sigsIn, p, opts, *verbose)
	}

	var report *mtracecheck.Report
	if *progIn != "" {
		p, err := loadProgram(*progIn)
		if err != nil {
			return infra(err)
		}
		fmt.Printf("mtracecheck: %s (%d threads, %d ops) on %s (%s), %d iterations\n",
			p.Name, p.NumThreads(), p.NumOps(), plat.Name, mtracecheck.ModelName(plat), *iters)
		report, err = mtracecheck.RunProgram(p, opts)
		if err != nil {
			return reportRunError(report, err)
		}
	} else {
		if *progOut != "" {
			if err := saveProgram(*progOut, cfg); err != nil {
				return infra(err)
			}
			fmt.Printf("test program written to %s\n", *progOut)
		}
		fmt.Printf("mtracecheck: %s-%d-%d-%d on %s (%s), %d iterations\n",
			*isa, *threads, *ops, *words, plat.Name, mtracecheck.ModelName(plat), *iters)
		var err error
		report, err = mtracecheck.Run(cfg, opts)
		if err != nil {
			return reportRunError(report, err)
		}
	}
	fmt.Printf("unique interleavings: %d / %d iterations (%.1f%%)\n",
		report.UniqueSignatures, report.Iterations,
		100*float64(report.UniqueSignatures)/float64(report.Iterations))
	fmt.Printf("execution signature:  %d bytes\n", report.SignatureBytes)
	fmt.Printf("simulated cycles:     %d total\n", report.TotalCycles)
	printCheckStats(report, opts.Checker)
	printDegradation(report)
	if *timelineTo != "" {
		if err := dumpTimeline(*timelineTo, report.Program, opts); err != nil {
			return infra(err)
		}
		fmt.Printf("timeline written to %s\n", *timelineTo)
	}
	if *sigsOut != "" {
		if err := dumpSignatures(*sigsOut, report.Program, opts); err != nil {
			return infra(err)
		}
		fmt.Printf("signatures written to %s\n", *sigsOut)
	}
	if *dotOut != "" && len(report.Violations) > 0 {
		if err := dumpDOT(*dotOut, report, report.Violations[0], opts); err != nil {
			return infra(err)
		}
		fmt.Printf("violation graph written to %s\n", *dotOut)
	}
	if report.Failed() {
		fmt.Printf("RESULT: FAIL — %d graph violations, %d assertion failures\n",
			len(report.Violations), len(report.AssertionFailures))
		if *verbose {
			printViolations(report)
		}
		return exitFinding
	}
	fmt.Println("RESULT: PASS — all observed interleavings consistent with the model")
	return exitPass
}

// usage extends the default flag help with the exit-code contract.
func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "Usage: mtracecheck [flags]\n\n")
	flag.PrintDefaults()
	fmt.Fprintf(out, `
Exit codes:
  0  pass: every observed interleaving is consistent with the model
  1  finding: MCM violation, instrumentation assertion failure, or
     platform crash (deadlock/livelock) during test execution
  2  infrastructure error: bad configuration, I/O failure, or a pipeline
     error in strict mode
  3  quarantine overflow: the fraction of unique signatures quarantined
     as corrupted exceeded -max-quarantine

Profiling:
  -cpuprofile and -memprofile capture pprof profiles of a campaign
  (e.g. mtracecheck -iters 65536 -cpuprofile cpu.out, then
  go tool pprof cpu.out). The heap profile is taken after the run, so
  it shows what the pipeline retains, not its transient churn.
`)
}

// printCheckStats and printDegradation delegate to the shared summary
// writers, so the distributed server's output matches this CLI's exactly.
func printCheckStats(report *mtracecheck.Report, checker mtracecheck.Checker) {
	mtracecheck.WriteCheckSummary(os.Stdout, report, checker)
}

func printDegradation(report *mtracecheck.Report) {
	mtracecheck.WriteDegradation(os.Stdout, report)
}

func printViolations(report *mtracecheck.Report) {
	for _, v := range report.Violations {
		fmt.Printf("  violation: signature %v, cycle through ops %v\n", v.Sig, v.Cycle)
		for _, opID := range v.Cycle {
			op := report.Program.OpByID(int(opID))
			fmt.Printf("    op %d: thread %d  %s\n", op.ID, op.Thread, op)
		}
	}
	for _, e := range report.AssertionFailures {
		fmt.Printf("  assert: %v\n", e)
	}
}

// checkProgram resolves the test program for check-only mode: a saved
// program file, or regeneration from the configuration flags.
func checkProgram(progIn string, cfg mtracecheck.TestConfig) (*mtracecheck.Program, error) {
	if progIn != "" {
		return loadProgram(progIn)
	}
	return testgen.Generate(cfg)
}

// runCheckOnly is the host side: load previously collected signatures,
// validate their provenance header against this campaign's program, seed,
// and platform, and check them against the model without executing
// anything. Checker selection, -workers, quarantine handling, and the
// observability flags all apply, exactly as in the full pipeline.
func runCheckOnly(path string, p *mtracecheck.Program, opts mtracecheck.Options, verbose bool) int {
	f, err := os.Open(path)
	if err != nil {
		return infra(err)
	}
	uniques, meta, err := mtracecheck.LoadSignaturesMeta(f)
	f.Close()
	if err != nil {
		return infra(err)
	}
	if err := mtracecheck.ValidateSignatureMeta(meta, p, opts); err != nil {
		return infra(err)
	}
	if meta != nil {
		fmt.Printf("signature provenance: program %#x, seed %d, platform %q — matches this configuration\n",
			meta.ProgHash, meta.Seed, meta.Platform)
	}
	plat := opts.Platform
	fmt.Printf("mtracecheck: checking %d unique signatures from %s against %s (%s)\n",
		len(uniques), path, plat.Name, mtracecheck.ModelName(plat))
	report, err := mtracecheck.CheckSignatures(p, uniques, opts)
	if err != nil {
		return reportRunError(report, err)
	}
	printCheckStats(report, opts.Checker)
	printDegradation(report)
	if len(report.Violations) > 0 {
		fmt.Printf("RESULT: FAIL — %d graph violations\n", len(report.Violations))
		if verbose {
			for _, v := range report.Violations {
				fmt.Printf("  violation: signature %v, cycle through ops %v\n", v.Sig, v.Cycle)
			}
		}
		return exitFinding
	}
	fmt.Println("RESULT: PASS — all recorded interleavings consistent with the model")
	return exitPass
}

// printCheckers lists the registered checker backends one per line, in the
// registry's sorted order — the same list -checker validates against.
func printCheckers(w io.Writer) {
	for _, name := range mtracecheck.CheckerNames() {
		fmt.Fprintln(w, name)
	}
}

// runTraceCheck is the external-trace front door: parse an Axe-style trace,
// bind it onto the checking machinery, and render the verdict through the
// same summary lines and exit codes as a campaign. A malformed trace is
// configuration trouble (exit 2); a cyclic constraint graph or a load that
// observed a value no store wrote is a finding (exit 1).
func runTraceCheck(path, model string, opts mtracecheck.Options, verbose bool) int {
	f, err := os.Open(path)
	if err != nil {
		return infra(err)
	}
	tr, err := mtracecheck.ParseTrace(f)
	f.Close()
	if err != nil {
		return infra(err)
	}
	fmt.Printf("mtracecheck: checking trace %s (%d ops, %d threads) against %s\n",
		path, len(tr.Ops), tr.NumThreads(), strings.ToLower(model))
	report, bind, err := mtracecheck.CheckTrace(tr, model, opts)
	if err != nil {
		return infra(err)
	}
	printCheckStats(report, opts.Checker)
	if report.Failed() {
		fmt.Printf("RESULT: FAIL — %d graph violations, %d assertion failures\n",
			len(report.Violations), len(report.AssertionFailures))
		if verbose {
			printTraceViolations(report, bind)
		}
		return exitFinding
	}
	fmt.Println("RESULT: PASS — trace consistent with the model")
	return exitPass
}

// printTraceViolations renders verdict details in the trace's own terms —
// original thread IDs, addresses, and source lines — rather than the bound
// Program's internal encoding.
func printTraceViolations(report *mtracecheck.Report, bind *mtracecheck.TraceBinding) {
	for _, v := range report.Violations {
		fmt.Printf("  violation: cycle through ops %v\n", v.Cycle)
		for _, opID := range v.Cycle {
			op := bind.Trace.Ops[bind.Source[opID]]
			fmt.Printf("    line %d: %s\n", op.Line, op)
		}
	}
	for _, e := range report.AssertionFailures {
		fmt.Printf("  assert: %v\n", e)
	}
}

// attachObservers wires the observability flags into the campaign options.
// The returned finalizer terminates the trace JSON array and writes the
// metrics snapshot; run() defers it so the artifacts land even when the
// campaign errors.
func attachObservers(opts *mtracecheck.Options, metricsOut string, progress bool, traceOut string) (func(), error) {
	var observers []mtracecheck.Observer
	var metrics *mtracecheck.Metrics
	if metricsOut != "" {
		metrics = mtracecheck.NewMetrics()
		observers = append(observers, metrics)
	}
	if progress {
		observers = append(observers, mtracecheck.NewProgress(os.Stderr, 0))
	}
	var trace *mtracecheck.Trace
	var traceFile *os.File
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, err
		}
		traceFile = f
		trace = mtracecheck.NewTraceJSON(f)
		observers = append(observers, trace)
	}
	opts.Observer = mtracecheck.MultiObserver(observers...)
	return func() {
		if trace != nil {
			if err := trace.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mtracecheck: finishing trace: %v\n", err)
			}
			if err := traceFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mtracecheck: finishing trace: %v\n", err)
			}
		}
		if metrics != nil {
			f, err := os.Create(metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mtracecheck: writing metrics: %v\n", err)
				return
			}
			if err := metrics.WritePrometheus(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mtracecheck: writing metrics: %v\n", err)
			}
		}
	}, nil
}

// parseChecker maps the -checker flag to a checker selection; unknown
// values are rejected rather than silently defaulting to the collective
// checker, and the valid list in the error comes from the backend registry,
// so it can never drift as backends are added.
func parseChecker(name string) (mtracecheck.Checker, error) {
	return mtracecheck.ParseChecker(name)
}

func platform(isa, bug string) (mtracecheck.Platform, error) {
	var memBugs mem.Bugs
	var simBugs sim.Bugs
	switch bug {
	case "":
	case "sm-inv":
		memBugs.StaleSMInv = true
	case "lsq-skip":
		simBugs.LQSquashSkip = true
	case "wb-race":
		memBugs.WBRaceDeadlock = true
	default:
		// Reject rather than silently validating the defect-free platform.
		return mtracecheck.Platform{}, fmt.Errorf("unknown bug %q (valid: sm-inv, lsq-skip, wb-race)", bug)
	}
	if bug != "" {
		return mtracecheck.PlatformGem5(memBugs, simBugs), nil
	}
	return sim.ForISA(isa)
}

// dumpSignatures re-collects the executed program's signatures (same seed,
// hence the same executions) and writes them in the binary device-to-host
// format, provenance header included.
func dumpSignatures(path string, p *mtracecheck.Program, opts mtracecheck.Options) error {
	uniques, err := mtracecheck.CollectSignatures(p, opts)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// A minimal report carrying the campaign identity is enough for
	// SaveSignatures to record real provenance in the set's header.
	report := &mtracecheck.Report{Program: p, Seed: opts.Seed, Platform: opts.Platform.Name}
	return mtracecheck.SaveSignatures(f, report, uniques)
}

// dumpTimeline runs a single traced iteration and writes its timeline.
func dumpTimeline(path string, p *mtracecheck.Program, opts mtracecheck.Options) error {
	runner, err := sim.NewRunner(opts.Platform, p, opts.Seed)
	if err != nil {
		return err
	}
	runner.Trace = true
	ex, err := runner.Run()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sim.FormatTimeline(f, p, ex)
}

func dumpDOT(path string, report *mtracecheck.Report, v mtracecheck.Violation,
	opts mtracecheck.Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return mtracecheck.WriteViolationDOT(f, report, v, opts)
}

// reportRunError classifies a pipeline error into the exit-code contract:
// crashes are findings, quarantine overflow has its own code, everything
// else is infrastructure.
func reportRunError(report *mtracecheck.Report, err error) int {
	switch {
	case errors.Is(err, mtracecheck.ErrCrash):
		iters := 0
		if report != nil {
			iters = report.Iterations
		}
		fmt.Printf("CRASH after %d iterations: %v\n", iters, err)
		return exitFinding
	case errors.Is(err, mtracecheck.ErrQuarantineThreshold):
		if report != nil {
			printDegradation(report)
		}
		fmt.Printf("RESULT: QUARANTINE OVERFLOW — %v\n", err)
		return exitQuarantine
	default:
		return infra(err)
	}
}

// loadProgram reads a saved test program.
func loadProgram(path string) (*mtracecheck.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return prog.Parse(f)
}

// saveProgram writes the generated program in the text format.
func saveProgram(path string, cfg mtracecheck.TestConfig) error {
	p, err := testgen.Generate(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(prog.Format(p)), 0o644)
}

// infra reports an infrastructure error and selects its exit code.
func infra(err error) int {
	// Library errors already carry the package prefix; avoid stuttering.
	fmt.Fprintln(os.Stderr, "mtracecheck:", strings.TrimPrefix(err.Error(), "mtracecheck: "))
	return exitInfra
}
